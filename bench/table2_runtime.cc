// Regenerates Table 2: total running time (training incl. parameter
// selection + classification) of Learning Shapelets, Fast Shapelets and
// RPM per dataset, the "# best" row, and the LS/RPM speedup summary
// (Section 5.3 reports a 78x average speedup on the authors' hardware;
// the shape to reproduce is LS >> RPM ~ FS).
//
// Flags:
//   --json     also write the table plus per-method train/classify sums
//              to BENCH_table2.json (used by scripts/bench_snapshot.sh)
//   --profile  skip the table; instead train RPM freshly on every suite
//              dataset with the core phase profiler enabled and print
//              per-phase wall time (discretization / grammar /
//              clustering / selection)

#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>

#include "core/phase_profile.h"
#include "harness.h"

namespace {

using rpm::core::PhaseProfile;

// Fresh RPM training per dataset with the global phase counters armed.
// The suite sweep cache is deliberately bypassed: profiling needs a live
// run, and the counters only instrument the RPM pipeline.
void RunProfile() {
  std::printf("RPM training per-phase wall time, seconds\n");
  std::printf("%-18s%11s%11s%11s%11s%11s%11s%12s\n", "Dataset",
              "selection", "discretize", "grammar", "cluster", "transform",
              "svm", "train-total");
  std::array<double, PhaseProfile::kNumPhases> sums{};
  double train_sum = 0.0;
  for (const auto& split : rpm::bench::Suite()) {
    auto clf = rpm::bench::MakeMethod("RPM");
    PhaseProfile::Reset();
    PhaseProfile::Enable(true);
    const auto t0 = std::chrono::steady_clock::now();
    clf->Train(split.train);
    const auto t1 = std::chrono::steady_clock::now();
    PhaseProfile::Enable(false);
    const auto phases = PhaseProfile::Totals();
    const double train =
        std::chrono::duration<double>(t1 - t0).count();
    for (std::size_t i = 0; i < phases.size(); ++i) sums[i] += phases[i];
    train_sum += train;
    std::printf("%-18s%11.3f%11.3f%11.3f%11.3f%11.3f%11.3f%12.3f\n",
                split.name.c_str(), phases[PhaseProfile::kSelection],
                phases[PhaseProfile::kDiscretization],
                phases[PhaseProfile::kGrammar],
                phases[PhaseProfile::kClustering],
                phases[PhaseProfile::kTransform],
                phases[PhaseProfile::kSvm], train);
  }
  std::printf("%-18s%11.3f%11.3f%11.3f%11.3f%11.3f%11.3f%12.3f\n", "TOTAL",
              sums[PhaseProfile::kSelection],
              sums[PhaseProfile::kDiscretization],
              sums[PhaseProfile::kGrammar],
              sums[PhaseProfile::kClustering],
              sums[PhaseProfile::kTransform], sums[PhaseProfile::kSvm],
              train_sum);
  std::printf(
      "\nPhases overlap: selection is end-to-end stage-0 time, and the\n"
      "discretize/grammar/cluster columns count that kind of work\n"
      "anywhere in training (including inside selection's combo search).\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rpm;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0) {
      RunProfile();
      return 0;
    }
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  const auto results = bench::RunOrLoadSuiteResults();
  const auto idx = bench::Index(results);
  const std::vector<std::string> methods = {"LS", "FS", "RPM"};

  std::set<std::string> seen;
  std::vector<std::string> datasets;
  for (const auto& r : results) {
    if (seen.insert(r.dataset).second) datasets.push_back(r.dataset);
  }

  std::printf("Table 2: running time in seconds (train + classify)\n");
  std::printf("%-18s%12s%12s%12s%14s\n", "Dataset", "LS", "FS", "RPM",
              "LS/RPM");
  std::map<std::string, int> best_count;
  std::vector<double> speedups;
  double speedup_sum = 0.0;
  double speedup_max = 0.0;
  for (const auto& ds : datasets) {
    std::map<std::string, double> total;
    for (const auto& m : methods) {
      const auto& r = idx.at({ds, m});
      total[m] = r.train_seconds + r.classify_seconds;
    }
    double best = 1e300;
    for (const auto& m : methods) best = std::min(best, total[m]);
    for (const auto& m : methods) {
      if (total[m] <= best + 1e-12) ++best_count[m];
    }
    const double speedup = total["LS"] / std::max(1e-9, total["RPM"]);
    speedups.push_back(speedup);
    speedup_sum += speedup;
    speedup_max = std::max(speedup_max, speedup);
    std::printf("%-18s%12.3f%12.3f%12.3f%13.1fx\n", ds.c_str(),
                total["LS"], total["FS"], total["RPM"], speedup);
  }
  std::printf("%-18s%12d%12d%12d\n", "# best (ties)", best_count["LS"],
              best_count["FS"], best_count["RPM"]);
  const double speedup_avg =
      speedup_sum / static_cast<double>(datasets.size());
  std::printf("\nLS/RPM speedup: average %.1fx, max %.1fx\n", speedup_avg,
              speedup_max);

  if (json) {
    std::FILE* f = std::fopen("BENCH_table2.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_table2.json\n");
      return 1;
    }
    std::fprintf(f, "{\n  \"datasets\": [\n");
    for (std::size_t i = 0; i < datasets.size(); ++i) {
      std::map<std::string, double> total;
      for (const auto& m : methods) {
        const auto& r = idx.at({datasets[i], m});
        total[m] = r.train_seconds + r.classify_seconds;
      }
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"ls\": %.4f, \"fs\": %.4f, "
                   "\"rpm\": %.4f, \"ls_over_rpm\": %.2f}%s\n",
                   datasets[i].c_str(), total["LS"], total["FS"],
                   total["RPM"], speedups[i],
                   i + 1 < datasets.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"train_seconds_by_method\": {");
    bool first = true;
    for (const auto& m : bench::MethodNames()) {
      double train = 0.0;
      for (const auto& r : results) {
        if (r.method == m) train += r.train_seconds;
      }
      std::fprintf(f, "%s\n    \"%s\": %.4f", first ? "" : ",", m.c_str(),
                   train);
      first = false;
    }
    std::fprintf(f,
                 "\n  },\n  \"ls_over_rpm\": {\"average\": %.2f, "
                 "\"max\": %.2f}\n}\n",
                 speedup_avg, speedup_max);
    std::fclose(f);
    std::printf("-> BENCH_table2.json\n");
  }
  return 0;
}
