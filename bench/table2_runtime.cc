// Regenerates Table 2: total running time (training incl. parameter
// selection + classification) of Learning Shapelets, Fast Shapelets and
// RPM per dataset, the "# best" row, and the LS/RPM speedup summary
// (Section 5.3 reports a 78x average speedup on the authors' hardware;
// the shape to reproduce is LS >> RPM ~ FS).

#include <cstdio>
#include <set>

#include "harness.h"

int main() {
  using namespace rpm;
  const auto results = bench::RunOrLoadSuiteResults();
  const auto idx = bench::Index(results);
  const std::vector<std::string> methods = {"LS", "FS", "RPM"};

  std::set<std::string> seen;
  std::vector<std::string> datasets;
  for (const auto& r : results) {
    if (seen.insert(r.dataset).second) datasets.push_back(r.dataset);
  }

  std::printf("Table 2: running time in seconds (train + classify)\n");
  std::printf("%-18s%12s%12s%12s%14s\n", "Dataset", "LS", "FS", "RPM",
              "LS/RPM");
  std::map<std::string, int> best_count;
  double speedup_sum = 0.0;
  double speedup_max = 0.0;
  for (const auto& ds : datasets) {
    std::map<std::string, double> total;
    for (const auto& m : methods) {
      const auto& r = idx.at({ds, m});
      total[m] = r.train_seconds + r.classify_seconds;
    }
    double best = 1e300;
    for (const auto& m : methods) best = std::min(best, total[m]);
    for (const auto& m : methods) {
      if (total[m] <= best + 1e-12) ++best_count[m];
    }
    const double speedup = total["LS"] / std::max(1e-9, total["RPM"]);
    speedup_sum += speedup;
    speedup_max = std::max(speedup_max, speedup);
    std::printf("%-18s%12.3f%12.3f%12.3f%13.1fx\n", ds.c_str(),
                total["LS"], total["FS"], total["RPM"], speedup);
  }
  std::printf("%-18s%12d%12d%12d\n", "# best (ties)", best_count["LS"],
              best_count["FS"], best_count["RPM"]);
  std::printf("\nLS/RPM speedup: average %.1fx, max %.1fx\n",
              speedup_sum / static_cast<double>(datasets.size()),
              speedup_max);
  return 0;
}
