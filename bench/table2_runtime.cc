// Regenerates Table 2: total running time (training incl. parameter
// selection + classification) of Learning Shapelets, Fast Shapelets and
// RPM per dataset, the "# best" row, and the LS/RPM speedup summary
// (Section 5.3 reports a 78x average speedup on the authors' hardware;
// the shape to reproduce is LS >> RPM ~ FS).
//
// Flags:
//   --json     also write the table plus per-method train/classify sums
//              and the per-phase train timings (the same live profiled
//              runs --profile prints) to BENCH_table2.json (used by
//              scripts/bench_snapshot.sh)
//   --profile  skip the table; instead train RPM and FS freshly on every
//              suite dataset with the core phase profiler enabled and
//              print per-phase wall time (discretization / grammar /
//              clustering / selection / distinct for RPM; the
//              shapelet-scan phase for FS)

#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>

#include "baselines/shapelet_transform.h"
#include "core/phase_profile.h"
#include "harness.h"

namespace {

using rpm::core::PhaseProfile;

// Per-dataset phase totals from one fresh, profiled training run.
struct DatasetPhases {
  std::string name;
  std::array<double, PhaseProfile::kNumPhases> phases{};
  double train = 0.0;
};

// Fresh training per suite dataset with the global phase counters armed.
// The suite sweep cache is deliberately bypassed: profiling needs a live
// run.
std::vector<DatasetPhases> ProfileMethod(const char* method) {
  std::vector<DatasetPhases> out;
  for (const auto& split : rpm::bench::Suite()) {
    // "ST" (shapelet transform) is the extra comparator outside the six
    // Table 2 methods; its candidate scans share the kShapelets counter
    // with FS.
    std::unique_ptr<rpm::baselines::Classifier> clf;
    if (std::strcmp(method, "ST") == 0) {
      clf = std::make_unique<rpm::baselines::ShapeletTransform>();
    } else {
      clf = rpm::bench::MakeMethod(method);
    }
    PhaseProfile::Reset();
    PhaseProfile::Enable(true);
    const auto t0 = std::chrono::steady_clock::now();
    clf->Train(split.train);
    const auto t1 = std::chrono::steady_clock::now();
    PhaseProfile::Enable(false);
    DatasetPhases d;
    d.name = split.name;
    d.phases = PhaseProfile::Totals();
    d.train = std::chrono::duration<double>(t1 - t0).count();
    out.push_back(std::move(d));
  }
  return out;
}

DatasetPhases SumPhases(const std::vector<DatasetPhases>& rows) {
  DatasetPhases total;
  total.name = "TOTAL";
  for (const auto& r : rows) {
    for (std::size_t i = 0; i < r.phases.size(); ++i) {
      total.phases[i] += r.phases[i];
    }
    total.train += r.train;
  }
  return total;
}

void RunProfile() {
  const auto rpm_rows = ProfileMethod("RPM");
  std::printf("RPM training per-phase wall time, seconds\n");
  std::printf("%-18s%11s%11s%11s%11s%11s%11s%11s%12s\n", "Dataset",
              "selection", "discretize", "grammar", "cluster", "distinct",
              "transform", "svm", "train-total");
  auto rpm_row = [](const DatasetPhases& d) {
    std::printf("%-18s%11.3f%11.3f%11.3f%11.3f%11.3f%11.3f%11.3f%12.3f\n",
                d.name.c_str(), d.phases[PhaseProfile::kSelection],
                d.phases[PhaseProfile::kDiscretization],
                d.phases[PhaseProfile::kGrammar],
                d.phases[PhaseProfile::kClustering],
                d.phases[PhaseProfile::kDistinct],
                d.phases[PhaseProfile::kTransform],
                d.phases[PhaseProfile::kSvm], d.train);
  };
  for (const auto& d : rpm_rows) rpm_row(d);
  rpm_row(SumPhases(rpm_rows));

  auto shapelet_table = [](const char* method,
                           const std::vector<DatasetPhases>& rows) {
    std::printf("\n%s training per-phase wall time, seconds\n", method);
    std::printf("%-18s%11s%12s\n", "Dataset", "shapelets", "train-total");
    auto row = [](const DatasetPhases& d) {
      std::printf("%-18s%11.3f%12.3f\n", d.name.c_str(),
                  d.phases[PhaseProfile::kShapelets], d.train);
    };
    for (const auto& d : rows) row(d);
    row(SumPhases(rows));
  };
  shapelet_table("FS", ProfileMethod("FS"));
  shapelet_table("ST", ProfileMethod("ST"));

  std::printf(
      "\nPhases overlap: selection is end-to-end stage-0 time, and the\n"
      "discretize/grammar/cluster/distinct columns count that kind of\n"
      "work anywhere in training (including inside selection's combo\n"
      "search). The FS shapelets column is the candidate scan + split\n"
      "routing share of the tree build.\n");
}

// One `"method": {"phase": seconds, ..., "train_total": s}` JSON object.
void WritePhaseObject(std::FILE* f, const char* key,
                      const std::vector<DatasetPhases>& rows, bool last) {
  const DatasetPhases total = SumPhases(rows);
  std::fprintf(f, "    \"%s\": {", key);
  for (std::size_t i = 0; i < PhaseProfile::kNumPhases; ++i) {
    std::fprintf(f, "\"%s\": %.4f, ",
                 PhaseProfile::Name(static_cast<PhaseProfile::Phase>(i)),
                 total.phases[i]);
  }
  std::fprintf(f, "\"train_total\": %.4f}%s\n", total.train,
               last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rpm;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0) {
      RunProfile();
      return 0;
    }
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  const auto results = bench::RunOrLoadSuiteResults();
  const auto idx = bench::Index(results);
  const std::vector<std::string> methods = {"LS", "FS", "RPM"};

  std::set<std::string> seen;
  std::vector<std::string> datasets;
  for (const auto& r : results) {
    if (seen.insert(r.dataset).second) datasets.push_back(r.dataset);
  }

  std::printf("Table 2: running time in seconds (train + classify)\n");
  std::printf("%-18s%12s%12s%12s%14s\n", "Dataset", "LS", "FS", "RPM",
              "LS/RPM");
  std::map<std::string, int> best_count;
  std::vector<double> speedups;
  double speedup_sum = 0.0;
  double speedup_max = 0.0;
  for (const auto& ds : datasets) {
    std::map<std::string, double> total;
    for (const auto& m : methods) {
      const auto& r = idx.at({ds, m});
      total[m] = r.train_seconds + r.classify_seconds;
    }
    double best = 1e300;
    for (const auto& m : methods) best = std::min(best, total[m]);
    for (const auto& m : methods) {
      if (total[m] <= best + 1e-12) ++best_count[m];
    }
    const double speedup = total["LS"] / std::max(1e-9, total["RPM"]);
    speedups.push_back(speedup);
    speedup_sum += speedup;
    speedup_max = std::max(speedup_max, speedup);
    std::printf("%-18s%12.3f%12.3f%12.3f%13.1fx\n", ds.c_str(),
                total["LS"], total["FS"], total["RPM"], speedup);
  }
  std::printf("%-18s%12d%12d%12d\n", "# best (ties)", best_count["LS"],
              best_count["FS"], best_count["RPM"]);
  const double speedup_avg =
      speedup_sum / static_cast<double>(datasets.size());
  std::printf("\nLS/RPM speedup: average %.1fx, max %.1fx\n", speedup_avg,
              speedup_max);

  if (json) {
    std::FILE* f = std::fopen("BENCH_table2.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_table2.json\n");
      return 1;
    }
    std::fprintf(f, "{\n  \"datasets\": [\n");
    for (std::size_t i = 0; i < datasets.size(); ++i) {
      std::map<std::string, double> total;
      for (const auto& m : methods) {
        const auto& r = idx.at({datasets[i], m});
        total[m] = r.train_seconds + r.classify_seconds;
      }
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"ls\": %.4f, \"fs\": %.4f, "
                   "\"rpm\": %.4f, \"ls_over_rpm\": %.2f}%s\n",
                   datasets[i].c_str(), total["LS"], total["FS"],
                   total["RPM"], speedups[i],
                   i + 1 < datasets.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"train_seconds_by_method\": {");
    bool first = true;
    for (const auto& m : bench::MethodNames()) {
      double train = 0.0;
      for (const auto& r : results) {
        if (r.method == m) train += r.train_seconds;
      }
      std::fprintf(f, "%s\n    \"%s\": %.4f", first ? "" : ",", m.c_str(),
                   train);
      first = false;
    }
    std::fprintf(f,
                 "\n  },\n  \"ls_over_rpm\": {\"average\": %.2f, "
                 "\"max\": %.2f},\n",
                 speedup_avg, speedup_max);
    // Per-phase train timings come from live profiled runs (the sweep
    // cache has no phase breakdown), summed over the suite datasets.
    std::fprintf(f, "  \"train_phases\": {\n");
    WritePhaseObject(f, "rpm", ProfileMethod("RPM"), false);
    WritePhaseObject(f, "fs", ProfileMethod("FS"), false);
    WritePhaseObject(f, "st", ProfileMethod("ST"), true);
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("-> BENCH_table2.json\n");
  }
  return 0;
}
