// Shared benchmark harness: builds the six classifiers with the
// evaluation configuration, sweeps them over the synthetic UCR-style
// suite, and caches per-(dataset, method) error/time results on disk so
// the table/figure binaries that share a sweep (Table 1, Table 2,
// Figures 7-8) compute it only once per build.
//
// Environment knobs:
//   RPM_BENCH_SCALE  size multiplier for the dataset suite (default 1.0)
//   RPM_BENCH_CACHE  cache file path (default build/bench/.results_cache.csv;
//                    set to "off" to disable caching)

#ifndef RPM_BENCH_HARNESS_H_
#define RPM_BENCH_HARNESS_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/fast_shapelets.h"
#include "baselines/learning_shapelets.h"
#include "baselines/nn_dtw.h"
#include "baselines/nn_euclidean.h"
#include "baselines/rpm_adapter.h"
#include "baselines/sax_vsm.h"
#include "ts/generators.h"

namespace rpm::bench {

inline double BenchScale() {
  const char* env = std::getenv("RPM_BENCH_SCALE");
  return env != nullptr ? std::atof(env) : 1.0;
}

inline std::vector<ts::DatasetSplit> Suite() {
  ts::SuiteOptions options;
  options.size_scale = BenchScale();
  return ts::BenchmarkSuite(options);
}

/// Names of the six evaluated methods, table order (Table 1).
inline const std::vector<std::string>& MethodNames() {
  static const std::vector<std::string> names = {
      "NN-ED", "NN-DTWB", "SAX-VSM", "FS", "LS", "RPM"};
  return names;
}

/// Fresh classifier instance by method name, configured as in Section 5.
inline std::unique_ptr<baselines::Classifier> MakeMethod(
    const std::string& name) {
  if (name == "NN-ED") return std::make_unique<baselines::NnEuclidean>();
  if (name == "NN-DTWB") {
    return std::make_unique<baselines::NnDtwBestWindow>();
  }
  if (name == "SAX-VSM") return std::make_unique<baselines::SaxVsm>();
  if (name == "FS") return std::make_unique<baselines::FastShapelets>();
  if (name == "LS") {
    // Grabocka et al. run thousands of full-batch iterations; this is what
    // makes LS the accurate-but-slow pole of Table 2.
    baselines::LearningShapeletsOptions opt;
    opt.max_epochs = 2000;
    return std::make_unique<baselines::LearningShapelets>(opt);
  }
  // RPM with the paper's defaults: per-class DIRECT parameter selection,
  // gamma 20 %, tau at the 30th percentile.
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kDirect;
  opt.direct_max_evaluations = 16;
  opt.param_splits = 2;
  opt.param_folds = 3;
  return std::make_unique<baselines::RpmAdapter>(opt);
}

/// One (dataset, method) measurement.
struct Result {
  std::string dataset;
  std::string method;
  double error = 0.0;
  double train_seconds = 0.0;
  double classify_seconds = 0.0;
};

inline std::string CachePath() {
  const char* env = std::getenv("RPM_BENCH_CACHE");
  return env != nullptr ? env : ".rpm_bench_results_cache.csv";
}

inline std::vector<Result> LoadCache(const std::string& path,
                                     const std::string& tag) {
  std::vector<Result> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  if (!std::getline(in, line) || line != "# " + tag) return {};
  while (std::getline(in, line)) {
    std::istringstream row(line);
    Result r;
    std::string err;
    std::string tr;
    std::string cl;
    if (std::getline(row, r.dataset, ',') &&
        std::getline(row, r.method, ',') && std::getline(row, err, ',') &&
        std::getline(row, tr, ',') && std::getline(row, cl, ',')) {
      r.error = std::atof(err.c_str());
      r.train_seconds = std::atof(tr.c_str());
      r.classify_seconds = std::atof(cl.c_str());
      out.push_back(std::move(r));
    }
  }
  return out;
}

inline void SaveCache(const std::string& path, const std::string& tag,
                      const std::vector<Result>& results) {
  std::ofstream out(path);
  if (!out) return;
  out << "# " << tag << "\n";
  for (const auto& r : results) {
    out << r.dataset << ',' << r.method << ',' << r.error << ','
        << r.train_seconds << ',' << r.classify_seconds << '\n';
  }
}

/// Runs every method over every suite dataset (or loads the cached sweep).
inline std::vector<Result> RunOrLoadSuiteResults() {
  const std::string tag = "v3 scale=" + std::to_string(BenchScale());
  const std::string path = CachePath();
  if (path != "off") {
    std::vector<Result> cached = LoadCache(path, tag);
    if (!cached.empty()) {
      std::fprintf(stderr, "[harness] loaded %zu cached results from %s\n",
                   cached.size(), path.c_str());
      return cached;
    }
  }
  std::vector<Result> results;
  for (const auto& split : Suite()) {
    for (const auto& name : MethodNames()) {
      auto clf = MakeMethod(name);
      const auto t0 = std::chrono::steady_clock::now();
      clf->Train(split.train);
      const auto t1 = std::chrono::steady_clock::now();
      const double error = clf->Evaluate(split.test);
      const auto t2 = std::chrono::steady_clock::now();
      Result r;
      r.dataset = split.name;
      r.method = name;
      r.error = error;
      r.train_seconds = std::chrono::duration<double>(t1 - t0).count();
      r.classify_seconds = std::chrono::duration<double>(t2 - t1).count();
      results.push_back(r);
      std::fprintf(stderr, "[harness] %-16s %-8s err=%.4f train=%.2fs\n",
                   split.name.c_str(), name.c_str(), r.error,
                   r.train_seconds);
    }
  }
  if (path != "off") SaveCache(path, tag, results);
  return results;
}

/// (dataset, method) -> result lookup.
inline std::map<std::pair<std::string, std::string>, Result> Index(
    const std::vector<Result>& results) {
  std::map<std::pair<std::string, std::string>, Result> idx;
  for (const auto& r : results) idx[{r.dataset, r.method}] = r;
  return idx;
}

}  // namespace rpm::bench

#endif  // RPM_BENCH_HARNESS_H_
