// Regenerates Table 4: classification error on *shifted* (rotated) test
// data for NN-ED, NN-DTWB, SAX-VSM, LS and RPM. Training data is left
// unmodified; each test series is rotated at a random cut point
// (Section 6.1). Expected shape: the NN methods collapse, the
// pattern-based methods — RPM with its rotation-invariant transform in
// particular — stay accurate.

#include <cstdio>

#include "harness.h"
#include "ts/rng.h"
#include "ts/rotation.h"

int main() {
  using namespace rpm;
  ts::SuiteOptions suite_options;
  suite_options.size_scale = bench::BenchScale();
  const auto suite = ts::RotationSuite(suite_options);
  const std::vector<std::string> methods = {"NN-ED", "NN-DTWB", "SAX-VSM",
                                            "LS", "RPM"};

  std::printf("Table 4: error rate on randomly rotated test data\n");
  std::printf("%-18s", "Dataset");
  for (const auto& m : methods) std::printf("%10s", m.c_str());
  std::printf("\n");

  std::map<std::string, int> best_count;
  ts::Rng rot_rng(404);
  for (const auto& split : suite) {
    const ts::Dataset rotated = ts::RandomlyRotate(split.test, rot_rng);
    std::map<std::string, double> err;
    for (const auto& m : methods) {
      std::unique_ptr<baselines::Classifier> clf;
      if (m == "RPM") {
        // The Section 6.1 variant: rotation-invariant transform on top of
        // the usual pipeline.
        core::RpmOptions opt;
        opt.search = core::ParameterSearch::kDirect;
        opt.direct_max_evaluations = 16;
        opt.param_splits = 2;
        opt.param_folds = 3;
        opt.rotation_invariant = true;
        clf = std::make_unique<baselines::RpmAdapter>(opt);
      } else {
        clf = bench::MakeMethod(m);
      }
      clf->Train(split.train);
      err[m] = clf->Evaluate(rotated);
    }
    double best = 1e9;
    for (const auto& m : methods) best = std::min(best, err[m]);
    std::printf("%-18s", split.name.c_str());
    for (const auto& m : methods) {
      std::printf(err[m] <= best + 1e-12 ? "%9.4f*" : "%10.4f", err[m]);
      if (err[m] <= best + 1e-12) ++best_count[m];
    }
    std::printf("\n");
  }
  std::printf("%-18s", "# best (ties)");
  for (const auto& m : methods) std::printf("%10d", best_count[m]);
  std::printf("\n");
  return 0;
}
