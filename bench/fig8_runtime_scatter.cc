// Regenerates Figure 8: log-runtime scatter of LS vs RPM and FS vs RPM.
// Prints (log10 rival, log10 RPM) pairs per dataset with the win counts;
// points above the diagonal mean RPM is faster.

#include <cmath>
#include <cstdio>
#include <set>

#include "harness.h"

int main() {
  using namespace rpm;
  const auto results = bench::RunOrLoadSuiteResults();
  const auto idx = bench::Index(results);

  std::set<std::string> seen;
  std::vector<std::string> datasets;
  for (const auto& r : results) {
    if (seen.insert(r.dataset).second) datasets.push_back(r.dataset);
  }

  for (const std::string rival : {"LS", "FS"}) {
    std::printf("== Figure 8 panel: runtime (log10 s) %s vs RPM ==\n",
                rival.c_str());
    int rival_wins = 0;
    int rpm_wins = 0;
    for (const auto& ds : datasets) {
      const auto& ra = idx.at({ds, rival});
      const auto& rb = idx.at({ds, "RPM"});
      const double ta =
          std::max(1e-6, ra.train_seconds + ra.classify_seconds);
      const double tb =
          std::max(1e-6, rb.train_seconds + rb.classify_seconds);
      (ta < tb ? rival_wins : rpm_wins) += 1;
      std::printf("%-18s  log10(%s)=%8.3f  log10(RPM)=%8.3f\n", ds.c_str(),
                  rival.c_str(), std::log10(ta), std::log10(tb));
    }
    std::printf("%s wins %d | RPM wins %d\n\n", rival.c_str(), rival_wins,
                rpm_wins);
  }
  return 0;
}
