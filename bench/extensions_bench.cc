// Extension comparison bench (beyond the paper's tables; see DESIGN.md):
//   A. final classifier over the pattern features: SVM vs k-NN vs NB
//   B. exact vs approximate best-match transform (accuracy + time)
//   C. Sequitur vs Re-Pair grammar backends (accuracy + candidates)
//   D. Shapelet Transform vs RPM (the closest related-work method)
//   E. multi-class medical alarm-type classification

#include <chrono>
#include <cstdio>

#include "baselines/bag_of_patterns.h"
#include "baselines/shapelet_transform.h"
#include "baselines/shapelet_tree.h"
#include "core/rpm.h"
#include "grammar/hotsax.h"
#include "grammar/inspect.h"
#include "harness.h"
#include "sax/sax.h"
#include "ts/generators.h"
#include "ts/rng.h"

namespace {

double Seconds(const std::chrono::steady_clock::time_point& a,
               const std::chrono::steady_clock::time_point& b) {
  return std::chrono::duration<double>(b - a).count();
}

rpm::core::RpmOptions Fixed(std::size_t window) {
  rpm::core::RpmOptions opt;
  opt.search = rpm::core::ParameterSearch::kFixed;
  opt.fixed_sax.window = window;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  return opt;
}

}  // namespace

int main() {
  using namespace rpm;
  const ts::DatasetSplit gun = ts::MakeGunPoint(12, 40, 150, 777);
  const ts::DatasetSplit cbf = ts::MakeCbf(10, 30, 128, 778);

  std::printf("A. Final classifier over pattern features (GunPoint/CBF)\n");
  for (const auto* split : {&gun, &cbf}) {
    for (auto [kind, name] :
         {std::pair{ml::FeatureClassifierKind::kSvm, "SVM"},
          std::pair{ml::FeatureClassifierKind::kKnn, "1-NN"},
          std::pair{ml::FeatureClassifierKind::kNaiveBayes, "NB"}}) {
      core::RpmOptions opt = Fixed(split->train.MinLength() / 4);
      opt.final_classifier = kind;
      core::RpmClassifier clf(opt);
      clf.Train(split->train);
      std::printf("  %-14s %-5s err=%.4f\n", split->name.c_str(), name,
                  clf.Evaluate(split->test));
    }
  }

  std::printf("\nB. Exact vs approximate best-match transform\n");
  for (const auto* split : {&gun, &cbf}) {
    for (bool approx : {false, true}) {
      core::RpmOptions opt = Fixed(split->train.MinLength() / 4);
      opt.approximate_matching = approx;
      const auto t0 = std::chrono::steady_clock::now();
      core::RpmClassifier clf(opt);
      clf.Train(split->train);
      const double err = clf.Evaluate(split->test);
      const auto t1 = std::chrono::steady_clock::now();
      std::printf("  %-14s %-7s err=%.4f t=%.3fs\n", split->name.c_str(),
                  approx ? "approx" : "exact", err, Seconds(t0, t1));
    }
  }

  std::printf("\nC. Grammar backend: Sequitur vs Re-Pair\n");
  for (const auto* split : {&gun, &cbf}) {
    for (auto [gi, name] :
         {std::pair{grammar::GiAlgorithm::kSequitur, "Sequitur"},
          std::pair{grammar::GiAlgorithm::kRePair, "Re-Pair"}}) {
      core::RpmOptions opt = Fixed(split->train.MinLength() / 4);
      opt.gi_algorithm = gi;
      const auto t0 = std::chrono::steady_clock::now();
      core::RpmClassifier clf(opt);
      clf.Train(split->train);
      const double err = clf.Evaluate(split->test);
      const auto t1 = std::chrono::steady_clock::now();
      std::printf("  %-14s %-9s err=%.4f k=%zu t=%.3fs\n",
                  split->name.c_str(), name, err, clf.patterns().size(),
                  Seconds(t0, t1));
    }
  }

  std::printf("\nD. Shapelet Transform vs RPM\n");
  for (const auto* split : {&gun, &cbf}) {
    baselines::ShapeletTransform st;
    const auto t0 = std::chrono::steady_clock::now();
    st.Train(split->train);
    const double st_err = st.Evaluate(split->test);
    const auto t1 = std::chrono::steady_clock::now();
    core::RpmClassifier clf(Fixed(split->train.MinLength() / 4));
    clf.Train(split->train);
    const double rpm_err = clf.Evaluate(split->test);
    const auto t2 = std::chrono::steady_clock::now();
    std::printf("  %-14s ST  err=%.4f t=%.3fs | RPM err=%.4f t=%.3fs\n",
                split->name.c_str(), st_err, Seconds(t0, t1), rpm_err,
                Seconds(t1, t2));
  }

  std::printf("\nD2. Original shapelet tree (Ye & Keogh) vs Fast "
              "Shapelets-style descendants\n");
  for (const auto* split : {&gun, &cbf}) {
    baselines::ShapeletTree yk;
    const auto t0 = std::chrono::steady_clock::now();
    yk.Train(split->train);
    const double yk_err = yk.Evaluate(split->test);
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("  %-14s YK-Tree err=%.4f t=%.3fs nodes=%zu\n",
                split->name.c_str(), yk_err, Seconds(t0, t1),
                yk.num_shapelet_nodes());
  }

  std::printf("\nE. Medical alarm-type classification (4 classes)\n");
  const ts::DatasetSplit types = ts::MakeAbpAlarmTypes(10, 25, 240, 779);
  {
    core::RpmOptions opt = Fixed(60);
    opt.fixed_sax.paa_size = 6;
    core::RpmClassifier clf(opt);
    clf.Train(types.train);
    std::printf("  RPM err=%.4f (%zu patterns; chance err 0.75)\n",
                clf.Evaluate(types.test), clf.patterns().size());
  }

  std::printf("\nF. BOP vs SAX-VSM (tf*idf ablation, shared SAX params)\n");
  for (const auto* split : {&gun, &cbf}) {
    baselines::BagOfPatternsOptions bop_opt;
    bop_opt.sax.window = split->train.MinLength() / 4;
    bop_opt.sax.paa_size = 4;
    bop_opt.sax.alphabet = 4;
    baselines::BagOfPatterns bop(bop_opt);
    bop.Train(split->train);
    baselines::SaxVsmOptions vsm_opt;
    vsm_opt.optimize = false;
    vsm_opt.sax = bop_opt.sax;
    baselines::SaxVsm vsm(vsm_opt);
    vsm.Train(split->train);
    std::printf("  %-14s BOP err=%.4f | SAX-VSM err=%.4f\n",
                split->name.c_str(), bop.Evaluate(split->test),
                vsm.Evaluate(split->test));
  }

  std::printf("\nG. Discords: rule-density (GrammarViz-style) vs HOT SAX\n");
  {
    // Periodic series with one corrupted cycle; both methods should land
    // on it, HOT SAX being exact and rule-density approximate-but-fast.
    ts::Rng rng(4242);
    ts::Series s(600);
    for (std::size_t i = 0; i < s.size(); ++i) {
      s[i] = std::sin(2.0 * 3.14159265 * static_cast<double>(i) / 50.0) +
             rng.Gaussian(0.0, 0.03);
    }
    for (std::size_t i = 300; i < 350; ++i) {
      s[i] = rng.Gaussian(0.0, 0.8);
    }
    sax::SaxOptions sax_opt;
    sax_opt.window = 50;
    sax_opt.paa_size = 4;
    sax_opt.alphabet = 4;
    const auto t0 = std::chrono::steady_clock::now();
    const auto records = sax::DiscretizeSlidingWindow(s, sax_opt);
    const auto motifs = grammar::FindMotifCandidates(
        records, sax_opt.window, s.size(), {}, true);
    const auto density_discords =
        grammar::FindDiscords(motifs, s.size(), 50, 1);
    const auto t1 = std::chrono::steady_clock::now();
    grammar::HotSaxOptions hs;
    hs.discord_length = 50;
    const auto hotsax_discords = grammar::FindHotSaxDiscords(s, hs);
    const auto t2 = std::chrono::steady_clock::now();
    std::printf("  planted anomaly at [300,350)\n");
    if (!density_discords.empty()) {
      std::printf("  rule-density: [%zu,%zu) in %.3fs\n",
                  density_discords[0].start,
                  density_discords[0].start + density_discords[0].length,
                  Seconds(t0, t1));
    }
    if (!hotsax_discords.empty()) {
      std::printf("  HOT SAX:      [%zu,%zu) nn=%.3f in %.3fs\n",
                  hotsax_discords[0].start,
                  hotsax_discords[0].start + hotsax_discords[0].length,
                  hotsax_discords[0].nn_distance, Seconds(t1, t2));
    }
  }
  return 0;
}
