// Extended Table 1: the three additional Section 2.2 methods implemented
// beyond the paper's comparison — Shapelet Transform (ST), the original
// Ye & Keogh shapelet tree (YK-Tree) and Logical Shapelets — evaluated on
// the same suite, with RPM's cached errors alongside for reference.

#include <cstdio>
#include <memory>
#include <set>

#include "baselines/logical_shapelets.h"
#include "baselines/shapelet_transform.h"
#include "baselines/shapelet_tree.h"
#include "harness.h"
#include "ml/wilcoxon.h"

int main() {
  using namespace rpm;
  const auto cached = bench::RunOrLoadSuiteResults();
  const auto idx = bench::Index(cached);

  std::printf("Extended Table 1: Section 2.2 methods vs RPM\n");
  std::printf("%-18s%10s%10s%10s%10s\n", "Dataset", "ST", "YK-Tree",
              "Logical", "RPM");

  std::vector<double> st_err;
  std::vector<double> yk_err;
  std::vector<double> lg_err;
  std::vector<double> rpm_err;
  for (const auto& split : bench::Suite()) {
    baselines::ShapeletTransform st;
    st.Train(split.train);
    const double e_st = st.Evaluate(split.test);

    baselines::ShapeletTree yk;
    yk.Train(split.train);
    const double e_yk = yk.Evaluate(split.test);

    baselines::LogicalShapelets lg;
    lg.Train(split.train);
    const double e_lg = lg.Evaluate(split.test);

    const double e_rpm = idx.at({split.name, "RPM"}).error;
    st_err.push_back(e_st);
    yk_err.push_back(e_yk);
    lg_err.push_back(e_lg);
    rpm_err.push_back(e_rpm);
    std::printf("%-18s%10.4f%10.4f%10.4f%10.4f\n", split.name.c_str(),
                e_st, e_yk, e_lg, e_rpm);
  }
  for (auto [name, errs] :
       {std::pair{"ST", &st_err}, std::pair{"YK-Tree", &yk_err},
        std::pair{"Logical", &lg_err}}) {
    const auto w = ml::WilcoxonSignedRank(*errs, rpm_err);
    double mean = 0.0;
    for (double e : *errs) mean += e;
    std::printf("%-8s mean=%.4f  Wilcoxon-vs-RPM p=%.4f\n", name,
                mean / static_cast<double>(errs->size()), w.p_value);
  }
  return 0;
}
