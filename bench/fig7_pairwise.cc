// Regenerates Figure 7: pairwise error-rate comparison of NN-DTWB,
// SAX-VSM, FS and LS against RPM. For each pair, prints the per-dataset
// (x, y) scatter points, the win/tie/loss counts, and the Wilcoxon
// signed-rank p-value shown in the figure.

#include <cstdio>
#include <set>

#include "harness.h"
#include "ml/wilcoxon.h"

int main() {
  using namespace rpm;
  const auto results = bench::RunOrLoadSuiteResults();
  const auto idx = bench::Index(results);

  std::set<std::string> seen;
  std::vector<std::string> datasets;
  for (const auto& r : results) {
    if (seen.insert(r.dataset).second) datasets.push_back(r.dataset);
  }

  for (const std::string rival :
       {"NN-DTWB", "SAX-VSM", "FS", "LS"}) {
    std::printf("== Figure 7 panel: %s vs RPM ==\n", rival.c_str());
    std::printf("%-18s%12s%12s\n", "dataset", rival.c_str(), "RPM");
    std::vector<double> a;
    std::vector<double> b;
    int rival_wins = 0;
    int rpm_wins = 0;
    int ties = 0;
    for (const auto& ds : datasets) {
      const double ea = idx.at({ds, rival}).error;
      const double eb = idx.at({ds, "RPM"}).error;
      a.push_back(ea);
      b.push_back(eb);
      if (ea < eb) {
        ++rival_wins;
      } else if (eb < ea) {
        ++rpm_wins;
      } else {
        ++ties;
      }
      std::printf("%-18s%12.4f%12.4f\n", ds.c_str(), ea, eb);
    }
    const auto w = ml::WilcoxonSignedRank(a, b);
    std::printf("%s wins %d | ties %d | RPM wins %d;  Wilcoxon p=%.4f\n\n",
                rival.c_str(), rival_wins, ties, rpm_wins, w.p_value);
  }
  return 0;
}
