// Pipeline-level scaling study for the Section 5.3 complexity analysis:
// RPM training cost as a function of (a) training-set size and (b) series
// length, with the per-stage breakdown from the TrainingReport. The
// discretization + grammar stages should scale near-linearly; the
// candidate-matching stage (Transform during selection) dominates, as the
// paper observes ("this step seems to be the bottleneck of the training
// stage due to the repeated distance call").
//
// `--json` runs the archive-scale sweep instead (docs/DATASETS.md): CBF
// archives up to --max series (default 1,000,000) are streamed to RPMD
// files via GenerateToFile, then trained through the mmap-backed
// DatasetReader with a stratified per-class training cap and sampled
// candidate discovery. Each size emits a BENCH_scaling.json row with
// generation/open/train wall times, the per-phase TrainingReport split,
// and the process peak RSS — the bounded-memory and sub-linear
// discovery-growth evidence ROADMAP item 1 asks for.

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/rpm.h"
#include "ts/dataset_io.h"
#include "ts/generators.h"

namespace {

rpm::core::RpmOptions Fixed(std::size_t window) {
  rpm::core::RpmOptions opt;
  opt.search = rpm::core::ParameterSearch::kFixed;
  opt.fixed_sax.window = window;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  return opt;
}

void Row(const rpm::ts::DatasetSplit& split, std::size_t window) {
  rpm::core::RpmClassifier clf(Fixed(window));
  const auto t0 = std::chrono::steady_clock::now();
  clf.Train(split.train);
  const auto t1 = std::chrono::steady_clock::now();
  const auto& r = clf.report();
  std::printf("  n=%3zu m=%4zu  total=%7.3fs  mine=%6.3fs select=%6.3fs "
              "fit=%6.3fs  cands=%3zu k=%2zu\n",
              split.train.size(), split.train.MinLength(),
              std::chrono::duration<double>(t1 - t0).count(),
              r.candidate_mining_seconds, r.pattern_selection_seconds,
              r.classifier_fit_seconds, r.candidates_total,
              r.patterns_selected);
}

double PeakRssMb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  // ru_maxrss is KiB on Linux.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Archive-scale sweep: stream a CBF archive of each size to disk, train
// off the mmap reader under constant caps, and emit one JSON row per
// size. With the caps binding, the materialized subset — and with it the
// candidate-discovery cost — is constant in the archive size, so the
// mine_seconds column must stay flat while num_series grows 50x; peak
// RSS tracks the subset plus the touched value pages, not the file.
int ArchiveSweep(std::size_t max_series, const std::string& workdir) {
  using namespace rpm;
  constexpr std::size_t kLength = 128;
  constexpr std::size_t kTrainCap = 200;       // per class, stratified
  constexpr std::size_t kDiscoveryCap = 50;    // per class, reservoir
  std::vector<std::size_t> sizes;
  for (std::size_t n : {std::size_t{20'000}, std::size_t{100'000},
                        std::size_t{400'000}, std::size_t{1'000'000}}) {
    if (n <= max_series) sizes.push_back(n);
  }
  if (sizes.empty()) sizes.push_back(max_series);

  std::FILE* f = std::fopen("BENCH_scaling.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_scaling.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"archive_scaling\",\n"
               "  \"family\": \"CBF\",\n"
               "  \"length\": %zu,\n"
               "  \"max_train_per_class\": %zu,\n"
               "  \"discovery_sample_per_class\": %zu,\n"
               "  \"rows\": [\n",
               kLength, kTrainCap, kDiscoveryCap);

  bool first = true;
  for (std::size_t n : sizes) {
    const std::string path =
        workdir + "/scaling_" + std::to_string(n) + ".rpmd";
    ts::ArchiveOptions gen;
    gen.num_series = n;
    gen.length = kLength;
    gen.seed = 20160315 + n;
    auto t0 = std::chrono::steady_clock::now();
    ts::GenerateToFile("CBF", gen, path);
    const double gen_seconds = Seconds(t0);

    // Repeat runs over pristine generator output: skip the per-chunk
    // data CRC so only the sampled series' pages fault in (the
    // structural tables are still verified at open).
    ts::DatasetReaderOptions reader_options;
    reader_options.verify_data_crc = false;
    t0 = std::chrono::steady_clock::now();
    const ts::DatasetReader reader(path, reader_options);
    const double open_seconds = Seconds(t0);

    core::RpmOptions opt = Fixed(32);
    opt.discovery_sample_per_class = kDiscoveryCap;
    opt.num_threads = 4;
    core::TrainFromDiskOptions disk;
    disk.max_train_per_class = kTrainCap;
    core::RpmClassifier clf(opt);
    t0 = std::chrono::steady_clock::now();
    clf.Train(reader, disk);
    const double train_seconds = Seconds(t0);
    const auto& r = clf.report();
    const double rss_mb = PeakRssMb();

    std::fprintf(f,
                 "%s    {\"num_series\": %zu, \"file_mb\": %.1f, "
                 "\"gen_seconds\": %.3f, \"open_seconds\": %.6f, "
                 "\"train_seconds\": %.3f, \"select_sax_seconds\": %.3f, "
                 "\"mine_seconds\": %.3f, \"select_patterns_seconds\": "
                 "%.3f, \"fit_seconds\": %.3f, \"candidates\": %zu, "
                 "\"patterns\": %zu, \"peak_rss_mb\": %.1f}",
                 first ? "" : ",\n", n,
                 static_cast<double>(reader.file_bytes()) / (1024.0 * 1024.0),
                 gen_seconds, open_seconds, train_seconds,
                 r.parameter_selection_seconds, r.candidate_mining_seconds,
                 r.pattern_selection_seconds, r.classifier_fit_seconds,
                 r.candidates_total, r.patterns_selected, rss_mb);
    first = false;
    std::printf("  n=%8zu  file=%7.1fMB  gen=%6.2fs open=%.4fs "
                "train=%6.2fs (mine=%5.2fs)  rss=%7.1fMB\n",
                n, static_cast<double>(reader.file_bytes()) /
                       (1024.0 * 1024.0),
                gen_seconds, open_seconds, train_seconds,
                r.candidate_mining_seconds, rss_mb);
    std::remove(path.c_str());
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_scaling.json\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::size_t max_series = 1'000'000;
  std::string workdir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--max") == 0 && i + 1 < argc) {
      max_series = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--workdir") == 0 && i + 1 < argc) {
      workdir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: scaling_bench [--json] [--max N] [--workdir D]\n");
      return 2;
    }
  }
  if (json) {
    std::printf("Archive-scale sweep (CBF, RPMD via mmap, capped "
                "training):\n");
    return ArchiveSweep(max_series, workdir);
  }

  using namespace rpm;
  std::printf("Scaling in training-set size (CBF, length 128):\n");
  for (std::size_t n : {5u, 10u, 20u, 40u}) {
    Row(ts::MakeCbf(n, 2, 128, 900 + n), 32);
  }
  std::printf("\nScaling in series length (CBF, 10 train/class):\n");
  for (std::size_t m : {64u, 128u, 256u, 512u}) {
    Row(ts::MakeCbf(10, 2, m, 950 + m), m / 4);
  }
  std::printf("\nScaling with threads (CBF 20x512, DIRECT budget 12):\n");
  for (std::size_t threads : {1u, 2u, 4u}) {
    const ts::DatasetSplit split = ts::MakeCbf(20, 2, 512, 999);
    core::RpmOptions opt;
    opt.search = core::ParameterSearch::kDirect;
    opt.direct_max_evaluations = 12;
    opt.param_splits = 2;
    opt.param_folds = 2;
    opt.num_threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    core::RpmClassifier clf(opt);
    clf.Train(split.train);
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("  threads=%zu  total=%.3fs  (R=%zu combos)\n", threads,
                std::chrono::duration<double>(t1 - t0).count(),
                clf.combos_evaluated());
  }
  return 0;
}
