// Pipeline-level scaling study for the Section 5.3 complexity analysis:
// RPM training cost as a function of (a) training-set size and (b) series
// length, with the per-stage breakdown from the TrainingReport. The
// discretization + grammar stages should scale near-linearly; the
// candidate-matching stage (Transform during selection) dominates, as the
// paper observes ("this step seems to be the bottleneck of the training
// stage due to the repeated distance call").

#include <chrono>
#include <cstdio>

#include "core/rpm.h"
#include "ts/generators.h"

namespace {

rpm::core::RpmOptions Fixed(std::size_t window) {
  rpm::core::RpmOptions opt;
  opt.search = rpm::core::ParameterSearch::kFixed;
  opt.fixed_sax.window = window;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  return opt;
}

void Row(const rpm::ts::DatasetSplit& split, std::size_t window) {
  rpm::core::RpmClassifier clf(Fixed(window));
  const auto t0 = std::chrono::steady_clock::now();
  clf.Train(split.train);
  const auto t1 = std::chrono::steady_clock::now();
  const auto& r = clf.report();
  std::printf("  n=%3zu m=%4zu  total=%7.3fs  mine=%6.3fs select=%6.3fs "
              "fit=%6.3fs  cands=%3zu k=%2zu\n",
              split.train.size(), split.train.MinLength(),
              std::chrono::duration<double>(t1 - t0).count(),
              r.candidate_mining_seconds, r.pattern_selection_seconds,
              r.classifier_fit_seconds, r.candidates_total,
              r.patterns_selected);
}

}  // namespace

int main() {
  using namespace rpm;
  std::printf("Scaling in training-set size (CBF, length 128):\n");
  for (std::size_t n : {5u, 10u, 20u, 40u}) {
    Row(ts::MakeCbf(n, 2, 128, 900 + n), 32);
  }
  std::printf("\nScaling in series length (CBF, 10 train/class):\n");
  for (std::size_t m : {64u, 128u, 256u, 512u}) {
    Row(ts::MakeCbf(10, 2, m, 950 + m), m / 4);
  }
  std::printf("\nScaling with threads (CBF 20x512, DIRECT budget 12):\n");
  for (std::size_t threads : {1u, 2u, 4u}) {
    const ts::DatasetSplit split = ts::MakeCbf(20, 2, 512, 999);
    core::RpmOptions opt;
    opt.search = core::ParameterSearch::kDirect;
    opt.direct_max_evaluations = 12;
    opt.param_splits = 2;
    opt.param_folds = 2;
    opt.num_threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    core::RpmClassifier clf(opt);
    clf.Train(split.train);
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("  threads=%zu  total=%.3fs  (R=%zu combos)\n", threads,
                std::chrono::duration<double>(t1 - t0).count(),
                clf.combos_evaluated());
  }
  return 0;
}
