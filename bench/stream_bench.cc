// Streaming-subsystem benchmark: sustained per-session ingest rate and
// per-decision latency for the sliding-window scorer, single-session and
// with 8 concurrent sessions, plus a shard sweep (1/2/4/8 shards)
// through the full sharded InferenceServer feed path. Writes
// BENCH_stream.json.
//
// The feed is a generated CBF signal (concatenated instances — the
// regime changes every series length, like a sensor switching behavior).
// The scorer's cost is one RollingStats update per sample plus, every
// `hop` samples, one window materialization + z-norm + warm-context
// best-match scan; samples/sec therefore rises with hop and falls with
// window, and the headline number pins the default demo geometry
// (window 128, hop 16).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/rpm.h"
#include "serve/server.h"
#include "stream/session_manager.h"
#include "stream/stream_scorer.h"
#include "ts/generators.h"
#include "ts/parallel.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

double PercentileUs(std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * double(values.size() - 1);
  return values[std::size_t(rank + 0.5)];
}

struct ModeResult {
  std::string name;
  std::size_t sessions = 1;
  std::size_t samples_per_session = 0;
  std::size_t decisions = 0;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  /// The acceptance metric: ingest rate of ONE session's feed.
  double samples_per_sec_per_session() const {
    return seconds > 0.0 ? double(samples_per_session) / seconds : 0.0;
  }
};

void PrintMode(const ModeResult& r) {
  std::printf(
      "%-18s %zu session(s)  %10.0f samples/s/session  %6zu decisions  "
      "p50 %7.1f us  p95 %7.1f us\n",
      r.name.c_str(), r.sessions, r.samples_per_sec_per_session(),
      r.decisions, r.p50_us, r.p95_us);
}

void AppendJson(std::string& out, const ModeResult& r) {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "\"%s\":{\"sessions\":%zu,\"samples_per_session\":%zu,"
      "\"decisions\":%zu,\"seconds\":%.4f,"
      "\"samples_per_sec_per_session\":%.0f,"
      "\"decision_p50_us\":%.1f,\"decision_p95_us\":%.1f}",
      r.name.c_str(), r.sessions, r.samples_per_session, r.decisions,
      r.seconds, r.samples_per_sec_per_session(), r.p50_us, r.p95_us);
  out += buf;
}

// Feeds the whole signal through one scorer in `chunk`-sample pieces
// (the socket-delivery shape), collecting per-decision scoring times.
ModeResult RunSession(const rpm::core::ClassificationEngine& engine,
                      const std::vector<double>& feed, std::size_t chunk) {
  rpm::stream::StreamOptions options;
  options.window = 128;
  options.hop = 16;
  const std::string error = rpm::stream::ValidateStreamOptions(&options);
  if (!error.empty()) {
    std::fprintf(stderr, "stream_bench: %s\n", error.c_str());
    std::exit(1);
  }
  rpm::stream::StreamScorer scorer(&engine, options);
  std::vector<rpm::stream::StreamDecision> decisions;
  decisions.reserve(feed.size() / options.hop + 1);

  ModeResult result;
  result.samples_per_session = feed.size();
  const auto t0 = Clock::now();
  std::size_t offset = 0;
  while (offset < feed.size()) {
    const std::size_t n = std::min(chunk, feed.size() - offset);
    const std::size_t accepted = scorer.Feed(
        rpm::ts::SeriesView(feed.data() + offset, n), &decisions);
    if (accepted == 0) {
      std::fprintf(stderr, "stream_bench: unexpected backpressure stall\n");
      std::exit(1);
    }
    offset += accepted;
  }
  result.seconds = Seconds(t0, Clock::now());
  result.decisions = decisions.size();
  std::vector<double> score_us;
  score_us.reserve(decisions.size());
  for (const auto& d : decisions) score_us.push_back(d.score_us);
  result.p50_us = PercentileUs(score_us, 50.0);
  result.p95_us = PercentileUs(score_us, 95.0);
  return result;
}

// ---- Shard sweep: the full server feed path at S = 1, 2, 4, 8 ----
//
// One session pinned to each of S shards, S feeder threads pushing the
// same signal through InferenceServer::FeedStream (chunked like the
// socket path). This measures what the sharded front end buys: feeds to
// different shards share no locks, so aggregate samples/s should scale
// with shards up to the core count. Decisions must stay bit-identical
// to the single ReplayWindows reference on every shard — sharding is a
// concurrency change, never a numeric one.

struct ShardRow {
  std::size_t shard = 0;
  double seconds = 0.0;
  std::size_t decisions = 0;
  double samples_per_sec = 0.0;
};

struct SweepResult {
  std::size_t shards = 0;
  std::size_t samples_per_session = 0;
  double seconds = 0.0;
  std::size_t decisions = 0;
  bool bit_identical = true;
  std::vector<ShardRow> rows;
  double aggregate_samples_per_sec() const {
    return seconds > 0.0
               ? double(samples_per_session * shards) / seconds
               : 0.0;
  }
};

SweepResult RunShardSweep(
    const std::string& model_blob, const std::vector<double>& feed,
    const std::vector<rpm::stream::StreamDecision>& reference,
    std::size_t shards, std::size_t chunk) {
  rpm::serve::ServerOptions server_options;
  server_options.num_shards = shards;
  server_options.streaming.reap_interval = std::chrono::nanoseconds::zero();
  rpm::serve::InferenceServer server(server_options);
  {
    std::istringstream in(model_blob);
    server.AddModel("cbf", rpm::core::RpmClassifier::Load(in));
  }

  rpm::stream::StreamOptions options;
  options.window = 128;
  options.hop = 16;
  std::vector<std::string> ids;
  for (std::size_t s = 0; s < shards; ++s) {
    const auto open = server.OpenStream("cbf", options, s);
    if (!open.ok) {
      std::fprintf(stderr, "stream_bench: open on shard %zu: %s\n", s,
                   open.error.c_str());
      std::exit(1);
    }
    ids.push_back(open.id);
  }

  SweepResult result;
  result.shards = shards;
  result.samples_per_session = feed.size();
  std::vector<ShardRow> rows(shards);
  std::vector<std::vector<rpm::stream::StreamDecision>> decisions(shards);
  const auto t0 = Clock::now();
  std::vector<std::thread> feeders;
  for (std::size_t s = 0; s < shards; ++s) {
    feeders.emplace_back([&, s] {
      const auto s0 = Clock::now();
      std::size_t offset = 0;
      while (offset < feed.size()) {
        const std::size_t n = std::min(chunk, feed.size() - offset);
        auto fed = server.FeedStream(
            ids[s], rpm::ts::SeriesView(feed.data() + offset, n));
        if (fed.status !=
            rpm::stream::StreamSessionManager::FeedStatus::kOk) {
          std::fprintf(stderr, "stream_bench: feed failed on shard %zu\n",
                       s);
          std::exit(1);
        }
        offset += fed.accepted;
        for (auto& d : fed.decisions) decisions[s].push_back(d);
      }
      rows[s].shard = s;
      rows[s].seconds = Seconds(s0, Clock::now());
      rows[s].decisions = decisions[s].size();
      rows[s].samples_per_sec =
          rows[s].seconds > 0.0 ? double(feed.size()) / rows[s].seconds
                                : 0.0;
    });
  }
  for (auto& t : feeders) t.join();
  result.seconds = Seconds(t0, Clock::now());
  result.rows = std::move(rows);

  for (std::size_t s = 0; s < shards; ++s) {
    result.decisions += decisions[s].size();
    bool same = decisions[s].size() == reference.size();
    for (std::size_t k = 0; same && k < reference.size(); ++k) {
      same = decisions[s][k].window_index == reference[k].window_index &&
             decisions[s][k].label == reference[k].label &&
             decisions[s][k].margin == reference[k].margin;
    }
    if (!same) {
      result.bit_identical = false;
      std::fprintf(stderr,
                   "stream_bench: shard %zu decisions diverge from the "
                   "blocking-path reference\n",
                   s);
    }
  }
  server.Shutdown();
  return result;
}

void AppendSweepJson(std::string& out, const SweepResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"shards\":%zu,\"samples_per_session\":%zu,"
                "\"seconds\":%.4f,\"decisions\":%zu,"
                "\"aggregate_samples_per_sec\":%.0f,"
                "\"bit_identical\":%s,\"per_shard\":[",
                r.shards, r.samples_per_session, r.seconds, r.decisions,
                r.aggregate_samples_per_sec(),
                r.bit_identical ? "true" : "false");
  out += buf;
  for (std::size_t i = 0; i < r.rows.size(); ++i) {
    if (i > 0) out += ',';
    std::snprintf(buf, sizeof(buf),
                  "{\"shard\":%zu,\"seconds\":%.4f,\"decisions\":%zu,"
                  "\"samples_per_sec\":%.0f}",
                  r.rows[i].shard, r.rows[i].seconds, r.rows[i].decisions,
                  r.rows[i].samples_per_sec);
    out += buf;
  }
  out += "]}";
}

}  // namespace

int main() {
  const rpm::ts::DatasetSplit split = rpm::ts::MakeCbf(10, 6, 128, 778);
  rpm::core::RpmOptions options;
  options.search = rpm::core::ParameterSearch::kFixed;
  options.fixed_sax.window = 32;
  options.fixed_sax.paa_size = 5;
  options.fixed_sax.alphabet = 4;
  rpm::core::RpmClassifier clf(options);
  const auto train0 = Clock::now();
  clf.Train(split.train);
  const rpm::core::ClassificationEngine engine(clf);
  std::fprintf(stderr, "[stream_bench] trained CBF: %zu patterns in %.1fs\n",
               clf.patterns().size(), Seconds(train0, Clock::now()));

  // ~1M-sample feed: long enough that steady-state throughput dominates
  // the measurement, short enough for a few-second run.
  const rpm::ts::DatasetSplit feed_split = rpm::ts::MakeCbf(1, 2700, 128, 99);
  std::vector<double> feed;
  feed.reserve(feed_split.test.size() * 128);
  for (const auto& inst : feed_split.test.instances()) {
    feed.insert(feed.end(), inst.values.begin(), inst.values.end());
  }
  std::fprintf(stderr, "[stream_bench] feed: %zu samples\n", feed.size());

  constexpr std::size_t kChunk = 256;
  constexpr int kTrials = 3;

  // Best-of-3 (scheduler-noise shield, same policy as serve_bench).
  ModeResult single = RunSession(engine, feed, kChunk);
  for (int t = 1; t < kTrials; ++t) {
    const ModeResult r = RunSession(engine, feed, kChunk);
    if (r.samples_per_sec_per_session() >
        single.samples_per_sec_per_session()) {
      single = r;
    }
  }
  single.name = "single_session";
  PrintMode(single);

  // 8 sessions fed from 8 threads: per-session rate shows the
  // interference cost (cache pressure, SMT sharing) of concurrent
  // streams; the manager's shared map is off the per-sample path.
  constexpr std::size_t kSessions = 8;
  ModeResult eight;
  eight.name = "eight_sessions";
  eight.sessions = kSessions;
  eight.samples_per_session = feed.size();
  {
    std::vector<ModeResult> per_thread(kSessions);
    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (std::size_t s = 0; s < kSessions; ++s) {
      threads.emplace_back([&, s] {
        per_thread[s] = RunSession(engine, feed, kChunk);
      });
    }
    for (auto& t : threads) t.join();
    eight.seconds = Seconds(t0, Clock::now());
    std::vector<double> all_us;
    for (const auto& r : per_thread) {
      eight.decisions += r.decisions;
      all_us.push_back(r.p50_us);  // per-session medians, summarized
    }
    eight.p50_us = PercentileUs(all_us, 50.0);
    std::vector<double> p95s;
    for (const auto& r : per_thread) p95s.push_back(r.p95_us);
    eight.p95_us = PercentileUs(p95s, 50.0);
  }
  PrintMode(eight);

  const bool pass = single.samples_per_sec_per_session() >= 100000.0;
  std::printf("single-session sustained rate: %.0f samples/s (%s 100k floor)\n",
              single.samples_per_sec_per_session(),
              pass ? "meets" : "BELOW");

  // Shard sweep through the sharded server (one pinned session per
  // shard, S feeder threads). A shorter feed than the scorer modes: the
  // sweep runs 4 configurations and up to 8 concurrent sessions.
  std::string model_blob;
  {
    std::stringstream out;
    clf.Save(out);
    model_blob = out.str();
  }
  const std::vector<double> sweep_feed(
      feed.begin(),
      feed.begin() +
          std::min<std::size_t>(feed.size(), std::size_t{128} * 1024));
  rpm::stream::StreamOptions sweep_options;
  sweep_options.window = 128;
  sweep_options.hop = 16;
  const std::vector<rpm::stream::StreamDecision> reference =
      rpm::stream::ReplayWindows(
          engine,
          rpm::ts::SeriesView(sweep_feed.data(), sweep_feed.size()),
          sweep_options);
  bool sweep_identical = true;
  std::vector<SweepResult> sweep;
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    SweepResult r =
        RunShardSweep(model_blob, sweep_feed, reference, shards, kChunk);
    std::printf(
        "shard sweep %zu shard(s): %10.0f samples/s aggregate  "
        "%6zu decisions  %s\n",
        r.shards, r.aggregate_samples_per_sec(), r.decisions,
        r.bit_identical ? "bit-identical" : "DIVERGED");
    sweep_identical = sweep_identical && r.bit_identical;
    sweep.push_back(std::move(r));
  }

  std::string json = "{\"bench\":\"stream\",\"dataset\":\"CBF\",";
  json += "\"window\":128,\"hop\":16,\"chunk\":" + std::to_string(kChunk) +
          ",";
  json += "\"threads\":" + std::to_string(rpm::ts::DefaultThreads()) + ",";
  AppendJson(json, single);
  json += ",";
  AppendJson(json, eight);
  json += ",\"shard_sweep\":[";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (i > 0) json += ',';
    AppendSweepJson(json, sweep[i]);
  }
  json += "]}";
  std::FILE* f = std::fopen("BENCH_stream.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_stream.json\n");
    return 1;
  }
  std::fprintf(f, "%s\n", json.c_str());
  std::fclose(f);
  std::printf("-> BENCH_stream.json\n");
  return (pass && sweep_identical) ? 0 : 1;
}
