// Streaming-subsystem benchmark: sustained per-session ingest rate and
// per-decision latency for the sliding-window scorer, single-session and
// with 8 concurrent sessions. Writes BENCH_stream.json.
//
// The feed is a generated CBF signal (concatenated instances — the
// regime changes every series length, like a sensor switching behavior).
// The scorer's cost is one RollingStats update per sample plus, every
// `hop` samples, one window materialization + z-norm + warm-context
// best-match scan; samples/sec therefore rises with hop and falls with
// window, and the headline number pins the default demo geometry
// (window 128, hop 16).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/rpm.h"
#include "stream/session_manager.h"
#include "stream/stream_scorer.h"
#include "ts/generators.h"
#include "ts/parallel.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

double PercentileUs(std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * double(values.size() - 1);
  return values[std::size_t(rank + 0.5)];
}

struct ModeResult {
  std::string name;
  std::size_t sessions = 1;
  std::size_t samples_per_session = 0;
  std::size_t decisions = 0;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  /// The acceptance metric: ingest rate of ONE session's feed.
  double samples_per_sec_per_session() const {
    return seconds > 0.0 ? double(samples_per_session) / seconds : 0.0;
  }
};

void PrintMode(const ModeResult& r) {
  std::printf(
      "%-18s %zu session(s)  %10.0f samples/s/session  %6zu decisions  "
      "p50 %7.1f us  p95 %7.1f us\n",
      r.name.c_str(), r.sessions, r.samples_per_sec_per_session(),
      r.decisions, r.p50_us, r.p95_us);
}

void AppendJson(std::string& out, const ModeResult& r) {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "\"%s\":{\"sessions\":%zu,\"samples_per_session\":%zu,"
      "\"decisions\":%zu,\"seconds\":%.4f,"
      "\"samples_per_sec_per_session\":%.0f,"
      "\"decision_p50_us\":%.1f,\"decision_p95_us\":%.1f}",
      r.name.c_str(), r.sessions, r.samples_per_session, r.decisions,
      r.seconds, r.samples_per_sec_per_session(), r.p50_us, r.p95_us);
  out += buf;
}

// Feeds the whole signal through one scorer in `chunk`-sample pieces
// (the socket-delivery shape), collecting per-decision scoring times.
ModeResult RunSession(const rpm::core::ClassificationEngine& engine,
                      const std::vector<double>& feed, std::size_t chunk) {
  rpm::stream::StreamOptions options;
  options.window = 128;
  options.hop = 16;
  const std::string error = rpm::stream::ValidateStreamOptions(&options);
  if (!error.empty()) {
    std::fprintf(stderr, "stream_bench: %s\n", error.c_str());
    std::exit(1);
  }
  rpm::stream::StreamScorer scorer(&engine, options);
  std::vector<rpm::stream::StreamDecision> decisions;
  decisions.reserve(feed.size() / options.hop + 1);

  ModeResult result;
  result.samples_per_session = feed.size();
  const auto t0 = Clock::now();
  std::size_t offset = 0;
  while (offset < feed.size()) {
    const std::size_t n = std::min(chunk, feed.size() - offset);
    const std::size_t accepted = scorer.Feed(
        rpm::ts::SeriesView(feed.data() + offset, n), &decisions);
    if (accepted == 0) {
      std::fprintf(stderr, "stream_bench: unexpected backpressure stall\n");
      std::exit(1);
    }
    offset += accepted;
  }
  result.seconds = Seconds(t0, Clock::now());
  result.decisions = decisions.size();
  std::vector<double> score_us;
  score_us.reserve(decisions.size());
  for (const auto& d : decisions) score_us.push_back(d.score_us);
  result.p50_us = PercentileUs(score_us, 50.0);
  result.p95_us = PercentileUs(score_us, 95.0);
  return result;
}

}  // namespace

int main() {
  const rpm::ts::DatasetSplit split = rpm::ts::MakeCbf(10, 6, 128, 778);
  rpm::core::RpmOptions options;
  options.search = rpm::core::ParameterSearch::kFixed;
  options.fixed_sax.window = 32;
  options.fixed_sax.paa_size = 5;
  options.fixed_sax.alphabet = 4;
  rpm::core::RpmClassifier clf(options);
  const auto train0 = Clock::now();
  clf.Train(split.train);
  const rpm::core::ClassificationEngine engine(clf);
  std::fprintf(stderr, "[stream_bench] trained CBF: %zu patterns in %.1fs\n",
               clf.patterns().size(), Seconds(train0, Clock::now()));

  // ~1M-sample feed: long enough that steady-state throughput dominates
  // the measurement, short enough for a few-second run.
  const rpm::ts::DatasetSplit feed_split = rpm::ts::MakeCbf(1, 2700, 128, 99);
  std::vector<double> feed;
  feed.reserve(feed_split.test.size() * 128);
  for (const auto& inst : feed_split.test.instances()) {
    feed.insert(feed.end(), inst.values.begin(), inst.values.end());
  }
  std::fprintf(stderr, "[stream_bench] feed: %zu samples\n", feed.size());

  constexpr std::size_t kChunk = 256;
  constexpr int kTrials = 3;

  // Best-of-3 (scheduler-noise shield, same policy as serve_bench).
  ModeResult single = RunSession(engine, feed, kChunk);
  for (int t = 1; t < kTrials; ++t) {
    const ModeResult r = RunSession(engine, feed, kChunk);
    if (r.samples_per_sec_per_session() >
        single.samples_per_sec_per_session()) {
      single = r;
    }
  }
  single.name = "single_session";
  PrintMode(single);

  // 8 sessions fed from 8 threads: per-session rate shows the
  // interference cost (cache pressure, SMT sharing) of concurrent
  // streams; the manager's shared map is off the per-sample path.
  constexpr std::size_t kSessions = 8;
  ModeResult eight;
  eight.name = "eight_sessions";
  eight.sessions = kSessions;
  eight.samples_per_session = feed.size();
  {
    std::vector<ModeResult> per_thread(kSessions);
    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (std::size_t s = 0; s < kSessions; ++s) {
      threads.emplace_back([&, s] {
        per_thread[s] = RunSession(engine, feed, kChunk);
      });
    }
    for (auto& t : threads) t.join();
    eight.seconds = Seconds(t0, Clock::now());
    std::vector<double> all_us;
    for (const auto& r : per_thread) {
      eight.decisions += r.decisions;
      all_us.push_back(r.p50_us);  // per-session medians, summarized
    }
    eight.p50_us = PercentileUs(all_us, 50.0);
    std::vector<double> p95s;
    for (const auto& r : per_thread) p95s.push_back(r.p95_us);
    eight.p95_us = PercentileUs(p95s, 50.0);
  }
  PrintMode(eight);

  const bool pass = single.samples_per_sec_per_session() >= 100000.0;
  std::printf("single-session sustained rate: %.0f samples/s (%s 100k floor)\n",
              single.samples_per_sec_per_session(),
              pass ? "meets" : "BELOW");

  std::string json = "{\"bench\":\"stream\",\"dataset\":\"CBF\",";
  json += "\"window\":128,\"hop\":16,\"chunk\":" + std::to_string(kChunk) +
          ",";
  json += "\"threads\":" + std::to_string(rpm::ts::DefaultThreads()) + ",";
  AppendJson(json, single);
  json += ",";
  AppendJson(json, eight);
  json += "}";
  std::FILE* f = std::fopen("BENCH_stream.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_stream.json\n");
    return 1;
  }
  std::fprintf(f, "%s\n", json.c_str());
  std::fclose(f);
  std::printf("-> BENCH_stream.json\n");
  return pass ? 0 : 1;
}
