// Regenerates the Section 6.2 case study: normal-vs-alarm classification
// of arterial blood pressure strips (synthetic MIMIC-II stand-in), all
// six methods compared, as in the case-study discussion.

#include <cstdio>

#include "harness.h"
#include "ml/metrics.h"

int main() {
  using namespace rpm;
  const double scale = bench::BenchScale();
  const auto n = static_cast<std::size_t>(15 * scale < 4 ? 4 : 15 * scale);
  const ts::DatasetSplit split =
      ts::MakeAbpAlarm(n, 3 * n, 240, 20160315);

  std::printf("Case study (Section 6.2): ABP normal vs alarm, "
              "%zu train / %zu test\n",
              split.train.size(), split.test.size());
  std::printf("%-10s%10s%12s%12s\n", "method", "error", "F1(normal)",
              "F1(alarm)");
  for (const auto& name : bench::MethodNames()) {
    std::unique_ptr<baselines::Classifier> clf;
    if (name == "RPM") {
      // The alarm signature spans >1 beat; fix the window accordingly
      // rather than spending the search budget (see DESIGN.md E7).
      core::RpmOptions opt;
      opt.search = core::ParameterSearch::kFixed;
      opt.fixed_sax.window = 60;
      opt.fixed_sax.paa_size = 6;
      opt.fixed_sax.alphabet = 4;
      // Alarm class mixes three morphologies: gamma below each subtype's
      // ~1/3 share keeps their motifs alive.
      opt.gamma = 0.1;
      clf = std::make_unique<baselines::RpmAdapter>(opt);
    } else {
      clf = bench::MakeMethod(name);
    }
    clf->Train(split.train);
    std::vector<int> truth;
    for (const auto& inst : split.test) truth.push_back(inst.label);
    const auto pred = clf->ClassifyAll(split.test);
    const auto scores = ml::PerClassScores(pred, truth);
    std::printf("%-10s%10.4f%12.3f%12.3f\n", name.c_str(),
                ml::ErrorRate(pred, truth), scores.at(1).f1,
                scores.at(2).f1);
  }
  return 0;
}
