// Ablation benches for the design decisions called out in DESIGN.md §5:
//   1. numerosity reduction on/off
//   2. centroid vs medoid cluster prototype
//   3. DIRECT vs exhaustive grid parameter search (quality + combos)
//   4. junction filtering on/off
//   5. rotation-invariant transform cost on unrotated data

#include <chrono>
#include <cstdio>

#include "core/rpm.h"
#include "harness.h"

namespace {

struct Measured {
  double error;
  double seconds;
  std::size_t patterns;
  std::size_t combos;
};

Measured Run(const rpm::ts::DatasetSplit& split,
             const rpm::core::RpmOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  rpm::core::RpmClassifier clf(opt);
  clf.Train(split.train);
  const double err = clf.Evaluate(split.test);
  const auto t1 = std::chrono::steady_clock::now();
  return {err, std::chrono::duration<double>(t1 - t0).count(),
          clf.patterns().size(), clf.combos_evaluated()};
}

}  // namespace

int main() {
  using namespace rpm;
  const ts::DatasetSplit cbf = ts::MakeCbf(10, 30, 128, 20160316);
  const ts::DatasetSplit ctrl =
      ts::MakeSyntheticControl(10, 20, 60, 20160317);

  core::RpmOptions base;
  base.search = core::ParameterSearch::kFixed;
  base.fixed_sax.window = 32;
  base.fixed_sax.paa_size = 5;
  base.fixed_sax.alphabet = 4;

  std::printf("Ablation benches (CBF / SyntheticControl)\n\n");

  for (const auto* split : {&cbf, &ctrl}) {
    core::RpmOptions opt = base;
    opt.fixed_sax.window = split->train.MinLength() / 4;
    std::printf("== %s ==\n", split->name.c_str());

    {
      core::RpmOptions a = opt;
      core::RpmOptions b = opt;
      b.numerosity_reduction = false;
      const Measured ma = Run(*split, a);
      const Measured mb = Run(*split, b);
      std::printf("numerosity reduction  on:  err=%.4f t=%.2fs k=%zu\n",
                  ma.error, ma.seconds, ma.patterns);
      std::printf("numerosity reduction  off: err=%.4f t=%.2fs k=%zu\n",
                  mb.error, mb.seconds, mb.patterns);
    }
    {
      core::RpmOptions a = opt;
      core::RpmOptions b = opt;
      b.prototype = core::ClusterPrototype::kMedoid;
      const Measured ma = Run(*split, a);
      const Measured mb = Run(*split, b);
      std::printf("prototype centroid:        err=%.4f k=%zu\n", ma.error,
                  ma.patterns);
      std::printf("prototype medoid:          err=%.4f k=%zu\n", mb.error,
                  mb.patterns);
    }
    {
      core::RpmOptions a = opt;
      core::RpmOptions b = opt;
      b.filter_junctions = false;
      const Measured ma = Run(*split, a);
      const Measured mb = Run(*split, b);
      std::printf("junction filter on:        err=%.4f k=%zu\n", ma.error,
                  ma.patterns);
      std::printf("junction filter off:       err=%.4f k=%zu\n", mb.error,
                  mb.patterns);
    }
    {
      core::RpmOptions a = opt;
      a.search = core::ParameterSearch::kDirect;
      a.direct_max_evaluations = 16;
      a.param_splits = 2;
      a.param_folds = 3;
      core::RpmOptions b = a;
      b.search = core::ParameterSearch::kGrid;
      b.grid_window_step = 8;
      const Measured ma = Run(*split, a);
      const Measured mb = Run(*split, b);
      std::printf("search DIRECT:             err=%.4f t=%.2fs R=%zu\n",
                  ma.error, ma.seconds, ma.combos);
      std::printf("search grid:               err=%.4f t=%.2fs R=%zu\n",
                  mb.error, mb.seconds, mb.combos);
    }
    {
      core::RpmOptions a = opt;
      core::RpmOptions b = opt;
      b.rotation_invariant = true;
      const Measured ma = Run(*split, a);
      const Measured mb = Run(*split, b);
      std::printf("rotation-invariant off:    err=%.4f t=%.2fs\n", ma.error,
                  ma.seconds);
      std::printf("rotation-invariant on:     err=%.4f t=%.2fs\n", mb.error,
                  mb.seconds);
    }
    std::printf("\n");
  }
  return 0;
}
