// Regenerates Table 3 / Figure 9: sensitivity of RPM's running time and
// classification error to the similarity threshold tau, swept over the
// 10th/30th/50th/70th/90th percentiles of within-cluster pairwise
// distances (Section 3.2.3). The paper's finding to reproduce: error
// varies by well under 10 % across the sweep, while runtime falls as tau
// grows (more aggressive candidate pruning).

#include <chrono>
#include <cstdio>

#include "core/rpm.h"
#include "harness.h"

int main() {
  using namespace rpm;
  const double percentiles[] = {10.0, 30.0, 50.0, 70.0, 90.0};
  ts::SuiteOptions suite_options;
  suite_options.size_scale = bench::BenchScale();
  const std::vector<ts::DatasetSplit> datasets = {
      ts::MakeCbf(10, 30, 128, suite_options.seed + 1),
      ts::MakeGunPoint(12, 40, 150, suite_options.seed + 4),
      ts::MakeEcg(12, 40, 136, suite_options.seed + 6),
      ts::MakeCoffee(14, 14, 200, suite_options.seed + 5)};

  std::printf("Table 3 / Figure 9: tau percentile sweep (RPM, fixed SAX)\n");
  std::printf("%-14s", "dataset");
  for (double p : percentiles) std::printf("    err@%02.0f  time@%02.0f", p, p);
  std::printf("\n");

  std::vector<double> mean_err(5, 0.0);
  std::vector<double> mean_time(5, 0.0);
  for (const auto& split : datasets) {
    std::printf("%-14s", split.name.c_str());
    for (std::size_t i = 0; i < 5; ++i) {
      core::RpmOptions opt;
      opt.search = core::ParameterSearch::kFixed;
      opt.fixed_sax.window = split.train.MinLength() / 4;
      opt.fixed_sax.paa_size = 5;
      opt.fixed_sax.alphabet = 4;
      opt.tau_percentile = percentiles[i];
      core::RpmClassifier clf(opt);
      const auto t0 = std::chrono::steady_clock::now();
      clf.Train(split.train);
      const double err = clf.Evaluate(split.test);
      const auto t1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      mean_err[i] += err / 4.0;
      mean_time[i] += secs / 4.0;
      std::printf("  %8.4f  %7.3fs", err, secs);
    }
    std::printf("\n");
  }
  std::printf("%-14s", "mean");
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("  %8.4f  %7.3fs", mean_err[i], mean_time[i]);
  }
  std::printf("\n\nerror change vs tau=30: ");
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("%+.1f%% ", 100.0 * (mean_err[i] - mean_err[1]));
  }
  std::printf("\n");
  return 0;
}
