// Regenerates Table 1: classification error rate of NN-ED, NN-DTWB,
// SAX-VSM, FS, LS and RPM on the dataset suite, the "# of best (including
// ties)" row, and the Wilcoxon signed-rank p-values of each method vs RPM
// (the footer of Table 1 / Figure 7).

#include <algorithm>
#include <cstdio>
#include <set>

#include "harness.h"
#include "ml/wilcoxon.h"

int main() {
  using namespace rpm;
  const auto results = bench::RunOrLoadSuiteResults();
  const auto idx = bench::Index(results);
  const auto& methods = bench::MethodNames();

  std::set<std::string> dataset_set;
  std::vector<std::string> datasets;
  for (const auto& r : results) {
    if (dataset_set.insert(r.dataset).second) datasets.push_back(r.dataset);
  }

  std::printf("Table 1: classification error rates\n");
  std::printf("%-18s", "Dataset");
  for (const auto& m : methods) std::printf("%10s", m.c_str());
  std::printf("\n");

  std::map<std::string, int> best_count;
  std::map<std::string, std::vector<double>> per_method_errors;
  for (const auto& ds : datasets) {
    std::printf("%-18s", ds.c_str());
    double best = 1e9;
    for (const auto& m : methods) {
      best = std::min(best, idx.at({ds, m}).error);
    }
    for (const auto& m : methods) {
      const double e = idx.at({ds, m}).error;
      per_method_errors[m].push_back(e);
      std::printf(e <= best + 1e-12 ? "%9.4f*" : "%10.4f", e);
      if (e <= best + 1e-12) ++best_count[m];
    }
    std::printf("\n");
  }

  std::printf("%-18s", "# of best (ties)");
  for (const auto& m : methods) std::printf("%10d", best_count[m]);
  std::printf("\n\nWilcoxon signed-rank test, method vs RPM (two-sided):\n");
  for (const auto& m : methods) {
    if (m == "RPM") continue;
    const auto w = ml::WilcoxonSignedRank(per_method_errors[m],
                                          per_method_errors["RPM"]);
    std::printf("  %-8s vs RPM: W=%6.1f  p=%.4f  (n=%zu)\n", m.c_str(),
                w.statistic, w.p_value, w.n_nonzero);
  }

  // Shape check against the paper: RPM should be among the two most
  // accurate methods overall (Section 5.2: "second best ... slightly lose
  // to Learning Shapelets").
  std::vector<std::pair<double, std::string>> mean_rank;
  for (const auto& m : methods) {
    double mean = 0.0;
    for (double e : per_method_errors[m]) mean += e;
    mean_rank.emplace_back(mean / static_cast<double>(datasets.size()), m);
  }
  std::sort(mean_rank.begin(), mean_rank.end());
  std::printf("\nmean error ranking:\n");
  for (const auto& [mean, m] : mean_rank) {
    std::printf("  %-8s %.4f\n", m.c_str(), mean);
  }
  return 0;
}
