// Serving-layer benchmark: per-request classification (the pre-serve
// status quo — every Classify call rebuilds all K pattern contexts) vs
// the batched inference server, single-stream and with 16 concurrent
// clients. Writes BENCH_serve.json with throughput and p50/p99 latency
// per mode, and BENCH_serve_metrics.json with the METRICS scrape taken
// at the end of the run (observability — tracing at the rpm_serve
// default 1/16 sampling — stays enabled throughout, so the bench
// numbers measure the instrumented configuration).
//
// The serving win measured here is context amortization and micro-
// batching; on multi-core hosts batch dispatch additionally spreads rows
// across the PR-1 thread pool.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/rpm.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "ts/generators.h"
#include "ts/parallel.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

struct ModeResult {
  std::string name;
  std::size_t requests = 0;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double throughput_rps() const {
    return seconds > 0.0 ? double(requests) / seconds : 0.0;
  }
};

double PercentileUs(std::vector<double>& latencies, double p) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const double rank = p / 100.0 * double(latencies.size() - 1);
  return latencies[std::size_t(rank + 0.5)];
}

// The pre-serve baseline: sequential Classify calls, one request at a
// time, contexts rebuilt inside every call.
ModeResult RunPerRequest(const rpm::core::RpmClassifier& clf,
                         const rpm::ts::Dataset& requests) {
  ModeResult result;
  result.name = "per_request";
  result.requests = requests.size();
  std::vector<double> latencies;
  latencies.reserve(requests.size());
  volatile int sink = 0;
  const auto t0 = Clock::now();
  for (const auto& inst : requests) {
    const auto r0 = Clock::now();
    sink = sink + clf.Classify(inst.values);
    latencies.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - r0)
            .count());
  }
  result.seconds = Seconds(t0, Clock::now());
  result.p50_us = PercentileUs(latencies, 50.0);
  result.p99_us = PercentileUs(latencies, 99.0);
  return result;
}

// Blocking clients driving the server concurrently; `clients == 1` is the
// single-stream serve mode.
ModeResult RunServeClients(rpm::serve::InferenceServer& server,
                           const rpm::ts::Dataset& requests,
                           std::size_t clients) {
  ModeResult result;
  result.name =
      clients == 1 ? "serve_single_stream"
                   : "serve_" + std::to_string(clients) + "_clients";
  result.requests = requests.size();
  std::vector<std::vector<double>> latencies(clients);
  const std::size_t per_client = requests.size() / clients;

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        const auto& inst = requests[(c * per_client + i) % requests.size()];
        const auto r0 = Clock::now();
        const rpm::serve::ClassifyResult r = server.Classify(
            "bench", inst.values, std::chrono::seconds(120));
        if (r.status != rpm::serve::StatusCode::kOk) {
          std::fprintf(stderr, "serve_bench: unexpected status %.*s\n",
                       int(StatusName(r.status).size()),
                       StatusName(r.status).data());
          std::exit(1);
        }
        latencies[c].push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - r0)
                .count());
      }
    });
  }
  for (auto& t : threads) t.join();
  result.seconds = Seconds(t0, Clock::now());
  result.requests = per_client * clients;

  std::vector<double> all;
  for (const auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
  result.p50_us = PercentileUs(all, 50.0);
  result.p99_us = PercentileUs(all, 99.0);
  return result;
}

void PrintMode(const ModeResult& r) {
  std::printf("%-22s %6zu req  %8.2f req/s  p50 %8.1f us  p99 %8.1f us\n",
              r.name.c_str(), r.requests, r.throughput_rps(), r.p50_us,
              r.p99_us);
}

void AppendJson(std::string& out, const ModeResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"requests\":%zu,\"seconds\":%.4f,"
                "\"throughput_rps\":%.2f,\"p50_us\":%.1f,\"p99_us\":%.1f}",
                r.name.c_str(), r.requests, r.seconds, r.throughput_rps(),
                r.p50_us, r.p99_us);
  out += buf;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 16);
  for (const char c : text) {
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

bool WriteFile(const char* path, const std::string& content) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  std::fprintf(f, "%s\n", content.c_str());
  std::fclose(f);
  return true;
}

}  // namespace

int main() {
  // Observability on for the whole run, at the same sampling rate
  // rpm_serve defaults to: the published numbers are for the
  // instrumented configuration (acceptance bar: < 3% vs the
  // pre-observability snapshot).
  rpm::obs::Tracer::Default().set_sample_every(16);
  rpm::obs::Tracer::Default().Enable(true);

  // A long-pattern model: window near the series length means each
  // representative pattern spans most of the series, so the per-call
  // context rebuild (z-norm copy + O(n log n) sort per pattern) that the
  // baseline pays on every request dominates the comparatively short
  // sliding-window scan. This is the regime the serving layer's warm
  // contexts are built for.
  const rpm::ts::DatasetSplit split = rpm::ts::MakeTrace(160, 10, 512, 7);
  rpm::core::RpmOptions options;
  options.search = rpm::core::ParameterSearch::kFixed;
  options.fixed_sax.window = 448;
  options.fixed_sax.paa_size = 8;
  options.fixed_sax.alphabet = 5;
  options.gamma = 0.001;
  options.tau_percentile = 10;
  rpm::core::RpmClassifier clf(options);
  const auto train0 = Clock::now();
  clf.Train(split.train);
  std::size_t pattern_values = 0;
  for (const auto& p : clf.patterns()) pattern_values += p.values.size();
  std::fprintf(stderr,
               "[serve_bench] trained: %zu patterns (mean length %.0f) "
               "in %.1fs (%zu train)\n",
               clf.patterns().size(),
               clf.patterns().empty()
                   ? 0.0
                   : double(pattern_values) / double(clf.patterns().size()),
               Seconds(train0, Clock::now()), split.train.size());

  // Request stream: the test split cycled. Sized so the slowest mode
  // still finishes in seconds.
  rpm::ts::Dataset requests;
  const std::size_t kRequests = 800;
  for (std::size_t i = 0; i < kRequests; ++i) {
    requests.Add(split.test[i % split.test.size()]);
  }

  // Best-of-3 trials per mode: a 1-core box shares its core with the OS,
  // so any single trial can be distorted by scheduler noise; the best
  // trial is the least-perturbed measurement of each mode.
  constexpr int kTrials = 3;

  ModeResult per_request = RunPerRequest(clf, requests);
  for (int t = 1; t < kTrials; ++t) {
    const ModeResult r = RunPerRequest(clf, requests);
    if (r.throughput_rps() > per_request.throughput_rps()) per_request = r;
  }
  PrintMode(per_request);

  rpm::serve::ServerOptions server_options;
  server_options.batching.max_batch_size = 32;
  // Closed-loop clients resubmit right after their batch completes; a
  // linger a few hundred us wide collects all of them into the next
  // micro-batch instead of dispatching fragments.
  server_options.batching.max_linger = std::chrono::microseconds(150);
  server_options.batching.max_queue_depth = 1024;
  server_options.default_timeout = std::chrono::seconds(120);

  ModeResult single_stream;
  ModeResult clients16;
  std::string metrics_text;
  std::string spans_json;
  std::string stats_json;
  {
    rpm::serve::InferenceServer server(server_options);
    server.AddModel("bench", std::move(clf));
    single_stream = RunServeClients(server, requests, 1);
    for (int t = 1; t < kTrials; ++t) {
      const ModeResult r = RunServeClients(server, requests, 1);
      if (r.throughput_rps() > single_stream.throughput_rps())
        single_stream = r;
    }
    PrintMode(single_stream);
    clients16 = RunServeClients(server, requests, 16);
    for (int t = 1; t < kTrials; ++t) {
      const ModeResult r = RunServeClients(server, requests, 16);
      if (r.throughput_rps() > clients16.throughput_rps()) clients16 = r;
    }
    PrintMode(clients16);
    stats_json = server.Stats().ToJson();
    std::fprintf(stderr, "[serve_bench] server stats: %s\n",
                 stats_json.c_str());
    // The METRICS scrape and recent spans, captured while the server is
    // still in scope (its registry dies with it).
    metrics_text = server.MetricsText();
    spans_json = server.HandleLine("TRACE 64").substr(3);  // strip "OK "
  }

  const double speedup =
      clients16.throughput_rps() / per_request.throughput_rps();
  std::printf("16-client speedup vs per-request classification: %.2fx\n",
              speedup);

  std::string json = "{\"bench\":\"serve\",\"dataset\":\"Trace\",";
  json += "\"threads\":" + std::to_string(rpm::ts::DefaultThreads()) + ",";
  AppendJson(json, per_request);
  json += ",";
  AppendJson(json, single_stream);
  json += ",";
  AppendJson(json, clients16);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"speedup_16c_vs_per_request\":%.3f}",
                speedup);
  json += buf;
  if (!WriteFile("BENCH_serve.json", json)) return 1;
  std::printf("-> BENCH_serve.json\n");

  // The end-of-run observability scrape: the full Prometheus text (as
  // one escaped string), the final STATS JSON (same registry — the two
  // must agree), and the most recent sampled spans.
  std::string metrics_json = "{\"bench\":\"serve_metrics\",";
  metrics_json += "\"stats\":" + stats_json + ",";
  metrics_json += "\"spans\":" + spans_json + ",";
  metrics_json +=
      "\"prometheus_text\":\"" + JsonEscape(metrics_text) + "\"}";
  if (!WriteFile("BENCH_serve_metrics.json", metrics_json)) return 1;
  std::printf("-> BENCH_serve_metrics.json\n");
  return 0;
}
