// Micro-benchmarks (google-benchmark) for the Section 5.3 complexity
// claims: SAX discretization and Sequitur inference are linear in the
// input; the best-match scan is the classification-time hot loop; DTW
// cost scales with the band width.
//
// `--json` skips the google-benchmark suite and instead times (a) the
// batched matching engine against the legacy per-call kernel on a
// 50-pattern x 200-series workload and (b) the LB-cascaded 1NN-DTW
// against full banded DTW at a 10 % band, writing BENCH_kernels.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "distance/approximate.h"
#include "distance/dtw.h"
#include "distance/euclidean.h"
#include "distance/isa_dispatch.h"
#include "distance/matcher.h"
#include "distance/pattern_store.h"
#include "grammar/motifs.h"
#include "grammar/repair.h"
#include "grammar/sequitur.h"
#include "sax/sax.h"
#include "ts/rng.h"
#include "ts/znorm.h"

namespace {

rpm::ts::Series RandomWalk(std::size_t n, std::uint64_t seed) {
  rpm::ts::Rng rng(seed);
  rpm::ts::Series s(n);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v += rng.Gaussian(0.0, 1.0);
    s[i] = v;
  }
  return s;
}

void BM_SaxDiscretize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const rpm::ts::Series s = RandomWalk(n, 1);
  rpm::sax::SaxOptions opt;
  opt.window = 32;
  opt.paa_size = 6;
  opt.alphabet = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpm::sax::DiscretizeSlidingWindow(s, opt));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SaxDiscretize)->Range(256, 16384)->Complexity(benchmark::oN);

void BM_SequiturInfer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rpm::ts::Rng rng(2);
  std::vector<std::uint32_t> tokens(n);
  for (auto& t : tokens) {
    t = static_cast<std::uint32_t>(rng.UniformInt(0, 7));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpm::grammar::InferGrammar(tokens));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SequiturInfer)->Range(256, 16384)->Complexity(benchmark::oN);

void BM_RePairInfer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rpm::ts::Rng rng(2);
  std::vector<std::uint32_t> tokens(n);
  for (auto& t : tokens) {
    t = static_cast<std::uint32_t>(rng.UniformInt(0, 7));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpm::grammar::InferGrammarRePair(tokens));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RePairInfer)->Range(256, 8192)->Complexity();

void BM_BestMatchApprox(benchmark::State& state) {
  const auto hay_len = static_cast<std::size_t>(state.range(0));
  const rpm::ts::Series hay = RandomWalk(hay_len, 3);
  rpm::ts::Series pattern = RandomWalk(32, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rpm::distance::FindBestMatchApprox(pattern, hay));
  }
}
BENCHMARK(BM_BestMatchApprox)->Range(256, 8192);

void BM_BestMatchScan(benchmark::State& state) {
  const auto hay_len = static_cast<std::size_t>(state.range(0));
  const rpm::ts::Series hay = RandomWalk(hay_len, 3);
  rpm::ts::Series pattern = RandomWalk(32, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpm::distance::FindBestMatchNaive(pattern, hay));
  }
}
BENCHMARK(BM_BestMatchScan)->Range(256, 8192);

// Batched engine on the same workload, contexts prebuilt: what the
// transform stage pays per pattern x series after amortization.
void BM_BestMatchBatched(benchmark::State& state) {
  const auto hay_len = static_cast<std::size_t>(state.range(0));
  const rpm::ts::Series hay = RandomWalk(hay_len, 3);
  rpm::ts::Series pattern = RandomWalk(32, 4);
  const rpm::distance::PatternContext pattern_ctx(pattern);
  const rpm::distance::SeriesContext hay_ctx(hay);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rpm::distance::BatchedBestMatch(pattern_ctx, hay_ctx));
  }
}
BENCHMARK(BM_BestMatchBatched)->Range(256, 8192);

void BM_DtwBanded(benchmark::State& state) {
  const std::size_t n = 256;
  const auto band = static_cast<std::size_t>(state.range(0));
  const rpm::ts::Series a = RandomWalk(n, 5);
  const rpm::ts::Series b = RandomWalk(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpm::distance::Dtw(a, b, band));
  }
}
BENCHMARK(BM_DtwBanded)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_LbKeogh(benchmark::State& state) {
  const std::size_t n = 256;
  const rpm::ts::Series a = RandomWalk(n, 7);
  const rpm::ts::Series b = RandomWalk(n, 8);
  const rpm::distance::Envelope env = rpm::distance::MakeEnvelope(b, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpm::distance::LbKeogh(a, env));
  }
}
BENCHMARK(BM_LbKeogh);

void BM_MotifCandidates(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const rpm::ts::Series s = RandomWalk(n, 9);
  rpm::sax::SaxOptions opt;
  opt.window = 32;
  opt.paa_size = 5;
  opt.alphabet = 4;
  const auto records = rpm::sax::DiscretizeSlidingWindow(s, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpm::grammar::FindMotifCandidates(
        records, opt.window, s.size(), {}, true));
  }
}
BENCHMARK(BM_MotifCandidates)->Range(512, 8192);

// --json workload: 50 patterns (lengths 16..64) matched into 200 series
// of length 256, the shape of one transform pass over a mid-sized UCR
// dataset. Three exact kernels are timed on it:
//   * best_match_per_call — the legacy kernel (re-sorts the pattern and
//     re-derives window moments on every pair);
//   * best_match_batched  — the per-pattern batched engine (contexts
//     prebuilt, one scan per pattern x series);
//   * best_match_soa      — the length-bucketed SoA store behind
//     MatchAll (window-major, one moments pass per window block shared
//     by the bucket), plus one row per ISA tier via ForceIsaTier and one
//     row per length bucket via MatchBucket.
// Two training-loop rows ride the same workload: match_all_seeded (the
// cutoff-seeded scan the shapelet baselines feed with info-gain
// cutoffs) and any_below (the first-hit existence sweep behind the
// distinct-selection tau tests), each also pinned per ISA tier.
// Context/store construction is charged to the side that uses it.
//
// checksum_drift is the forced-scalar vs dispatched-tier difference of
// the summed SoA distances: the tiers are bit-identical by construction,
// so the drift must be exactly zero and the run aborts otherwise. The
// naive-vs-SoA gap (different moments algorithm, rounding-level) is kept
// as the informational legacy_checksum_gap.
void RunJsonWorkload() {
  constexpr std::size_t kPatterns = 50;
  constexpr std::size_t kSeries = 200;
  constexpr std::size_t kSeriesLen = 256;

  std::vector<rpm::ts::Series> patterns;
  patterns.reserve(kPatterns);
  for (std::size_t p = 0; p < kPatterns; ++p) {
    rpm::ts::Series s = RandomWalk(16 + (p * 48) / (kPatterns - 1), 100 + p);
    rpm::ts::ZNormalizeInPlace(s);
    patterns.push_back(std::move(s));
  }
  std::vector<rpm::ts::Series> series;
  series.reserve(kSeries);
  for (std::size_t i = 0; i < kSeries; ++i) {
    series.push_back(RandomWalk(kSeriesLen, 500 + i));
  }

  using Clock = std::chrono::steady_clock;
  const auto ops = static_cast<double>(kPatterns * kSeries);
  // Interleaved passes, keeping the minimum of each: interleaving
  // exposes all kernels to the same machine conditions and the minimum
  // is robust against scheduler interference.
  constexpr int kReps = 5;

  // One timed SoA pass over the whole workload; returns summed distances.
  const auto soa_pass = [&](double* ns_out) {
    double checksum = 0.0;
    const auto t0 = Clock::now();
    rpm::distance::BatchMatcher matcher(patterns);
    rpm::distance::MatchScratch scratch;
    std::vector<rpm::distance::BestMatch> matches;
    for (const auto& hay : series) {
      const rpm::distance::SeriesContext ctx(hay);
      matcher.MatchAll(ctx, &scratch, &matches);
      for (const auto& m : matches) checksum += m.distance;
    }
    const auto t1 = Clock::now();
    *ns_out = std::min(
        *ns_out,
        std::chrono::duration<double, std::nano>(t1 - t0).count() / ops);
    return checksum;
  };

  double naive_checksum = 0.0;
  double batched_checksum = 0.0;
  double soa_checksum = 0.0;
  double naive_ns = std::numeric_limits<double>::infinity();
  double batched_ns = std::numeric_limits<double>::infinity();
  double soa_ns = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    naive_checksum = 0.0;
    const auto t0 = Clock::now();
    for (const auto& hay : series) {
      for (const auto& pattern : patterns) {
        naive_checksum +=
            rpm::distance::FindBestMatchNaive(pattern, hay).distance;
      }
    }
    const auto t1 = Clock::now();
    naive_ns = std::min(
        naive_ns,
        std::chrono::duration<double, std::nano>(t1 - t0).count() / ops);

    batched_checksum = 0.0;
    // Context construction is rebuilt every pass so it stays charged to
    // the batched side.
    const auto t2 = Clock::now();
    rpm::distance::BatchMatcher matcher(patterns);
    for (const auto& hay : series) {
      const rpm::distance::SeriesContext ctx(hay);
      for (std::size_t i = 0; i < matcher.size(); ++i) {
        batched_checksum += matcher.Match(i, ctx).distance;
      }
    }
    const auto t3 = Clock::now();
    batched_ns = std::min(
        batched_ns,
        std::chrono::duration<double, std::nano>(t3 - t2).count() / ops);

    soa_checksum = soa_pass(&soa_ns);
  }
  const double speedup = naive_ns / batched_ns;
  const double soa_speedup = naive_ns / soa_ns;
  const double soa_vs_batched = batched_ns / soa_ns;
  // Different moments algorithm (rolling vs prefix sums): rounding-level
  // gap only; a visible gap means a kernel bug.
  const double legacy_gap = naive_checksum - soa_checksum;

  // Per-ISA-tier rows: the same SoA pass pinned to each tier the host
  // can run. Every tier must reproduce the dispatched checksum bit for
  // bit — that difference is THE checksum_drift, and it must be zero.
  struct TierRow {
    const char* name;
    double ns = std::numeric_limits<double>::infinity();
    double checksum = 0.0;
  };
  std::vector<TierRow> tier_rows;
  double drift = 0.0;
  for (rpm::distance::IsaTier tier :
       {rpm::distance::IsaTier::kScalar, rpm::distance::IsaTier::kAvx2,
        rpm::distance::IsaTier::kAvx512}) {
    if (!rpm::distance::IsaTierAvailable(tier)) continue;
    rpm::distance::ForceIsaTier(tier);
    TierRow row;
    row.name = rpm::distance::IsaTierName(tier);
    for (int rep = 0; rep < kReps; ++rep) {
      row.checksum = soa_pass(&row.ns);
    }
    tier_rows.push_back(row);
    const double tier_drift = row.checksum - soa_checksum;
    if (tier_drift != 0.0) drift = tier_drift;
  }
  rpm::distance::ResetIsaTier();
  if (drift != 0.0) {
    std::fprintf(stderr,
                 "FATAL: cross-tier checksum drift %.17g — the ISA tiers "
                 "must be bit-identical\n",
                 drift);
    std::exit(1);
  }

  // Per-bucket rows: each length bucket scanned alone across all series
  // (store built once, outside the timing). ns_per_op is per pattern x
  // series, comparable with the aggregate rows.
  struct BucketRow {
    std::size_t length;
    std::size_t padded;
    std::size_t count;
    double ns = std::numeric_limits<double>::infinity();
  };
  std::vector<BucketRow> bucket_rows;
  {
    rpm::distance::BatchMatcher matcher(patterns);
    const rpm::distance::PatternStore& store = matcher.store();
    std::vector<rpm::distance::SeriesContext> contexts;
    contexts.reserve(series.size());
    for (const auto& hay : series) contexts.emplace_back(hay);
    std::vector<rpm::distance::BestMatch> out(kPatterns);
    for (std::size_t b = 0; b < store.num_buckets(); ++b) {
      const auto info = store.bucket_info(b);
      BucketRow row{info.length, info.padded, info.patterns,
                    std::numeric_limits<double>::infinity()};
      const double bucket_ops =
          static_cast<double>(info.patterns * series.size());
      for (int rep = 0; rep < kReps; ++rep) {
        const auto t0 = Clock::now();
        for (const auto& ctx : contexts) {
          store.MatchBucket(b, ctx, out.data());
        }
        const auto t1 = Clock::now();
        row.ns = std::min(
            row.ns, std::chrono::duration<double, std::nano>(t1 - t0).count() /
                        bucket_ops);
      }
      bucket_rows.push_back(row);
    }
  }

  // Training-loop kernels: the cutoff-seeded MatchAll and the AnyBelow
  // existence sweep (the primitives behind the shapelet-baseline
  // scoring loops and the distinct-selection tau tests). Seeds and the
  // tau come from an untimed dispatched pre-pass, so every tier answers
  // exactly the same question and the checksums must agree bit for bit.
  std::vector<double> tight_seeds(kPatterns,
                                  std::numeric_limits<double>::infinity());
  {
    rpm::distance::BatchMatcher matcher(patterns);
    rpm::distance::MatchScratch scratch;
    std::vector<rpm::distance::BestMatch> matches;
    for (const auto& hay : series) {
      const rpm::distance::SeriesContext ctx(hay);
      matcher.MatchAll(ctx, &scratch, &matches);
      for (std::size_t i = 0; i < matches.size(); ++i) {
        tight_seeds[i] = std::min(tight_seeds[i], matches[i].distance);
      }
    }
  }
  // Seeds sit 2 % above each pattern's global best: almost every scan
  // abandons against the seed (the regime info-gain pruning produces),
  // only near-best series still improve on it.
  for (double& s : tight_seeds) s *= 1.02;
  // Tau at the median per-pattern best: roughly half the patterns exist
  // below it somewhere, so the first-hit sweep sees hits and misses.
  double tau = 0.0;
  {
    std::vector<double> sorted = tight_seeds;
    std::sort(sorted.begin(), sorted.end());
    tau = sorted[sorted.size() / 2];
  }

  const auto seeded_pass = [&](double* ns_out) {
    double checksum = 0.0;
    const auto t0 = Clock::now();
    rpm::distance::BatchMatcher matcher(patterns);
    rpm::distance::MatchScratch scratch;
    std::vector<rpm::distance::BestMatch> matches;
    for (const auto& hay : series) {
      const rpm::distance::SeriesContext ctx(hay);
      matcher.MatchAllSeeded(ctx, &scratch, tight_seeds, &matches);
      for (const auto& m : matches) {
        checksum += m.found() ? m.distance : -1.0;
      }
    }
    const auto t1 = Clock::now();
    *ns_out = std::min(
        *ns_out,
        std::chrono::duration<double, std::nano>(t1 - t0).count() / ops);
    return checksum;
  };
  const auto below_pass = [&](double* ns_out) {
    double checksum = 0.0;
    const auto t0 = Clock::now();
    rpm::distance::BatchMatcher matcher(patterns);
    rpm::distance::MatchScratch scratch;
    std::vector<std::uint8_t> flags;
    for (const auto& hay : series) {
      const rpm::distance::SeriesContext ctx(hay);
      matcher.AnyBelow(ctx, &scratch, tau, &flags);
      for (std::uint8_t fl : flags) checksum += fl;
    }
    const auto t1 = Clock::now();
    *ns_out = std::min(
        *ns_out,
        std::chrono::duration<double, std::nano>(t1 - t0).count() / ops);
    return checksum;
  };

  double seeded_checksum = 0.0;
  double below_checksum = 0.0;
  double seeded_ns = std::numeric_limits<double>::infinity();
  double below_ns = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    seeded_checksum = seeded_pass(&seeded_ns);
    below_checksum = below_pass(&below_ns);
  }
  std::vector<TierRow> seeded_rows;
  std::vector<TierRow> below_rows;
  double train_drift = 0.0;
  for (rpm::distance::IsaTier tier :
       {rpm::distance::IsaTier::kScalar, rpm::distance::IsaTier::kAvx2,
        rpm::distance::IsaTier::kAvx512}) {
    if (!rpm::distance::IsaTierAvailable(tier)) continue;
    rpm::distance::ForceIsaTier(tier);
    TierRow srow;
    srow.name = rpm::distance::IsaTierName(tier);
    TierRow brow;
    brow.name = srow.name;
    for (int rep = 0; rep < kReps; ++rep) {
      srow.checksum = seeded_pass(&srow.ns);
      brow.checksum = below_pass(&brow.ns);
    }
    seeded_rows.push_back(srow);
    below_rows.push_back(brow);
    if (srow.checksum != seeded_checksum) {
      train_drift = srow.checksum - seeded_checksum;
    }
    if (brow.checksum != below_checksum) {
      train_drift = brow.checksum - below_checksum;
    }
  }
  rpm::distance::ResetIsaTier();
  if (train_drift != 0.0) {
    std::fprintf(stderr,
                 "FATAL: cross-tier checksum drift %.17g in the seeded/"
                 "any-below kernels — the ISA tiers must be bit-identical\n",
                 train_drift);
    std::exit(1);
  }

  // 1NN-DTW workload: 20 queries against a 100-candidate pool, length
  // 128, Sakoe-Chiba band at 10 % of the length. The full kernel runs
  // banded DTW on every pair with no cutoff; the cascade prunes with the
  // endpoint bound and LB_Keogh (both directions) before an
  // early-abandoning DTW seeded with the best-so-far. Envelope
  // construction is charged to the cascade side. The cascade is
  // decision-exact, so both sides must find identical neighbors.
  constexpr std::size_t kQueries = 20;
  constexpr std::size_t kPool = 100;
  constexpr std::size_t kLen = 128;
  const std::size_t band = kLen / 10;

  std::vector<rpm::ts::Series> queries;
  queries.reserve(kQueries);
  for (std::size_t q = 0; q < kQueries; ++q) {
    rpm::ts::Series s = RandomWalk(kLen, 900 + q);
    rpm::ts::ZNormalizeInPlace(s);
    queries.push_back(std::move(s));
  }
  std::vector<rpm::ts::Series> pool;
  pool.reserve(kPool);
  for (std::size_t c = 0; c < kPool; ++c) {
    rpm::ts::Series s = RandomWalk(kLen, 2000 + c);
    rpm::ts::ZNormalizeInPlace(s);
    pool.push_back(std::move(s));
  }

  const auto dtw_ops = static_cast<double>(kQueries * kPool);
  double full_checksum = 0.0;
  double cascade_checksum = 0.0;
  double full_ns = std::numeric_limits<double>::infinity();
  double cascade_ns = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    full_checksum = 0.0;
    const auto t0 = Clock::now();
    for (const auto& q : queries) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : pool) {
        best = std::min(best, rpm::distance::Dtw(q, c, band));
      }
      full_checksum += best;
    }
    const auto t1 = Clock::now();
    full_ns = std::min(
        full_ns,
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
            dtw_ops);

    cascade_checksum = 0.0;
    const auto t2 = Clock::now();
    std::vector<rpm::distance::Envelope> envelopes;
    envelopes.reserve(kPool);
    for (const auto& c : pool) {
      envelopes.push_back(rpm::distance::MakeEnvelope(c, band));
    }
    for (const auto& q : queries) {
      const rpm::distance::Envelope q_env =
          rpm::distance::MakeEnvelope(q, band);
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < kPool; ++c) {
        const double d = rpm::distance::DtwCascade(q, pool[c], &q_env,
                                                   &envelopes[c], band,
                                                   best);
        if (d < best) best = d;
      }
      cascade_checksum += best;
    }
    const auto t3 = Clock::now();
    cascade_ns = std::min(
        cascade_ns,
        std::chrono::duration<double, std::nano>(t3 - t2).count() /
            dtw_ops);
  }
  const double dtw_speedup = full_ns / cascade_ns;
  // The cascade only skips candidates provably >= the best-so-far, so the
  // nearest-neighbor distances must be bit-identical: any drift at all is
  // a pruning bug.
  const double dtw_drift = full_checksum - cascade_checksum;

  std::FILE* f = std::fopen("BENCH_kernels.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_kernels.json\n");
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"workload\": {\"patterns\": %zu, \"series\": %zu, "
               "\"series_length\": %zu},\n"
               "  \"dtw_workload\": {\"queries\": %zu, \"pool\": %zu, "
               "\"length\": %zu, \"band\": %zu},\n"
               "  \"isa_tier\": \"%s\",\n"
               "  \"kernels\": [\n"
               "    {\"name\": \"best_match_per_call\", \"ns_per_op\": %.1f, "
               "\"speedup\": 1.0},\n"
               "    {\"name\": \"best_match_batched\", \"ns_per_op\": %.1f, "
               "\"speedup\": %.2f},\n"
               "    {\"name\": \"best_match_soa\", \"ns_per_op\": %.1f, "
               "\"speedup\": %.2f, \"speedup_vs_batched\": %.2f},\n",
               kPatterns, kSeries, kSeriesLen, kQueries, kPool, kLen, band,
               rpm::distance::IsaTierName(rpm::distance::CurrentIsaTier()),
               naive_ns, batched_ns, speedup, soa_ns, soa_speedup,
               soa_vs_batched);
  for (const TierRow& row : tier_rows) {
    std::fprintf(f,
                 "    {\"name\": \"best_match_soa_%s\", \"ns_per_op\": %.1f, "
                 "\"speedup\": %.2f},\n",
                 row.name, row.ns, naive_ns / row.ns);
  }
  std::fprintf(f,
               "    {\"name\": \"match_all_seeded\", \"ns_per_op\": %.1f, "
               "\"speedup_vs_matchall\": %.2f},\n",
               seeded_ns, soa_ns / seeded_ns);
  for (const TierRow& row : seeded_rows) {
    std::fprintf(f,
                 "    {\"name\": \"match_all_seeded_%s\", "
                 "\"ns_per_op\": %.1f, \"speedup_vs_matchall\": %.2f},\n",
                 row.name, row.ns, soa_ns / row.ns);
  }
  std::fprintf(f,
               "    {\"name\": \"any_below\", \"ns_per_op\": %.1f, "
               "\"speedup_vs_matchall\": %.2f},\n",
               below_ns, soa_ns / below_ns);
  for (const TierRow& row : below_rows) {
    std::fprintf(f,
                 "    {\"name\": \"any_below_%s\", \"ns_per_op\": %.1f, "
                 "\"speedup_vs_matchall\": %.2f},\n",
                 row.name, row.ns, soa_ns / row.ns);
  }
  std::fprintf(f,
               "    {\"name\": \"dtw_full\", \"ns_per_op\": %.1f, "
               "\"speedup\": 1.0},\n"
               "    {\"name\": \"dtw_cascade\", \"ns_per_op\": %.1f, "
               "\"speedup\": %.2f}\n"
               "  ],\n"
               "  \"soa_buckets\": [\n",
               full_ns, cascade_ns, dtw_speedup);
  for (std::size_t b = 0; b < bucket_rows.size(); ++b) {
    const BucketRow& row = bucket_rows[b];
    std::fprintf(f,
                 "    {\"length\": %zu, \"padded\": %zu, \"patterns\": %zu, "
                 "\"ns_per_op\": %.1f}%s\n",
                 row.length, row.padded, row.count, row.ns,
                 b + 1 < bucket_rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"checksum_drift\": %.3e,\n"
               "  \"train_kernel_checksum_drift\": %.3e,\n"
               "  \"legacy_checksum_gap\": %.3e,\n"
               "  \"dtw_checksum_drift\": %.3e\n"
               "}\n",
               drift, train_drift, legacy_gap, dtw_drift);
  std::fclose(f);
  std::printf("per-call %.1f ns/op, batched %.1f ns/op (%.2fx), soa %.1f "
              "ns/op (%.2fx, %.2fx vs batched)\n",
              naive_ns, batched_ns, speedup, soa_ns, soa_speedup,
              soa_vs_batched);
  for (const TierRow& row : tier_rows) {
    std::printf("  soa[%s] %.1f ns/op (%.2fx)\n", row.name, row.ns,
                naive_ns / row.ns);
  }
  std::printf("match_all_seeded %.1f ns/op (%.2fx vs matchall), any_below "
              "%.1f ns/op (%.2fx vs matchall)\n",
              seeded_ns, soa_ns / seeded_ns, below_ns, soa_ns / below_ns);
  for (std::size_t i = 0; i < seeded_rows.size(); ++i) {
    std::printf("  seeded[%s] %.1f ns/op, any_below[%s] %.1f ns/op\n",
                seeded_rows[i].name, seeded_rows[i].ns, below_rows[i].name,
                below_rows[i].ns);
  }
  std::printf("cross-tier checksum drift %.3e (must be 0), train-kernel "
              "drift %.3e (must be 0), legacy gap %.3e\n",
              drift, train_drift, legacy_gap);
  std::printf("dtw full %.1f ns/op, cascade %.1f ns/op, speedup %.2fx "
              "(checksum drift %.3e) -> BENCH_kernels.json\n",
              full_ns, cascade_ns, dtw_speedup, dtw_drift);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      RunJsonWorkload();
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
