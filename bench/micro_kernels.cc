// Micro-benchmarks (google-benchmark) for the Section 5.3 complexity
// claims: SAX discretization and Sequitur inference are linear in the
// input; the best-match scan is the classification-time hot loop; DTW
// cost scales with the band width.

#include <benchmark/benchmark.h>

#include "distance/approximate.h"
#include "distance/dtw.h"
#include "distance/euclidean.h"
#include "grammar/motifs.h"
#include "grammar/repair.h"
#include "grammar/sequitur.h"
#include "sax/sax.h"
#include "ts/rng.h"

namespace {

rpm::ts::Series RandomWalk(std::size_t n, std::uint64_t seed) {
  rpm::ts::Rng rng(seed);
  rpm::ts::Series s(n);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v += rng.Gaussian(0.0, 1.0);
    s[i] = v;
  }
  return s;
}

void BM_SaxDiscretize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const rpm::ts::Series s = RandomWalk(n, 1);
  rpm::sax::SaxOptions opt;
  opt.window = 32;
  opt.paa_size = 6;
  opt.alphabet = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpm::sax::DiscretizeSlidingWindow(s, opt));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SaxDiscretize)->Range(256, 16384)->Complexity(benchmark::oN);

void BM_SequiturInfer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rpm::ts::Rng rng(2);
  std::vector<std::uint32_t> tokens(n);
  for (auto& t : tokens) {
    t = static_cast<std::uint32_t>(rng.UniformInt(0, 7));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpm::grammar::InferGrammar(tokens));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SequiturInfer)->Range(256, 16384)->Complexity(benchmark::oN);

void BM_RePairInfer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rpm::ts::Rng rng(2);
  std::vector<std::uint32_t> tokens(n);
  for (auto& t : tokens) {
    t = static_cast<std::uint32_t>(rng.UniformInt(0, 7));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpm::grammar::InferGrammarRePair(tokens));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RePairInfer)->Range(256, 8192)->Complexity();

void BM_BestMatchApprox(benchmark::State& state) {
  const auto hay_len = static_cast<std::size_t>(state.range(0));
  const rpm::ts::Series hay = RandomWalk(hay_len, 3);
  rpm::ts::Series pattern = RandomWalk(32, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rpm::distance::FindBestMatchApprox(pattern, hay));
  }
}
BENCHMARK(BM_BestMatchApprox)->Range(256, 8192);

void BM_BestMatchScan(benchmark::State& state) {
  const auto hay_len = static_cast<std::size_t>(state.range(0));
  const rpm::ts::Series hay = RandomWalk(hay_len, 3);
  rpm::ts::Series pattern = RandomWalk(32, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpm::distance::FindBestMatch(pattern, hay));
  }
}
BENCHMARK(BM_BestMatchScan)->Range(256, 8192);

void BM_DtwBanded(benchmark::State& state) {
  const std::size_t n = 256;
  const auto band = static_cast<std::size_t>(state.range(0));
  const rpm::ts::Series a = RandomWalk(n, 5);
  const rpm::ts::Series b = RandomWalk(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpm::distance::Dtw(a, b, band));
  }
}
BENCHMARK(BM_DtwBanded)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_LbKeogh(benchmark::State& state) {
  const std::size_t n = 256;
  const rpm::ts::Series a = RandomWalk(n, 7);
  const rpm::ts::Series b = RandomWalk(n, 8);
  const rpm::distance::Envelope env = rpm::distance::MakeEnvelope(b, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpm::distance::LbKeogh(a, env));
  }
}
BENCHMARK(BM_LbKeogh);

void BM_MotifCandidates(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const rpm::ts::Series s = RandomWalk(n, 9);
  rpm::sax::SaxOptions opt;
  opt.window = 32;
  opt.paa_size = 5;
  opt.alphabet = 4;
  const auto records = rpm::sax::DiscretizeSlidingWindow(s, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpm::grammar::FindMotifCandidates(
        records, opt.window, s.size(), {}, true));
  }
}
BENCHMARK(BM_MotifCandidates)->Range(512, 8192);

}  // namespace

BENCHMARK_MAIN();
