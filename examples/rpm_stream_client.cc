// Streaming classification demo: drives the STREAM_* protocol verbs
// (docs/SERVING.md, "Streaming") against an RPM inference server.
//
// Two modes:
//
//  * In-process (default): trains a small CBF model, registers it with an
//    embedded InferenceServer, then replays the generated test split as
//    one unbounded feed — chunked into irregular pieces the way a socket
//    would deliver them — printing each rolling decision as it is
//    emitted. Runs standalone; this is the smoke-test path.
//
//  * Socket (--port N [--host H] --model NAME): the same conversation
//    over TCP against a running `rpm_serve`, which must already have
//    NAME loaded.
//
//   rpm_stream_client [--window N] [--hop N] [--chunk N]
//                     [--early-frac F --early-margin M]
//                     [--port N [--host H] --model NAME]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/rpm.h"
#include "serve/server.h"
#include "ts/generators.h"

namespace {

struct CliOptions {
  std::size_t window = 128;
  std::size_t hop = 16;
  std::size_t chunk = 97;  // deliberately not a divisor of anything
  double early_fraction = 0.0;
  double early_margin = 0.5;
  int port = 0;  // 0 selects the in-process mode
  std::string host = "127.0.0.1";
  std::string model = "cbf";
};

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: rpm_stream_client [--window N] [--hop N] [--chunk N]\n"
               "                         [--early-frac F --early-margin M]\n"
               "                         [--port N [--host H] --model NAME]\n");
  std::exit(2);
}

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions cli;
  auto need = [&](int i) -> const char* {
    if (i + 1 >= argc) Usage();
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--window") {
      cli.window = static_cast<std::size_t>(std::atol(need(i++)));
    } else if (arg == "--hop") {
      cli.hop = static_cast<std::size_t>(std::atol(need(i++)));
    } else if (arg == "--chunk") {
      cli.chunk = static_cast<std::size_t>(std::atol(need(i++)));
    } else if (arg == "--early-frac") {
      cli.early_fraction = std::atof(need(i++));
    } else if (arg == "--early-margin") {
      cli.early_margin = std::atof(need(i++));
    } else if (arg == "--port") {
      cli.port = std::atoi(need(i++));
    } else if (arg == "--host") {
      cli.host = need(i++);
    } else if (arg == "--model") {
      cli.model = need(i++);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      Usage();
    }
  }
  if (cli.window == 0 || cli.chunk == 0) Usage();
  return cli;
}

// The unbounded feed: generated CBF test instances laid end to end. Real
// deployments feed sensor samples; the concatenation stands in for a
// signal whose regime changes every `length` samples.
std::vector<double> BuildFeed(const rpm::ts::Dataset& test) {
  std::vector<double> feed;
  for (const auto& instance : test) {
    feed.insert(feed.end(), instance.values.begin(), instance.values.end());
  }
  return feed;
}

std::string FormatCsv(const double* values, std::size_t n) {
  std::string csv;
  char buf[32];
  for (std::size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), i == 0 ? "%.6g" : ",%.6g", values[i]);
    csv += buf;
  }
  return csv;
}

// ---- Transport: one request line in, one response line out ----

class Transport {
 public:
  virtual ~Transport() = default;
  virtual std::string Request(const std::string& line) = 0;
};

class InProcessTransport : public Transport {
 public:
  explicit InProcessTransport(rpm::serve::InferenceServer* server)
      : server_(server) {}
  std::string Request(const std::string& line) override {
    return server_->HandleLine(line);
  }

 private:
  rpm::serve::InferenceServer* server_;
};

class SocketTransport : public Transport {
 public:
  SocketTransport(const std::string& host, int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~SocketTransport() override {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  std::string Request(const std::string& line) override {
    const std::string out = line + "\n";
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::write(fd_, out.data() + off, out.size() - off);
      if (n <= 0) return "ERR SHUTDOWN connection lost";
      off += static_cast<std::size_t>(n);
    }
    std::string reply;
    char c = 0;
    while (true) {
      const ssize_t n = ::read(fd_, &c, 1);
      if (n <= 0) return "ERR SHUTDOWN connection lost";
      if (c == '\n') break;
      reply += c;
    }
    if (!reply.empty() && reply.back() == '\r') reply.pop_back();
    return reply;
  }

 private:
  int fd_ = -1;
};

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = ParseArgs(argc, argv);

  // In-process mode owns its server; socket mode only owns the transport.
  rpm::serve::InferenceServer server;
  std::unique_ptr<Transport> transport;
  if (cli.port == 0) {
    const rpm::ts::DatasetSplit split = rpm::ts::MakeCbf(10, 12, 128, 778);
    rpm::core::RpmOptions opt;
    opt.search = rpm::core::ParameterSearch::kFixed;
    opt.fixed_sax.window = 32;
    opt.fixed_sax.paa_size = 5;
    opt.fixed_sax.alphabet = 4;
    rpm::core::RpmClassifier clf(opt);
    clf.Train(split.train);
    std::fprintf(stderr, "[stream_client] trained %s: %zu patterns\n",
                 split.name.c_str(), clf.patterns().size());
    server.AddModel(cli.model, std::move(clf));
    transport = std::make_unique<InProcessTransport>(&server);
  } else {
    auto socket_transport =
        std::make_unique<SocketTransport>(cli.host, cli.port);
    if (!socket_transport->ok()) {
      std::fprintf(stderr, "[stream_client] cannot connect to %s:%d\n",
                   cli.host.c_str(), cli.port);
      return 1;
    }
    transport = std::move(socket_transport);
  }

  const rpm::ts::DatasetSplit feed_split =
      rpm::ts::MakeCbf(1, 12, 128, 4242);
  const std::vector<double> feed = BuildFeed(feed_split.test);
  std::fprintf(stderr, "[stream_client] feed: %zu samples\n", feed.size());

  char open_cmd[160];
  std::snprintf(open_cmd, sizeof(open_cmd),
                "STREAM_OPEN %s %zu %zu %.3f %.3f", cli.model.c_str(),
                cli.window, cli.hop, cli.early_fraction, cli.early_margin);
  const std::string open_reply = transport->Request(open_cmd);
  std::printf("%s\n", open_reply.c_str());
  if (open_reply.rfind("OK stream ", 0) != 0) return 1;
  std::string id = open_reply.substr(10);
  id = id.substr(0, id.find(' '));

  std::size_t decisions = 0;
  std::size_t offset = 0;
  while (offset < feed.size()) {
    const std::size_t n = std::min(cli.chunk, feed.size() - offset);
    const std::string reply = transport->Request(
        "STREAM_FEED " + id + " " + FormatCsv(feed.data() + offset, n));
    if (reply.rfind("OK fed ", 0) != 0) {
      std::fprintf(stderr, "[stream_client] feed failed: %s\n",
                   reply.c_str());
      return 1;
    }
    // "OK fed <accepted> decisions=<d> ..." — advance by what the server
    // stored; a short count is backpressure and we simply re-offer.
    const std::size_t accepted =
        static_cast<std::size_t>(std::atol(reply.c_str() + 7));
    const std::size_t dpos = reply.find("decisions=");
    const long emitted = std::atol(reply.c_str() + dpos + 10);
    if (emitted > 0) {
      decisions += static_cast<std::size_t>(emitted);
      std::printf("%s\n", reply.c_str());
    }
    if (accepted == 0) {
      std::fprintf(stderr, "[stream_client] stalled (ring full)\n");
      return 1;
    }
    offset += accepted;
  }

  std::printf("%s\n", transport->Request("STREAM_CLOSE " + id).c_str());
  std::printf("%s\n", transport->Request("STATS").c_str());
  if (decisions == 0) {
    std::fprintf(stderr, "[stream_client] no decisions emitted\n");
    return 1;
  }
  return 0;
}
