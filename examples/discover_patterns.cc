// Reproduces the exploratory views of Figures 2, 3 and 5: mine the best
// representative patterns of each class on CBF, Coffee and ECGFiveDays
// stand-ins and dump them as CSV series (one row per pattern) so they can
// be plotted directly.

#include <cstdio>
#include <string>

#include "core/rpm.h"
#include "ts/generators.h"

namespace {

void Report(const rpm::ts::DatasetSplit& split, std::size_t window) {
  using namespace rpm;
  core::RpmOptions options;
  options.search = core::ParameterSearch::kFixed;
  options.fixed_sax.window = window;
  options.fixed_sax.paa_size = 5;
  options.fixed_sax.alphabet = 4;

  core::RpmClassifier clf(options);
  clf.Train(split.train);

  std::printf("== %s: %zu representative patterns ==\n", split.name.c_str(),
              clf.patterns().size());
  for (const auto& p : clf.patterns()) {
    std::printf("%s,class=%d,len=%zu,freq=%zu", split.name.c_str(),
                p.class_label, p.values.size(), p.frequency);
    for (double v : p.values) std::printf(",%.4f", v);
    std::printf("\n");
  }
  std::printf("%s test error: %.4f\n\n", split.name.c_str(),
              clf.Evaluate(split.test));
}

}  // namespace

int main() {
  using namespace rpm::ts;
  // Figure 2: CBF — expect plateau / rising-ramp / falling-ramp patterns.
  Report(MakeCbf(10, 30, 128, 101), 32);
  // Figure 3: Coffee — expect the discriminative spectral bands.
  Report(MakeCoffee(14, 14, 200, 102), 40);
  // Figure 5: ECGFiveDays — expect T-wave / ST-segment patterns.
  Report(MakeEcg(12, 40, 136, 103), 34);
  return 0;
}
