// Command-line front end for the library: train, evaluate, persist and
// reuse RPM models on UCR-format data, or run any of the baselines for a
// side-by-side comparison.
//
// Usage:
//   rpm_cli train    TRAIN.csv MODEL [options]
//   rpm_cli classify MODEL TEST.csv            # prints one label per line
//   rpm_cli evaluate TRAIN.csv TEST.csv [options]
//   rpm_cli patterns MODEL                     # dump patterns as CSV
//   rpm_cli info DATA.csv                      # dataset statistics
//
// Options (train/evaluate):
//   --method NAME      RPM (default), NN-ED, NN-DTWB, SAX-VSM, FS, LS,
//                      ST, YK-Tree, Logical
//   --search MODE      direct (default) | grid | fixed
//   --window N --paa N --alphabet N    SAX parameters for --search fixed
//   --gamma F          minimum cluster fraction (default 0.2)
//   --tau F            similarity-threshold percentile (default 30)
//   --classifier NAME  svm (default) | knn | nb
//   --gi NAME          sequitur (default) | repair
//   --rotation-invariant | --approximate
//   --budget N         DIRECT evaluation budget (default 24)

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "baselines/fast_shapelets.h"
#include "baselines/learning_shapelets.h"
#include "baselines/nn_dtw.h"
#include "baselines/nn_euclidean.h"
#include "baselines/rpm_adapter.h"
#include "baselines/logical_shapelets.h"
#include "baselines/sax_vsm.h"
#include "baselines/shapelet_transform.h"
#include "baselines/shapelet_tree.h"
#include "core/rpm.h"
#include "ts/parallel.h"
#include "ts/ucr_io.h"

namespace {

struct CliOptions {
  std::string method = "RPM";
  rpm::core::RpmOptions rpm;
};

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: rpm_cli train TRAIN.csv MODEL [options]\n"
               "       rpm_cli classify MODEL TEST.csv\n"
               "       rpm_cli evaluate TRAIN.csv TEST.csv [options]\n"
               "run with no arguments for the option list in the header\n");
  std::exit(2);
}

CliOptions ParseOptions(int argc, char** argv, int first) {
  CliOptions cli;
  auto need = [&](int i) -> const char* {
    if (i + 1 >= argc) Usage();
    return argv[i + 1];
  };
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--method") {
      cli.method = need(i++);
    } else if (arg == "--search") {
      const std::string mode = need(i++);
      if (mode == "direct") {
        cli.rpm.search = rpm::core::ParameterSearch::kDirect;
      } else if (mode == "grid") {
        cli.rpm.search = rpm::core::ParameterSearch::kGrid;
      } else if (mode == "fixed") {
        cli.rpm.search = rpm::core::ParameterSearch::kFixed;
      } else {
        Usage();
      }
    } else if (arg == "--window") {
      cli.rpm.fixed_sax.window =
          static_cast<std::size_t>(std::atoi(need(i++)));
    } else if (arg == "--paa") {
      cli.rpm.fixed_sax.paa_size =
          static_cast<std::size_t>(std::atoi(need(i++)));
    } else if (arg == "--alphabet") {
      cli.rpm.fixed_sax.alphabet = std::atoi(need(i++));
    } else if (arg == "--gamma") {
      cli.rpm.gamma = std::atof(need(i++));
    } else if (arg == "--tau") {
      cli.rpm.tau_percentile = std::atof(need(i++));
    } else if (arg == "--budget") {
      cli.rpm.direct_max_evaluations =
          static_cast<std::size_t>(std::atoi(need(i++)));
    } else if (arg == "--classifier") {
      const std::string kind = need(i++);
      if (kind == "svm") {
        cli.rpm.final_classifier = rpm::ml::FeatureClassifierKind::kSvm;
      } else if (kind == "knn") {
        cli.rpm.final_classifier = rpm::ml::FeatureClassifierKind::kKnn;
      } else if (kind == "nb") {
        cli.rpm.final_classifier =
            rpm::ml::FeatureClassifierKind::kNaiveBayes;
      } else {
        Usage();
      }
    } else if (arg == "--gi") {
      const std::string gi = need(i++);
      if (gi == "sequitur") {
        cli.rpm.gi_algorithm = rpm::grammar::GiAlgorithm::kSequitur;
      } else if (gi == "repair") {
        cli.rpm.gi_algorithm = rpm::grammar::GiAlgorithm::kRePair;
      } else {
        Usage();
      }
    } else if (arg == "--rotation-invariant") {
      cli.rpm.rotation_invariant = true;
    } else if (arg == "--approximate") {
      cli.rpm.approximate_matching = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      Usage();
    }
  }
  return cli;
}

std::unique_ptr<rpm::baselines::Classifier> MakeClassifier(
    const CliOptions& cli) {
  using namespace rpm::baselines;
  if (cli.method == "RPM") return std::make_unique<RpmAdapter>(cli.rpm);
  if (cli.method == "NN-ED") return std::make_unique<NnEuclidean>();
  if (cli.method == "NN-DTWB") return std::make_unique<NnDtwBestWindow>();
  if (cli.method == "SAX-VSM") return std::make_unique<SaxVsm>();
  if (cli.method == "FS") return std::make_unique<FastShapelets>();
  if (cli.method == "LS") return std::make_unique<LearningShapelets>();
  if (cli.method == "ST") return std::make_unique<ShapeletTransform>();
  if (cli.method == "YK-Tree") return std::make_unique<ShapeletTree>();
  if (cli.method == "Logical") return std::make_unique<LogicalShapelets>();
  std::fprintf(stderr, "unknown method '%s'\n", cli.method.c_str());
  Usage();
}

int CmdInfo(int argc, char** argv) {
  if (argc < 3) Usage();
  const rpm::ts::Dataset data = rpm::ts::LoadUcrFile(argv[2]);
  std::printf("%s: %zu instances, %zu classes, lengths %zu..%zu\n",
              argv[2], data.size(), data.NumClasses(), data.MinLength(),
              data.MaxLength());
  for (const auto& [label, count] : data.ClassHistogram()) {
    std::printf("  class %d: %zu instances (%.1f%%)\n", label, count,
                100.0 * static_cast<double>(count) /
                    static_cast<double>(data.size()));
  }
  return 0;
}

int CmdPatterns(int argc, char** argv) {
  if (argc < 3) Usage();
  const rpm::core::RpmClassifier clf =
      rpm::core::RpmClassifier::LoadFromFile(argv[2]);
  for (const auto& p : clf.patterns()) {
    std::printf("%d,%zu", p.class_label, p.frequency);
    for (double v : p.values) std::printf(",%.6f", v);
    std::printf("\n");
  }
  return 0;
}

int CmdTrain(int argc, char** argv) {
  if (argc < 4) Usage();
  const CliOptions cli = ParseOptions(argc, argv, 4);
  const rpm::ts::Dataset train = rpm::ts::LoadUcrFile(argv[2]);
  rpm::core::RpmClassifier clf(cli.rpm);
  clf.Train(train);
  clf.SaveToFile(argv[3]);
  std::printf("trained on %zu instances; %zu patterns; model -> %s\n",
              train.size(), clf.patterns().size(), argv[3]);
  return 0;
}

int CmdClassify(int argc, char** argv) {
  if (argc < 4) Usage();
  rpm::core::RpmClassifier clf =
      rpm::core::RpmClassifier::LoadFromFile(argv[2]);
  const rpm::ts::Dataset test = rpm::ts::LoadUcrFile(argv[3]);
  // Route the whole set through the batched path: pattern contexts are
  // built once and shared, instead of being rebuilt per instance.
  clf.set_num_threads(rpm::ts::DefaultThreads());
  for (const int label : clf.ClassifyAll(test)) {
    std::printf("%d\n", label);
  }
  return 0;
}

int CmdEvaluate(int argc, char** argv) {
  if (argc < 4) Usage();
  const CliOptions cli = ParseOptions(argc, argv, 4);
  const rpm::ts::Dataset train = rpm::ts::LoadUcrFile(argv[2]);
  const rpm::ts::Dataset test = rpm::ts::LoadUcrFile(argv[3]);
  auto clf = MakeClassifier(cli);
  clf->Train(train);
  const double error = clf->Evaluate(test);
  std::printf("%s error rate: %.4f (accuracy %.4f, %zu test instances)\n",
              clf->Name().c_str(), error, 1.0 - error, test.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "train") return CmdTrain(argc, argv);
    if (cmd == "classify") return CmdClassify(argc, argv);
    if (cmd == "evaluate") return CmdEvaluate(argc, argv);
    if (cmd == "patterns") return CmdPatterns(argc, argv);
    if (cmd == "info") return CmdInfo(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  Usage();
}
