// GrammarViz-style exploration (the view behind the paper's Figure 4):
// concatenate one class of a dataset, discretize, induce the grammar, and
// print the rule table, the motif summary, the per-point coverage
// density strip, and the lowest-coverage region (a discord candidate).

#include <algorithm>
#include <cstdio>

#include "core/candidates.h"
#include "grammar/inspect.h"
#include "sax/sax.h"
#include "ts/generators.h"

int main() {
  using namespace rpm;
  const ts::DatasetSplit split = ts::MakeCbf(8, 2, 128, 44);
  const int label = 1;  // Cylinder
  const core::ConcatenatedClass cls =
      core::ConcatenateClass(split.train, label);
  std::printf("class %d: %zu instances concatenated into %zu points "
              "(%zu junctions)\n",
              label, cls.num_instances, cls.values.size(),
              cls.boundaries.size());

  sax::SaxOptions sax;
  sax.window = 32;
  sax.paa_size = 4;
  sax.alphabet = 4;
  const auto records = sax::DiscretizeSlidingWindow(cls.values, sax);
  std::printf("discretized to %zu SAX words (numerosity-reduced from "
              "%zu windows)\n",
              records.size(), cls.values.size() - sax.window + 1);

  const auto tokens = grammar::TokensFromRecords(records);
  const grammar::Grammar g = grammar::InferGrammar(tokens);
  std::printf("\ngrammar (%zu rules):\n%s\n", g.rules().size(),
              g.ToString().c_str());

  const auto motifs = grammar::FindMotifCandidates(
      records, sax.window, cls.values.size(), cls.boundaries, true);
  std::printf("motif candidates (junction-filtered):\n%s\n",
              grammar::FormatMotifTable(motifs).c_str());

  const auto density =
      grammar::CoverageDensity(motifs, cls.values.size());
  std::printf("coverage: %.1f%% of points under at least one rule\n",
              100.0 * grammar::CoverageFraction(motifs, cls.values.size()));

  // Coverage strip, 64 buckets.
  const std::size_t buckets = 64;
  const std::size_t max_d =
      *std::max_element(density.begin(), density.end());
  std::printf("density strip: ");
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t lo = b * density.size() / buckets;
    const std::size_t hi = (b + 1) * density.size() / buckets;
    std::size_t acc = 0;
    for (std::size_t t = lo; t < hi; ++t) acc = std::max(acc, density[t]);
    const char* shades = " .:-=+*#%@";
    const std::size_t shade =
        max_d == 0 ? 0 : std::min<std::size_t>(9, 9 * acc / max_d);
    std::printf("%c", shades[shade]);
  }
  std::printf("\n");

  // Discord candidates: the least rule-covered regions.
  for (const auto& d :
       grammar::FindDiscords(motifs, cls.values.size(), sax.window, 3)) {
    std::printf("discord candidate: [%zu, %zu) mean density %.2f\n",
                d.start, d.start + d.length, d.mean_density);
  }
  return 0;
}
