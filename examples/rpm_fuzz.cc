// Fuzzing driver for the serving surface. Runs seeded protocol and/or
// model-file fuzz cases against a live in-process front end; on failure
// prints the seed, the oracle violation, and a minimized repro plan, and
// exits nonzero.
//
//   rpm_fuzz --mode protocol --seed 1 --iters 200
//   rpm_fuzz --mode model --seed 0xdeadbeef --iters 10000
//   rpm_fuzz --mode all --iters 100
//   rpm_fuzz --replay tests/fuzz_corpus            # replay *.seed files
//   rpm_fuzz --describe --seed 42                  # print the plan only
//
// Corpus seed files are three lines (# comments allowed):
//   mode=protocol|model
//   seed=<decimal or 0x-hex>

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/grammar.h"
#include "fuzz/harness.h"

namespace {

using rpm::fuzz::FailureReport;
using rpm::fuzz::FuzzHarness;
using rpm::fuzz::FuzzPlan;

std::uint64_t ParseSeed(const std::string& text) {
  return std::strtoull(text.c_str(), nullptr, 0);
}

struct CorpusEntry {
  std::string file;
  std::string mode = "protocol";
  std::uint64_t seed = 0;
};

bool LoadCorpusFile(const std::string& path, CorpusEntry* entry) {
  std::ifstream in(path);
  if (!in) return false;
  entry->file = path;
  std::string line;
  bool have_seed = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("mode=", 0) == 0) {
      entry->mode = line.substr(5);
    } else if (line.rfind("seed=", 0) == 0) {
      entry->seed = ParseSeed(line.substr(5));
      have_seed = true;
    }
  }
  return have_seed;
}

std::vector<CorpusEntry> LoadCorpus(const std::string& path) {
  std::vector<CorpusEntry> entries;
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return entries;
  if (!S_ISDIR(st.st_mode)) {
    CorpusEntry entry;
    if (LoadCorpusFile(path, &entry)) entries.push_back(entry);
    return entries;
  }
  std::vector<std::string> names;
  if (DIR* dir = ::opendir(path.c_str())) {
    while (dirent* e = ::readdir(dir)) {
      const std::string name = e->d_name;
      if (name.size() > 5 && name.rfind(".seed") == name.size() - 5) {
        names.push_back(name);
      }
    }
    ::closedir(dir);
  }
  std::sort(names.begin(), names.end());
  for (const auto& name : names) {
    CorpusEntry entry;
    if (LoadCorpusFile(path + "/" + name, &entry)) entries.push_back(entry);
  }
  return entries;
}

int ReportFailure(FuzzHarness& harness, const FailureReport& report,
                  const char* mode) {
  std::fprintf(stderr, "FAIL mode=%s seed=0x%llx\n  %s\n", mode,
               static_cast<unsigned long long>(report.seed),
               report.what.c_str());
  if (std::strcmp(mode, "protocol") == 0) {
    std::fprintf(stderr, "minimizing...\n");
    const FuzzPlan minimized = harness.MinimizeProtocolPlan(
        rpm::fuzz::GenerateProtocolPlan(report.seed));
    std::fprintf(stderr, "--- minimized repro (replay with --mode protocol "
                         "--seed 0x%llx) ---\n%s",
                 static_cast<unsigned long long>(report.seed),
                 rpm::fuzz::FormatPlan(minimized).c_str());
  }
  std::fprintf(stderr,
               "repro: rpm_fuzz --mode %s --seed 0x%llx --iters 1\n", mode,
               static_cast<unsigned long long>(report.seed));
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "all";
  std::uint64_t seed = 1;
  std::size_t iters = 100;
  std::string replay;
  bool describe = false;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (arg == "--mode") {
      mode = next();
    } else if (arg == "--seed") {
      seed = ParseSeed(next());
    } else if (arg == "--iters") {
      iters = std::strtoull(next().c_str(), nullptr, 0);
    } else if (arg == "--replay") {
      replay = next();
    } else if (arg == "--describe") {
      describe = true;
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: rpm_fuzz [--mode protocol|model|all] [--seed N]\n"
                   "                [--iters N] [--replay FILE|DIR]\n"
                   "                [--describe] [--verbose]\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  if (describe) {
    const FuzzPlan plan = rpm::fuzz::GenerateProtocolPlan(seed);
    std::fputs(rpm::fuzz::FormatPlan(plan).c_str(), stdout);
    return 0;
  }

  rpm::fuzz::HarnessOptions options;
  options.verbose = verbose;
  FuzzHarness harness(options);

  if (!replay.empty()) {
    const auto corpus = LoadCorpus(replay);
    if (corpus.empty()) {
      std::fprintf(stderr, "no corpus seeds under %s\n", replay.c_str());
      return 2;
    }
    for (const auto& entry : corpus) {
      const FailureReport report =
          entry.mode == "model" ? harness.RunModelCase(entry.seed)
                                : harness.RunProtocolCase(entry.seed);
      std::printf("%-6s %s seed=0x%llx %s\n",
                  report.failed ? "FAIL" : "ok", entry.mode.c_str(),
                  static_cast<unsigned long long>(entry.seed),
                  entry.file.c_str());
      if (report.failed) {
        return ReportFailure(harness, report, entry.mode.c_str());
      }
    }
    std::printf("replayed %zu corpus seeds clean\n", corpus.size());
    return 0;
  }

  std::size_t protocol_runs = 0;
  std::size_t model_runs = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    const std::uint64_t case_seed = seed + i;
    if (mode == "protocol" || mode == "all") {
      const FailureReport report = harness.RunProtocolCase(case_seed);
      ++protocol_runs;
      if (report.failed) return ReportFailure(harness, report, "protocol");
    }
    if (mode == "model" || mode == "all") {
      const FailureReport report = harness.RunModelCase(case_seed);
      ++model_runs;
      if (report.failed) return ReportFailure(harness, report, "model");
    }
    if (verbose && (i + 1) % 50 == 0) {
      std::fprintf(stderr, "... %zu/%zu\n", i + 1, iters);
    }
  }
  std::printf("clean: %zu protocol + %zu model cases from seed 0x%llx\n",
              protocol_runs, model_runs,
              static_cast<unsigned long long>(seed));
  return 0;
}
