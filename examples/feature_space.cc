// Reproduces Figure 6: transform the ECGFiveDays training data into the
// representative-pattern feature space and dump the 2-D (first two
// features) embedding, demonstrating that visually-similar raw series
// become linearly separable.

#include <algorithm>
#include <cstdio>

#include "core/rpm.h"
#include "ts/generators.h"

int main() {
  using namespace rpm;
  const ts::DatasetSplit split = ts::MakeEcg(15, 15, 136, 6);

  core::RpmOptions options;
  options.search = core::ParameterSearch::kFixed;
  options.fixed_sax.window = 34;
  options.fixed_sax.paa_size = 5;
  options.fixed_sax.alphabet = 4;

  // Run Algorithms 1 + 2 directly to get the patterns, then transform.
  std::map<int, sax::SaxOptions> sax;
  for (int label : split.train.ClassLabels()) {
    sax[label] = options.fixed_sax;
  }
  const auto candidates =
      core::FindAllCandidates(split.train, sax, options);
  const auto patterns =
      core::FindDistinctPatterns(split.train, candidates, options);
  std::printf("candidates: %zu -> selected patterns: %zu\n",
              candidates.size(), patterns.size());
  if (patterns.empty()) {
    std::printf("no patterns found; try other SAX parameters\n");
    return 1;
  }

  const ml::FeatureDataset f =
      core::TransformDataset(patterns, split.train, false);
  std::printf("\n# Figure 6 data: distance to pattern 1, distance to "
              "pattern 2, class\n");
  const std::size_t d2 = std::min<std::size_t>(2, f.num_features());
  for (std::size_t i = 0; i < f.size(); ++i) {
    for (std::size_t j = 0; j < d2; ++j) std::printf("%.4f,", f.x[i][j]);
    std::printf("%d\n", f.y[i]);
  }

  // Quantify the separability claim: per-class feature-1 means.
  for (int label : split.train.ClassLabels()) {
    double mean = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < f.size(); ++i) {
      if (f.y[i] == label) {
        mean += f.x[i][0];
        ++n;
      }
    }
    std::printf("class %d: mean distance to first pattern = %.4f\n", label,
                mean / static_cast<double>(n));
  }
  return 0;
}
