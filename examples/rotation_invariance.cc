// Section 6.1 demo: train on unmodified GunPoint-style data, rotate the
// test set at random cut points, and compare RPM (with and without the
// rotation-invariant transform) against 1-NN Euclidean.

#include <cstdio>

#include "baselines/nn_euclidean.h"
#include "core/rpm.h"
#include "ts/generators.h"
#include "ts/rng.h"
#include "ts/rotation.h"

int main() {
  using namespace rpm;
  const ts::DatasetSplit split = ts::MakeGunPoint(12, 40, 150, 61);
  ts::Rng rng(7);
  const ts::Dataset rotated = ts::RandomlyRotate(split.test, rng);

  core::RpmOptions base;
  base.search = core::ParameterSearch::kFixed;
  base.fixed_sax.window = 30;
  base.fixed_sax.paa_size = 5;
  base.fixed_sax.alphabet = 4;

  core::RpmClassifier plain(base);
  plain.Train(split.train);

  core::RpmOptions inv = base;
  inv.rotation_invariant = true;
  core::RpmClassifier invariant(inv);
  invariant.Train(split.train);

  baselines::NnEuclidean ed;
  ed.Train(split.train);

  std::printf("%-28s %-14s %-14s\n", "classifier", "original test",
              "rotated test");
  std::printf("%-28s %-14.4f %-14.4f\n", "NN-ED",
              ed.Evaluate(split.test), ed.Evaluate(rotated));
  std::printf("%-28s %-14.4f %-14.4f\n", "RPM (plain)",
              plain.Evaluate(split.test), plain.Evaluate(rotated));
  std::printf("%-28s %-14.4f %-14.4f\n", "RPM (rotation-invariant)",
              invariant.Evaluate(split.test), invariant.Evaluate(rotated));
  std::printf("\nExpected shape (Table 4): NN-ED collapses on rotated "
              "data; rotation-invariant RPM holds up.\n");
  return 0;
}
