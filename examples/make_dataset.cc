// Dataset emitter: writes any of the built-in synthetic generators to
// UCR-format train/test files, so rpm_cli (or any UCR-consuming tool) can
// be driven without external data.
//
// Usage:
//   make_dataset NAME TRAIN_OUT TEST_OUT [--train N] [--test N]
//                [--length N] [--seed N]
// NAME: CBF TwoPatterns SyntheticControl GunPoint Coffee ECGFiveDays
//       Trace ShapeOutlines ItalyPower Wafer Symbols FaceFour Lightning
//       MoteStrain AbpAlarm AbpAlarmTypes

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <string>

#include "ts/generators.h"
#include "ts/ucr_io.h"

int main(int argc, char** argv) {
  using namespace rpm::ts;
  using Maker = std::function<DatasetSplit(std::size_t, std::size_t,
                                           std::size_t, std::uint64_t)>;
  const std::map<std::string, std::pair<Maker, std::size_t>> makers = {
      {"CBF", {MakeCbf, 128}},
      {"TwoPatterns", {MakeTwoPatterns, 128}},
      {"SyntheticControl", {MakeSyntheticControl, 60}},
      {"GunPoint", {MakeGunPoint, 150}},
      {"Coffee", {MakeCoffee, 200}},
      {"ECGFiveDays", {MakeEcg, 136}},
      {"Trace", {MakeTrace, 200}},
      {"ShapeOutlines", {MakeShapeOutlines, 128}},
      {"ItalyPower", {MakeItalyPower, 24}},
      {"Wafer", {MakeWafer, 120}},
      {"Symbols", {MakeSymbols, 128}},
      {"FaceFour", {MakeFaceFour, 140}},
      {"Lightning", {MakeLightning, 160}},
      {"MoteStrain", {MakeMoteStrain, 96}},
      {"AbpAlarm", {MakeAbpAlarm, 240}},
      {"AbpAlarmTypes", {MakeAbpAlarmTypes, 240}},
  };

  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: make_dataset NAME TRAIN_OUT TEST_OUT "
                 "[--train N] [--test N] [--length N] [--seed N]\n"
                 "names:");
    for (const auto& [name, maker] : makers) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  const auto it = makers.find(argv[1]);
  if (it == makers.end()) {
    std::fprintf(stderr, "unknown dataset '%s'\n", argv[1]);
    return 2;
  }
  std::size_t train_per_class = 10;
  std::size_t test_per_class = 30;
  std::size_t length = it->second.second;
  std::uint64_t seed = 20160315;
  for (int i = 4; i + 1 < argc; i += 2) {
    const std::string arg = argv[i];
    const auto value = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    if (arg == "--train") {
      train_per_class = value;
    } else if (arg == "--test") {
      test_per_class = value;
    } else if (arg == "--length") {
      length = value;
    } else if (arg == "--seed") {
      seed = value;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }

  const DatasetSplit split =
      it->second.first(train_per_class, test_per_class, length, seed);
  SaveUcrFile(split.train, argv[2]);
  SaveUcrFile(split.test, argv[3]);
  std::printf("%s: %zu train / %zu test instances of length %zu "
              "(%zu classes) -> %s, %s\n",
              split.name.c_str(), split.train.size(), split.test.size(),
              length, split.train.NumClasses(), argv[2], argv[3]);
  return 0;
}
