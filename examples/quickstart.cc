// Quickstart: generate a small CBF dataset (or load UCR-format files from
// the command line), train the RPM classifier, and report accuracy plus
// the discovered representative patterns.
//
// Usage:
//   quickstart                      # built-in CBF data
//   quickstart TRAIN.csv TEST.csv   # your own UCR-format files

#include <cstdio>

#include "core/rpm.h"
#include "ts/generators.h"
#include "ts/ucr_io.h"

int main(int argc, char** argv) {
  using namespace rpm;

  ts::Dataset train;
  ts::Dataset test;
  if (argc == 3) {
    std::printf("Loading UCR files %s / %s\n", argv[1], argv[2]);
    train = ts::LoadUcrFile(argv[1]);
    test = ts::LoadUcrFile(argv[2]);
  } else {
    std::printf("Generating CBF (Cylinder-Bell-Funnel)\n");
    const ts::DatasetSplit split = ts::MakeCbf(10, 30, 128, 7);
    train = split.train;
    test = split.test;
  }
  std::printf("train: %zu instances, %zu classes, length %zu..%zu\n",
              train.size(), train.NumClasses(), train.MinLength(),
              train.MaxLength());

  // Default options run the paper's pipeline: per-class DIRECT parameter
  // search, gamma = 20 %, tau at the 30th percentile, SVM classifier.
  core::RpmOptions options;
  options.direct_max_evaluations = 16;  // quick demo budget
  core::RpmClassifier clf(options);
  clf.Train(train);

  std::printf("\nLearned %zu representative patterns "
              "(%zu SAX combos evaluated):\n",
              clf.patterns().size(), clf.combos_evaluated());
  for (const auto& p : clf.patterns()) {
    std::printf("  class %d  length %3zu  frequency %zu\n", p.class_label,
                p.values.size(), p.frequency);
  }
  for (const auto& [label, sax] : clf.sax_by_class()) {
    std::printf("  class %d SAX: window=%zu paa=%zu alphabet=%d\n", label,
                sax.window, sax.paa_size, sax.alphabet);
  }

  const double error = clf.Evaluate(test);
  std::printf("\ntest error rate: %.4f  (accuracy %.4f on %zu instances)\n",
              error, 1.0 - error, test.size());
  return 0;
}
