// Reproduces Figure 1: what the rival subsequence-based techniques
// "see" on Cricket-style umpire-gesture data. SAX-VSM reports short
// fixed-window words (similar in both classes), Fast Shapelets reports a
// single branching shapelet, and RPM reports class-specific patterns that
// capture the mirrored left-/right-hand movements.

#include <cstdio>

#include "baselines/fast_shapelets.h"
#include "baselines/sax_vsm.h"
#include "core/rpm.h"
#include "ts/generators.h"

int main() {
  using namespace rpm;
  const ts::DatasetSplit split = ts::MakeCricket(12, 30, 160, 11);

  std::printf("== Figure 1 reproduction: Cricket-style gestures ==\n\n");

  // SAX-VSM: top class-characteristic words (all the same length — the
  // sliding-window length — which is the paper's point).
  baselines::SaxVsmOptions vsm_options;
  vsm_options.optimize = false;
  vsm_options.sax.window = 32;
  vsm_options.sax.paa_size = 4;
  vsm_options.sax.alphabet = 4;
  baselines::SaxVsm vsm(vsm_options);
  vsm.Train(split.train);
  std::printf("SAX-VSM (window %zu) top words per class:\n",
              vsm.chosen_sax().window);
  for (int label : {1, 2}) {
    std::printf("  class %d:", label);
    for (const auto& [word, weight] : vsm.TopWords(label, 3)) {
      std::printf("  %s (%.2f)", word.c_str(), weight);
    }
    std::printf("\n");
  }
  std::printf("  error: %.4f\n\n", vsm.Evaluate(split.test));

  // Fast Shapelets: a single branching shapelet at the tree root.
  baselines::FastShapelets fs;
  fs.Train(split.train);
  std::printf("Fast Shapelets: %zu tree node(s); root shapelet length %zu\n",
              fs.num_shapelet_nodes(), fs.root_shapelet().size());
  std::printf("  error: %.4f\n\n", fs.Evaluate(split.test));

  // RPM: class-specific patterns of varying length.
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kFixed;
  opt.fixed_sax.window = 32;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  core::RpmClassifier rpm_clf(opt);
  rpm_clf.Train(split.train);
  std::printf("RPM: %zu class-specific representative patterns\n",
              rpm_clf.patterns().size());
  for (const auto& p : rpm_clf.patterns()) {
    std::printf("  class %d  length %3zu  frequency %zu\n", p.class_label,
                p.values.size(), p.frequency);
  }
  std::printf("  error: %.4f\n", rpm_clf.Evaluate(split.test));
  std::printf("\nNote the Figure 1 contrast: RPM patterns are per-class "
              "and variable-length;\nSAX-VSM words share one fixed "
              "length; FS commits to a single splitting shapelet.\n");
  return 0;
}
