// Socket front end for the inference server (src/serve): serves the
// line-oriented protocol (see docs/SERVING.md) over TCP or a Unix-domain
// socket, one thread per connection. Concurrent connections are what
// feed the micro-batcher — each CLASSIFY blocks its connection thread
// until the batch completes, so co-travelling requests share one engine
// dispatch.
//
// Usage:
//   rpm_serve [--port N | --unix PATH] [--model NAME=PATH ...]
//             [--batch N] [--linger-us N] [--queue N] [--threads N]
//             [--timeout-ms N] [--trace-sample N]
//
// Observability: the METRICS verb returns the Prometheus exposition of
// every serve/stream/matcher metric; TRACE <n> returns recent trace
// spans as JSON. --trace-sample N records 1 of every N spans (default
// 16; 0 disables tracing entirely). See docs/OBSERVABILITY.md.
//
// Quickstart:
//   rpm_cli train train.csv gunpoint.model --search fixed --window 25
//   rpm_serve --port 7070 --model gunpoint=gunpoint.model &
//   printf 'CLASSIFY gunpoint 0.1,0.5,...\nSTATS\nQUIT\n' | nc localhost 7070

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "serve/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: rpm_serve [--port N | --unix PATH] "
               "[--model NAME=PATH ...]\n"
               "                 [--batch N] [--linger-us N] [--queue N] "
               "[--threads N] [--timeout-ms N]\n"
               "                 [--trace-sample N]   (record 1/N spans; "
               "0 disables tracing; default 16)\n");
  std::exit(2);
}

struct ServeCliOptions {
  int port = 7070;
  std::string unix_path;  // non-empty selects a Unix-domain socket
  std::vector<std::pair<std::string, std::string>> models;
  rpm::serve::ServerOptions server;
  long trace_sample = 16;  // 1/N span sampling; 0 = tracing off
};

ServeCliOptions ParseArgs(int argc, char** argv) {
  ServeCliOptions cli;
  auto need = [&](int i) -> const char* {
    if (i + 1 >= argc) Usage();
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port") {
      cli.port = std::atoi(need(i++));
    } else if (arg == "--unix") {
      cli.unix_path = need(i++);
    } else if (arg == "--model") {
      const std::string spec = need(i++);
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        Usage();
      }
      cli.models.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--batch") {
      cli.server.batching.max_batch_size =
          static_cast<std::size_t>(std::atoi(need(i++)));
    } else if (arg == "--linger-us") {
      cli.server.batching.max_linger =
          std::chrono::microseconds(std::atol(need(i++)));
    } else if (arg == "--queue") {
      cli.server.batching.max_queue_depth =
          static_cast<std::size_t>(std::atoi(need(i++)));
    } else if (arg == "--threads") {
      cli.server.batching.num_threads =
          static_cast<std::size_t>(std::atoi(need(i++)));
    } else if (arg == "--timeout-ms") {
      cli.server.default_timeout =
          std::chrono::milliseconds(std::atol(need(i++)));
    } else if (arg == "--trace-sample") {
      cli.trace_sample = std::atol(need(i++));
      if (cli.trace_sample < 0) Usage();
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      Usage();
    }
  }
  return cli;
}

int ListenTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int ListenUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  ::unlink(path.c_str());
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool WriteAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Reads newline-terminated requests and answers each with one response
// line; the connection closes on QUIT, EOF, or a write error. Framing
// (partial reads, many lines per read, a bounded line length) is
// LineAssembler's job — a client that streams an endless unterminated
// line gets an explicit error instead of growing this process.
void ServeConnection(rpm::serve::InferenceServer* server, int fd) {
  rpm::serve::LineAssembler assembler;
  char chunk[4096];
  bool open = true;
  while (open) {
    std::string line;
    const auto status = assembler.NextLine(&line);
    if (status == rpm::serve::LineAssembler::LineStatus::kNone) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) break;
      assembler.Append(std::string_view(chunk, static_cast<std::size_t>(n)));
      continue;
    }
    std::string response;
    if (status == rpm::serve::LineAssembler::LineStatus::kOversized) {
      response = "ERR BAD_REQUEST line exceeds " +
                 std::to_string(assembler.max_line()) + " bytes";
    } else {
      response = server->HandleLine(line);
    }
    if (!WriteAll(fd, response + "\n")) break;
    if (response == "OK bye") open = false;
  }
  ::close(fd);
}

// Open connections, so shutdown can unblock their reads and join.
class ConnectionSet {
 public:
  void Spawn(rpm::serve::InferenceServer* server, int fd) {
    std::lock_guard lock(mutex_);
    fds_.push_back(fd);
    threads_.emplace_back(ServeConnection, server, fd);
  }
  void ShutdownAll() {
    {
      std::lock_guard lock(mutex_);
      for (int fd : fds_) ::shutdown(fd, SHUT_RDWR);
    }
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

 private:
  std::mutex mutex_;
  std::vector<int> fds_;
  std::vector<std::thread> threads_;
};

}  // namespace

int main(int argc, char** argv) {
  const ServeCliOptions cli = ParseArgs(argc, argv);

  if (cli.trace_sample > 0) {
    rpm::obs::Tracer::Default().set_sample_every(
        static_cast<std::uint32_t>(cli.trace_sample));
    rpm::obs::Tracer::Default().Enable(true);
  }

  rpm::serve::InferenceServer server(cli.server);
  for (const auto& [name, path] : cli.models) {
    try {
      const std::size_t patterns = server.LoadModel(name, path);
      std::fprintf(stderr, "[rpm_serve] loaded %s from %s (%zu patterns)\n",
                   name.c_str(), path.c_str(), patterns);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[rpm_serve] cannot load %s: %s\n", name.c_str(),
                   e.what());
      return 1;
    }
  }

  const int listen_fd = cli.unix_path.empty()
                            ? ListenTcp(cli.port)
                            : ListenUnix(cli.unix_path);
  if (listen_fd < 0) {
    std::fprintf(stderr, "[rpm_serve] cannot listen on %s\n",
                 cli.unix_path.empty() ? std::to_string(cli.port).c_str()
                                       : cli.unix_path.c_str());
    return 1;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::fprintf(stderr, "[rpm_serve] listening on %s\n",
               cli.unix_path.empty()
                   ? ("localhost:" + std::to_string(cli.port)).c_str()
                   : cli.unix_path.c_str());

  ConnectionSet connections;
  while (g_stop == 0) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    connections.Spawn(&server, fd);
  }

  // Graceful drain: unblock every connection, complete admitted requests,
  // then report the final counters.
  ::close(listen_fd);
  if (!cli.unix_path.empty()) ::unlink(cli.unix_path.c_str());
  connections.ShutdownAll();
  server.Shutdown();
  std::fprintf(stderr, "[rpm_serve] final stats: %s\n",
               server.Stats().ToJson().c_str());
  return 0;
}
