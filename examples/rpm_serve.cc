// Socket front end for the inference server (src/serve), built on the
// sharded event-driven reactor in src/net: N worker shards, each an
// epoll loop on its own thread, with connections pinned to shards by
// consistent hash. Every connection speaks either the line-oriented
// text protocol or the length-prefixed binary framing (both specced in
// docs/SERVING.md), negotiated by the connection's first bytes — binary
// clients open with the 4-byte magic "RPMB".
//
// Usage:
//   rpm_serve [--port N | --unix PATH] [--model NAME=PATH ...]
//             [--shards N] [--batch N] [--linger-us N] [--queue N]
//             [--threads N] [--timeout-ms N] [--trace-sample N]
//
// --shards N runs N reactor shards, each owning its own batching queue
// and stream-session map; stream sessions opened on a connection live
// on that connection's shard, so the hot feed path takes no cross-shard
// locks. Default 1 (single reactor).
//
// Observability: the METRICS verb returns the Prometheus exposition of
// every serve/stream/matcher/net metric, including the per-shard
// rpm_net_* and rpm_*_shard_* families; TRACE <n> returns recent trace
// spans as JSON. --trace-sample N records 1 of every N spans (default
// 16; 0 disables tracing entirely). See docs/OBSERVABILITY.md.
//
// Quickstart:
//   rpm_cli train train.csv gunpoint.model --search fixed --window 25
//   rpm_serve --port 7070 --model gunpoint=gunpoint.model --shards 4 &
//   printf 'CLASSIFY gunpoint 0.1,0.5,...\nSTATS\nQUIT\n' | nc localhost 7070

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/front_end.h"
#include "obs/trace.h"
#include "serve/net_handler.h"
#include "serve/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: rpm_serve [--port N | --unix PATH] "
               "[--model NAME=PATH ...]\n"
               "                 [--shards N] [--batch N] [--linger-us N] "
               "[--queue N] [--threads N] [--timeout-ms N]\n"
               "                 [--trace-sample N]   (record 1/N spans; "
               "0 disables tracing; default 16)\n");
  std::exit(2);
}

struct ServeCliOptions {
  int port = 7070;
  std::string unix_path;  // non-empty selects a Unix-domain socket
  std::vector<std::pair<std::string, std::string>> models;
  rpm::serve::ServerOptions server;
  long trace_sample = 16;  // 1/N span sampling; 0 = tracing off
};

ServeCliOptions ParseArgs(int argc, char** argv) {
  ServeCliOptions cli;
  auto need = [&](int i) -> const char* {
    if (i + 1 >= argc) Usage();
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port") {
      cli.port = std::atoi(need(i++));
    } else if (arg == "--unix") {
      cli.unix_path = need(i++);
    } else if (arg == "--model") {
      const std::string spec = need(i++);
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        Usage();
      }
      cli.models.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--shards") {
      const int n = std::atoi(need(i++));
      if (n <= 0) Usage();
      cli.server.num_shards = static_cast<std::size_t>(n);
    } else if (arg == "--batch") {
      cli.server.batching.max_batch_size =
          static_cast<std::size_t>(std::atoi(need(i++)));
    } else if (arg == "--linger-us") {
      cli.server.batching.max_linger =
          std::chrono::microseconds(std::atol(need(i++)));
    } else if (arg == "--queue") {
      cli.server.batching.max_queue_depth =
          static_cast<std::size_t>(std::atoi(need(i++)));
    } else if (arg == "--threads") {
      cli.server.batching.num_threads =
          static_cast<std::size_t>(std::atoi(need(i++)));
    } else if (arg == "--timeout-ms") {
      cli.server.default_timeout =
          std::chrono::milliseconds(std::atol(need(i++)));
    } else if (arg == "--trace-sample") {
      cli.trace_sample = std::atol(need(i++));
      if (cli.trace_sample < 0) Usage();
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      Usage();
    }
  }
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  const ServeCliOptions cli = ParseArgs(argc, argv);

  if (cli.trace_sample > 0) {
    rpm::obs::Tracer::Default().set_sample_every(
        static_cast<std::uint32_t>(cli.trace_sample));
    rpm::obs::Tracer::Default().Enable(true);
  }

  rpm::serve::InferenceServer server(cli.server);
  for (const auto& [name, path] : cli.models) {
    try {
      const std::size_t patterns = server.LoadModel(name, path);
      std::fprintf(stderr, "[rpm_serve] loaded %s from %s (%zu patterns)\n",
                   name.c_str(), path.c_str(), patterns);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[rpm_serve] cannot load %s: %s\n", name.c_str(),
                   e.what());
      return 1;
    }
  }

  rpm::serve::NetHandler handler(&server);
  rpm::net::FrontEndOptions net_options;
  net_options.tcp_port = cli.port;
  net_options.unix_path = cli.unix_path;
  net_options.num_shards = server.num_shards();
  net_options.metrics = &server.metrics();
  rpm::net::FrontEnd front_end(&handler, net_options);
  if (!front_end.Start()) return 1;

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::fprintf(
      stderr, "[rpm_serve] listening on %s (%zu shard%s)\n",
      cli.unix_path.empty()
          ? ("localhost:" + std::to_string(front_end.port())).c_str()
          : cli.unix_path.c_str(),
      front_end.num_shards(), front_end.num_shards() == 1 ? "" : "s");

  // The reactors own all I/O; this thread just waits for the signal.
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Graceful drain: each shard flushes and closes its own connections
  // (front end), then drains its own queue and sessions (server), so
  // every admitted request completes and no session closes twice.
  front_end.Stop();
  server.Shutdown();
  std::fprintf(stderr, "[rpm_serve] final stats: %s\n",
               server.Stats().ToJson().c_str());
  return 0;
}
