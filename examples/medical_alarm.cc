// Section 6.2 demo: normal-vs-alarm classification of synthetic arterial
// blood pressure strips (the MIMIC-II stand-in). Prints per-class scores
// and the mined alarm-signature patterns.

#include <cstdio>

#include "core/rpm.h"
#include "ml/metrics.h"
#include "ts/generators.h"

int main() {
  using namespace rpm;
  const ts::DatasetSplit split = ts::MakeAbpAlarm(15, 40, 240, 62);

  core::RpmOptions options;
  options.search = core::ParameterSearch::kFixed;
  options.fixed_sax.window = 60;  // spans ~2 beats
  options.fixed_sax.paa_size = 6;
  options.fixed_sax.alphabet = 4;
  // The alarm class mixes three morphologies; gamma must sit below each
  // subtype's share of the class (~1/3) or their motifs get pruned.
  options.gamma = 0.1;

  core::RpmClassifier clf(options);
  clf.Train(split.train);

  std::vector<int> truth;
  for (const auto& inst : split.test) truth.push_back(inst.label);
  const std::vector<int> pred = clf.ClassifyAll(split.test);

  std::printf("ABP alarm detection (1 = normal, 2 = alarm)\n");
  std::printf("test error: %.4f\n", ml::ErrorRate(pred, truth));
  for (const auto& [label, s] : ml::PerClassScores(pred, truth)) {
    std::printf("class %d  precision %.3f  recall %.3f  F1 %.3f\n", label,
                s.precision, s.recall, s.f1);
  }
  std::printf("\nmined patterns:\n");
  for (const auto& p : clf.patterns()) {
    std::printf("  class %d  length %zu  frequency %zu\n", p.class_label,
                p.values.size(), p.frequency);
  }
  return 0;
}
