// Converter between the UCR text format (ts/ucr_io.h) and the chunked
// RPMD binary format (ts/dataset_io.h, spec in docs/DATASETS.md).
//
// Usage:
//   ucr_convert pack   IN.ucr  OUT.rpmd  [--chunk N] [--fixed]
//   ucr_convert unpack IN.rpmd OUT.ucr
//   ucr_convert info   IN.rpmd
//   ucr_convert gen    FAMILY  OUT.rpmd  --num N [--length N] [--seed N]
//
// pack streams the parsed instances into a writer (pass --fixed to pin
// the file to the first instance's length and drop the length tables);
// unpack round-trips back to text; info opens the file — verifying the
// header, directory, and table CRCs — and prints its shape without
// touching value pages; gen streams a synthetic family (see
// `ucr_convert gen` with no args for names) straight to disk, so
// million-series archives never exist in memory.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "ts/dataset_io.h"
#include "ts/generators.h"
#include "ts/ucr_io.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ucr_convert pack   IN.ucr  OUT.rpmd  [--chunk N] "
               "[--fixed]\n"
               "       ucr_convert unpack IN.rpmd OUT.ucr\n"
               "       ucr_convert info   IN.rpmd\n"
               "       ucr_convert gen    FAMILY  OUT.rpmd  --num N "
               "[--length N] [--seed N]\n"
               "families:");
  for (const auto& name : rpm::ts::GeneratorFamilies()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

int Pack(int argc, char** argv) {
  if (argc < 4) return Usage();
  rpm::ts::DatasetWriterOptions options;
  bool fixed = false;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fixed") {
      fixed = true;
    } else if (arg == "--chunk" && i + 1 < argc) {
      options.chunk_series = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      return Usage();
    }
  }
  const rpm::ts::Dataset data = rpm::ts::LoadUcrFile(argv[2]);
  if (fixed && !data.empty()) {
    options.fixed_length = data[0].values.size();
  }
  rpm::ts::DatasetWriter writer(argv[3], options);
  for (const auto& inst : data) writer.Append(inst);
  writer.Finish();
  std::printf("%s: %zu series -> %s (%zu chunks%s)\n", argv[2], data.size(),
              argv[3], writer.chunks_written(),
              fixed ? ", fixed-length" : "");
  return 0;
}

int Unpack(int argc, char** argv) {
  if (argc < 4) return Usage();
  const rpm::ts::DatasetReader reader(argv[2]);
  rpm::ts::SaveUcrFile(reader.ReadAll(), argv[3]);
  std::printf("%s: %zu series -> %s\n", argv[2], reader.size(), argv[3]);
  return 0;
}

int Info(int argc, char** argv) {
  if (argc < 3) return Usage();
  const rpm::ts::DatasetReader reader(argv[2]);
  std::printf("%s: %zu series, %zu chunks, %zu bytes\n", argv[2],
              reader.size(), reader.num_chunks(), reader.file_bytes());
  if (reader.fixed_length() != 0) {
    std::printf("  fixed length %zu\n", reader.fixed_length());
  } else if (!reader.empty()) {
    std::size_t lo = reader.length(0);
    std::size_t hi = lo;
    for (std::size_t i = 1; i < reader.size(); ++i) {
      lo = std::min(lo, reader.length(i));
      hi = std::max(hi, reader.length(i));
    }
    std::printf("  lengths %zu..%zu\n", lo, hi);
  }
  for (const auto& [label, count] : reader.ClassHistogram()) {
    std::printf("  class %d: %zu\n", label, count);
  }
  return 0;
}

int Gen(int argc, char** argv) {
  if (argc < 4) return Usage();
  rpm::ts::ArchiveOptions options;
  for (int i = 4; i + 1 < argc; i += 2) {
    const std::string arg = argv[i];
    const auto value = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
    if (arg == "--num") {
      options.num_series = static_cast<std::size_t>(value);
    } else if (arg == "--length") {
      options.length = static_cast<std::size_t>(value);
    } else if (arg == "--seed") {
      options.seed = value;
    } else {
      return Usage();
    }
  }
  if (options.num_series == 0) return Usage();
  const std::size_t written =
      rpm::ts::GenerateToFile(argv[2], options, argv[3]);
  std::printf("%s: %zu series of length %zu -> %s\n", argv[2], written,
              options.length, argv[3]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  try {
    if (command == "pack") return Pack(argc, argv);
    if (command == "unpack") return Unpack(argc, argv);
    if (command == "info") return Info(argc, argv);
    if (command == "gen") return Gen(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ucr_convert %s: %s\n", command.c_str(), e.what());
    return 1;
  }
  return Usage();
}
