// Observability-layer suite: registry semantics, Prometheus exposition
// golden-format checks (a small in-test parser validates counter
// monotonicity and histogram bucket structure), trace span JSON
// round-trips, the 8-thread registry/tracer hammer (runs under TSan via
// scripts/tsan_check.sh, label `obs`), and the STATS-vs-METRICS
// consistency contract after drain.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "ts/generators.h"

namespace rpm {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Labels;
using obs::MetricRegistry;
using obs::RegistrySnapshot;
using obs::RenderPrometheus;
using obs::SpanRecord;
using obs::Tracer;
using obs::TraceSpan;

// ---------------------------------------------------------------------
// A minimal Prometheus text-format parser, enough to validate the
// expositor's output structurally. One sample per non-comment line:
//   name{label="v",...} value
struct ParsedSample {
  std::string name;    // full name incl. _bucket/_sum/_count suffix
  std::string labels;  // raw label block without braces ("" if none)
  double value = 0.0;
};

struct ParsedExposition {
  std::map<std::string, std::string> types;  // family -> counter|gauge|...
  std::map<std::string, std::string> helps;
  std::vector<ParsedSample> samples;
  bool saw_eof = false;
  std::vector<std::string> errors;
};

ParsedExposition ParsePrometheus(const std::string& text) {
  ParsedExposition out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      out.errors.push_back("blank line");
      continue;
    }
    if (out.saw_eof) {
      out.errors.push_back("content after # EOF: " + line);
      continue;
    }
    if (line == "# EOF") {
      out.saw_eof = true;
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      const bool is_type = line.rfind("# TYPE ", 0) == 0;
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      if (space == std::string::npos) {
        out.errors.push_back("malformed comment: " + line);
        continue;
      }
      const std::string family = rest.substr(0, space);
      const std::string payload = rest.substr(space + 1);
      auto& target = is_type ? out.types : out.helps;
      if (target.count(family) != 0) {
        out.errors.push_back("duplicate HELP/TYPE for " + family);
      }
      target[family] = payload;
      continue;
    }
    if (line[0] == '#') {
      out.errors.push_back("unknown comment: " + line);
      continue;
    }
    ParsedSample sample;
    std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) {
      out.errors.push_back("malformed sample: " + line);
      continue;
    }
    sample.name = line.substr(0, name_end);
    std::size_t value_start = name_end;
    if (line[name_end] == '{') {
      const std::size_t close = line.find('}', name_end);
      if (close == std::string::npos) {
        out.errors.push_back("unterminated labels: " + line);
        continue;
      }
      sample.labels = line.substr(name_end + 1, close - name_end - 1);
      value_start = close + 1;
    }
    if (value_start >= line.size() || line[value_start] != ' ') {
      out.errors.push_back("missing value: " + line);
      continue;
    }
    const std::string value_text = line.substr(value_start + 1);
    char* end = nullptr;
    sample.value = std::strtod(value_text.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      out.errors.push_back("bad value '" + value_text + "' in: " + line);
      continue;
    }
    out.samples.push_back(std::move(sample));
  }
  return out;
}

// Family name a sample belongs to (strips histogram suffixes).
std::string FamilyOf(const std::string& name,
                     const ParsedExposition& parsed) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s = suffix;
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      const std::string family = name.substr(0, name.size() - s.size());
      if (parsed.types.count(family) != 0 &&
          parsed.types.at(family) == "histogram") {
        return family;
      }
    }
  }
  return name;
}

double LabeledValue(const ParsedExposition& parsed, const std::string& name,
                    const std::string& labels = "") {
  for (const ParsedSample& s : parsed.samples) {
    if (s.name == name && s.labels == labels) return s.value;
  }
  ADD_FAILURE() << "no sample " << name << "{" << labels << "}";
  return -1.0;
}

// Structural validity of one exposition: every sample's family has a
// TYPE and HELP; counters are non-negative integers; histogram buckets
// are cumulative, end in +Inf, and +Inf equals _count.
void ValidatePrometheus(const std::string& text) {
  const ParsedExposition parsed = ParsePrometheus(text);
  EXPECT_TRUE(parsed.saw_eof) << "missing # EOF terminator";
  for (const std::string& e : parsed.errors) ADD_FAILURE() << e;

  std::map<std::string, std::vector<ParsedSample>> buckets_by_series;
  for (const ParsedSample& s : parsed.samples) {
    const std::string family = FamilyOf(s.name, parsed);
    ASSERT_TRUE(parsed.types.count(family) != 0)
        << "sample " << s.name << " has no TYPE";
    EXPECT_TRUE(parsed.helps.count(family) != 0)
        << "sample " << s.name << " has no HELP";
    const std::string& type = parsed.types.at(family);
    if (type == "counter") {
      EXPECT_GE(s.value, 0.0) << s.name;
      EXPECT_EQ(s.value, std::floor(s.value))
          << "counter " << s.name << " not integral";
    }
    if (type == "histogram" && s.name == family + "_bucket") {
      // Group bucket lines per series (labels minus `le`).
      std::string series_labels = s.labels;
      const std::size_t le = series_labels.find("le=\"");
      std::string le_value;
      ASSERT_NE(le, std::string::npos) << s.name << " bucket without le";
      const std::size_t le_end = series_labels.find('"', le + 4);
      le_value = series_labels.substr(le + 4, le_end - le - 4);
      // Strip the le pair (it is always the last label the expositor
      // renders).
      std::string key =
          family + "|" +
          series_labels.substr(0, le == 0 ? 0 : le - 1);
      ParsedSample b = s;
      b.labels = le_value;
      buckets_by_series[key].push_back(b);
    }
  }

  for (const auto& [key, buckets] : buckets_by_series) {
    const std::string family = key.substr(0, key.find('|'));
    // Cumulative and ordered: counts never decrease, bounds ascend,
    // last bucket is +Inf and equals _count.
    double prev_count = -1.0;
    double prev_bound = -std::numeric_limits<double>::infinity();
    for (const ParsedSample& b : buckets) {
      EXPECT_GE(b.value, prev_count) << family << " bucket not cumulative";
      prev_count = b.value;
      const double bound = b.labels == "+Inf"
                               ? std::numeric_limits<double>::infinity()
                               : std::strtod(b.labels.c_str(), nullptr);
      EXPECT_GT(bound, prev_bound) << family << " bounds not ascending";
      prev_bound = bound;
    }
    ASSERT_FALSE(buckets.empty());
    EXPECT_EQ(buckets.back().labels, "+Inf") << family;
    // _count (first series with this family name) matches +Inf.
    double count = -1.0;
    for (const ParsedSample& s : parsed.samples) {
      if (s.name == family + "_count") {
        count = s.value;
        break;
      }
    }
    EXPECT_EQ(buckets.back().value, count) << family;
  }
}

// ---------------------------------------------------------------------

TEST(MetricRegistry, CounterGaugeBasics) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("rpm_test_events_total", "Events.");
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
  // Re-registration returns the same cell.
  EXPECT_EQ(registry.GetCounter("rpm_test_events_total", "Events."), c);

  Gauge* g = registry.GetGauge("rpm_test_level", "Level.");
  g->Set(7);
  g->Add(-3);
  EXPECT_EQ(g->value(), 4);

  const RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Count("rpm_test_events_total"), 42u);
  EXPECT_EQ(snap.Scalar("rpm_test_level"), 4.0);
  EXPECT_EQ(snap.Scalar("rpm_test_absent"), 0.0);
}

TEST(MetricRegistry, LabeledCellsAreDistinct) {
  MetricRegistry registry;
  Counter* ok = registry.GetCounter("rpm_test_req_total", "Reqs.",
                                    {{"status", "ok"}});
  Counter* err = registry.GetCounter("rpm_test_req_total", "Reqs.",
                                     {{"status", "err"}});
  EXPECT_NE(ok, err);
  ok->Increment(3);
  err->Increment();
  const RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Count("rpm_test_req_total", {{"status", "ok"}}), 3u);
  EXPECT_EQ(snap.Count("rpm_test_req_total", {{"status", "err"}}), 1u);
}

TEST(MetricRegistry, HistogramBucketsAndOverflow) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("rpm_test_latency_microseconds",
                                       "Latency.", {1.0, 10.0, 100.0});
  h->Record(0.5);    // bucket 0
  h->Record(5.0);    // bucket 1
  h->Record(50.0);   // bucket 2
  h->Record(5000.0); // overflow
  const auto snap = h->Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.total, 4u);
  EXPECT_NEAR(snap.sum, 5055.5, 0.01);
  // Percentile of an overflow hit reports the highest finite bound.
  EXPECT_EQ(snap.Percentile(100.0), 100.0);
  EXPECT_EQ(snap.Percentile(50.0), 10.0);
}

TEST(Exposition, GoldenFormatParses) {
  MetricRegistry registry;
  registry.GetCounter("rpm_test_a_total", "A.")->Increment(5);
  registry.GetGauge("rpm_test_b", "B.")->Set(-2);
  registry
      .GetCounter("rpm_test_req_total", "Reqs.", {{"status", "ok"}})
      ->Increment(9);
  registry.GetCounter("rpm_test_req_total", "Reqs.", {{"status", "err"}});
  Histogram* h = registry.GetHistogram(
      "rpm_test_lat_microseconds", "Lat.",
      Histogram::GeometricBounds(1.0, 2.0, 8));
  for (int i = 0; i < 100; ++i) h->Record(double(i));

  const std::string text = RenderPrometheus(registry.Snapshot());
  ValidatePrometheus(text);

  const ParsedExposition parsed = ParsePrometheus(text);
  EXPECT_EQ(parsed.types.at("rpm_test_a_total"), "counter");
  EXPECT_EQ(parsed.types.at("rpm_test_b"), "gauge");
  EXPECT_EQ(parsed.types.at("rpm_test_lat_microseconds"), "histogram");
  EXPECT_EQ(LabeledValue(parsed, "rpm_test_a_total"), 5.0);
  EXPECT_EQ(LabeledValue(parsed, "rpm_test_b"), -2.0);
  EXPECT_EQ(LabeledValue(parsed, "rpm_test_req_total", "status=\"ok\""),
            9.0);
  EXPECT_EQ(LabeledValue(parsed, "rpm_test_lat_microseconds_count"), 100.0);
  // Sum has milli resolution: exactly 4950 here.
  EXPECT_NEAR(LabeledValue(parsed, "rpm_test_lat_microseconds_sum"), 4950.0,
              0.01);
}

TEST(Exposition, EscapesHelpAndLabelValues) {
  MetricRegistry registry;
  registry.GetCounter("rpm_test_esc_total", "Line\nbreak \\ slash.",
                      {{"path", "a\"b\\c"}});
  const std::string text = RenderPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("Line\\nbreak \\\\ slash."), std::string::npos);
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\""), std::string::npos);
  ValidatePrometheus(text);
}

TEST(Exposition, MultipleRegistriesConcatenate) {
  MetricRegistry a;
  MetricRegistry b;
  a.GetCounter("rpm_test_a_total", "A.")->Increment();
  b.GetCounter("rpm_test_b_total", "B.")->Increment(2);
  const auto snap_a = a.Snapshot();
  const auto snap_b = b.Snapshot();
  const std::string text = obs::RenderPrometheus({&snap_a, &snap_b});
  ValidatePrometheus(text);
  const ParsedExposition parsed = ParsePrometheus(text);
  EXPECT_EQ(LabeledValue(parsed, "rpm_test_a_total"), 1.0);
  EXPECT_EQ(LabeledValue(parsed, "rpm_test_b_total"), 2.0);
}

// ---------------------------------------------------------------------

TEST(Trace, DisabledSpansRecordNothing) {
  Tracer tracer;
  { TraceSpan span("test.noop", tracer); }
  EXPECT_TRUE(tracer.Recent().empty());
}

TEST(Trace, SpansRecordAndFlushInOrder) {
  Tracer tracer;
  tracer.Enable(true);
  { TraceSpan span("test.one", tracer); }
  { TraceSpan span("test.two", tracer); }
  { TraceSpan span("test.three", tracer); }
  const std::vector<SpanRecord> spans = tracer.Recent();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "test.one");
  EXPECT_STREQ(spans[1].name, "test.two");
  EXPECT_STREQ(spans[2].name, "test.three");
  EXPECT_LT(spans[0].seq, spans[1].seq);
  EXPECT_LE(spans[0].start_ns,
            spans[1].start_ns + spans[1].duration_ns);

  // Recent(n) keeps the most recent n.
  const auto last = tracer.Recent(2);
  ASSERT_EQ(last.size(), 2u);
  EXPECT_STREQ(last[0].name, "test.two");
  EXPECT_STREQ(last[1].name, "test.three");

  tracer.Clear();
  EXPECT_TRUE(tracer.Recent().empty());
}

TEST(Trace, SamplingRecordsOneOfN) {
  Tracer tracer;
  tracer.Enable(true);
  tracer.set_sample_every(4);
  for (int i = 0; i < 16; ++i) {
    TraceSpan span("test.sampled", tracer);
  }
  EXPECT_EQ(tracer.Recent().size(), 4u);
}

TEST(Trace, RingWrapsKeepingMostRecent) {
  Tracer tracer;
  tracer.Enable(true);
  for (std::size_t i = 0; i < Tracer::kRingCapacity + 10; ++i) {
    TraceSpan span("test.wrap", tracer);
  }
  const auto spans = tracer.Recent();
  EXPECT_EQ(spans.size(), Tracer::kRingCapacity);
  // The oldest 10 were overwritten: the minimum surviving seq is 10.
  std::uint64_t min_seq = spans.front().seq;
  for (const auto& s : spans) min_seq = std::min(min_seq, s.seq);
  EXPECT_EQ(min_seq, 10u);
}

// A hand-rolled check that the span JSON is well-formed and carries the
// source values back out (round-trip by field extraction).
TEST(Trace, SpanJsonRoundTrips) {
  Tracer tracer;
  tracer.Enable(true);
  {
    TraceSpan a("test.alpha", tracer);
    TraceSpan b("test.beta", tracer);
  }
  const std::vector<SpanRecord> spans = tracer.Recent();
  ASSERT_EQ(spans.size(), 2u);
  const std::string json = obs::RenderSpansJson(spans);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');

  // Each span renders as one object with all five fields.
  std::size_t objects = 0;
  std::size_t pos = 0;
  while ((pos = json.find('{', pos)) != std::string::npos) {
    const std::size_t end = json.find('}', pos);
    ASSERT_NE(end, std::string::npos);
    const std::string obj = json.substr(pos, end - pos + 1);
    for (const char* field :
         {"\"name\":", "\"start_us\":", "\"dur_us\":", "\"thread\":",
          "\"seq\":"}) {
      EXPECT_NE(obj.find(field), std::string::npos) << obj;
    }
    ++objects;
    pos = end + 1;
  }
  EXPECT_EQ(objects, spans.size());

  // Round-trip: names and seqs extracted from the JSON match the source
  // records, in order.
  std::vector<std::string> names;
  pos = 0;
  while ((pos = json.find("\"name\":\"", pos)) != std::string::npos) {
    pos += 8;
    names.push_back(json.substr(pos, json.find('"', pos) - pos));
  }
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], spans[0].name);
  EXPECT_EQ(names[1], spans[1].name);
}

// ---------------------------------------------------------------------
// Concurrency: 8 threads hammer one registry's cells and one tracer.
// Counters must be exact; the tracer must stay consistent (TSan runs
// this under scripts/tsan_check.sh, ctest label `obs`).

TEST(ObsConcurrency, EightThreadsHammerRegistryAndTracer) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 20000;

  MetricRegistry registry;
  Tracer tracer;
  tracer.Enable(true);
  tracer.set_sample_every(7);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &tracer, t] {
      // Concurrent registration of the same names must converge on the
      // same cells.
      Counter* c =
          registry.GetCounter("rpm_test_hammer_total", "Hammer.");
      Gauge* g = registry.GetGauge("rpm_test_hammer_level", "Level.");
      Histogram* h = registry.GetHistogram(
          "rpm_test_hammer_microseconds", "Hist.",
          Histogram::GeometricBounds(1.0, 2.0, 16));
      for (std::size_t i = 0; i < kIters; ++i) {
        TraceSpan span("test.hammer", tracer);
        c->Increment();
        g->Add(t % 2 == 0 ? 1 : -1);
        h->Record(double(i % 1000));
        if (i % 4096 == 0) {
          // Snapshots and flushes race the writers on purpose.
          registry.Snapshot();
          tracer.Recent(64);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  const RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Count("rpm_test_hammer_total"), kThreads * kIters);
  EXPECT_EQ(snap.Scalar("rpm_test_hammer_level"), 0.0);
  const auto* h = snap.FindHistogram("rpm_test_hammer_microseconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->snapshot.total, kThreads * kIters);
  ValidatePrometheus(RenderPrometheus(snap));

  // Every thread's ring is bounded; flush sees at most 8 rings' worth.
  const auto spans = tracer.Recent();
  EXPECT_LE(spans.size(), kThreads * Tracer::kRingCapacity);
  EXPECT_FALSE(spans.empty());
}

// ---------------------------------------------------------------------
// End-to-end: the serve METRICS verb and the STATS JSON must agree on
// request counts once traffic has drained, because both are views of
// the same registry (the ISSUE-5 consistency fix).

TEST(ServeObservability, StatsAndMetricsAgreeAfterDrain) {
  const ts::DatasetSplit split = ts::MakeCbf(30, 6, 128, 3);
  core::RpmOptions options;
  options.search = core::ParameterSearch::kFixed;
  options.fixed_sax.window = 32;
  options.fixed_sax.paa_size = 4;
  options.fixed_sax.alphabet = 4;
  core::RpmClassifier clf(options);
  clf.Train(split.train);

  serve::InferenceServer server;
  server.AddModel("m", std::move(clf));
  for (std::size_t i = 0; i < 10; ++i) {
    const auto result = server.Classify(
        "m", split.test[i % split.test.size()].values,
        std::chrono::seconds(30));
    ASSERT_EQ(result.status, serve::StatusCode::kOk);
  }
  server.Classify("no_such_model", split.test[0].values,
                  std::chrono::seconds(1));

  // Drained: no in-flight work. STATS and METRICS must agree exactly.
  const serve::StatsSnapshot stats = server.Stats();
  const std::string text = server.MetricsText();
  ValidatePrometheus(text);
  const ParsedExposition parsed = ParsePrometheus(text);
  EXPECT_EQ(double(stats.admitted),
            LabeledValue(parsed, "rpm_serve_requests_admitted_total"));
  EXPECT_EQ(double(stats.ok),
            LabeledValue(parsed, "rpm_serve_requests_total",
                         "status=\"ok\""));
  EXPECT_EQ(double(stats.not_found),
            LabeledValue(parsed, "rpm_serve_requests_total",
                         "status=\"not_found\""));
  EXPECT_EQ(stats.admitted, 10u);
  EXPECT_EQ(stats.ok, 10u);
  EXPECT_EQ(stats.not_found, 1u);
  EXPECT_EQ(double(stats.batches),
            LabeledValue(parsed, "rpm_serve_batches_total"));
  EXPECT_EQ(double(stats.latency_us.total),
            LabeledValue(parsed,
                         "rpm_serve_request_latency_microseconds_count"));
  // Matcher metrics from the process-default registry render in the
  // same exposition (classifying above ran best-match scans).
  EXPECT_GT(LabeledValue(parsed, "rpm_matcher_scans_total"), 0.0);
}

TEST(ServeObservability, MetricsAndTraceVerbs) {
  serve::InferenceServer server;

  const std::string metrics = server.HandleLine("METRICS");
  ASSERT_EQ(metrics.rfind("OK metrics\n", 0), 0u);
  // Body (after the status line) is valid exposition text; HandleLine
  // strips the final newline, so restore it for the parser.
  ValidatePrometheus(metrics.substr(11) + "\n");

  const std::string trace = server.HandleLine("TRACE 8");
  ASSERT_EQ(trace.rfind("OK [", 0), 0u);
  EXPECT_EQ(trace.back(), ']');
  EXPECT_EQ(server.HandleLine("TRACE 0").rfind("ERR BAD_REQUEST", 0), 0u);
  EXPECT_EQ(server.HandleLine("TRACE -3").rfind("ERR BAD_REQUEST", 0), 0u);
}

}  // namespace
}  // namespace rpm
