// Tests for the GrammarViz-style inspection utilities and the classifier
// training report.

#include <gtest/gtest.h>

#include "core/rpm.h"
#include "grammar/inspect.h"
#include "ts/generators.h"
#include "ts/rng.h"

namespace rpm::grammar {
namespace {

std::vector<MotifCandidate> TwoMotifs() {
  MotifCandidate a;
  a.rule_id = 1;
  a.intervals = {{0, 10}, {20, 12}, {40, 8}};
  MotifCandidate b;
  b.rule_id = 2;
  b.intervals = {{5, 4}, {50, 4}};
  return {a, b};
}

TEST(Inspect, SummaryStatsAndOrdering) {
  const auto stats = SummarizeMotifs(TwoMotifs());
  ASSERT_EQ(stats.size(), 2u);
  // Rule 1 has mass 30, rule 2 mass 8: rule 1 first.
  EXPECT_EQ(stats[0].rule_id, 1);
  EXPECT_EQ(stats[0].occurrences, 3u);
  EXPECT_EQ(stats[0].min_length, 8u);
  EXPECT_EQ(stats[0].max_length, 12u);
  EXPECT_DOUBLE_EQ(stats[0].mean_length, 10.0);
  EXPECT_DOUBLE_EQ(stats[0].mass, 30.0);
  EXPECT_EQ(stats[1].rule_id, 2);
}

TEST(Inspect, CoverageDensityCountsOverlaps) {
  const auto density = CoverageDensity(TwoMotifs(), 60);
  ASSERT_EQ(density.size(), 60u);
  EXPECT_EQ(density[0], 1u);   // only rule 1's first interval
  EXPECT_EQ(density[5], 2u);   // rule 1 [0,10) + rule 2 [5,9)
  EXPECT_EQ(density[15], 0u);  // gap
  EXPECT_EQ(density[21], 1u);
  EXPECT_EQ(density[47], 1u);  // rule 1 [40,48)
  EXPECT_EQ(density[48], 0u);
  EXPECT_EQ(density[50], 1u);
}

TEST(Inspect, CoverageFraction) {
  // Covered: [0,10) u [5,9) u [20,32) u [40,48) u [50,54) = 10+12+8+4 = 34.
  EXPECT_NEAR(CoverageFraction(TwoMotifs(), 60), 34.0 / 60.0, 1e-12);
  EXPECT_DOUBLE_EQ(CoverageFraction({}, 60), 0.0);
  EXPECT_DOUBLE_EQ(CoverageFraction(TwoMotifs(), 0), 0.0);
}

TEST(Inspect, IntervalsClampedToLength) {
  MotifCandidate m;
  m.rule_id = 3;
  m.intervals = {{55, 20}, {100, 5}};  // both overflow length 60
  const auto density = CoverageDensity({m}, 60);
  EXPECT_EQ(density[59], 1u);
  EXPECT_EQ(density[54], 0u);
}

TEST(Inspect, DiscordsPickLowestDensityRegions) {
  // Motifs cover [0,30) and [40,60) densely; [30,40) is the gap.
  MotifCandidate m;
  m.rule_id = 1;
  m.intervals = {{0, 30}, {40, 20}};
  const auto discords = FindDiscords({m}, 60, 10, 2);
  ASSERT_GE(discords.size(), 1u);
  EXPECT_EQ(discords[0].start, 30u);
  EXPECT_DOUBLE_EQ(discords[0].mean_density, 0.0);
}

TEST(Inspect, DiscordsAreNonOverlapping) {
  const auto discords = FindDiscords(TwoMotifs(), 60, 8, 3);
  for (std::size_t i = 0; i < discords.size(); ++i) {
    for (std::size_t j = i + 1; j < discords.size(); ++j) {
      const auto& a = discords[i];
      const auto& b = discords[j];
      EXPECT_TRUE(a.start + a.length <= b.start ||
                  b.start + b.length <= a.start);
    }
  }
  // Sorted by ascending density (most anomalous first).
  for (std::size_t i = 1; i < discords.size(); ++i) {
    EXPECT_LE(discords[i - 1].mean_density, discords[i].mean_density);
  }
}

TEST(Inspect, DiscordDegenerateInputs) {
  EXPECT_TRUE(FindDiscords({}, 10, 20, 3).empty());  // window > series
  EXPECT_TRUE(FindDiscords({}, 10, 0, 3).empty());
  EXPECT_TRUE(FindDiscords({}, 10, 5, 0).empty());
  // No motifs at all: everything has density 0; still returns windows.
  EXPECT_EQ(FindDiscords({}, 20, 5, 2).size(), 2u);
}

TEST(Inspect, PlantedAnomalyFoundInPeriodicSeries) {
  // Periodic series with one corrupted cycle: the discord should land on
  // the corruption.
  ts::Rng rng(5);
  ts::Series s(360);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 30.0) +
           rng.Gaussian(0.0, 0.03);
  }
  for (std::size_t i = 180; i < 210; ++i) {
    s[i] = rng.Gaussian(0.0, 1.0);  // destroy one cycle
  }
  sax::SaxOptions opt;
  opt.window = 30;
  opt.paa_size = 4;
  opt.alphabet = 4;
  const auto records = sax::DiscretizeSlidingWindow(s, opt);
  const auto motifs =
      FindMotifCandidates(records, opt.window, s.size(), {}, true);
  const auto discords = FindDiscords(motifs, s.size(), 30, 1);
  ASSERT_EQ(discords.size(), 1u);
  // The anomalous cycle sits at [180, 210); allow window-sized slack.
  EXPECT_GE(discords[0].start + discords[0].length, 165u);
  EXPECT_LE(discords[0].start, 225u);
}

TEST(Inspect, FormatTableMentionsRules) {
  const std::string table = FormatMotifTable(TwoMotifs());
  EXPECT_NE(table.find("R1"), std::string::npos);
  EXPECT_NE(table.find("R2"), std::string::npos);
}

}  // namespace
}  // namespace rpm::grammar

namespace rpm::core {
namespace {

TEST(TrainingReportTest, PopulatedByTrain) {
  const ts::DatasetSplit split = ts::MakeGunPoint(10, 5, 100, 123);
  RpmOptions opt;
  opt.search = ParameterSearch::kFixed;
  opt.fixed_sax.window = 25;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  RpmClassifier clf(opt);
  clf.Train(split.train);
  const TrainingReport& r = clf.report();
  EXPECT_GT(r.candidates_total, 0u);
  EXPECT_EQ(r.patterns_selected, clf.patterns().size());
  EXPECT_EQ(r.combos_evaluated, 0u);  // fixed search evaluates nothing
  EXPECT_GE(r.candidate_mining_seconds, 0.0);
  EXPECT_GT(r.total_seconds(), 0.0);
  EXPECT_EQ(r.candidates_per_class.size(), 2u);
}

TEST(TrainingReportTest, CombosCountedUnderDirect) {
  const ts::DatasetSplit split = ts::MakeGunPoint(8, 4, 100, 124);
  RpmOptions opt;
  opt.search = ParameterSearch::kDirect;
  opt.direct_max_evaluations = 6;
  opt.param_splits = 2;
  opt.param_folds = 2;
  RpmClassifier clf(opt);
  clf.Train(split.train);
  EXPECT_GE(clf.report().combos_evaluated, 1u);
  EXPECT_GT(clf.report().parameter_selection_seconds, 0.0);
}

TEST(TrainingReportTest, ResetBetweenTrainCalls) {
  const ts::DatasetSplit split = ts::MakeGunPoint(8, 4, 100, 125);
  RpmOptions opt;
  opt.search = ParameterSearch::kFixed;
  opt.fixed_sax.window = 25;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  RpmClassifier clf(opt);
  clf.Train(split.train);
  const std::size_t first = clf.report().candidates_total;
  clf.Train(split.train);
  EXPECT_EQ(clf.report().candidates_total, first);
}

}  // namespace
}  // namespace rpm::core
