// Equivalence and behavior tests for the cross-combo discretization
// cache: every cached path must reproduce sax::DiscretizeSlidingWindow
// bit for bit, layers must be shared at the right granularity, the LRU
// byte bound must hold, and parameter selection with the cache enabled
// must pick exactly the parameters the uncached path picks. Carries the
// `training` ctest label so the pool/cache interplay runs under TSan.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/options.h"
#include "core/parameter_selection.h"
#include "core/training_cache.h"
#include "sax/sax.h"
#include "ts/generators.h"
#include "ts/parallel.h"
#include "ts/rng.h"

namespace rpm::core {
namespace {

ts::Series MakeSeries(std::size_t n, std::uint64_t seed) {
  ts::Rng rng(seed);
  ts::Series s(n);
  double v = 0.0;
  for (auto& x : s) {
    v += rng.Gaussian(0.0, 1.0);
    x = v;
  }
  return s;
}

TEST(StagedDiscretization, ComposesToStreamingPath) {
  const ts::Series s = MakeSeries(300, 3);
  for (bool znorm : {true, false}) {
    for (bool numerosity : {true, false}) {
      for (std::size_t w : {std::size_t{8}, std::size_t{25}}) {
        for (std::size_t paa : {std::size_t{3}, std::size_t{7}}) {
          for (int alphabet : {3, 6}) {
            sax::SaxOptions opt;
            opt.window = w;
            opt.paa_size = paa;
            opt.alphabet = alphabet;
            opt.znormalize = znorm;
            opt.numerosity_reduction = numerosity;
            const auto windows = sax::SlidingWindows(s, w, znorm);
            const auto rows = sax::PaaRows(windows, paa);
            const auto staged =
                sax::RecordsFromPaa(rows, alphabet, numerosity);
            EXPECT_EQ(staged, sax::DiscretizeSlidingWindow(s, opt))
                << "w=" << w << " paa=" << paa << " a=" << alphabet
                << " z=" << znorm << " nr=" << numerosity;
          }
        }
      }
    }
  }
}

TEST(StagedDiscretization, ThreadedStagesAreIdentical) {
  const ts::Series s = MakeSeries(400, 9);
  const auto seq = sax::SlidingWindows(s, 30, true, 1);
  const auto par = sax::SlidingWindows(s, 30, true, 8);
  EXPECT_EQ(seq.data, par.data);
  EXPECT_EQ(sax::PaaRows(seq, 5, 1).data, sax::PaaRows(par, 5, 8).data);
}

TEST(TrainingCache, MatchesDirectDiscretization) {
  const ts::Series s = MakeSeries(500, 11);
  TrainingCache cache;
  for (std::size_t w : {std::size_t{10}, std::size_t{40}}) {
    for (std::size_t paa : {std::size_t{4}, std::size_t{8}}) {
      for (int alphabet : {3, 5, 9}) {
        sax::SaxOptions opt;
        opt.window = w;
        opt.paa_size = paa;
        opt.alphabet = alphabet;
        const auto cached = cache.Discretize(s, opt);
        EXPECT_EQ(*cached, sax::DiscretizeSlidingWindow(s, opt))
            << "w=" << w << " paa=" << paa << " a=" << alphabet;
      }
    }
  }
}

TEST(TrainingCache, SharesLayersAtTheRightGranularity) {
  const ts::Series s = MakeSeries(200, 21);
  TrainingCache cache;
  sax::SaxOptions opt;
  opt.window = 20;
  opt.paa_size = 5;
  opt.alphabet = 4;

  cache.Discretize(s, opt);
  const auto after_first = cache.stats();
  // Cold call misses all three layers.
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_EQ(after_first.entries, 3u);

  // Same triple again: records-level hit, nothing recomputed.
  cache.Discretize(s, opt);
  EXPECT_EQ(cache.stats().hits, after_first.hits + 1);
  EXPECT_EQ(cache.stats().entries, 3u);

  // New alphabet at the same (window, paa): PAA rows are reused.
  opt.alphabet = 7;
  cache.Discretize(s, opt);
  EXPECT_EQ(cache.stats().entries, 4u);  // only a new records entry

  // New paa at the same window: the window matrix is reused.
  opt.paa_size = 9;
  cache.Discretize(s, opt);
  EXPECT_EQ(cache.stats().entries, 6u);  // new PAA rows + records

  // A different series must not collide with any existing entry.
  const ts::Series other = MakeSeries(200, 22);
  const auto records = cache.Discretize(other, opt);
  EXPECT_EQ(*records, sax::DiscretizeSlidingWindow(other, opt));
  EXPECT_EQ(cache.stats().entries, 9u);
}

TEST(TrainingCache, EvictsLruButStaysCorrect) {
  const ts::Series s = MakeSeries(600, 31);
  // Budget far below one window matrix: every call recomputes, results
  // must still be exact and the resident size bounded. One shard, so the
  // assertions below see a single LRU list.
  TrainingCache cache(4096, 1);
  sax::SaxOptions opt;
  opt.window = 50;
  for (int alphabet = 3; alphabet <= 8; ++alphabet) {
    opt.alphabet = alphabet;
    const auto cached = cache.Discretize(s, opt);
    EXPECT_EQ(*cached, sax::DiscretizeSlidingWindow(s, opt));
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  // The bound may be exceeded only by the most recent insertion chain.
  EXPECT_LE(cache.stats().entries, 3u);
}

TEST(TrainingCache, ShardCountDoesNotChangeResults) {
  const ts::Series s = MakeSeries(400, 33);
  // 1, default, and many shards must produce bit-identical records and
  // identical aggregate hit/miss accounting for a sequential workload.
  TrainingCache one(std::size_t{16} << 20, 1);
  TrainingCache dflt(std::size_t{16} << 20);
  TrainingCache many(std::size_t{16} << 20, 64);
  EXPECT_EQ(one.num_shards(), 1u);
  EXPECT_EQ(dflt.num_shards(), TrainingCache::kDefaultShards);
  EXPECT_EQ(many.num_shards(), 64u);
  for (std::size_t w : {std::size_t{12}, std::size_t{30}}) {
    for (int alphabet : {3, 6}) {
      sax::SaxOptions opt;
      opt.window = w;
      opt.paa_size = 5;
      opt.alphabet = alphabet;
      const auto a = one.Discretize(s, opt);
      const auto b = dflt.Discretize(s, opt);
      const auto c = many.Discretize(s, opt);
      EXPECT_EQ(*a, *b);
      EXPECT_EQ(*a, *c);
    }
  }
  const auto sa = one.stats();
  const auto sb = dflt.stats();
  const auto sc = many.stats();
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.misses, sb.misses);
  EXPECT_EQ(sa.entries, sb.entries);
  EXPECT_EQ(sa.hits, sc.hits);
  EXPECT_EQ(sa.entries, sc.entries);
}

TEST(TrainingCache, ShardStatsSumToAggregate) {
  const ts::Series s = MakeSeries(300, 35);
  TrainingCache cache;
  for (std::size_t w = 8; w <= 40; w += 4) {
    sax::SaxOptions opt;
    opt.window = w;
    opt.paa_size = 4;
    opt.alphabet = 5;
    cache.Discretize(s, opt);
    cache.Discretize(s, opt);  // one records-level hit per combo
  }
  TrainingCache::Stats sum;
  for (std::size_t i = 0; i < cache.num_shards(); ++i) {
    const auto shard = cache.shard_stats(i);
    sum.hits += shard.hits;
    sum.misses += shard.misses;
    sum.evictions += shard.evictions;
    sum.bytes += shard.bytes;
    sum.entries += shard.entries;
  }
  const auto total = cache.stats();
  EXPECT_EQ(sum.hits, total.hits);
  EXPECT_EQ(sum.misses, total.misses);
  EXPECT_EQ(sum.evictions, total.evictions);
  EXPECT_EQ(sum.bytes, total.bytes);
  EXPECT_EQ(sum.entries, total.entries);
  EXPECT_GT(total.hits, 0u);

  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(TrainingCache, ShardedConcurrentHammerStaysExact) {
  const ts::Series s = MakeSeries(500, 37);
  // Tiny per-shard budgets force concurrent eviction alongside the
  // concurrent hits/misses; every returned value must still be exact
  // (runs under TSan via the `training` label).
  TrainingCache cache(std::size_t{64} << 10, 4);
  std::vector<sax::SaxOptions> combos;
  for (std::size_t w : {std::size_t{10}, std::size_t{24}, std::size_t{40}}) {
    for (int alphabet : {3, 5, 7}) {
      sax::SaxOptions opt;
      opt.window = w;
      opt.paa_size = 6;
      opt.alphabet = alphabet;
      combos.push_back(opt);
    }
  }
  const std::size_t reps = 6;
  std::vector<int> ok(combos.size() * reps, 0);
  ts::ParallelFor(ok.size(), 8, [&](std::size_t i) {
    const auto& opt = combos[i % combos.size()];
    ok[i] = *cache.Discretize(s, opt) == sax::DiscretizeSlidingWindow(s, opt)
                ? 1
                : 0;
  });
  for (std::size_t i = 0; i < ok.size(); ++i) EXPECT_EQ(ok[i], 1);
}

TEST(TrainingCache, ZeroWindowAndShortSeries) {
  TrainingCache cache;
  sax::SaxOptions opt;
  opt.window = 100;
  const ts::Series tiny = MakeSeries(10, 5);
  EXPECT_TRUE(cache.Discretize(tiny, opt)->empty());
  opt.window = 0;
  EXPECT_TRUE(cache.Discretize(tiny, opt)->empty());
}

TEST(TrainingCache, ConcurrentLookupsAreConsistent) {
  const ts::Series s = MakeSeries(300, 41);
  TrainingCache cache;
  std::vector<sax::SaxOptions> combos;
  for (std::size_t w : {std::size_t{10}, std::size_t{20}}) {
    for (std::size_t paa : {std::size_t{4}, std::size_t{6}}) {
      for (int alphabet : {3, 5}) {
        sax::SaxOptions opt;
        opt.window = w;
        opt.paa_size = paa;
        opt.alphabet = alphabet;
        combos.push_back(opt);
      }
    }
  }
  // Hammer the cache from the pool, repeating each combo several times so
  // hits, misses, and eviction-free races all occur.
  const std::size_t reps = 8;
  std::vector<std::vector<sax::SaxRecord>> out(combos.size() * reps);
  ts::ParallelFor(out.size(), 8, [&](std::size_t i) {
    out[i] = *cache.Discretize(s, combos[i % combos.size()]);
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i],
              sax::DiscretizeSlidingWindow(s, combos[i % combos.size()]));
  }
}

// End-to-end: parameter selection with the cache on and off must choose
// exactly the same per-class SAX parameters and evaluate the same combos.
TEST(TrainingCache, ParameterSelectionUnchangedByCache) {
  const ts::Dataset train = ts::MakeCbf(8, 1, 64, 7).train;

  RpmOptions with_cache;
  with_cache.search = ParameterSearch::kDirect;
  with_cache.direct_max_evaluations = 8;
  with_cache.param_splits = 2;
  with_cache.param_folds = 2;
  RpmOptions without_cache = with_cache;
  without_cache.training_cache_bytes = 0;

  const ParameterSelectionResult a = SelectSaxParameters(train, with_cache);
  const ParameterSelectionResult b =
      SelectSaxParameters(train, without_cache);
  EXPECT_EQ(a.combos_evaluated, b.combos_evaluated);
  ASSERT_EQ(a.sax_by_class.size(), b.sax_by_class.size());
  for (const auto& [label, sax] : a.sax_by_class) {
    const auto it = b.sax_by_class.find(label);
    ASSERT_NE(it, b.sax_by_class.end());
    EXPECT_EQ(sax.window, it->second.window) << "label=" << label;
    EXPECT_EQ(sax.paa_size, it->second.paa_size) << "label=" << label;
    EXPECT_EQ(sax.alphabet, it->second.alphabet) << "label=" << label;
  }
}

}  // namespace
}  // namespace rpm::core
