// Tests for the second wave of baselines/extensions: the Ye & Keogh
// shapelet tree, SAX-VSM's DIRECT parameter search, and the four added
// dataset generator families.

#include <gtest/gtest.h>

#include "baselines/sax_vsm.h"
#include "baselines/shapelet_tree.h"
#include "ts/generators.h"
#include "ts/rng.h"

namespace rpm::baselines {
namespace {

const ts::DatasetSplit& Easy() {
  static const ts::DatasetSplit split = ts::MakeGunPoint(10, 20, 100, 66);
  return split;
}

TEST(ShapeletTreeTest, TrainsAndBeatsChance) {
  ShapeletTree clf;
  clf.Train(Easy().train);
  EXPECT_GE(clf.num_shapelet_nodes(), 1u);
  EXPECT_LE(clf.Evaluate(Easy().test), 0.25);
}

TEST(ShapeletTreeTest, PureDataYieldsLeaf) {
  ts::Dataset train;
  ts::Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    ts::Series s(60);
    for (auto& v : s) v = rng.Gaussian();
    train.Add(2, std::move(s));
  }
  ShapeletTree clf;
  clf.Train(train);
  EXPECT_EQ(clf.num_shapelet_nodes(), 0u);
  EXPECT_EQ(clf.Classify(ts::Series(60, 0.0)), 2);
}

TEST(ShapeletTreeTest, MulticlassCbf) {
  const ts::DatasetSplit split = ts::MakeCbf(8, 12, 128, 67);
  ShapeletTree clf;
  clf.Train(split.train);
  EXPECT_LT(clf.Evaluate(split.test), 0.45);  // chance = 2/3
}

TEST(ShapeletTreeTest, ThrowsAppropriately) {
  ShapeletTree clf;
  EXPECT_THROW(clf.Classify(ts::Series(10, 0.0)), std::logic_error);
  EXPECT_THROW(clf.Train(ts::Dataset{}), std::invalid_argument);
}

TEST(SaxVsmDirect, DirectSearchWorks) {
  SaxVsmOptions opt;
  opt.optimize = true;
  opt.use_direct = true;
  opt.direct_max_evaluations = 10;
  SaxVsm clf(opt);
  clf.Train(Easy().train);
  EXPECT_GE(clf.chosen_sax().window, 6u);
  EXPECT_LE(clf.Evaluate(Easy().test), 0.35);
}

TEST(NewGenerators, SymbolsThreeClassesAndPrototypesStable) {
  const ts::DatasetSplit a = ts::MakeSymbols(4, 4, 128, 5);
  EXPECT_EQ(a.train.NumClasses(), 3u);
  const ts::DatasetSplit b = ts::MakeSymbols(4, 4, 128, 5);
  EXPECT_EQ(a.train[0].values, b.train[0].values);
}

TEST(NewGenerators, FaceFourFourClasses) {
  EXPECT_EQ(ts::MakeFaceFour(3, 3, 140, 6).train.NumClasses(), 4u);
}

TEST(NewGenerators, LightningAndMoteStrainBinary) {
  EXPECT_EQ(ts::MakeLightning(3, 3, 160, 7).train.NumClasses(), 2u);
  EXPECT_EQ(ts::MakeMoteStrain(3, 3, 96, 8).train.NumClasses(), 2u);
}

// The new families must be learnable: NN-ED or the shapelet tree beats
// chance comfortably on each.
class NewFamilyTest : public ::testing::TestWithParam<int> {};

TEST_P(NewFamilyTest, ShapeletTreeBeatsChance) {
  ts::DatasetSplit split;
  switch (GetParam()) {
    case 0:
      split = ts::MakeSymbols(8, 12, 128, 70);
      break;
    case 1:
      split = ts::MakeFaceFour(8, 10, 140, 71);
      break;
    case 2:
      split = ts::MakeLightning(8, 12, 160, 72);
      break;
    default:
      split = ts::MakeMoteStrain(8, 12, 96, 73);
      break;
  }
  ShapeletTree clf;
  clf.Train(split.train);
  const double chance =
      1.0 - 1.0 / static_cast<double>(split.train.NumClasses());
  EXPECT_LT(clf.Evaluate(split.test), 0.6 * chance) << split.name;
}

INSTANTIATE_TEST_SUITE_P(Families, NewFamilyTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace rpm::baselines
