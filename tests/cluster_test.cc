// Tests for complete-linkage clustering, the iterative 30 %-rule split,
// and prototype extraction.

#include <gtest/gtest.h>

#include "cluster/hierarchical.h"
#include "ts/rng.h"

namespace rpm::cluster {
namespace {

std::vector<ts::Series> TwoBlobs(std::size_t per_blob, double separation,
                                 std::uint64_t seed) {
  ts::Rng rng(seed);
  std::vector<ts::Series> items;
  for (std::size_t i = 0; i < per_blob; ++i) {
    items.push_back({rng.Gaussian(0.0, 0.1), rng.Gaussian(0.0, 0.1)});
  }
  for (std::size_t i = 0; i < per_blob; ++i) {
    items.push_back(
        {rng.Gaussian(separation, 0.1), rng.Gaussian(separation, 0.1)});
  }
  return items;
}

TEST(PairwiseMatrix, SymmetricZeroDiagonal) {
  const std::vector<ts::Series> items = {{0.0, 0.0}, {3.0, 4.0}, {6.0, 8.0}};
  const auto d = PairwiseDistanceMatrix(items);
  EXPECT_DOUBLE_EQ(d[0 * 3 + 0], 0.0);
  EXPECT_DOUBLE_EQ(d[0 * 3 + 1], 5.0);
  EXPECT_DOUBLE_EQ(d[1 * 3 + 0], 5.0);
  EXPECT_DOUBLE_EQ(d[0 * 3 + 2], 10.0);
}

TEST(CompleteLinkage, SeparatesTwoBlobs) {
  const auto items = TwoBlobs(6, 10.0, 3);
  const std::vector<int> cut = CompleteLinkageCut(items, 2);
  // First six share one id, last six the other.
  for (std::size_t i = 1; i < 6; ++i) EXPECT_EQ(cut[i], cut[0]);
  for (std::size_t i = 7; i < 12; ++i) EXPECT_EQ(cut[i], cut[6]);
  EXPECT_NE(cut[0], cut[6]);
}

TEST(CompleteLinkage, KClampedAndDegenerate) {
  const std::vector<ts::Series> items = {{1.0}, {2.0}};
  EXPECT_EQ(CompleteLinkageCut(items, 10).size(), 2u);
  EXPECT_EQ(CompleteLinkageCut({}, 2).size(), 0u);
  const std::vector<int> one = CompleteLinkageCut(items, 1);
  EXPECT_EQ(one[0], one[1]);
}

TEST(IterativeSplit, SplitsBalancedGroups) {
  const auto items = TwoBlobs(8, 10.0, 4);
  const auto groups = IterativeSplit(items);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size(), 8u);
  EXPECT_EQ(groups[1].size(), 8u);
}

TEST(IterativeSplit, KeepsUnbalancedGroupsWhole) {
  // 11 points in one tight blob + 1 outlier: a 2-split would be 11/1,
  // under the 30 % rule the group stays whole.
  ts::Rng rng(5);
  std::vector<ts::Series> items;
  for (int i = 0; i < 11; ++i) {
    items.push_back({rng.Gaussian(0.0, 0.05), rng.Gaussian(0.0, 0.05)});
  }
  items.push_back({50.0, 50.0});
  const auto groups = IterativeSplit(items);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 12u);
}

TEST(IterativeSplit, RecursesIntoFourBlobs) {
  ts::Rng rng(6);
  std::vector<ts::Series> items;
  const double centers[4][2] = {{0, 0}, {8, 0}, {16, 0}, {24, 0}};
  for (const auto& c : centers) {
    for (int i = 0; i < 5; ++i) {
      items.push_back(
          {c[0] + rng.Gaussian(0.0, 0.1), c[1] + rng.Gaussian(0.0, 0.1)});
    }
  }
  SplitOptions opt;
  opt.min_size_to_split = 6;  // blobs of 5 are terminal
  const auto groups = IterativeSplit(items, opt);
  EXPECT_EQ(groups.size(), 4u);
  // The union of groups must be the full index set.
  std::vector<bool> seen(items.size(), false);
  for (const auto& g : groups) {
    for (std::size_t i : g) {
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(IterativeSplit, SmallGroupsNeverSplit) {
  const std::vector<ts::Series> items = {{0.0}, {100.0}, {200.0}};
  SplitOptions opt;
  opt.min_size_to_split = 4;
  const auto groups = IterativeSplit(items, opt);
  ASSERT_EQ(groups.size(), 1u);
}

TEST(Prototypes, CentroidIsPointwiseMean) {
  const std::vector<ts::Series> members = {{1.0, 2.0}, {3.0, 6.0}};
  const ts::Series c = Centroid(members);
  EXPECT_EQ(c, (ts::Series{2.0, 4.0}));
  EXPECT_TRUE(Centroid({}).empty());
}

TEST(Prototypes, MedoidMinimizesTotalDistance) {
  const std::vector<ts::Series> members = {
      {0.0}, {1.0}, {1.1}, {1.2}, {10.0}};
  EXPECT_EQ(MedoidIndex(members), 2u);
  EXPECT_EQ(MedoidIndex({{5.0}}), 0u);
}

}  // namespace
}  // namespace rpm::cluster
