// Tests for HOT SAX discord discovery (exactness against brute force,
// planted anomalies, degenerate inputs) and the Bag-of-Patterns
// classifier.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "baselines/bag_of_patterns.h"
#include "baselines/sax_vsm.h"
#include "distance/euclidean.h"
#include "grammar/hotsax.h"
#include "ts/generators.h"
#include "ts/rng.h"
#include "ts/znorm.h"

namespace rpm {
namespace {

// Brute-force discord: O(p^2) nearest-non-overlapping-neighbor maximizer.
grammar::HotSaxDiscord BruteForceDiscord(ts::SeriesView series,
                                         std::size_t n) {
  const std::size_t positions = series.size() - n + 1;
  std::vector<ts::Series> z(positions);
  for (std::size_t p = 0; p < positions; ++p) {
    z[p].assign(series.begin() + static_cast<std::ptrdiff_t>(p),
                series.begin() + static_cast<std::ptrdiff_t>(p + n));
    ts::ZNormalizeInPlace(z[p]);
  }
  grammar::HotSaxDiscord best;
  best.length = n;
  best.nn_distance = -1.0;
  for (std::size_t p = 0; p < positions; ++p) {
    double nn = std::numeric_limits<double>::infinity();
    for (std::size_t q = 0; q < positions; ++q) {
      const std::size_t gap = q > p ? q - p : p - q;
      if (gap < n) continue;
      nn = std::min(nn, distance::Euclidean(z[p], z[q]));
    }
    if (std::isfinite(nn) && nn > best.nn_distance) {
      best.nn_distance = nn;
      best.start = p;
    }
  }
  return best;
}

TEST(HotSax, MatchesBruteForceOnRandomSeries) {
  ts::Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    ts::Series s(150);
    double v = 0.0;
    for (auto& x : s) {
      v += rng.Gaussian();
      x = v;
    }
    grammar::HotSaxOptions opt;
    opt.discord_length = 20;
    const auto found = grammar::FindHotSaxDiscords(s, opt);
    const auto ref = BruteForceDiscord(s, 20);
    ASSERT_EQ(found.size(), 1u);
    EXPECT_NEAR(found[0].nn_distance, ref.nn_distance, 1e-9);
    EXPECT_EQ(found[0].start, ref.start);
  }
}

TEST(HotSax, FindsPlantedAnomalyInPeriodicSeries) {
  ts::Rng rng(2);
  ts::Series s(400);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 40.0) +
           rng.Gaussian(0.0, 0.02);
  }
  for (std::size_t i = 200; i < 240; ++i) {
    s[i] += 1.5 * std::sin(2.0 * M_PI * static_cast<double>(i) / 7.0);
  }
  grammar::HotSaxOptions opt;
  opt.discord_length = 40;
  const auto found = grammar::FindHotSaxDiscords(s, opt);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_GE(found[0].start + found[0].length, 200u);
  EXPECT_LE(found[0].start, 240u);
}

TEST(HotSax, MultipleDiscordsNonOverlapping) {
  ts::Rng rng(3);
  ts::Series s(300);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 30.0) +
           rng.Gaussian(0.0, 0.02);
  }
  grammar::HotSaxOptions opt;
  opt.discord_length = 30;
  opt.max_discords = 3;
  const auto found = grammar::FindHotSaxDiscords(s, opt);
  ASSERT_EQ(found.size(), 3u);
  for (std::size_t i = 0; i < found.size(); ++i) {
    for (std::size_t j = i + 1; j < found.size(); ++j) {
      const std::size_t gap = found[j].start > found[i].start
                                  ? found[j].start - found[i].start
                                  : found[i].start - found[j].start;
      EXPECT_GE(gap, opt.discord_length);
    }
  }
  // Best first.
  for (std::size_t i = 1; i < found.size(); ++i) {
    EXPECT_GE(found[i - 1].nn_distance, found[i].nn_distance - 1e-12);
  }
}

TEST(HotSax, DegenerateInputs) {
  grammar::HotSaxOptions opt;
  opt.discord_length = 50;
  EXPECT_TRUE(
      grammar::FindHotSaxDiscords(ts::Series(60, 0.0), opt).empty());
  opt.discord_length = 0;
  EXPECT_TRUE(
      grammar::FindHotSaxDiscords(ts::Series(60, 0.0), opt).empty());
}

// ---------------- Bag-of-Patterns ----------------

TEST(BagOfPatternsTest, BeatsChanceOnGunPoint) {
  const ts::DatasetSplit split = ts::MakeGunPoint(10, 20, 100, 40);
  baselines::BagOfPatternsOptions opt;
  opt.sax.window = 25;
  opt.sax.paa_size = 5;
  opt.sax.alphabet = 4;
  baselines::BagOfPatterns clf(opt);
  clf.Train(split.train);
  EXPECT_LE(clf.Evaluate(split.test), 0.3);
}

TEST(BagOfPatternsTest, EuclideanVariantWorksToo) {
  const ts::DatasetSplit split = ts::MakeCbf(8, 10, 128, 41);
  baselines::BagOfPatternsOptions opt;
  opt.sax.window = 32;
  opt.sax.paa_size = 4;
  opt.sax.alphabet = 4;
  opt.cosine = false;
  baselines::BagOfPatterns clf(opt);
  clf.Train(split.train);
  EXPECT_LE(clf.Evaluate(split.test), 0.45);
}

TEST(BagOfPatternsTest, ThrowsAppropriately) {
  baselines::BagOfPatterns clf;
  EXPECT_THROW(clf.Classify(ts::Series(10, 0.0)), std::logic_error);
  EXPECT_THROW(clf.Train(ts::Dataset{}), std::invalid_argument);
}

TEST(BagOfPatternsTest, SaxVsmUsuallyAtLeastAsGood) {
  // The tf*idf weighting is the SAX-VSM contribution over BOP; on a
  // multi-class problem it should not be worse.
  const ts::DatasetSplit split = ts::MakeCbf(10, 20, 128, 42);
  baselines::BagOfPatternsOptions bop_opt;
  bop_opt.sax.window = 32;
  bop_opt.sax.paa_size = 4;
  bop_opt.sax.alphabet = 4;
  baselines::BagOfPatterns bop(bop_opt);
  bop.Train(split.train);
  baselines::SaxVsmOptions vsm_opt;
  vsm_opt.optimize = false;
  vsm_opt.sax = bop_opt.sax;
  baselines::SaxVsm vsm(vsm_opt);
  vsm.Train(split.train);
  EXPECT_LE(vsm.Evaluate(split.test), bop.Evaluate(split.test) + 0.1);
}

}  // namespace
}  // namespace rpm
