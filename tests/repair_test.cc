// Tests for the Re-Pair grammar-induction backend: roundtrip invariant,
// most-frequent-pair replacement, occurrence spans, and cross-checks
// against Sequitur on random inputs (both must cover the same repeats).

#include <gtest/gtest.h>

#include "grammar/repair.h"
#include "ts/rng.h"

namespace rpm::grammar {
namespace {

TEST(RePair, EmptyInput) {
  const Grammar g = InferGrammarRePair({});
  ASSERT_EQ(g.rules().size(), 1u);
  EXPECT_TRUE(g.rules()[0].rhs.empty());
}

TEST(RePair, NoRepeatsNoRules) {
  const std::vector<std::uint32_t> tokens = {1, 2, 3, 4};
  const Grammar g = InferGrammarRePair(tokens);
  EXPECT_EQ(g.rules().size(), 1u);
  EXPECT_EQ(g.Expand(0), tokens);
}

TEST(RePair, ReplacesMostFrequentPair) {
  // "abab" -> R1 = (a,b), S = R1 R1.
  const std::vector<std::uint32_t> tokens = {0, 1, 0, 1};
  const Grammar g = InferGrammarRePair(tokens);
  ASSERT_EQ(g.rules().size(), 2u);
  EXPECT_EQ(g.rules()[1].rhs, (std::vector<std::int64_t>{0, 1}));
  EXPECT_EQ(g.rules()[1].occurrences.size(), 2u);
  EXPECT_EQ(g.Expand(0), tokens);
}

TEST(RePair, HierarchicalRules) {
  // "abcabcabcabc": nested pair replacement; roundtrip must hold and the
  // deepest rule must expand to length >= 3.
  std::vector<std::uint32_t> tokens;
  for (int i = 0; i < 4; ++i) {
    tokens.insert(tokens.end(), {0u, 1u, 2u});
  }
  const Grammar g = InferGrammarRePair(tokens);
  EXPECT_EQ(g.Expand(0), tokens);
  std::size_t max_len = 0;
  for (const GrammarRule* r : g.RepeatedRules()) {
    EXPECT_EQ(r->rhs.size(), 2u);  // Re-Pair bodies are digrams
    max_len = std::max(max_len, r->expanded_length);
  }
  EXPECT_GE(max_len, 3u);
}

TEST(RePair, OverlappingRunsHandled) {
  // "aaaa": pairs overlap; replacement must be non-overlapping and the
  // roundtrip must survive.
  const std::vector<std::uint32_t> tokens = {7, 7, 7, 7, 7};
  const Grammar g = InferGrammarRePair(tokens);
  EXPECT_EQ(g.Expand(0), tokens);
}

TEST(RePair, OccurrenceSpansConsistent) {
  ts::Rng rng(21);
  std::vector<std::uint32_t> tokens;
  for (int i = 0; i < 400; ++i) {
    tokens.push_back(static_cast<std::uint32_t>(rng.UniformInt(0, 3)));
  }
  const Grammar g = InferGrammarRePair(tokens);
  EXPECT_EQ(g.Expand(0), tokens);
  for (const GrammarRule* r : g.RepeatedRules()) {
    const auto expansion = g.Expand(r->id);
    EXPECT_EQ(expansion.size(), r->expanded_length);
    for (const RuleOccurrence& occ : r->occurrences) {
      ASSERT_LT(occ.last_token, tokens.size());
      for (std::size_t i = 0; i < expansion.size(); ++i) {
        EXPECT_EQ(tokens[occ.first_token + i], expansion[i]);
      }
    }
  }
}

TEST(RePair, EveryRuleUsedAtLeastTwice) {
  ts::Rng rng(22);
  std::vector<std::uint32_t> tokens;
  for (int i = 0; i < 300; ++i) {
    tokens.push_back(static_cast<std::uint32_t>(rng.UniformInt(0, 2)));
  }
  const Grammar g = InferGrammarRePair(tokens);
  for (const GrammarRule* r : g.RepeatedRules()) {
    EXPECT_GE(r->occurrences.size(), 2u) << "rule " << r->id;
  }
}

TEST(RePair, DispatcherSelectsBackend) {
  const std::vector<std::uint32_t> tokens = {0, 1, 2, 0, 1, 2};
  const Grammar a = InferGrammarWith(GiAlgorithm::kSequitur, tokens);
  const Grammar b = InferGrammarWith(GiAlgorithm::kRePair, tokens);
  EXPECT_EQ(a.Expand(0), tokens);
  EXPECT_EQ(b.Expand(0), tokens);
}

// Property: both backends reproduce the input and find repeats on random
// low-entropy strings.
class GiBackendProperty
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(GiBackendProperty, RoundTripAndRepeatCoverage) {
  const auto [seed, length] = GetParam();
  ts::Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<std::uint32_t> tokens;
  for (std::size_t i = 0; i < length; ++i) {
    tokens.push_back(static_cast<std::uint32_t>(rng.UniformInt(0, 2)));
  }
  for (GiAlgorithm algo : {GiAlgorithm::kSequitur, GiAlgorithm::kRePair}) {
    const Grammar g = InferGrammarWith(algo, tokens);
    EXPECT_EQ(g.Expand(0), tokens);
    if (length >= 50) {
      // A ternary random string of this length must contain repeats.
      EXPECT_FALSE(g.RepeatedRules().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GiBackendProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values<std::size_t>(10, 100, 1000)));

}  // namespace
}  // namespace rpm::grammar
