// Tests for Sequitur grammar induction: the expansion-roundtrip invariant
// (S must reproduce the input exactly), digram uniqueness, rule utility,
// occurrence spans, and randomized property sweeps.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "grammar/sequitur.h"
#include "ts/rng.h"

namespace rpm::grammar {
namespace {

std::vector<std::uint32_t> Tokens(std::initializer_list<std::uint32_t> t) {
  return {t};
}

TEST(Sequitur, EmptyInput) {
  const Grammar g = InferGrammar({});
  ASSERT_EQ(g.rules().size(), 1u);
  EXPECT_TRUE(g.rules()[0].rhs.empty());
  EXPECT_EQ(g.sequence_length(), 0u);
}

TEST(Sequitur, NoRepeatsNoRules) {
  const auto tokens = Tokens({1, 2, 3, 4, 5});
  const Grammar g = InferGrammar(tokens);
  EXPECT_EQ(g.rules().size(), 1u);  // only S
  EXPECT_EQ(g.Expand(0), tokens);
}

TEST(Sequitur, ClassicAbcdbcExample) {
  // "a b c d b c" -> S: a R1 d R1 ; R1: b c
  const auto tokens = Tokens({0, 1, 2, 3, 1, 2});
  const Grammar g = InferGrammar(tokens);
  ASSERT_EQ(g.rules().size(), 2u);
  const GrammarRule& r1 = g.rules()[1];
  EXPECT_EQ(r1.rhs, (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(r1.expanded_length, 2u);
  ASSERT_EQ(r1.occurrences.size(), 2u);
  EXPECT_EQ(r1.occurrences[0], (RuleOccurrence{1, 2}));
  EXPECT_EQ(r1.occurrences[1], (RuleOccurrence{4, 5}));
  EXPECT_EQ(g.Expand(0), tokens);
}

TEST(Sequitur, NestedRules) {
  // "abcabcabcabc": hierarchical rules, roundtrip must hold.
  std::vector<std::uint32_t> tokens;
  for (int i = 0; i < 4; ++i) {
    tokens.push_back(0);
    tokens.push_back(1);
    tokens.push_back(2);
  }
  const Grammar g = InferGrammar(tokens);
  EXPECT_EQ(g.Expand(0), tokens);
  EXPECT_GE(g.rules().size(), 2u);
  // Every non-S rule must occur at least twice (rule utility).
  for (const GrammarRule* r : g.RepeatedRules()) {
    EXPECT_GE(r->occurrences.size(), 2u) << "rule " << r->id;
  }
}

TEST(Sequitur, OverlappingDigramsNotReduced) {
  // "aaa" has overlapping (a,a) digrams; Sequitur must not corrupt.
  const auto tokens = Tokens({7, 7, 7});
  const Grammar g = InferGrammar(tokens);
  EXPECT_EQ(g.Expand(0), tokens);
}

TEST(Sequitur, PaperExampleFromSection322) {
  // S1 = aba bac cab acc bac cab (word ids: aba=0 bac=1 cab=2 acc=3)
  // The paper's grammar: R0 -> R1 acc R1 ; R1 -> bac cab  (modulo ids).
  const auto tokens = Tokens({0, 1, 2, 3, 1, 2});
  const Grammar g = InferGrammar(tokens);
  ASSERT_EQ(g.rules().size(), 2u);
  const GrammarRule& r1 = g.rules()[1];
  EXPECT_EQ(r1.rhs, (std::vector<std::int64_t>{1, 2}));
}

TEST(Sequitur, OccurrenceSpansAreConsistent) {
  ts::Rng rng(3);
  std::vector<std::uint32_t> tokens;
  for (int i = 0; i < 200; ++i) {
    tokens.push_back(static_cast<std::uint32_t>(rng.UniformInt(0, 4)));
  }
  const Grammar g = InferGrammar(tokens);
  EXPECT_EQ(g.Expand(0), tokens);
  for (const GrammarRule* r : g.RepeatedRules()) {
    const auto expansion = g.Expand(r->id);
    EXPECT_EQ(expansion.size(), r->expanded_length);
    for (const RuleOccurrence& occ : r->occurrences) {
      ASSERT_LT(occ.last_token, tokens.size());
      ASSERT_EQ(occ.last_token - occ.first_token + 1, r->expanded_length);
      // The tokens under the span must equal the rule's expansion.
      for (std::size_t i = 0; i < expansion.size(); ++i) {
        EXPECT_EQ(tokens[occ.first_token + i], expansion[i]);
      }
    }
  }
}

TEST(Sequitur, DigramUniquenessInFinalGrammar) {
  // No digram may appear twice across all right-hand sides.
  ts::Rng rng(11);
  std::vector<std::uint32_t> tokens;
  for (int i = 0; i < 300; ++i) {
    tokens.push_back(static_cast<std::uint32_t>(rng.UniformInt(0, 3)));
  }
  const Grammar g = InferGrammar(tokens);
  std::map<std::pair<std::int64_t, std::int64_t>, int> digram_count;
  for (const auto& rule : g.rules()) {
    for (std::size_t i = 1; i < rule.rhs.size(); ++i) {
      ++digram_count[{rule.rhs[i - 1], rule.rhs[i]}];
    }
  }
  for (const auto& [digram, count] : digram_count) {
    // Overlapping same-symbol digrams (aaa) may legally repeat.
    if (digram.first == digram.second) continue;
    EXPECT_LE(count, 1) << digram.first << "," << digram.second;
  }
}

TEST(Sequitur, ToStringMentionsEveryRule) {
  const Grammar g = InferGrammar(Tokens({0, 1, 2, 3, 1, 2}));
  const std::string s = g.ToString();
  EXPECT_NE(s.find("S ->"), std::string::npos);
  EXPECT_NE(s.find("R1 ->"), std::string::npos);
}

// Property sweep: roundtrip and occurrence consistency across alphabet
// sizes and lengths.
struct SequiturCase {
  std::size_t seed;
  std::size_t length;
  std::uint32_t alphabet;
};

class SequiturProperty : public ::testing::TestWithParam<SequiturCase> {};

TEST_P(SequiturProperty, RoundTripAndUtility) {
  const SequiturCase c = GetParam();
  ts::Rng rng(c.seed);
  std::vector<std::uint32_t> tokens;
  tokens.reserve(c.length);
  for (std::size_t i = 0; i < c.length; ++i) {
    tokens.push_back(static_cast<std::uint32_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(c.alphabet) - 1)));
  }
  const Grammar g = InferGrammar(tokens);
  EXPECT_EQ(g.Expand(0), tokens);
  for (const GrammarRule* r : g.RepeatedRules()) {
    EXPECT_GE(r->rhs.size(), 2u);
    EXPECT_GE(r->occurrences.size(), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SequiturProperty,
    ::testing::Values(SequiturCase{1, 10, 2}, SequiturCase{2, 50, 2},
                      SequiturCase{3, 100, 3}, SequiturCase{4, 500, 3},
                      SequiturCase{5, 1000, 5}, SequiturCase{6, 2000, 8},
                      SequiturCase{7, 500, 2}, SequiturCase{8, 64, 4},
                      SequiturCase{9, 1500, 12}, SequiturCase{10, 3000, 4}));

}  // namespace
}  // namespace rpm::grammar
