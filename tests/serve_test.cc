// Tests for the serving subsystem (src/serve): registry hot reload under
// concurrent traffic, micro-batch formation, deadlines, admission
// control, drain-on-shutdown, the text protocol, and end-to-end
// equivalence with the offline classifier. The *Concurrency tests double
// as the TSan surface driven by scripts/tsan_check.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "ts/generators.h"

namespace rpm {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

// One small trained model per test binary run: training is the slow part,
// so every test shares the same fixture data.
struct TrainedFixture {
  ts::DatasetSplit split;
  core::RpmClassifier classifier;
};

const TrainedFixture& Fixture() {
  static const TrainedFixture* fixture = [] {
    core::RpmOptions options;
    options.search = core::ParameterSearch::kFixed;
    options.fixed_sax.window = 30;
    options.fixed_sax.paa_size = 4;
    options.fixed_sax.alphabet = 4;
    auto* f = new TrainedFixture{ts::MakeGunPoint(10, 10, 120, 42),
                                 core::RpmClassifier(options)};
    f->classifier.Train(f->split.train);
    return f;
  }();
  return *fixture;
}

core::RpmClassifier TrainedCopy() {
  // Round-trip through the text format: cheap deep copy of the fixture.
  std::stringstream buffer;
  Fixture().classifier.Save(buffer);
  return core::RpmClassifier::Load(buffer);
}

serve::ServerOptions FastOptions() {
  serve::ServerOptions options;
  options.batching.max_batch_size = 8;
  options.batching.max_linger = microseconds(500);
  options.batching.max_queue_depth = 1024;
  options.batching.num_threads = 2;
  options.default_timeout = milliseconds(10000);
  return options;
}

TEST(ModelRegistry, LoadGetUnloadNames) {
  const std::string path = testing::TempDir() + "registry_model.rpm";
  Fixture().classifier.SaveToFile(path);

  serve::ModelRegistry registry;
  EXPECT_EQ(registry.Get("gp"), nullptr);
  const std::size_t patterns = registry.Load("gp", path);
  EXPECT_EQ(patterns, Fixture().classifier.patterns().size());
  ASSERT_NE(registry.Get("gp"), nullptr);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Names(), std::vector<std::string>{"gp"});

  EXPECT_TRUE(registry.Unload("gp"));
  EXPECT_FALSE(registry.Unload("gp"));
  EXPECT_EQ(registry.Get("gp"), nullptr);
}

TEST(ModelRegistry, BadFileLeavesExistingModelUntouched) {
  const std::string path = testing::TempDir() + "registry_bad.rpm";
  serve::ModelRegistry registry;
  registry.Put("gp", TrainedCopy());
  const serve::ModelHandle before = registry.Get("gp");
  EXPECT_THROW(registry.Load("gp", path + ".does-not-exist"),
               std::runtime_error);
  EXPECT_EQ(registry.Get("gp"), before);
}

TEST(ModelRegistry, HandleSurvivesUnloadAndHotSwap) {
  serve::ModelRegistry registry;
  registry.Put("gp", TrainedCopy());
  const serve::ModelHandle handle = registry.Get("gp");
  ASSERT_NE(handle, nullptr);

  registry.Put("gp", TrainedCopy());  // hot swap
  EXPECT_TRUE(registry.Unload("gp"));

  // The retired model keeps serving through the pinned handle.
  const auto& series = Fixture().split.test[0].values;
  EXPECT_EQ(handle->engine.Classify(series),
            Fixture().classifier.Classify(series));
}

TEST(ModelRegistryConcurrency, HotReloadUnderConcurrentClassify) {
  serve::ModelRegistry registry;
  registry.Put("gp", TrainedCopy());
  const auto& test = Fixture().split.test;

  std::atomic<bool> stop{false};
  std::atomic<int> classified{0};
  std::vector<std::thread> hammers;
  for (int t = 0; t < 4; ++t) {
    hammers.emplace_back([&, t] {
      std::size_t i = std::size_t(t);
      while (!stop.load()) {
        const serve::ModelHandle handle = registry.Get("gp");
        ASSERT_NE(handle, nullptr);
        const int label =
            handle->engine.Classify(test[i % test.size()].values);
        EXPECT_TRUE(label == 1 || label == 2);
        classified.fetch_add(1);
        ++i;
      }
    });
  }
  for (int swap = 0; swap < 10; ++swap) {
    registry.Put("gp", TrainedCopy());
    std::this_thread::sleep_for(milliseconds(2));
  }
  stop.store(true);
  for (auto& t : hammers) t.join();
  EXPECT_GT(classified.load(), 0);
}

TEST(BatchingQueue, FormsMicroBatchesFromConcurrentSubmissions) {
  serve::ServerOptions options = FastOptions();
  options.batching.max_linger = milliseconds(500);  // give submits time
  serve::InferenceServer server(options);
  server.AddModel("gp", TrainedCopy());

  const auto& test = Fixture().split.test;
  std::vector<std::future<serve::ClassifyResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.ClassifyAsync(
        "gp", test[std::size_t(i) % test.size()].values, milliseconds(5000)));
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, serve::StatusCode::kOk);
  }
  const serve::StatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.admitted, 8u);
  EXPECT_EQ(stats.ok, 8u);
  // All eight shared one dispatch: the batch filled before the linger.
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_DOUBLE_EQ(stats.batch_occupancy.Mean(), 8.0);
}

TEST(BatchingQueue, ExpiredDeadlineGetsTimeoutWithoutClassification) {
  serve::InferenceServer server(FastOptions());
  server.AddModel("gp", TrainedCopy());
  const serve::ClassifyResult result = server.Classify(
      "gp", Fixture().split.test[0].values, microseconds(0));
  EXPECT_EQ(result.status, serve::StatusCode::kTimeout);
  const serve::StatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.timeout, 1u);
  EXPECT_EQ(stats.ok, 0u);
}

TEST(BatchingQueue, AdmissionControlShedsBeyondQueueDepth) {
  serve::ServerOptions options = FastOptions();
  options.batching.max_batch_size = 32;
  options.batching.max_linger = milliseconds(1000);
  options.batching.max_queue_depth = 4;
  serve::InferenceServer server(options);
  server.AddModel("gp", TrainedCopy());

  // All ten submissions land within the linger window, so the dispatcher
  // holds them queued: entries 5.. see a full queue and are shed.
  std::vector<std::future<serve::ClassifyResult>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(server.ClassifyAsync(
        "gp", Fixture().split.test[0].values, milliseconds(5000)));
  }
  int ok = 0;
  int overloaded = 0;
  for (auto& f : futures) {
    const serve::StatusCode status = f.get().status;
    ok += status == serve::StatusCode::kOk;
    overloaded += status == serve::StatusCode::kOverloaded;
  }
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(overloaded, 6);
  const serve::StatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.shed, 6u);
  EXPECT_EQ(stats.admitted, 4u);
}

TEST(BatchingQueue, ShutdownDrainsAdmittedAndRejectsNew) {
  serve::ServerOptions options = FastOptions();
  options.batching.max_linger = milliseconds(500);
  serve::InferenceServer server(options);
  server.AddModel("gp", TrainedCopy());

  std::vector<std::future<serve::ClassifyResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(server.ClassifyAsync(
        "gp", Fixture().split.test[0].values, milliseconds(5000)));
  }
  server.Shutdown();  // drains without waiting out the 500 ms linger
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, serve::StatusCode::kOk);
  }
  const serve::ClassifyResult rejected = server.Classify(
      "gp", Fixture().split.test[0].values, milliseconds(100));
  EXPECT_EQ(rejected.status, serve::StatusCode::kShutdown);
}

TEST(InferenceServer, MatchesOfflineClassifierOnWholeTestSet) {
  serve::InferenceServer server(FastOptions());
  server.AddModel("gp", TrainedCopy());
  const auto& test = Fixture().split.test;
  const std::vector<int> expected = Fixture().classifier.ClassifyAll(test);
  for (std::size_t i = 0; i < test.size(); ++i) {
    const serve::ClassifyResult result =
        server.Classify("gp", test[i].values);
    ASSERT_EQ(result.status, serve::StatusCode::kOk);
    EXPECT_EQ(result.label, expected[i]) << "instance " << i;
    EXPECT_GT(result.latency_us, 0.0);
  }
}

TEST(InferenceServer, UnknownModelIsNotFound) {
  serve::InferenceServer server(FastOptions());
  const serve::ClassifyResult result =
      server.Classify("nope", Fixture().split.test[0].values);
  EXPECT_EQ(result.status, serve::StatusCode::kNotFound);
  EXPECT_EQ(server.Stats().not_found, 1u);
}

TEST(InferenceServer, ProtocolRoundTrip) {
  const std::string path = testing::TempDir() + "protocol_model.rpm";
  Fixture().classifier.SaveToFile(path);

  serve::InferenceServer server(FastOptions());
  EXPECT_EQ(server.HandleLine("MODELS"), "OK 0");
  const std::string loaded = server.HandleLine("LOAD gp " + path);
  EXPECT_EQ(loaded.substr(0, 12), "OK loaded gp");
  EXPECT_EQ(server.HandleLine("MODELS"), "OK 1 gp");

  // CLASSIFY agrees with the offline classifier (full double precision so
  // the transform sees bit-identical values).
  const auto& inst = Fixture().split.test[0];
  std::string csv;
  char buf[32];
  for (double v : inst.values) {
    if (!csv.empty()) csv += ',';
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    csv += buf;
  }
  EXPECT_EQ(server.HandleLine("CLASSIFY gp " + csv),
            "OK " + std::to_string(Fixture().classifier.Classify(
                        inst.values)));

  EXPECT_EQ(server.HandleLine("STATS").substr(0, 4), "OK {");
  EXPECT_EQ(server.HandleLine("CLASSIFY nope 1,2,3"),
            "ERR NOT_FOUND no model named 'nope'");
  EXPECT_EQ(server.HandleLine("CLASSIFY gp not,numbers").substr(0, 15),
            "ERR BAD_REQUEST");
  EXPECT_EQ(server.HandleLine("CLASSIFY gp").substr(0, 15),
            "ERR BAD_REQUEST");
  EXPECT_EQ(server.HandleLine("LOAD gp /no/such/file").substr(0, 15),
            "ERR BAD_REQUEST");
  EXPECT_EQ(server.HandleLine("BOGUS").substr(0, 15), "ERR BAD_REQUEST");
  EXPECT_EQ(server.HandleLine(""), "ERR BAD_REQUEST empty line");
  EXPECT_EQ(server.HandleLine("UNLOAD gp"), "OK unloaded gp");
  EXPECT_EQ(server.HandleLine("UNLOAD gp"),
            "ERR NOT_FOUND no model named 'gp'");
  EXPECT_EQ(server.HandleLine("QUIT"), "OK bye");
}

// ---------------- LineAssembler (connection framing) ----------------

using LineStatus = serve::LineAssembler::LineStatus;

TEST(LineAssembler, ReassemblesPartialReadsAndStripsCrlf) {
  serve::LineAssembler assembler;
  std::string line;
  EXPECT_EQ(assembler.NextLine(&line), LineStatus::kNone);
  assembler.Append("CLAS");
  EXPECT_EQ(assembler.NextLine(&line), LineStatus::kNone);
  assembler.Append("SIFY gp 1,2\r\nSTATS\nQU");
  ASSERT_EQ(assembler.NextLine(&line), LineStatus::kLine);
  EXPECT_EQ(line, "CLASSIFY gp 1,2");
  ASSERT_EQ(assembler.NextLine(&line), LineStatus::kLine);
  EXPECT_EQ(line, "STATS");
  EXPECT_EQ(assembler.NextLine(&line), LineStatus::kNone);
  assembler.Append("IT\n");
  ASSERT_EQ(assembler.NextLine(&line), LineStatus::kLine);
  EXPECT_EQ(line, "QUIT");
}

TEST(LineAssembler, CrlfSplitAcrossChunksStillStripped) {
  serve::LineAssembler assembler;
  assembler.Append("PING\r");
  assembler.Append("\n");
  std::string line;
  ASSERT_EQ(assembler.NextLine(&line), LineStatus::kLine);
  EXPECT_EQ(line, "PING");
}

TEST(LineAssembler, OversizedLineIsDroppedOnceThenRecovers) {
  serve::LineAssembler assembler(16);
  // A line that never fits, streamed in pieces: memory must not grow and
  // the event must surface exactly once, at the newline.
  for (int i = 0; i < 1000; ++i) assembler.Append("xxxxxxxxxx");
  std::string line;
  EXPECT_EQ(assembler.NextLine(&line), LineStatus::kNone);
  assembler.Append("tail\nSTATS\n");
  EXPECT_EQ(assembler.NextLine(&line), LineStatus::kOversized);
  ASSERT_EQ(assembler.NextLine(&line), LineStatus::kLine);
  EXPECT_EQ(line, "STATS");
  EXPECT_EQ(assembler.NextLine(&line), LineStatus::kNone);
}

TEST(LineAssembler, ExactBoundaryLineStillFits) {
  serve::LineAssembler assembler(5);
  assembler.Append("12345\n123456\n1\n");
  std::string line;
  ASSERT_EQ(assembler.NextLine(&line), LineStatus::kLine);
  EXPECT_EQ(line, "12345");
  EXPECT_EQ(assembler.NextLine(&line), LineStatus::kOversized);
  ASSERT_EQ(assembler.NextLine(&line), LineStatus::kLine);
  EXPECT_EQ(line, "1");
}

TEST(ServeConcurrency, ClientsHammerWhileModelHotReloads) {
  serve::ServerOptions options = FastOptions();
  options.batching.max_linger = microseconds(200);
  serve::InferenceServer server(options);
  server.AddModel("gp", TrainedCopy());
  const auto& test = Fixture().split.test;

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const auto& series =
            test[std::size_t(c * kRequestsPerClient + i) % test.size()];
        const serve::ClassifyResult result =
            server.Classify("gp", series.values, milliseconds(30000));
        EXPECT_EQ(result.status, serve::StatusCode::kOk);
        ok += result.status == serve::StatusCode::kOk;
      }
    });
  }
  // Hot-reload the model the whole time the clients hammer it.
  for (int swap = 0; swap < 10; ++swap) {
    server.AddModel("gp", TrainedCopy());
    std::this_thread::sleep_for(milliseconds(1));
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kRequestsPerClient);

  const serve::StatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.ok, std::uint64_t(kClients * kRequestsPerClient));
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_LE(stats.batches, stats.ok);
}

}  // namespace
}  // namespace rpm
