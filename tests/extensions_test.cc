// Tests for the extension components: Shapelet Transform baseline,
// alternative feature-space classifiers (k-NN / Gaussian Naive Bayes),
// the approximate best-match scan, the Re-Pair-backed RPM pipeline, and
// model serialization round-trips.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "baselines/shapelet_transform.h"
#include "core/rpm.h"
#include "distance/approximate.h"
#include "ml/metrics.h"
#include "ml/simple_classifiers.h"
#include "ts/generators.h"
#include "ts/rng.h"
#include "ts/znorm.h"

namespace rpm {
namespace {

const ts::DatasetSplit& Split() {
  static const ts::DatasetSplit split = ts::MakeGunPoint(10, 20, 100, 55);
  return split;
}

// ---------------- Shapelet Transform ----------------

TEST(ShapeletTransformTest, TrainsAndBeatsChance) {
  baselines::ShapeletTransform clf;
  clf.Train(Split().train);
  EXPECT_FALSE(clf.shapelets().empty());
  EXPECT_LE(clf.shapelets().size(), 10u);
  EXPECT_LE(clf.Evaluate(Split().test), 0.25);
}

TEST(ShapeletTransformTest, ShapeletsAreZNormalized) {
  baselines::ShapeletTransform clf;
  clf.Train(Split().train);
  for (const auto& s : clf.shapelets()) {
    double mean = 0.0;
    for (double v : s) mean += v;
    EXPECT_NEAR(mean / static_cast<double>(s.size()), 0.0, 1e-9);
  }
}

TEST(ShapeletTransformTest, SingleClassFallsBack) {
  ts::Dataset train;
  ts::Rng rng(1);
  for (int i = 0; i < 4; ++i) {
    ts::Series s(50);
    for (auto& v : s) v = rng.Gaussian();
    train.Add(9, std::move(s));
  }
  baselines::ShapeletTransform clf;
  clf.Train(train);
  EXPECT_EQ(clf.Classify(ts::Series(50, 0.0)), 9);
}

TEST(ShapeletTransformTest, ThrowsBeforeTrainAndOnEmpty) {
  baselines::ShapeletTransform clf;
  EXPECT_THROW(clf.Classify(ts::Series(10, 0.0)), std::logic_error);
  EXPECT_THROW(clf.Train(ts::Dataset{}), std::invalid_argument);
}

// ---------------- Simple feature classifiers ----------------

ml::FeatureDataset Blobs(std::uint64_t seed) {
  ts::Rng rng(seed);
  ml::FeatureDataset d;
  for (int i = 0; i < 25; ++i) {
    d.Add({rng.Gaussian(-2, 0.5), rng.Gaussian(0, 0.5)}, 1);
    d.Add({rng.Gaussian(2, 0.5), rng.Gaussian(0, 0.5)}, 2);
  }
  return d;
}

TEST(SimpleClassifiers, KnnSeparatesBlobs) {
  ml::KnnFeatureClassifier knn(3);
  knn.Train(Blobs(2));
  EXPECT_EQ(knn.Predict(std::vector<double>{-2.0, 0.0}), 1);
  EXPECT_EQ(knn.Predict(std::vector<double>{2.0, 0.0}), 2);
}

TEST(SimpleClassifiers, NaiveBayesSeparatesBlobs) {
  ml::GaussianNaiveBayes nb;
  nb.Train(Blobs(3));
  EXPECT_EQ(nb.Predict(std::vector<double>{-2.0, 0.0}), 1);
  EXPECT_EQ(nb.Predict(std::vector<double>{2.0, 0.0}), 2);
}

TEST(SimpleClassifiers, PredictBeforeTrainThrows) {
  ml::KnnFeatureClassifier knn;
  EXPECT_THROW(knn.Predict(std::vector<double>{0.0}), std::logic_error);
  ml::GaussianNaiveBayes nb;
  EXPECT_THROW(nb.Predict(std::vector<double>{0.0}), std::logic_error);
}

TEST(SimpleClassifiers, FactoryProducesEachKind) {
  const ml::FeatureDataset d = Blobs(4);
  for (auto kind :
       {ml::FeatureClassifierKind::kSvm, ml::FeatureClassifierKind::kKnn,
        ml::FeatureClassifierKind::kNaiveBayes}) {
    auto clf = ml::MakeFeatureClassifier(kind);
    clf->Train(d);
    EXPECT_TRUE(clf->trained());
    EXPECT_EQ(clf->Predict(std::vector<double>{-2.0, 0.0}), 1);
  }
}

TEST(SimpleClassifiers, SerializationRoundTrips) {
  const ml::FeatureDataset d = Blobs(5);
  for (auto kind :
       {ml::FeatureClassifierKind::kSvm, ml::FeatureClassifierKind::kKnn,
        ml::FeatureClassifierKind::kNaiveBayes}) {
    auto clf = ml::MakeFeatureClassifier(kind);
    clf->Train(d);
    std::stringstream buf;
    clf->Save(buf);
    auto restored = ml::MakeFeatureClassifier(kind);
    restored->Load(buf);
    for (std::size_t i = 0; i < d.size(); ++i) {
      EXPECT_EQ(restored->Predict(d.x[i]), clf->Predict(d.x[i]));
    }
  }
}

// ---------------- RPM with alternative final classifiers ----------------

class FinalClassifierTest
    : public ::testing::TestWithParam<ml::FeatureClassifierKind> {};

TEST_P(FinalClassifierTest, RpmWorksWithAnyClassifier) {
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kFixed;
  opt.fixed_sax.window = 25;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  opt.final_classifier = GetParam();
  core::RpmClassifier clf(opt);
  clf.Train(Split().train);
  EXPECT_LE(clf.Evaluate(Split().test), 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, FinalClassifierTest,
    ::testing::Values(ml::FeatureClassifierKind::kSvm,
                      ml::FeatureClassifierKind::kKnn,
                      ml::FeatureClassifierKind::kNaiveBayes));

// ---------------- Approximate matching ----------------

TEST(ApproximateMatch, FindsPlantedPatternExactly) {
  ts::Rng rng(6);
  ts::Series pattern(24);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = std::sin(0.5 * static_cast<double>(i));
  }
  ts::ZNormalizeInPlace(pattern);
  ts::Series hay(300);
  for (auto& v : hay) v = rng.Gaussian(0.0, 0.3);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    hay[140 + i] = 4.0 + 3.0 * pattern[i];
  }
  const auto exact = distance::FindBestMatch(pattern, hay);
  const auto approx = distance::FindBestMatchApprox(pattern, hay);
  EXPECT_EQ(approx.position, exact.position);
  EXPECT_NEAR(approx.distance, exact.distance, 1e-9);
}

TEST(ApproximateMatch, NeverBetterThanExact) {
  // The approximate distance is an exact distance at some position, so it
  // can only be >= the true best-match distance.
  ts::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    ts::Series pattern(16);
    for (auto& v : pattern) v = rng.Gaussian();
    ts::ZNormalizeInPlace(pattern);
    ts::Series hay(200);
    for (auto& v : hay) v = rng.Gaussian();
    const auto exact = distance::FindBestMatch(pattern, hay);
    const auto approx = distance::FindBestMatchApprox(pattern, hay);
    EXPECT_GE(approx.distance, exact.distance - 1e-9);
    // With a healthy refine budget it should usually be close.
    EXPECT_LE(approx.distance, exact.distance + 1.0);
  }
}

TEST(ApproximateMatch, DegenerateInputs) {
  EXPECT_FALSE(
      distance::FindBestMatchApprox(ts::Series{}, ts::Series(5, 0.0))
          .found());
  EXPECT_FALSE(distance::FindBestMatchApprox(ts::Series(10, 0.0),
                                             ts::Series(5, 0.0))
                   .found());
}

TEST(ApproximateMatch, RpmPipelineWithApproximateMatching) {
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kFixed;
  opt.fixed_sax.window = 25;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  opt.approximate_matching = true;
  core::RpmClassifier clf(opt);
  clf.Train(Split().train);
  EXPECT_LE(clf.Evaluate(Split().test), 0.3);
}

// ---------------- Re-Pair-backed RPM ----------------

TEST(RePairPipeline, RpmWorksWithRePairBackend) {
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kFixed;
  opt.fixed_sax.window = 25;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  opt.gi_algorithm = grammar::GiAlgorithm::kRePair;
  core::RpmClassifier clf(opt);
  clf.Train(Split().train);
  EXPECT_FALSE(clf.patterns().empty());
  EXPECT_LE(clf.Evaluate(Split().test), 0.3);
}

// ---------------- Model serialization ----------------

TEST(ModelSerialization, RoundTripPreservesPredictions) {
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kFixed;
  opt.fixed_sax.window = 25;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  core::RpmClassifier clf(opt);
  clf.Train(Split().train);

  std::stringstream buf;
  clf.Save(buf);
  const core::RpmClassifier restored = core::RpmClassifier::Load(buf);
  EXPECT_TRUE(restored.trained());
  EXPECT_EQ(restored.patterns().size(), clf.patterns().size());
  EXPECT_EQ(restored.ClassifyAll(Split().test),
            clf.ClassifyAll(Split().test));
}

TEST(ModelSerialization, RoundTripWithKnnAndRotation) {
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kFixed;
  opt.fixed_sax.window = 25;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  opt.final_classifier = ml::FeatureClassifierKind::kKnn;
  opt.rotation_invariant = true;
  core::RpmClassifier clf(opt);
  clf.Train(Split().train);

  std::stringstream buf;
  clf.Save(buf);
  const core::RpmClassifier restored = core::RpmClassifier::Load(buf);
  EXPECT_TRUE(restored.options().rotation_invariant);
  EXPECT_EQ(restored.ClassifyAll(Split().test),
            clf.ClassifyAll(Split().test));
}

TEST(ModelSerialization, FileRoundTrip) {
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kFixed;
  opt.fixed_sax.window = 25;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  core::RpmClassifier clf(opt);
  clf.Train(Split().train);
  const std::string path = "/tmp/rpm_model_test.txt";
  clf.SaveToFile(path);
  const core::RpmClassifier restored =
      core::RpmClassifier::LoadFromFile(path);
  std::remove(path.c_str());
  EXPECT_EQ(restored.ClassifyAll(Split().test),
            clf.ClassifyAll(Split().test));
}

TEST(ModelSerialization, ErrorsOnGarbageAndUntrained) {
  std::stringstream garbage("not a model");
  EXPECT_THROW(core::RpmClassifier::Load(garbage), std::runtime_error);
  core::RpmClassifier untrained;
  std::stringstream out;
  EXPECT_THROW(untrained.Save(out), std::logic_error);
  EXPECT_THROW(core::RpmClassifier::LoadFromFile("/nonexistent/x.model"),
               std::runtime_error);
}

}  // namespace
}  // namespace rpm
