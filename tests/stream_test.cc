// Tests for the streaming subsystem (src/stream): ring-buffer indexing,
// incremental-moment drift bounds, the streaming-equals-batch golden
// equivalence, early classification, session lifecycle/eviction, the
// STREAM_* protocol verbs, and concurrent feeds across sessions. The
// StreamConcurrency tests double as the TSan surface driven by
// scripts/tsan_check.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "stream/session_manager.h"
#include "stream/stream_buffer.h"
#include "stream/stream_scorer.h"
#include "ts/generators.h"
#include "ts/rng.h"
#include "ts/znorm.h"

namespace rpm {
namespace {

// One small trained model per test binary run (training dominates).
struct TrainedFixture {
  ts::DatasetSplit split;
  core::RpmClassifier classifier;
};

const TrainedFixture& Fixture() {
  static const TrainedFixture* fixture = [] {
    core::RpmOptions options;
    options.search = core::ParameterSearch::kFixed;
    options.fixed_sax.window = 32;
    options.fixed_sax.paa_size = 5;
    options.fixed_sax.alphabet = 4;
    auto* f = new TrainedFixture{ts::MakeCbf(10, 6, 128, 778),
                                 core::RpmClassifier(options)};
    f->classifier.Train(f->split.train);
    return f;
  }();
  return *fixture;
}

core::RpmClassifier TrainedCopy() {
  std::stringstream buffer;
  Fixture().classifier.Save(buffer);
  return core::RpmClassifier::Load(buffer);
}

// A deterministic multi-regime feed: test instances laid end to end.
std::vector<double> MakeFeed(std::size_t instances, std::uint64_t seed) {
  const ts::DatasetSplit split =
      ts::MakeCbf(1, (instances + 2) / 3, 128, seed);
  std::vector<double> feed;
  for (const auto& inst : split.test.instances()) {
    if (feed.size() >= instances * 128) break;
    feed.insert(feed.end(), inst.values.begin(), inst.values.end());
  }
  return feed;
}

// ---------------- StreamBuffer ----------------

TEST(StreamBuffer, IndicesSurviveWrapAround) {
  stream::StreamBuffer buffer(8);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(buffer.Push(double(round * 6 + i)));
    }
    buffer.DiscardBefore(buffer.end() - 2);  // keep the last two
  }
  // Every retained sample still reads back by its stream index.
  for (std::uint64_t i = buffer.begin(); i < buffer.end(); ++i) {
    EXPECT_EQ(buffer.At(i), double(i));
  }
  EXPECT_EQ(buffer.end(), 30u);
}

TEST(StreamBuffer, PushRefusesWhenFullAndCopyToUnwraps) {
  stream::StreamBuffer buffer(4);
  const double values[] = {1, 2, 3, 4, 5};
  EXPECT_EQ(buffer.PushSome(ts::SeriesView(values, 5)),
            4u);  // truncated: the backpressure signal
  EXPECT_FALSE(buffer.Push(9.0));
  buffer.DiscardBefore(2);
  EXPECT_TRUE(buffer.Push(5.0));  // slot freed; ring has wrapped
  double out[3] = {0, 0, 0};
  buffer.CopyTo(2, 3, out);  // spans the wrap point
  EXPECT_EQ(out[0], 3.0);
  EXPECT_EQ(out[1], 4.0);
  EXPECT_EQ(out[2], 5.0);
}

TEST(StreamBuffer, DiscardClampsToEnd) {
  stream::StreamBuffer buffer(4);
  buffer.Push(1.0);
  buffer.Push(2.0);
  buffer.DiscardBefore(100);
  EXPECT_EQ(buffer.begin(), buffer.end());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_TRUE(buffer.Push(3.0));
  EXPECT_EQ(buffer.At(2), 3.0);
}

// ---------------- RollingStats drift ----------------

// Exact moments of window [i, i + w) of `data`, direct summation.
void ExactMoments(const std::vector<double>& data, std::size_t start,
                  std::size_t w, double* mu, double* sigma) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = start; i < start + w; ++i) {
    sum += data[i];
    sum_sq += data[i] * data[i];
  }
  ts::WindowMomentsFromSums(sum, sum_sq, 1.0 / double(w), mu, sigma);
}

TEST(RollingStats, DriftStaysBelow1e9OverMillionSamples) {
  // A random walk is the adversarial case for incremental moments: the
  // mean wanders, so sum and sum_sq cancellation error accumulates.
  constexpr std::size_t kWindow = 64;
  constexpr std::size_t kSamples = 1'200'000;
  ts::Rng rng(1234);
  std::vector<double> data(kSamples);
  double level = 0.0;
  for (auto& v : data) {
    level += rng.Gaussian(0.0, 0.1);
    v = level;
  }

  // Periodic exact recompute (the default) must keep drift within 1e-9.
  ts::RollingStats refreshed(kWindow, 1024);
  // The refresh-free run documents why the refresh exists; over 1e6
  // random-walk samples raw drift still stays tiny but measurably larger.
  ts::RollingStats raw(kWindow, 0);
  double worst_refreshed = 0.0;
  double worst_raw = 0.0;
  for (std::size_t i = 0; i < kSamples; ++i) {
    if (i < kWindow) {
      refreshed.Add(data[i]);
      raw.Add(data[i]);
      continue;
    }
    refreshed.Slide(data[i], data[i - kWindow]);
    raw.Slide(data[i], data[i - kWindow]);
    if (refreshed.NeedsRefresh()) {
      refreshed.Refresh(
          ts::SeriesView(data.data() + i + 1 - kWindow, kWindow));
    }
    if (i % 1000 == 0 || i + 1 == kSamples) {
      double mu_exact = 0.0;
      double sigma_exact = 0.0;
      ExactMoments(data, i + 1 - kWindow, kWindow, &mu_exact, &sigma_exact);
      double mu = 0.0;
      double sigma = 0.0;
      refreshed.Moments(&mu, &sigma);
      worst_refreshed = std::max(
          {worst_refreshed, std::abs(mu - mu_exact),
           std::abs(sigma - sigma_exact)});
      raw.Moments(&mu, &sigma);
      worst_raw = std::max({worst_raw, std::abs(mu - mu_exact),
                            std::abs(sigma - sigma_exact)});
    }
  }
  EXPECT_LT(worst_refreshed, 1e-9);
  EXPECT_LT(worst_raw, 1e-6);  // still bounded, just visibly worse
}

TEST(RollingStats, RefreshIntervalOneMatchesExactBitwise) {
  constexpr std::size_t kWindow = 32;
  ts::Rng rng(99);
  std::vector<double> data(4096);
  for (auto& v : data) v = rng.Gaussian(5.0, 3.0);
  ts::RollingStats stats(kWindow, 1);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i < kWindow) {
      stats.Add(data[i]);
      continue;
    }
    stats.Slide(data[i], data[i - kWindow]);
    if (stats.NeedsRefresh()) {
      stats.Refresh(ts::SeriesView(data.data() + i + 1 - kWindow, kWindow));
    }
    double mu = 0.0;
    double sigma = 0.0;
    stats.Moments(&mu, &sigma);
    double mu_exact = 0.0;
    double sigma_exact = 0.0;
    ExactMoments(data, i + 1 - kWindow, kWindow, &mu_exact, &sigma_exact);
    ASSERT_EQ(mu, mu_exact);  // bit-identical, not just close
    ASSERT_EQ(sigma, sigma_exact);
  }
}

// ---------------- Streaming == batch (golden) ----------------

// With stats_refresh_interval == 1 the rolling sums are recomputed
// exactly before every score, so the streaming path must be bit-identical
// to materializing each hop window from the feed and classifying it with
// the batch engine.
TEST(GoldenStreaming, HopWindowsMatchBatchClassifyBitIdentically) {
  const core::ClassificationEngine engine(Fixture().classifier);
  const std::vector<double> feed = MakeFeed(12, 4242);
  stream::StreamOptions options;
  options.window = 128;
  options.hop = 16;
  options.stats_refresh_interval = 1;

  std::vector<ts::Series> seen;
  const std::vector<stream::StreamDecision> decisions =
      stream::ReplayWindows(engine,
                            ts::SeriesView(feed.data(), feed.size()),
                            options, &seen);
  ASSERT_EQ(decisions.size(), (feed.size() - 128) / 16 + 1);
  ASSERT_EQ(seen.size(), decisions.size());

  for (std::size_t k = 0; k < decisions.size(); ++k) {
    const stream::StreamDecision& d = decisions[k];
    EXPECT_EQ(d.window_index, k);
    EXPECT_EQ(d.start, k * 16);
    EXPECT_EQ(d.length, 128u);
    EXPECT_FALSE(d.early);

    // Batch side: materialize + z-normalize the same window directly.
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < 128; ++i) {
      const double v = feed[k * 16 + i];
      sum += v;
      sum_sq += v * v;
    }
    double mu = 0.0;
    double sigma = 0.0;
    ts::WindowMomentsFromSums(sum, sum_sq, 1.0 / 128.0, &mu, &sigma);
    ts::Series window(128);
    for (std::size_t i = 0; i < 128; ++i) {
      window[i] = (feed[k * 16 + i] - mu) * (1.0 / sigma);
    }
    ASSERT_EQ(window, seen[k]);  // normalized windows bit-identical

    // Same label as the batch engine on the same materialized window —
    // and Classify(s) == PredictRow(Row(s)) is the engine's contract.
    EXPECT_EQ(d.label, engine.Classify(
                           ts::SeriesView(window.data(), window.size())));
  }
}

// Decisions must not depend on how the feed is chunked: the per-sample
// state machine sees the same sample sequence either way.
TEST(GoldenStreaming, ChunkingInvariantBitIdentical) {
  const core::ClassificationEngine engine(Fixture().classifier);
  const std::vector<double> feed = MakeFeed(9, 777);
  stream::StreamOptions options;
  options.window = 96;
  options.hop = 17;  // deliberately not a divisor of anything

  const std::vector<stream::StreamDecision> oneshot = stream::ReplayWindows(
      engine, ts::SeriesView(feed.data(), feed.size()), options);

  stream::StreamOptions live_options = options;
  ASSERT_EQ(stream::ValidateStreamOptions(&live_options), "");
  stream::StreamScorer live(&engine, live_options);
  std::vector<stream::StreamDecision> chunked;
  ts::Rng rng(31337);
  std::size_t offset = 0;
  while (offset < feed.size()) {
    const std::size_t n =
        std::min<std::size_t>(std::size_t(rng.UniformInt(1, 257)),
                              feed.size() - offset);
    const std::size_t accepted = live.Feed(
        ts::SeriesView(feed.data() + offset, n), &chunked);
    ASSERT_EQ(accepted, n);  // ample capacity: no backpressure expected
    offset += n;
  }

  ASSERT_EQ(chunked.size(), oneshot.size());
  for (std::size_t i = 0; i < chunked.size(); ++i) {
    EXPECT_EQ(chunked[i].window_index, oneshot[i].window_index);
    EXPECT_EQ(chunked[i].label, oneshot[i].label);
    EXPECT_EQ(chunked[i].margin, oneshot[i].margin);  // bitwise
    EXPECT_EQ(chunked[i].length, oneshot[i].length);
  }
}

TEST(StreamOptionsValidation, RejectsBadGeometry) {
  stream::StreamOptions options;
  EXPECT_NE(stream::ValidateStreamOptions(&options), "");  // window == 0
  options.window = 32;
  options.capacity = 33;  // must exceed window + 1
  EXPECT_NE(stream::ValidateStreamOptions(&options), "");
  options.capacity = 0;
  options.early_fraction = 1.5;
  EXPECT_NE(stream::ValidateStreamOptions(&options), "");
  options.early_fraction = 0.0;
  EXPECT_EQ(stream::ValidateStreamOptions(&options), "");
  EXPECT_EQ(options.hop, 32u);       // tumbling default
  EXPECT_GE(options.capacity, 34u);  // auto capacity
}

// ---------------- Early classification ----------------

TEST(EarlyClassification, ZeroMarginThresholdDecidesOnFirstProbe) {
  const core::ClassificationEngine engine(Fixture().classifier);
  const std::vector<double> feed = MakeFeed(3, 555);
  stream::StreamOptions options;
  options.window = 128;
  options.early_fraction = 0.5;
  options.early_margin = 0.0;  // any margin qualifies
  ASSERT_EQ(stream::ValidateStreamOptions(&options), "");

  stream::StreamScorer scorer(&engine, options);
  std::vector<stream::StreamDecision> decisions;
  // 80 samples: past the 64-sample early threshold, short of the window.
  ASSERT_EQ(scorer.Feed(ts::SeriesView(feed.data(), 80), &decisions), 80u);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0].early);
  EXPECT_EQ(decisions[0].length, 80u);
  EXPECT_EQ(decisions[0].window_index, 0u);

  // The decided hop emits nothing more when its full window completes.
  decisions.clear();
  ASSERT_EQ(scorer.Feed(ts::SeriesView(feed.data() + 80, 48), &decisions),
            48u);
  EXPECT_TRUE(decisions.empty());
  EXPECT_EQ(scorer.early_decisions(), 1u);
  EXPECT_EQ(scorer.decisions(), 1u);
}

TEST(EarlyClassification, UnreachableMarginDefersToFullWindow) {
  const core::ClassificationEngine engine(Fixture().classifier);
  const std::vector<double> feed = MakeFeed(3, 555);
  stream::StreamOptions options;
  options.window = 128;
  options.early_fraction = 0.25;
  options.early_margin = 1.0;  // only an exact-zero distance reaches it
  ASSERT_EQ(stream::ValidateStreamOptions(&options), "");

  stream::StreamScorer scorer(&engine, options);
  std::vector<stream::StreamDecision> decisions;
  // Probe repeatedly below the window; none should qualify.
  for (std::size_t fed = 0; fed < 128; fed += 40) {
    const std::size_t n = std::min<std::size_t>(40, 128 - fed);
    scorer.Feed(ts::SeriesView(feed.data() + fed, n), &decisions);
  }
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_FALSE(decisions[0].early);  // the full window decided
  EXPECT_EQ(decisions[0].length, 128u);
  EXPECT_GT(scorer.windows_scored(), 1u);  // probes happened, none fired
}

// ---------------- Session manager ----------------

stream::StreamModel PinnedFixtureModel() {
  static const core::ClassificationEngine* engine =
      new core::ClassificationEngine(Fixture().classifier);
  stream::StreamModel model;
  model.engine = engine;
  return model;
}

stream::StreamManagerOptions NoReaper() {
  stream::StreamManagerOptions options;
  options.reap_interval = std::chrono::nanoseconds::zero();
  return options;
}

TEST(SessionManager, OpenFeedCloseLifecycle) {
  stream::StreamSessionManager manager(NoReaper());
  stream::StreamOptions options;
  options.window = 64;
  options.hop = 64;
  const auto open = manager.Open(PinnedFixtureModel(), options);
  ASSERT_TRUE(open.ok) << open.error;
  EXPECT_EQ(open.id, "s1");
  EXPECT_EQ(manager.size(), 1u);

  const std::vector<double> feed = MakeFeed(3, 9001);
  const auto fed = manager.Feed(
      open.id, ts::SeriesView(feed.data(), 200));
  EXPECT_EQ(fed.status, stream::StreamSessionManager::FeedStatus::kOk);
  EXPECT_EQ(fed.accepted, 200u);
  EXPECT_EQ(fed.decisions.size(), 3u);  // 200 / 64 tumbling windows

  const auto closed = manager.Close(open.id);
  ASSERT_TRUE(closed.found);
  EXPECT_EQ(closed.summary.samples, 200u);
  EXPECT_EQ(closed.summary.decisions, 3u);
  EXPECT_EQ(manager.size(), 0u);
  EXPECT_FALSE(manager.Close(open.id).found);
}

TEST(SessionManager, UnknownIdAndBadOptionsFail) {
  stream::StreamSessionManager manager(NoReaper());
  const double v = 1.0;
  EXPECT_EQ(manager.Feed("s404", ts::SeriesView(&v, 1)).status,
            stream::StreamSessionManager::FeedStatus::kNotFound);
  stream::StreamOptions bad;  // window == 0
  EXPECT_FALSE(manager.Open(PinnedFixtureModel(), bad).ok);
  stream::StreamModel no_engine;
  stream::StreamOptions ok;
  ok.window = 8;
  EXPECT_FALSE(manager.Open(std::move(no_engine), ok).ok);
}

TEST(SessionManager, MaxSessionsCapAndIds) {
  stream::StreamManagerOptions manager_options = NoReaper();
  manager_options.max_sessions = 2;
  stream::StreamSessionManager manager(manager_options);
  stream::StreamOptions options;
  options.window = 16;
  ASSERT_TRUE(manager.Open(PinnedFixtureModel(), options).ok);
  ASSERT_TRUE(manager.Open(PinnedFixtureModel(), options).ok);
  const auto third = manager.Open(PinnedFixtureModel(), options);
  EXPECT_FALSE(third.ok);
  EXPECT_EQ(third.error, "too many open streams");
  EXPECT_EQ(manager.Ids(), (std::vector<std::string>{"s1", "s2"}));
}

TEST(SessionManager, EvictIdleRemovesOnlyStaleSessions) {
  stream::StreamSessionManager manager(NoReaper());
  stream::StreamOptions options;
  options.window = 16;
  const auto stale = manager.Open(PinnedFixtureModel(), options);
  const auto fresh = manager.Open(PinnedFixtureModel(), options);
  ASSERT_TRUE(stale.ok);
  ASSERT_TRUE(fresh.ok);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const std::vector<double> feed = MakeFeed(1, 1);
  manager.Feed(fresh.id, ts::SeriesView(feed.data(), 8));  // touch
  EXPECT_EQ(manager.EvictIdle(std::chrono::milliseconds(10)), 1u);
  EXPECT_EQ(manager.Ids(), std::vector<std::string>{fresh.id});
}

TEST(SessionManager, ShutdownClosesEverythingAndRejectsNew) {
  stream::StreamSessionManager manager(NoReaper());
  stream::StreamOptions options;
  options.window = 16;
  ASSERT_TRUE(manager.Open(PinnedFixtureModel(), options).ok);
  manager.Shutdown();
  EXPECT_EQ(manager.size(), 0u);
  EXPECT_FALSE(manager.Open(PinnedFixtureModel(), options).ok);
  const double v = 1.0;
  EXPECT_EQ(manager.Feed("s1", ts::SeriesView(&v, 1)).status,
            stream::StreamSessionManager::FeedStatus::kShutdown);
}

// ---------------- Protocol round trip ----------------

TEST(StreamProtocol, OpenFeedCloseRoundTrip) {
  serve::InferenceServer server;
  server.AddModel("cbf", TrainedCopy());

  const std::string opened = server.HandleLine("STREAM_OPEN cbf 64 64");
  ASSERT_EQ(opened.rfind("OK stream s", 0), 0u) << opened;
  const std::string id = opened.substr(10, opened.find(' ', 10) - 10);

  // Feed two windows' worth in CSV.
  const std::vector<double> feed = MakeFeed(1, 3333);
  std::string csv;
  for (std::size_t i = 0; i < 128; ++i) {
    csv += (i == 0 ? "" : ",") + std::to_string(feed[i]);
  }
  const std::string fed = server.HandleLine("STREAM_FEED " + id + " " + csv);
  EXPECT_EQ(fed.rfind("OK fed 128 decisions=2", 0), 0u) << fed;

  EXPECT_EQ(server.HandleLine("STREAMS"), "OK 1 " + id);
  const std::string closed = server.HandleLine("STREAM_CLOSE " + id);
  EXPECT_EQ(closed.rfind("OK closed " + id + " samples=128 windows=2", 0),
            0u)
      << closed;
  EXPECT_EQ(server.HandleLine("STREAMS"), "OK 0");

  const std::string stats = server.HandleLine("STATS");
  EXPECT_NE(stats.find("\"streams\":{\"opened\":1,\"closed\":1"),
            std::string::npos)
      << stats;
}

TEST(StreamProtocol, ErrorsAreExplicit) {
  serve::InferenceServer server;
  server.AddModel("cbf", TrainedCopy());
  EXPECT_EQ(server.HandleLine("STREAM_OPEN nope 64").rfind("ERR NOT_FOUND", 0),
            0u);
  EXPECT_EQ(server.HandleLine("STREAM_OPEN cbf").rfind("ERR BAD_REQUEST", 0),
            0u);
  EXPECT_EQ(server.HandleLine("STREAM_OPEN cbf 0").rfind("ERR BAD_REQUEST", 0),
            0u);
  EXPECT_EQ(
      server.HandleLine("STREAM_FEED s404 1,2,3").rfind("ERR NOT_FOUND", 0),
      0u);
  EXPECT_EQ(server.HandleLine("STREAM_CLOSE s404").rfind("ERR NOT_FOUND", 0),
            0u);
  const std::string opened = server.HandleLine("STREAM_OPEN cbf 64");
  const std::string id = opened.substr(10, opened.find(' ', 10) - 10);
  EXPECT_EQ(
      server.HandleLine("STREAM_FEED " + id + " 1,x,3")
          .rfind("ERR BAD_REQUEST", 0),
      0u);
}

TEST(StreamProtocol, SessionPinsModelAcrossHotReload) {
  serve::InferenceServer server;
  server.AddModel("cbf", TrainedCopy());
  const std::string opened = server.HandleLine("STREAM_OPEN cbf 64 64");
  ASSERT_EQ(opened.rfind("OK stream", 0), 0u);
  const std::string id = opened.substr(10, opened.find(' ', 10) - 10);
  // Unload the model entirely: the open session must keep classifying.
  ASSERT_TRUE(server.UnloadModel("cbf"));
  const std::vector<double> feed = MakeFeed(1, 77);
  std::string csv;
  for (std::size_t i = 0; i < 64; ++i) {
    csv += (i == 0 ? "" : ",") + std::to_string(feed[i]);
  }
  const std::string fed = server.HandleLine("STREAM_FEED " + id + " " + csv);
  EXPECT_EQ(fed.rfind("OK fed 64 decisions=1", 0), 0u) << fed;
}

// ---------------- Concurrency (TSan surface) ----------------

TEST(StreamConcurrency, EightSessionsFeedInParallelWithReloadAndEviction) {
  serve::InferenceServer server;
  server.AddModel("cbf", TrainedCopy());

  constexpr int kSessions = 8;
  std::vector<std::string> ids;
  for (int s = 0; s < kSessions; ++s) {
    stream::StreamOptions options;
    options.window = 64;
    options.hop = 16;
    const auto open = server.OpenStream("cbf", options);
    ASSERT_TRUE(open.ok) << open.error;
    ids.push_back(open.id);
  }

  const std::vector<double> feed = MakeFeed(6, 2024);
  std::atomic<std::uint64_t> total_decisions{0};
  std::vector<std::thread> feeders;
  feeders.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    feeders.emplace_back([&, s] {
      ts::Rng rng(std::uint64_t(s) + 1);
      std::size_t offset = 0;
      std::uint64_t decided = 0;
      while (offset < feed.size()) {
        const std::size_t n =
            std::min<std::size_t>(std::size_t(rng.UniformInt(16, 128)),
                                  feed.size() - offset);
        const auto result = server.FeedStream(
            ids[std::size_t(s)],
            ts::SeriesView(feed.data() + offset, n));
        ASSERT_EQ(result.status,
                  stream::StreamSessionManager::FeedStatus::kOk);
        ASSERT_GT(result.accepted, 0u);
        decided += result.decisions.size();
        offset += result.accepted;
      }
      total_decisions.fetch_add(decided, std::memory_order_relaxed);
    });
  }
  // Concurrent churn: hot reloads, stats reads, and an (ineffective)
  // eviction pass racing the feeds.
  std::thread churn([&] {
    for (int i = 0; i < 10; ++i) {
      server.AddModel("cbf", TrainedCopy());
      (void)server.Stats().ToJson();
      server.streams().EvictIdle(std::chrono::hours(1));
      (void)server.streams().Ids();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& t : feeders) t.join();
  churn.join();

  // Every session saw the identical feed: identical decision counts, and
  // the per-session counters must add up in the shared stats.
  const std::uint64_t per_session = (feed.size() - 64) / 16 + 1;
  EXPECT_EQ(total_decisions.load(), per_session * kSessions);
  const serve::StatsSnapshot snap = server.Stats();
  EXPECT_EQ(snap.stream_samples, feed.size() * kSessions);
  EXPECT_EQ(snap.stream_decisions, per_session * kSessions);
  EXPECT_EQ(snap.streams_opened, std::uint64_t(kSessions));

  for (const auto& id : ids) {
    const auto closed = server.CloseStream(id);
    ASSERT_TRUE(closed.found);
    EXPECT_EQ(closed.summary.samples, feed.size());
    EXPECT_EQ(closed.summary.decisions, per_session);
  }
}

TEST(StreamConcurrency, ShutdownRacesActiveFeeds) {
  serve::InferenceServer server;
  server.AddModel("cbf", TrainedCopy());
  stream::StreamOptions options;
  options.window = 32;
  const auto open = server.OpenStream("cbf", options);
  ASSERT_TRUE(open.ok);

  const std::vector<double> feed = MakeFeed(6, 11);
  std::thread feeder([&] {
    std::size_t offset = 0;
    while (offset < feed.size()) {
      const auto result = server.FeedStream(
          open.id, ts::SeriesView(feed.data() + offset,
                                  std::min<std::size_t>(
                                      64, feed.size() - offset)));
      if (result.status != stream::StreamSessionManager::FeedStatus::kOk) {
        break;  // manager shut down mid-stream: expected
      }
      offset += result.accepted;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  server.Shutdown();
  feeder.join();
  EXPECT_EQ(server.streams().size(), 0u);
}

}  // namespace
}  // namespace rpm
