// Tests for the RPM core pipeline: concatenation, Algorithm 1 candidate
// mining, Algorithm 2 pruning + selection, the feature transform, and the
// end-to-end classifier with fixed SAX parameters.

#include <gtest/gtest.h>

#include <cmath>

#include "core/rpm.h"
#include "ts/generators.h"
#include "ts/rng.h"
#include "ts/rotation.h"
#include "ts/znorm.h"

namespace rpm::core {
namespace {

// A two-class planted-motif dataset: class 1 carries a sine burst, class 2
// a square pulse, at random offsets in noise.
ts::Dataset PlantedMotifs(std::size_t per_class, std::size_t length,
                          std::uint64_t seed) {
  ts::Rng rng(seed);
  ts::Dataset d;
  for (std::size_t i = 0; i < per_class; ++i) {
    for (int label : {1, 2}) {
      ts::Series s(length);
      for (auto& v : s) v = rng.Gaussian(0.0, 0.25);
      const auto at = static_cast<std::size_t>(
          rng.UniformInt(5, static_cast<std::int64_t>(length) - 45));
      for (std::size_t j = 0; j < 40; ++j) {
        if (label == 1) {
          s[at + j] +=
              2.5 * std::sin(2.0 * M_PI * static_cast<double>(j) / 20.0);
        } else {
          s[at + j] += (j < 20) ? 2.5 : -2.5;
        }
      }
      ts::ZNormalizeInPlace(s);
      d.Add(label, std::move(s));
    }
  }
  return d;
}

sax::SaxOptions TestSax() {
  sax::SaxOptions s;
  s.window = 30;
  s.paa_size = 5;
  s.alphabet = 4;
  return s;
}

RpmOptions FastOptions() {
  RpmOptions o;
  o.search = ParameterSearch::kFixed;
  o.fixed_sax = TestSax();
  o.gamma = 0.2;
  return o;
}

TEST(Concatenate, BoundariesAndInstanceMap) {
  ts::Dataset d;
  d.Add(1, {1.0, 2.0, 3.0});
  d.Add(2, {9.0});
  d.Add(1, {4.0, 5.0});
  d.Add(1, {6.0});
  const ConcatenatedClass c = ConcatenateClass(d, 1);
  EXPECT_EQ(c.values, (ts::Series{1.0, 2.0, 3.0, 4.0, 5.0, 6.0}));
  EXPECT_EQ(c.boundaries, (std::vector<std::size_t>{3, 5}));
  EXPECT_EQ(c.num_instances, 3u);
  EXPECT_EQ(c.InstanceAt(0), 0u);
  EXPECT_EQ(c.InstanceAt(2), 0u);
  EXPECT_EQ(c.InstanceAt(3), 1u);
  EXPECT_EQ(c.InstanceAt(5), 2u);
}

TEST(Candidates, FindsFrequentClassMotifs) {
  const ts::Dataset train = PlantedMotifs(8, 150, 1);
  const RpmOptions opt = FastOptions();
  const auto c1 = FindClassCandidates(train, 1, TestSax(), opt);
  const auto c2 = FindClassCandidates(train, 2, TestSax(), opt);
  EXPECT_FALSE(c1.empty());
  EXPECT_FALSE(c2.empty());
  for (const auto& c : c1) {
    EXPECT_EQ(c.class_label, 1);
    EXPECT_GE(c.frequency, 2u);
    EXPECT_GE(c.values.size(), 2u);
    EXPECT_NEAR(ts::Mean(c.values), 0.0, 1e-6);
  }
}

TEST(Candidates, GammaControlsPoolSize) {
  const ts::Dataset train = PlantedMotifs(8, 150, 2);
  RpmOptions strict = FastOptions();
  strict.gamma = 0.9;
  RpmOptions loose = FastOptions();
  loose.gamma = 0.1;
  const auto few = FindClassCandidates(train, 1, TestSax(), strict);
  const auto many = FindClassCandidates(train, 1, TestSax(), loose);
  EXPECT_LE(few.size(), many.size());
}

TEST(Candidates, WindowLargerThanSeriesYieldsEmpty) {
  ts::Dataset d;
  d.Add(1, ts::Series(10, 0.0));
  sax::SaxOptions s = TestSax();
  s.window = 50;
  EXPECT_TRUE(FindClassCandidates(d, 1, s, FastOptions()).empty());
}

TEST(Candidates, MedoidPrototypeIsAMember) {
  const ts::Dataset train = PlantedMotifs(8, 150, 3);
  RpmOptions opt = FastOptions();
  opt.prototype = ClusterPrototype::kMedoid;
  const auto cands = FindClassCandidates(train, 1, TestSax(), opt);
  ASSERT_FALSE(cands.empty());
  // Medoid values are z-normalized actual members, so stddev == 1.
  for (const auto& c : cands) {
    EXPECT_NEAR(ts::StdDev(c.values), 1.0, 1e-6);
  }
}

TEST(Distinct, CandidateDistanceSymmetricIshAndZeroOnSelf) {
  PatternCandidate a;
  a.values = {0.0, 1.0, 0.0, -1.0};
  ts::ZNormalizeInPlace(a.values);
  EXPECT_NEAR(CandidateDistance(a, a), 0.0, 1e-12);
  PatternCandidate b;
  b.values = ts::Series{0.0, 1.0, 0.0, -1.0, 0.0, 1.0};
  ts::ZNormalizeInPlace(b.values);
  EXPECT_DOUBLE_EQ(CandidateDistance(a, b), CandidateDistance(b, a));
}

TEST(Distinct, ThresholdPercentileMonotone) {
  std::vector<PatternCandidate> cands(1);
  cands[0].values = ts::Series(4, 0.0);
  cands[0].within_cluster_distances = {1.0, 2.0, 3.0, 4.0, 5.0};
  const double t30 = ComputeSimilarityThreshold(cands, 30.0);
  const double t70 = ComputeSimilarityThreshold(cands, 70.0);
  EXPECT_LT(t30, t70);
  EXPECT_DOUBLE_EQ(ComputeSimilarityThreshold({}, 30.0), 0.0);
}

TEST(Distinct, RemoveSimilarKeepsMoreFrequent) {
  PatternCandidate a;
  a.values = {0.0, 1.0, 2.0, 3.0};
  ts::ZNormalizeInPlace(a.values);
  a.frequency = 3;
  PatternCandidate b = a;  // identical values
  b.frequency = 10;
  PatternCandidate c;
  c.values = {3.0, -2.0, 5.0, -4.0};
  ts::ZNormalizeInPlace(c.values);
  c.frequency = 1;
  const auto kept = RemoveSimilarCandidates({a, b, c}, 0.5);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].frequency, 10u);  // b replaced a
}

TEST(Distinct, EndToEndSelectsDiscriminativePatterns) {
  const ts::Dataset train = PlantedMotifs(8, 150, 4);
  const RpmOptions opt = FastOptions();
  std::map<int, sax::SaxOptions> sax = {{1, TestSax()}, {2, TestSax()}};
  const auto candidates = FindAllCandidates(train, sax, opt);
  ASSERT_FALSE(candidates.empty());
  const auto patterns = FindDistinctPatterns(train, candidates, opt);
  ASSERT_FALSE(patterns.empty());
  EXPECT_LE(patterns.size(), candidates.size());
}

TEST(Transform, FeatureRowShapeAndSeparability) {
  const ts::Dataset train = PlantedMotifs(8, 150, 5);
  const RpmOptions opt = FastOptions();
  std::map<int, sax::SaxOptions> sax = {{1, TestSax()}, {2, TestSax()}};
  const auto patterns =
      FindDistinctPatterns(train, FindAllCandidates(train, sax, opt), opt);
  ASSERT_FALSE(patterns.empty());
  const ml::FeatureDataset f = TransformDataset(patterns, train, false);
  EXPECT_EQ(f.size(), train.size());
  EXPECT_EQ(f.num_features(), patterns.size());
  for (const auto& row : f.x) {
    for (double v : row) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, 0.0);
    }
  }
}

TEST(Transform, PatternLongerThanSeriesHandled) {
  std::vector<RepresentativePattern> patterns(1);
  patterns[0].values = ts::Series(20, 0.0);
  for (std::size_t i = 0; i < 20; ++i) {
    patterns[0].values[i] = std::sin(0.3 * static_cast<double>(i));
  }
  ts::ZNormalizeInPlace(patterns[0].values);
  const ts::Series series = {1.0, 2.0, 1.0, 0.0, 1.0};
  const auto row = TransformSeries(patterns, series, false);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_TRUE(std::isfinite(row[0]));
}

TEST(Transform, RotationInvariantNeverWorse) {
  // The rotation-invariant distance is a min over two alternatives, so it
  // can only be <= the plain distance.
  const ts::Dataset train = PlantedMotifs(4, 150, 6);
  std::vector<RepresentativePattern> patterns(1);
  patterns[0].values = ts::Series(
      train[0].values.begin(), train[0].values.begin() + 30);
  ts::ZNormalizeInPlace(patterns[0].values);
  for (const auto& inst : train) {
    const double plain = PatternDistance(patterns[0].values, inst.values);
    const double rot =
        PatternDistanceRotationInvariant(patterns[0].values, inst.values);
    EXPECT_LE(rot, plain + 1e-12);
  }
}

TEST(Classifier, TrainAndClassifyPlantedMotifs) {
  const ts::Dataset train = PlantedMotifs(10, 150, 7);
  const ts::Dataset test = PlantedMotifs(15, 150, 8);
  RpmClassifier clf(FastOptions());
  clf.Train(train);
  ASSERT_TRUE(clf.trained());
  EXPECT_FALSE(clf.patterns().empty());
  const double error = clf.Evaluate(test);
  EXPECT_LE(error, 0.15) << "error " << error;
}

TEST(Classifier, ThrowsBeforeTrainAndOnEmptyTrain) {
  RpmClassifier clf(FastOptions());
  EXPECT_THROW(clf.Classify(ts::Series(10, 0.0)), std::logic_error);
  EXPECT_THROW(clf.Train(ts::Dataset{}), std::invalid_argument);
}

TEST(Classifier, DegenerateDataFallsBackToMajority) {
  // Pure white noise, single class: no patterns survive but Train must
  // still produce a usable (constant) classifier.
  ts::Rng rng(9);
  ts::Dataset train;
  for (int i = 0; i < 4; ++i) {
    ts::Series s(40);
    for (auto& v : s) v = rng.Gaussian();
    train.Add(3, std::move(s));
  }
  RpmOptions opt = FastOptions();
  opt.fixed_sax.window = 20;
  RpmClassifier clf(opt);
  clf.Train(train);
  EXPECT_EQ(clf.Classify(ts::Series(40, 0.5)), 3);
}

TEST(Classifier, PerClassSaxRecorded) {
  const ts::Dataset train = PlantedMotifs(8, 150, 10);
  RpmClassifier clf(FastOptions());
  clf.Train(train);
  EXPECT_EQ(clf.sax_by_class().size(), 2u);
  EXPECT_EQ(clf.sax_by_class().at(1).window, 30u);
}

TEST(ParameterSelection, DefaultRangeScalesWithLength) {
  ts::Dataset d;
  d.Add(1, ts::Series(200, 0.0));
  const SaxParamRange r = DefaultRange(d);
  EXPECT_EQ(r.window_lo, 25);
  EXPECT_EQ(r.window_hi, 120);
  EXPECT_GE(r.paa_lo, 2);
  EXPECT_LE(r.alphabet_hi, 9);
}

TEST(ParameterSelection, FixedSearchReturnsFixedSax) {
  const ts::Dataset train = PlantedMotifs(4, 150, 11);
  RpmOptions opt = FastOptions();
  const auto result = SelectSaxParameters(train, opt);
  EXPECT_EQ(result.combos_evaluated, 0u);
  for (const auto& [label, sax] : result.sax_by_class) {
    EXPECT_EQ(sax.window, opt.fixed_sax.window);
  }
}

TEST(ParameterSelection, DirectSearchPicksWorkingParams) {
  const ts::Dataset train = PlantedMotifs(8, 150, 12);
  RpmOptions opt = FastOptions();
  opt.search = ParameterSearch::kDirect;
  opt.direct_max_evaluations = 8;
  opt.param_splits = 2;
  opt.param_folds = 2;
  const auto result = SelectSaxParameters(train, opt);
  EXPECT_GE(result.combos_evaluated, 1u);
  EXPECT_EQ(result.sax_by_class.size(), 2u);
  const SaxParamRange range = DefaultRange(train);
  for (const auto& [label, sax] : result.sax_by_class) {
    EXPECT_GE(static_cast<int>(sax.window), range.window_lo);
    EXPECT_LE(static_cast<int>(sax.window), range.window_hi);
  }
}

TEST(ParameterSelection, EvaluateComboScoresClasses) {
  const ts::Dataset train = PlantedMotifs(8, 150, 13);
  RpmOptions opt = FastOptions();
  opt.param_splits = 2;
  opt.param_folds = 2;
  const auto f = EvaluateSaxCombo(train, TestSax(), opt);
  ASSERT_EQ(f.size(), 2u);
  for (const auto& [label, score] : f) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST(Ablation, JunctionFilteringReducesOrKeepsCandidates) {
  const ts::Dataset train = PlantedMotifs(8, 150, 14);
  RpmOptions with = FastOptions();
  RpmOptions without = FastOptions();
  without.filter_junctions = false;
  const auto a = FindClassCandidates(train, 1, TestSax(), with);
  const auto b = FindClassCandidates(train, 1, TestSax(), without);
  std::size_t freq_with = 0;
  std::size_t freq_without = 0;
  for (const auto& c : a) freq_with += c.frequency;
  for (const auto& c : b) freq_without += c.frequency;
  EXPECT_LE(freq_with, freq_without);
}

}  // namespace
}  // namespace rpm::core
