// The dataset/format suite (`dataset` ctest label): RPMD writer/reader
// round-trips in both length modes, byte-level corruption and truncation
// rejection (every flipped byte must surface as DatasetFormatError, never
// as silent misreads or crashes — the mmap/parse surface runs under
// ASan+UBSan via scripts/tsan_check.sh), streaming generation
// determinism, sampling primitives, and the archive-scale training
// guarantees of docs/DATASETS.md: mmap-backed training is bit-identical
// to in-memory training, and sampled candidate discovery is bit-identical
// to full discovery whenever the caps don't bind.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/rpm.h"
#include "core/sampling.h"
#include "ts/dataset_io.h"
#include "ts/generators.h"
#include "ts/parallel.h"
#include "ts/ucr_io.h"

namespace rpm {
namespace {

std::string TempPath(const std::string& stem) {
  return testing::TempDir() + "/" + stem;
}

std::vector<unsigned char> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void Spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

ts::Dataset VariableLengthDataset() {
  ts::Dataset data;
  std::uint64_t state = 99;
  for (std::size_t i = 0; i < 23; ++i) {
    ts::Series s(7 + (i * 5) % 40);
    for (auto& v : s) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      v = static_cast<double>(static_cast<std::int64_t>(state >> 16)) / 1e12;
    }
    data.Add(static_cast<int>(i % 3) - 1, std::move(s));  // labels -1,0,1
  }
  return data;
}

void ExpectSameDataset(const ts::Dataset& a, const ts::Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label) << "i=" << i;
    ASSERT_EQ(a[i].values.size(), b[i].values.size()) << "i=" << i;
    EXPECT_EQ(a[i].values, b[i].values) << "i=" << i;  // bit-exact
  }
}

TEST(DatasetIo, VariableLengthRoundTrip) {
  const std::string path = TempPath("var_roundtrip.rpmd");
  const ts::Dataset data = VariableLengthDataset();
  ts::DatasetWriterOptions options;
  options.chunk_series = 5;  // force several chunks
  ts::WriteDatasetFile(data, path, options);

  const ts::DatasetReader reader(path);
  EXPECT_EQ(reader.size(), data.size());
  EXPECT_GT(reader.num_chunks(), 1u);
  EXPECT_EQ(reader.fixed_length(), 0u);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(reader.label(i), data[i].label);
    ASSERT_EQ(reader.length(i), data[i].values.size());
    const ts::SeriesView v = reader.values(i);
    EXPECT_EQ(ts::Series(v.begin(), v.end()), data[i].values);
  }
  ExpectSameDataset(reader.ReadAll(), data);
  ExpectSameDataset(ts::ReadDatasetFile(path), data);
  std::remove(path.c_str());
}

TEST(DatasetIo, FixedLengthRoundTripAndAlignment) {
  const std::string path = TempPath("fixed_roundtrip.rpmd");
  const ts::Dataset data = ts::MakeCbf(6, 0, 64, 11).train;
  ts::DatasetWriterOptions options;
  options.fixed_length = 64;
  options.chunk_series = 4;
  ts::WriteDatasetFile(data, path, options);

  const ts::DatasetReader reader(path);
  EXPECT_EQ(reader.fixed_length(), 64u);
  for (std::size_t i = 0; i < reader.size(); ++i) {
    const ts::SeriesView v = reader.values(i);
    // Zero-copy contract: views point straight into the 8-byte-aligned
    // mapping.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) %
                  alignof(double),
              0u);
  }
  ExpectSameDataset(reader.ReadAll(), data);
  std::remove(path.c_str());
}

TEST(DatasetIo, WriterRejectsBadAppends) {
  const std::string path = TempPath("writer_errors.rpmd");
  ts::DatasetWriterOptions options;
  options.fixed_length = 8;
  ts::DatasetWriter writer(path, options);
  EXPECT_THROW(writer.Append(1, ts::Series{}), ts::DatasetFormatError);
  EXPECT_THROW(writer.Append(1, ts::Series(9, 0.0)),
               ts::DatasetFormatError);
  writer.Append(1, ts::Series(8, 0.5));
  writer.Finish();
  EXPECT_THROW(writer.Append(1, ts::Series(8, 0.5)),
               ts::DatasetFormatError);
  std::remove(path.c_str());
}

TEST(DatasetIo, UcrTextRoundTrip) {
  const std::string rpmd = TempPath("ucr_roundtrip.rpmd");
  const ts::Dataset data = ts::MakeItalyPower(5, 0, 24, 3).train;
  ts::WriteDatasetFile(data, rpmd);
  // binary -> text -> parse -> binary -> read: labels survive exactly;
  // values survive through the UCR decimal formatting.
  const ts::Dataset text_side =
      ts::ParseUcr(ts::FormatUcr(ts::ReadDatasetFile(rpmd)));
  ASSERT_EQ(text_side.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(text_side[i].label, data[i].label);
    ASSERT_EQ(text_side[i].values.size(), data[i].values.size());
    for (std::size_t j = 0; j < data[i].values.size(); ++j) {
      EXPECT_NEAR(text_side[i].values[j], data[i].values[j], 1e-9);
    }
  }
  std::remove(rpmd.c_str());
}

TEST(DatasetIo, RejectsBadMagicAndVersion) {
  const std::string path = TempPath("bad_magic.rpmd");
  ts::WriteDatasetFile(VariableLengthDataset(), path);
  std::vector<unsigned char> bytes = Slurp(path);

  std::vector<unsigned char> bad = bytes;
  bad[0] = 'X';
  Spit(path, bad);
  EXPECT_THROW(ts::DatasetReader{path}, ts::DatasetFormatError);

  // Future version with a correct header CRC: the version check itself
  // must fire (the file may be valid for a later reader).
  bad = bytes;
  bad[4] = 0x7F;
  const std::uint32_t crc = ts::Crc32(bad.data(), 36);
  std::memcpy(bad.data() + 36, &crc, sizeof(crc));
  Spit(path, bad);
  try {
    ts::DatasetReader reader(path);
    FAIL() << "version 0x7F accepted";
  } catch (const ts::DatasetFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(DatasetIo, RejectsTruncation) {
  const std::string path = TempPath("truncated.rpmd");
  ts::WriteDatasetFile(VariableLengthDataset(), path);
  const std::vector<unsigned char> bytes = Slurp(path);
  // Every strict prefix must be rejected (checked at coarse stride plus
  // the boundaries around the header).
  for (std::size_t keep = 0; keep < bytes.size();
       keep += (keep < 48 ? 1 : 97)) {
    Spit(path, std::vector<unsigned char>(bytes.begin(),
                                          bytes.begin() + keep));
    EXPECT_THROW(ts::DatasetReader{path}, ts::DatasetFormatError)
        << "kept " << keep << " of " << bytes.size();
  }
  std::remove(path.c_str());
}

TEST(DatasetIo, EveryByteFlipIsDetected) {
  const std::string path = TempPath("bitflip.rpmd");
  ts::Dataset small;
  std::uint64_t state = 7;
  for (std::size_t i = 0; i < 6; ++i) {
    ts::Series s(10 + i);
    for (auto& v : s) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      v = static_cast<double>(static_cast<std::int64_t>(state >> 16)) / 1e12;
    }
    small.Add(static_cast<int>(i % 2), std::move(s));
  }
  ts::DatasetWriterOptions write_options;
  write_options.chunk_series = 3;
  ts::WriteDatasetFile(small, path, write_options);
  const std::vector<unsigned char> bytes = Slurp(path);

  ts::DatasetReaderOptions eager;
  eager.eager_verify = true;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<unsigned char> bad = bytes;
    bad[i] ^= 0xFF;
    Spit(path, bad);
    EXPECT_THROW(ts::DatasetReader(path, eager), ts::DatasetFormatError)
        << "byte " << i << " of " << bytes.size();
  }
  std::remove(path.c_str());
}

TEST(DatasetIo, LazyDataCrcFiresOnFirstAccess) {
  const std::string path = TempPath("lazy_crc.rpmd");
  const ts::Dataset data = ts::MakeCbf(4, 0, 32, 5).train;
  ts::WriteDatasetFile(data, path);
  std::vector<unsigned char> bytes = Slurp(path);
  // Flip one payload byte in the last chunk's values: default (lazy)
  // verification must open fine, serve the label column, and throw only
  // when the damaged chunk's values are first touched.
  bytes[bytes.size() / 2] ^= 0x01;
  Spit(path, bytes);
  const ts::DatasetReader reader(path);
  EXPECT_EQ(reader.size(), data.size());
  EXPECT_NO_THROW(reader.ClassHistogram());
  bool threw = false;
  for (std::size_t i = 0; i < reader.size(); ++i) {
    try {
      (void)reader.values(i);
    } catch (const ts::DatasetFormatError&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
  std::remove(path.c_str());
}

TEST(DatasetIo, GenerateToFileIsByteDeterministic) {
  const std::string a = TempPath("gen_a.rpmd");
  const std::string b = TempPath("gen_b.rpmd");
  ts::ArchiveOptions options;
  options.num_series = 1000;
  options.length = 32;
  options.seed = 42;
  options.batch_per_class = 64;  // several rounds
  EXPECT_EQ(ts::GenerateToFile("TwoPatterns", options, a), 1000u);
  EXPECT_EQ(ts::GenerateToFile("TwoPatterns", options, b), 1000u);
  EXPECT_EQ(Slurp(a), Slurp(b));

  // The interleaved emission keeps every prefix class-balanced.
  const ts::DatasetReader reader(a);
  for (const auto& [label, count] : reader.ClassHistogram()) {
    EXPECT_NEAR(static_cast<double>(count), 250.0, 1.0) << label;
  }
  EXPECT_THROW(ts::GenerateToFile("NoSuchFamily", options, b),
               std::invalid_argument);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(DatasetIo, ConcurrentReadsMatchSequential) {
  const std::string path = TempPath("concurrent.rpmd");
  ts::ArchiveOptions options;
  options.num_series = 600;
  options.length = 48;
  options.seed = 9;
  ts::GenerateToFile("CBF", options, path);
  const ts::DatasetReader reader(path);
  const ts::Dataset all = reader.ReadAll();
  // Hammer values() from the pool: the lazy per-chunk CRC check races
  // benignly (TSan runs this under ctest -L dataset).
  std::vector<int> ok(reader.size(), 0);
  ts::ParallelFor(reader.size(), 8, [&](std::size_t i) {
    const ts::SeriesView v = reader.values(i);
    ok[i] = ts::Series(v.begin(), v.end()) == all[i].values ? 1 : 0;
  });
  for (std::size_t i = 0; i < ok.size(); ++i) EXPECT_EQ(ok[i], 1);
  std::remove(path.c_str());
}

TEST(Sampling, ReservoirContract) {
  // Identity at or above the population, sorted, deterministic.
  const auto all = core::ReservoirSample(10, 10, 1);
  ASSERT_EQ(all.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(all[i], i);
  EXPECT_EQ(core::ReservoirSample(10, 0, 1), all);
  EXPECT_EQ(core::ReservoirSample(10, 99, 1), all);

  const auto a = core::ReservoirSample(1000, 50, 7);
  const auto b = core::ReservoirSample(1000, 50, 7);
  const auto c = core::ReservoirSample(1000, 50, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LT(a[i - 1], a[i]);  // sorted, unique
  }
  EXPECT_LT(a.back(), 1000u);
}

TEST(Sampling, StratifiedRespectsClassesAndCaps) {
  std::vector<int> labels;
  for (int i = 0; i < 300; ++i) labels.push_back(i % 3 == 0 ? 5 : i % 3);
  const auto picked = core::StratifiedSample(labels, 20, 99);
  ASSERT_EQ(picked.size(), 60u);
  std::map<int, std::size_t> per_class;
  for (std::size_t i = 1; i < picked.size(); ++i) {
    EXPECT_LT(picked[i - 1], picked[i]);
  }
  for (std::size_t idx : picked) ++per_class[labels[idx]];
  EXPECT_EQ(per_class[5], 20u);
  EXPECT_EQ(per_class[1], 20u);
  EXPECT_EQ(per_class[2], 20u);

  // No binding cap: the identity, in order.
  const auto everything = core::StratifiedSample(labels, 0, 99);
  ASSERT_EQ(everything.size(), labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(everything[i], i);
  }
  // Per-class substreams: adding a class elsewhere must not change what
  // class 1 receives.
  std::vector<int> labels2 = labels;
  for (int i = 0; i < 50; ++i) labels2.push_back(77);
  const auto picked2 = core::StratifiedSample(labels2, 20, 99);
  std::vector<std::size_t> ones_a;
  std::vector<std::size_t> ones_b;
  for (std::size_t idx : picked) {
    if (labels[idx] == 1) ones_a.push_back(idx);
  }
  for (std::size_t idx : picked2) {
    if (labels2[idx] == 1) ones_b.push_back(idx);
  }
  EXPECT_EQ(ones_a, ones_b);
}

// --- Archive-scale training guarantees (docs/DATASETS.md) ---

void ExpectSameModel(const core::RpmClassifier& a,
                     const core::RpmClassifier& b,
                     const ts::Dataset& probe) {
  ASSERT_EQ(a.patterns().size(), b.patterns().size());
  for (std::size_t i = 0; i < a.patterns().size(); ++i) {
    EXPECT_EQ(a.patterns()[i].class_label, b.patterns()[i].class_label);
    EXPECT_EQ(a.patterns()[i].values, b.patterns()[i].values);  // bit-exact
  }
  EXPECT_EQ(a.ClassifyAll(probe), b.ClassifyAll(probe));
}

core::RpmOptions FastFixedOptions() {
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kFixed;
  opt.fixed_sax.window = 24;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  opt.seed = 6021;
  return opt;
}

TEST(ArchiveTraining, MmapMatchesInMemoryBitForBit) {
  const ts::DatasetSplit split = ts::MakeCbf(10, 5, 64, 77);
  const std::string path = TempPath("train_equiv.rpmd");
  ts::WriteDatasetFile(split.train, path);
  const ts::DatasetReader reader(path);

  core::RpmClassifier mem(FastFixedOptions());
  mem.Train(split.train);
  core::RpmClassifier disk(FastFixedOptions());
  disk.Train(reader);  // no caps: materializes everything, in order
  ExpectSameModel(mem, disk, split.test);
  std::remove(path.c_str());
}

TEST(ArchiveTraining, NonBindingCapsAreExact) {
  // Caps at/above every class size must leave training bit-identical —
  // the sampled-vs-full exactness guarantee, across two suites.
  const std::string path = TempPath("exactness.rpmd");
  for (const auto& split :
       {ts::MakeCbf(8, 4, 64, 13), ts::MakeItalyPower(9, 4, 24, 29)}) {
    ts::WriteDatasetFile(split.train, path);
    const ts::DatasetReader reader(path);

    core::RpmClassifier full(FastFixedOptions());
    full.Train(split.train);

    core::RpmOptions sampled_options = FastFixedOptions();
    sampled_options.discovery_sample_per_class = 1000;  // >= class sizes
    core::RpmClassifier sampled(sampled_options);
    core::TrainFromDiskOptions disk;
    disk.max_train_per_class = 1000;
    sampled.Train(reader, disk);
    ExpectSameModel(full, sampled, split.test);
  }
  std::remove(path.c_str());
}

TEST(ArchiveTraining, BindingCapsAreDeterministicAndBounded) {
  const std::string path = TempPath("capped.rpmd");
  ts::ArchiveOptions gen;
  gen.num_series = 900;
  gen.length = 64;
  gen.seed = 31;
  ts::GenerateToFile("CBF", gen, path);
  const ts::DatasetReader reader(path);

  core::RpmOptions opt = FastFixedOptions();
  opt.discovery_sample_per_class = 6;
  core::TrainFromDiskOptions disk;
  disk.max_train_per_class = 12;

  core::RpmClassifier a(opt);
  a.Train(reader, disk);
  core::RpmClassifier b(opt);
  b.Train(reader, disk);
  // Same seed, same archive: the sampled model reproduces exactly.
  const ts::Dataset probe = ts::MakeCbf(0, 5, 64, 32).test;
  ExpectSameModel(a, b, probe);
  EXPECT_TRUE(a.trained());
  std::remove(path.c_str());
}

TEST(ArchiveTraining, DiscoverySamplingCapsTheConcatenation) {
  // With a binding cap the per-class discovery concatenation shrinks to
  // cap instances — the sub-linear-growth mechanism of the scaling
  // bench.
  const ts::Dataset train = ts::MakeCbf(30, 0, 48, 3).train;
  core::RpmOptions opt = FastFixedOptions();
  opt.discovery_sample_per_class = 5;
  const auto capped =
      core::FindClassCandidates(train, 1, opt.fixed_sax, opt);
  opt.discovery_sample_per_class = 0;
  const auto full = core::FindClassCandidates(train, 1, opt.fixed_sax, opt);
  // Frequency floors scale with the (smaller) sampled instance count, so
  // the capped run still produces candidates, from 5 instances only.
  for (const auto& c : capped) {
    EXPECT_LE(c.instance_coverage, 5u);
  }
  EXPECT_FALSE(full.empty());
}

}  // namespace
}  // namespace rpm
