// Tests for the network front end (src/net) and its serve-layer bridge:
// payload codec round trips, the frame assembler's adversarial surface
// (split/coalesced/oversized/corrupt/truncated frames), consistent-hash
// ring properties, the event loop's cross-thread post contract, the
// sharded server (id pinning, by-id routing, shard-local reaping,
// shutdown accounting, callback classify), and socket end-to-end runs
// over both codecs — including codec negotiation, pipelined response
// ordering, half-close draining, and graceful stop.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.h"
#include "net/frame.h"
#include "net/front_end.h"
#include "net/hash_ring.h"
#include "serve/net_handler.h"
#include "serve/server.h"
#include "stream/stream_scorer.h"
#include "ts/generators.h"

namespace rpm {
namespace {

using net::BinaryVerb;
using net::Frame;
using net::FrameAssembler;
using net::PayloadReader;
using net::PayloadWriter;
using net::WireStatus;

// One small trained model per test binary run (training dominates).
struct TrainedFixture {
  ts::DatasetSplit split;
  core::RpmClassifier classifier;
};

const TrainedFixture& Fixture() {
  static const TrainedFixture* fixture = [] {
    core::RpmOptions options;
    options.search = core::ParameterSearch::kFixed;
    options.fixed_sax.window = 32;
    options.fixed_sax.paa_size = 5;
    options.fixed_sax.alphabet = 4;
    auto* f = new TrainedFixture{ts::MakeCbf(10, 6, 128, 778),
                                 core::RpmClassifier(options)};
    f->classifier.Train(f->split.train);
    return f;
  }();
  return *fixture;
}

core::RpmClassifier TrainedCopy() {
  std::stringstream buffer;
  Fixture().classifier.Save(buffer);
  return core::RpmClassifier::Load(buffer);
}

std::vector<double> MakeFeed(std::size_t instances, std::uint64_t seed) {
  const ts::DatasetSplit split =
      ts::MakeCbf(1, (instances + 2) / 3, 128, seed);
  std::vector<double> feed;
  for (const auto& inst : split.test.instances()) {
    if (feed.size() >= instances * 128) break;
    feed.insert(feed.end(), inst.values.begin(), inst.values.end());
  }
  return feed;
}

// ---------------- Payload codec ----------------

TEST(PayloadCodec, RoundTripsEveryPrimitive) {
  std::string payload;
  PayloadWriter writer(&payload);
  writer.U8(0xAB);
  writer.U16(0xBEEF);
  writer.U32(0xDEADBEEF);
  writer.U64(0x0123456789ABCDEFULL);
  writer.I32(-42);
  writer.F64(-0.75);
  writer.Str("hello");
  const double values[] = {1.5, -2.25, 1e300};
  writer.F64Array(values, 3);

  PayloadReader reader(payload);
  std::uint8_t u8 = 0;
  std::uint16_t u16 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  std::int32_t i32 = 0;
  double f64 = 0.0;
  std::string str;
  std::vector<double> array;
  ASSERT_TRUE(reader.U8(&u8));
  ASSERT_TRUE(reader.U16(&u16));
  ASSERT_TRUE(reader.U32(&u32));
  ASSERT_TRUE(reader.U64(&u64));
  ASSERT_TRUE(reader.I32(&i32));
  ASSERT_TRUE(reader.F64(&f64));
  ASSERT_TRUE(reader.Str(&str));
  ASSERT_TRUE(reader.F64Array(&array));
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(f64, -0.75);
  EXPECT_EQ(str, "hello");
  ASSERT_EQ(array.size(), 3u);
  EXPECT_EQ(array[0], 1.5);
  EXPECT_EQ(array[1], -2.25);
  EXPECT_EQ(array[2], 1e300);  // doubles survive bit-exactly
}

TEST(PayloadCodec, TruncatedReadsFailWithoutAdvancing) {
  // A declared string longer than the remaining bytes must not read
  // out of bounds or consume the partial length prefix.
  std::string payload;
  PayloadWriter writer(&payload);
  writer.U16(100);  // claims 100 bytes follow
  payload += "short";
  PayloadReader reader(payload);
  std::string str;
  EXPECT_FALSE(reader.Str(&str));
  // The reader did not advance: the u16 is still readable.
  std::uint16_t len = 0;
  EXPECT_TRUE(reader.U16(&len));
  EXPECT_EQ(len, 100);
}

TEST(PayloadCodec, F64ArrayRejectsCountLargerThanPayload) {
  std::string payload;
  PayloadWriter writer(&payload);
  writer.U32(1000000);  // claims 8 MB of doubles
  writer.F64(1.0);      // only one present
  PayloadReader reader(payload);
  std::vector<double> values;
  EXPECT_FALSE(reader.F64Array(&values));
  std::uint32_t count = 0;
  EXPECT_TRUE(reader.U32(&count));  // did not advance
  EXPECT_EQ(count, 1000000u);
}

TEST(PayloadCodec, BlobRoundTripsBeyondTheStrBound) {
  // `str` caps at 65535 bytes (and truncates); bulk bodies (METRICS,
  // STATS/TRACE JSON) ride as u32-length blobs and must round-trip
  // exactly at any size.
  const std::string big(100 * 1024, 'm');
  std::string payload;
  PayloadWriter writer(&payload);
  writer.Blob(big);
  PayloadReader reader(payload);
  std::string back;
  ASSERT_TRUE(reader.Blob(&back));
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(back, big) << "blob must not truncate at 64 KiB";

  std::string empty_payload;
  PayloadWriter empty_writer(&empty_payload);
  empty_writer.Blob("");
  PayloadReader empty_reader(empty_payload);
  ASSERT_TRUE(empty_reader.Blob(&back));
  EXPECT_TRUE(back.empty());
}

TEST(PayloadCodec, TruncatedBlobFailsWithoutAdvancing) {
  std::string payload;
  PayloadWriter writer(&payload);
  writer.U32(1000);  // claims 1000 bytes follow
  payload += "short";
  PayloadReader reader(payload);
  std::string blob;
  EXPECT_FALSE(reader.Blob(&blob));
  std::uint32_t len = 0;
  EXPECT_TRUE(reader.U32(&len));  // did not advance
  EXPECT_EQ(len, 1000u);
}

TEST(PayloadCodec, EmptyPayloadReadsFail) {
  PayloadReader reader("");
  std::uint8_t u8 = 0;
  double f64 = 0.0;
  std::string str;
  EXPECT_FALSE(reader.U8(&u8));
  EXPECT_FALSE(reader.F64(&f64));
  EXPECT_FALSE(reader.Str(&str));
  EXPECT_TRUE(reader.AtEnd());
}

// ---------------- Frame assembler ----------------

std::string Req(BinaryVerb verb, const std::string& payload = "") {
  return net::EncodeFrame(verb, WireStatus::kOk, payload);
}

TEST(FrameAssemblerTest, SplitDeliveryByteByByte) {
  const std::string wire = Req(BinaryVerb::kClassify, "payload-bytes");
  FrameAssembler assembler;
  Frame frame;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    assembler.Append(std::string_view(&wire[i], 1));
    EXPECT_EQ(assembler.Next(&frame), FrameAssembler::FrameStatus::kNone)
        << "frame emitted before its last byte (offset " << i << ")";
  }
  assembler.Append(std::string_view(&wire[wire.size() - 1], 1));
  ASSERT_EQ(assembler.Next(&frame), FrameAssembler::FrameStatus::kFrame);
  EXPECT_EQ(frame.verb, std::uint8_t(BinaryVerb::kClassify));
  EXPECT_EQ(frame.status, 0);
  EXPECT_EQ(frame.payload, "payload-bytes");
}

TEST(FrameAssemblerTest, CoalescedFramesAllEmergeInOrder) {
  std::string wire = Req(BinaryVerb::kStats) +
                     Req(BinaryVerb::kModels, "x") +
                     Req(BinaryVerb::kQuit, "zz");
  FrameAssembler assembler;
  assembler.Append(wire);
  Frame frame;
  ASSERT_EQ(assembler.Next(&frame), FrameAssembler::FrameStatus::kFrame);
  EXPECT_EQ(frame.verb, std::uint8_t(BinaryVerb::kStats));
  EXPECT_TRUE(frame.payload.empty());  // zero-length payloads are legal
  ASSERT_EQ(assembler.Next(&frame), FrameAssembler::FrameStatus::kFrame);
  EXPECT_EQ(frame.verb, std::uint8_t(BinaryVerb::kModels));
  EXPECT_EQ(frame.payload, "x");
  ASSERT_EQ(assembler.Next(&frame), FrameAssembler::FrameStatus::kFrame);
  EXPECT_EQ(frame.verb, std::uint8_t(BinaryVerb::kQuit));
  EXPECT_EQ(frame.payload, "zz");
  EXPECT_EQ(assembler.Next(&frame), FrameAssembler::FrameStatus::kNone);
}

TEST(FrameAssemblerTest, OversizedFrameSkippedOnceThenRecovers) {
  FrameAssembler assembler(16);  // tiny payload bound
  const std::string big = Req(BinaryVerb::kClassify, std::string(100, 'x'));
  // Stream the oversized frame in two chunks, then a good frame.
  assembler.Append(std::string_view(big).substr(0, 30));
  Frame frame;
  EXPECT_EQ(assembler.Next(&frame), FrameAssembler::FrameStatus::kNone);
  assembler.Append(std::string_view(big).substr(30));
  ASSERT_EQ(assembler.Next(&frame), FrameAssembler::FrameStatus::kOversized);
  EXPECT_EQ(assembler.Next(&frame), FrameAssembler::FrameStatus::kNone);
  assembler.Append(Req(BinaryVerb::kStats, "ok"));
  ASSERT_EQ(assembler.Next(&frame), FrameAssembler::FrameStatus::kFrame);
  EXPECT_EQ(frame.payload, "ok");
}

TEST(FrameAssemblerTest, NonzeroReservedIsCorrupt_Sticky) {
  std::string wire = Req(BinaryVerb::kStats);
  wire[6] = 0x01;  // reserved bytes must be zero
  FrameAssembler assembler;
  assembler.Append(wire);
  Frame frame;
  ASSERT_EQ(assembler.Next(&frame), FrameAssembler::FrameStatus::kCorrupt);
  // Sticky: even well-formed frames after corruption are not parsed
  // (the stream cannot be trusted to be in sync).
  assembler.Append(Req(BinaryVerb::kModels));
  EXPECT_EQ(assembler.Next(&frame), FrameAssembler::FrameStatus::kNone);
}

TEST(FrameAssemblerTest, TruncationMidFrameEmitsNothing) {
  const std::string wire = Req(BinaryVerb::kClassify, "abcdef");
  FrameAssembler assembler;
  assembler.Append(std::string_view(wire).substr(0, 5));  // partial header
  Frame frame;
  EXPECT_EQ(assembler.Next(&frame), FrameAssembler::FrameStatus::kNone);
  FrameAssembler assembler2;
  assembler2.Append(std::string_view(wire).substr(0, 11));  // mid-payload
  EXPECT_EQ(assembler2.Next(&frame), FrameAssembler::FrameStatus::kNone);
}

TEST(FrameAssemblerTest, ExactMaxPayloadBoundary) {
  // A payload of exactly max_payload is legal; one byte more is the
  // oversized path. Both sides of the boundary, same assembler.
  FrameAssembler assembler(32);
  assembler.Append(Req(BinaryVerb::kClassify, std::string(32, 'a')));
  Frame frame;
  ASSERT_EQ(assembler.Next(&frame), FrameAssembler::FrameStatus::kFrame);
  EXPECT_EQ(frame.payload.size(), 32u);
  assembler.Append(Req(BinaryVerb::kClassify, std::string(33, 'b')));
  ASSERT_EQ(assembler.Next(&frame), FrameAssembler::FrameStatus::kOversized);
  // Recovery: the very next frame parses.
  assembler.Append(Req(BinaryVerb::kStats, "ok"));
  ASSERT_EQ(assembler.Next(&frame), FrameAssembler::FrameStatus::kFrame);
  EXPECT_EQ(frame.payload, "ok");
}

TEST(LineAssemblerTest, ExactMaxLineBoundary) {
  net::LineAssembler assembler(8);
  assembler.Append(std::string(8, 'x') + "\n");
  std::string line;
  ASSERT_EQ(assembler.NextLine(&line), net::LineAssembler::LineStatus::kLine);
  EXPECT_EQ(line.size(), 8u);
  // One byte over: surfaced as oversized exactly once, then the stream
  // resynchronizes on the next newline.
  assembler.Append(std::string(9, 'y') + "\nok\n");
  ASSERT_EQ(assembler.NextLine(&line),
            net::LineAssembler::LineStatus::kOversized);
  ASSERT_EQ(assembler.NextLine(&line), net::LineAssembler::LineStatus::kLine);
  EXPECT_EQ(line, "ok");
  EXPECT_EQ(assembler.NextLine(&line), net::LineAssembler::LineStatus::kNone);
}

TEST(LineAssemblerTest, OversizedLineSplitAcrossAppendsSurfacesOnce) {
  // The discard happens as the bytes stream in; the kOversized marker
  // must appear exactly once, at the point the line would have ended.
  net::LineAssembler assembler(4);
  assembler.Append("abc");
  assembler.Append("defgh");  // crosses the bound mid-append
  std::string line;
  EXPECT_EQ(assembler.NextLine(&line), net::LineAssembler::LineStatus::kNone);
  assembler.Append("ij\nz\n");
  ASSERT_EQ(assembler.NextLine(&line),
            net::LineAssembler::LineStatus::kOversized);
  ASSERT_EQ(assembler.NextLine(&line), net::LineAssembler::LineStatus::kLine);
  EXPECT_EQ(line, "z");
}

// ---------------- Consistent hash ring ----------------

TEST(HashRing, DeterministicAndCoversAllShards) {
  const net::ConsistentHashRing ring(4);
  EXPECT_EQ(ring.num_points(), 4 * net::ConsistentHashRing::kVirtualNodes);
  std::set<std::size_t> hit;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "conn-" + std::to_string(i);
    const std::size_t shard = ring.Pick(key);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(ring.Pick(key), shard);  // stable
    hit.insert(shard);
  }
  EXPECT_EQ(hit.size(), 4u);  // every shard receives traffic
}

TEST(HashRing, ResizeRemapsOnlyAFractionOfKeys) {
  const net::ConsistentHashRing four(4);
  const net::ConsistentHashRing five(5);
  int moved = 0;
  const int kKeys = 10000;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "conn-" + std::to_string(i);
    if (four.Pick(key) != five.Pick(key)) ++moved;
  }
  // Consistent hashing: ~1/5 of keys move when going 4 -> 5 shards.
  // Plain modulo would move ~80%. Allow generous slack for vnode
  // placement variance.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kKeys * 45 / 100);
}

// ---------------- Event loop ----------------

TEST(EventLoopTest, PostsRunOnLoopThreadAndStopDrains) {
  net::EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::atomic<int> ran{0};
  std::atomic<bool> on_loop_thread{false};
  std::thread runner([&] { loop.Run(); });
  loop.Post([&] {
    on_loop_thread = loop.InLoopThread();
    ran.fetch_add(1);
  });
  for (int i = 0; i < 500 && ran.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(ran.load(), 1);
  EXPECT_TRUE(on_loop_thread.load());
  // Posts enqueued before Stop still run (the shutdown path's contract).
  loop.Post([&] { ran.fetch_add(1); });
  loop.Stop();
  runner.join();
  EXPECT_EQ(ran.load(), 2);
}

// ---------------- Sharded server ----------------

serve::ServerOptions ShardedOptions(std::size_t shards) {
  serve::ServerOptions options;
  options.num_shards = shards;
  options.streaming.reap_interval = std::chrono::nanoseconds::zero();
  return options;
}

TEST(ShardedServer, SessionIdsUniqueAndEncodeHomeShard) {
  serve::InferenceServer server(ShardedOptions(4));
  server.AddModel("cbf", TrainedCopy());
  stream::StreamOptions opts;
  opts.window = 64;
  opts.hop = 64;
  std::set<std::string> ids;
  for (std::size_t shard = 0; shard < 4; ++shard) {
    for (int k = 0; k < 3; ++k) {
      const auto open = server.OpenStream("cbf", opts, shard);
      ASSERT_TRUE(open.ok) << open.error;
      EXPECT_TRUE(ids.insert(open.id).second)
          << "duplicate id " << open.id << " across shards";
      EXPECT_EQ(server.ShardOfStreamId(open.id), shard)
          << open.id << " does not route home";
      EXPECT_EQ(server.streams(shard).size(), std::size_t(k + 1));
    }
  }
  EXPECT_EQ(server.StreamIds().size(), 12u);
  // Unparseable ids route to shard 0 and miss there.
  EXPECT_EQ(server.ShardOfStreamId("bogus"), 0u);
  EXPECT_EQ(server.FeedStream("bogus", ts::SeriesView{}).status,
            stream::StreamSessionManager::FeedStatus::kNotFound);
}

TEST(ShardedServer, FeedsRouteByIdWithBitIdenticalDecisions) {
  serve::InferenceServer server(ShardedOptions(4));
  server.AddModel("cbf", TrainedCopy());
  const std::vector<double> feed = MakeFeed(6, 9001);
  stream::StreamOptions opts;
  opts.window = 96;
  opts.hop = 17;

  // Reference: the one-shot replay of the same feed and geometry.
  const core::ClassificationEngine engine(Fixture().classifier);
  stream::StreamOptions replay_opts = opts;
  const auto reference = stream::ReplayWindows(
      engine, ts::SeriesView(feed.data(), feed.size()), replay_opts);
  ASSERT_FALSE(reference.empty());

  for (std::size_t shard = 0; shard < 4; ++shard) {
    const auto open = server.OpenStream("cbf", opts, shard);
    ASSERT_TRUE(open.ok) << open.error;
    const auto result = server.FeedStream(
        open.id, ts::SeriesView(feed.data(), feed.size()));
    ASSERT_EQ(result.status,
              stream::StreamSessionManager::FeedStatus::kOk);
    ASSERT_EQ(result.decisions.size(), reference.size())
        << "shard " << shard;
    for (std::size_t k = 0; k < reference.size(); ++k) {
      EXPECT_EQ(result.decisions[k].window_index,
                reference[k].window_index);
      EXPECT_EQ(result.decisions[k].start, reference[k].start);
      EXPECT_EQ(result.decisions[k].label, reference[k].label);
      EXPECT_EQ(result.decisions[k].margin, reference[k].margin)
          << "shard " << shard << " window " << k
          << ": decisions must be bit-identical across shards";
    }
  }
}

TEST(ShardedServer, ReapingIsShardLocalAndPinnedSessionsSurviveReload) {
  serve::InferenceServer server(ShardedOptions(2));
  server.AddModel("cbf", TrainedCopy());
  stream::StreamOptions opts;
  opts.window = 64;
  opts.hop = 64;
  const auto keeper = server.OpenStream("cbf", opts, 0);
  const auto victim = server.OpenStream("cbf", opts, 1);
  ASSERT_TRUE(keeper.ok);
  ASSERT_TRUE(victim.ok);

  // Hot-reload the model: the open sessions pinned the old version.
  server.AddModel("cbf", TrainedCopy());

  // Reap shard 1 only (idle_for=0 evicts everything it owns).
  EXPECT_EQ(server.streams(1).EvictIdle(std::chrono::nanoseconds::zero()),
            1u);
  EXPECT_EQ(server.streams(1).size(), 0u);
  EXPECT_EQ(server.streams(0).size(), 1u)
      << "reaping shard 1 must not touch shard 0's sessions";

  // The surviving pinned session still scores against its old version.
  const std::vector<double> feed = MakeFeed(2, 123);
  const auto fed = server.FeedStream(
      keeper.id, ts::SeriesView(feed.data(), std::size_t(64)));
  EXPECT_EQ(fed.status, stream::StreamSessionManager::FeedStatus::kOk);
  EXPECT_EQ(fed.accepted, 64u);

  const auto stats = server.Stats();
  EXPECT_EQ(stats.streams_opened, 2u);
  EXPECT_EQ(stats.streams_evicted, 1u);
  EXPECT_EQ(stats.streams_closed, 0u);
}

TEST(ShardedServer, ShutdownClosesEverySessionExactlyOnce) {
  serve::ServerOptions options = ShardedOptions(4);
  serve::InferenceServer server(options);
  server.AddModel("cbf", TrainedCopy());
  stream::StreamOptions opts;
  opts.window = 64;
  opts.hop = 64;
  std::vector<std::string> ids;
  for (std::size_t shard = 0; shard < 4; ++shard) {
    for (int k = 0; k < 2; ++k) {
      const auto open = server.OpenStream("cbf", opts, shard);
      ASSERT_TRUE(open.ok);
      ids.push_back(open.id);
    }
  }
  // Close one explicitly; Shutdown must close the rest exactly once.
  ASSERT_TRUE(server.CloseStream(ids[0]).found);
  server.Shutdown();
  server.Shutdown();  // idempotent: no double accounting

  const auto stats = server.Stats();
  EXPECT_EQ(stats.streams_opened, 8u);
  EXPECT_EQ(stats.streams_evicted, 0u);
  EXPECT_EQ(stats.streams_closed, 8u)
      << "every opened session closed exactly once "
      << "(opened == closed + evicted)";
}

TEST(ShardedServer, ClassifyWithCallbackDeliversExactlyOnce) {
  serve::InferenceServer server(ShardedOptions(2));
  server.AddModel("cbf", TrainedCopy());
  const auto& instance = Fixture().split.test.instances()[0];

  std::promise<serve::ClassifyResult> done;
  server.ClassifyWithCallback(
      "cbf", ts::Series(instance.values), std::chrono::seconds(5), 1,
      [&done](serve::ClassifyResult result) {
        done.set_value(result);  // a second call would throw
      });
  const auto result = done.get_future().get();
  EXPECT_EQ(result.status, serve::StatusCode::kOk);
  EXPECT_EQ(result.label,
            server.Classify("cbf", ts::Series(instance.values)).label);

  // Unknown model: rejected inline on the calling thread.
  bool rejected = false;
  server.ClassifyWithCallback(
      "nope", ts::Series(instance.values), std::chrono::seconds(1), 0,
      [&rejected](serve::ClassifyResult result) {
        rejected = (result.status == serve::StatusCode::kNotFound);
      });
  EXPECT_TRUE(rejected);
}

// ---------------- Socket end-to-end ----------------

int ConnectTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  timeval tv{10, 0};  // reads fail loudly instead of hanging the suite
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

bool SendAll(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) return false;
    off += std::size_t(n);
  }
  return true;
}

/// Blocking read of one '\n'-terminated line (newline stripped);
/// empty string on EOF/timeout.
std::string RecvLine(int fd) {
  std::string line;
  char c = 0;
  while (::recv(fd, &c, 1, 0) == 1) {
    if (c == '\n') return line;
    line += c;
  }
  return "";
}

bool RecvExact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<char*>(buf);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t got = ::recv(fd, p + off, n - off, 0);
    if (got <= 0) return false;
    off += std::size_t(got);
  }
  return true;
}

bool RecvFrame(int fd, Frame* frame) {
  unsigned char header[net::kFrameHeaderSize];
  if (!RecvExact(fd, header, sizeof(header))) return false;
  const std::uint32_t len = std::uint32_t(header[0]) |
                            (std::uint32_t(header[1]) << 8) |
                            (std::uint32_t(header[2]) << 16) |
                            (std::uint32_t(header[3]) << 24);
  frame->verb = header[4];
  frame->status = header[5];
  frame->payload.resize(len);
  return len == 0 || RecvExact(fd, frame->payload.data(), len);
}

std::string Csv(const std::vector<double>& values, std::size_t n) {
  std::string csv;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) csv += ',';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", values[i]);
    csv += buf;
  }
  return csv;
}

/// Server + handler + front end with ephemeral port, torn down in order.
struct Harness {
  explicit Harness(std::size_t shards, net::FrontEndOptions net_options = {})
      : server(ShardedOptions(shards)), handler(&server) {
    server.AddModel("cbf", TrainedCopy());
    net_options.tcp_port = 0;
    net_options.num_shards = shards;
    net_options.metrics = &server.metrics();
    front_end = std::make_unique<net::FrontEnd>(&handler, net_options);
  }
  ~Harness() {
    front_end->Stop();
    server.Shutdown();
  }
  bool Start() { return front_end->Start(); }
  int port() const { return front_end->port(); }

  serve::InferenceServer server;
  serve::NetHandler handler;
  std::unique_ptr<net::FrontEnd> front_end;
};

TEST(FrontEndE2E, TextProtocolOverSocket) {
  Harness harness(2);
  ASSERT_TRUE(harness.Start());
  const int fd = ConnectTcp(harness.port());
  ASSERT_GE(fd, 0);

  ASSERT_TRUE(SendAll(fd, "MODELS\n"));
  EXPECT_EQ(RecvLine(fd), "OK 1 cbf");

  const auto& instance = Fixture().split.test.instances()[0];
  const int expected =
      harness.server.Classify("cbf", ts::Series(instance.values)).label;
  ASSERT_TRUE(SendAll(fd, "CLASSIFY cbf " +
                              Csv(instance.values, instance.values.size()) +
                              "\n"));
  EXPECT_EQ(RecvLine(fd), "OK " + std::to_string(expected));

  ASSERT_TRUE(SendAll(fd, "QUIT\n"));
  EXPECT_EQ(RecvLine(fd), "OK bye");
  char extra = 0;
  EXPECT_EQ(::recv(fd, &extra, 1, 0), 0) << "connection must close on QUIT";
  ::close(fd);
}

TEST(FrontEndE2E, PipelinedTextResponsesKeepRequestOrder) {
  Harness harness(1);
  ASSERT_TRUE(harness.Start());
  const int fd = ConnectTcp(harness.port());
  ASSERT_GE(fd, 0);

  // CLASSIFY answers asynchronously (batching dispatcher); MODELS and
  // STREAMS answer inline. The wire order must still match the request
  // order: the front end re-sequences per connection.
  const auto& instance = Fixture().split.test.instances()[0];
  const std::string csv = Csv(instance.values, instance.values.size());
  ASSERT_TRUE(SendAll(fd, "CLASSIFY cbf " + csv + "\nMODELS\nCLASSIFY cbf " +
                              csv + "\nSTREAMS\n"));
  const std::string r1 = RecvLine(fd);
  const std::string r2 = RecvLine(fd);
  const std::string r3 = RecvLine(fd);
  const std::string r4 = RecvLine(fd);
  EXPECT_EQ(r1.rfind("OK ", 0), 0u) << r1;
  EXPECT_NE(r1, "OK 1 cbf");  // a label, not the MODELS response
  EXPECT_EQ(r2, "OK 1 cbf");
  EXPECT_EQ(r3, r1);  // same input, same label
  EXPECT_EQ(r4, "OK 0");
  ::close(fd);
}

TEST(FrontEndE2E, HalfCloseStillAnswersPipelinedText) {
  // The documented quickstart shape: pipeline requests, then shut down
  // the write side (printf ... | nc -N). Read-EOF is a half-close, not
  // an abort — every buffered request is answered (including the async
  // CLASSIFY path) before the server closes.
  Harness harness(1);
  ASSERT_TRUE(harness.Start());
  const int fd = ConnectTcp(harness.port());
  ASSERT_GE(fd, 0);

  const auto& instance = Fixture().split.test.instances()[0];
  const int expected =
      harness.server.Classify("cbf", ts::Series(instance.values)).label;
  ASSERT_TRUE(SendAll(fd, "CLASSIFY cbf " +
                              Csv(instance.values, instance.values.size()) +
                              "\nMODELS\nSTREAMS\n"));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);

  EXPECT_EQ(RecvLine(fd), "OK " + std::to_string(expected));
  EXPECT_EQ(RecvLine(fd), "OK 1 cbf");
  EXPECT_EQ(RecvLine(fd), "OK 0");
  char extra = 0;
  EXPECT_EQ(::recv(fd, &extra, 1, 0), 0)
      << "connection must close after the last response";
  ::close(fd);
}

TEST(FrontEndE2E, HalfCloseStillAnswersPipelinedBinary) {
  Harness harness(1);
  ASSERT_TRUE(harness.Start());
  const int fd = ConnectTcp(harness.port());
  ASSERT_GE(fd, 0);
  std::string hello(net::kBinaryMagic, sizeof(net::kBinaryMagic));
  ASSERT_TRUE(SendAll(fd, hello + Req(BinaryVerb::kModels) +
                              Req(BinaryVerb::kStats)));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);

  Frame frame;
  ASSERT_TRUE(RecvFrame(fd, &frame));
  EXPECT_EQ(frame.verb, std::uint8_t(BinaryVerb::kModels));
  EXPECT_EQ(frame.status, std::uint8_t(WireStatus::kOk));
  ASSERT_TRUE(RecvFrame(fd, &frame));
  EXPECT_EQ(frame.verb, std::uint8_t(BinaryVerb::kStats));
  ASSERT_EQ(frame.status, std::uint8_t(WireStatus::kOk));
  // STATS bodies are blobs (u32 length): decode and sanity-check.
  PayloadReader reader(frame.payload);
  std::string json;
  ASSERT_TRUE(reader.Blob(&json));
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(json.rfind("{", 0), 0u) << json;
  char extra = 0;
  EXPECT_EQ(::recv(fd, &extra, 1, 0), 0)
      << "connection must close after the last response";
  ::close(fd);
}

TEST(FrontEndE2E, BinaryMetricsBodySurvivesTheStrBound) {
  // METRICS exposition grows with shard count and can exceed 64 KiB;
  // the blob encoding must carry it intact (one frame, length == body).
  Harness harness(4);
  ASSERT_TRUE(harness.Start());
  const int fd = ConnectTcp(harness.port());
  ASSERT_GE(fd, 0);
  std::string hello(net::kBinaryMagic, sizeof(net::kBinaryMagic));
  ASSERT_TRUE(SendAll(fd, hello + Req(BinaryVerb::kMetrics)));
  Frame frame;
  ASSERT_TRUE(RecvFrame(fd, &frame));
  ASSERT_EQ(frame.status, std::uint8_t(WireStatus::kOk));
  PayloadReader reader(frame.payload);
  std::string text;
  ASSERT_TRUE(reader.Blob(&text));
  EXPECT_TRUE(reader.AtEnd()) << "payload is exactly one blob";
  EXPECT_NE(text.find("# EOF"), std::string::npos)
      << "exposition must arrive complete, terminator included";
  ::close(fd);
}

TEST(FrontEndE2E, BinaryProtocolFullStreamLifecycle) {
  Harness harness(2);
  ASSERT_TRUE(harness.Start());
  const int fd = ConnectTcp(harness.port());
  ASSERT_GE(fd, 0);

  // Codec negotiation: the 4-byte magic selects binary framing.
  std::string hello(net::kBinaryMagic, sizeof(net::kBinaryMagic));
  ASSERT_TRUE(SendAll(fd, hello));

  // MODELS
  ASSERT_TRUE(SendAll(fd, Req(BinaryVerb::kModels)));
  Frame frame;
  ASSERT_TRUE(RecvFrame(fd, &frame));
  EXPECT_EQ(frame.verb, std::uint8_t(BinaryVerb::kModels));
  ASSERT_EQ(frame.status, std::uint8_t(WireStatus::kOk));
  {
    PayloadReader reader(frame.payload);
    std::uint32_t count = 0;
    std::string name;
    ASSERT_TRUE(reader.U32(&count));
    ASSERT_EQ(count, 1u);
    ASSERT_TRUE(reader.Str(&name));
    EXPECT_EQ(name, "cbf");
  }

  // CLASSIFY
  const auto& instance = Fixture().split.test.instances()[0];
  const int expected =
      harness.server.Classify("cbf", ts::Series(instance.values)).label;
  {
    std::string payload;
    PayloadWriter writer(&payload);
    writer.Str("cbf");
    writer.U32(5000);  // timeout ms
    writer.F64Array(instance.values.data(), instance.values.size());
    ASSERT_TRUE(SendAll(fd, Req(BinaryVerb::kClassify, payload)));
    ASSERT_TRUE(RecvFrame(fd, &frame));
    ASSERT_EQ(frame.status, std::uint8_t(WireStatus::kOk));
    PayloadReader reader(frame.payload);
    std::int32_t label = 0;
    ASSERT_TRUE(reader.I32(&label));
    EXPECT_EQ(label, expected);
  }

  // STREAM_OPEN -> STREAM_FEED -> STREAM_CLOSE
  std::string stream_id;
  {
    std::string payload;
    PayloadWriter writer(&payload);
    writer.Str("cbf");
    writer.U32(96);  // window
    writer.U32(17);  // hop
    writer.F64(0.0);
    writer.F64(0.0);
    ASSERT_TRUE(SendAll(fd, Req(BinaryVerb::kStreamOpen, payload)));
    ASSERT_TRUE(RecvFrame(fd, &frame));
    ASSERT_EQ(frame.status, std::uint8_t(WireStatus::kOk));
    PayloadReader reader(frame.payload);
    std::uint32_t window = 0;
    std::uint32_t hop = 0;
    ASSERT_TRUE(reader.Str(&stream_id));
    ASSERT_TRUE(reader.U32(&window));
    ASSERT_TRUE(reader.U32(&hop));
    EXPECT_EQ(window, 96u);
    EXPECT_EQ(hop, 17u);
  }
  const std::vector<double> feed = MakeFeed(3, 2024);
  std::uint64_t decisions_seen = 0;
  {
    std::string payload;
    PayloadWriter writer(&payload);
    writer.Str(stream_id);
    writer.F64Array(feed.data(), feed.size());
    ASSERT_TRUE(SendAll(fd, Req(BinaryVerb::kStreamFeed, payload)));
    ASSERT_TRUE(RecvFrame(fd, &frame));
    ASSERT_EQ(frame.status, std::uint8_t(WireStatus::kOk));
    PayloadReader reader(frame.payload);
    std::uint32_t accepted = 0;
    std::uint32_t count = 0;
    ASSERT_TRUE(reader.U32(&accepted));
    ASSERT_TRUE(reader.U32(&count));
    EXPECT_GT(accepted, 0u);
    decisions_seen = count;
    for (std::uint32_t k = 0; k < count; ++k) {
      std::uint64_t index = 0;
      std::int32_t label = 0;
      double margin = 0.0;
      std::uint8_t early = 0;
      ASSERT_TRUE(reader.U64(&index));
      ASSERT_TRUE(reader.I32(&label));
      ASSERT_TRUE(reader.F64(&margin));
      ASSERT_TRUE(reader.U8(&early));
      EXPECT_EQ(index, k);
    }
    EXPECT_TRUE(reader.AtEnd());
  }
  {
    std::string payload;
    PayloadWriter writer(&payload);
    writer.Str(stream_id);
    ASSERT_TRUE(SendAll(fd, Req(BinaryVerb::kStreamClose, payload)));
    ASSERT_TRUE(RecvFrame(fd, &frame));
    ASSERT_EQ(frame.status, std::uint8_t(WireStatus::kOk));
    PayloadReader reader(frame.payload);
    std::uint64_t samples = 0;
    std::uint64_t windows = 0;
    std::uint64_t decisions = 0;
    std::uint64_t early = 0;
    ASSERT_TRUE(reader.U64(&samples));
    ASSERT_TRUE(reader.U64(&windows));
    ASSERT_TRUE(reader.U64(&decisions));
    ASSERT_TRUE(reader.U64(&early));
    EXPECT_EQ(decisions, decisions_seen);
  }

  // QUIT closes after the response frame.
  ASSERT_TRUE(SendAll(fd, Req(BinaryVerb::kQuit)));
  ASSERT_TRUE(RecvFrame(fd, &frame));
  EXPECT_EQ(frame.status, std::uint8_t(WireStatus::kOk));
  char extra = 0;
  EXPECT_EQ(::recv(fd, &extra, 1, 0), 0);
  ::close(fd);
}

TEST(FrontEndE2E, MixedCodecsOnConcurrentConnections) {
  Harness harness(2);
  ASSERT_TRUE(harness.Start());
  const int text_fd = ConnectTcp(harness.port());
  const int bin_fd = ConnectTcp(harness.port());
  ASSERT_GE(text_fd, 0);
  ASSERT_GE(bin_fd, 0);

  std::string hello(net::kBinaryMagic, sizeof(net::kBinaryMagic));
  ASSERT_TRUE(SendAll(bin_fd, hello + Req(BinaryVerb::kModels)));
  ASSERT_TRUE(SendAll(text_fd, "MODELS\n"));

  EXPECT_EQ(RecvLine(text_fd), "OK 1 cbf");
  Frame frame;
  ASSERT_TRUE(RecvFrame(bin_fd, &frame));
  EXPECT_EQ(frame.status, std::uint8_t(WireStatus::kOk));
  ::close(text_fd);
  ::close(bin_fd);
}

TEST(FrontEndE2E, OversizedLineAnswersErrorAndRecovers) {
  net::FrontEndOptions net_options;
  net_options.max_line = 64;
  Harness harness(1, net_options);
  ASSERT_TRUE(harness.Start());
  const int fd = ConnectTcp(harness.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, std::string(200, 'a') + "\nMODELS\n"));
  EXPECT_EQ(RecvLine(fd), "ERR BAD_REQUEST line exceeds 64 bytes");
  EXPECT_EQ(RecvLine(fd), "OK 1 cbf") << "connection must stay usable";
  ::close(fd);
}

TEST(FrontEndE2E, OversizedFrameAnswersErrorAndRecovers) {
  net::FrontEndOptions net_options;
  net_options.max_frame_payload = 64;
  Harness harness(1, net_options);
  ASSERT_TRUE(harness.Start());
  const int fd = ConnectTcp(harness.port());
  ASSERT_GE(fd, 0);
  std::string hello(net::kBinaryMagic, sizeof(net::kBinaryMagic));
  ASSERT_TRUE(SendAll(
      fd, hello + Req(BinaryVerb::kClassify, std::string(1000, 'x')) +
              Req(BinaryVerb::kModels)));
  Frame frame;
  ASSERT_TRUE(RecvFrame(fd, &frame));
  EXPECT_EQ(frame.status, std::uint8_t(WireStatus::kBadRequest));
  ASSERT_TRUE(RecvFrame(fd, &frame));
  EXPECT_EQ(frame.status, std::uint8_t(WireStatus::kOk))
      << "connection must stay usable after an oversized frame";
  ::close(fd);
}

TEST(FrontEndE2E, CorruptFrameAnswersErrorThenCloses) {
  Harness harness(1);
  ASSERT_TRUE(harness.Start());
  const int fd = ConnectTcp(harness.port());
  ASSERT_GE(fd, 0);
  std::string hello(net::kBinaryMagic, sizeof(net::kBinaryMagic));
  std::string bad = Req(BinaryVerb::kStats);
  bad[7] = 0x55;  // nonzero reserved byte: unrecoverable
  ASSERT_TRUE(SendAll(fd, hello + bad));
  Frame frame;
  ASSERT_TRUE(RecvFrame(fd, &frame));
  EXPECT_EQ(frame.status, std::uint8_t(WireStatus::kBadRequest));
  char extra = 0;
  EXPECT_EQ(::recv(fd, &extra, 1, 0), 0)
      << "corrupt framing must close the connection";
  ::close(fd);
}

TEST(FrontEndE2E, UnknownBinaryVerbAnswersBadRequest) {
  Harness harness(1);
  ASSERT_TRUE(harness.Start());
  const int fd = ConnectTcp(harness.port());
  ASSERT_GE(fd, 0);
  std::string hello(net::kBinaryMagic, sizeof(net::kBinaryMagic));
  ASSERT_TRUE(SendAll(fd, hello + net::EncodeFrame(0x7F, 0, "") +
                              Req(BinaryVerb::kModels)));
  Frame frame;
  ASSERT_TRUE(RecvFrame(fd, &frame));
  EXPECT_EQ(frame.status, std::uint8_t(WireStatus::kBadRequest));
  ASSERT_TRUE(RecvFrame(fd, &frame));
  EXPECT_EQ(frame.status, std::uint8_t(WireStatus::kOk));
  ::close(fd);
}

TEST(FrontEndE2E, TruncatedFrameNeverHangsTheShard) {
  Harness harness(1);
  ASSERT_TRUE(harness.Start());
  // A client that sends half a header and disappears...
  const int fd1 = ConnectTcp(harness.port());
  ASSERT_GE(fd1, 0);
  std::string hello(net::kBinaryMagic, sizeof(net::kBinaryMagic));
  ASSERT_TRUE(SendAll(fd1, hello + std::string("\x20\x00", 2)));
  ::close(fd1);
  // ...must not wedge the shard for the next client.
  const int fd2 = ConnectTcp(harness.port());
  ASSERT_GE(fd2, 0);
  ASSERT_TRUE(SendAll(fd2, "MODELS\n"));
  EXPECT_EQ(RecvLine(fd2), "OK 1 cbf");
  ::close(fd2);
}

TEST(FrontEndE2E, GracefulStopDrainsSessionsAndAccountsExactly) {
  auto harness = std::make_unique<Harness>(4);
  ASSERT_TRUE(harness->Start());
  // Open a session over the wire on each of several connections.
  std::vector<int> fds;
  for (int i = 0; i < 4; ++i) {
    const int fd = ConnectTcp(harness->port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(SendAll(fd, "STREAM_OPEN cbf 64 64\n"));
    const std::string resp = RecvLine(fd);
    ASSERT_EQ(resp.rfind("OK stream ", 0), 0u) << resp;
    fds.push_back(fd);
  }
  ASSERT_EQ(harness->server.Stats().streams_opened, 4u);

  harness->front_end->Stop();
  harness->server.Shutdown();
  // Every connection sees EOF; no response is lost mid-write.
  for (const int fd : fds) {
    char extra = 0;
    EXPECT_LE(::recv(fd, &extra, 1, 0), 0);
    ::close(fd);
  }
  const auto stats = harness->server.Stats();
  EXPECT_EQ(stats.streams_opened,
            stats.streams_closed + stats.streams_evicted)
      << "graceful stop must close every session exactly once";
  EXPECT_EQ(harness->front_end->connections(), 0u);
}

TEST(FrontEndE2E, ConnectionsSpreadAcrossShards) {
  Harness harness(4);
  ASSERT_TRUE(harness.Start());
  // Many connections from distinct source ports: the ring should light
  // up more than one shard (statistically certain with 64 conns).
  std::vector<int> fds;
  for (int i = 0; i < 64; ++i) {
    const int fd = ConnectTcp(harness.port());
    ASSERT_GE(fd, 0);
    fds.push_back(fd);
  }
  // Prove liveness on every connection, then count shard gauges.
  for (const int fd : fds) {
    ASSERT_TRUE(SendAll(fd, "STREAMS\n"));
    ASSERT_EQ(RecvLine(fd), "OK 0");
  }
  const auto snapshot = harness.server.metrics().Snapshot();
  int shards_used = 0;
  for (int s = 0; s < 4; ++s) {
    if (snapshot.Count("rpm_net_accepted_total",
                       {{"shard", std::to_string(s)}}) > 0) {
      ++shards_used;
    }
  }
  EXPECT_GT(shards_used, 1) << "all 64 connections landed on one shard";
  EXPECT_EQ(harness.front_end->connections(), 64u);
  for (const int fd : fds) ::close(fd);
}

TEST(FrontEndE2E, BackpressureDrainsAllPipelinedResponses) {
  // Shrink the outbound buffer so a burst of pipelined METRICS bodies
  // (several KiB each) trips the backpressure threshold: the shard must
  // pause reads, flush, resume below the low-water mark, and still
  // deliver every response in request order — no drops, no reorders.
  net::FrontEndOptions net_options;
  net_options.max_out_buffer = 1024;
  Harness harness(1, net_options);
  ASSERT_TRUE(harness.Start());
  const int fd = ConnectTcp(harness.port());
  ASSERT_GE(fd, 0);

  constexpr int kBursts = 50;
  std::string burst;
  for (int i = 0; i < kBursts; ++i) burst += "METRICS\nSTREAMS\n";
  ASSERT_TRUE(SendAll(fd, burst));

  for (int i = 0; i < kBursts; ++i) {
    // Each METRICS response is "OK metrics", an OpenMetrics body, and a
    // closing "# EOF" line; the pipelined STREAMS reply follows it.
    ASSERT_EQ(RecvLine(fd), "OK metrics") << "burst " << i;
    std::string line = RecvLine(fd);
    int body_lines = 0;
    while (line != "# EOF") {
      ++body_lines;
      ASSERT_LT(body_lines, 10000) << "burst " << i << ": runaway body";
      line = RecvLine(fd);
    }
    EXPECT_GT(body_lines, 0) << "burst " << i << ": empty METRICS body";
    EXPECT_EQ(RecvLine(fd), "OK 0") << "burst " << i;  // the STREAMS reply
  }
  ::close(fd);
}

}  // namespace
}  // namespace rpm
