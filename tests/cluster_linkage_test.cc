// Golden equivalence tests for the Lance-Williams complete-linkage
// agglomeration against the naive O(n^3) reference, plus the
// matrix-slicing IterativeSplit path and its thread-pool interaction.
// These carry the `training` ctest label and run under TSan via
// scripts/tsan_check.sh.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "cluster/hierarchical.h"
#include "distance/euclidean.h"
#include "ts/parallel.h"
#include "ts/rng.h"

namespace rpm::cluster {
namespace {

std::vector<ts::Series> RandomItems(std::size_t n, std::size_t dim,
                                    std::uint64_t seed,
                                    double cluster_spread = 0.0) {
  ts::Rng rng(seed);
  std::vector<ts::Series> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ts::Series s(dim);
    // Optionally place points near one of four centers so dendrograms
    // have meaningful structure (pure noise merges are tie-heavy too,
    // which is exactly what the tie-break equivalence needs).
    const double center =
        cluster_spread * static_cast<double>(i % 4);
    for (auto& v : s) v = center + rng.Gaussian(0.0, 1.0);
    items.push_back(std::move(s));
  }
  return items;
}

TEST(LanceWilliams, MatchesNaiveCutOnRandomInputs) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const std::size_t n = 3 + static_cast<std::size_t>(seed * 7 % 40);
    const auto items = RandomItems(n, 4, seed, seed % 3 == 0 ? 5.0 : 0.0);
    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                          n / 2, n}) {
      if (k == 0) continue;
      EXPECT_EQ(CompleteLinkageCut(items, k),
                CompleteLinkageCutNaive(items, k))
          << "seed=" << seed << " n=" << n << " k=" << k;
    }
  }
}

TEST(LanceWilliams, MatchesNaiveWithDuplicatePoints) {
  // Exact duplicates force zero-distance ties; the incremental path must
  // break them in the same scan order as the reference.
  std::vector<ts::Series> items = {{0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0},
                                   {5.0, 5.0}, {5.0, 5.0}, {9.0, 0.0}};
  for (std::size_t k = 1; k <= items.size(); ++k) {
    EXPECT_EQ(CompleteLinkageCut(items, k),
              CompleteLinkageCutNaive(items, k))
        << "k=" << k;
  }
}

TEST(LanceWilliams, MergeTreeIsDeterministicAndOrdered) {
  const auto items = RandomItems(24, 3, 99);
  std::vector<double> dist = PairwiseDistanceMatrix(items);
  std::vector<double> dist2 = dist;
  const AgglomerationResult a =
      CompleteLinkageAgglomerate(dist, items.size(), 1);
  const AgglomerationResult b =
      CompleteLinkageAgglomerate(dist2, items.size(), 1);
  EXPECT_EQ(a.merges, b.merges);
  ASSERT_EQ(a.merges.size(), items.size() - 1);
  for (const Merge& m : a.merges) {
    EXPECT_LT(m.a, m.b);  // later slot always folds into the earlier one
    EXPECT_GE(m.height, 0.0);
  }
  // A full agglomeration ends in one cluster.
  for (int id : a.assignment) EXPECT_EQ(id, 0);
}

TEST(LanceWilliams, MergeHeightsAreMonotoneForCompleteLinkage) {
  // Complete linkage cannot produce dendrogram inversions.
  const auto items = RandomItems(30, 5, 7);
  std::vector<double> dist = PairwiseDistanceMatrix(items);
  const AgglomerationResult r =
      CompleteLinkageAgglomerate(dist, items.size(), 1);
  for (std::size_t i = 1; i < r.merges.size(); ++i) {
    EXPECT_GE(r.merges[i].height, r.merges[i - 1].height);
  }
}

TEST(MaxIntraDistance, MatchesPairwiseScan) {
  const auto items = RandomItems(12, 4, 5);
  const std::vector<double> dist = PairwiseDistanceMatrix(items);
  const std::vector<std::size_t> group = {0, 3, 5, 11};
  double expected = 0.0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    for (std::size_t j = i + 1; j < group.size(); ++j) {
      expected = std::max(
          expected, distance::Euclidean(items[group[i]], items[group[j]]));
    }
  }
  EXPECT_DOUBLE_EQ(MaxIntraDistance(dist, items.size(), group), expected);
  EXPECT_DOUBLE_EQ(MaxIntraDistance(dist, items.size(), {2}), 0.0);
}

TEST(IterativeSplitMatrix, GroupsMatchMatrixFreeApi) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const auto items = RandomItems(40, 4, seed, 6.0);
    const SplitResult with = IterativeSplitWithMatrix(items);
    EXPECT_EQ(with.groups, IterativeSplit(items));
    ASSERT_EQ(with.matrix.size(), items.size() * items.size());
    // The returned matrix is the plain pairwise matrix.
    EXPECT_EQ(with.matrix, PairwiseDistanceMatrix(items));
  }
}

TEST(IterativeSplitMatrix, ThreadedMatrixIsIdentical) {
  const auto items = RandomItems(60, 6, 21, 4.0);
  const std::vector<double> seq = PairwiseDistanceMatrix(items, 1);
  const std::vector<double> par = PairwiseDistanceMatrix(items, 8);
  EXPECT_EQ(seq, par);
  SplitOptions opt;
  opt.num_threads = 8;
  SplitOptions seq_opt;
  EXPECT_EQ(IterativeSplit(items, opt), IterativeSplit(items, seq_opt));
}

TEST(IterativeSplitMatrix, ConcurrentSplitsOnPoolAreIndependent) {
  // Many IterativeSplit calls in flight on the shared pool (the shape of
  // per-motif refinement inside candidate mining) must not interfere.
  const auto items = RandomItems(30, 4, 33, 5.0);
  const auto expected = IterativeSplit(items);
  std::vector<std::vector<std::vector<std::size_t>>> out(16);
  ts::ParallelFor(out.size(), 8, [&](std::size_t i) {
    out[i] = IterativeSplit(items);
  });
  for (const auto& got : out) EXPECT_EQ(got, expected);
}

TEST(Medoid, MatrixVariantMatchesDirect) {
  const auto items = RandomItems(15, 3, 44);
  const std::vector<double> dist = PairwiseDistanceMatrix(items);
  EXPECT_EQ(MedoidIndexFromMatrix(dist, items.size()), MedoidIndex(items));
}

}  // namespace
}  // namespace rpm::cluster
