// Golden cross-tier tests for the length-bucketed SoA pattern store
// (distance/pattern_store.h) and the runtime ISA dispatcher
// (distance/isa_dispatch.h): every compiled tier must produce
// bit-identical best-match positions AND distances — the invariant that
// lets the dispatcher change speed without ever changing output.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "distance/euclidean.h"
#include "distance/isa_dispatch.h"
#include "distance/matcher.h"
#include "distance/pattern_store.h"
#include "ts/rng.h"
#include "ts/series.h"
#include "ts/znorm.h"

namespace rpm {
namespace {

ts::Series RandomWalk(std::size_t n, std::uint64_t seed) {
  ts::Rng rng(seed);
  ts::Series s(n);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v += rng.Gaussian(0.0, 1.0);
    s[i] = v;
  }
  return s;
}

ts::Series ZNormalizedPattern(std::size_t n, std::uint64_t seed) {
  ts::Series p = RandomWalk(n, seed);
  ts::ZNormalizeInPlace(p);
  return p;
}

// Every tier this build + host can actually run (scalar is always there).
std::vector<distance::IsaTier> AvailableTiers() {
  std::vector<distance::IsaTier> tiers;
  for (distance::IsaTier t :
       {distance::IsaTier::kScalar, distance::IsaTier::kAvx2,
        distance::IsaTier::kAvx512}) {
    if (distance::IsaTierAvailable(t)) tiers.push_back(t);
  }
  return tiers;
}

// Restores the startup tier even when an assertion fails mid-test.
struct TierGuard {
  ~TierGuard() { distance::ResetIsaTier(); }
};

// The golden sweep: one pattern per length 2..512 — every bucket size,
// every padded-tail residue (n mod 8), odd and even lengths, lengths
// around the unrolled-dot boundary (n/4 <= 16 ~ n = 64..67), and
// patterns longer than the series (sentinel slots mid-batch). The
// scalar-tier per-pattern scan is the reference; every tier's MatchAll
// through the SoA store must reproduce it bit for bit.
TEST(PatternStoreGolden, AllTiersBitIdenticalAcrossLengths2To512) {
  constexpr std::size_t kSeriesLen = 400;  // < 512: long patterns go sentinel
  const ts::Series hay = RandomWalk(kSeriesLen, 42);
  const distance::SeriesContext ctx(hay);

  distance::BatchMatcher matcher;
  for (std::size_t n = 2; n <= 512; ++n) {
    matcher.Add(ZNormalizedPattern(n, 1000 + n));
  }

  TierGuard guard;

  // Reference: forced-scalar per-pattern scans.
  distance::ForceIsaTier(distance::IsaTier::kScalar);
  std::vector<distance::BestMatch> reference;
  reference.reserve(matcher.size());
  for (std::size_t i = 0; i < matcher.size(); ++i) {
    reference.push_back(matcher.Match(i, ctx));
  }

  for (distance::IsaTier tier : AvailableTiers()) {
    distance::ForceIsaTier(tier);
    SCOPED_TRACE(distance::IsaTierName(distance::CurrentIsaTier()));

    distance::MatchScratch scratch;
    std::vector<distance::BestMatch> got;
    matcher.MatchAll(ctx, &scratch, &got);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      SCOPED_TRACE("pattern length " + std::to_string(i + 2));
      EXPECT_EQ(got[i].position, reference[i].position);
      // Bit-identical, not approximately equal: EXPECT_EQ on doubles.
      EXPECT_EQ(got[i].distance, reference[i].distance);
    }
    // Patterns longer than the series must be the explicit sentinel.
    for (std::size_t i = kSeriesLen - 1; i < got.size(); ++i) {
      EXPECT_FALSE(got[i].found());
      EXPECT_EQ(got[i].distance, std::numeric_limits<double>::infinity());
    }

    // The per-pattern scan under the same tier must agree too (it shares
    // the dot kernels and re-gate discipline, not the window-major loop).
    for (std::size_t i = 0; i < matcher.size(); i += 37) {
      const distance::BestMatch per_call = matcher.Match(i, ctx);
      EXPECT_EQ(per_call.position, reference[i].position);
      EXPECT_EQ(per_call.distance, reference[i].distance);
    }
  }
}

// Many same-length patterns per bucket (the moment-sharing case) plus
// mixed lengths and degenerate entries mid-batch.
TEST(PatternStoreGolden, MixedBucketsWithSentinelsMatchPerPatternScan) {
  const ts::Series hay = RandomWalk(256, 7);
  const distance::SeriesContext ctx(hay);

  distance::BatchMatcher matcher;
  for (int rep = 0; rep < 6; ++rep) {
    matcher.Add(ZNormalizedPattern(16, 50 + static_cast<std::uint64_t>(rep)));
  }
  matcher.Add(ts::Series{});                    // empty -> sentinel
  matcher.Add(ZNormalizedPattern(1, 60));       // single-point special case
  matcher.Add(ZNormalizedPattern(300, 61));     // longer than hay -> sentinel
  for (int rep = 0; rep < 4; ++rep) {
    matcher.Add(ZNormalizedPattern(33, 70 + static_cast<std::uint64_t>(rep)));
  }

  TierGuard guard;
  for (distance::IsaTier tier : AvailableTiers()) {
    distance::ForceIsaTier(tier);
    SCOPED_TRACE(distance::IsaTierName(distance::CurrentIsaTier()));
    const std::vector<distance::BestMatch> got = matcher.MatchAll(ctx);
    ASSERT_EQ(got.size(), matcher.size());
    for (std::size_t i = 0; i < matcher.size(); ++i) {
      const distance::BestMatch want =
          distance::BatchedBestMatch(matcher.pattern(i), ctx);
      EXPECT_EQ(got[i].position, want.position) << "pattern " << i;
      EXPECT_EQ(got[i].distance, want.distance) << "pattern " << i;
    }
  }
}

// One scratch across series of different lengths: buffers must re-size
// and never leak state from the previous series.
TEST(PatternStoreGolden, ScratchReuseAcrossSeries) {
  distance::BatchMatcher matcher;
  for (std::size_t n : {8u, 8u, 21u, 64u, 130u}) {
    matcher.Add(ZNormalizedPattern(n, 900 + n));
  }
  distance::MatchScratch scratch;
  std::vector<distance::BestMatch> got;
  for (std::size_t m : {300u, 40u, 7u, 129u}) {
    const ts::Series hay = RandomWalk(m, 3000 + m);
    const distance::SeriesContext ctx(hay);
    matcher.MatchAll(ctx, &scratch, &got);
    ASSERT_EQ(got.size(), matcher.size());
    for (std::size_t i = 0; i < matcher.size(); ++i) {
      const distance::BestMatch want =
          distance::BatchedBestMatch(matcher.pattern(i), ctx);
      EXPECT_EQ(got[i].position, want.position)
          << "series " << m << " pattern " << i;
      EXPECT_EQ(got[i].distance, want.distance)
          << "series " << m << " pattern " << i;
    }
  }
}

TEST(PatternStoreLayout, BucketsAreLengthSortedAndPadded) {
  std::vector<ts::Series> patterns;
  for (std::size_t n : {33u, 5u, 8u, 33u, 5u, 512u, 1u}) {
    patterns.push_back(ZNormalizedPattern(n, n));
  }
  const distance::PatternStore store(patterns);
  EXPECT_EQ(store.size(), patterns.size());
  ASSERT_EQ(store.num_buckets(), 5u);  // lengths {1, 5, 8, 33, 512}
  std::size_t prev = 0;
  std::size_t total = 0;
  for (std::size_t b = 0; b < store.num_buckets(); ++b) {
    const auto info = store.bucket_info(b);
    EXPECT_GT(info.length, prev);  // strictly ascending, no duplicates
    prev = info.length;
    EXPECT_EQ(info.padded % 8, 0u);
    EXPECT_GE(info.padded, info.length);
    EXPECT_LT(info.padded - info.length, 8u);
    total += info.patterns;
  }
  EXPECT_EQ(total, patterns.size());
}

TEST(PatternStoreLayout, MatchBucketAgreesWithMatchAll) {
  std::vector<ts::Series> patterns;
  for (int rep = 0; rep < 5; ++rep) {
    patterns.push_back(
        ZNormalizedPattern(24, 400 + static_cast<std::uint64_t>(rep)));
  }
  const distance::PatternStore store(patterns);
  ASSERT_EQ(store.num_buckets(), 1u);
  const ts::Series hay = RandomWalk(200, 11);
  const distance::SeriesContext ctx(hay);

  distance::MatchScratch scratch;
  std::vector<distance::BestMatch> all;
  store.MatchAll(ctx, &scratch, &all);

  std::vector<distance::BestMatch> bucket(store.bucket_info(0).patterns);
  store.MatchBucket(0, ctx, bucket.data());
  ASSERT_EQ(bucket.size(), all.size());
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    EXPECT_EQ(bucket[i].position, all[i].position);
    EXPECT_EQ(bucket[i].distance, all[i].distance);
  }
}

// Seeded golden sweep: one pattern per length 2..512 plus degenerate
// entries, adversarial per-pattern seeds (0 prunes everything, +inf is
// the unseeded scan, the exact best distance sits on the strict-<
// boundary, one-ulp-above probes the other side of it). Every tier's
// MatchAllSeeded must reproduce the cutoff-seeded per-pattern scan bit
// for bit — found-ness, position and distance.
TEST(PatternStoreSeeded, MatchAllSeededBitIdenticalToSeededPerPatternScans) {
  constexpr std::size_t kSeriesLen = 400;  // < 512: long patterns go sentinel
  const ts::Series hay = RandomWalk(kSeriesLen, 21);
  const distance::SeriesContext ctx(hay);

  distance::BatchMatcher matcher;
  for (std::size_t n = 2; n <= 512; ++n) {
    matcher.Add(ZNormalizedPattern(n, 2000 + n));
  }
  matcher.Add(ts::Series{});               // empty -> sentinel
  matcher.Add(ZNormalizedPattern(1, 13));  // single-point special case

  // Unseeded best distances feed the boundary seeds below.
  TierGuard guard;
  distance::ForceIsaTier(distance::IsaTier::kScalar);
  std::vector<double> best(matcher.size());
  for (std::size_t i = 0; i < matcher.size(); ++i) {
    best[i] = matcher.Match(i, ctx).distance;  // +inf when unfound
  }

  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> seeds(matcher.size());
  for (std::size_t i = 0; i < matcher.size(); ++i) {
    switch (i % 4) {
      case 0: seeds[i] = 0.0; break;
      case 1: seeds[i] = inf; break;
      case 2: seeds[i] = best[i]; break;
      default:
        seeds[i] = std::isinf(best[i]) ? inf : std::nextafter(best[i], inf);
    }
  }

  for (distance::IsaTier tier : AvailableTiers()) {
    distance::ForceIsaTier(tier);
    SCOPED_TRACE(distance::IsaTierName(distance::CurrentIsaTier()));
    distance::MatchScratch scratch;
    std::vector<distance::BestMatch> got;
    matcher.MatchAllSeeded(ctx, &scratch, seeds, &got);
    ASSERT_EQ(got.size(), matcher.size());
    for (std::size_t i = 0; i < matcher.size(); ++i) {
      SCOPED_TRACE("pattern " + std::to_string(i));
      const distance::BestMatch want =
          distance::BatchedBestMatch(matcher.pattern(i), ctx, seeds[i]);
      EXPECT_EQ(got[i].position, want.position);
      EXPECT_EQ(got[i].distance, want.distance);
      // A zero seed admits nothing (every window distance is >= 0).
      if (i % 4 == 0) {
        EXPECT_FALSE(got[i].found());
      }
      // An infinite seed is exactly the unseeded scan.
      if (i % 4 == 1) {
        const distance::BestMatch plain = matcher.Match(i, ctx);
        EXPECT_EQ(got[i].position, plain.position);
        EXPECT_EQ(got[i].distance, plain.distance);
      }
    }
  }
}

// AnyBelow golden sweep: for taus spanning never / boundary / split /
// always, every tier's per-pattern decisions must equal the scalar-tier
// BatchedMatchBelow reference (decision identity AND tier invariance at
// once), and the aggregate mode must equal the OR of the flags.
TEST(PatternStoreSeeded, AnyBelowDecisionIdenticalToBatchedMatchBelow) {
  constexpr std::size_t kSeriesLen = 400;
  const ts::Series hay = RandomWalk(kSeriesLen, 77);
  const distance::SeriesContext ctx(hay);

  distance::BatchMatcher matcher;
  for (std::size_t n = 2; n <= 512; ++n) {
    matcher.Add(ZNormalizedPattern(n, 4000 + n));
  }
  matcher.Add(ts::Series{});               // empty -> decides false
  matcher.Add(ZNormalizedPattern(1, 17));  // single-point special case

  TierGuard guard;
  distance::ForceIsaTier(distance::IsaTier::kScalar);
  std::vector<double> finite_best;
  for (std::size_t i = 0; i < matcher.size(); ++i) {
    const double d = matcher.Match(i, ctx).distance;
    if (!std::isinf(d)) finite_best.push_back(d);
  }
  ASSERT_FALSE(finite_best.empty());
  std::sort(finite_best.begin(), finite_best.end());
  const double tau_mid = finite_best[finite_best.size() / 2];

  const double kTaus[] = {0.0, finite_best.front(), tau_mid,
                          std::numeric_limits<double>::infinity()};
  for (const double tau : kTaus) {
    SCOPED_TRACE("tau " + std::to_string(tau));
    // Scalar per-pattern reference decisions.
    distance::ForceIsaTier(distance::IsaTier::kScalar);
    std::vector<std::uint8_t> want(matcher.size());
    bool want_any = false;
    for (std::size_t i = 0; i < matcher.size(); ++i) {
      want[i] = distance::BatchedMatchBelow(matcher.pattern(i), ctx, tau)
                    ? 1
                    : 0;
      want_any = want_any || want[i] != 0;
    }

    for (distance::IsaTier tier : AvailableTiers()) {
      distance::ForceIsaTier(tier);
      SCOPED_TRACE(distance::IsaTierName(distance::CurrentIsaTier()));
      distance::MatchScratch scratch;
      std::vector<std::uint8_t> below;
      const bool any = matcher.AnyBelow(ctx, &scratch, tau, &below);
      ASSERT_EQ(below.size(), matcher.size());
      for (std::size_t i = 0; i < matcher.size(); ++i) {
        EXPECT_EQ(below[i], want[i]) << "pattern " << i;
      }
      EXPECT_EQ(any, want_any);
      // Aggregate mode (no flags out) must decide the same existence.
      EXPECT_EQ(matcher.AnyBelow(ctx, &scratch, tau), want_any);
    }
  }
}

TEST(IsaDispatch, ScalarAlwaysAvailableAndForceClampsUnavailable) {
  EXPECT_TRUE(distance::IsaTierAvailable(distance::IsaTier::kScalar));
  TierGuard guard;
  distance::ForceIsaTier(distance::IsaTier::kScalar);
  EXPECT_EQ(distance::CurrentIsaTier(), distance::IsaTier::kScalar);
  // Forcing any tier always lands on a runnable one.
  for (distance::IsaTier t :
       {distance::IsaTier::kAvx2, distance::IsaTier::kAvx512}) {
    distance::ForceIsaTier(t);
    EXPECT_TRUE(distance::IsaTierAvailable(distance::CurrentIsaTier()));
  }
}

}  // namespace
}  // namespace rpm
