// Tests for the grammar-driven fuzzing harness (src/fuzz): PRNG golden
// values and substream independence, plan-generation determinism, full
// event-log reproducibility (same seed, byte-identical event sequence),
// grammar verb coverage, bounded protocol and model-mutation fuzz runs
// under the three-fold oracle, regression replay of the checked-in
// corpus seeds, and handcrafted loader-hardening cases for the count
// bombs the mutation sweep discovered.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "fuzz/grammar.h"
#include "fuzz/harness.h"
#include "fuzz/mutator.h"
#include "fuzz/rng.h"
#include "ml/simple_classifiers.h"
#include "ml/svm.h"

namespace rpm {
namespace {

using fuzz::FailureReport;
using fuzz::FuzzHarness;
using fuzz::FuzzPlan;
using fuzz::SplitMix64;

// The harness trains its fixture once per process; share one instance
// across tests so the suite stays fast.
FuzzHarness& Harness() {
  static FuzzHarness* harness = new FuzzHarness();
  return *harness;
}

// ---- PRNG ----

TEST(SplitMix64Test, GoldenSequence) {
  // Reference values of the canonical splitmix64 from seed 1234567.
  SplitMix64 rng(1234567);
  EXPECT_EQ(rng.Next(), 6457827717110365317ULL);
  EXPECT_EQ(rng.Next(), 3203168211198807973ULL);
  EXPECT_EQ(rng.Next(), 9817491932198370423ULL);
}

TEST(SplitMix64Test, DeterministicAndSeedSensitive) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  SplitMix64 c(43);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    EXPECT_NE(va, c.Next());
  }
}

TEST(SplitMix64Test, ForkIsIndependentOfParentDraws) {
  // A fork must depend only on (seed, stream id), not on how many draws
  // the parent or sibling streams have made — the harness relies on this
  // to keep per-connection randomness from shifting across concerns.
  SplitMix64 a(99);
  SplitMix64 fork_before = a.Fork(7);
  for (int i = 0; i < 10; ++i) a.Next();
  SplitMix64 fork_after = SplitMix64(99).Fork(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fork_before.Next(), fork_after.Next());
  }
}

TEST(SplitMix64Test, RangeAndUnitBounds) {
  SplitMix64 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.Range(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
    const double u = rng.Unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

// ---- Grammar ----

TEST(FuzzGrammarTest, PlanGenerationIsDeterministic) {
  for (std::uint64_t seed : {1ULL, 77ULL, 0xDEADBEEFULL}) {
    const FuzzPlan a = fuzz::GenerateProtocolPlan(seed);
    const FuzzPlan b = fuzz::GenerateProtocolPlan(seed);
    EXPECT_EQ(fuzz::FormatPlan(a), fuzz::FormatPlan(b)) << "seed " << seed;
  }
}

TEST(FuzzGrammarTest, DistinctSeedsGiveDistinctPlans) {
  EXPECT_NE(fuzz::FormatPlan(fuzz::GenerateProtocolPlan(1)),
            fuzz::FormatPlan(fuzz::GenerateProtocolPlan(2)));
}

TEST(FuzzGrammarTest, CoversEveryVerbAcrossSeeds) {
  // The grammar must be able to produce every verb the serving surface
  // understands (scripts/docs_lint.sh pins the static source-level
  // coverage; this checks the generator actually rolls them).
  const char* const kVerbs[] = {"LOAD",        "UNLOAD",      "MODELS",
                                "CLASSIFY",    "STATS",       "METRICS",
                                "TRACE",       "STREAM_OPEN", "STREAM_FEED",
                                "STREAM_CLOSE", "STREAMS",    "QUIT"};
  std::set<std::string> seen;
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    for (const auto& conn : fuzz::GenerateProtocolPlan(seed).conns) {
      for (const auto& req : conn.requests) seen.insert(req.verb);
    }
  }
  for (const char* verb : kVerbs) {
    EXPECT_TRUE(seen.count(verb)) << "grammar never produced " << verb;
  }
}

TEST(FuzzGrammarTest, PlanGeometryStaysInBounds) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const FuzzPlan plan = fuzz::GenerateProtocolPlan(seed);
    EXPECT_GE(plan.shards, 1u);
    EXPECT_LE(plan.shards, 8u);
    EXPECT_FALSE(plan.conns.empty());
    EXPECT_LE(plan.conns.size(), 6u);
    for (const auto& conn : plan.conns) {
      EXPECT_FALSE(conn.requests.empty());
      EXPECT_LE(conn.requests.size(), 13u);  // 12 + appended QUIT
      if (conn.fault == fuzz::WireFault::kHeaderCorrupt) {
        EXPECT_TRUE(conn.binary);
      }
    }
  }
}

TEST(FuzzGrammarTest, TextAndBinaryEncodersAreDeterministic) {
  const FuzzPlan plan = fuzz::GenerateProtocolPlan(11);
  for (const auto& conn : plan.conns) {
    for (const auto& req : conn.requests) {
      EXPECT_EQ(fuzz::EncodeTextRequest(req, "s1"),
                fuzz::EncodeTextRequest(req, "s1"));
      EXPECT_EQ(fuzz::EncodeBinaryRequest(req, "s1"),
                fuzz::EncodeBinaryRequest(req, "s1"));
    }
  }
}

// ---- Mutator ----

TEST(FuzzMutatorTest, SplitFaultPreservesBytes) {
  SplitMix64 rng(3);
  const std::string bytes(1000, 'a');
  const auto segments =
      fuzz::ChunkBytes(bytes, fuzz::WireFault::kSplit, &rng);
  EXPECT_GT(segments.size(), 1u);
  std::string joined;
  for (const auto& s : segments) joined += s;
  EXPECT_EQ(joined, bytes);
}

TEST(FuzzMutatorTest, ModelMutationsAreDeterministic) {
  const std::string& base = Harness().model_text();
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SplitMix64 a(seed);
    SplitMix64 b(seed);
    EXPECT_EQ(fuzz::MutateModelText(base, &a),
              fuzz::MutateModelText(base, &b));
  }
}

// ---- Event-log reproducibility ----

TEST(FuzzHarnessTest, SameSeedSameEventLog) {
  FuzzHarness& harness = Harness();
  for (std::uint64_t seed : {3ULL, 8ULL, 21ULL}) {
    FailureReport first = harness.RunProtocolCase(seed);
    EXPECT_FALSE(first.failed) << first.what;
    const std::vector<std::string> events = harness.events();
    FailureReport second = harness.RunProtocolCase(seed);
    EXPECT_FALSE(second.failed) << second.what;
    EXPECT_EQ(events, harness.events()) << "seed " << seed;
  }
}

TEST(FuzzHarnessTest, ModelCaseEventLogIsReproducible) {
  FuzzHarness& harness = Harness();
  harness.RunModelCase(1234);
  const std::vector<std::string> events = harness.events();
  harness.RunModelCase(1234);
  EXPECT_EQ(events, harness.events());
}

// ---- Bounded fuzz runs under the oracle ----

TEST(FuzzHarnessTest, ProtocolSweepStaysClean) {
  FuzzHarness& harness = Harness();
  for (std::uint64_t seed = 500; seed < 520; ++seed) {
    const FailureReport report = harness.RunProtocolCase(seed);
    EXPECT_FALSE(report.failed)
        << "seed " << seed << ": " << report.what << "\n" << report.repro;
    if (report.failed) break;
  }
}

TEST(FuzzHarnessTest, ModelSweepStaysClean) {
  FuzzHarness& harness = Harness();
  for (std::uint64_t seed = 1; seed <= 2000; ++seed) {
    const FailureReport report = harness.RunModelCase(seed);
    EXPECT_FALSE(report.failed) << "seed " << seed << ": " << report.what;
    if (report.failed) break;
  }
}

TEST(FuzzHarnessTest, MinimizerPreservesSingleConnPlans) {
  // Minimizing a non-failing plan must return it unchanged (the greedy
  // loop only accepts candidates that still fail).
  FuzzHarness& harness = Harness();
  const FuzzPlan plan = fuzz::GenerateProtocolPlan(3);
  const FuzzPlan minimized = harness.MinimizeProtocolPlan(plan, 4);
  EXPECT_EQ(fuzz::FormatPlan(plan), fuzz::FormatPlan(minimized));
}

// ---- Corpus replay ----

TEST(FuzzCorpusTest, RegressionSeedsReplayClean) {
  const char* dir = std::getenv("RPM_FUZZ_CORPUS_DIR");
#ifdef RPM_FUZZ_CORPUS_DIR_DEFAULT
  if (dir == nullptr) dir = RPM_FUZZ_CORPUS_DIR_DEFAULT;
#endif
  ASSERT_NE(dir, nullptr) << "corpus directory not configured";
  // Tiny parser for the three-line seed format; mirrors rpm_fuzz
  // --replay.
  struct Entry {
    std::string mode;
    std::uint64_t seed;
  };
  std::vector<Entry> entries;
  const std::string listing = std::string(dir);
  // The corpus files are named in-tree; enumerate the known set so the
  // test fails loudly if one is deleted without updating this list.
  const char* const kSeeds[] = {
      "proto_disconnect_sigpipe.seed",
      "proto_disconnect_sigpipe_binary.seed",
      "proto_corrupt_open_pipeline.seed",
      "model_svm_count_bomb.seed",
      "model_svm_count_bomb_2.seed",
      "model_svm_sv_bomb.seed",
  };
  for (const char* name : kSeeds) {
    std::ifstream in(listing + "/" + name);
    ASSERT_TRUE(in.good()) << "missing corpus seed " << name;
    Entry entry{"protocol", 0};
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("mode=", 0) == 0) entry.mode = line.substr(5);
      if (line.rfind("seed=", 0) == 0) {
        entry.seed = std::strtoull(line.c_str() + 5, nullptr, 0);
      }
    }
    entries.push_back(entry);
  }
  FuzzHarness& harness = Harness();
  for (const auto& entry : entries) {
    const FailureReport report = entry.mode == "model"
                                     ? harness.RunModelCase(entry.seed)
                                     : harness.RunProtocolCase(entry.seed);
    EXPECT_FALSE(report.failed)
        << entry.mode << " seed " << entry.seed << ": " << report.what;
  }
}

// ---- Loader hardening (handcrafted count bombs) ----

TEST(LoaderHardeningTest, KnnCountBombThrowsInsteadOfHanging) {
  // An absurd row count with almost no data behind it used to spin the
  // read loop (stream failbit never broke the loop) — now rejected up
  // front by the entry cap.
  std::istringstream in("knn 3 99999999999 2\n1 0.5 0.5\n");
  ml::KnnFeatureClassifier clf(3);
  EXPECT_THROW(clf.Load(in), std::runtime_error);
}

TEST(LoaderHardeningTest, KnnFeatureBombThrows) {
  std::istringstream in("knn 3 1 4294967296\n1 0.5\n");
  ml::KnnFeatureClassifier clf(3);
  EXPECT_THROW(clf.Load(in), std::runtime_error);
}

TEST(LoaderHardeningTest, KnnTruncatedRowThrows) {
  std::istringstream in("knn 3 4 2\n1 0.5 0.5\n");
  ml::KnnFeatureClassifier clf(3);
  EXPECT_THROW(clf.Load(in), std::runtime_error);
}

TEST(LoaderHardeningTest, GnbCountBombThrows) {
  // classes_.assign(n, ...) with an attacker-controlled n was an
  // unbounded allocation.
  std::istringstream in("gnb 99999999999 2\n");
  ml::GaussianNaiveBayes clf;
  EXPECT_THROW(clf.Load(in), std::runtime_error);
}

TEST(LoaderHardeningTest, GnbFeatureBombThrows) {
  std::istringstream in("gnb 1 4294967296\n1 0.0\n");
  ml::GaussianNaiveBayes clf;
  EXPECT_THROW(clf.Load(in), std::runtime_error);
}

TEST(LoaderHardeningTest, SvmKernelOutOfRangeThrows) {
  // The kernel byte was cast to KernelKind unchecked.
  std::istringstream in("svm 42 1.0 0.5 -1\nmoments 2\n0 0 1 1\nmodels 0\n");
  ml::SvmClassifier clf;
  EXPECT_THROW(clf.Load(in), std::runtime_error);
}

TEST(LoaderHardeningTest, SvmMomentsBombThrows) {
  // The fuzz-discovered shape (corpus seed model_svm_count_bomb): the
  // moments count replaced by 2^32.
  std::istringstream in("svm 0 1.0 0.5 -1\nmoments 4294967296\n0 0\n");
  ml::SvmClassifier clf;
  EXPECT_THROW(clf.Load(in), std::runtime_error);
}

TEST(LoaderHardeningTest, SvmSupportVectorBombThrows) {
  std::istringstream in(
      "svm 0 1.0 0.5 -1\nmoments 2\n0 0 1 1\nmodels 1\n"
      "1 2 0.0 4294967296\n");
  ml::SvmClassifier clf;
  EXPECT_THROW(clf.Load(in), std::runtime_error);
}

TEST(LoaderHardeningTest, RpmModelZeroLengthPatternRejected) {
  // RpmClassifier::Load accepted zero-length patterns; every stored
  // pattern must carry at least one value.
  std::string text = Harness().model_text();
  const std::size_t at = text.find("patterns ");
  ASSERT_NE(at, std::string::npos);
  // Rewrite the first pattern header's length field to 0: the header is
  // "<label> <frequency> <len>" on the line after the section tag.
  std::istringstream scan(text.substr(at));
  std::string tag;
  std::size_t count = 0;
  int label = 0;
  double frequency = 0.0;
  std::size_t len = 0;
  scan >> tag >> count >> label >> frequency >> len;
  ASSERT_GT(len, 0u);
  const std::string needle = " " + std::to_string(len) + " ";
  const std::size_t len_at = text.find(needle, at);
  ASSERT_NE(len_at, std::string::npos);
  text = text.substr(0, len_at) + " 0 " + text.substr(len_at + needle.size());
  std::istringstream in(text);
  EXPECT_THROW(core::RpmClassifier::Load(in), std::runtime_error);
}

TEST(LoaderHardeningTest, MutatedFixtureNeverCrashesLoad) {
  // Direct mutation loop against Load without the harness wrapper, so a
  // failure pinpoints the loader rather than the scheduler.
  const std::string& base = Harness().model_text();
  for (std::uint64_t seed = 9000; seed < 9300; ++seed) {
    SplitMix64 rng(seed);
    const std::string mutated = fuzz::MutateModelText(base, &rng);
    std::istringstream in(mutated);
    try {
      core::RpmClassifier clf = core::RpmClassifier::Load(in);
      (void)clf;
    } catch (const std::exception&) {
      // rejection is the expected outcome for most mutations
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace rpm
