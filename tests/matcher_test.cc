// Tests for the batched matching engine (distance/matcher.h): context
// moments against the direct statistics, kernel equivalence with the
// legacy per-call scan, the explicit unfound sentinel, and the persistent
// thread pool underneath ts::ParallelFor.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "distance/euclidean.h"
#include "distance/matcher.h"
#include "ts/parallel.h"
#include "ts/rng.h"
#include "ts/znorm.h"

namespace rpm {
namespace {

ts::Series RandomWalk(std::size_t n, std::uint64_t seed) {
  ts::Rng rng(seed);
  ts::Series s(n);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v += rng.Gaussian(0.0, 1.0);
    s[i] = v;
  }
  return s;
}

ts::Series ZNormalizedPattern(std::size_t n, std::uint64_t seed) {
  ts::Series p = RandomWalk(n, seed);
  ts::ZNormalizeInPlace(p);
  return p;
}

// Brute-force reference: z-normalize every window explicitly and take the
// plain left-to-right squared sum.
distance::BestMatch BruteForceBestMatch(const ts::Series& pattern,
                                        const ts::Series& hay) {
  distance::BestMatch best;
  const std::size_t n = pattern.size();
  if (n == 0 || hay.size() < n) return best;
  double best_sq = std::numeric_limits<double>::infinity();
  for (std::size_t pos = 0; pos + n <= hay.size(); ++pos) {
    ts::Series window(hay.begin() + static_cast<std::ptrdiff_t>(pos),
                      hay.begin() + static_cast<std::ptrdiff_t>(pos + n));
    ts::ZNormalizeInPlace(window);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = window[i] - pattern[i];
      acc += d * d;
    }
    if (acc < best_sq) {
      best_sq = acc;
      best.position = pos;
    }
  }
  best.distance = std::sqrt(best_sq / static_cast<double>(n));
  return best;
}

TEST(SeriesContext, WindowMomentsMatchDirectStats) {
  const ts::Series s = RandomWalk(128, 7);
  const distance::SeriesContext ctx(s);
  for (std::size_t len : {1u, 2u, 5u, 32u, 128u}) {
    for (std::size_t pos = 0; pos + len <= s.size(); pos += 13) {
      double mu = 0.0;
      double inv_sigma = 0.0;
      ctx.WindowMoments(pos, len, &mu, &inv_sigma);
      const ts::SeriesView w(s.data() + pos, len);
      EXPECT_NEAR(mu, ts::Mean(w), 1e-9);
      const double sigma = ts::StdDev(w);
      if (sigma >= ts::kFlatThreshold) {
        EXPECT_NEAR(inv_sigma, 1.0 / sigma, 1e-6 * (1.0 / sigma));
      } else {
        EXPECT_EQ(inv_sigma, 1.0);
      }
    }
  }
}

TEST(SeriesContext, FlatWindowUsesUnitSigma) {
  const ts::Series flat(64, 3.25);
  const distance::SeriesContext ctx(flat);
  double mu = 0.0;
  double inv_sigma = 0.0;
  ctx.WindowMoments(10, 16, &mu, &inv_sigma);
  EXPECT_NEAR(mu, 3.25, 1e-12);
  EXPECT_EQ(inv_sigma, 1.0);
}

TEST(BatchedBestMatch, ExactlyEqualsFindBestMatch) {
  // FindBestMatch delegates to the batched kernel, so per-call and batched
  // paths must agree bit-for-bit.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const ts::Series hay = RandomWalk(200, seed);
    const ts::Series pattern = ZNormalizedPattern(8 + 7 * seed, 100 + seed);
    const distance::PatternContext pctx(pattern);
    const distance::SeriesContext sctx(hay);
    const distance::BestMatch batched = distance::BatchedBestMatch(pctx, sctx);
    const distance::BestMatch per_call = distance::FindBestMatch(pattern, hay);
    EXPECT_EQ(batched.position, per_call.position);
    EXPECT_EQ(batched.distance, per_call.distance);
  }
}

TEST(BatchedBestMatch, AgreesWithLegacyNaiveKernel) {
  // The pre-batching rolling-sum kernel computes the same quantity with a
  // different summation order, so distances agree to rounding and the
  // winning position is identical.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const ts::Series hay = RandomWalk(256, 10 * seed);
    const ts::Series pattern = ZNormalizedPattern(16 + 5 * seed, 999 + seed);
    const distance::PatternContext pctx(pattern);
    const distance::SeriesContext sctx(hay);
    const distance::BestMatch batched = distance::BatchedBestMatch(pctx, sctx);
    const distance::BestMatch naive =
        distance::FindBestMatchNaive(pattern, hay);
    EXPECT_EQ(batched.position, naive.position) << "seed " << seed;
    EXPECT_NEAR(batched.distance, naive.distance,
                1e-7 * (1.0 + naive.distance));
  }
}

TEST(BatchedBestMatch, AgreesWithBruteForceReference) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const ts::Series hay = RandomWalk(150, 20 + seed);
    const ts::Series pattern = ZNormalizedPattern(12, 40 + seed);
    const distance::PatternContext pctx(pattern);
    const distance::SeriesContext sctx(hay);
    const distance::BestMatch batched = distance::BatchedBestMatch(pctx, sctx);
    const distance::BestMatch brute = BruteForceBestMatch(pattern, hay);
    EXPECT_EQ(batched.position, brute.position) << "seed " << seed;
    EXPECT_NEAR(batched.distance, brute.distance,
                1e-7 * (1.0 + brute.distance));
  }
}

TEST(BatchedBestMatch, FlatSeriesMatchesLegacy) {
  // sigma ~ 0 windows exercise the mean-center-only rule.
  const ts::Series flat(100, 2.0);
  const ts::Series pattern = ZNormalizedPattern(16, 3);
  const distance::PatternContext pctx(pattern);
  const distance::SeriesContext sctx(flat);
  const distance::BestMatch batched = distance::BatchedBestMatch(pctx, sctx);
  const distance::BestMatch naive = distance::FindBestMatchNaive(pattern, flat);
  EXPECT_EQ(batched.position, naive.position);
  EXPECT_NEAR(batched.distance, naive.distance, 1e-7 * (1.0 + naive.distance));
  EXPECT_TRUE(batched.found());
}

TEST(BatchedBestMatch, SinglePointPattern) {
  const ts::Series hay = RandomWalk(50, 11);
  const ts::Series pattern{0.0};  // n == 1: first == last point
  const distance::PatternContext pctx(pattern);
  const distance::SeriesContext sctx(hay);
  const distance::BestMatch batched = distance::BatchedBestMatch(pctx, sctx);
  const distance::BestMatch naive = distance::FindBestMatchNaive(pattern, hay);
  EXPECT_EQ(batched.position, naive.position);
  EXPECT_NEAR(batched.distance, naive.distance, 1e-9);
}

TEST(BatchedBestMatch, PatternLongerThanSeriesIsExplicitSentinel) {
  const ts::Series hay = RandomWalk(10, 12);
  const ts::Series pattern = ZNormalizedPattern(32, 13);
  const distance::PatternContext pctx(pattern);
  const distance::SeriesContext sctx(hay);
  const distance::BestMatch m = distance::BatchedBestMatch(pctx, sctx);
  EXPECT_FALSE(m.found());
  EXPECT_TRUE(std::isinf(m.distance));
  // The legacy sqrt(inf * inv_n) artifact must not reappear: the distance
  // is a clean +inf, not a NaN.
  EXPECT_FALSE(std::isnan(m.distance));
}

TEST(BatchedBestMatch, EmptyPatternAndEmptyHaystack) {
  const ts::Series hay = RandomWalk(10, 14);
  const distance::PatternContext empty_pattern{};
  const distance::SeriesContext hay_ctx(hay);
  EXPECT_FALSE(distance::BatchedBestMatch(empty_pattern, hay_ctx).found());

  const ts::Series pattern = ZNormalizedPattern(8, 15);
  const distance::PatternContext pctx(pattern);
  const distance::SeriesContext empty_ctx{};
  EXPECT_FALSE(distance::BatchedBestMatch(pctx, empty_ctx).found());
}

TEST(BatchedMatchBelow, DecidesIdenticallyToUnseededScan) {
  // The existence test stops at the first sub-cutoff window; it must
  // nevertheless agree with `exact distance < cutoff` for cutoffs below,
  // at, and above the true best over many random instances.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const ts::Series hay = RandomWalk(180, 50 + seed);
    const ts::Series pattern = ZNormalizedPattern(6 + 3 * seed, 300 + seed);
    const distance::PatternContext pctx(pattern);
    const distance::SeriesContext sctx(hay);
    const double exact = distance::BatchedBestMatch(pctx, sctx).distance;
    for (double cutoff : {exact * 0.5, exact * 0.999, exact * 1.001,
                          exact * 2.0, 0.0, 1e6}) {
      EXPECT_EQ(distance::BatchedMatchBelow(pctx, sctx, cutoff),
                exact < cutoff)
          << "seed " << seed << " cutoff " << cutoff;
    }
    // At the exact boundary the decision must match the cutoff-seeded
    // best-match (same seed construction), whatever side of the ulp the
    // squared-space round trip lands on.
    EXPECT_EQ(distance::BatchedMatchBelow(pctx, sctx, exact),
              distance::BatchedBestMatch(pctx, sctx, exact).found())
        << "seed " << seed;
  }
}

TEST(BatchedMatchBelow, SentinelCasesNeverReportAMatch) {
  const ts::Series hay = RandomWalk(10, 60);
  const distance::SeriesContext hay_ctx(hay);
  const distance::PatternContext too_long(ZNormalizedPattern(32, 61));
  EXPECT_FALSE(distance::BatchedMatchBelow(too_long, hay_ctx, 1e9));
  const distance::PatternContext empty{};
  EXPECT_FALSE(distance::BatchedMatchBelow(empty, hay_ctx, 1e9));
  const double inf = std::numeric_limits<double>::infinity();
  const distance::PatternContext pctx(ZNormalizedPattern(4, 62));
  EXPECT_TRUE(distance::BatchedMatchBelow(pctx, hay_ctx, inf));
}

TEST(BatchMatcher, MatchAllHandlesMixedLengthsMidBatch) {
  // A too-long pattern in the middle of the batch must yield the sentinel
  // at its slot without disturbing its neighbours.
  const ts::Series hay = RandomWalk(64, 16);
  std::vector<ts::Series> patterns = {ZNormalizedPattern(8, 17),
                                      ZNormalizedPattern(128, 18),
                                      ZNormalizedPattern(16, 19)};
  const distance::BatchMatcher matcher(patterns);
  const distance::SeriesContext ctx(hay);
  const std::vector<distance::BestMatch> all = matcher.MatchAll(ctx);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_TRUE(all[0].found());
  EXPECT_FALSE(all[1].found());
  EXPECT_TRUE(all[2].found());
  EXPECT_EQ(all[0].position,
            distance::FindBestMatch(patterns[0], hay).position);
  EXPECT_EQ(all[2].position,
            distance::FindBestMatch(patterns[2], hay).position);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // The pool admits one job at a time; nested regions must execute inline
  // on the worker instead of deadlocking on a second submission.
  std::atomic<int> calls{0};
  ts::ParallelFor(8, 4, [&](std::size_t) {
    ts::ParallelFor(8, 4, [&](std::size_t) { calls.fetch_add(1); });
  });
  EXPECT_EQ(calls.load(), 64);
}

TEST(ThreadPool, LargeChunkedRangeCoversEveryIndexOnce) {
  constexpr std::size_t kN = 10007;  // prime: exercises ragged chunking
  std::vector<std::atomic<int>> hits(kN);
  ts::ParallelFor(kN, 8, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  // Back-to-back jobs on the persistent pool: no handle leaks, no stuck
  // workers, results always complete.
  for (int job = 0; job < 50; ++job) {
    std::atomic<int> sum{0};
    ts::ParallelFor(16, 3, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i));
    });
    ASSERT_EQ(sum.load(), 120);
  }
}

}  // namespace
}  // namespace rpm
