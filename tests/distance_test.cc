// Tests for the distance kernels: Euclidean variants, the best-match
// subsequence scan, DTW with bands, and the LB_Keogh lower bound
// (including the property LB_Keogh <= DTW on random data).

#include <gtest/gtest.h>

#include <cmath>

#include "distance/dtw.h"
#include "distance/euclidean.h"
#include "ts/rng.h"
#include "ts/znorm.h"

namespace rpm::distance {
namespace {

TEST(Euclidean, BasicValues) {
  const ts::Series a = {0.0, 0.0};
  const ts::Series b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredEuclidean(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Euclidean(a, b), 5.0);
  EXPECT_DOUBLE_EQ(NormalizedEuclidean(a, b), 5.0 / std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(Euclidean(a, a), 0.0);
}

TEST(Euclidean, EarlyAbandonMatchesFullWhenUnderCutoff) {
  const ts::Series a = {1.0, 2.0, 3.0};
  const ts::Series b = {2.0, 0.0, 3.5};
  const double full = SquaredEuclidean(a, b);
  EXPECT_DOUBLE_EQ(SquaredEuclideanEarlyAbandon(a, b, full + 1.0), full);
}

TEST(Euclidean, EarlyAbandonReturnsAtLeastCutoff) {
  const ts::Series a = {0.0, 0.0, 0.0, 0.0};
  const ts::Series b = {10.0, 10.0, 10.0, 10.0};
  EXPECT_GE(SquaredEuclideanEarlyAbandon(a, b, 50.0), 50.0);
}

TEST(BestMatch, FindsPlantedPattern) {
  // Haystack: noise with an exact (scaled+shifted) copy of the pattern at
  // position 20; z-normalized matching must find it with distance ~0.
  ts::Rng rng(3);
  ts::Series pattern = {0.0, 1.0, 2.0, 3.0, 2.0, 1.0, 0.0, -1.0};
  ts::ZNormalizeInPlace(pattern);
  ts::Series hay(60);
  for (auto& v : hay) v = rng.Gaussian(0.0, 0.3);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    hay[20 + i] = 5.0 + 2.0 * pattern[i];  // scaled + shifted copy
  }
  const BestMatch m = FindBestMatch(pattern, hay);
  ASSERT_TRUE(m.found());
  EXPECT_EQ(m.position, 20u);
  EXPECT_NEAR(m.distance, 0.0, 1e-9);
}

TEST(BestMatch, UnfoundWhenPatternLonger) {
  const ts::Series pattern(10, 1.0);
  const ts::Series hay(5, 1.0);
  const BestMatch m = FindBestMatch(pattern, hay);
  EXPECT_FALSE(m.found());
  EXPECT_TRUE(std::isinf(m.distance));
  EXPECT_TRUE(std::isinf(BestMatchDistance(pattern, hay)));
}

TEST(BestMatch, EmptyPatternUnfound) {
  EXPECT_FALSE(FindBestMatch(ts::Series{}, ts::Series{1.0, 2.0}).found());
}

TEST(BestMatch, HandlesFlatWindows) {
  ts::Series pattern = {1.0, -1.0, 1.0};
  ts::ZNormalizeInPlace(pattern);
  const ts::Series hay = {5.0, 5.0, 5.0, 5.0, 1.0, -1.0, 1.0};
  const BestMatch m = FindBestMatch(pattern, hay);
  ASSERT_TRUE(m.found());
  EXPECT_EQ(m.position, 4u);
}

TEST(Dtw, EqualsEuclideanForIdenticalSeries) {
  const ts::Series a = {1.0, 2.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Dtw(a, a), 0.0);
  EXPECT_DOUBLE_EQ(Dtw(a, a, 0), 0.0);
}

TEST(Dtw, WarpsShiftedSeries) {
  // A one-step shifted copy should be much closer under DTW than ED.
  ts::Series a(30);
  ts::Series b(30);
  for (std::size_t i = 0; i < 30; ++i) {
    a[i] = std::sin(0.4 * static_cast<double>(i));
    b[i] = std::sin(0.4 * (static_cast<double>(i) - 2.0));
  }
  const double ed = Euclidean(a, b);
  const double dtw = Dtw(a, b, 4);
  EXPECT_LT(dtw, 0.5 * ed);
}

TEST(Dtw, ZeroWindowEqualsEuclidean) {
  const ts::Series a = {1.0, 5.0, 2.0, 8.0};
  const ts::Series b = {2.0, 3.0, 4.0, 5.0};
  EXPECT_NEAR(Dtw(a, b, 0), Euclidean(a, b), 1e-12);
}

TEST(Dtw, WiderWindowNeverIncreasesDistance) {
  ts::Rng rng(7);
  ts::Series a(40);
  ts::Series b(40);
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian();
  double prev = Dtw(a, b, 0);
  for (std::size_t w : {1u, 2u, 4u, 8u, 16u, 40u}) {
    const double d = Dtw(a, b, w);
    EXPECT_LE(d, prev + 1e-9);
    prev = d;
  }
}

TEST(Dtw, CutoffAbandonsReturnsInfinity) {
  const ts::Series a = {0.0, 0.0, 0.0};
  const ts::Series b = {100.0, 100.0, 100.0};
  EXPECT_TRUE(std::isinf(Dtw(a, b, kUnconstrained, 1.0)));
}

TEST(Dtw, DifferentLengths) {
  const ts::Series a = {1.0, 2.0, 3.0};
  const ts::Series b = {1.0, 1.5, 2.0, 2.5, 3.0};
  EXPECT_TRUE(std::isfinite(Dtw(a, b)));
  EXPECT_TRUE(std::isfinite(Dtw(a, b, 1)));  // window widened to len diff
}

TEST(Envelope, BoundsTheSeries) {
  const ts::Series s = {1.0, 3.0, 2.0, 5.0, 4.0};
  const Envelope env = MakeEnvelope(s, 1);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_LE(env.lower[i], s[i]);
    EXPECT_GE(env.upper[i], s[i]);
  }
  EXPECT_DOUBLE_EQ(env.upper[1], 3.0);
  EXPECT_DOUBLE_EQ(env.upper[2], 5.0);
  EXPECT_DOUBLE_EQ(env.lower[3], 2.0);
}

// Property: LB_Keogh lower-bounds banded DTW for random series.
class LbKeoghProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LbKeoghProperty, LowerBoundsDtw) {
  ts::Rng rng(GetParam());
  const std::size_t n = 32;
  const std::size_t w = 4;
  ts::Series a(n);
  ts::Series b(n);
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian();
  const Envelope env = MakeEnvelope(b, w);
  EXPECT_LE(LbKeogh(a, env), Dtw(a, b, w) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, LbKeoghProperty,
                         ::testing::Range<std::size_t>(1, 21));

}  // namespace
}  // namespace rpm::distance
