// Cross-module integration tests: the full RPM pipeline on generated
// datasets, parameter search end-to-end, rotation-invariant
// classification (the Section 6.1 protocol), the medical-alarm case study
// shape, and UCR file round-trips feeding the classifier.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "baselines/nn_euclidean.h"
#include "core/rpm.h"
#include "ts/generators.h"
#include "ts/rng.h"
#include "ts/rotation.h"
#include "ts/ucr_io.h"

namespace rpm {
namespace {

core::RpmOptions FixedOptions(std::size_t window) {
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kFixed;
  opt.fixed_sax.window = window;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  return opt;
}

TEST(Integration, RpmOnCbf) {
  const ts::DatasetSplit split = ts::MakeCbf(10, 20, 128, 1001);
  core::RpmClassifier clf(FixedOptions(32));
  clf.Train(split.train);
  EXPECT_LT(clf.Evaluate(split.test), 0.35);
  EXPECT_FALSE(clf.patterns().empty());
}

TEST(Integration, RpmOnCoffeeSpectra) {
  const ts::DatasetSplit split = ts::MakeCoffee(12, 12, 200, 1002);
  core::RpmClassifier clf(FixedOptions(40));
  clf.Train(split.train);
  EXPECT_LT(clf.Evaluate(split.test), 0.2);
}

TEST(Integration, RpmWithDirectSearchOnGunPoint) {
  const ts::DatasetSplit split = ts::MakeGunPoint(10, 15, 100, 1003);
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kDirect;
  opt.direct_max_evaluations = 10;
  opt.param_splits = 2;
  opt.param_folds = 2;
  core::RpmClassifier clf(opt);
  clf.Train(split.train);
  EXPECT_GE(clf.combos_evaluated(), 1u);
  EXPECT_LT(clf.Evaluate(split.test), 0.35);
}

TEST(Integration, RpmWithGridSearchOnItalyPower) {
  const ts::DatasetSplit split = ts::MakeItalyPower(12, 20, 24, 1004);
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kGrid;
  opt.grid_window_step = 4;
  opt.param_splits = 2;
  opt.param_folds = 2;
  core::RpmClassifier clf(opt);
  clf.Train(split.train);
  EXPECT_GE(clf.combos_evaluated(), 4u);
  EXPECT_LT(clf.Evaluate(split.test), 0.4);
}

TEST(Integration, RotationInvarianceProtocol) {
  // Train on unmodified data; rotate the test set; RPM with the
  // rotation-invariant transform must stay clearly better than NN-ED,
  // whose error collapses to chance (Section 6.1 / Table 4).
  const ts::DatasetSplit split = ts::MakeGunPoint(12, 25, 100, 1005);
  ts::Rng rng(7);
  const ts::Dataset rotated_test = ts::RandomlyRotate(split.test, rng);

  core::RpmOptions opt = FixedOptions(25);
  opt.rotation_invariant = true;
  core::RpmClassifier rpm(opt);
  rpm.Train(split.train);
  const double rpm_error = rpm.Evaluate(rotated_test);

  baselines::NnEuclidean ed;
  ed.Train(split.train);
  const double ed_error = ed.Evaluate(rotated_test);

  EXPECT_LT(rpm_error, ed_error);
  EXPECT_LT(rpm_error, 0.35);
}

TEST(Integration, MedicalAlarmCaseStudy) {
  const ts::DatasetSplit split = ts::MakeAbpAlarm(12, 20, 240, 1006);
  // The window must span >1 beat (~30 points): per-window z-normalization
  // hides amplitude decay inside a single beat. And because the alarm
  // class mixes three morphologies, each subtype motif covers only ~1/3
  // of the class — gamma must sit below that fraction.
  core::RpmOptions opt = FixedOptions(60);
  opt.gamma = 0.1;
  core::RpmClassifier clf(opt);
  clf.Train(split.train);
  EXPECT_LT(clf.Evaluate(split.test), 0.3);
}

TEST(Integration, UcrRoundTripFeedsClassifier) {
  const ts::DatasetSplit split = ts::MakeEcg(10, 15, 136, 1007);
  const auto dir = std::filesystem::temp_directory_path();
  const std::string train_path = (dir / "rpm_it_train.csv").string();
  const std::string test_path = (dir / "rpm_it_test.csv").string();
  ts::SaveUcrFile(split.train, train_path);
  ts::SaveUcrFile(split.test, test_path);
  const ts::Dataset train = ts::LoadUcrFile(train_path);
  const ts::Dataset test = ts::LoadUcrFile(test_path);
  std::remove(train_path.c_str());
  std::remove(test_path.c_str());

  core::RpmClassifier clf(FixedOptions(34));
  clf.Train(train);
  EXPECT_LT(clf.Evaluate(test), 0.3);
}

TEST(Integration, PatternsAreClassSpecific) {
  // The paper's headline property: each class gets its own patterns.
  const ts::DatasetSplit split = ts::MakeCbf(10, 5, 128, 1008);
  core::RpmClassifier clf(FixedOptions(32));
  clf.Train(split.train);
  std::set<int> classes_with_patterns;
  for (const auto& p : clf.patterns()) {
    classes_with_patterns.insert(p.class_label);
  }
  EXPECT_GE(classes_with_patterns.size(), 2u);
}

TEST(Integration, NumerosityReductionAblation) {
  // Without numerosity reduction the discretized sequence is much longer
  // and rules map to near-fixed-length patterns; the pipeline must still
  // work end to end (DESIGN.md ablation #1).
  const ts::DatasetSplit split = ts::MakeCbf(8, 10, 128, 1009);
  core::RpmOptions opt = FixedOptions(32);
  opt.numerosity_reduction = false;
  core::RpmClassifier clf(opt);
  clf.Train(split.train);
  EXPECT_LT(clf.Evaluate(split.test), 0.5);
}

TEST(Integration, TauPercentileSweepStaysReasonable) {
  // Table 3 / Figure 9: accuracy should not collapse across tau choices.
  const ts::DatasetSplit split = ts::MakeGunPoint(10, 15, 100, 1010);
  for (double tau : {10.0, 30.0, 50.0, 70.0, 90.0}) {
    core::RpmOptions opt = FixedOptions(25);
    opt.tau_percentile = tau;
    core::RpmClassifier clf(opt);
    clf.Train(split.train);
    EXPECT_LT(clf.Evaluate(split.test), 0.45) << "tau=" << tau;
  }
}

}  // namespace
}  // namespace rpm
