// Option-space sweeps and unusual-label coverage: baseline classifiers
// must remain functional across their documented option ranges, and the
// whole pipeline must tolerate arbitrary integer labels (negative, zero,
// non-contiguous).

#include <gtest/gtest.h>

#include "baselines/fast_shapelets.h"
#include "baselines/learning_shapelets.h"
#include "baselines/nn_dtw.h"
#include "core/rpm.h"
#include "ts/generators.h"

namespace rpm {
namespace {

const ts::DatasetSplit& Easy() {
  static const ts::DatasetSplit split = ts::MakeGunPoint(8, 10, 100, 50);
  return split;
}

// ---------------- Fast Shapelets option sweep ----------------

struct FsCase {
  std::size_t rounds;
  std::size_t top_k;
  std::size_t depth;
};

class FsOptionsTest : public ::testing::TestWithParam<FsCase> {};

TEST_P(FsOptionsTest, TrainsAcrossOptionSpace) {
  // FS needs more training data than the other sweeps to be stable; use
  // the same split its dedicated tests run on.
  static const ts::DatasetSplit split = ts::MakeGunPoint(10, 20, 100, 21);
  const FsCase c = GetParam();
  baselines::FastShapeletsOptions opt;
  opt.projection_rounds = c.rounds;
  opt.top_k = c.top_k;
  opt.max_depth = c.depth;
  baselines::FastShapelets clf(opt);
  clf.Train(split.train);
  EXPECT_LT(clf.Evaluate(split.test), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FsOptionsTest,
                         ::testing::Values(FsCase{1, 1, 1},
                                           FsCase{5, 5, 4},
                                           FsCase{20, 20, 12},
                                           FsCase{10, 3, 2}));

// ---------------- Learning Shapelets option sweep ----------------

struct LsCase {
  std::size_t shapelets;
  double alpha;
  std::size_t epochs;
};

class LsOptionsTest : public ::testing::TestWithParam<LsCase> {};

TEST_P(LsOptionsTest, TrainsAcrossOptionSpace) {
  const LsCase c = GetParam();
  baselines::LearningShapeletsOptions opt;
  opt.shapelets_per_scale = c.shapelets;
  opt.softmin_alpha = c.alpha;
  opt.max_epochs = c.epochs;
  baselines::LearningShapelets clf(opt);
  clf.Train(Easy().train);
  EXPECT_LT(clf.Evaluate(Easy().test), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LsOptionsTest,
                         ::testing::Values(LsCase{2, -5.0, 50},
                                           LsCase{8, -30.0, 100},
                                           LsCase{4, -100.0, 50}));

// ---------------- NN-DTW window-set sweep ----------------

TEST(NnDtwOptionsTest, SingleWindowAndWideGrid) {
  baselines::NnDtwOptions narrow;
  narrow.window_fractions = {0.05};
  baselines::NnDtwBestWindow a(narrow);
  a.Train(Easy().train);
  EXPECT_LT(a.Evaluate(Easy().test), 0.4);

  baselines::NnDtwOptions wide;
  wide.window_fractions = {0.0, 0.25, 0.5, 1.0};
  baselines::NnDtwBestWindow b(wide);
  b.Train(Easy().train);
  EXPECT_LT(b.Evaluate(Easy().test), 0.4);
}

// ---------------- Unusual labels through the whole pipeline ----------------

ts::Dataset Relabel(const ts::Dataset& data, int from1, int from2) {
  ts::Dataset out;
  for (const auto& inst : data) {
    out.Add(inst.label == 1 ? from1 : from2, inst.values);
  }
  return out;
}

class OddLabelsTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(OddLabelsTest, RpmHandlesArbitraryIntegerLabels) {
  const auto [l1, l2] = GetParam();
  const ts::Dataset train = Relabel(Easy().train, l1, l2);
  const ts::Dataset test = Relabel(Easy().test, l1, l2);
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kFixed;
  opt.fixed_sax.window = 25;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  core::RpmClassifier clf(opt);
  clf.Train(train);
  EXPECT_LT(clf.Evaluate(test), 0.3);
  const int predicted = clf.Classify(test[0].values);
  EXPECT_TRUE(predicted == l1 || predicted == l2);
}

INSTANTIATE_TEST_SUITE_P(Labels, OddLabelsTest,
                         ::testing::Values(std::pair{-1, 1},
                                           std::pair{0, 7},
                                           std::pair{100, -100},
                                           std::pair{5, 1000000}));

}  // namespace
}  // namespace rpm
