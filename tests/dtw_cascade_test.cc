// Golden equivalence tests for the LB-cascaded DTW path: the Lemire
// envelopes must match the naive per-position scan exactly, every bound
// must actually lower-bound DTW, and a 1NN search through DtwCascade
// must return bit-identical neighbors and distances to an exhaustive
// full-DTW scan across band widths — including the degenerate band=0
// and band >= length cases. Carries the `training` ctest label.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "distance/dtw.h"
#include "ts/rng.h"
#include "ts/znorm.h"

namespace rpm::distance {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ts::Series RandomWalk(std::size_t n, ts::Rng& rng) {
  ts::Series s(n);
  double v = 0.0;
  for (auto& x : s) {
    v += rng.Gaussian(0.0, 1.0);
    x = v;
  }
  ts::ZNormalizeInPlace(s);
  return s;
}

Envelope NaiveEnvelope(ts::SeriesView s, std::size_t window) {
  const std::size_t n = s.size();
  Envelope env;
  env.upper.resize(n);
  env.lower.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= window ? i - window : 0;
    const std::size_t hi = std::min(n - 1, i + window);
    double mx = s[lo];
    double mn = s[lo];
    for (std::size_t j = lo + 1; j <= hi; ++j) {
      mx = std::max(mx, s[j]);
      mn = std::min(mn, s[j]);
    }
    env.upper[i] = mx;
    env.lower[i] = mn;
  }
  return env;
}

TEST(LemireEnvelope, MatchesNaiveScanExactly) {
  ts::Rng rng(17);
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                        std::size_t{64}, std::size_t{129}}) {
    const ts::Series s = RandomWalk(n, rng);
    for (std::size_t w : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          n / 2, n, n + 10, kUnconstrained}) {
      const Envelope fast = MakeEnvelope(s, w);
      const Envelope naive = NaiveEnvelope(s, std::min(w, n - 1));
      EXPECT_EQ(fast.upper, naive.upper) << "n=" << n << " w=" << w;
      EXPECT_EQ(fast.lower, naive.lower) << "n=" << n << " w=" << w;
    }
  }
}

TEST(LemireEnvelope, ConstantAndMonotoneSeries) {
  const ts::Series flat(10, 2.5);
  const Envelope env = MakeEnvelope(flat, 3);
  EXPECT_EQ(env.upper, flat);
  EXPECT_EQ(env.lower, flat);

  ts::Series ramp(12);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<double>(i);
  }
  const Envelope renv = MakeEnvelope(ramp, 2);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    EXPECT_DOUBLE_EQ(renv.upper[i], ramp[std::min(ramp.size() - 1, i + 2)]);
    EXPECT_DOUBLE_EQ(renv.lower[i], ramp[i >= 2 ? i - 2 : 0]);
  }
}

TEST(Bounds, EndpointAndKeoghLowerBoundDtw) {
  ts::Rng rng(23);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 16 + static_cast<std::size_t>(rep) * 5;
    const ts::Series a = RandomWalk(n, rng);
    const ts::Series b = RandomWalk(n, rng);
    for (std::size_t w : {std::size_t{0}, std::size_t{2}, n / 10, n}) {
      const double d = Dtw(a, b, w);
      EXPECT_LE(std::sqrt(EndpointLowerBoundSquared(a, b)), d + 1e-9);
      const Envelope env_b = MakeEnvelope(b, w);
      const Envelope env_a = MakeEnvelope(a, w);
      EXPECT_LE(std::sqrt(LbKeoghSquared(a, env_b)), d + 1e-9);
      EXPECT_LE(std::sqrt(LbKeoghSquared(b, env_a)), d + 1e-9);
    }
  }
}

TEST(Bounds, LbKeoghSquaredMatchesSqrtVariant) {
  ts::Rng rng(5);
  const ts::Series a = RandomWalk(50, rng);
  const ts::Series b = RandomWalk(50, rng);
  const Envelope env = MakeEnvelope(b, 5);
  EXPECT_DOUBLE_EQ(LbKeogh(a, env), std::sqrt(LbKeoghSquared(a, env)));
}

TEST(DtwCascade, ExactWhenNoCutoff) {
  ts::Rng rng(31);
  const ts::Series a = RandomWalk(40, rng);
  const ts::Series b = RandomWalk(40, rng);
  for (std::size_t w : {std::size_t{0}, std::size_t{4}, std::size_t{40},
                        kUnconstrained}) {
    const Envelope env_a = MakeEnvelope(a, w == kUnconstrained ? 40 : w);
    const Envelope env_b = MakeEnvelope(b, w == kUnconstrained ? 40 : w);
    EXPECT_DOUBLE_EQ(DtwCascade(a, b, &env_a, &env_b, w), Dtw(a, b, w));
  }
}

TEST(DtwCascade, PrunesOnlyProvablyWorseCandidates) {
  // When the cascade returns +inf under a cutoff, the true distance must
  // be >= that cutoff; when it returns a finite value, it must be exact.
  ts::Rng rng(41);
  for (int rep = 0; rep < 30; ++rep) {
    const ts::Series a = RandomWalk(32, rng);
    const ts::Series b = RandomWalk(32, rng);
    const std::size_t w = static_cast<std::size_t>(rep % 5) * 3;
    const Envelope env_a = MakeEnvelope(a, w);
    const Envelope env_b = MakeEnvelope(b, w);
    const double exact = Dtw(a, b, w);
    const double cutoff = exact * (rep % 2 == 0 ? 0.9 : 1.1);
    const double got = DtwCascade(a, b, &env_a, &env_b, w, cutoff);
    if (std::isinf(got)) {
      EXPECT_GE(exact, cutoff);
    } else {
      EXPECT_DOUBLE_EQ(got, exact);
    }
  }
}

// 1NN search: cascade vs exhaustive full DTW must agree on the neighbor
// index AND the distance, for every band including the degenerate ones.
struct NnResult {
  std::size_t index;
  double distance;
};

NnResult NnFullDtw(ts::SeriesView q, const std::vector<ts::Series>& refs,
                   std::size_t w) {
  NnResult r{0, kInf};
  for (std::size_t i = 0; i < refs.size(); ++i) {
    const double d = Dtw(q, refs[i], w);  // no cutoff, no bounds
    if (d < r.distance) r = NnResult{i, d};
  }
  return r;
}

NnResult NnCascade(ts::SeriesView q, const Envelope& q_env,
                   const std::vector<ts::Series>& refs,
                   const std::vector<Envelope>& ref_envs, std::size_t w) {
  NnResult r{0, kInf};
  for (std::size_t i = 0; i < refs.size(); ++i) {
    const double d =
        DtwCascade(q, refs[i], &q_env, &ref_envs[i], w, r.distance);
    if (d < r.distance) r = NnResult{i, d};
  }
  return r;
}

TEST(DtwCascade, NearestNeighborMatchesFullDtwAcrossBands) {
  ts::Rng rng(77);
  const std::size_t len = 48;
  std::vector<ts::Series> refs;
  for (int i = 0; i < 30; ++i) refs.push_back(RandomWalk(len, rng));

  // Bands: degenerate 0 (Euclidean), narrow, 10 %, half, >= length, and
  // fully unconstrained.
  const std::size_t bands[] = {0,       2,   len / 10, len / 2,
                               len + 5, len, kUnconstrained};
  for (const std::size_t w : bands) {
    std::vector<Envelope> ref_envs;
    for (const auto& r : refs) ref_envs.push_back(MakeEnvelope(r, w));
    for (int qi = 0; qi < 10; ++qi) {
      const ts::Series q = RandomWalk(len, rng);
      const Envelope q_env = MakeEnvelope(q, w);
      const NnResult exact = NnFullDtw(q, refs, w);
      const NnResult fast = NnCascade(q, q_env, refs, ref_envs, w);
      EXPECT_EQ(fast.index, exact.index) << "band=" << w << " q=" << qi;
      EXPECT_EQ(fast.distance, exact.distance)
          << "band=" << w << " q=" << qi;  // bit-identical, not NEAR
    }
  }
}

TEST(DtwCascade, UnequalLengthsSkipKeoghButStayExact) {
  ts::Rng rng(88);
  const ts::Series a = RandomWalk(30, rng);
  const ts::Series b = RandomWalk(44, rng);
  const Envelope env_a = MakeEnvelope(a, 4);
  const Envelope env_b = MakeEnvelope(b, 4);
  EXPECT_DOUBLE_EQ(DtwCascade(a, b, &env_a, &env_b, 4), Dtw(a, b, 4));
  // With a cutoff, pruning may only claim provably-worse candidates.
  const double exact = Dtw(a, b, 4);
  const double got = DtwCascade(a, b, &env_a, &env_b, 4, exact * 0.5);
  if (std::isinf(got)) {
    EXPECT_GE(exact, exact * 0.5);
  } else {
    EXPECT_DOUBLE_EQ(got, exact);
  }
}

TEST(DtwCascade, NullEnvelopesAndEmptyInputs) {
  ts::Rng rng(99);
  const ts::Series a = RandomWalk(20, rng);
  const ts::Series b = RandomWalk(20, rng);
  EXPECT_DOUBLE_EQ(DtwCascade(a, b, nullptr, nullptr, 3), Dtw(a, b, 3));
  const ts::Series empty;
  EXPECT_DOUBLE_EQ(DtwCascade(empty, empty, nullptr, nullptr, 0), 0.0);
  EXPECT_TRUE(std::isinf(DtwCascade(a, empty, nullptr, nullptr, 0)));
}

}  // namespace
}  // namespace rpm::distance
