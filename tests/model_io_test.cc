// Tests for the hardened model persistence path: Save/Load round-trips
// preserve predictions exactly, and truncated, corrupt, or
// version-mismatched model files fail with descriptive runtime_errors
// instead of undefined reads or giant allocations.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/rpm.h"
#include "ts/generators.h"

namespace rpm {
namespace {

const core::RpmClassifier& TrainedModel() {
  static const core::RpmClassifier* model = [] {
    core::RpmOptions options;
    options.search = core::ParameterSearch::kFixed;
    options.fixed_sax.window = 30;
    options.fixed_sax.paa_size = 4;
    options.fixed_sax.alphabet = 4;
    auto* clf = new core::RpmClassifier(options);
    clf->Train(ts::MakeGunPoint(10, 4, 120, 7).train);
    return clf;
  }();
  return *model;
}

std::string SavedText() {
  std::ostringstream out;
  TrainedModel().Save(out);
  return out.str();
}

// Load must throw a runtime_error whose message contains `expect`.
void ExpectLoadFails(const std::string& text, const std::string& expect) {
  std::istringstream in(text);
  try {
    core::RpmClassifier::Load(in);
    FAIL() << "Load succeeded on malformed input (wanted '" << expect
           << "')";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(expect), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(ModelIo, RoundTripPreservesPredictionsAndMetadata) {
  const ts::DatasetSplit split = ts::MakeGunPoint(10, 10, 120, 7);
  std::stringstream buffer;
  TrainedModel().Save(buffer);
  const core::RpmClassifier loaded = core::RpmClassifier::Load(buffer);

  EXPECT_TRUE(loaded.trained());
  EXPECT_EQ(loaded.patterns().size(), TrainedModel().patterns().size());
  EXPECT_EQ(loaded.sax_by_class().size(),
            TrainedModel().sax_by_class().size());
  EXPECT_EQ(loaded.ClassifyAll(split.test),
            TrainedModel().ClassifyAll(split.test));
}

TEST(ModelIo, FileRoundTripThroughSaveToFile) {
  const std::string path = testing::TempDir() + "model_io_roundtrip.rpm";
  TrainedModel().SaveToFile(path);
  const core::RpmClassifier loaded =
      core::RpmClassifier::LoadFromFile(path);
  const ts::DatasetSplit split = ts::MakeGunPoint(10, 10, 120, 7);
  EXPECT_EQ(loaded.ClassifyAll(split.test),
            TrainedModel().ClassifyAll(split.test));
}

TEST(ModelIo, EmptyStreamFails) {
  ExpectLoadFails("", "empty or unreadable");
}

TEST(ModelIo, BadMagicFails) {
  ExpectLoadFails("NOT-A-MODEL v1\nwhatever", "bad magic");
}

TEST(ModelIo, WrongFormatVersionFails) {
  std::string text = SavedText();
  const std::size_t pos = text.find("v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 2, "v9");
  ExpectLoadFails(text, "unsupported model format version 'v9'");
}

TEST(ModelIo, TruncationAtEverySectionFails) {
  const std::string text = SavedText();
  // Cutting the file at any fraction must throw, never crash or return a
  // half-initialized model.
  for (const double fraction : {0.05, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const std::string truncated =
        text.substr(0, std::size_t(double(text.size()) * fraction));
    std::istringstream in(truncated);
    EXPECT_THROW(core::RpmClassifier::Load(in), std::runtime_error)
        << "fraction " << fraction;
  }
}

TEST(ModelIo, CorruptPatternCountFails) {
  std::string text = SavedText();
  const std::size_t pos = text.find("patterns ");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t end = text.find('\n', pos);
  text.replace(pos, end - pos, "patterns 99999999999");
  ExpectLoadFails(text, "corrupt pattern count");
}

TEST(ModelIo, CorruptPatternLengthFails) {
  // Rebuild the patterns section with a huge per-pattern length; Load
  // must reject it before attempting the allocation.
  std::string text = SavedText();
  const std::size_t pos = text.find("patterns ");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t line_end = text.find('\n', pos);
  ASSERT_NE(line_end, std::string::npos);
  // Header says >= 1 pattern; replace the first pattern line's length
  // field (third token) with a bogus value.
  const std::size_t p0 = line_end + 1;
  std::istringstream first_line(text.substr(p0, text.find('\n', p0) - p0));
  std::string label;
  std::string freq;
  std::string len;
  ASSERT_TRUE(first_line >> label >> freq >> len);
  const std::string prefix = label + " " + freq + " ";
  ASSERT_EQ(text.compare(p0, prefix.size(), prefix), 0);
  text.replace(p0 + prefix.size(), len.size(), "88888888888888");
  ExpectLoadFails(text, "corrupt pattern length");
}

TEST(ModelIo, GarbageSaxSectionFails) {
  std::string text = SavedText();
  const std::size_t pos = text.find("sax ");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t end = text.find('\n', pos);
  text.replace(pos, end - pos, "sax banana");
  ExpectLoadFails(text, "bad sax header");
}

TEST(ModelIo, MissingFileFailsWithPath) {
  try {
    core::RpmClassifier::LoadFromFile("/no/such/model.rpm");
    FAIL() << "LoadFromFile succeeded on a missing file";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/no/such/model.rpm"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace rpm
