// Tests for the ML substrate: SVM (SMO), CFS feature selection, metrics,
// stratified splitting, and the Wilcoxon signed-rank test.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/cross_validation.h"
#include "ml/feature_dataset.h"
#include "ml/feature_selection.h"
#include "ml/metrics.h"
#include "ml/svm.h"
#include "ml/wilcoxon.h"
#include "ts/rng.h"

namespace rpm::ml {
namespace {

// ---------------- FeatureDataset ----------------

TEST(FeatureDatasetTest, SelectColumnsAndRows) {
  FeatureDataset d;
  d.Add({1.0, 2.0, 3.0}, 1);
  d.Add({4.0, 5.0, 6.0}, 2);
  const FeatureDataset cols = d.SelectColumns({2, 0});
  EXPECT_EQ(cols.x[0], (std::vector<double>{3.0, 1.0}));
  EXPECT_EQ(cols.y, d.y);
  const FeatureDataset rows = d.SelectRows({1});
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.y[0], 2);
  EXPECT_EQ(d.Labels(), (std::vector<int>{1, 2}));
}

// ---------------- SVM ----------------

FeatureDataset LinearlySeparable2D(std::size_t per_class,
                                   std::uint64_t seed) {
  ts::Rng rng(seed);
  FeatureDataset d;
  for (std::size_t i = 0; i < per_class; ++i) {
    d.Add({rng.Gaussian(-2.0, 0.4), rng.Gaussian(-2.0, 0.4)}, 1);
    d.Add({rng.Gaussian(2.0, 0.4), rng.Gaussian(2.0, 0.4)}, 2);
  }
  return d;
}

TEST(Svm, LinearSeparableBinary) {
  const FeatureDataset d = LinearlySeparable2D(20, 1);
  SvmClassifier svm;
  svm.Train(d);
  ASSERT_TRUE(svm.trained());
  const std::vector<int> pred = svm.PredictAll(d);
  EXPECT_GE(Accuracy(pred, d.y), 0.95);
  EXPECT_EQ(svm.Predict(std::vector<double>{-2.0, -2.0}), 1);
  EXPECT_EQ(svm.Predict(std::vector<double>{2.0, 2.0}), 2);
}

TEST(Svm, ThreeClassOneVsOne) {
  ts::Rng rng(2);
  FeatureDataset d;
  const double centers[3][2] = {{-3, 0}, {3, 0}, {0, 4}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 15; ++i) {
      d.Add({centers[c][0] + rng.Gaussian(0, 0.3),
             centers[c][1] + rng.Gaussian(0, 0.3)},
            c + 10);
    }
  }
  SvmClassifier svm;
  svm.Train(d);
  EXPECT_GE(Accuracy(svm.PredictAll(d), d.y), 0.95);
}

TEST(Svm, RbfSolvesXor) {
  ts::Rng rng(3);
  FeatureDataset d;
  for (int i = 0; i < 30; ++i) {
    const double x = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    const double y = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    d.Add({x + rng.Gaussian(0, 0.1), y + rng.Gaussian(0, 0.1)},
          x * y > 0 ? 1 : 2);
  }
  SvmOptions opt;
  opt.kernel = KernelKind::kRbf;
  opt.c = 10.0;
  opt.max_iterations = 5000;
  SvmClassifier svm(opt);
  svm.Train(d);
  EXPECT_GE(Accuracy(svm.PredictAll(d), d.y), 0.9);
}

TEST(Svm, PolynomialKernelSolvesXor) {
  ts::Rng rng(4);
  FeatureDataset d;
  for (int i = 0; i < 30; ++i) {
    const double x = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    const double y = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    d.Add({x + rng.Gaussian(0, 0.1), y + rng.Gaussian(0, 0.1)},
          x * y > 0 ? 1 : 2);
  }
  SvmOptions opt;
  opt.kernel = KernelKind::kPolynomial;
  opt.poly_degree = 2;
  opt.c = 10.0;
  opt.max_iterations = 5000;
  SvmClassifier svm(opt);
  svm.Train(d);
  EXPECT_GE(Accuracy(svm.PredictAll(d), d.y), 0.9);
}

TEST(Svm, SingleClassFallsBackToConstant) {
  FeatureDataset d;
  d.Add({1.0}, 7);
  d.Add({2.0}, 7);
  SvmClassifier svm;
  svm.Train(d);
  EXPECT_EQ(svm.Predict(std::vector<double>{99.0}), 7);
}

// ---------------- Feature selection ----------------

TEST(Correlations, PearsonKnownValues) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  const std::vector<double> z = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
  const std::vector<double> c = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, c), 0.0);
}

TEST(Correlations, CorrelationRatioSeparatedGroups) {
  // Perfect separation -> eta = 1; identical distributions -> near 0.
  const std::vector<double> values = {0, 0.1, 0.2, 10, 10.1, 10.2};
  const std::vector<int> labels = {1, 1, 1, 2, 2, 2};
  EXPECT_GT(CorrelationRatio(values, labels), 0.99);
  const std::vector<double> same = {1, 2, 3, 1, 2, 3};
  EXPECT_LT(CorrelationRatio(same, labels), 0.01);
}

TEST(Cfs, PicksInformativeDropsRedundantAndNoise) {
  ts::Rng rng(4);
  FeatureDataset d;
  for (int i = 0; i < 60; ++i) {
    const int label = rng.Bernoulli(0.5) ? 1 : 2;
    const double signal = (label == 1 ? -1.0 : 1.0) + rng.Gaussian(0, 0.2);
    const double redundant = signal + rng.Gaussian(0, 0.05);
    const double noise = rng.Gaussian(0, 1.0);
    d.Add({signal, redundant, noise}, label);
  }
  const auto selected = CfsSelect(d);
  ASSERT_FALSE(selected.empty());
  // The informative feature must be in; pure noise must be out.
  EXPECT_TRUE(std::find(selected.begin(), selected.end(), 0u) !=
                  selected.end() ||
              std::find(selected.begin(), selected.end(), 1u) !=
                  selected.end());
  EXPECT_EQ(std::find(selected.begin(), selected.end(), 2u), selected.end());
  // Redundancy: not both copies of the same signal.
  EXPECT_LE(selected.size(), 2u);
}

TEST(Cfs, MaxFeaturesHonored) {
  ts::Rng rng(5);
  FeatureDataset d;
  for (int i = 0; i < 40; ++i) {
    const int label = i % 2 + 1;
    std::vector<double> row;
    for (int f = 0; f < 6; ++f) {
      row.push_back((label == 1 ? -1.0 : 1.0) * (f + 1) * 0.3 +
                    rng.Gaussian(0, 0.5));
    }
    d.Add(row, label);
  }
  CfsOptions opt;
  opt.max_features = 2;
  EXPECT_LE(CfsSelect(d, opt).size(), 2u);
}

TEST(Cfs, DegenerateInputs) {
  FeatureDataset empty;
  EXPECT_TRUE(CfsSelect(empty).empty());
  FeatureDataset constant;
  constant.Add({1.0}, 1);
  constant.Add({1.0}, 2);
  EXPECT_EQ(CfsSelect(constant).size(), 1u);  // fallback single feature
}

// ---------------- Metrics ----------------

TEST(Metrics, AccuracyAndError) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 2, 4}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(ErrorRate({1, 2, 3}, {1, 2, 4}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(Metrics, ConfusionMatrixCounts) {
  const auto cm = ConfusionMatrix({1, 1, 2, 2}, {1, 2, 2, 2});
  EXPECT_EQ(cm.at({1, 1}), 1u);
  EXPECT_EQ(cm.at({2, 1}), 1u);
  EXPECT_EQ(cm.at({2, 2}), 2u);
}

TEST(Metrics, PerClassF1KnownCase) {
  // truth: 1 1 2 2 ; pred: 1 2 2 2
  const auto scores = PerClassScores({1, 2, 2, 2}, {1, 1, 2, 2});
  EXPECT_DOUBLE_EQ(scores.at(1).precision, 1.0);
  EXPECT_DOUBLE_EQ(scores.at(1).recall, 0.5);
  EXPECT_NEAR(scores.at(1).f1, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(scores.at(2).precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(scores.at(2).recall, 1.0);
  const double macro = MacroF1({1, 2, 2, 2}, {1, 1, 2, 2});
  EXPECT_NEAR(macro, (2.0 / 3.0 + 0.8) / 2.0, 1e-12);
}

TEST(Metrics, PerfectPrediction) {
  const auto scores = PerClassScores({1, 2}, {1, 2});
  EXPECT_DOUBLE_EQ(scores.at(1).f1, 1.0);
  EXPECT_DOUBLE_EQ(MacroF1({1, 2}, {1, 2}), 1.0);
}

// ---------------- Cross-validation ----------------

TEST(Splitting, StratifiedFoldsBalanceClasses) {
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) labels.push_back(i % 3);
  ts::Rng rng(6);
  const auto folds = StratifiedFolds(labels, 5, rng);
  ASSERT_EQ(folds.size(), labels.size());
  // Every fold gets 2 of each class (10 per class / 5 folds).
  std::map<std::pair<int, int>, int> count;  // (fold, class) -> n
  for (std::size_t i = 0; i < labels.size(); ++i) {
    ++count[{folds[i], labels[i]}];
  }
  for (const auto& [key, n] : count) EXPECT_EQ(n, 2);
}

TEST(Splitting, StratifiedSplitKeepsBothSidesNonEmptyPerClass) {
  std::vector<int> labels = {1, 1, 1, 1, 2, 2, 2, 2, 2, 2};
  ts::Rng rng(7);
  const auto split = StratifiedSplit(labels, 0.7, rng);
  EXPECT_EQ(split.train.size() + split.validation.size(), labels.size());
  for (int label : {1, 2}) {
    int in_train = 0;
    int in_valid = 0;
    for (std::size_t i : split.train) in_train += labels[i] == label;
    for (std::size_t i : split.validation) in_valid += labels[i] == label;
    EXPECT_GE(in_train, 1) << label;
    EXPECT_GE(in_valid, 1) << label;
  }
}

TEST(Splitting, SplitDatasetCarriesInstances) {
  ts::Dataset d;
  for (int i = 0; i < 10; ++i) {
    d.Add(i % 2 + 1, {static_cast<double>(i)});
  }
  ts::Rng rng(8);
  const auto [train, valid] = SplitDataset(d, 0.6, rng);
  EXPECT_EQ(train.size() + valid.size(), d.size());
  EXPECT_EQ(train.NumClasses(), 2u);
  EXPECT_EQ(valid.NumClasses(), 2u);
}

// ---------------- Wilcoxon ----------------

TEST(Wilcoxon, IdenticalSamplesPValueOne) {
  const std::vector<double> a = {1, 2, 3, 4};
  const auto r = WilcoxonSignedRank(a, a);
  EXPECT_EQ(r.n_nonzero, 0u);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(Wilcoxon, ClearlyShiftedSamplesSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  ts::Rng rng(9);
  for (int i = 0; i < 15; ++i) {
    const double base = rng.Uniform(0, 1);
    a.push_back(base);
    b.push_back(base + 0.5 + rng.Uniform(0, 0.1));
  }
  const auto r = WilcoxonSignedRank(a, b);
  EXPECT_LT(r.p_value, 0.01);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);  // all differences negative
}

TEST(Wilcoxon, SymmetricDifferencesNotSignificant) {
  const std::vector<double> a = {1, 2, 3, 4, 5, 6};
  const std::vector<double> b = {2, 1, 4, 3, 6, 5};  // +-1 alternating
  const auto r = WilcoxonSignedRank(a, b);
  EXPECT_GT(r.p_value, 0.5);
}

TEST(Wilcoxon, LargeSampleNormalApproximation) {
  ts::Rng rng(10);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 60; ++i) {
    a.push_back(rng.Gaussian(0.0, 1.0));
    b.push_back(rng.Gaussian(0.05, 1.0));  // tiny shift
  }
  const auto r = WilcoxonSignedRank(a, b);
  EXPECT_EQ(r.n_nonzero, 60u);
  EXPECT_GT(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
}

TEST(Wilcoxon, LengthMismatchThrows) {
  EXPECT_THROW(WilcoxonSignedRank({1.0}, {1.0, 2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rpm::ml
