// Tests for the optimizers: DIRECT on standard test functions (it must
// approach the global optimum within a modest budget, deterministically)
// and the exhaustive integer grid search.

#include <gtest/gtest.h>

#include <cmath>

#include "opt/direct.h"
#include "opt/grid.h"

namespace rpm::opt {
namespace {

TEST(Direct, QuadraticBowl1D) {
  const Bounds bounds{{-5.0}, {5.0}};
  const auto r = Minimize(
      [](std::span<const double> x) { return (x[0] - 1.3) * (x[0] - 1.3); },
      bounds, {200, 60, 1e-4});
  EXPECT_NEAR(r.best_point[0], 1.3, 0.05);
  EXPECT_LT(r.best_value, 0.01);
}

TEST(Direct, QuadraticBowl3D) {
  const Bounds bounds{{-2.0, -2.0, -2.0}, {2.0, 2.0, 2.0}};
  const auto r = Minimize(
      [](std::span<const double> x) {
        double acc = 0.0;
        const double target[3] = {0.5, -1.0, 1.5};
        for (int i = 0; i < 3; ++i) {
          acc += (x[i] - target[i]) * (x[i] - target[i]);
        }
        return acc;
      },
      bounds, {400, 80, 1e-4});
  EXPECT_LT(r.best_value, 0.1);
}

TEST(Direct, MultimodalFindsGlobalBasin) {
  // f(x) = sin(3x) + 0.5x on [-3, 3]: global min near x = -2.6 region.
  const Bounds bounds{{-3.0}, {3.0}};
  const auto r = Minimize(
      [](std::span<const double> x) {
        return std::sin(3.0 * x[0]) + 0.5 * x[0];
      },
      bounds, {150, 50, 1e-4});
  // Brute-force reference.
  double ref = 1e9;
  for (double x = -3.0; x <= 3.0; x += 1e-4) {
    ref = std::min(ref, std::sin(3.0 * x) + 0.5 * x);
  }
  EXPECT_NEAR(r.best_value, ref, 0.05);
}

TEST(Direct, RespectsEvaluationBudget) {
  const Bounds bounds{{0.0, 0.0}, {1.0, 1.0}};
  std::size_t calls = 0;
  const auto r = Minimize(
      [&](std::span<const double> x) {
        ++calls;
        return x[0] + x[1];
      },
      bounds, {25, 100, 1e-4});
  EXPECT_LE(calls, 25u + 2u);  // one probe pair may straddle the budget
  EXPECT_EQ(r.evaluations, calls);
}

TEST(Direct, Deterministic) {
  const Bounds bounds{{-1.0}, {2.0}};
  auto f = [](std::span<const double> x) {
    return std::cos(5.0 * x[0]) + x[0] * x[0];
  };
  const auto a = Minimize(f, bounds, {80, 30, 1e-4});
  const auto b = Minimize(f, bounds, {80, 30, 1e-4});
  EXPECT_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.best_point, b.best_point);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Direct, InvalidBoundsThrow) {
  EXPECT_THROW(Minimize([](std::span<const double>) { return 0.0; },
                        Bounds{{}, {}}, {}),
               std::invalid_argument);
  EXPECT_THROW(Minimize([](std::span<const double>) { return 0.0; },
                        Bounds{{1.0}, {0.0}}, {}),
               std::invalid_argument);
}

TEST(Grid, ExhaustiveMinimum) {
  const std::vector<IntRange> ranges = {{0, 10, 1}, {-3, 3, 1}};
  const auto r = GridSearchMin(
      [](std::span<const int> p) {
        return (p[0] - 7) * (p[0] - 7) + (p[1] + 2) * (p[1] + 2);
      },
      ranges);
  EXPECT_EQ(r.best_point, (std::vector<int>{7, -2}));
  EXPECT_EQ(r.best_value, 0.0);
  EXPECT_EQ(r.evaluations, 11u * 7u);
}

TEST(Grid, StrideRespected) {
  const std::vector<IntRange> ranges = {{0, 10, 5}};
  std::vector<int> visited;
  GridSearchMin(
      [&](std::span<const int> p) {
        visited.push_back(p[0]);
        return 0.0;
      },
      ranges);
  EXPECT_EQ(visited, (std::vector<int>{0, 5, 10}));
}

TEST(Grid, InfinityRejectionStillPicksFiniteMin) {
  const std::vector<IntRange> ranges = {{0, 5, 1}};
  const auto r = GridSearchMin(
      [](std::span<const int> p) {
        return p[0] == 3 ? 1.0
                         : std::numeric_limits<double>::infinity();
      },
      ranges);
  EXPECT_EQ(r.best_point, (std::vector<int>{3}));
}

TEST(Grid, EmptyRangeThrows) {
  EXPECT_THROW(
      GridSearchMin([](std::span<const int>) { return 0.0; }, {}),
      std::invalid_argument);
  EXPECT_THROW(GridSearchMin([](std::span<const int>) { return 0.0; },
                             {{5, 1, 1}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rpm::opt
