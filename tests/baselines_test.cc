// Tests for the five comparison classifiers: each must train, classify,
// and beat chance clearly on an easy synthetic problem; method-specific
// behaviours (window selection, tf*idf weighting, tree structure,
// shapelet learning) are exercised individually.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/fast_shapelets.h"
#include "baselines/learning_shapelets.h"
#include "baselines/nn_dtw.h"
#include "baselines/nn_euclidean.h"
#include "baselines/rpm_adapter.h"
#include "baselines/sax_vsm.h"
#include "ts/generators.h"
#include "ts/rng.h"

namespace rpm::baselines {
namespace {

const ts::DatasetSplit& EasySplit() {
  static const ts::DatasetSplit split = ts::MakeGunPoint(10, 20, 100, 21);
  return split;
}

TEST(NnEuclideanTest, PerfectOnTrain) {
  NnEuclidean clf;
  clf.Train(EasySplit().train);
  EXPECT_DOUBLE_EQ(clf.Evaluate(EasySplit().train), 0.0);
}

TEST(NnEuclideanTest, BeatsChanceOnTest) {
  NnEuclidean clf;
  clf.Train(EasySplit().train);
  EXPECT_LE(clf.Evaluate(EasySplit().test), 0.25);
}

TEST(NnEuclideanTest, HandlesLengthMismatchByResampling) {
  ts::Dataset train;
  train.Add(1, {0.0, 1.0, 0.0, -1.0});
  train.Add(2, {1.0, 1.0, 1.0, 1.0});
  NnEuclidean clf;
  clf.Train(train);
  EXPECT_EQ(clf.Classify(ts::Series{0.0, 0.5, 1.0, 0.5, 0.0, -0.5, -1.0}),
            1);
}

TEST(NnEuclideanTest, ThrowsBeforeTrain) {
  NnEuclidean clf;
  EXPECT_THROW(clf.Classify(ts::Series{1.0}), std::logic_error);
}

TEST(NnDtwTest, SelectsAWindowAndClassifies) {
  NnDtwBestWindow clf;
  clf.Train(EasySplit().train);
  EXPECT_LE(clf.best_window(), EasySplit().train.MaxLength() / 4);
  EXPECT_LE(clf.Evaluate(EasySplit().test), 0.25);
}

TEST(NnDtwTest, WarpingBeatsEuclideanOnShiftedData) {
  // Shift every test instance by a few points: DTW should tolerate it
  // far better than ED.
  ts::Rng rng(4);
  ts::Dataset train;
  ts::Dataset test;
  for (int i = 0; i < 12; ++i) {
    ts::Series s(80);
    const int label = i % 2 + 1;
    for (std::size_t j = 0; j < s.size(); ++j) {
      const double x = static_cast<double>(j);
      s[j] = (label == 1 ? std::sin(0.3 * x) : std::sin(0.3 * x + 1.5)) +
             rng.Gaussian(0.0, 0.05);
    }
    train.Add(label, s);
    // Shifted copy into test.
    ts::Series shifted(80);
    const std::size_t off = 4;
    for (std::size_t j = 0; j < s.size(); ++j) {
      shifted[j] = s[(j + off) % s.size()];
    }
    test.Add(label, shifted);
  }
  NnDtwBestWindow dtw;
  dtw.Train(train);
  NnEuclidean ed;
  ed.Train(train);
  EXPECT_LE(dtw.Evaluate(test), ed.Evaluate(test) + 1e-12);
}

TEST(SaxVsmTest, TrainsAndBeatsChance) {
  SaxVsmOptions opt;
  opt.optimize = false;
  opt.sax.window = 25;
  opt.sax.paa_size = 5;
  opt.sax.alphabet = 4;
  SaxVsm clf(opt);
  clf.Train(EasySplit().train);
  EXPECT_LE(clf.Evaluate(EasySplit().test), 0.35);
}

TEST(SaxVsmTest, OptimizerPicksSomething) {
  SaxVsm clf;  // optimize = true
  clf.Train(EasySplit().train);
  EXPECT_GE(clf.chosen_sax().window, 6u);
  EXPECT_LE(clf.Evaluate(EasySplit().test), 0.35);
}

TEST(SaxVsmTest, ThrowsOnEmptyTrainAndBeforeTrain) {
  SaxVsm clf;
  EXPECT_THROW(clf.Train(ts::Dataset{}), std::invalid_argument);
  EXPECT_THROW(clf.Classify(ts::Series(10, 0.0)), std::logic_error);
}

TEST(FastShapeletsTest, BuildsTreeAndClassifies) {
  FastShapelets clf;
  clf.Train(EasySplit().train);
  EXPECT_GE(clf.num_shapelet_nodes(), 1u);
  EXPECT_FALSE(clf.root_shapelet().empty());
  EXPECT_LE(clf.Evaluate(EasySplit().test), 0.3);
}

TEST(FastShapeletsTest, PureNodeIsLeaf) {
  // One-class data: no split possible, tree is a single leaf.
  ts::Dataset train;
  ts::Rng rng(5);
  for (int i = 0; i < 6; ++i) {
    ts::Series s(50);
    for (auto& v : s) v = rng.Gaussian();
    train.Add(4, std::move(s));
  }
  FastShapelets clf;
  clf.Train(train);
  EXPECT_EQ(clf.num_shapelet_nodes(), 0u);
  EXPECT_EQ(clf.Classify(ts::Series(50, 0.0)), 4);
}

TEST(FastShapeletsTest, DeterministicGivenSeed) {
  FastShapeletsOptions opt;
  opt.seed = 77;
  FastShapelets a(opt);
  FastShapelets b(opt);
  a.Train(EasySplit().train);
  b.Train(EasySplit().train);
  EXPECT_EQ(a.ClassifyAll(EasySplit().test), b.ClassifyAll(EasySplit().test));
}

TEST(LearningShapeletsTest, LearnsGunPoint) {
  LearningShapeletsOptions opt;
  opt.max_epochs = 150;
  LearningShapelets clf(opt);
  clf.Train(EasySplit().train);
  EXPECT_FALSE(clf.shapelets().empty());
  EXPECT_LE(clf.Evaluate(EasySplit().test), 0.3);
}

TEST(LearningShapeletsTest, ShapeletsActuallyMove) {
  // Gradient updates must change the shapelets away from their init.
  LearningShapeletsOptions opt;
  opt.max_epochs = 30;
  opt.seed = 3;
  LearningShapelets trained(opt);
  trained.Train(EasySplit().train);
  opt.max_epochs = 0;
  LearningShapelets untrained(opt);
  untrained.Train(EasySplit().train);
  ASSERT_EQ(trained.shapelets().size(), untrained.shapelets().size());
  double total_change = 0.0;
  for (std::size_t k = 0; k < trained.shapelets().size(); ++k) {
    for (std::size_t l = 0; l < trained.shapelets()[k].size(); ++l) {
      total_change += std::abs(trained.shapelets()[k][l] -
                               untrained.shapelets()[k][l]);
    }
  }
  EXPECT_GT(total_change, 1e-6);
}

TEST(RpmAdapterTest, WorksThroughCommonInterface) {
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kFixed;
  opt.fixed_sax.window = 25;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  RpmAdapter clf(opt);
  EXPECT_EQ(clf.Name(), "RPM");
  clf.Train(EasySplit().train);
  EXPECT_LE(clf.Evaluate(EasySplit().test), 0.3);
}

// All six methods must beat chance on CBF through the common interface.
class AllMethodsTest : public ::testing::TestWithParam<int> {
 protected:
  static std::unique_ptr<Classifier> Make(int id) {
    switch (id) {
      case 0:
        return std::make_unique<NnEuclidean>();
      case 1:
        return std::make_unique<NnDtwBestWindow>();
      case 2: {
        SaxVsmOptions opt;
        opt.optimize = false;
        opt.sax.window = 32;
        opt.sax.paa_size = 4;
        opt.sax.alphabet = 4;
        return std::make_unique<SaxVsm>(opt);
      }
      case 3:
        return std::make_unique<FastShapelets>();
      case 4: {
        LearningShapeletsOptions opt;
        opt.max_epochs = 120;
        return std::make_unique<LearningShapelets>(opt);
      }
      default: {
        core::RpmOptions opt;
        opt.search = core::ParameterSearch::kFixed;
        opt.fixed_sax.window = 32;
        opt.fixed_sax.paa_size = 4;
        opt.fixed_sax.alphabet = 4;
        return std::make_unique<RpmAdapter>(opt);
      }
    }
  }
};

TEST_P(AllMethodsTest, BeatsChanceOnCbf) {
  const ts::DatasetSplit split = ts::MakeCbf(8, 15, 128, 33);
  auto clf = Make(GetParam());
  clf->Train(split.train);
  // 3 balanced classes -> chance error is 2/3.
  EXPECT_LT(clf->Evaluate(split.test), 0.45) << clf->Name();
}

INSTANTIATE_TEST_SUITE_P(SixMethods, AllMethodsTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace rpm::baselines
