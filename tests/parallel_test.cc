// Tests for the data-parallel helper and the determinism guarantee of the
// parallel RPM paths: any thread count must yield bit-identical results.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/rpm.h"
#include "core/transform.h"
#include "ts/generators.h"
#include "ts/parallel.h"
#include "ts/rng.h"
#include "ts/znorm.h"

namespace rpm {
namespace {

TEST(ParallelFor, CoversEveryIndexOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::atomic<int>> hits(100);
    ts::ParallelFor(100, threads,
                    [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, ZeroAndTinyInputs) {
  int calls = 0;
  ts::ParallelFor(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> acalls{0};
  ts::ParallelFor(1, 8, [&](std::size_t) { acalls.fetch_add(1); });
  EXPECT_EQ(acalls.load(), 1);
}

TEST(ParallelFor, DefaultThreadsPositive) {
  EXPECT_GE(ts::DefaultThreads(), 1u);
}

TEST(ParallelDeterminism, CandidatesIdenticalAcrossThreadCounts) {
  const ts::DatasetSplit split = ts::MakeCbf(8, 4, 128, 88);
  core::RpmOptions base;
  base.search = core::ParameterSearch::kFixed;
  base.fixed_sax.window = 32;
  base.fixed_sax.paa_size = 4;
  base.fixed_sax.alphabet = 4;
  std::map<int, sax::SaxOptions> sax;
  for (int label : split.train.ClassLabels()) sax[label] = base.fixed_sax;

  core::RpmOptions seq = base;
  seq.num_threads = 1;
  core::RpmOptions par = base;
  par.num_threads = 4;
  const auto a = core::FindAllCandidates(split.train, sax, seq);
  const auto b = core::FindAllCandidates(split.train, sax, par);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].class_label, b[i].class_label);
    EXPECT_EQ(a[i].frequency, b[i].frequency);
    EXPECT_EQ(a[i].values, b[i].values);
  }
}

TEST(ParallelDeterminism, TransformBitIdenticalAcrossThreadCounts) {
  // The transform engine writes each series' feature row into its own
  // slot, so the embedded dataset must be bit-identical — not merely
  // close — for any thread count.
  const ts::DatasetSplit split = ts::MakeCbf(6, 6, 128, 92);
  std::vector<core::RepresentativePattern> patterns;
  ts::Rng rng(17);
  for (int k = 0; k < 12; ++k) {
    core::RepresentativePattern p;
    p.class_label = 1 + (k % 3);
    ts::Series values(16 + 4 * (k % 5));
    for (auto& v : values) v = rng.Gaussian(0.0, 1.0);
    ts::ZNormalizeInPlace(values);
    p.values = std::move(values);
    patterns.push_back(std::move(p));
  }

  auto run = [&](std::size_t threads) {
    core::TransformOptions opt;
    opt.num_threads = threads;
    return core::TransformDataset(patterns, split.train, opt);
  };
  const ml::FeatureDataset base = run(1);
  for (std::size_t threads : {2u, 8u}) {
    const ml::FeatureDataset other = run(threads);
    ASSERT_EQ(base.x.size(), other.x.size());
    EXPECT_EQ(base.y, other.y);
    for (std::size_t i = 0; i < base.x.size(); ++i) {
      EXPECT_EQ(base.x[i], other.x[i]) << "row " << i << " with " << threads
                                       << " threads";
    }
  }
}

TEST(ParallelDeterminism, ClassifierIdenticalAcrossThreadCounts) {
  const ts::DatasetSplit split = ts::MakeGunPoint(10, 15, 100, 89);
  auto run = [&](std::size_t threads) {
    core::RpmOptions opt;
    opt.search = core::ParameterSearch::kFixed;
    opt.fixed_sax.window = 25;
    opt.fixed_sax.paa_size = 5;
    opt.fixed_sax.alphabet = 4;
    opt.num_threads = threads;
    core::RpmClassifier clf(opt);
    clf.Train(split.train);
    return clf.ClassifyAll(split.test);
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(AbpAlarmTypes, FourBalancedClasses) {
  const ts::DatasetSplit split = ts::MakeAbpAlarmTypes(5, 5, 240, 90);
  EXPECT_EQ(split.train.ClassLabels(), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(split.train.size(), 20u);
  const auto hist = split.train.ClassHistogram();
  for (const auto& [label, count] : hist) EXPECT_EQ(count, 5u);
}

TEST(AbpAlarmTypes, RpmSeparatesAlarmTypes) {
  const ts::DatasetSplit split = ts::MakeAbpAlarmTypes(10, 15, 240, 91);
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kFixed;
  opt.fixed_sax.window = 60;
  opt.fixed_sax.paa_size = 6;
  opt.fixed_sax.alphabet = 4;
  core::RpmClassifier clf(opt);
  clf.Train(split.train);
  // 4 balanced classes -> chance error 0.75.
  EXPECT_LT(clf.Evaluate(split.test), 0.4);
}

}  // namespace
}  // namespace rpm
