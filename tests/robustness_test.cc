// Robustness and failure-injection tests: degenerate and hostile inputs
// (NaN/Inf values, constant series, length-1 series, single instances,
// extreme parameters) must produce defined behavior — an exception or a
// usable fallback, never a crash or a poisoned result. Also covers the
// Logical Shapelets baseline and the Cricket generator.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "baselines/logical_shapelets.h"
#include "baselines/nn_euclidean.h"
#include "core/rpm.h"
#include "ts/generators.h"
#include "ts/rng.h"
#include "ts/znorm.h"

namespace rpm {
namespace {

core::RpmOptions Fixed(std::size_t window) {
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kFixed;
  opt.fixed_sax.window = window;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  return opt;
}

// ---------------- Logical Shapelets ----------------

TEST(LogicalShapeletsTest, TrainsAndBeatsChance) {
  const ts::DatasetSplit split = ts::MakeGunPoint(10, 20, 100, 30);
  baselines::LogicalShapelets clf;
  clf.Train(split.train);
  EXPECT_GE(clf.num_shapelet_nodes(), 1u);
  EXPECT_LE(clf.Evaluate(split.test), 0.25);
}

TEST(LogicalShapeletsTest, LogicHelpsOnConjunctiveConcept) {
  // Class 1 requires BOTH a spike early AND a dip late; class 2 has
  // exactly one of the two. A single shapelet cannot separate this; a
  // conjunction can.
  ts::Rng rng(31);
  ts::Dataset train;
  ts::Dataset test;
  auto make = [&](bool spike, bool dip) {
    ts::Series s(100);
    for (auto& v : s) v = rng.Gaussian(0.0, 0.1);
    if (spike) {
      for (int i = 0; i < 8; ++i) s[15 + i] += 3.0;
    }
    if (dip) {
      for (int i = 0; i < 8; ++i) s[70 + i] -= 3.0;
    }
    return s;
  };
  for (int r = 0; r < 8; ++r) {
    train.Add(1, make(true, true));
    train.Add(2, r % 2 == 0 ? make(true, false) : make(false, true));
    test.Add(1, make(true, true));
    test.Add(2, r % 2 == 0 ? make(true, false) : make(false, true));
  }
  baselines::LogicalShapelets clf;
  clf.Train(train);
  EXPECT_LE(clf.Evaluate(test), 0.2);
}

TEST(LogicalShapeletsTest, ThrowsAppropriately) {
  baselines::LogicalShapelets clf;
  EXPECT_THROW(clf.Classify(ts::Series(10, 0.0)), std::logic_error);
  EXPECT_THROW(clf.Train(ts::Dataset{}), std::invalid_argument);
}

// ---------------- Cricket generator ----------------

TEST(CricketGenerator, TwoMirroredClasses) {
  const ts::DatasetSplit split = ts::MakeCricket(6, 6, 160, 32);
  EXPECT_EQ(split.train.ClassLabels(), (std::vector<int>{1, 2}));
  baselines::NnEuclidean nn;
  nn.Train(split.train);
  EXPECT_LT(nn.Evaluate(split.test), 0.4);
}

// ---------------- Hostile inputs ----------------

TEST(Robustness, ConstantSeriesDatasetTrainsWithFallback) {
  ts::Dataset train;
  for (int i = 0; i < 6; ++i) {
    train.Add(i % 2 + 1, ts::Series(50, static_cast<double>(i % 2)));
  }
  core::RpmClassifier clf(Fixed(20));
  clf.Train(train);  // Flat windows everywhere; must not crash.
  const int label = clf.Classify(ts::Series(50, 0.5));
  EXPECT_TRUE(label == 1 || label == 2);
}

TEST(Robustness, SingleInstancePerClass) {
  ts::Rng rng(33);
  ts::Dataset train;
  for (int label : {1, 2}) {
    ts::Series s(80);
    for (auto& v : s) v = rng.Gaussian();
    train.Add(label, std::move(s));
  }
  core::RpmClassifier clf(Fixed(20));
  clf.Train(train);
  const int label = clf.Classify(train[0].values);
  EXPECT_TRUE(label == 1 || label == 2);
}

TEST(Robustness, VeryShortSeries) {
  ts::Dataset train;
  ts::Rng rng(34);
  for (int i = 0; i < 8; ++i) {
    ts::Series s(4);
    for (auto& v : s) v = rng.Gaussian(i % 2 == 0 ? -1.0 : 1.0, 0.1);
    train.Add(i % 2 + 1, std::move(s));
  }
  core::RpmClassifier clf(Fixed(20));  // window far exceeds series length
  clf.Train(train);                    // falls back to majority
  EXPECT_NO_THROW(clf.Classify(ts::Series(4, 0.0)));
}

TEST(Robustness, ClassifySeriesShorterThanPatterns) {
  const ts::DatasetSplit split = ts::MakeGunPoint(8, 4, 100, 35);
  core::RpmClassifier clf(Fixed(25));
  clf.Train(split.train);
  ASSERT_FALSE(clf.patterns().empty());
  // A query shorter than every pattern still classifies.
  EXPECT_NO_THROW(clf.Classify(ts::Series(5, 1.0)));
  EXPECT_NO_THROW(clf.Classify(ts::Series(1, 1.0)));
}

TEST(Robustness, ZNormHandlesExtremeValues) {
  ts::Series s = {1e300, -1e300, 1e300, -1e300};
  ts::ZNormalizeInPlace(s);
  for (double v : s) EXPECT_TRUE(std::isfinite(v));
}

TEST(Robustness, BestMatchWithNanPoisonsOnlyDistance) {
  // NaNs in the haystack must not crash the scan; the distance may be
  // NaN/garbage for affected windows but the call returns.
  ts::Series pattern = {0.0, 1.0, -1.0};
  ts::ZNormalizeInPlace(pattern);
  ts::Series hay(20, 0.5);
  hay[7] = std::numeric_limits<double>::quiet_NaN();
  hay[15] = 2.0;
  hay[16] = -2.0;
  hay[14] = 0.0;
  EXPECT_NO_THROW(distance::FindBestMatch(pattern, hay));
}

TEST(Robustness, SvmOnDuplicateRows) {
  ml::FeatureDataset d;
  for (int i = 0; i < 10; ++i) {
    d.Add({1.0, 2.0}, 1);
    d.Add({1.0, 2.0}, 2);  // identical features, different labels
  }
  ml::SvmClassifier svm;
  EXPECT_NO_THROW(svm.Train(d));
  EXPECT_NO_THROW(svm.Predict(std::vector<double>{1.0, 2.0}));
}

TEST(Robustness, ExtremeGammaValues) {
  const ts::DatasetSplit split = ts::MakeCbf(6, 4, 128, 36);
  for (double gamma : {0.0, 1.0, 5.0}) {
    core::RpmOptions opt = Fixed(32);
    opt.gamma = gamma;
    core::RpmClassifier clf(opt);
    EXPECT_NO_THROW(clf.Train(split.train)) << gamma;
    EXPECT_NO_THROW(clf.Classify(split.test[0].values)) << gamma;
  }
}

TEST(Robustness, ExtremeTauPercentiles) {
  const ts::DatasetSplit split = ts::MakeCbf(6, 4, 128, 37);
  for (double tau : {0.0, 100.0, 250.0, -10.0}) {  // clamped internally
    core::RpmOptions opt = Fixed(32);
    opt.tau_percentile = tau;
    core::RpmClassifier clf(opt);
    EXPECT_NO_THROW(clf.Train(split.train)) << tau;
  }
}

TEST(Robustness, AlphabetBoundsEnforced) {
  EXPECT_THROW(sax::SaxWord(ts::Series(10, 0.0), 4, 1),
               std::invalid_argument);
  EXPECT_THROW(sax::SaxWord(ts::Series(10, 0.0), 4, 100),
               std::invalid_argument);
}

TEST(Robustness, MixedLengthTrainingSet) {
  // RPM concatenates per class, so ragged inputs are legal.
  ts::Rng rng(38);
  ts::Dataset train;
  for (int i = 0; i < 10; ++i) {
    const std::size_t len = 60 + 10 * (i % 3);
    ts::Series s(len);
    for (std::size_t j = 0; j < len; ++j) {
      s[j] = (i % 2 == 0 ? std::sin(0.3 * static_cast<double>(j))
                         : std::cos(0.3 * static_cast<double>(j))) +
             rng.Gaussian(0.0, 0.05);
    }
    train.Add(i % 2 + 1, std::move(s));
  }
  core::RpmClassifier clf(Fixed(20));
  EXPECT_NO_THROW(clf.Train(train));
  EXPECT_NO_THROW(clf.Classify(train[0].values));
}

}  // namespace
}  // namespace rpm
