// Tests for the SAX-to-grammar bridge: token vocabulary, occurrence ->
// raw-interval mapping, and junction filtering.

#include <gtest/gtest.h>

#include <cmath>

#include "grammar/motifs.h"
#include "ts/rng.h"

namespace rpm::grammar {
namespace {

TEST(Tokens, VocabularyAssignsDenseIdsInFirstSeenOrder) {
  std::vector<sax::SaxRecord> records = {
      {"ab", 0}, {"cd", 2}, {"ab", 5}, {"ee", 7}, {"cd", 9}};
  const auto tokens = TokensFromRecords(records);
  EXPECT_EQ(tokens, (std::vector<std::uint32_t>{0, 1, 0, 2, 1}));
}

TEST(Intervals, OccurrenceMapsThroughOffsets) {
  std::vector<sax::SaxRecord> records = {
      {"a", 0}, {"b", 3}, {"c", 7}, {"d", 12}};
  const RuleOccurrence occ{1, 2};  // tokens 1..2 -> offsets 3..7+window
  const Interval iv = OccurrenceToInterval(occ, records, 5, 100);
  EXPECT_EQ(iv.start, 3u);
  EXPECT_EQ(iv.end(), 12u);  // 7 + 5
}

TEST(Intervals, ClampedToSeriesLength) {
  std::vector<sax::SaxRecord> records = {{"a", 0}, {"b", 8}};
  const Interval iv = OccurrenceToInterval({0, 1}, records, 5, 10);
  EXPECT_EQ(iv.end(), 10u);
}

TEST(Motifs, FindsPlantedRepeats) {
  // Two identical sine bursts in noise: the discretized sequence repeats,
  // so at least one motif with two intervals covering the bursts must
  // appear.
  ts::Rng rng(5);
  ts::Series s(300);
  for (auto& v : s) v = rng.Gaussian(0.0, 0.2);
  auto plant = [&](std::size_t at) {
    for (std::size_t i = 0; i < 50; ++i) {
      s[at + i] += 3.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / 25.0);
    }
  };
  plant(40);
  plant(200);

  sax::SaxOptions opt;
  opt.window = 25;
  opt.paa_size = 5;
  opt.alphabet = 4;
  const auto records = sax::DiscretizeSlidingWindow(s, opt);
  const auto motifs =
      FindMotifCandidates(records, opt.window, s.size(), {}, true);
  ASSERT_FALSE(motifs.empty());
  bool covers_both = false;
  for (const auto& m : motifs) {
    bool first = false;
    bool second = false;
    for (const auto& iv : m.intervals) {
      if (iv.start >= 25 && iv.start <= 70) first = true;
      if (iv.start >= 185 && iv.start <= 230) second = true;
    }
    covers_both |= (first && second);
  }
  EXPECT_TRUE(covers_both);
}

TEST(Motifs, JunctionFilteringDropsSpanningOccurrences) {
  // Construct records so one occurrence spans the boundary at 50.
  std::vector<sax::SaxRecord> records;
  // Repeat the word pattern (w0 w1) at offsets {10, 45, 80}; with window
  // 10, the occurrence starting at 45 spans the boundary at 50.
  const std::vector<std::pair<std::string, std::size_t>> items = {
      {"aa", 10}, {"bb", 14}, {"cc", 30},
      {"aa", 45}, {"bb", 49}, {"dd", 70},
      {"aa", 80}, {"bb", 84}};
  for (const auto& [w, off] : items) records.push_back({w, off});

  const auto unfiltered =
      FindMotifCandidates(records, 10, 120, {50}, false);
  const auto filtered = FindMotifCandidates(records, 10, 120, {50}, true);
  ASSERT_FALSE(unfiltered.empty());
  ASSERT_FALSE(filtered.empty());
  std::size_t unfiltered_total = 0;
  std::size_t filtered_total = 0;
  for (const auto& m : unfiltered) unfiltered_total += m.intervals.size();
  for (const auto& m : filtered) filtered_total += m.intervals.size();
  EXPECT_EQ(unfiltered_total, 3u);
  EXPECT_EQ(filtered_total, 2u);
  for (const auto& m : filtered) {
    for (const auto& iv : m.intervals) {
      EXPECT_TRUE(iv.end() <= 50 || iv.start >= 50);
    }
  }
}

TEST(Motifs, EmptyRecords) {
  EXPECT_TRUE(FindMotifCandidates({}, 10, 100, {}, true).empty());
}

TEST(Motifs, VariableLengthOccurrences) {
  // Numerosity reduction makes occurrences of one rule differ in raw
  // length; verify we actually observe that on a sawtooth with varying
  // tooth widths.
  ts::Series s;
  ts::Rng rng(9);
  for (int rep = 0; rep < 6; ++rep) {
    const int width = 20 + 4 * (rep % 3);
    for (int i = 0; i < width; ++i) {
      s.push_back(static_cast<double>(i) / width + rng.Gaussian(0.0, 0.02));
    }
  }
  sax::SaxOptions opt;
  opt.window = 16;
  opt.paa_size = 4;
  opt.alphabet = 3;
  const auto records = sax::DiscretizeSlidingWindow(s, opt);
  const auto motifs =
      FindMotifCandidates(records, opt.window, s.size(), {}, true);
  bool saw_variable = false;
  for (const auto& m : motifs) {
    std::size_t lo = m.intervals[0].length;
    std::size_t hi = lo;
    for (const auto& iv : m.intervals) {
      lo = std::min(lo, iv.length);
      hi = std::max(hi, iv.length);
    }
    if (hi > lo) saw_variable = true;
  }
  EXPECT_TRUE(saw_variable);
}

}  // namespace
}  // namespace rpm::grammar
