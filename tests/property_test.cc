// Cross-cutting property tests: invariants that must hold across
// parameter sweeps and random inputs, several checked against brute-force
// reference implementations.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "distance/euclidean.h"
#include "grammar/inspect.h"
#include "grammar/motifs.h"
#include "sax/sax.h"
#include "ts/generators.h"
#include "ts/resample.h"
#include "ts/rng.h"
#include "ts/rotation.h"
#include "ts/ucr_io.h"
#include "ts/znorm.h"

namespace rpm {
namespace {

ts::Series RandomSeries(std::size_t n, ts::Rng& rng) {
  ts::Series s(n);
  double v = 0.0;
  for (auto& x : s) {
    v += rng.Gaussian();
    x = v;
  }
  return s;
}

// ---------------- SAX invariances ----------------

// SAX of a z-normalized window is invariant to affine transforms
// (a*x + b, a > 0) of the raw series — the property that makes SAX
// comparable across scales.
class SaxAffineInvariance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SaxAffineInvariance, WordsUnchangedUnderPositiveAffineMap) {
  ts::Rng rng(GetParam());
  const ts::Series s = RandomSeries(120, rng);
  ts::Series mapped(s.size());
  const double a = rng.Uniform(0.5, 5.0);
  const double b = rng.Uniform(-10.0, 10.0);
  for (std::size_t i = 0; i < s.size(); ++i) mapped[i] = a * s[i] + b;

  sax::SaxOptions opt;
  opt.window = 30;
  opt.paa_size = 6;
  opt.alphabet = 5;
  const auto original = sax::DiscretizeSlidingWindow(s, opt);
  const auto transformed = sax::DiscretizeSlidingWindow(mapped, opt);
  ASSERT_EQ(original.size(), transformed.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i].word, transformed[i].word);
    EXPECT_EQ(original[i].offset, transformed[i].offset);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaxAffineInvariance,
                         ::testing::Range<std::size_t>(1, 11));

// Numerosity reduction only ever shortens the record list and preserves
// the first record.
TEST(SaxProperties, NumerosityReductionIsASubsequence) {
  ts::Rng rng(42);
  const ts::Series s = RandomSeries(200, rng);
  sax::SaxOptions opt;
  opt.window = 20;
  opt.paa_size = 4;
  opt.alphabet = 3;
  opt.numerosity_reduction = false;
  const auto full = sax::DiscretizeSlidingWindow(s, opt);
  opt.numerosity_reduction = true;
  const auto reduced = sax::DiscretizeSlidingWindow(s, opt);
  ASSERT_FALSE(reduced.empty());
  EXPECT_EQ(reduced.front().offset, full.front().offset);
  // Every reduced record appears verbatim in the full list.
  std::size_t cursor = 0;
  for (const auto& rec : reduced) {
    while (cursor < full.size() && full[cursor].offset != rec.offset) {
      ++cursor;
    }
    ASSERT_LT(cursor, full.size());
    EXPECT_EQ(full[cursor].word, rec.word);
  }
}

// ---------------- Best-match invariances ----------------

// The z-normalized best-match distance is invariant to affine transforms
// of the haystack.
TEST(BestMatchProperties, AffineInvarianceOfHaystack) {
  ts::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    ts::Series pattern = RandomSeries(16, rng);
    ts::ZNormalizeInPlace(pattern);
    const ts::Series hay = RandomSeries(150, rng);
    ts::Series mapped(hay.size());
    const double a = rng.Uniform(0.5, 3.0);
    const double b = rng.Uniform(-5.0, 5.0);
    for (std::size_t i = 0; i < hay.size(); ++i) mapped[i] = a * hay[i] + b;
    const auto m1 = distance::FindBestMatch(pattern, hay);
    const auto m2 = distance::FindBestMatch(pattern, mapped);
    EXPECT_EQ(m1.position, m2.position);
    EXPECT_NEAR(m1.distance, m2.distance, 1e-9);
  }
}

// Brute-force reference: z-normalize every window explicitly and take the
// minimum length-normalized distance.
TEST(BestMatchProperties, MatchesBruteForceReference) {
  ts::Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    ts::Series pattern = RandomSeries(12, rng);
    ts::ZNormalizeInPlace(pattern);
    const ts::Series hay = RandomSeries(80, rng);
    double ref = 1e300;
    std::size_t ref_pos = 0;
    for (std::size_t pos = 0; pos + pattern.size() <= hay.size(); ++pos) {
      ts::Series window(hay.begin() + static_cast<std::ptrdiff_t>(pos),
                        hay.begin() + static_cast<std::ptrdiff_t>(
                                          pos + pattern.size()));
      ts::ZNormalizeInPlace(window);
      const double d = distance::NormalizedEuclidean(window, pattern);
      if (d < ref) {
        ref = d;
        ref_pos = pos;
      }
    }
    const auto m = distance::FindBestMatch(pattern, hay);
    EXPECT_EQ(m.position, ref_pos);
    EXPECT_NEAR(m.distance, ref, 1e-9);
  }
}

// ---------------- Grammar-motif cross-check ----------------

// Brute-force repeated-word-bigram detector: any SAX word appearing >= 3
// times in the (numerosity-reduced) record list should be inside some
// grammar rule occurrence region, because Sequitur reduces every repeated
// digram and frequent words participate in repeated digrams.
TEST(MotifProperties, FrequentRegionsAreCovered) {
  ts::Rng rng(9);
  // Strongly periodic series: every period is a motif occurrence.
  ts::Series s(400);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 40.0) +
           rng.Gaussian(0.0, 0.05);
  }
  sax::SaxOptions opt;
  opt.window = 40;
  opt.paa_size = 4;
  opt.alphabet = 4;
  const auto records = sax::DiscretizeSlidingWindow(s, opt);
  const auto motifs = grammar::FindMotifCandidates(records, opt.window,
                                                   s.size(), {}, true);
  ASSERT_FALSE(motifs.empty());
  // The periodic structure must cover most of the series.
  EXPECT_GT(grammar::CoverageFraction(motifs, s.size()), 0.5);
}

// Motif intervals never escape the series and never have zero length.
TEST(MotifProperties, IntervalsWellFormedAcrossParams) {
  ts::Rng rng(10);
  const ts::Series s = RandomSeries(500, rng);
  for (std::size_t window : {16u, 32u, 64u}) {
    for (int alphabet : {3, 5}) {
      sax::SaxOptions opt;
      opt.window = window;
      opt.paa_size = 4;
      opt.alphabet = alphabet;
      const auto records = sax::DiscretizeSlidingWindow(s, opt);
      for (const auto& m : grammar::FindMotifCandidates(
               records, window, s.size(), {}, true)) {
        EXPECT_GE(m.intervals.size(), 2u);
        for (const auto& iv : m.intervals) {
          EXPECT_GT(iv.length, 0u);
          EXPECT_LE(iv.end(), s.size());
          EXPECT_GE(iv.length, window);  // covers >= one window
        }
      }
    }
  }
}

// ---------------- UCR round-trip fuzz ----------------

TEST(UcrProperties, RandomDatasetsRoundTrip) {
  ts::Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    ts::Dataset d;
    const int classes = static_cast<int>(rng.UniformInt(1, 5));
    const auto rows = static_cast<std::size_t>(rng.UniformInt(1, 12));
    for (std::size_t r = 0; r < rows; ++r) {
      const auto len = static_cast<std::size_t>(rng.UniformInt(1, 30));
      ts::Series s(len);
      for (auto& v : s) v = rng.Gaussian(0.0, 100.0);
      d.Add(static_cast<int>(rng.UniformInt(1, classes)), std::move(s));
    }
    const ts::Dataset back = ts::ParseUcr(ts::FormatUcr(d));
    ASSERT_EQ(back.size(), d.size());
    for (std::size_t i = 0; i < d.size(); ++i) {
      EXPECT_EQ(back[i].label, d[i].label);
      ASSERT_EQ(back[i].values.size(), d[i].values.size());
      for (std::size_t j = 0; j < d[i].values.size(); ++j) {
        EXPECT_NEAR(back[i].values[j], d[i].values[j],
                    1e-8 * std::max(1.0, std::abs(d[i].values[j])));
      }
    }
  }
}

// ---------------- Misc invariances ----------------

TEST(MiscProperties, ZNormIdempotent) {
  ts::Rng rng(12);
  ts::Series s = RandomSeries(50, rng);
  ts::ZNormalizeInPlace(s);
  ts::Series twice = s;
  ts::ZNormalizeInPlace(twice);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(twice[i], s[i], 1e-9);
  }
}

TEST(MiscProperties, RotationPreservesBestMatchDistanceWhenUncut) {
  // If the match region does not straddle the cut, rotating the haystack
  // leaves the best-match distance unchanged.
  ts::Rng rng(13);
  ts::Series pattern = RandomSeries(10, rng);
  ts::ZNormalizeInPlace(pattern);
  ts::Series hay = RandomSeries(100, rng);
  // Plant an exact copy at [20, 30).
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    hay[20 + i] = pattern[i];
  }
  const double d0 = distance::BestMatchDistance(pattern, hay);
  const ts::Series rotated = ts::RotateAt(hay, 60);  // cut after the match
  const double d1 = distance::BestMatchDistance(pattern, rotated);
  EXPECT_NEAR(d0, d1, 1e-9);
}

TEST(MiscProperties, ResampleDownUpKeepsShape) {
  ts::Rng rng(14);
  ts::Series s(64);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 32.0);
  }
  const ts::Series down = ts::ResampleLinear(s, 32);
  const ts::Series up = ts::ResampleLinear(down, 64);
  // Smooth signal: round trip error stays small.
  double max_err = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    max_err = std::max(max_err, std::abs(up[i] - s[i]));
  }
  EXPECT_LT(max_err, 0.1);
}

}  // namespace
}  // namespace rpm
