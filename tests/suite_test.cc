// Suite-wide end-to-end coverage: RPM (fixed parameters, no search) must
// beat chance clearly on every generator family, and a handful of golden
// regression pins lock exact error rates for fixed seeds so accidental
// behavior changes in any pipeline stage are caught immediately.

#include <gtest/gtest.h>

#include "core/rpm.h"
#include "ts/generators.h"
#include "ts/rng.h"

namespace rpm {
namespace {

core::RpmOptions Fixed(std::size_t window) {
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kFixed;
  opt.fixed_sax.window = window;
  opt.fixed_sax.paa_size = 5;
  opt.fixed_sax.alphabet = 4;
  return opt;
}

// ---------------- RPM across every generator family ----------------

class SuiteWideRpm : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const std::vector<ts::DatasetSplit>& Suite() {
    static const std::vector<ts::DatasetSplit> suite =
        ts::BenchmarkSuite({0.8, 424242});
    return suite;
  }
};

TEST_P(SuiteWideRpm, BeatsChanceWithFixedParams) {
  const ts::DatasetSplit& split = Suite()[GetParam()];
  core::RpmOptions opt = Fixed(std::max<std::size_t>(
      6, split.train.MinLength() / 4));
  core::RpmClassifier clf(opt);
  clf.Train(split.train);
  const double chance =
      1.0 - 1.0 / static_cast<double>(split.train.NumClasses());
  EXPECT_LT(clf.Evaluate(split.test), 0.75 * chance) << split.name;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, SuiteWideRpm,
                         ::testing::Range<std::size_t>(0, 14));

// ---------------- Golden regression pins ----------------
//
// Exact values for fixed seeds. If any pipeline stage changes behavior
// (SAX binning, Sequitur reductions, clustering, CFS, SMO), these move —
// that is the point. Update deliberately, never casually.

TEST(Golden, GunPointErrorPinned) {
  const ts::DatasetSplit split = ts::MakeGunPoint(12, 40, 150, 777);
  core::RpmClassifier clf(Fixed(37));
  clf.Train(split.train);
  EXPECT_DOUBLE_EQ(clf.Evaluate(split.test), 0.0);
}

TEST(Golden, CbfPatternCountAndErrorPinned) {
  const ts::DatasetSplit split = ts::MakeCbf(10, 30, 128, 778);
  core::RpmClassifier clf(Fixed(32));
  clf.Train(split.train);
  const double error = clf.Evaluate(split.test);
  // Small tolerance band: exact pin on error, structural pin on count.
  EXPECT_NEAR(error, 0.0667, 1e-3);
  EXPECT_GE(clf.patterns().size(), 4u);
  EXPECT_LE(clf.patterns().size(), 16u);
}

TEST(Golden, SequiturRuleCountPinned) {
  // The grammar over a fixed token stream is fully deterministic.
  ts::Rng rng(12345);
  std::vector<std::uint32_t> tokens;
  for (int i = 0; i < 500; ++i) {
    tokens.push_back(static_cast<std::uint32_t>(rng.UniformInt(0, 3)));
  }
  const grammar::Grammar g = grammar::InferGrammar(tokens);
  EXPECT_EQ(g.Expand(0), tokens);
  const std::size_t rules = g.rules().size();
  static constexpr std::size_t kPinnedRuleCount = 55;
  EXPECT_EQ(rules, kPinnedRuleCount)
      << "Sequitur behavior changed; verify intentionally.";
}

TEST(Golden, DirectEvaluationCountPinned) {
  // DIRECT is deterministic: the combos it explores for a fixed dataset
  // must not drift.
  const ts::DatasetSplit split = ts::MakeGunPoint(8, 4, 100, 779);
  core::RpmOptions opt;
  opt.search = core::ParameterSearch::kDirect;
  opt.direct_max_evaluations = 10;
  opt.param_splits = 2;
  opt.param_folds = 2;
  core::RpmClassifier a(opt);
  core::RpmClassifier b(opt);
  a.Train(split.train);
  b.Train(split.train);
  EXPECT_EQ(a.combos_evaluated(), b.combos_evaluated());
  EXPECT_EQ(a.sax_by_class().at(1).window, b.sax_by_class().at(1).window);
  EXPECT_EQ(a.ClassifyAll(split.test), b.ClassifyAll(split.test));
}

}  // namespace
}  // namespace rpm
