// Tests for the SAX substrate: Gaussian breakpoints, PAA, word encoding,
// sliding-window discretization with numerosity reduction, and the
// MINDIST lower-bound property.

#include <gtest/gtest.h>

#include <cmath>

#include "distance/euclidean.h"
#include "sax/sax.h"
#include "ts/rng.h"
#include "ts/znorm.h"

namespace rpm::sax {
namespace {

TEST(Breakpoints, KnownValues) {
  // Classic SAX table: alphabet 4 -> {-0.6745, 0, 0.6745} (quartiles).
  const auto& b4 = GaussianBreakpoints(4);
  ASSERT_EQ(b4.size(), 3u);
  EXPECT_NEAR(b4[0], -0.6745, 1e-3);
  EXPECT_NEAR(b4[1], 0.0, 1e-9);
  EXPECT_NEAR(b4[2], 0.6745, 1e-3);
  // Alphabet 3 -> {-0.4307, 0.4307}.
  const auto& b3 = GaussianBreakpoints(3);
  ASSERT_EQ(b3.size(), 2u);
  EXPECT_NEAR(b3[0], -0.4307, 1e-3);
  EXPECT_NEAR(b3[1], 0.4307, 1e-3);
}

TEST(Breakpoints, MonotoneAndSymmetric) {
  for (int a = 2; a <= 12; ++a) {
    const auto& bps = GaussianBreakpoints(a);
    ASSERT_EQ(bps.size(), static_cast<std::size_t>(a - 1));
    for (std::size_t i = 1; i < bps.size(); ++i) {
      EXPECT_LT(bps[i - 1], bps[i]);
    }
    for (std::size_t i = 0; i < bps.size(); ++i) {
      EXPECT_NEAR(bps[i], -bps[bps.size() - 1 - i], 1e-9);
    }
  }
}

TEST(Breakpoints, RejectsOutOfRange) {
  EXPECT_THROW(GaussianBreakpoints(1), std::invalid_argument);
  EXPECT_THROW(GaussianBreakpoints(27), std::invalid_argument);
}

TEST(Paa, ExactDivision) {
  const ts::Series s = {1.0, 3.0, 2.0, 4.0, 10.0, 20.0};
  const ts::Series p = Paa(s, 3);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p[0], 2.0);
  EXPECT_DOUBLE_EQ(p[1], 3.0);
  EXPECT_DOUBLE_EQ(p[2], 15.0);
}

TEST(Paa, FractionalDivisionPreservesMean) {
  // Total weighted mass equals the series mean regardless of segments.
  const ts::Series s = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
  for (std::size_t segments : {2u, 3u, 4u, 5u}) {
    const ts::Series p = Paa(s, segments);
    double mean = 0.0;
    for (double v : p) mean += v;
    mean /= static_cast<double>(segments);
    EXPECT_NEAR(mean, 4.0, 1e-9) << segments;
  }
}

TEST(Paa, SingleSegmentIsMean) {
  const ts::Series s = {2.0, 4.0, 9.0};
  const ts::Series p = Paa(s, 1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p[0], 5.0);
}

TEST(Paa, UpsamplingReplicates) {
  const ts::Series s = {1.0, 2.0};
  const ts::Series p = Paa(s, 4);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[3], 2.0);
}

TEST(PaaRowsTest, BitIdenticalToPerRowPaa) {
  // PaaRows shares one precomputed coverage plan across rows; every row
  // must equal the standalone Paa result bit-for-bit, across downsample,
  // exact-division, and upsample regimes.
  ts::Rng rng(404);
  ts::Series series(160);
  for (auto& v : series) v = rng.Gaussian(0.0, 1.0);
  for (std::size_t window : {7u, 16u, 30u}) {
    const WindowMatrix windows = SlidingWindows(series, window, true, 1);
    for (std::size_t paa : {2u, 4u, 7u, 16u, 40u}) {
      const PaaMatrix rows = PaaRows(windows, paa, 1);
      ASSERT_EQ(rows.count, windows.count);
      for (std::size_t i = 0; i < windows.count; ++i) {
        const ts::Series expect = Paa(windows.Row(i), paa);
        const ts::SeriesView got = rows.Row(i);
        ASSERT_EQ(got.size(), expect.size());
        for (std::size_t s = 0; s < paa; ++s) {
          ASSERT_EQ(got[s], expect[s])
              << "window " << window << " paa " << paa << " row " << i
              << " seg " << s;
        }
      }
    }
  }
}

TEST(SymbolMapping, RespectsBreakpoints) {
  EXPECT_EQ(Symbol(-2.0, 4), 'a');
  EXPECT_EQ(Symbol(-0.5, 4), 'b');
  EXPECT_EQ(Symbol(0.5, 4), 'c');
  EXPECT_EQ(Symbol(2.0, 4), 'd');
}

TEST(SaxWordTest, RampEncodesMonotonically) {
  ts::Series ramp(32);
  for (std::size_t i = 0; i < 32; ++i) ramp[i] = static_cast<double>(i);
  ts::ZNormalizeInPlace(ramp);
  const std::string w = SaxWord(ramp, 4, 4);
  ASSERT_EQ(w.size(), 4u);
  for (std::size_t i = 1; i < w.size(); ++i) EXPECT_LE(w[i - 1], w[i]);
  EXPECT_EQ(w.front(), 'a');
  EXPECT_EQ(w.back(), 'd');
}

TEST(SlidingWindow, OffsetsAndReduction) {
  // A periodic series yields repeated words; numerosity reduction must
  // keep only run starts, and offsets must be strictly increasing.
  ts::Series s(64);
  for (std::size_t i = 0; i < 64; ++i) {
    s[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 16.0);
  }
  SaxOptions opt;
  opt.window = 16;
  opt.paa_size = 4;
  opt.alphabet = 4;
  const auto reduced = DiscretizeSlidingWindow(s, opt);
  ASSERT_FALSE(reduced.empty());
  for (std::size_t i = 1; i < reduced.size(); ++i) {
    EXPECT_LT(reduced[i - 1].offset, reduced[i].offset);
    EXPECT_NE(reduced[i - 1].word, reduced[i].word);  // adjacent differ
  }
  opt.numerosity_reduction = false;
  const auto full = DiscretizeSlidingWindow(s, opt);
  EXPECT_EQ(full.size(), 64u - 16u + 1u);
  EXPECT_LT(reduced.size(), full.size());
}

TEST(SlidingWindow, ShortSeriesYieldsNothing) {
  SaxOptions opt;
  opt.window = 10;
  EXPECT_TRUE(DiscretizeSlidingWindow(ts::Series(5, 1.0), opt).empty());
}

TEST(SlidingWindow, WordLengthAndAlphabetHonored) {
  ts::Rng rng(2);
  ts::Series s(50);
  for (auto& v : s) v = rng.Gaussian();
  SaxOptions opt;
  opt.window = 20;
  opt.paa_size = 5;
  opt.alphabet = 3;
  for (const auto& rec : DiscretizeSlidingWindow(s, opt)) {
    EXPECT_EQ(rec.word.size(), 5u);
    for (char c : rec.word) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'c');
    }
  }
}

TEST(MinDistTest, IdenticalAndAdjacentAreZero) {
  EXPECT_DOUBLE_EQ(MinDist("abc", "abc", 4, 12), 0.0);
  EXPECT_DOUBLE_EQ(MinDist("ab", "ba", 4, 8), 0.0);  // adjacent symbols
  EXPECT_GT(MinDist("aa", "cc", 4, 8), 0.0);
  EXPECT_THROW(MinDist("ab", "abc", 4, 8), std::invalid_argument);
}

// Property: MINDIST lower-bounds the true Euclidean distance of the
// z-normalized subsequences (the SAX contract).
class MinDistProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MinDistProperty, LowerBoundsEuclidean) {
  ts::Rng rng(GetParam());
  const std::size_t n = 40;
  ts::Series a(n);
  ts::Series b(n);
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian();
  ts::ZNormalizeInPlace(a);
  ts::ZNormalizeInPlace(b);
  for (int alphabet : {3, 4, 6, 8}) {
    for (std::size_t w : {4u, 8u}) {
      const std::string wa = SaxWord(a, w, alphabet);
      const std::string wb = SaxWord(b, w, alphabet);
      EXPECT_LE(MinDist(wa, wb, alphabet, n),
                distance::Euclidean(a, b) + 1e-9)
          << "alphabet=" << alphabet << " w=" << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MinDistProperty,
                         ::testing::Range<std::size_t>(1, 16));

}  // namespace
}  // namespace rpm::sax
