// Tests for the synthetic UCR-style dataset generators: shape, size,
// determinism, normalization, and (parameterized across the whole suite)
// the invariants every generator must satisfy.

#include <gtest/gtest.h>

#include <cmath>

#include "ts/generators.h"
#include "ts/znorm.h"

namespace rpm::ts {
namespace {

TEST(Generators, CbfShapesAndLabels) {
  const DatasetSplit split = MakeCbf(5, 7, 128, 1);
  EXPECT_EQ(split.name, "CBF");
  EXPECT_EQ(split.train.size(), 15u);  // 3 classes x 5
  EXPECT_EQ(split.test.size(), 21u);
  EXPECT_EQ(split.train.ClassLabels(), (std::vector<int>{1, 2, 3}));
  for (const auto& inst : split.train) {
    EXPECT_EQ(inst.values.size(), 128u);
  }
}

TEST(Generators, DeterministicGivenSeed) {
  const DatasetSplit a = MakeGunPoint(4, 4, 100, 77);
  const DatasetSplit b = MakeGunPoint(4, 4, 100, 77);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].values, b.train[i].values);
  }
}

TEST(Generators, DifferentSeedsDiffer) {
  const DatasetSplit a = MakeCoffee(3, 3, 120, 1);
  const DatasetSplit b = MakeCoffee(3, 3, 120, 2);
  EXPECT_NE(a.train[0].values, b.train[0].values);
}

TEST(Generators, SyntheticControlHasSixClasses) {
  const DatasetSplit split = MakeSyntheticControl(2, 2, 60, 5);
  EXPECT_EQ(split.train.NumClasses(), 6u);
  EXPECT_EQ(split.train.size(), 12u);
}

TEST(Generators, TwoPatternsHasFourClasses) {
  const DatasetSplit split = MakeTwoPatterns(2, 2, 128, 5);
  EXPECT_EQ(split.train.NumClasses(), 4u);
}

TEST(Generators, TraceHasFourClasses) {
  EXPECT_EQ(MakeTrace(2, 2, 100, 5).train.NumClasses(), 4u);
}

TEST(Generators, ShapeOutlinesArePeriodicLike) {
  // A polygon radial scan starts and ends at the same contour point, so
  // first and last samples should be close after normalization.
  // Z-normalization stretches the raw radius range (~[0.5, 1]) by ~5x, so
  // the tolerance is generous; the scan must still end near where it
  // started rather than at the opposite extreme.
  const DatasetSplit split = MakeShapeOutlines(2, 2, 128, 9);
  for (const auto& inst : split.train) {
    EXPECT_LT(std::abs(inst.values.front() - inst.values.back()), 1.5);
  }
}

TEST(Generators, AbpAlarmHasTwoClasses) {
  const DatasetSplit split = MakeAbpAlarm(4, 4, 200, 3);
  EXPECT_EQ(split.train.ClassLabels(), (std::vector<int>{1, 2}));
  EXPECT_EQ(split.train.MinLength(), 200u);
}

TEST(Generators, BenchmarkSuiteComposition) {
  SuiteOptions options;
  options.size_scale = 0.5;
  const auto suite = BenchmarkSuite(options);
  EXPECT_EQ(suite.size(), 14u);
  for (const auto& split : suite) {
    EXPECT_FALSE(split.name.empty());
    EXPECT_FALSE(split.train.empty());
    EXPECT_FALSE(split.test.empty());
    EXPECT_GE(split.train.CountOfClass(split.train.ClassLabels().front()),
              2u);
  }
}

TEST(Generators, RotationSuiteComposition) {
  const auto suite = RotationSuite({0.5, 1});
  EXPECT_EQ(suite.size(), 5u);
}

// ---- Parameterized invariants over the full suite. ----

class SuiteInvariantTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const std::vector<DatasetSplit>& Suite() {
    static const std::vector<DatasetSplit> suite =
        BenchmarkSuite({0.5, 20160315});
    return suite;
  }
};

TEST_P(SuiteInvariantTest, InstancesAreZNormalized) {
  const DatasetSplit& split = Suite()[GetParam()];
  for (const auto& inst : split.train) {
    EXPECT_NEAR(Mean(inst.values), 0.0, 1e-9) << split.name;
    const double sd = StdDev(inst.values);
    // Flat instances are only centered; none of the generators emit them,
    // so stddev must be 1.
    EXPECT_NEAR(sd, 1.0, 1e-9) << split.name;
  }
}

TEST_P(SuiteInvariantTest, TrainAndTestShareClassesAndLengths) {
  const DatasetSplit& split = Suite()[GetParam()];
  EXPECT_EQ(split.train.ClassLabels(), split.test.ClassLabels())
      << split.name;
  EXPECT_EQ(split.train.MinLength(), split.train.MaxLength()) << split.name;
  EXPECT_EQ(split.train.MinLength(), split.test.MinLength()) << split.name;
}

TEST_P(SuiteInvariantTest, ClassesAreBalancedInTrain) {
  const DatasetSplit& split = Suite()[GetParam()];
  const auto hist = split.train.ClassHistogram();
  const std::size_t first = hist.begin()->second;
  for (const auto& [label, count] : hist) {
    EXPECT_EQ(count, first) << split.name;
  }
}

TEST_P(SuiteInvariantTest, ValuesAreFinite) {
  const DatasetSplit& split = Suite()[GetParam()];
  for (const auto& inst : split.train) {
    for (double v : inst.values) {
      EXPECT_TRUE(std::isfinite(v)) << split.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, SuiteInvariantTest,
                         ::testing::Range<std::size_t>(0, 14));

}  // namespace
}  // namespace rpm::ts
