// Unit tests for the time-series core: Dataset, z-normalization,
// resampling, rotation, and UCR IO.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ts/resample.h"
#include "ts/rng.h"
#include "ts/rotation.h"
#include "ts/series.h"
#include "ts/ucr_io.h"
#include "ts/znorm.h"

namespace rpm::ts {
namespace {

TEST(Dataset, ClassAccessors) {
  Dataset d;
  d.Add(2, {1.0, 2.0});
  d.Add(1, {3.0, 4.0, 5.0});
  d.Add(2, {6.0});
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.ClassLabels(), (std::vector<int>{1, 2}));
  EXPECT_EQ(d.NumClasses(), 2u);
  EXPECT_EQ(d.CountOfClass(2), 2u);
  EXPECT_EQ(d.IndicesOfClass(2), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(d.InstancesOfClass(1).size(), 1u);
  EXPECT_EQ(d.MaxLength(), 3u);
  EXPECT_EQ(d.MinLength(), 1u);
  const auto hist = d.ClassHistogram();
  EXPECT_EQ(hist.at(1), 1u);
  EXPECT_EQ(hist.at(2), 2u);
}

TEST(Dataset, EmptyDataset) {
  Dataset d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.MaxLength(), 0u);
  EXPECT_EQ(d.MinLength(), 0u);
  EXPECT_TRUE(d.ClassLabels().empty());
}

TEST(ZNorm, MeanAndStdDev) {
  const Series s = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(s), 2.5);
  EXPECT_NEAR(StdDev(s), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(Mean(Series{}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev(Series{}), 0.0);
}

TEST(ZNorm, NormalizesToZeroMeanUnitVariance) {
  Series s = {3.0, 7.0, 1.0, 9.0, 5.0};
  ZNormalizeInPlace(s);
  EXPECT_NEAR(Mean(s), 0.0, 1e-12);
  EXPECT_NEAR(StdDev(s), 1.0, 1e-12);
}

TEST(ZNorm, FlatSeriesIsOnlyCentered) {
  Series s = {4.0, 4.0, 4.0};
  ZNormalizeInPlace(s);
  for (double v : s) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ZNorm, DatasetNormalization) {
  Dataset d;
  d.Add(1, {0.0, 10.0, 20.0});
  d.Add(2, {5.0, 5.0, 5.0});
  ZNormalizeDataset(d);
  EXPECT_NEAR(Mean(d[0].values), 0.0, 1e-12);
  EXPECT_NEAR(StdDev(d[0].values), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(d[1].values[0], 0.0);
}

TEST(Resample, IdentityWhenSameLength) {
  const Series s = {1.0, 2.0, 3.0, 4.0};
  const Series r = ResampleLinear(s, 4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(r[i], s[i], 1e-12);
}

TEST(Resample, EndpointsPreserved) {
  const Series s = {2.0, -1.0, 5.0, 0.5, 3.0};
  for (std::size_t target : {2u, 3u, 7u, 19u}) {
    const Series r = ResampleLinear(s, target);
    ASSERT_EQ(r.size(), target);
    EXPECT_NEAR(r.front(), s.front(), 1e-12);
    EXPECT_NEAR(r.back(), s.back(), 1e-12);
  }
}

TEST(Resample, LinearRampStaysLinear) {
  Series ramp(10);
  for (std::size_t i = 0; i < 10; ++i) ramp[i] = static_cast<double>(i);
  const Series r = ResampleLinear(ramp, 19);
  for (std::size_t i = 0; i < 19; ++i) {
    EXPECT_NEAR(r[i], static_cast<double>(i) * 9.0 / 18.0, 1e-9);
  }
}

TEST(Resample, DegenerateInputs) {
  EXPECT_EQ(ResampleLinear(Series{}, 5), Series(5, 0.0));
  EXPECT_EQ(ResampleLinear(Series{3.0}, 4), Series(4, 3.0));
  EXPECT_TRUE(ResampleLinear(Series{1.0, 2.0}, 0).empty());
  const Series one = ResampleLinear(Series{1.0, 2.0, 3.0}, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 1.0);
}

TEST(Rotation, RotateAtSwapsHalves) {
  const Series s = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_EQ(RotateAt(s, 2), (Series{3.0, 4.0, 5.0, 1.0, 2.0}));
  EXPECT_EQ(RotateAt(s, 0), s);
  EXPECT_EQ(RotateAt(s, 5), s);  // modulo wrap
  EXPECT_EQ(RotateAt(s, 7), RotateAt(s, 2));
}

TEST(Rotation, MidpointRotationIsInvolutionForEvenLength) {
  const Series s = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(RotateAtMidpoint(RotateAtMidpoint(s)), s);
}

TEST(Rotation, RandomRotatePreservesMultisetAndLabels) {
  Dataset d;
  d.Add(1, {1.0, 2.0, 3.0, 4.0});
  d.Add(2, {9.0, 8.0, 7.0});
  Rng rng(5);
  const Dataset rotated = RandomlyRotate(d, rng);
  ASSERT_EQ(rotated.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(rotated[i].label, d[i].label);
    Series a = d[i].values;
    Series b = rotated[i].values;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(UcrIo, ParseBasic) {
  const Dataset d = ParseUcr("1,0.5,1.5,2.5\n2 1.0 2.0 3.0\n");
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].label, 1);
  EXPECT_EQ(d[0].values, (Series{0.5, 1.5, 2.5}));
  EXPECT_EQ(d[1].label, 2);
}

TEST(UcrIo, ParseScientificLabels) {
  const Dataset d = ParseUcr("1.0000000e+00,2.0,3.0\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].label, 1);
}

TEST(UcrIo, MixedSeparatorsAndCrlf) {
  // Real archive files mix commas, spaces, and tabs — sometimes within
  // one line — and Windows-edited copies carry CRLF endings. All of it
  // must parse to the same instances.
  const Dataset d =
      ParseUcr("1,0.5 1.5\t2.5\r\n2\t1.0,2.0 3.0\r\n-1 ,4.0,\t5.0, 6.0\n");
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0].label, 1);
  EXPECT_EQ(d[0].values, (Series{0.5, 1.5, 2.5}));
  EXPECT_EQ(d[1].label, 2);
  EXPECT_EQ(d[1].values, (Series{1.0, 2.0, 3.0}));
  EXPECT_EQ(d[2].label, -1);
  EXPECT_EQ(d[2].values, (Series{4.0, 5.0, 6.0}));
  // Float labels round to nearest (the documented contract), including
  // when negative.
  EXPECT_EQ(ParseUcr("-1.2e0,1.0\n")[0].label, -1);
  EXPECT_EQ(ParseUcr("2.7,1.0\n")[0].label, 3);
}

TEST(UcrIo, SkipsBlankLinesAndRejectsGarbage) {
  const Dataset d = ParseUcr("\n1,2,3\n\n");
  EXPECT_EQ(d.size(), 1u);
  EXPECT_THROW(ParseUcr("1,abc,3\n"), UcrFormatError);
  EXPECT_THROW(ParseUcr("1\n"), UcrFormatError);
}

TEST(UcrIo, RoundTripThroughFile) {
  Dataset d;
  d.Add(3, {1.25, -2.5, 0.0});
  d.Add(1, {4.0, 5.0, 6.0});
  const std::string path =
      (std::filesystem::temp_directory_path() / "rpm_ucr_io_test.csv")
          .string();
  SaveUcrFile(d, path);
  const Dataset back = LoadUcrFile(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(back[i].label, d[i].label);
    ASSERT_EQ(back[i].values.size(), d[i].values.size());
    for (std::size_t j = 0; j < d[i].values.size(); ++j) {
      EXPECT_NEAR(back[i].values[j], d[i].values[j], 1e-9);
    }
  }
}

TEST(UcrIo, LoadMissingFileThrows) {
  EXPECT_THROW(LoadUcrFile("/nonexistent/rpm_test_file.csv"),
               UcrFormatError);
}

TEST(Rng, DeterministicAndForkIndependent) {
  Rng a(11);
  Rng b(11);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
  Rng parent(3);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Uniform(), child.Uniform());
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(1);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(2, 4);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 4);
    saw_lo |= (v == 2);
    saw_hi |= (v == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

}  // namespace
}  // namespace rpm::ts
