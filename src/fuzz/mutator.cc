#include "fuzz/mutator.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>

namespace rpm::fuzz {
namespace {

struct Token {
  std::size_t begin = 0;
  std::size_t end = 0;  // one past
};

std::vector<Token> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i >= text.size()) break;
    Token t;
    t.begin = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    t.end = i;
    tokens.push_back(t);
  }
  return tokens;
}

bool IsNumeric(const std::string& text, const Token& t) {
  const std::string token = text.substr(t.begin, t.end - t.begin);
  char* end = nullptr;
  std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size() && !token.empty();
}

std::string ReplaceToken(const std::string& text, const Token& t,
                         const std::string& replacement) {
  return text.substr(0, t.begin) + replacement + text.substr(t.end);
}

// Replacement values chosen to probe count fields (unbounded resize /
// loop bounds), float parsers (inf/nan/overflow), and sign handling.
const char* const kExtremes[] = {
    "-1",
    "0",
    "99999999999999999999",  // overflows size_t extraction -> failbit
    "1048577",               // just over the 1<<20 entry caps
    "16777217",              // just over the 1<<24 pattern-length cap
    "4294967296",
    "1e308",
    "-1e308",
    "nan",
    "inf",
    "0.0000000001",
};

}  // namespace

std::vector<std::string> ChunkBytes(const std::string& bytes,
                                    WireFault fault, SplitMix64* rng) {
  std::vector<std::string> segments;
  if (fault != WireFault::kSplit || bytes.empty()) {
    if (!bytes.empty()) segments.push_back(bytes);
    return segments;
  }
  std::size_t pos = 0;
  std::size_t dribbles = 0;
  while (pos < bytes.size()) {
    // Dribble single-digit chunks first (the adversarial part: headers
    // and length prefixes land split across reads), then widen so large
    // payloads do not take thousands of poll iterations.
    const std::size_t want =
        dribbles < 64 ? rng->Range(1, 7) : rng->Range(64, 512);
    ++dribbles;
    const std::size_t n = std::min(want, bytes.size() - pos);
    segments.push_back(bytes.substr(pos, n));
    pos += n;
  }
  return segments;
}

const char* ModelMutationName(std::uint64_t strategy) {
  switch (strategy) {
    case 0: return "truncate";
    case 1: return "byte-flip";
    case 2: return "numeric-extreme";
    case 3: return "tag-corrupt";
    case 4: return "line-duplicate";
    case 5: return "line-delete";
    case 6: return "header-corrupt";
    case 7: return "count-bomb";
    case 8: return "garbage-insert";
  }
  return "?";
}

std::string MutateModelText(const std::string& base, SplitMix64* rng,
                            std::uint64_t* strategy_out) {
  const std::uint64_t strategy = rng->Below(9);
  if (strategy_out) *strategy_out = strategy;
  std::string text = base;
  switch (strategy) {
    case 0: {  // truncate anywhere, including mid-token
      text.resize(rng->Below(text.size()));
      break;
    }
    case 1: {  // flip random bytes
      const std::size_t flips = rng->Range(1, 8);
      for (std::size_t i = 0; i < flips && !text.empty(); ++i) {
        text[rng->Below(text.size())] ^=
            static_cast<char>(1u << rng->Below(8));
      }
      break;
    }
    case 2: {  // replace one numeric token with an extreme
      const auto tokens = Tokenize(text);
      std::vector<Token> numeric;
      for (const auto& t : tokens) {
        if (IsNumeric(text, t)) numeric.push_back(t);
      }
      if (!numeric.empty()) {
        const Token& target = numeric[rng->Below(numeric.size())];
        text = ReplaceToken(
            text, target,
            kExtremes[rng->Below(sizeof(kExtremes) / sizeof(kExtremes[0]))]);
      }
      break;
    }
    case 3: {  // corrupt a section tag
      const char* const tags[] = {"flags", "majority", "sax",    "patterns",
                                  "classifier", "knn", "gnb",    "svm",
                                  "moments",    "models"};
      const char* tag = tags[rng->Below(sizeof(tags) / sizeof(tags[0]))];
      const std::size_t at = text.find(tag);
      if (at != std::string::npos) {
        text = text.substr(0, at) + "zzz" + text.substr(at + std::strlen(tag));
      }
      break;
    }
    case 4: {  // duplicate one line
      std::vector<std::string> lines;
      std::size_t start = 0;
      while (start <= text.size()) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
          lines.push_back(text.substr(start));
          break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
      }
      if (!lines.empty()) {
        const std::size_t at = rng->Below(lines.size());
        lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at),
                     lines[at]);
        text.clear();
        for (std::size_t i = 0; i < lines.size(); ++i) {
          if (i) text += '\n';
          text += lines[i];
        }
      }
      break;
    }
    case 5: {  // delete one line
      std::vector<std::string> lines;
      std::size_t start = 0;
      while (start <= text.size()) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
          lines.push_back(text.substr(start));
          break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
      }
      if (lines.size() > 1) {
        lines.erase(lines.begin() +
                    static_cast<std::ptrdiff_t>(rng->Below(lines.size())));
        text.clear();
        for (std::size_t i = 0; i < lines.size(); ++i) {
          if (i) text += '\n';
          text += lines[i];
        }
      }
      break;
    }
    case 6: {  // damage the magic or the version
      if (rng->Chance(1, 2)) {
        const std::size_t at = text.find("RPM-MODEL");
        if (at != std::string::npos) text[at + rng->Below(9)] = '#';
      } else {
        const std::size_t at = text.find("v1");
        if (at != std::string::npos) {
          text = text.substr(0, at) + "v" +
                 std::to_string(rng->Range(2, 99)) + text.substr(at + 2);
        }
      }
      break;
    }
    case 7: {  // bomb the count right after a section tag
      const char* const tags[] = {"sax",     "patterns", "models",
                                  "moments", "knn",      "gnb"};
      const char* tag = tags[rng->Below(sizeof(tags) / sizeof(tags[0]))];
      const auto tokens = Tokenize(text);
      for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (text.compare(tokens[i].begin, tokens[i].end - tokens[i].begin,
                         tag) == 0) {
          // knn/gnb headers carry (k n d) / (n d): skip 0..2 tokens so
          // the bomb can land on any of the count fields.
          const std::size_t skip = rng->Below(3);
          const std::size_t target = i + 1 + skip;
          if (target < tokens.size()) {
            text = ReplaceToken(
                text, tokens[target],
                kExtremes[rng->Below(sizeof(kExtremes) / sizeof(kExtremes[0]))]);
          }
          break;
        }
      }
      break;
    }
    default: {  // insert garbage bytes
      const std::size_t at = rng->Below(text.size() + 1);
      std::string garbage;
      const std::size_t n = rng->Range(1, 16);
      for (std::size_t i = 0; i < n; ++i) {
        garbage += static_cast<char>(rng->Below(256));
      }
      text = text.substr(0, at) + garbage + text.substr(at);
      break;
    }
  }
  return text;
}

}  // namespace rpm::fuzz
