// Grammar for serving-surface fuzz cases. A FuzzPlan is a pure function
// of its seed: a set of concurrent connections, each with a codec (text
// lines or binary frames), a request script drawn from per-verb
// productions (valid / boundary / corrupt), and one wire-level fault.
// The harness (harness.h) executes plans against a live net::FrontEnd;
// this file only *describes* traffic, so plans can be formatted as repro
// scripts, minimized, and compared across runs.
//
// Productions cover the full verb table (pinned by scripts/docs_lint.sh
// against serve::kVerbTable): LOAD UNLOAD MODELS CLASSIFY STATS METRICS
// TRACE STREAM_OPEN STREAM_FEED STREAM_CLOSE STREAMS QUIT.

#ifndef RPM_FUZZ_GRAMMAR_H_
#define RPM_FUZZ_GRAMMAR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/rng.h"

namespace rpm::fuzz {

/// How adversarial a production is. kValid requests must succeed (or
/// fail only for capacity reasons); kBoundary requests sit on protocol
/// edges and may be answered either way; kCorrupt requests must draw an
/// ERR without disturbing the connection (unless the fault says so).
enum class Validity : std::uint8_t { kValid, kBoundary, kCorrupt };

/// One wire-level fault per connection, applied by the harness.
enum class WireFault : std::uint8_t {
  kNone = 0,       ///< one write per burst
  kSplit,          ///< byte-dribble writes (1..7 bytes each)
  kCoalesce,       ///< whole bursts coalesced into single writes
  kTruncate,       ///< drain, then send a strict prefix of one request
                   ///< and half-close: no response for the fragment
  kHeaderCorrupt,  ///< binary only: nonzero reserved on the final frame
                   ///< (one ERR, connection closes — unrecoverable)
  kOversize,       ///< inject a line/frame exceeding the assembler bound
                   ///< (one ERR, connection recovers)
  kHalfClose,      ///< shutdown(WR) after the script, drain all responses
  kDisconnect,     ///< abrupt close() mid-script, responses abandoned
};

/// Faults under which the full response oracle applies (every request
/// answered, in order, with the expected shape). Dirty faults
/// (kDisconnect) only get the liveness + post-drain invariants.
bool FaultIsClean(WireFault fault);
const char* FaultName(WireFault fault);

/// One request production. `verb` is the text-protocol name; binary
/// connections encode the same request as a frame. Stream requests name
/// sessions by `stream_slot` — an index into the connection's earlier
/// STREAM_OPEN requests — resolved to a real session id at run time
/// (slot -1 is a deliberately bogus id).
struct FuzzRequest {
  std::string verb;
  Validity validity = Validity::kValid;

  std::string model;           // CLASSIFY / STREAM_OPEN / LOAD / UNLOAD name
  std::string path;            // LOAD
  std::vector<double> values;  // CLASSIFY / STREAM_FEED samples
  std::uint32_t timeout_ms = 0;  // CLASSIFY; 0 = server default
  std::uint32_t window = 0;      // STREAM_OPEN
  std::uint32_t hop = 0;
  double early_fraction = 0.0;
  double early_margin = 0.0;
  std::uint32_t trace_n = 0;  // TRACE; 0 = omit the argument
  int stream_slot = -1;

  /// The oracle must check this request's decision bits against the
  /// in-process engine (finite values, model "cbf", early off).
  bool differential = false;
  /// The server closes the connection after responding (QUIT).
  bool closes = false;
  /// Corrupt productions may carry raw wire bytes instead of fields:
  /// the full line (text) or the full frame (binary).
  bool use_raw = false;
  std::string raw;
};

struct ConnPlan {
  bool binary = false;
  WireFault fault = WireFault::kNone;
  /// Request index the fault anchors to (kTruncate: the request whose
  /// bytes are cut short; kOversize: where the oversized filler is
  /// injected).
  std::size_t fault_request = 0;
  std::vector<FuzzRequest> requests;
};

struct FuzzPlan {
  std::uint64_t seed = 0;
  std::size_t shards = 1;
  std::size_t max_line = 0;           // front-end LineAssembler bound
  std::size_t max_frame_payload = 0;  // front-end FrameAssembler bound
  /// Stop() the front end while requests are still in flight; the whole
  /// case downgrades to liveness + invariants.
  bool stop_during_pipeline = false;
  std::vector<ConnPlan> conns;
};

/// Expands a seed into a full plan (connection count, codecs, scripts,
/// faults, front-end geometry). Pure: same seed, same plan.
FuzzPlan GenerateProtocolPlan(std::uint64_t seed);

/// Encodes one request for the wire. `stream_id` is the resolved session
/// id for stream verbs (ignored by the rest). Text form has no trailing
/// newline; binary form is a complete frame.
std::string EncodeTextRequest(const FuzzRequest& req,
                              const std::string& stream_id);
std::string EncodeBinaryRequest(const FuzzRequest& req,
                                const std::string& stream_id);

/// Human-readable repro script for a plan (what failure reports embed).
std::string FormatPlan(const FuzzPlan& plan);

/// FNV-1a over `bytes`, chained from `h` (seed with kHashSeed). Used for
/// compact event-log entries.
inline constexpr std::uint64_t kHashSeed = 0xCBF29CE484222325ULL;
std::uint64_t HashBytes(std::uint64_t h, std::string_view bytes);

}  // namespace rpm::fuzz

#endif  // RPM_FUZZ_GRAMMAR_H_
