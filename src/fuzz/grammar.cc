#include "fuzz/grammar.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "net/frame.h"

namespace rpm::fuzz {
namespace {

// Every verb the grammar can emit, one per serve::kVerbTable entry.
// scripts/docs_lint.sh cross-checks this file against the wire table so
// a new verb cannot ship unfuzzed: LOAD UNLOAD MODELS CLASSIFY STATS
// METRICS TRACE STREAM_OPEN STREAM_FEED STREAM_CLOSE STREAMS QUIT.
constexpr const char* kFuzzVerbs[] = {
    "LOAD",        "UNLOAD",      "MODELS",  "CLASSIFY",
    "STATS",       "METRICS",     "TRACE",   "STREAM_OPEN",
    "STREAM_FEED", "STREAM_CLOSE", "STREAMS", "QUIT",
};
static_assert(sizeof(kFuzzVerbs) / sizeof(kFuzzVerbs[0]) == 12,
              "grammar must cover the full verb table");

// The model the harness trains and never unloads: differential requests
// target it so the in-process engine stays a valid reference. LOAD /
// UNLOAD productions only ever touch "aux".
constexpr const char* kFixedModel = "cbf";
constexpr const char* kAuxModel = "aux";

// Bogus session id for deliberate NOT_FOUND probes; the server mints
// ids sequentially from 1, so this never collides in a fuzz case.
constexpr const char* kBogusStreamId = "s999999";

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string Csv(const std::vector<double>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ',';
    out += FormatDouble(values[i]);
  }
  return out;
}

std::vector<double> FiniteValues(SplitMix64* rng, std::size_t n) {
  std::vector<double> values(n);
  for (double& v : values) v = rng->Signed(2.0);
  return values;
}

std::vector<double> HostileValues(SplitMix64* rng, std::size_t n) {
  std::vector<double> values = FiniteValues(rng, n);
  const double specials[] = {std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             1e308, -1e308, 0.0};
  const std::size_t hits = 1 + rng->Below(3);
  for (std::size_t i = 0; i < hits && !values.empty(); ++i) {
    values[rng->Below(values.size())] = specials[rng->Below(6)];
  }
  return values;
}

// Tracks what earlier requests on this connection established, so later
// productions can reference (or deliberately mis-reference) it.
struct ConnContext {
  std::size_t slots = 0;  // STREAM_OPEN requests so far
  // Slots opened with early off on the fixed model: differential feeds
  // may target these.
  std::vector<int> diff_slots;
};

FuzzRequest MakeLoad(SplitMix64* rng, Validity validity) {
  FuzzRequest req;
  req.verb = "LOAD";
  req.validity = validity;
  req.model = kAuxModel;
  switch (validity) {
    case Validity::kValid:
      req.path = "good";
      break;
    case Validity::kBoundary:
      // Mutated model files: Load must reject them with an error (or
      // accept a benign mutation), never crash — either way one ERR/OK.
      req.path = "mut" + std::to_string(rng->Below(4));
      break;
    case Validity::kCorrupt:
      if (rng->Chance(1, 2)) {
        req.use_raw = true;
        req.raw = rng->Chance(1, 2) ? "LOAD" : "LOAD aux";
      } else {
        req.path = "nonexistent";
      }
      break;
  }
  return req;
}

FuzzRequest MakeUnload(SplitMix64* rng, Validity validity) {
  FuzzRequest req;
  req.verb = "UNLOAD";
  req.validity = validity;
  req.model = kAuxModel;
  if (validity == Validity::kCorrupt) {
    if (rng->Chance(1, 2)) {
      req.use_raw = true;
      req.raw = "UNLOAD";
    } else {
      req.model = "nosuch";
    }
  }
  return req;
}

FuzzRequest MakeClassify(SplitMix64* rng, Validity validity) {
  FuzzRequest req;
  req.verb = "CLASSIFY";
  req.validity = validity;
  req.model = kFixedModel;
  switch (validity) {
    case Validity::kValid:
      // Sized to fit the tightest front-end geometry the plan generator
      // picks (max_line 8 KiB / max_frame_payload 4 KiB) so a valid
      // production is never eaten by the assembler bound.
      req.values = FiniteValues(rng, rng->Range(48, 200));
      req.timeout_ms = rng->Chance(1, 3) ? 5000 : 0;
      req.differential = true;
      break;
    case Validity::kBoundary:
      switch (rng->Below(4)) {
        case 0:  // shorter than the model window
          req.values = FiniteValues(rng, rng->Range(1, 32));
          break;
        case 1:  // non-finite samples (text strtod accepts inf/nan)
          req.values = HostileValues(rng, rng->Range(8, 64));
          break;
        case 2:  // straddles the assembler bounds on the tight geometry
          req.values = FiniteValues(rng, rng->Range(400, 700));
          break;
        default:  // 1 ms deadline: TIMEOUT is a legal answer
          req.values = FiniteValues(rng, 64);
          req.timeout_ms = 1;
          break;
      }
      break;
    case Validity::kCorrupt:
      req.use_raw = true;
      switch (rng->Below(5)) {
        case 0: req.raw = "CLASSIFY"; break;
        case 1: req.raw = "CLASSIFY cbf"; break;
        case 2: req.raw = "CLASSIFY nosuch 1,2,3"; break;
        case 3: req.raw = "CLASSIFY cbf 1,,2"; break;
        default: req.raw = "CLASSIFY cbf abc,def"; break;
      }
      break;
  }
  return req;
}

FuzzRequest MakeStreamOpen(SplitMix64* rng, Validity validity,
                           ConnContext* ctx) {
  FuzzRequest req;
  req.verb = "STREAM_OPEN";
  req.validity = validity;
  req.model = kFixedModel;
  const std::uint32_t windows[] = {16, 32, 64};
  req.window = windows[rng->Below(3)];
  req.hop = rng->Chance(1, 3) ? 0
            : rng->Chance(1, 2) ? req.window
                                : req.window / 2;
  switch (validity) {
    case Validity::kValid:
      req.differential = true;
      break;
    case Validity::kBoundary:
      switch (rng->Below(4)) {
        case 0:  // early classification on: chunking-dependent, non-diff
          req.early_fraction = 0.5;
          req.early_margin = 0.3;
          break;
        case 1:
          req.window = 1;
          req.hop = 1;
          break;
        case 2:  // hop far beyond the window (sparse sampling)
          req.hop = req.window * 4;
          break;
        default:  // model that may or may not be loaded right now
          req.model = kAuxModel;
          break;
      }
      break;
    case Validity::kCorrupt:
      if (rng->Chance(1, 2)) {
        req.window = 0;  // rejected by ValidateStreamOptions
      } else {
        req.use_raw = true;
        req.raw = rng->Chance(1, 2) ? "STREAM_OPEN" : "STREAM_OPEN cbf abc";
      }
      break;
  }
  // Every STREAM_OPEN occupies the next slot whether or not it will
  // succeed; the harness resolves slots from responses.
  if (!req.use_raw) {
    const int slot = static_cast<int>(ctx->slots++);
    if (req.validity == Validity::kValid && req.model == kFixedModel &&
        req.early_fraction == 0.0) {
      ctx->diff_slots.push_back(slot);
    }
  }
  return req;
}

FuzzRequest MakeStreamFeed(SplitMix64* rng, Validity validity,
                           ConnContext* ctx) {
  FuzzRequest req;
  req.verb = "STREAM_FEED";
  req.validity = validity;
  switch (validity) {
    case Validity::kValid:
      if (!ctx->diff_slots.empty()) {
        req.stream_slot = ctx->diff_slots[rng->Below(ctx->diff_slots.size())];
        req.differential = true;
      } else if (ctx->slots > 0) {
        req.stream_slot = static_cast<int>(rng->Below(ctx->slots));
      }  // else: bogus id, NOT_FOUND probe
      req.values = FiniteValues(rng, rng->Range(1, 200));
      break;
    case Validity::kBoundary:
      // Hostile samples go to non-differential targets only (a NaN in
      // the ring would poison the accepted-prefix replay).
      req.stream_slot =
          ctx->slots > 0 && rng->Chance(1, 2)
              ? static_cast<int>(rng->Below(ctx->slots))
              : -1;
      if (req.stream_slot >= 0 &&
          !ctx->diff_slots.empty() &&
          req.stream_slot == ctx->diff_slots.front()) {
        // Keep the first differential slot clean; hostile feeds pick the
        // bogus id instead.
        req.stream_slot = -1;
      }
      req.values = rng->Chance(1, 2) ? HostileValues(rng, rng->Range(4, 64))
                                     : FiniteValues(rng, rng->Range(200, 400));
      break;
    case Validity::kCorrupt:
      req.use_raw = true;
      switch (rng->Below(3)) {
        case 0: req.raw = "STREAM_FEED"; break;
        case 1: req.raw = "STREAM_FEED s999999 1,2,3"; break;
        default: req.raw = "STREAM_FEED s1"; break;
      }
      break;
  }
  return req;
}

FuzzRequest MakeStreamClose(SplitMix64* rng, Validity validity,
                            ConnContext* ctx) {
  FuzzRequest req;
  req.verb = "STREAM_CLOSE";
  req.validity = validity;
  if (validity == Validity::kCorrupt) {
    req.use_raw = true;
    req.raw = rng->Chance(1, 2) ? "STREAM_CLOSE" : "STREAM_CLOSE s999999";
    return req;
  }
  if (ctx->slots > 0 && !rng->Chance(1, 5)) {
    req.stream_slot = static_cast<int>(rng->Below(ctx->slots));
  }
  return req;
}

FuzzRequest MakeTrace(SplitMix64* rng, Validity validity) {
  FuzzRequest req;
  req.verb = "TRACE";
  req.validity = validity;
  switch (validity) {
    case Validity::kValid:
      req.trace_n = rng->Chance(1, 2) ? 0 : std::uint32_t(rng->Range(1, 64));
      break;
    case Validity::kBoundary:
      req.trace_n = 99999;  // capped at 1024 server-side
      break;
    case Validity::kCorrupt:
      req.use_raw = true;
      req.raw = "TRACE abc";
      break;
  }
  return req;
}

FuzzRequest MakeNullary(const char* verb, SplitMix64* rng,
                        Validity validity) {
  FuzzRequest req;
  req.verb = verb;
  req.validity = validity == Validity::kCorrupt ? Validity::kBoundary
                                                : validity;
  if (req.validity == Validity::kBoundary && rng->Chance(1, 2)) {
    // Trailing garbage after a nullary verb: the server may ignore it or
    // reject it; either way exactly one response.
    req.use_raw = true;
    req.raw = std::string(verb) + " trailing garbage";
  }
  return req;
}

FuzzRequest GenerateRequest(SplitMix64* rng, ConnContext* ctx) {
  const Validity validity = [&] {
    const std::uint64_t roll = rng->Below(20);
    if (roll < 12) return Validity::kValid;
    if (roll < 17) return Validity::kBoundary;
    return Validity::kCorrupt;
  }();
  // Weighted verb pick: the data-plane verbs dominate.
  const std::uint64_t roll = rng->Below(22);
  if (roll < 6) return MakeClassify(rng, validity);
  if (roll < 11) return MakeStreamFeed(rng, validity, ctx);
  if (roll < 14) return MakeStreamOpen(rng, validity, ctx);
  if (roll < 16) return MakeStreamClose(rng, validity, ctx);
  if (roll < 17) return MakeLoad(rng, validity);
  if (roll < 18) return MakeUnload(rng, validity);
  if (roll < 19) return MakeTrace(rng, validity);
  if (roll < 20) return MakeNullary("MODELS", rng, validity);
  if (roll < 21) {
    return MakeNullary(rng->Chance(1, 2) ? "STATS" : "METRICS", rng,
                       validity);
  }
  return MakeNullary("STREAMS", rng, validity);
}

}  // namespace

bool FaultIsClean(WireFault fault) {
  return fault != WireFault::kDisconnect;
}

const char* FaultName(WireFault fault) {
  switch (fault) {
    case WireFault::kNone: return "none";
    case WireFault::kSplit: return "split";
    case WireFault::kCoalesce: return "coalesce";
    case WireFault::kTruncate: return "truncate";
    case WireFault::kHeaderCorrupt: return "header-corrupt";
    case WireFault::kOversize: return "oversize";
    case WireFault::kHalfClose: return "half-close";
    case WireFault::kDisconnect: return "disconnect";
  }
  return "?";
}

FuzzPlan GenerateProtocolPlan(std::uint64_t seed) {
  SplitMix64 rng(seed);
  FuzzPlan plan;
  plan.seed = seed;
  const std::size_t shard_choices[] = {1, 2, 4, 8};
  plan.shards = shard_choices[rng.Below(4)];
  plan.max_line = rng.Chance(1, 2) ? 8192 : (std::size_t{1} << 20);
  plan.max_frame_payload = rng.Chance(1, 2) ? 4096 : (std::size_t{1} << 20);
  plan.stop_during_pipeline = rng.Chance(1, 8);

  const std::size_t num_conns = rng.Range(1, 6);
  for (std::size_t c = 0; c < num_conns; ++c) {
    SplitMix64 conn_rng = rng.Fork(c);
    ConnPlan conn;
    conn.binary = conn_rng.Chance(1, 2);

    const std::uint64_t fault_roll = conn_rng.Below(19);
    if (fault_roll < 4) conn.fault = WireFault::kNone;
    else if (fault_roll < 7) conn.fault = WireFault::kSplit;
    else if (fault_roll < 9) conn.fault = WireFault::kCoalesce;
    else if (fault_roll < 11) conn.fault = WireFault::kTruncate;
    else if (fault_roll < 13) conn.fault = WireFault::kHeaderCorrupt;
    else if (fault_roll < 15) conn.fault = WireFault::kOversize;
    else if (fault_roll < 18) conn.fault = WireFault::kHalfClose;
    else conn.fault = WireFault::kDisconnect;
    if (conn.fault == WireFault::kHeaderCorrupt && !conn.binary) {
      conn.fault = WireFault::kOversize;  // reserved bytes are binary-only
    }

    const std::size_t num_requests = conn_rng.Range(1, 12);
    ConnContext ctx;
    for (std::size_t r = 0; r < num_requests; ++r) {
      conn.requests.push_back(GenerateRequest(&conn_rng, &ctx));
    }
    if (conn.fault == WireFault::kTruncate) {
      // The truncated request is the last one sent; everything after it
      // would never reach the wire.
      conn.fault_request = conn_rng.Below(conn.requests.size());
      conn.requests.resize(conn.fault_request + 1);
    } else if (conn.fault == WireFault::kOversize) {
      conn.fault_request = conn_rng.Below(conn.requests.size() + 1);
    } else if (conn.fault == WireFault::kDisconnect) {
      conn.fault_request = conn_rng.Below(conn.requests.size());
    }
    if ((conn.fault == WireFault::kNone || conn.fault == WireFault::kSplit ||
         conn.fault == WireFault::kCoalesce) &&
        conn_rng.Chance(1, 4)) {
      FuzzRequest quit;
      quit.verb = "QUIT";
      quit.closes = true;
      conn.requests.push_back(quit);
    }
    plan.conns.push_back(std::move(conn));
  }
  return plan;
}

std::string EncodeTextRequest(const FuzzRequest& req,
                              const std::string& stream_id) {
  if (req.use_raw) return req.raw;
  const std::string& verb = req.verb;
  if (verb == "LOAD") return "LOAD " + req.model + " " + req.path;
  if (verb == "UNLOAD") return "UNLOAD " + req.model;
  if (verb == "CLASSIFY") {
    std::string line = "CLASSIFY " + req.model + " " + Csv(req.values);
    if (req.timeout_ms != 0) line += " " + std::to_string(req.timeout_ms);
    return line;
  }
  if (verb == "STREAM_OPEN") {
    std::string line =
        "STREAM_OPEN " + req.model + " " + std::to_string(req.window);
    if (req.hop != 0 || req.early_fraction != 0.0) {
      line += " " + std::to_string(req.hop == 0 ? req.window : req.hop);
    }
    if (req.early_fraction != 0.0) {
      line += " " + FormatDouble(req.early_fraction) + " " +
              FormatDouble(req.early_margin);
    }
    return line;
  }
  if (verb == "STREAM_FEED") return "STREAM_FEED " + stream_id + " " + Csv(req.values);
  if (verb == "STREAM_CLOSE") return "STREAM_CLOSE " + stream_id;
  if (verb == "TRACE") {
    return req.trace_n == 0 ? "TRACE" : "TRACE " + std::to_string(req.trace_n);
  }
  return verb;  // MODELS / STATS / METRICS / STREAMS / QUIT
}

std::string EncodeBinaryRequest(const FuzzRequest& req,
                                const std::string& stream_id) {
  using net::BinaryVerb;
  using net::PayloadWriter;
  if (req.use_raw) {
    // Raw corrupt productions carry a text line. The binary translation
    // keeps the framing intact (a broken header would be kCorrupt and
    // close the connection — that is kHeaderCorrupt's job) and instead
    // ships the line's leftover bytes as a payload that fails to decode:
    // the same one-ERR-and-continue contract as the text form.
    const std::size_t space = req.raw.find(' ');
    const std::string name = req.raw.substr(0, space);
    std::uint8_t verb_byte = 0x7F;  // unknown verb: one ERR, continue
    for (std::uint8_t b = 0x01; b <= 0x0C; ++b) {
      if (net::VerbName(b) == name) {
        verb_byte = b;
        break;
      }
    }
    const std::string payload =
        space == std::string::npos ? std::string() : req.raw.substr(space + 1);
    return net::EncodeFrame(verb_byte, 0, payload);
  }
  std::string payload;
  PayloadWriter writer(&payload);
  BinaryVerb verb;
  const std::string& v = req.verb;
  if (v == "LOAD") {
    verb = BinaryVerb::kLoad;
    writer.Str(req.model);
    writer.Str(req.path);
  } else if (v == "UNLOAD") {
    verb = BinaryVerb::kUnload;
    writer.Str(req.model);
  } else if (v == "MODELS") {
    verb = BinaryVerb::kModels;
  } else if (v == "CLASSIFY") {
    verb = BinaryVerb::kClassify;
    writer.Str(req.model);
    writer.U32(req.timeout_ms);
    writer.F64Array(req.values.data(), req.values.size());
  } else if (v == "STATS") {
    verb = BinaryVerb::kStats;
  } else if (v == "METRICS") {
    verb = BinaryVerb::kMetrics;
  } else if (v == "TRACE") {
    verb = BinaryVerb::kTrace;
    writer.U32(req.trace_n);
  } else if (v == "STREAM_OPEN") {
    verb = BinaryVerb::kStreamOpen;
    writer.Str(req.model);
    writer.U32(req.window);
    writer.U32(req.hop);
    writer.F64(req.early_fraction);
    writer.F64(req.early_margin);
  } else if (v == "STREAM_FEED") {
    verb = BinaryVerb::kStreamFeed;
    writer.Str(stream_id);
    writer.F64Array(req.values.data(), req.values.size());
  } else if (v == "STREAM_CLOSE") {
    verb = BinaryVerb::kStreamClose;
    writer.Str(stream_id);
  } else if (v == "STREAMS") {
    verb = BinaryVerb::kStreams;
  } else {
    verb = BinaryVerb::kQuit;
  }
  return net::EncodeFrame(verb, net::WireStatus::kOk, payload);
}

std::string FormatPlan(const FuzzPlan& plan) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "plan seed=0x%llx shards=%zu max_line=%zu max_frame=%zu "
                "stop_during_pipeline=%d\n",
                static_cast<unsigned long long>(plan.seed), plan.shards,
                plan.max_line, plan.max_frame_payload,
                plan.stop_during_pipeline ? 1 : 0);
  std::string out = buf;
  for (std::size_t c = 0; c < plan.conns.size(); ++c) {
    const ConnPlan& conn = plan.conns[c];
    out += "conn " + std::to_string(c) +
           " codec=" + (conn.binary ? "binary" : "text") +
           " fault=" + FaultName(conn.fault) +
           " fault_request=" + std::to_string(conn.fault_request) + "\n";
    for (std::size_t r = 0; r < conn.requests.size(); ++r) {
      const FuzzRequest& req = conn.requests[r];
      out += "  " + std::to_string(r) + " " + req.verb;
      switch (req.validity) {
        case Validity::kValid: out += " valid"; break;
        case Validity::kBoundary: out += " boundary"; break;
        case Validity::kCorrupt: out += " corrupt"; break;
      }
      if (req.use_raw) {
        out += " raw=\"" + req.raw + "\"";
      } else {
        if (!req.model.empty()) out += " model=" + req.model;
        if (!req.path.empty()) out += " path=" + req.path;
        if (!req.values.empty()) {
          out += " n=" + std::to_string(req.values.size()) +
                 " vh=" + std::to_string(HashBytes(
                     kHashSeed,
                     std::string_view(
                         reinterpret_cast<const char*>(req.values.data()),
                         req.values.size() * sizeof(double))));
        }
        if (req.timeout_ms) out += " timeout=" + std::to_string(req.timeout_ms);
        if (req.window) {
          out += " window=" + std::to_string(req.window) +
                 " hop=" + std::to_string(req.hop);
        }
        if (req.early_fraction != 0.0) {
          out += " early=" + FormatDouble(req.early_fraction) + "/" +
                 FormatDouble(req.early_margin);
        }
        if (req.trace_n) out += " trace_n=" + std::to_string(req.trace_n);
        if (req.stream_slot >= 0) {
          out += " slot=" + std::to_string(req.stream_slot);
        }
      }
      if (req.differential) out += " diff";
      if (req.closes) out += " closes";
      out += "\n";
    }
  }
  return out;
}

std::uint64_t HashBytes(std::uint64_t h, std::string_view bytes) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace rpm::fuzz
