// Executes fuzz plans against a live serving stack and checks the
// three-fold oracle:
//
//  1. Liveness — the case completes inside a hard deadline, no
//     connection sees a premature close, and a fresh probe connection
//     still gets answers after the adversarial traffic.
//  2. Differential — CLASSIFY labels and STREAM_FEED decisions on
//     well-formed requests are bit-identical to the in-process
//     ClassificationEngine (streams replayed over the accepted-sample
//     prefix via stream::ReplayWindows).
//  3. Invariants — after FrontEnd::Stop + InferenceServer::Shutdown,
//     streams_opened == streams_closed + streams_evicted and
//     admitted == ok + timeout; on clean connections every request got
//     exactly one response, in order.
//
// Every case builds its own InferenceServer + NetHandler + FrontEnd
// (1–8 shards, geometry from the plan) on an ephemeral loopback port
// and drives 1–6 concurrent client connections from a single
// poll()-based scheduler, so a case is reproducible from its seed alone.
//
// The model fuzzer (RunModelCase) feeds seeded mutations of a
// known-good serialized model to RpmClassifier::Load: any outcome other
// than clean success or a thrown std::exception is a finding.

#ifndef RPM_FUZZ_HARNESS_H_
#define RPM_FUZZ_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/grammar.h"

namespace rpm::fuzz {

struct FailureReport {
  bool failed = false;
  std::uint64_t seed = 0;
  std::string what;   ///< first oracle violation, human-readable
  std::string repro;  ///< FormatPlan of the failing (minimized) plan
};

struct HarnessOptions {
  /// Hard per-case deadline; exceeding it is the hang oracle firing.
  int case_deadline_ms = 20000;
  bool verbose = false;
};

class FuzzHarness {
 public:
  explicit FuzzHarness(HarnessOptions options = {});
  ~FuzzHarness();

  FuzzHarness(const FuzzHarness&) = delete;
  FuzzHarness& operator=(const FuzzHarness&) = delete;

  /// Generates the plan for `seed`, executes it, records the event log.
  FailureReport RunProtocolCase(std::uint64_t seed);

  /// Executes an explicit plan (replay / minimization).
  FailureReport RunProtocolPlan(const FuzzPlan& plan);

  /// One seeded model-file mutation against RpmClassifier::Load.
  FailureReport RunModelCase(std::uint64_t seed);

  /// Greedy ddmin-lite: drops connections, then trailing requests, while
  /// the plan keeps failing; at most `budget` re-executions.
  FuzzPlan MinimizeProtocolPlan(const FuzzPlan& plan,
                                std::size_t budget = 64);

  /// Event log of the last Run*Case call — a pure function of the seed,
  /// so two runs of the same seed must produce byte-identical logs.
  const std::vector<std::string>& events() const { return events_; }

  /// The serialized fixture model the mutation fuzzer perturbs.
  const std::string& model_text() const { return model_text_; }

 private:
  struct CaseResult;
  CaseResult Execute(const FuzzPlan& plan, bool record_events);

  HarnessOptions options_;
  std::string model_text_;
  std::string temp_dir_;                // good/mutated model files for LOAD
  std::vector<std::string> path_names_; // symbolic -> file name
  std::vector<std::string> events_;

  struct EngineSlot;  // fixture classifier + warm engine
  std::unique_ptr<EngineSlot> engine_;
};

}  // namespace rpm::fuzz

#endif  // RPM_FUZZ_HARNESS_H_
