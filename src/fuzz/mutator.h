// Byte-level mutators for the fuzz harness.
//
// ChunkBytes turns one request burst into the write segments the
// scheduler hands to the socket — the split/coalesce half of the wire
// faults (truncate/oversize/header-corrupt are synthesized by the
// harness because they need protocol knowledge).
//
// MutateModelText produces adversarial RPM-MODEL files from a known-good
// serialized model: truncations, bit flips, numeric-token extremes,
// section-tag corruption, line duplication/deletion, header damage. The
// target is RpmClassifier::Load (and the ml sub-loaders it delegates
// to), which must reject every mutation with an exception — never crash,
// hang, or allocate unboundedly.

#ifndef RPM_FUZZ_MUTATOR_H_
#define RPM_FUZZ_MUTATOR_H_

#include <string>
#include <vector>

#include "fuzz/grammar.h"
#include "fuzz/rng.h"

namespace rpm::fuzz {

/// Splits `bytes` into the segments the scheduler writes one poll
/// iteration apart. kSplit dribbles 1..7 bytes per segment (capped at
/// 64 dribble segments, then larger chunks, so megabyte payloads stay
/// fast); everything else returns one segment.
std::vector<std::string> ChunkBytes(const std::string& bytes,
                                    WireFault fault, SplitMix64* rng);

/// Names of the model-mutation strategies, index-aligned with the
/// strategy roll inside MutateModelText (for corpus seed descriptions).
const char* ModelMutationName(std::uint64_t strategy);

/// Applies one seeded mutation strategy to a serialized model.
/// `strategy_out`, when non-null, receives the strategy index chosen.
std::string MutateModelText(const std::string& base, SplitMix64* rng,
                            std::uint64_t* strategy_out = nullptr);

}  // namespace rpm::fuzz

#endif  // RPM_FUZZ_MUTATOR_H_
