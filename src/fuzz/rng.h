// Deterministic PRNG for the fuzzing harness: splitmix64, the same
// finalizer the hash ring uses (net/hash_ring.h). Every random choice in
// a fuzz case flows from one of these, seeded from the case seed, so a
// seed fully determines the generated plan, the wire chunking, and the
// fault schedule — replaying a seed replays the byte-identical event
// sequence. No std::mt19937 here: its state layout is implementation-
// defined enough that we do not want corpus seeds tied to a libstdc++
// version.

#ifndef RPM_FUZZ_RNG_H_
#define RPM_FUZZ_RNG_H_

#include <cstdint>
#include <vector>

namespace rpm::fuzz {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n); n must be > 0. Modulo bias is irrelevant for
  /// fuzzing-sized ranges.
  std::uint64_t Below(std::uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi], inclusive.
  std::uint64_t Range(std::uint64_t lo, std::uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  /// True with probability num/den.
  bool Chance(std::uint64_t num, std::uint64_t den) {
    return Below(den) < num;
  }

  /// Uniform double in [0, 1).
  double Unit() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [-mag, mag].
  double Signed(double mag) { return (Unit() * 2.0 - 1.0) * mag; }

  /// Derives an independent substream: two forks with different ids
  /// never correlate with each other or with the parent.
  SplitMix64 Fork(std::uint64_t stream_id) {
    SplitMix64 child(state_ ^ (0x9E3779B97F4A7C15ULL * (stream_id + 1)));
    child.Next();
    return child;
  }

  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Below(v.size())];
  }

 private:
  std::uint64_t state_;
};

}  // namespace rpm::fuzz

#endif  // RPM_FUZZ_RNG_H_
