#include "fuzz/harness.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <sstream>

#include "core/classifier.h"
#include "fuzz/mutator.h"
#include "net/frame.h"
#include "net/front_end.h"
#include "serve/net_handler.h"
#include "serve/server.h"
#include "stream/stream_scorer.h"
#include "ts/generators.h"

namespace rpm::fuzz {
namespace {

using Clock = std::chrono::steady_clock;

// One small trained model per process (training dominates harness
// startup); the same fixture geometry the net/serve suites use.
const std::string& FixtureModelText() {
  static const std::string* text = [] {
    core::RpmOptions options;
    options.search = core::ParameterSearch::kFixed;
    options.fixed_sax.window = 32;
    options.fixed_sax.paa_size = 5;
    options.fixed_sax.alphabet = 4;
    const ts::DatasetSplit split = ts::MakeCbf(10, 6, 128, 778);
    core::RpmClassifier classifier(options);
    classifier.Train(split.train);
    std::stringstream buffer;
    classifier.Save(buffer);
    return new std::string(buffer.str());
  }();
  return *text;
}

core::RpmClassifier LoadFixture() {
  std::istringstream in(FixtureModelText());
  return core::RpmClassifier::Load(in);
}

std::string MarginText(double margin) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", margin);
  return buf;
}

bool AllFinite(const std::vector<double>& values) {
  for (const double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

std::vector<std::string> SplitWs(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

constexpr const char* kBogusStreamId = "s999999";

// One decision as the harness collected it off the wire. Text
// connections only carry the %.3f rendering of the margin, so the
// comparison keys on `margin_text` there and on the raw bits for binary.
struct WireDecision {
  std::uint64_t index = 0;
  int label = 0;
  double margin = 0.0;
  std::string margin_text;
  bool early = false;
};

struct SlotInfo {
  bool resolved = false;  // the STREAM_OPEN's response has been parsed
  bool ok = false;
  bool closed = false;
  bool poisoned = false;  // received non-finite samples: skip the replay
  bool differential = false;
  std::string id;
  std::uint32_t window = 0;
  std::uint32_t hop = 0;
  std::vector<double> accepted;
  std::vector<WireDecision> decisions;
};

struct Expected {
  enum class Kind : std::uint8_t {
    kRequest,   // a scripted request
    kOversize,  // the injected oversized line/frame: one ERR, recoverable
    kCorrupt,   // the reserved-corrupted frame: one ERR, then close
  };
  Kind kind = Kind::kRequest;
  const FuzzRequest* req = nullptr;
  int slot = -1;  // slot this request opens or targets
};

}  // namespace

struct FuzzHarness::EngineSlot {
  core::RpmClassifier clf;
  core::ClassificationEngine engine;
  explicit EngineSlot(core::RpmClassifier c)
      : clf(std::move(c)), engine(clf) {}
};

struct FuzzHarness::CaseResult {
  bool failed = false;
  std::string what;
};

FuzzHarness::FuzzHarness(HarnessOptions options) : options_(options) {
  model_text_ = FixtureModelText();
  engine_ = std::make_unique<EngineSlot>(LoadFixture());

  char tmpl[] = "/tmp/rpm_fuzz_XXXXXX";
  if (::mkdtemp(tmpl) != nullptr) temp_dir_ = tmpl;
  auto write_file = [&](const std::string& name, const std::string& body) {
    if (temp_dir_.empty()) return;
    std::ofstream out(temp_dir_ + "/" + name + ".model");
    out << body;
    path_names_.push_back(name);
  };
  write_file("good", model_text_);
  for (std::uint64_t i = 0; i < 4; ++i) {
    SplitMix64 rng(0xF00D + i);
    write_file("mut" + std::to_string(i), MutateModelText(model_text_, &rng));
  }
}

FuzzHarness::~FuzzHarness() {
  if (temp_dir_.empty()) return;
  for (const auto& name : path_names_) {
    ::unlink((temp_dir_ + "/" + name + ".model").c_str());
  }
  ::rmdir(temp_dir_.c_str());
}

FailureReport FuzzHarness::RunProtocolCase(std::uint64_t seed) {
  const FuzzPlan plan = GenerateProtocolPlan(seed);
  const CaseResult result = Execute(plan, /*record_events=*/true);
  FailureReport report;
  report.failed = result.failed;
  report.seed = seed;
  report.what = result.what;
  if (result.failed) report.repro = FormatPlan(plan);
  return report;
}

FailureReport FuzzHarness::RunProtocolPlan(const FuzzPlan& plan) {
  const CaseResult result = Execute(plan, /*record_events=*/false);
  FailureReport report;
  report.failed = result.failed;
  report.seed = plan.seed;
  report.what = result.what;
  if (result.failed) report.repro = FormatPlan(plan);
  return report;
}

FuzzPlan FuzzHarness::MinimizeProtocolPlan(const FuzzPlan& plan,
                                           std::size_t budget) {
  FuzzPlan current = plan;
  auto still_fails = [&](const FuzzPlan& candidate) {
    if (budget == 0) return false;
    --budget;
    return Execute(candidate, /*record_events=*/false).failed;
  };
  // Drop whole connections, last first.
  for (std::size_t i = current.conns.size(); i-- > 0 && budget > 0;) {
    if (current.conns.size() == 1) break;
    FuzzPlan candidate = current;
    candidate.conns.erase(candidate.conns.begin() +
                          static_cast<std::ptrdiff_t>(i));
    if (still_fails(candidate)) current = std::move(candidate);
  }
  // Trim request tails.
  for (std::size_t c = 0; c < current.conns.size() && budget > 0; ++c) {
    while (current.conns[c].requests.size() > 1 && budget > 0) {
      FuzzPlan candidate = current;
      ConnPlan& conn = candidate.conns[c];
      conn.requests.pop_back();
      if (conn.fault_request >= conn.requests.size()) {
        conn.fault_request = conn.requests.size() - 1;
      }
      if (!still_fails(candidate)) break;
      current = std::move(candidate);
    }
  }
  return current;
}

FailureReport FuzzHarness::RunModelCase(std::uint64_t seed) {
  events_.clear();
  SplitMix64 rng(seed);
  std::uint64_t strategy = 0;
  const std::string mutated = MutateModelText(model_text_, &rng, &strategy);
  {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "model seed=0x%llx strategy=%s len=%zu h=%llu",
                  static_cast<unsigned long long>(seed),
                  ModelMutationName(strategy), mutated.size(),
                  static_cast<unsigned long long>(
                      HashBytes(kHashSeed, mutated)));
    events_.push_back(buf);
  }
  FailureReport report;
  report.seed = seed;
  std::istringstream in(mutated);
  try {
    const core::RpmClassifier clf = core::RpmClassifier::Load(in);
    // A benign mutation loaded: exercise the model the way the serving
    // path would. Exceptions here are fine (a loaded-but-degenerate
    // model may legitimately refuse to classify); crashes are not.
    try {
      core::ClassificationEngine engine(clf);
      std::vector<double> probe(64);
      for (std::size_t i = 0; i < probe.size(); ++i) {
        probe[i] = std::sin(0.1 * static_cast<double>(i));
      }
      (void)engine.Classify(ts::SeriesView(probe.data(), probe.size()));
      events_.push_back("model load=ok classify=ok");
    } catch (const std::exception&) {
      events_.push_back("model load=ok classify=rejected");
    }
  } catch (const std::exception&) {
    events_.push_back("model load=rejected");
  }
  return report;
}

// ---------------------------------------------------------------------
// Protocol-case execution
// ---------------------------------------------------------------------

namespace {

struct ConnState {
  std::size_t index = 0;
  const ConnPlan* plan = nullptr;
  int fd = -1;
  SplitMix64 burst_rng{0};
  SplitMix64 chunk_rng{0};
  SplitMix64 read_rng{0};

  // Send side.
  std::size_t next_req = 0;
  bool oversize_sent = false;
  bool script_done = false;  // everything (incl. fault bytes) enqueued
  std::deque<std::string> outbox;
  std::size_t out_pos = 0;
  bool want_halfclose = false;
  bool halfclosed = false;
  std::size_t planned_opens = 0;  // non-raw STREAM_OPENs in the script

  // Receive side.
  net::LineAssembler lines{std::size_t{1} << 24};
  net::FrameAssembler frames{std::size_t{1} << 24};
  std::deque<Expected> pending;
  std::size_t responses = 0;
  bool in_metrics_body = false;  // swallowing METRICS exposition lines
  bool swallow_blank = false;    // one ""-line after "# EOF"
  bool expect_eof = false;
  bool got_eof = false;
  bool dirty = false;
  bool done = false;
  std::string failure;  // first oracle violation on this connection

  std::vector<SlotInfo> slots;

  void Fail(const std::string& what) {
    if (failure.empty()) {
      failure = "conn " + std::to_string(index) + ": " + what;
    }
    done = true;
  }
};

std::string ResolveStreamId(const ConnState& c, int slot) {
  if (slot < 0 || static_cast<std::size_t>(slot) >= c.slots.size() ||
      !c.slots[slot].ok) {
    return kBogusStreamId;
  }
  return c.slots[slot].id;
}

}  // namespace

FuzzHarness::CaseResult FuzzHarness::Execute(const FuzzPlan& plan,
                                             bool record_events) {
  CaseResult result;
  auto fail = [&](const std::string& what) {
    if (!result.failed) {
      result.failed = true;
      result.what = what;
    }
  };

  if (record_events) {
    events_.clear();
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "case seed=0x%llx shards=%zu conns=%zu plan_h=%llu",
                  static_cast<unsigned long long>(plan.seed), plan.shards,
                  plan.conns.size(),
                  static_cast<unsigned long long>(
                      HashBytes(kHashSeed, FormatPlan(plan))));
    events_.push_back(buf);
    for (std::size_t c = 0; c < plan.conns.size(); ++c) {
      const ConnPlan& conn = plan.conns[c];
      events_.push_back("c" + std::to_string(c) + " codec=" +
                        (conn.binary ? "binary" : "text") +
                        " fault=" + FaultName(conn.fault) +
                        " nreq=" + std::to_string(conn.requests.size()));
      for (std::size_t r = 0; r < conn.requests.size(); ++r) {
        // Canonical encoding: stream slots render as a placeholder id so
        // the log does not depend on cross-connection id-minting races.
        const FuzzRequest& req = conn.requests[r];
        const std::string wire = conn.binary
                                     ? EncodeBinaryRequest(req, "s#")
                                     : EncodeTextRequest(req, "s#");
        events_.push_back(
            "c" + std::to_string(c) + ".r" + std::to_string(r) + " " +
            req.verb + " h=" +
            std::to_string(HashBytes(kHashSeed, wire)));
      }
    }
  }

  // ---- Server stack for this case ----
  serve::ServerOptions server_options;
  server_options.num_shards = plan.shards;
  server_options.streaming.reap_interval = std::chrono::nanoseconds::zero();
  serve::InferenceServer server(server_options);
  server.AddModel("cbf", LoadFixture());
  serve::NetHandler handler(&server);
  net::FrontEndOptions net_options;
  net_options.tcp_port = 0;
  net_options.num_shards = plan.shards;
  net_options.max_line = plan.max_line;
  net_options.max_frame_payload = plan.max_frame_payload;
  net_options.metrics = &server.metrics();
  net::FrontEnd front_end(&handler, net_options);
  if (!front_end.Start()) {
    fail("front end failed to start");
    server.Shutdown();
    return result;
  }

  auto resolve_path = [&](const std::string& symbolic) {
    if (symbolic == "nonexistent" || temp_dir_.empty()) {
      return std::string("/tmp/rpm_fuzz_missing.model");
    }
    return temp_dir_ + "/" + symbolic + ".model";
  };

  // ---- Connection setup ----
  std::vector<ConnState> conns(plan.conns.size());
  SplitMix64 base(plan.seed);
  for (std::size_t i = 0; i < conns.size(); ++i) {
    ConnState& c = conns[i];
    c.index = i;
    c.plan = &plan.conns[i];
    c.burst_rng = base.Fork(1000 + i);
    c.chunk_rng = base.Fork(2000 + i);
    c.read_rng = base.Fork(3000 + i);
    for (const FuzzRequest& req : c.plan->requests) {
      if (req.verb == "STREAM_OPEN" && !req.use_raw) ++c.planned_opens;
    }
    c.fd = ConnectLoopback(front_end.port());
    if (c.fd < 0) {
      c.Fail("connect failed");
      continue;
    }
    if (c.plan->binary) {
      c.outbox.emplace_back(net::kBinaryMagic, sizeof(net::kBinaryMagic));
    }
  }

  const ConnPlan* _unused = nullptr;
  (void)_unused;

  // Encodes the wire bytes of one scripted request on `c`, resolving
  // stream slots against the ids parsed so far.
  auto encode_wire = [&](ConnState& c, const FuzzRequest& req) {
    FuzzRequest resolved = req;
    if (!resolved.path.empty()) resolved.path = resolve_path(resolved.path);
    const std::string id = ResolveStreamId(c, req.stream_slot);
    if (c.plan->binary) return EncodeBinaryRequest(resolved, id);
    return EncodeTextRequest(resolved, id) + "\n";
  };

  auto oversize_filler = [&](const ConnState& c) {
    if (c.plan->binary) {
      const std::size_t len = plan.max_frame_payload + 1;
      std::string frame;
      frame.reserve(net::kFrameHeaderSize + len);
      frame.push_back(static_cast<char>(len & 0xFF));
      frame.push_back(static_cast<char>((len >> 8) & 0xFF));
      frame.push_back(static_cast<char>((len >> 16) & 0xFF));
      frame.push_back(static_cast<char>((len >> 24) & 0xFF));
      frame.push_back(0x03);  // MODELS: any known verb works
      frame.push_back(0x00);
      frame.push_back(0x00);
      frame.push_back(0x00);
      frame.append(len, '\0');
      return frame;
    }
    return std::string(plan.max_line + 1, 'x') + "\n";
  };

  // Builds and enqueues the next burst of wire bytes for `c`. Returns
  // without enqueuing when blocked on an unresolved stream slot.
  auto enqueue_more = [&](ConnState& c) {
    if (c.script_done || c.done || !c.outbox.empty()) return;
    const std::vector<FuzzRequest>& requests = c.plan->requests;
    std::string burst;
    bool terminal = false;
    const std::size_t burst_len = c.burst_rng.Range(1, 4);
    for (std::size_t k = 0; k < burst_len && !terminal; ++k) {
      // The injected oversized line/frame sits between scripted
      // requests at fault_request.
      if (c.plan->fault == WireFault::kOversize && !c.oversize_sent &&
          c.next_req == c.plan->fault_request) {
        burst += oversize_filler(c);
        c.oversize_sent = true;
        Expected exp;
        exp.kind = Expected::Kind::kOversize;
        c.pending.push_back(exp);
        continue;
      }
      if (c.next_req >= requests.size()) break;
      const FuzzRequest& req = requests[c.next_req];
      // Pipeline barrier: a stream request whose target slot has not
      // resolved yet must wait for the in-flight STREAM_OPEN response.
      if (req.stream_slot >= 0 &&
          static_cast<std::size_t>(req.stream_slot) < c.planned_opens) {
        if (static_cast<std::size_t>(req.stream_slot) >= c.slots.size() ||
            !c.slots[req.stream_slot].resolved) {
          break;  // wait; re-attempted once responses drain
        }
      }
      std::string wire = encode_wire(c, req);
      if (c.plan->fault == WireFault::kTruncate &&
          c.next_req == c.plan->fault_request) {
        // A strict prefix, never reaching the framing boundary: the
        // fragment must draw no response at all.
        const std::size_t cut =
            wire.size() > 1 ? c.chunk_rng.Range(1, wire.size() - 1) : 0;
        burst += wire.substr(0, cut);
        c.want_halfclose = true;
        c.script_done = true;
        ++c.next_req;
        terminal = true;
        break;
      }
      Expected exp;
      if (c.plan->fault == WireFault::kHeaderCorrupt &&
          c.next_req + 1 == requests.size()) {
        // Nonzero reserved bytes: the assembler reports kCorrupt, the
        // connection answers one ERR frame and closes.
        wire[6] = 0x5A;
        exp.kind = Expected::Kind::kCorrupt;
        terminal = true;
      } else {
        exp.req = &req;
      }
      if (req.verb == "STREAM_OPEN" && !req.use_raw &&
          exp.kind == Expected::Kind::kRequest) {
        SlotInfo slot;
        slot.differential = req.differential;
        slot.window = req.window;
        slot.hop = req.hop == 0 ? req.window : req.hop;
        exp.slot = static_cast<int>(c.slots.size());
        c.slots.push_back(slot);
      } else if ((req.verb == "STREAM_FEED" || req.verb == "STREAM_CLOSE") &&
                 !req.use_raw) {
        exp.slot = req.stream_slot;
        if (req.verb == "STREAM_FEED" && exp.slot >= 0 &&
            static_cast<std::size_t>(exp.slot) < c.slots.size() &&
            !AllFinite(req.values)) {
          c.slots[exp.slot].poisoned = true;
        }
      }
      c.pending.push_back(exp);
      burst += wire;
      ++c.next_req;
      if (req.closes || exp.kind == Expected::Kind::kCorrupt) {
        c.script_done = true;
        terminal = true;
      }
    }
    if (!c.script_done && c.next_req >= requests.size() &&
        (c.plan->fault != WireFault::kOversize || c.oversize_sent)) {
      c.script_done = true;
      if (c.plan->fault == WireFault::kHalfClose) c.want_halfclose = true;
    }
    if (!burst.empty()) {
      for (auto& segment :
           ChunkBytes(burst, c.plan->fault, &c.chunk_rng)) {
        c.outbox.push_back(std::move(segment));
      }
    }
  };

  // ---- Per-response validation ----

  auto compare_slot = [&](ConnState& c, const SlotInfo& slot) {
    if (!slot.differential || slot.poisoned || !slot.ok) return;
    stream::StreamOptions opts;
    opts.window = slot.window;
    opts.hop = slot.hop;
    const auto replay = stream::ReplayWindows(
        engine_->engine,
        ts::SeriesView(slot.accepted.data(), slot.accepted.size()), opts);
    if (replay.size() != slot.decisions.size()) {
      c.Fail("stream replay emitted " + std::to_string(replay.size()) +
             " decisions, wire carried " +
             std::to_string(slot.decisions.size()) + " (stream " + slot.id +
             ")");
      return;
    }
    for (std::size_t k = 0; k < replay.size(); ++k) {
      const auto& ref = replay[k];
      const auto& got = slot.decisions[k];
      if (ref.window_index != got.index || ref.label != got.label ||
          got.early) {
        c.Fail("stream decision " + std::to_string(k) + " mismatch on " +
               slot.id);
        return;
      }
      const bool margin_ok =
          c.plan->binary
              ? std::bit_cast<std::uint64_t>(ref.margin) ==
                    std::bit_cast<std::uint64_t>(got.margin)
              : MarginText(ref.margin) == got.margin_text;
      if (!margin_ok) {
        c.Fail("stream margin bits diverge at decision " +
               std::to_string(k) + " on " + slot.id);
        return;
      }
    }
  };

  auto expected_label = [&](const FuzzRequest& req) {
    return engine_->engine.Classify(
        ts::SeriesView(req.values.data(), req.values.size()));
  };

  auto validate_text = [&](ConnState& c, const Expected& exp,
                           const std::string& line) {
    const bool is_ok = line.rfind("OK", 0) == 0;
    const bool is_err = line.rfind("ERR", 0) == 0;
    if (!is_ok && !is_err) {
      c.Fail("malformed response line: '" + line.substr(0, 80) + "'");
      return;
    }
    if (exp.kind == Expected::Kind::kOversize) {
      if (!is_err) c.Fail("oversized line was not rejected: " + line);
      return;
    }
    const FuzzRequest& req = *exp.req;
    if (req.closes) {
      if (line != "OK bye") c.Fail("QUIT answered '" + line + "'");
      c.expect_eof = true;
      return;
    }
    // Slot resolution must happen for *every* tracked STREAM_OPEN —
    // corrupt ones included, or a later feed waits on the barrier
    // forever.
    if (req.verb == "STREAM_OPEN" && exp.slot >= 0) {
      SlotInfo& slot = c.slots[exp.slot];
      slot.resolved = true;
      const auto tokens = SplitWs(line);
      if (is_ok) {
        if (tokens.size() < 3 || tokens[1] != "stream") {
          c.Fail("bad STREAM_OPEN response: '" + line + "'");
          return;
        }
        slot.ok = true;
        slot.id = tokens[2];
      } else if (req.validity == Validity::kValid && req.model == "cbf") {
        c.Fail("valid STREAM_OPEN rejected: '" + line + "'");
      }
      return;
    }
    if (req.use_raw || req.validity == Validity::kCorrupt) return;
    const auto tokens = SplitWs(line);
    if (req.verb == "CLASSIFY" && req.differential) {
      if (is_ok) {
        if (tokens.size() < 2 ||
            std::to_string(expected_label(req)) != tokens[1]) {
          c.Fail("CLASSIFY label diverges from the engine: '" + line + "'");
        }
      } else if (line.find("TIMEOUT") == std::string::npos &&
                 line.find("OVERLOADED") == std::string::npos) {
        c.Fail("differential CLASSIFY failed unexpectedly: '" + line + "'");
      }
      return;
    }
    if (req.verb == "STREAM_FEED" && exp.slot >= 0 &&
        static_cast<std::size_t>(exp.slot) < c.slots.size() &&
        c.slots[exp.slot].ok) {
      SlotInfo& slot = c.slots[exp.slot];
      if (!is_ok) {
        if (!slot.closed && req.validity == Validity::kValid &&
            !req.values.empty() && AllFinite(req.values)) {
          c.Fail("valid STREAM_FEED rejected: '" + line + "'");
        }
        return;
      }
      if (slot.closed) {
        c.Fail("feed to closed stream " + slot.id + " answered OK");
        return;
      }
      // "OK fed <n> decisions=<d> [k:label:m.mmm[:early]]..."
      if (tokens.size() < 4 || tokens[1] != "fed" ||
          tokens[3].rfind("decisions=", 0) != 0) {
        c.Fail("bad STREAM_FEED response: '" + line + "'");
        return;
      }
      const std::size_t accepted = std::strtoull(tokens[2].c_str(), nullptr, 10);
      if (accepted > req.values.size()) {
        c.Fail("feed accepted more samples than offered: '" + line + "'");
        return;
      }
      slot.accepted.insert(slot.accepted.end(), req.values.begin(),
                           req.values.begin() +
                               static_cast<std::ptrdiff_t>(accepted));
      for (std::size_t t = 4; t < tokens.size(); ++t) {
        WireDecision d;
        const std::string& item = tokens[t];
        const std::size_t c1 = item.find(':');
        const std::size_t c2 =
            c1 == std::string::npos ? c1 : item.find(':', c1 + 1);
        if (c2 == std::string::npos) {
          c.Fail("bad decision item '" + item + "'");
          return;
        }
        d.index = std::strtoull(item.substr(0, c1).c_str(), nullptr, 10);
        d.label = std::atoi(item.substr(c1 + 1, c2 - c1 - 1).c_str());
        const std::size_t c3 = item.find(':', c2 + 1);
        d.margin_text = item.substr(
            c2 + 1, c3 == std::string::npos ? std::string::npos
                                            : c3 - c2 - 1);
        d.early = c3 != std::string::npos;
        slot.decisions.push_back(std::move(d));
      }
      return;
    }
    if (req.verb == "STREAM_CLOSE" && exp.slot >= 0 &&
        static_cast<std::size_t>(exp.slot) < c.slots.size() &&
        c.slots[exp.slot].ok) {
      SlotInfo& slot = c.slots[exp.slot];
      if (is_ok) {
        if (slot.closed) {
          c.Fail("double close of " + slot.id + " answered OK");
          return;
        }
        slot.closed = true;
        compare_slot(c, slot);
      }
      return;
    }
    if (req.validity == Validity::kValid &&
        (req.verb == "LOAD" || req.verb == "MODELS" ||
         req.verb == "STATS" || req.verb == "TRACE" ||
         req.verb == "STREAMS") &&
        !is_ok) {
      c.Fail("valid " + req.verb + " rejected: '" + line + "'");
    }
  };

  auto validate_frame = [&](ConnState& c, const Expected& exp,
                            const net::Frame& frame) {
    if (frame.status > std::uint8_t(net::WireStatus::kBadRequest)) {
      c.Fail("unknown response status " + std::to_string(frame.status));
      return;
    }
    const bool is_ok = frame.status == std::uint8_t(net::WireStatus::kOk);
    if (exp.kind == Expected::Kind::kOversize) {
      if (is_ok) c.Fail("oversized frame was not rejected");
      return;
    }
    if (exp.kind == Expected::Kind::kCorrupt) {
      if (is_ok) c.Fail("corrupt frame was not rejected");
      c.expect_eof = true;
      return;
    }
    const FuzzRequest& req = *exp.req;
    if (req.closes) {
      if (!is_ok) c.Fail("QUIT frame answered with an error");
      c.expect_eof = true;
      return;
    }
    // Corrupt STREAM_OPENs still resolve their slot (see validate_text).
    if (req.verb == "STREAM_OPEN" && exp.slot >= 0) {
      SlotInfo& slot = c.slots[exp.slot];
      slot.resolved = true;
      if (is_ok) {
        net::PayloadReader open_reader(frame.payload);
        std::string id;
        if (!open_reader.Str(&id)) {
          c.Fail("bad STREAM_OPEN response payload");
          return;
        }
        slot.ok = true;
        slot.id = id;
      } else if (req.validity == Validity::kValid && req.model == "cbf") {
        c.Fail("valid binary STREAM_OPEN rejected, status " +
               std::to_string(frame.status));
      }
      return;
    }
    if (req.use_raw || req.validity == Validity::kCorrupt) return;
    net::PayloadReader reader(frame.payload);
    if (req.verb == "CLASSIFY" && req.differential) {
      if (is_ok) {
        std::int32_t label = 0;
        if (!reader.I32(&label) || label != expected_label(req)) {
          c.Fail("binary CLASSIFY label diverges from the engine");
        }
      } else if (frame.status != std::uint8_t(net::WireStatus::kTimeout) &&
                 frame.status !=
                     std::uint8_t(net::WireStatus::kOverloaded)) {
        c.Fail("differential CLASSIFY failed with status " +
               std::to_string(frame.status));
      }
      return;
    }
    if (req.verb == "STREAM_FEED" && exp.slot >= 0 &&
        static_cast<std::size_t>(exp.slot) < c.slots.size() &&
        c.slots[exp.slot].ok) {
      SlotInfo& slot = c.slots[exp.slot];
      if (!is_ok) {
        if (!slot.closed && req.validity == Validity::kValid &&
            !req.values.empty() && AllFinite(req.values)) {
          c.Fail("valid binary STREAM_FEED rejected, status " +
                 std::to_string(frame.status));
        }
        return;
      }
      if (slot.closed) {
        c.Fail("feed to closed stream " + slot.id + " answered OK");
        return;
      }
      std::uint32_t accepted = 0;
      std::uint32_t count = 0;
      if (!reader.U32(&accepted) || !reader.U32(&count) ||
          accepted > req.values.size()) {
        c.Fail("bad binary STREAM_FEED response payload");
        return;
      }
      slot.accepted.insert(slot.accepted.end(), req.values.begin(),
                           req.values.begin() + accepted);
      for (std::uint32_t k = 0; k < count; ++k) {
        WireDecision d;
        std::uint8_t early = 0;
        if (!reader.U64(&d.index) || !reader.I32(&d.label) ||
            !reader.F64(&d.margin) || !reader.U8(&early)) {
          c.Fail("truncated binary STREAM_FEED decision payload");
          return;
        }
        d.early = early != 0;
        slot.decisions.push_back(std::move(d));
      }
      return;
    }
    if (req.verb == "STREAM_CLOSE" && exp.slot >= 0 &&
        static_cast<std::size_t>(exp.slot) < c.slots.size() &&
        c.slots[exp.slot].ok) {
      SlotInfo& slot = c.slots[exp.slot];
      if (is_ok) {
        if (slot.closed) {
          c.Fail("double close of " + slot.id + " answered OK");
          return;
        }
        slot.closed = true;
        std::uint64_t samples = 0, windows = 0, decisions = 0, early = 0;
        if (reader.U64(&samples) && reader.U64(&windows) &&
            reader.U64(&decisions) && reader.U64(&early) &&
            slot.differential && !slot.poisoned &&
            decisions != slot.decisions.size()) {
          c.Fail("close summary says " + std::to_string(decisions) +
                 " decisions, wire carried " +
                 std::to_string(slot.decisions.size()));
          return;
        }
        compare_slot(c, slot);
      }
      return;
    }
    if (req.validity == Validity::kValid &&
        (req.verb == "LOAD" || req.verb == "MODELS" ||
         req.verb == "STATS" || req.verb == "METRICS" ||
         req.verb == "TRACE" || req.verb == "STREAMS") &&
        !is_ok) {
      c.Fail("valid binary " + req.verb + " rejected, status " +
             std::to_string(frame.status));
    }
  };

  auto on_text_line = [&](ConnState& c, const std::string& line) {
    if (c.dirty) return;
    if (c.swallow_blank) {
      c.swallow_blank = false;
      if (line.empty()) return;
    }
    if (c.in_metrics_body) {
      if (line == "# EOF") {
        c.in_metrics_body = false;
        c.swallow_blank = true;
        ++c.responses;
        c.pending.pop_front();
      }
      return;
    }
    if (c.pending.empty()) {
      c.Fail("unsolicited response line: '" + line.substr(0, 80) + "'");
      return;
    }
    const Expected exp = c.pending.front();
    // METRICS bodies span many lines, terminated by "# EOF".
    if (exp.kind == Expected::Kind::kRequest && exp.req->verb == "METRICS" &&
        line == "OK metrics") {
      c.in_metrics_body = true;
      return;
    }
    validate_text(c, exp, line);
    if (c.done) return;
    ++c.responses;
    c.pending.pop_front();
  };

  auto on_frame = [&](ConnState& c, const net::Frame& frame) {
    if (c.dirty) return;
    if (c.pending.empty()) {
      c.Fail("unsolicited response frame, verb " +
             std::to_string(frame.verb));
      return;
    }
    const Expected exp = c.pending.front();
    validate_frame(c, exp, frame);
    if (c.done) return;
    ++c.responses;
    c.pending.pop_front();
  };

  // ---- Scheduler loop ----
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.case_deadline_ms);
  bool stopped_early = false;
  std::size_t iterations = 0;
  std::vector<char> read_buf(4096);

  auto finish_conn_if_done = [&](ConnState& c) {
    if (c.done) return;
    if (c.dirty) return;  // dirty conns finish via their fault path
    const bool responses_done = c.script_done && c.pending.empty() &&
                                !c.in_metrics_body;
    if (!responses_done || !c.outbox.empty()) return;
    if (c.expect_eof || c.want_halfclose) {
      if (!c.got_eof) return;
    }
    // Differential slots left open: replay what was accepted so far.
    for (const SlotInfo& slot : c.slots) {
      if (!slot.closed) compare_slot(c, slot);
    }
    c.done = true;
  };

  for (;;) {
    ++iterations;
    if (Clock::now() > deadline) {
      std::string detail;
      for (const ConnState& c : conns) {
        if (!c.done) {
          detail += " c" + std::to_string(c.index) + "(sent=" +
                    std::to_string(c.next_req) + " pending=" +
                    std::to_string(c.pending.size()) + ")";
        }
      }
      fail("case deadline exceeded (hang?):" + detail);
      break;
    }
    bool all_done = true;
    for (ConnState& c : conns) {
      if (!c.done) all_done = false;
    }
    if (all_done) break;

    if (plan.stop_during_pipeline && !stopped_early && iterations >= 4) {
      // Shutdown-during-pipeline fault: stop the front end while
      // requests are still in flight. Liveness + invariants only.
      front_end.Stop();
      stopped_early = true;
      for (ConnState& c : conns) {
        c.dirty = true;
        c.done = true;
      }
      break;
    }

    std::vector<pollfd> fds;
    std::vector<ConnState*> owners;
    for (ConnState& c : conns) {
      if (c.done || c.fd < 0) continue;
      enqueue_more(c);
      pollfd p{};
      p.fd = c.fd;
      p.events = POLLIN;
      if (!c.outbox.empty()) p.events |= POLLOUT;
      fds.push_back(p);
      owners.push_back(&c);
    }
    if (fds.empty()) break;
    ::poll(fds.data(), fds.size(), 20);

    for (std::size_t i = 0; i < fds.size(); ++i) {
      ConnState& c = *owners[i];
      if (c.done) continue;
      if ((fds[i].revents & POLLOUT) && !c.outbox.empty()) {
        const std::string& segment = c.outbox.front();
        const ssize_t n =
            ::send(c.fd, segment.data() + c.out_pos,
                   segment.size() - c.out_pos, MSG_NOSIGNAL);
        if (n > 0) {
          c.out_pos += static_cast<std::size_t>(n);
          if (c.out_pos == segment.size()) {
            c.outbox.pop_front();
            c.out_pos = 0;
          }
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          if (c.dirty || c.plan->fault == WireFault::kDisconnect ||
              stopped_early) {
            c.done = true;
          } else {
            c.Fail("send failed: " + std::string(std::strerror(errno)));
          }
          continue;
        }
        if (c.outbox.empty()) {
          // Abrupt-disconnect fault: drop the connection the moment the
          // faulted request's bytes are out, responses unread.
          if (c.plan->fault == WireFault::kDisconnect &&
              c.next_req > c.plan->fault_request) {
            ::close(c.fd);
            c.fd = -1;
            c.dirty = true;
            c.done = true;
            continue;
          }
          if (c.want_halfclose && c.script_done && !c.halfclosed) {
            ::shutdown(c.fd, SHUT_WR);
            c.halfclosed = true;
            c.expect_eof = true;
          }
        }
      }
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        const std::size_t want = c.read_rng.Range(64, read_buf.size());
        const ssize_t n = ::recv(c.fd, read_buf.data(), want, 0);
        if (n > 0) {
          const std::string_view data(read_buf.data(),
                                      static_cast<std::size_t>(n));
          if (c.plan->binary) {
            c.frames.Append(data);
            net::Frame frame;
            while (!c.done) {
              const auto status = c.frames.Next(&frame);
              if (status == net::FrameAssembler::FrameStatus::kNone) break;
              if (status != net::FrameAssembler::FrameStatus::kFrame) {
                c.Fail("client assembler rejected a response frame");
                break;
              }
              on_frame(c, frame);
            }
          } else {
            c.lines.Append(data);
            std::string line;
            while (!c.done) {
              const auto status = c.lines.NextLine(&line);
              if (status == net::LineAssembler::LineStatus::kNone) break;
              if (status != net::LineAssembler::LineStatus::kLine) {
                c.Fail("oversized response line");
                break;
              }
              on_text_line(c, line);
            }
          }
        } else if (n == 0) {
          c.got_eof = true;
          if (!c.dirty && !c.expect_eof &&
              !(c.script_done && c.pending.empty() && c.outbox.empty())) {
            c.Fail("premature close: " + std::to_string(c.pending.size()) +
                   " responses outstanding");
          }
        } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          if (c.dirty || stopped_early) {
            c.done = true;
          } else {
            c.Fail("recv failed: " + std::string(std::strerror(errno)));
          }
        }
      }
      finish_conn_if_done(c);
    }
  }

  for (ConnState& c : conns) {
    if (c.fd >= 0) {
      ::close(c.fd);
      c.fd = -1;
    }
    if (!c.failure.empty()) fail(c.failure);
  }

  // Liveness probe: after all the adversarial traffic, a fresh
  // connection must still get answers (skipped when the stop fault
  // already took the front end down).
  if (!stopped_early && !result.failed) {
    const int fd = ConnectLoopback(front_end.port());
    if (fd < 0) {
      fail("liveness probe could not connect");
    } else {
      timeval tv{};
      tv.tv_sec = 5;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      const char probe[] = "MODELS\n";
      if (::send(fd, probe, sizeof(probe) - 1, MSG_NOSIGNAL) !=
          static_cast<ssize_t>(sizeof(probe) - 1)) {
        fail("liveness probe send failed");
      } else {
        char buf[256];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 3 || std::string_view(buf, 2) != "OK") {
          fail("liveness probe got no answer");
        }
      }
      ::close(fd);
    }
  }

  front_end.Stop();
  server.Shutdown();

  // Post-drain metrics invariants.
  const serve::StatsSnapshot stats = server.Stats();
  if (stats.streams_opened !=
      stats.streams_closed + stats.streams_evicted) {
    fail("stream accounting broke: opened=" +
         std::to_string(stats.streams_opened) + " closed=" +
         std::to_string(stats.streams_closed) + " evicted=" +
         std::to_string(stats.streams_evicted));
  }
  if (stats.admitted != stats.ok + stats.timeout) {
    fail("classify accounting broke: admitted=" +
         std::to_string(stats.admitted) + " ok=" + std::to_string(stats.ok) +
         " timeout=" + std::to_string(stats.timeout));
  }

  if (record_events) {
    for (const ConnState& c : conns) {
      if (stopped_early) {
        events_.push_back("c" + std::to_string(c.index) + " end stopped");
      } else if (c.dirty) {
        events_.push_back("c" + std::to_string(c.index) + " end dirty");
      } else {
        events_.push_back("c" + std::to_string(c.index) + " end resps=" +
                          std::to_string(c.responses) +
                          " eof=" + (c.got_eof ? "1" : "0"));
      }
    }
  }
  return result;
}

}  // namespace rpm::fuzz
