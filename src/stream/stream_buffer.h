// Fixed-capacity ring buffer over an unbounded sample stream.
//
// Samples carry monotonically increasing stream indices: the i-th sample
// ever pushed has index i, forever, regardless of how many times the ring
// has wrapped. The scorer addresses windows by stream index ([k*hop,
// k*hop + window)), the buffer maps indices to ring slots, and eviction
// is explicit — the owner discards prefixes it has proven it will never
// read again (scored windows, samples past the rolling-stats horizon).
//
// Bounded memory is the point: Push refuses samples once the ring is
// full, which is the backpressure signal the session layer surfaces to
// producers (accepted < offered) instead of buffering without limit.

#ifndef RPM_STREAM_STREAM_BUFFER_H_
#define RPM_STREAM_STREAM_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ts/series.h"

namespace rpm::stream {

class StreamBuffer {
 public:
  StreamBuffer() = default;
  /// Ring of `capacity` doubles (capacity > 0); memory is allocated once
  /// here and never again.
  explicit StreamBuffer(std::size_t capacity);

  std::size_t capacity() const { return ring_.size(); }
  /// Samples currently retained (end() - begin()).
  std::size_t size() const { return static_cast<std::size_t>(end_ - begin_); }
  std::size_t free_space() const { return capacity() - size(); }

  /// Stream index of the oldest retained sample.
  std::uint64_t begin() const { return begin_; }
  /// One past the stream index of the newest sample == total samples ever
  /// pushed.
  std::uint64_t end() const { return end_; }

  /// Appends one sample; false (sample not stored) when the ring is full.
  bool Push(double v);

  /// Appends up to free_space() samples from `values`; returns how many
  /// were stored (a prefix of `values`).
  std::size_t PushSome(ts::SeriesView values);

  /// The sample with stream index `index`.
  /// Precondition: begin() <= index < end().
  double At(std::uint64_t index) const {
    return ring_[static_cast<std::size_t>(index % ring_.size())];
  }

  /// Copies the retained range [start, start + len) into `out`
  /// (contiguous, unwrapped). Precondition: begin() <= start and
  /// start + len <= end().
  void CopyTo(std::uint64_t start, std::size_t len, double* out) const;

  /// Drops every sample with stream index < `index` (no-op when `index`
  /// <= begin(); `index` is clamped to end()).
  void DiscardBefore(std::uint64_t index);

 private:
  std::vector<double> ring_;
  std::uint64_t begin_ = 0;  // oldest retained stream index
  std::uint64_t end_ = 0;    // total pushed == next index to assign
};

}  // namespace rpm::stream

#endif  // RPM_STREAM_STREAM_BUFFER_H_
