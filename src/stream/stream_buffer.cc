#include "stream/stream_buffer.h"

#include <algorithm>
#include <cstring>

namespace rpm::stream {

StreamBuffer::StreamBuffer(std::size_t capacity) : ring_(capacity) {}

bool StreamBuffer::Push(double v) {
  if (size() == ring_.size()) return false;
  ring_[static_cast<std::size_t>(end_ % ring_.size())] = v;
  ++end_;
  return true;
}

std::size_t StreamBuffer::PushSome(ts::SeriesView values) {
  const std::size_t n = std::min(values.size(), free_space());
  for (std::size_t i = 0; i < n; ++i) {
    ring_[static_cast<std::size_t>(end_ % ring_.size())] = values[i];
    ++end_;
  }
  return n;
}

void StreamBuffer::CopyTo(std::uint64_t start, std::size_t len,
                          double* out) const {
  const std::size_t cap = ring_.size();
  const std::size_t first = static_cast<std::size_t>(start % cap);
  // At most one wrap: the range is retained, so len <= cap.
  const std::size_t head = std::min(len, cap - first);
  std::memcpy(out, ring_.data() + first, head * sizeof(double));
  if (head < len) {
    std::memcpy(out + head, ring_.data(), (len - head) * sizeof(double));
  }
}

void StreamBuffer::DiscardBefore(std::uint64_t index) {
  begin_ = std::min(std::max(begin_, index), end_);
}

}  // namespace rpm::stream
