#include "stream/session_manager.h"

#include <algorithm>
#include <utility>

namespace rpm::stream {

StreamSessionManager::StreamSessionManager(StreamManagerOptions options,
                                           StreamStatsSink* sink)
    : options_([&] {
        StreamManagerOptions o = options;
        if (o.id_start == 0) o.id_start = 1;
        if (o.id_stride == 0) o.id_stride = 1;
        return o;
      }()),
      sink_(sink),
      next_id_(options_.id_start) {
  if (options_.reap_interval > std::chrono::nanoseconds::zero() &&
      options_.idle_timeout > std::chrono::nanoseconds::zero()) {
    reaper_ = std::thread([this] { ReaperLoop(); });
  }
}

StreamSessionManager::~StreamSessionManager() { Shutdown(); }

std::int64_t StreamSessionManager::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

StreamSummary StreamSessionManager::Summarize(const StreamScorer& scorer) {
  StreamSummary s;
  s.samples = scorer.samples();
  s.windows_scored = scorer.windows_scored();
  s.decisions = scorer.decisions();
  s.early_decisions = scorer.early_decisions();
  return s;
}

StreamSessionManager::OpenResult StreamSessionManager::Open(
    StreamModel model, StreamOptions options) {
  OpenResult result;
  if (model.engine == nullptr) {
    result.error = "no engine";
    return result;
  }
  const std::string error = ValidateStreamOptions(&options);
  if (!error.empty()) {
    result.error = error;
    return result;
  }
  auto session = std::make_shared<Session>(std::move(model), options);
  session->last_activity_ns.store(NowNs(), std::memory_order_relaxed);
  {
    std::unique_lock lock(map_mu_);
    if (shutdown_) {
      result.error = "shutting down";
      return result;
    }
    if (sessions_.size() >= options_.max_sessions) {
      result.error = "too many open streams";
      return result;
    }
    result.id = "s" + std::to_string(next_id_);
    next_id_ += options_.id_stride;
    sessions_.emplace(result.id, std::move(session));
  }
  result.ok = true;
  if (sink_ != nullptr) sink_->OnOpen();
  return result;
}

StreamSessionManager::FeedResult StreamSessionManager::Feed(
    const std::string& id, ts::SeriesView values) {
  FeedResult result;
  std::shared_ptr<Session> session;
  {
    std::shared_lock lock(map_mu_);
    if (shutdown_) {
      result.status = FeedStatus::kShutdown;
      return result;
    }
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      result.status = FeedStatus::kNotFound;
      return result;
    }
    session = it->second;
  }
  {
    std::lock_guard lock(session->mu);
    result.accepted = session->scorer.Feed(values, &result.decisions);
  }
  session->last_activity_ns.store(NowNs(), std::memory_order_relaxed);
  if (sink_ != nullptr) {
    sink_->OnFeed(result.accepted, result.accepted < values.size());
    for (const StreamDecision& d : result.decisions) {
      sink_->OnDecision(d.score_us, d.early);
    }
  }
  return result;
}

StreamSessionManager::CloseResult StreamSessionManager::Close(
    const std::string& id) {
  CloseResult result;
  std::shared_ptr<Session> session;
  {
    std::unique_lock lock(map_mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return result;
    session = std::move(it->second);
    sessions_.erase(it);
  }
  {
    std::lock_guard lock(session->mu);
    result.summary = Summarize(session->scorer);
  }
  result.found = true;
  if (sink_ != nullptr) sink_->OnClose();
  return result;
}

std::vector<std::string> StreamSessionManager::Ids() const {
  std::vector<std::string> ids;
  {
    std::shared_lock lock(map_mu_);
    ids.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end(), [](const std::string& a,
                                       const std::string& b) {
    // "s<N>" ids: numeric order, not lexicographic ("s9" < "s10").
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
  return ids;
}

std::size_t StreamSessionManager::size() const {
  std::shared_lock lock(map_mu_);
  return sessions_.size();
}

std::size_t StreamSessionManager::EvictIdle(
    std::chrono::nanoseconds idle_for) {
  const std::int64_t cutoff = NowNs() - idle_for.count();
  std::vector<std::shared_ptr<Session>> evicted;
  {
    std::unique_lock lock(map_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second->last_activity_ns.load(std::memory_order_relaxed) <=
          cutoff) {
        evicted.push_back(std::move(it->second));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Destroy scorer state outside the map lock (rings can be large).
  if (sink_ != nullptr) {
    for (std::size_t i = 0; i < evicted.size(); ++i) sink_->OnEvict();
  }
  return evicted.size();
}

void StreamSessionManager::ReaperLoop() {
  std::unique_lock lock(reaper_mu_);
  while (!reaper_stop_) {
    reaper_cv_.wait_for(lock, options_.reap_interval,
                        [this] { return reaper_stop_; });
    if (reaper_stop_) break;
    lock.unlock();
    EvictIdle(options_.idle_timeout);
    lock.lock();
  }
}

void StreamSessionManager::Shutdown() {
  {
    std::lock_guard lock(reaper_mu_);
    reaper_stop_ = true;
  }
  reaper_cv_.notify_all();
  if (reaper_.joinable()) reaper_.join();

  std::vector<std::shared_ptr<Session>> doomed;
  {
    std::unique_lock lock(map_mu_);
    shutdown_ = true;
    doomed.reserve(sessions_.size());
    for (auto& [id, session] : sessions_) doomed.push_back(std::move(session));
    sessions_.clear();
  }
  if (sink_ != nullptr) {
    for (std::size_t i = 0; i < doomed.size(); ++i) sink_->OnClose();
  }
}

}  // namespace rpm::stream
