// Per-session state for the streaming subsystem: owns one StreamScorer
// per open stream, keyed by a monotonic session id, with idle eviction
// and a hard session cap so memory stays bounded no matter how many
// clients connect and walk away.
//
// Concurrency model: a shared_mutex guards the id -> session map;
// feeds/closes take a shared lock to find the session, then serialize on
// the session's own mutex. Feeds to *different* sessions run fully in
// parallel; two feeds to the same session are ordered (the scorer is a
// deterministic state machine, so order is the only thing that matters).
// Sessions are shared_ptr-held: eviction can drop a session from the map
// while a feed is mid-flight on it — the feed finishes on its pinned
// pointer and the state is freed afterwards.
//
// The layer below serve: no protocol, no sockets, no ServerStats — the
// serving layer adapts its stats object to StreamStatsSink.

#ifndef RPM_STREAM_SESSION_MANAGER_H_
#define RPM_STREAM_SESSION_MANAGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/classifier.h"
#include "stream/stream_scorer.h"
#include "ts/series.h"

namespace rpm::stream {

/// A model pinned for the lifetime of a stream session. `owner` keeps the
/// storage alive (e.g. the serving layer's loaded-model handle); `engine`
/// points into it. Hot-reloading a model therefore never invalidates open
/// sessions — they keep classifying against the version they opened with.
struct StreamModel {
  std::shared_ptr<const void> owner;
  const core::ClassificationEngine* engine = nullptr;
};

/// Observer for stream lifecycle and throughput events. Implementations
/// must be thread-safe; callbacks fire on feeder and reaper threads.
class StreamStatsSink {
 public:
  virtual ~StreamStatsSink() = default;
  virtual void OnOpen() {}
  virtual void OnClose() {}
  virtual void OnEvict() {}
  /// After each feed: samples stored, and whether the ring refused a
  /// suffix (backpressure).
  virtual void OnFeed(std::size_t accepted, bool truncated) {
    (void)accepted;
    (void)truncated;
  }
  virtual void OnDecision(double score_us, bool early) {
    (void)score_us;
    (void)early;
  }
};

struct StreamManagerOptions {
  /// Hard cap on concurrently open sessions; Open fails beyond it.
  std::size_t max_sessions = 256;
  /// Sessions idle longer than this are evicted by the reaper (zero
  /// disables time-based eviction; EvictIdle can still be called).
  std::chrono::nanoseconds idle_timeout = std::chrono::minutes(5);
  /// How often the background reaper wakes (zero: no reaper thread).
  std::chrono::nanoseconds reap_interval = std::chrono::seconds(1);
  /// Session id numbering: ids are "s<N>" with N = id_start, id_start +
  /// id_stride, ... A sharded server gives shard i (of S) id_start=i+1,
  /// id_stride=S, so ids stay globally unique and (N-1) % S recovers the
  /// owning shard from the id alone (see serve::InferenceServer).
  /// Defaults preserve the historical s1, s2, ... sequence.
  std::uint64_t id_start = 1;
  std::uint64_t id_stride = 1;
};

/// Summary of a session's lifetime counters, returned by Close and used
/// by the protocol layer's "OK closed" reply.
struct StreamSummary {
  std::uint64_t samples = 0;
  std::uint64_t windows_scored = 0;
  std::uint64_t decisions = 0;
  std::uint64_t early_decisions = 0;
};

class StreamSessionManager {
 public:
  explicit StreamSessionManager(StreamManagerOptions options = {},
                                StreamStatsSink* sink = nullptr);
  ~StreamSessionManager();

  StreamSessionManager(const StreamSessionManager&) = delete;
  StreamSessionManager& operator=(const StreamSessionManager&) = delete;

  struct OpenResult {
    bool ok = false;
    std::string id;     ///< "s<N>" on success
    std::string error;  ///< why not, on failure
  };
  /// Validates `options`, pins `model`, and registers a new session.
  OpenResult Open(StreamModel model, StreamOptions options);

  enum class FeedStatus { kOk, kNotFound, kShutdown };
  struct FeedResult {
    FeedStatus status = FeedStatus::kOk;
    std::size_t accepted = 0;  ///< samples stored (may be < offered)
    std::vector<StreamDecision> decisions;
  };
  FeedResult Feed(const std::string& id, ts::SeriesView values);

  struct CloseResult {
    bool found = false;
    StreamSummary summary;
  };
  CloseResult Close(const std::string& id);

  /// Open session ids, sorted.
  std::vector<std::string> Ids() const;
  std::size_t size() const;

  /// Evicts sessions idle for at least `idle_for`; returns how many.
  std::size_t EvictIdle(std::chrono::nanoseconds idle_for);

  /// Closes every session and stops the reaper; Open/Feed fail afterwards.
  void Shutdown();

 private:
  struct Session {
    Session(StreamModel m, const StreamOptions& opts)
        : model(std::move(m)), scorer(model.engine, opts) {}
    std::mutex mu;  // serializes Feed/summary on this session
    StreamModel model;
    StreamScorer scorer;
    std::atomic<std::int64_t> last_activity_ns{0};
  };

  static StreamSummary Summarize(const StreamScorer& scorer);
  std::int64_t NowNs() const;
  void ReaperLoop();

  const StreamManagerOptions options_;
  StreamStatsSink* const sink_;  // may be null

  mutable std::shared_mutex map_mu_;
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_id_;  // advances by options_.id_stride per Open
  bool shutdown_ = false;

  std::mutex reaper_mu_;
  std::condition_variable reaper_cv_;
  bool reaper_stop_ = false;
  std::thread reaper_;
};

}  // namespace rpm::stream

#endif  // RPM_STREAM_SESSION_MANAGER_H_
