// Per-session streaming scorer: turns an unbounded sample feed into a
// sequence of rolling class decisions.
//
// Windows are addressed by hop index k — window k covers stream indices
// [k*hop, k*hop + window). As samples arrive the scorer
//
//  * maintains incremental window moments (ts::RollingStats, one
//    Add/Slide per sample, exact recompute every
//    `stats_refresh_interval` samples to bound drift);
//  * when a window completes, materializes it out of the ring,
//    z-normalizes it with the rolling moments (same flat-window rule as
//    the batch path via ts::WindowMomentsFromSums), and scores it
//    through the model's warm core::ClassificationEngine — the pattern
//    contexts and the AVX2 best-match scan are exactly the batch
//    CLASSIFY machinery, re-derived zero times per hop;
//  * optionally emits a decision *before* the frontier window is full
//    (early classification): once a prefix of at least
//    `early_fraction * window` samples scores with a best-class margin
//    of at least `early_margin`, the hop is decided on the spot and the
//    full window is skipped when it completes.
//
// Determinism: for a fixed sample sequence and options, the decisions
// are byte-identical regardless of how the feed is chunked — the
// per-sample state machine never looks at chunk boundaries. (The one
// exception is early classification, which by design fires at
// end-of-feed probes and therefore depends on chunking; it is off by
// default.) This is what the golden streaming-vs-batch tests pin down.
//
// Not thread-safe; the session manager serializes feeds per session.

#ifndef RPM_STREAM_STREAM_SCORER_H_
#define RPM_STREAM_STREAM_SCORER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "stream/stream_buffer.h"
#include "ts/series.h"
#include "ts/znorm.h"

namespace rpm::stream {

struct StreamOptions {
  /// Samples per scored window. Required (> 0).
  std::size_t window = 0;
  /// Stride between window starts; 0 defaults to `window` (tumbling).
  std::size_t hop = 0;
  /// Z-normalize each window before scoring (UCR instances are
  /// z-normalized, so raw feeds need this on to match trained models).
  bool znorm_windows = true;
  /// Samples between exact rolling-moment recomputes (0 = never). The
  /// default keeps incremental-vs-exact drift under 1e-9 even on
  /// far-wandering random-walk feeds; the amortized recompute cost is
  /// window/interval operations per sample.
  std::size_t stats_refresh_interval = 1024;
  /// Fraction of the window a prefix must reach before early
  /// classification is attempted; 0 disables early decisions.
  double early_fraction = 0.0;
  /// Best-class margin (in [0, 1]) a prefix must score to decide early.
  double early_margin = 0.5;
  /// Ring capacity in samples; 0 = auto (window + hop + slack). Must
  /// exceed window + 1 so the rolling stats always have their horizon.
  std::size_t capacity = 0;
};

/// Normalizes defaults (hop, capacity) in place and returns an empty
/// string, or returns a description of why the options are invalid.
std::string ValidateStreamOptions(StreamOptions* options);

/// One emitted classification.
struct StreamDecision {
  std::uint64_t window_index = 0;  ///< hop index k
  std::uint64_t start = 0;         ///< k * hop (stream sample index)
  std::size_t length = 0;          ///< samples scored (< window if early)
  int label = 0;
  /// Best-class margin from the pattern-distance row, in [0, 1]
  /// ((d2 - d1) / d2 over per-class minimum distances); 0 when the model
  /// has patterns from fewer than two classes or no feature space.
  double margin = 0.0;
  bool early = false;
  /// Wall time spent scoring this window, microseconds.
  double score_us = 0.0;
};

class StreamScorer {
 public:
  /// `engine` must outlive the scorer (the session pins the model).
  /// `options` must have passed ValidateStreamOptions.
  StreamScorer(const core::ClassificationEngine* engine,
               const StreamOptions& options);

  /// Ingests a prefix of `values` (bounded by ring free space after
  /// eviction — the backpressure bound), scoring every window that
  /// completes; appends emitted decisions to *out. Returns how many
  /// samples were accepted; a short count means the producer outran the
  /// ring and must re-offer the rest.
  std::size_t Feed(ts::SeriesView values, std::vector<StreamDecision>* out);

  const StreamOptions& options() const { return options_; }
  std::uint64_t samples() const { return buffer_.end(); }
  std::uint64_t windows_scored() const { return windows_scored_; }
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t early_decisions() const { return early_decisions_; }

  /// Test/replay hook: observes every scored window *after*
  /// normalization, exactly as the engine saw it. The view is only valid
  /// during the call.
  using WindowObserver =
      std::function<void(const StreamDecision&, ts::SeriesView)>;
  void set_window_observer(WindowObserver observer) {
    observer_ = std::move(observer);
  }

 private:
  /// Materializes + normalizes [start, start+len) into scratch_ and
  /// scores it. Fills everything except window_index/early.
  StreamDecision ScoreWindow(std::uint64_t start, std::size_t len);
  void MaybeClassifyEarly(std::vector<StreamDecision>* out);
  double BestClassMargin(const std::vector<double>& row) const;

  const core::ClassificationEngine* engine_;
  StreamOptions options_;
  StreamBuffer buffer_;
  ts::RollingStats rolling_;
  /// Representative-pattern indices grouped per class (margin computation).
  std::vector<std::vector<std::size_t>> class_patterns_;
  ts::Series scratch_;  // one window, reused every hop
  /// Warm transform state (series contexts, SoA match scratch) and the
  /// feature row, reused across hops so scoring allocates nothing in
  /// steady state.
  core::TransformScratch row_scratch_;
  std::vector<double> row_;

  std::uint64_t next_index_ = 0;  // hop index of the frontier window
  std::uint64_t next_start_ = 0;  // == next_index_ * hop
  bool early_decided_ = false;    // frontier hop already decided early
  std::size_t early_attempt_len_ = 0;  // prefix length at the last attempt

  std::uint64_t windows_scored_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t early_decisions_ = 0;
  WindowObserver observer_;
};

/// Offline replay: runs a scorer with the same options over `feed` in a
/// single Feed call and returns the emitted decisions; when `windows` is
/// non-null, also captures each scored window post-normalization. This
/// is the batch-side half of the streaming-equals-batch golden tests and
/// the bench baseline. (With early classification enabled, decisions
/// depend on feed chunking, so replay only reproduces a live session's
/// output when early is off or the chunking matches.)
std::vector<StreamDecision> ReplayWindows(
    const core::ClassificationEngine& engine, ts::SeriesView feed,
    StreamOptions options, std::vector<ts::Series>* windows = nullptr);

}  // namespace rpm::stream

#endif  // RPM_STREAM_STREAM_SCORER_H_
