#include "stream/stream_scorer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "ts/znorm.h"

namespace rpm::stream {

namespace {

// Sanity bound on window/hop: a corrupt or hostile STREAM_OPEN must not
// translate into a multi-gigabyte ring allocation.
constexpr std::size_t kMaxWindow = std::size_t{1} << 22;

using Clock = std::chrono::steady_clock;

}  // namespace

std::string ValidateStreamOptions(StreamOptions* options) {
  if (options->window == 0) return "window must be positive";
  if (options->window > kMaxWindow) return "window too large";
  if (options->hop == 0) options->hop = options->window;
  if (options->hop > kMaxWindow) return "hop too large";
  if (options->early_fraction < 0.0 || options->early_fraction > 1.0) {
    return "early_fraction must be in [0, 1]";
  }
  if (options->early_margin < 0.0 || options->early_margin > 1.0) {
    return "early_margin must be in [0, 1]";
  }
  if (options->capacity == 0) {
    // Auto: the rolling-stats horizon (window + 1 retained samples) plus
    // at least one hop of headroom so steady-state feeds never stall.
    options->capacity =
        options->window + 1 +
        std::max({options->hop, options->window, std::size_t{256}});
  }
  if (options->capacity < options->window + 2) {
    return "capacity must exceed window + 1";
  }
  return "";
}

StreamScorer::StreamScorer(const core::ClassificationEngine* engine,
                           const StreamOptions& options)
    : engine_(engine),
      options_(options),
      buffer_(options.capacity),
      rolling_(options.window, options.stats_refresh_interval),
      scratch_(options.window, 0.0) {
  // Group pattern indices by class once; BestClassMargin walks the groups
  // on every scored window.
  const auto& patterns = engine_->classifier().patterns();
  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    by_class[patterns[i].class_label].push_back(i);
  }
  class_patterns_.reserve(by_class.size());
  for (auto& [label, indices] : by_class) {
    class_patterns_.push_back(std::move(indices));
  }
}

double StreamScorer::BestClassMargin(const std::vector<double>& row) const {
  // Per-class best (minimum) pattern distance; the margin is the relative
  // gap between the two closest classes.
  double best = std::numeric_limits<double>::infinity();
  double second = std::numeric_limits<double>::infinity();
  for (const auto& indices : class_patterns_) {
    double class_min = std::numeric_limits<double>::infinity();
    for (const std::size_t i : indices) {
      class_min = std::min(class_min, row[i]);
    }
    if (class_min < best) {
      second = best;
      best = class_min;
    } else if (class_min < second) {
      second = class_min;
    }
  }
  if (!std::isfinite(second)) return 0.0;  // fewer than two classes
  if (second <= 0.0) return 0.0;           // two exact matches: no signal
  const double margin = (second - best) / second;
  return std::clamp(margin, 0.0, 1.0);
}

StreamDecision StreamScorer::ScoreWindow(std::uint64_t start,
                                         std::size_t len) {
  const Clock::time_point t0 = Clock::now();
  StreamDecision decision;
  decision.start = start;
  decision.length = len;
  buffer_.CopyTo(start, len, scratch_.data());
  if (options_.znorm_windows) {
    double sum = 0.0;
    double sum_sq = 0.0;
    if (len == options_.window) {
      // Full frontier window: the rolling accumulators cover exactly
      // [start, start + window) at this instant.
      sum = rolling_.sum();
      sum_sq = rolling_.sum_sq();
    } else {
      for (std::size_t i = 0; i < len; ++i) {
        sum += scratch_[i];
        sum_sq += scratch_[i] * scratch_[i];
      }
    }
    double mu = 0.0;
    double sigma = 0.0;
    ts::WindowMomentsFromSums(sum, sum_sq, 1.0 / static_cast<double>(len),
                              &mu, &sigma);
    const double inv_sigma = 1.0 / sigma;  // flat rule: sigma == 1.0
    for (std::size_t i = 0; i < len; ++i) {
      scratch_[i] = (scratch_[i] - mu) * inv_sigma;
    }
  }
  const ts::SeriesView view(scratch_.data(), len);
  if (engine_->has_feature_space()) {
    // Warm per-session buffers: contexts, match scratch, and the row
    // vector persist across hops, so steady-state scoring is alloc-free.
    engine_->RowInto(view, &row_scratch_, &row_);
    decision.label = engine_->PredictRow(row_);
    decision.margin = BestClassMargin(row_);
  } else {
    decision.label = engine_->classifier().majority_label();
  }
  // Span over one window scoring, reusing the timestamps already taken
  // for score_us (sampled inside; a relaxed load when tracing is off).
  const Clock::time_point t1 = Clock::now();
  obs::Tracer::Default().MaybeRecord("stream.score_window", t0, t1);
  decision.score_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  return decision;
}

void StreamScorer::MaybeClassifyEarly(std::vector<StreamDecision>* out) {
  if (options_.early_fraction <= 0.0 || early_decided_) return;
  if (!engine_->has_feature_space()) return;
  const std::uint64_t end = buffer_.end();
  if (end <= next_start_) return;
  const std::size_t len = static_cast<std::size_t>(end - next_start_);
  if (len >= options_.window) return;  // the full window decides
  const auto min_len = static_cast<std::size_t>(std::ceil(
      options_.early_fraction * static_cast<double>(options_.window)));
  if (len < std::max<std::size_t>(2, min_len)) return;
  if (len == early_attempt_len_) return;  // no new samples since last try
  early_attempt_len_ = len;

  StreamDecision decision = ScoreWindow(next_start_, len);
  ++windows_scored_;
  if (decision.margin < options_.early_margin) return;  // defer
  decision.window_index = next_index_;
  decision.early = true;
  early_decided_ = true;
  ++decisions_;
  ++early_decisions_;
  if (observer_) {
    observer_(decision, ts::SeriesView(scratch_.data(), decision.length));
  }
  out->push_back(std::move(decision));
}

std::size_t StreamScorer::Feed(ts::SeriesView values,
                               std::vector<StreamDecision>* out) {
  const std::size_t window = options_.window;
  std::size_t accepted = 0;
  while (accepted < values.size()) {
    if (buffer_.free_space() == 0) {
      // Evict everything no future window or rolling refresh can read:
      // samples before the frontier window start and older than the
      // rolling-stats horizon (window + 1 trailing samples).
      const std::uint64_t end = buffer_.end();
      const std::uint64_t horizon = end > window ? end - window - 1 : 0;
      buffer_.DiscardBefore(std::min(next_start_, horizon));
      if (buffer_.free_space() == 0) break;  // backpressure
    }
    const double v = values[accepted];
    buffer_.Push(v);
    ++accepted;

    const std::uint64_t end = buffer_.end();
    if (end <= window) {
      rolling_.Add(v);
    } else {
      rolling_.Slide(v, buffer_.At(end - 1 - window));
      if (rolling_.NeedsRefresh()) {
        buffer_.CopyTo(end - window, window, scratch_.data());
        rolling_.Refresh(ts::SeriesView(scratch_.data(), window));
      }
    }

    if (end == next_start_ + window) {
      if (!early_decided_) {
        StreamDecision decision = ScoreWindow(next_start_, window);
        decision.window_index = next_index_;
        ++windows_scored_;
        ++decisions_;
        if (observer_) {
          observer_(decision, ts::SeriesView(scratch_.data(), window));
        }
        out->push_back(std::move(decision));
      }
      ++next_index_;
      next_start_ += options_.hop;
      early_decided_ = false;
      early_attempt_len_ = 0;
    }
  }
  MaybeClassifyEarly(out);
  return accepted;
}

std::vector<StreamDecision> ReplayWindows(
    const core::ClassificationEngine& engine, ts::SeriesView feed,
    StreamOptions options, std::vector<ts::Series>* windows) {
  const std::string error = ValidateStreamOptions(&options);
  if (!error.empty()) {
    throw std::invalid_argument("ReplayWindows: " + error);
  }
  StreamScorer scorer(&engine, options);
  if (windows != nullptr) {
    scorer.set_window_observer(
        [windows](const StreamDecision&, ts::SeriesView w) {
          windows->emplace_back(w.begin(), w.end());
        });
  }
  std::vector<StreamDecision> out;
  std::size_t offset = 0;
  while (offset < feed.size()) {
    const std::size_t n =
        scorer.Feed(feed.subspan(offset), &out);
    if (n == 0) break;  // ring exhausted under a user-set tiny capacity
    offset += n;
  }
  return out;
}

}  // namespace rpm::stream
