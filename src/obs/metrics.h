// Unified metric registry: named counters, gauges, and fixed-bucket
// histograms with lock-free recording.
//
// Instrumentation was previously fragmented — training had its own
// phase counters (core/phase_profile), the server bespoke histograms
// (serve/server_stats), streaming bolted counters onto both — with no
// single machine-readable view across serve -> stream -> matcher. This
// registry is that view: every subsystem registers its cells here, and
// one Snapshot() feeds both the STATS JSON facade and the Prometheus
// text expositor (obs/exposition.h), so the two can never disagree
// about what happened.
//
// Cost model:
//  * Recording (Counter::Increment, Gauge::Set/Add, Histogram::Record)
//    is a handful of relaxed atomic operations — no locks, no
//    allocation, safe from any thread including pool workers.
//  * Registration (GetCounter/GetGauge/GetHistogram) takes the registry
//    mutex and may allocate; it happens at construction/startup, not on
//    hot paths. Cells are deduplicated by (name, labels), so repeated
//    registration returns the same cell. Cell pointers are stable for
//    the registry's lifetime (cells are individually heap-allocated).
//  * Snapshot() takes the mutex only to walk the cell list; the values
//    it copies are relaxed loads. A snapshot taken while writers are
//    active is internally consistent per cell but not across cells —
//    the usual contract for serving metrics.
//
// Naming follows the Prometheus conventions documented in
// docs/OBSERVABILITY.md: snake_case, unit suffix (`_microseconds`,
// `_bytes`), `_total` for counters; label sets are fixed at
// registration (one cell per label combination).

#ifndef RPM_OBS_METRICS_H_
#define RPM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rpm::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous integer level (queue depth, open sessions, ...).
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Plain-value copy of one histogram, taken by a registry snapshot.
/// counts has upper_bounds.size() + 1 entries: the last cell is the
/// overflow bucket (values above every finite bound — rendered as the
/// `+Inf` bucket in the Prometheus exposition).
struct HistogramSnapshot {
  std::vector<double> upper_bounds;   ///< finite bucket upper edges
  std::vector<std::uint64_t> counts;  ///< per-bucket counts + overflow
  std::uint64_t total = 0;            ///< sum of counts
  double sum = 0.0;                   ///< sum of recorded values

  /// Upper bound of the bucket holding the p-th percentile (p in
  /// [0, 100]); 0 when empty. Overflow-bucket hits report the highest
  /// finite bound so the result is always renderable.
  double Percentile(double p) const;
  double Mean() const { return total == 0 ? 0.0 : sum / double(total); }
};

/// Fixed-bucket histogram with relaxed atomic cells. Bounds are
/// immutable after construction, so Record is wait-free.
class Histogram {
 public:
  static constexpr std::size_t kMaxBuckets = 64;

  /// Ascending finite bucket bounds [0, b0], (b0, b1], ...; values above
  /// the last bound land in the overflow (+Inf) bucket. At most
  /// kMaxBuckets bounds; extras are dropped.
  static std::vector<double> GeometricBounds(double first, double growth,
                                             std::size_t n = kMaxBuckets);
  static std::vector<double> LinearBounds(double step,
                                          std::size_t n = kMaxBuckets);

  explicit Histogram(const std::vector<double>& bounds);

  void Record(double value);
  HistogramSnapshot Snapshot() const;

 private:
  std::size_t num_bounds_ = 0;
  std::array<double, kMaxBuckets> bounds_{};
  // counts_[num_bounds_] is the overflow bucket.
  std::array<std::atomic<std::uint64_t>, kMaxBuckets + 1> counts_{};
  std::atomic<std::uint64_t> total_{0};
  // Value sum accumulated in integer milli-units so the add is a plain
  // atomic fetch_add (no CAS loop).
  std::atomic<std::uint64_t> sum_milli_{0};
};

/// One label key/value pair; label sets are fixed at registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Point-in-time copy of one scalar cell.
struct ScalarSample {
  std::string name;
  std::string help;
  Labels labels;
  double value = 0.0;
  bool is_counter = false;  ///< false: gauge
};

/// Point-in-time copy of one histogram cell.
struct HistogramSample {
  std::string name;
  std::string help;
  Labels labels;
  HistogramSnapshot snapshot;
};

/// Point-in-time copy of every cell in one registry, in registration
/// order. Both the STATS JSON facade and the Prometheus expositor read
/// this type, so one snapshot serves both texts.
struct RegistrySnapshot {
  std::vector<ScalarSample> scalars;
  std::vector<HistogramSample> histograms;

  /// Counter/gauge value by (name, labels); 0 when absent.
  double Scalar(const std::string& name, const Labels& labels = {}) const;
  /// Counter/gauge value as an integer count; 0 when absent.
  std::uint64_t Count(const std::string& name,
                      const Labels& labels = {}) const;
  /// Histogram by name (first label set); nullptr when absent.
  const HistogramSample* FindHistogram(const std::string& name) const;
};

/// A named set of metric cells. Thread-safe; see the cost model above.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Find-or-create the cell for (name, labels). `help` is recorded on
  /// first registration. Returned pointers stay valid for the
  /// registry's lifetime.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const std::vector<double>& bounds,
                          const Labels& labels = {});

  RegistrySnapshot Snapshot() const;

 private:
  struct Cell {
    std::string name;
    std::string help;
    Labels labels;
    // Exactly one of these is set (tagged by which pointer is non-null).
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Registration key: name plus rendered label set.
  static std::string Key(const std::string& name, const Labels& labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Cell>> cells_;  // registration order
  std::map<std::string, Cell*> index_;
};

/// The process-wide registry for subsystem-level metrics (the batched
/// matcher, training internals) that are not tied to one server
/// instance. Server-scoped metrics (serve/stream) live in the server's
/// own registry (serve/server_stats.h); the METRICS verb renders both.
MetricRegistry& DefaultRegistry();

}  // namespace rpm::obs

#endif  // RPM_OBS_METRICS_H_
