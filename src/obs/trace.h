// Scoped trace spans with per-thread ring buffers and explicit flush.
//
// A TraceSpan is an RAII scope that, when tracing is enabled and the
// span is sampled, records {name, start, duration, thread, seq} into
// the calling thread's ring buffer on destruction. The rings are only
// read on an explicit flush (Tracer::Recent — the TRACE protocol verb,
// test assertions), never concurrently with the hot path except under
// each ring's own mutex, which the owning thread holds only for the
// few stores of one record append.
//
// Cost model:
//  * Tracing disabled (the default): constructing a TraceSpan is one
//    relaxed atomic load and a branch; the destructor is a branch. Hot
//    paths can therefore carry spans unconditionally.
//  * Tracing enabled: per-thread sampling (record 1 of every
//    `sample_every` spans, counted per thread per callsite stream)
//    keeps the steady-state cost at the same load + a thread-local
//    counter increment; a *sampled* span additionally pays two
//    steady_clock reads and one uncontended mutex-protected ring
//    append.
//
// Span names are static strings (string literals at the callsites);
// the tracer stores the pointers, never copies — a deliberate
// restriction that keeps recording allocation-free.
//
// Subsystems that already read the clock for their own accounting
// (stream scoring, batch dispatch, phase profiling) use
// Tracer::MaybeRecord with the timestamps they measured anyway, so
// enabling tracing adds zero extra clock reads on those paths.

#ifndef RPM_OBS_TRACE_H_
#define RPM_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rpm::obs {

/// One finished span. `name` points at a static string.
struct SpanRecord {
  const char* name = "";
  std::uint64_t start_ns = 0;     ///< steady time since process epoch
  std::uint64_t duration_ns = 0;  ///< scope wall time
  std::uint64_t seq = 0;          ///< global completion order
  std::uint32_t thread = 0;       ///< tracer-local thread index
};

class Tracer {
 public:
  using Clock = std::chrono::steady_clock;
  static constexpr std::size_t kRingCapacity = 1024;  ///< spans per thread

  /// The process-wide tracer every TraceSpan uses by default.
  static Tracer& Default();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Master switch; off by default. Off, spans cost one relaxed load.
  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Record 1 of every n spans per thread (n == 0 behaves as 1).
  void set_sample_every(std::uint32_t n) {
    sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  std::uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// True when this span should be recorded (enabled + sampled). Each
  /// call advances the calling thread's sample counter.
  bool ShouldSample();

  /// Appends one record to the calling thread's ring (no sampling —
  /// the caller already decided). Timestamps are Clock time points.
  void Record(const char* name, Clock::time_point start,
              Clock::time_point end);

  /// Sampling + recording in one call, for paths that measured their
  /// own timestamps anyway. No-op while disabled.
  void MaybeRecord(const char* name, Clock::time_point start,
                   Clock::time_point end) {
    if (ShouldSample()) Record(name, start, end);
  }

  /// Explicit flush: collects every thread's ring, orders by completion
  /// (seq), and returns the most recent `n` spans (all when n == 0).
  std::vector<SpanRecord> Recent(std::size_t n = 0) const;

  /// Drops every buffered span (tests, between bench phases).
  void Clear();

  /// Nanoseconds from the process epoch to `t` (the epoch is the first
  /// obs clock use in the process).
  static std::uint64_t SinceEpochNs(Clock::time_point t);

 private:
  struct ThreadRing {
    std::mutex mutex;
    std::uint32_t thread = 0;
    std::vector<SpanRecord> ring;  // capacity kRingCapacity, wraps
    std::size_t next = 0;          // next write slot
  };

  ThreadRing* RingForThisThread();

  // Distinguishes this tracer in per-thread state caches. Keying those
  // caches by address would alias a new tracer constructed at a
  // destroyed one's address (stack reuse in tests).
  const std::uint64_t id_;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> sample_every_{1};
  std::atomic<std::uint64_t> seq_{0};

  mutable std::mutex rings_mutex_;
  std::vector<std::shared_ptr<ThreadRing>> rings_;
};

/// RAII scoped span writing to Tracer::Default() (or an explicit
/// tracer). The clock is read only when the span is actually sampled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Tracer& tracer = Tracer::Default())
      : tracer_(&tracer), name_(name), armed_(tracer.ShouldSample()) {
    if (armed_) start_ = Tracer::Clock::now();
  }
  ~TraceSpan() {
    if (armed_) tracer_->Record(name_, start_, Tracer::Clock::now());
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  bool armed_;
  Tracer::Clock::time_point start_;
};

}  // namespace rpm::obs

#endif  // RPM_OBS_TRACE_H_
