// Text expositors for the observability layer: the metric registry in
// Prometheus text exposition format, and recent trace spans as one-line
// JSON. Both operate on plain-value snapshots, so rendering never holds
// a registry or ring lock.
//
// Prometheus format (v0.0.4 text):
//   # HELP <name> <help>
//   # TYPE <name> counter|gauge|histogram
//   <name>{<labels>} <value>
//   ...histograms additionally render cumulative <name>_bucket{le="..."}
//   series ending in le="+Inf", plus <name>_sum and <name>_count.
// The output ends with a final `# EOF` line (OpenMetrics-style), which
// the METRICS protocol verb uses as its end-of-response marker.

#ifndef RPM_OBS_EXPOSITION_H_
#define RPM_OBS_EXPOSITION_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rpm::obs {

/// Renders one or more registry snapshots (concatenated — callers pass
/// the server registry plus the process-default registry) as Prometheus
/// text. Metric names must be unique across the snapshots; ends with
/// "# EOF\n".
std::string RenderPrometheus(const std::vector<const RegistrySnapshot*>& snaps);
std::string RenderPrometheus(const RegistrySnapshot& snap);

/// Renders spans as a one-line JSON array, oldest first:
///   [{"name":"serve.batch","start_us":12.3,"dur_us":4.5,
///     "thread":0,"seq":7}, ...]
std::string RenderSpansJson(const std::vector<SpanRecord>& spans);

}  // namespace rpm::obs

#endif  // RPM_OBS_EXPOSITION_H_
