#include "obs/trace.h"

#include <algorithm>

namespace rpm::obs {

namespace {

// Process epoch: first obs clock use. Span start times are offsets from
// this point, so they fit an unsigned 64-bit nanosecond count and are
// comparable across threads.
Tracer::Clock::time_point ProcessEpoch() {
  static const Tracer::Clock::time_point epoch = Tracer::Clock::now();
  return epoch;
}

// Per-thread tracer state, cached so the hot path never touches the
// tracer's ring registry: the ring pointer (rings are owned by the
// tracer via shared_ptr, so the raw pointer stays valid for the
// tracer's lifetime — a tracer must outlive the threads that trace
// through it) and the sampling counter. Keyed by the tracer's unique
// id, not its address: a short-lived tracer (tests) can be destroyed
// and another constructed at the same address, and an address-keyed
// cache would hand the new tracer the dead one's ring.
struct ThreadTracerState {
  std::uint64_t tracer_id = 0;
  void* ring = nullptr;
  std::uint64_t sample_counter = 0;
};

thread_local std::vector<ThreadTracerState> t_states;

ThreadTracerState& StateFor(std::uint64_t tracer_id) {
  for (ThreadTracerState& s : t_states) {
    if (s.tracer_id == tracer_id) return s;
  }
  t_states.push_back(ThreadTracerState{tracer_id, nullptr, 0});
  return t_states.back();
}

std::uint64_t NextTracerId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::uint64_t Tracer::SinceEpochNs(Clock::time_point t) {
  // The epoch is the first obs clock use; a timestamp captured just
  // before that (the very first span's start) clamps to 0 instead of
  // wrapping the unsigned offset.
  const Clock::time_point epoch = ProcessEpoch();
  if (t <= epoch) return 0;
  return std::uint64_t(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch)
          .count());
}

Tracer::Tracer() : id_(NextTracerId()) {}

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();  // never destroyed
  return *tracer;
}

bool Tracer::ShouldSample() {
  if (!enabled()) return false;
  const std::uint32_t n = sample_every();
  if (n <= 1) return true;
  ThreadTracerState& state = StateFor(id_);
  return state.sample_counter++ % n == 0;
}

Tracer::ThreadRing* Tracer::RingForThisThread() {
  ThreadTracerState& state = StateFor(id_);
  if (state.ring == nullptr) {
    auto ring = std::make_shared<ThreadRing>();
    ring->ring.reserve(kRingCapacity);
    std::lock_guard lock(rings_mutex_);
    ring->thread = std::uint32_t(rings_.size());
    state.ring = ring.get();
    rings_.push_back(std::move(ring));
  }
  return static_cast<ThreadRing*>(state.ring);
}

void Tracer::Record(const char* name, Clock::time_point start,
                    Clock::time_point end) {
  SpanRecord rec;
  rec.name = name;
  rec.start_ns = SinceEpochNs(start);
  rec.duration_ns =
      end > start
          ? std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              end - start)
                              .count())
          : 0;
  rec.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  ThreadRing* ring = RingForThisThread();
  rec.thread = ring->thread;
  std::lock_guard lock(ring->mutex);
  if (ring->ring.size() < kRingCapacity) {
    ring->ring.push_back(rec);
  } else {
    ring->ring[ring->next] = rec;
  }
  ring->next = (ring->next + 1) % kRingCapacity;
}

std::vector<SpanRecord> Tracer::Recent(std::size_t n) const {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard lock(rings_mutex_);
    rings = rings_;
  }
  std::vector<SpanRecord> all;
  for (const auto& ring : rings) {
    std::lock_guard lock(ring->mutex);
    all.insert(all.end(), ring->ring.begin(), ring->ring.end());
  }
  std::sort(all.begin(), all.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.seq < b.seq;
            });
  if (n != 0 && all.size() > n) {
    all.erase(all.begin(), all.end() - std::ptrdiff_t(n));
  }
  return all;
}

void Tracer::Clear() {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard lock(rings_mutex_);
    rings = rings_;
  }
  for (const auto& ring : rings) {
    std::lock_guard lock(ring->mutex);
    ring->ring.clear();
    ring->next = 0;
  }
}

}  // namespace rpm::obs
