#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace rpm::obs {

double HistogramSnapshot::Percentile(double p) const {
  if (total == 0) return 0.0;
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 * double(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (double(cumulative) >= rank && counts[i] > 0) {
      return i < upper_bounds.size()
                 ? upper_bounds[i]
                 : (upper_bounds.empty() ? 0.0 : upper_bounds.back());
    }
  }
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

std::vector<double> Histogram::GeometricBounds(double first, double growth,
                                               std::size_t n) {
  std::vector<double> bounds;
  bounds.reserve(std::min(n, kMaxBuckets));
  double b = first;
  for (std::size_t i = 0; i < std::min(n, kMaxBuckets); ++i) {
    bounds.push_back(b);
    b *= growth;
  }
  return bounds;
}

std::vector<double> Histogram::LinearBounds(double step, std::size_t n) {
  std::vector<double> bounds;
  bounds.reserve(std::min(n, kMaxBuckets));
  for (std::size_t i = 0; i < std::min(n, kMaxBuckets); ++i) {
    bounds.push_back(step * double(i + 1));
  }
  return bounds;
}

Histogram::Histogram(const std::vector<double>& bounds) {
  num_bounds_ = std::min(bounds.size(), kMaxBuckets);
  for (std::size_t i = 0; i < num_bounds_; ++i) bounds_[i] = bounds[i];
}

void Histogram::Record(double value) {
  const auto begin = bounds_.begin();
  const auto it = std::lower_bound(begin, begin + num_bounds_, value);
  const auto idx = std::size_t(it - begin);  // == num_bounds_: overflow
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  const double milli = std::max(0.0, value) * 1000.0;
  sum_milli_.fetch_add(std::uint64_t(milli), std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.upper_bounds.assign(bounds_.begin(), bounds_.begin() + num_bounds_);
  snap.counts.resize(num_bounds_ + 1);
  for (std::size_t i = 0; i <= num_bounds_; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    snap.total += snap.counts[i];
  }
  snap.sum = double(sum_milli_.load(std::memory_order_relaxed)) / 1000.0;
  return snap;
}

double RegistrySnapshot::Scalar(const std::string& name,
                                const Labels& labels) const {
  for (const ScalarSample& s : scalars) {
    if (s.name == name && s.labels == labels) return s.value;
  }
  return 0.0;
}

std::uint64_t RegistrySnapshot::Count(const std::string& name,
                                      const Labels& labels) const {
  return std::uint64_t(std::llround(Scalar(name, labels)));
}

const HistogramSample* RegistrySnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSample& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricRegistry::Key(const std::string& name,
                                const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1f';
    key += v;
  }
  return key;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help,
                                    const Labels& labels) {
  std::lock_guard lock(mutex_);
  const std::string key = Key(name, labels);
  if (const auto it = index_.find(key); it != index_.end()) {
    return it->second->counter.get();
  }
  auto cell = std::make_unique<Cell>();
  cell->name = name;
  cell->help = help;
  cell->labels = labels;
  cell->counter = std::make_unique<Counter>();
  Counter* out = cell->counter.get();
  index_[key] = cell.get();
  cells_.push_back(std::move(cell));
  return out;
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help,
                                const Labels& labels) {
  std::lock_guard lock(mutex_);
  const std::string key = Key(name, labels);
  if (const auto it = index_.find(key); it != index_.end()) {
    return it->second->gauge.get();
  }
  auto cell = std::make_unique<Cell>();
  cell->name = name;
  cell->help = help;
  cell->labels = labels;
  cell->gauge = std::make_unique<Gauge>();
  Gauge* out = cell->gauge.get();
  index_[key] = cell.get();
  cells_.push_back(std::move(cell));
  return out;
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& help,
                                        const std::vector<double>& bounds,
                                        const Labels& labels) {
  std::lock_guard lock(mutex_);
  const std::string key = Key(name, labels);
  if (const auto it = index_.find(key); it != index_.end()) {
    return it->second->histogram.get();
  }
  auto cell = std::make_unique<Cell>();
  cell->name = name;
  cell->help = help;
  cell->labels = labels;
  cell->histogram = std::make_unique<Histogram>(bounds);
  Histogram* out = cell->histogram.get();
  index_[key] = cell.get();
  cells_.push_back(std::move(cell));
  return out;
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard lock(mutex_);
  for (const auto& cell : cells_) {
    if (cell->histogram != nullptr) {
      HistogramSample h;
      h.name = cell->name;
      h.help = cell->help;
      h.labels = cell->labels;
      h.snapshot = cell->histogram->Snapshot();
      snap.histograms.push_back(std::move(h));
    } else {
      ScalarSample s;
      s.name = cell->name;
      s.help = cell->help;
      s.labels = cell->labels;
      if (cell->counter != nullptr) {
        s.value = double(cell->counter->value());
        s.is_counter = true;
      } else {
        s.value = double(cell->gauge->value());
      }
      snap.scalars.push_back(std::move(s));
    }
  }
  return snap;
}

MetricRegistry& DefaultRegistry() {
  static MetricRegistry* registry = new MetricRegistry();  // never destroyed
  return *registry;
}

}  // namespace rpm::obs
