#include "obs/exposition.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>

namespace rpm::obs {

namespace {

// Shortest round-trippable rendering that still reads as a number
// ("1.35", "1e+06"); Prometheus accepts any float literal.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string FormatValue(const ScalarSample& s) {
  if (s.is_counter) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64,
                  std::uint64_t(std::llround(s.value)));
    return buf;
  }
  return FormatDouble(s.value);
}

// Escapes a HELP text or label value per the exposition format.
std::string Escape(const std::string& text, bool label_value) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (label_value && c == '"') {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += Escape(v, /*label_value=*/true);
    out += '"';
  }
  out += '}';
  return out;
}

// le="..." appended to the cell's own labels for one bucket line.
std::string RenderBucketLabels(const Labels& labels, const std::string& le) {
  Labels with = labels;
  with.emplace_back("le", le);
  return RenderLabels(with);
}

void AppendHeader(std::string& out, const std::string& name,
                  const std::string& help, const char* type,
                  std::map<std::string, bool>& emitted) {
  if (emitted[name]) return;
  emitted[name] = true;
  out += "# HELP " + name + ' ' + Escape(help, /*label_value=*/false) + '\n';
  out += "# TYPE " + name + ' ' + type + '\n';
}

}  // namespace

std::string RenderPrometheus(
    const std::vector<const RegistrySnapshot*>& snaps) {
  std::string out;
  std::map<std::string, bool> emitted;  // HELP/TYPE once per family
  for (const RegistrySnapshot* snap : snaps) {
    for (const ScalarSample& s : snap->scalars) {
      AppendHeader(out, s.name, s.help, s.is_counter ? "counter" : "gauge",
                   emitted);
      out += s.name + RenderLabels(s.labels) + ' ' + FormatValue(s) + '\n';
    }
    for (const HistogramSample& h : snap->histograms) {
      AppendHeader(out, h.name, h.help, "histogram", emitted);
      const HistogramSnapshot& hs = h.snapshot;
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < hs.upper_bounds.size(); ++i) {
        cumulative += hs.counts[i];
        char buf[32];
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", cumulative);
        out += h.name + "_bucket" +
               RenderBucketLabels(h.labels, FormatDouble(hs.upper_bounds[i])) +
               buf;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", hs.total);
      out += h.name + "_bucket" + RenderBucketLabels(h.labels, "+Inf") + buf;
      out += h.name + "_sum" + RenderLabels(h.labels) + ' ' +
             FormatDouble(hs.sum) + '\n';
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", hs.total);
      out += h.name + "_count" + RenderLabels(h.labels) + buf;
    }
  }
  out += "# EOF\n";
  return out;
}

std::string RenderPrometheus(const RegistrySnapshot& snap) {
  return RenderPrometheus(std::vector<const RegistrySnapshot*>{&snap});
}

std::string RenderSpansJson(const std::vector<SpanRecord>& spans) {
  std::string out = "[";
  char buf[192];
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"start_us\":%.3f,\"dur_us\":%.3f,"
                  "\"thread\":%u,\"seq\":%" PRIu64 "}",
                  s.name, double(s.start_ns) / 1000.0,
                  double(s.duration_ns) / 1000.0, s.thread, s.seq);
    out += buf;
  }
  out += ']';
  return out;
}

}  // namespace rpm::obs
