// Single-threaded epoll reactor: one per worker shard.
//
// The loop owns an epoll instance plus an eventfd used both as the
// cross-thread wakeup for Post() and as the Stop() signal. Readiness is
// edge-triggered (EPOLLET): fd handlers must drain until EAGAIN on
// every callback — the connection layer in front_end.cc does exactly
// that.
//
// Threading contract:
//  * Run() blocks on the caller (the shard thread) until Stop().
//  * Post(fn) is safe from any thread; fns run on the loop thread in
//    submission order, after the current epoll batch. Posts enqueued
//    before Stop() still run (FrontEnd relies on this to flush and
//    close connections during graceful shutdown); posts after the loop
//    has exited are destroyed unrun.
//  * Add/Modify/Remove must be called on the loop thread (or before
//    Run() starts) — fd bookkeeping is deliberately unlocked.
//
// Observability: when given metric cells the loop records one wakeup
// count, the events-per-wake distribution, and the time spent handling
// each iteration (epoll_wait blocking time excluded) — the
// rpm_net_loop_* families in docs/OBSERVABILITY.md.

#ifndef RPM_NET_EVENT_LOOP_H_
#define RPM_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace rpm::net {

class EventLoop {
 public:
  /// Optional cells (any may be null); registered by the front end with
  /// a per-shard label.
  struct LoopMetrics {
    obs::Counter* wakeups = nullptr;
    obs::Histogram* events_per_wake = nullptr;
    obs::Histogram* iteration_us = nullptr;
  };

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False if epoll/eventfd creation failed; Run() is then a no-op.
  bool ok() const { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

  void set_metrics(const LoopMetrics& metrics) { metrics_ = metrics; }

  /// Blocks, dispatching events and posted fns, until Stop().
  void Run();

  /// Thread-safe, idempotent; wakes the loop so Run() returns after the
  /// pending posted fns have executed.
  void Stop();

  /// Enqueues `fn` to run on the loop thread. Thread-safe.
  void Post(std::function<void()> fn);
  /// Runs inline when already on the loop thread, else Post().
  void PostOrRun(std::function<void()> fn);
  bool InLoopThread() const {
    return loop_thread_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

  using FdHandler = std::function<void(std::uint32_t events)>;
  /// Registers `fd` for `events` (caller includes EPOLLET for ET).
  bool Add(int fd, std::uint32_t events, FdHandler handler);
  bool Modify(int fd, std::uint32_t events);
  void Remove(int fd);

 private:
  void Wake();
  void DrainPosted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<std::thread::id> loop_thread_{};

  std::mutex post_mu_;
  bool exited_ = false;  // Run() returned; further posts are dropped
  std::vector<std::function<void()>> posted_;

  // shared_ptr so a handler removing itself (or a peer) mid-dispatch
  // stays alive until its callback returns.
  std::unordered_map<int, std::shared_ptr<FdHandler>> handlers_;
  LoopMetrics metrics_;
};

}  // namespace rpm::net

#endif  // RPM_NET_EVENT_LOOP_H_
