#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

namespace rpm::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (ok()) {
    epoll_event ev{};
    ev.events = EPOLLIN;  // level-triggered: never miss a wakeup
    ev.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::Wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));  // counter saturation is fine
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  Wake();
}

void EventLoop::Post(std::function<void()> fn) {
  bool enqueued = false;
  {
    std::lock_guard lock(post_mu_);
    if (!exited_) {
      posted_.push_back(std::move(fn));
      enqueued = true;
    }
  }
  // Not enqueued: the loop has exited, so fn is destroyed unrun here
  // (outside the lock). Queuing it would pin anything the closure owns
  // — e.g. a Conn and through it this very loop — forever.
  if (enqueued) Wake();
}

void EventLoop::PostOrRun(std::function<void()> fn) {
  if (InLoopThread()) {
    fn();
  } else {
    Post(std::move(fn));
  }
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard lock(post_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

bool EventLoop::Add(int fd, std::uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
  return true;
}

bool EventLoop::Modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::Remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::Run() {
  if (!ok()) return;
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0 && errno != EINTR) break;
    const auto t0 = std::chrono::steady_clock::now();
    if (metrics_.wakeups != nullptr) metrics_.wakeups->Increment();

    std::size_t dispatched = 0;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      // Fresh lookup per event: an earlier handler in this batch may
      // have removed this fd (e.g. closed a peer connection).
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      const std::shared_ptr<FdHandler> handler = it->second;
      (*handler)(events[i].events);
      ++dispatched;
    }
    // Posted fns run after the event batch, in submission order.
    DrainPosted();

    if (metrics_.events_per_wake != nullptr) {
      metrics_.events_per_wake->Record(double(dispatched));
    }
    if (metrics_.iteration_us != nullptr) {
      metrics_.iteration_us->Record(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
    if (stop_.load(std::memory_order_acquire)) {
      DrainPosted();  // posts enqueued between the drain above and here
      break;
    }
  }
  // Mark the loop exited and destroy any straggler posts unrun; from
  // here on Post() drops fns immediately (see the header contract).
  std::vector<std::function<void()>> leftover;
  {
    std::lock_guard lock(post_mu_);
    exited_ = true;
    leftover.swap(posted_);
  }
  leftover.clear();
  loop_thread_.store(std::thread::id(), std::memory_order_release);
}

}  // namespace rpm::net
