// Wire framing for the network front end: the length-prefixed binary
// frame codec and the bounded text-line reassembler, shared by server
// and clients.
//
// A connection speaks exactly one codec, negotiated by its first bytes:
// binary clients open with the 4-byte magic "RPMB" (no text verb starts
// with those bytes), everything else is the historical newline protocol.
//
// Binary frame layout (all integers little-endian):
//
//   offset  size  field
//   0       4     payload_len   bytes of payload following the header
//   4       1     verb          BinaryVerb (request & echoed in response)
//   5       1     status        0 in requests; WireStatus in responses
//   6       2     reserved      must be 0 (corruption tripwire)
//   8       n     payload       verb-specific, see docs/SERVING.md
//
// Strings inside payloads are u16 length + raw bytes; bulk bodies
// (METRICS/STATS/TRACE text) are blobs, u32 length + raw bytes; sample
// vectors are u32 count + count IEEE-754 doubles. A frame whose
// payload_len exceeds
// the assembler bound is skipped as it streams in and surfaced once as
// kOversized (the connection answers with an ERR frame and keeps going);
// a nonzero reserved field is unrecoverable (kCorrupt — the stream
// cannot be resynchronized, so the connection closes after one ERR
// frame). Truncation mid-frame is simply kNone: no frame is emitted and
// no state is corrupted, the bytes wait for the rest.

#ifndef RPM_NET_FRAME_H_
#define RPM_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace rpm::net {

/// Binary protocol verbs, one per text-protocol command. Values are the
/// wire bytes; docs/SERVING.md carries the authoritative table (pinned
/// by scripts/docs_lint.sh against kVerbTable in frame.cc).
enum class BinaryVerb : std::uint8_t {
  kLoad = 0x01,
  kUnload = 0x02,
  kModels = 0x03,
  kClassify = 0x04,
  kStats = 0x05,
  kMetrics = 0x06,
  kTrace = 0x07,
  kStreamOpen = 0x08,
  kStreamFeed = 0x09,
  kStreamClose = 0x0A,
  kStreams = 0x0B,
  kQuit = 0x0C,
};

/// Response status byte; 0 is success, everything else mirrors the text
/// protocol's ERR codes.
enum class WireStatus : std::uint8_t {
  kOk = 0,
  kTimeout = 1,
  kOverloaded = 2,
  kNotFound = 3,
  kShutdown = 4,
  kBadRequest = 5,
};

/// The 4-byte connection preamble selecting the binary codec.
inline constexpr char kBinaryMagic[4] = {'R', 'P', 'M', 'B'};
inline constexpr std::size_t kFrameHeaderSize = 8;

/// Protocol name of a verb ("LOAD", ...), empty for unknown bytes.
std::string_view VerbName(std::uint8_t verb);
bool IsKnownVerb(std::uint8_t verb);

/// One decoded frame (request or response).
struct Frame {
  std::uint8_t verb = 0;
  std::uint8_t status = 0;
  std::string payload;
};

/// Serializes one frame (header + payload).
std::string EncodeFrame(std::uint8_t verb, std::uint8_t status,
                        std::string_view payload);
inline std::string EncodeFrame(BinaryVerb verb, WireStatus status,
                               std::string_view payload) {
  return EncodeFrame(static_cast<std::uint8_t>(verb),
                     static_cast<std::uint8_t>(status), payload);
}

/// Appends little-endian primitives to a payload under construction.
class PayloadWriter {
 public:
  explicit PayloadWriter(std::string* out) : out_(out) {}

  void U8(std::uint8_t v);
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I32(std::int32_t v);
  void F64(double v);
  /// u16 length + bytes; strings longer than 65535 are truncated.
  /// For short fields (names, ids, error messages) only — bulk bodies
  /// go through Blob.
  void Str(std::string_view s);
  /// u32 length + bytes, for bulk bodies (METRICS exposition, STATS/
  /// TRACE JSON) that can exceed the u16 `str` bound.
  void Blob(std::string_view s);
  /// u32 count + count doubles.
  void F64Array(const double* values, std::size_t n);

 private:
  std::string* out_;
};

/// Reads little-endian primitives out of a payload; every getter returns
/// false on underflow without advancing, so a truncated or malformed
/// payload decodes to an explicit error, never out-of-bounds reads.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  bool U8(std::uint8_t* v);
  bool U16(std::uint16_t* v);
  bool U32(std::uint32_t* v);
  bool U64(std::uint64_t* v);
  bool I32(std::int32_t* v);
  bool F64(double* v);
  bool Str(std::string* s);
  bool Blob(std::string* s);
  /// Rejects counts larger than the bytes actually present.
  bool F64Array(std::vector<double>* values);
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool Take(std::size_t n, const char** p);
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Reassembles binary frames from arbitrary read() chunks with a hard
/// payload bound. See the file comment for the oversized/corrupt/
/// truncated contract.
class FrameAssembler {
 public:
  static constexpr std::size_t kDefaultMaxPayload = std::size_t{1} << 20;

  explicit FrameAssembler(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void Append(std::string_view data);

  enum class FrameStatus {
    kNone,       ///< no complete frame buffered yet
    kFrame,      ///< *frame holds the next frame
    kOversized,  ///< a frame exceeded max_payload and was skipped
    kCorrupt,    ///< unrecoverable framing error; close the connection
  };
  FrameStatus Next(Frame* frame);

  std::size_t max_payload() const { return max_payload_; }

 private:
  struct Item {
    FrameStatus status;
    Frame frame;
  };
  std::size_t max_payload_;
  std::deque<Item> ready_;
  std::string buffer_;        // header + partial payload of the next frame
  std::size_t skip_left_ = 0;  // oversized-frame payload bytes to discard
  bool corrupt_ = false;       // sticky: stop parsing after corruption
};

/// Reassembles protocol lines from arbitrary read() chunks, with a hard
/// bound on line length so a client that never sends '\n' (or sends one
/// gigantic line) cannot grow server memory without limit. Oversized
/// lines are discarded as they arrive and surface as kOversized exactly
/// once — at the point where the line would have completed — so the
/// connection can answer with an explicit error and keep going.
/// (Formerly serve::LineAssembler; rpm::serve keeps an alias.)
class LineAssembler {
 public:
  static constexpr std::size_t kDefaultMaxLine = std::size_t{1} << 20;

  explicit LineAssembler(std::size_t max_line = kDefaultMaxLine)
      : max_line_(max_line) {}

  /// Buffers one received chunk (any framing: partial lines, many lines,
  /// split anywhere — including mid-CRLF).
  void Append(std::string_view data);

  enum class LineStatus {
    kNone,       ///< no complete line buffered yet
    kLine,       ///< *line holds the next line (no '\n', '\r' stripped)
    kOversized,  ///< a line exceeded max_line and was dropped
  };
  /// Pops the next complete line in arrival order.
  LineStatus NextLine(std::string* line);

  std::size_t max_line() const { return max_line_; }

 private:
  struct Item {
    bool oversized;
    std::string line;
  };
  std::size_t max_line_;
  std::deque<Item> ready_;
  std::string partial_;
  bool discarding_ = false;
};

}  // namespace rpm::net

#endif  // RPM_NET_FRAME_H_
