#include "net/front_end.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <map>
#include <utility>

namespace rpm::net {

// ---- shard state -----------------------------------------------------

struct FrontEnd::Shard {
  std::size_t index = 0;
  EventLoop loop;
  std::thread thread;
  // Touched only on this shard's loop thread.
  std::unordered_map<int, std::shared_ptr<Conn>> conns;

  obs::Gauge* connections = nullptr;
  obs::Counter* accepted = nullptr;
  obs::Counter* text_requests = nullptr;
  obs::Counter* binary_requests = nullptr;
  obs::Counter* protocol_errors = nullptr;
};

// ---- connection ------------------------------------------------------

struct FrontEnd::Conn : std::enable_shared_from_this<FrontEnd::Conn> {
  Conn(FrontEnd* fe, std::shared_ptr<Shard> shard, int fd)
      : fe(fe),
        shard(std::move(shard)),
        fd(fd),
        lines(fe->options_.max_line),
        frames(fe->options_.max_frame_payload) {}
  ~Conn() {
    if (open) ::close(fd);
  }

  FrontEnd* fe;
  // shared_ptr: a Respond closure held by the server's batching queues
  // keeps the shard (and its EventLoop) alive through `self` even if
  // the FrontEnd is destroyed first. The Conn<->Shard cycle is broken
  // by CloseNow (conns.erase + loop.Remove), which runs for every
  // connection during Stop().
  std::shared_ptr<Shard> shard;
  int fd;
  enum class Codec { kSniff, kText, kBinary };
  Codec codec = Codec::kSniff;
  std::string sniff;
  LineAssembler lines;
  FrameAssembler frames;
  std::string out;
  bool want_write = false;
  bool paused_read = false;
  bool read_eof = false;  // peer half-closed; no more requests can arrive
  bool pumping = false;   // Pump() mid-drain: requests still unassigned
  bool closing = false;   // close once `out` has flushed
  bool open = true;
  std::uint64_t next_req = 0;   // next request sequence to assign
  std::uint64_t next_resp = 0;  // next response sequence to send
  std::map<std::uint64_t, Response> held;  // out-of-order responses

  void HandleEvents(std::uint32_t events) {
    if (events & (EPOLLERR | EPOLLHUP)) {
      CloseNow();
      return;
    }
    if (events & EPOLLOUT) Flush();
    if (!open) return;
    if (events & (EPOLLIN | EPOLLRDHUP)) DoRead();
  }

  void DoRead() {
    if (!open || read_eof) return;
    char buf[16384];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        Ingest(std::string_view(buf, std::size_t(n)));
        continue;
      }
      if (n == 0) {
        // EOF is a half-close, not an abort: clients pipeline requests
        // and shut down their write side (printf ... | nc -N). Requests
        // already received still get answered below; the connection
        // closes once the last response has flushed.
        read_eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseNow();
      return;
    }
    Pump();
    MaybeCloseAfterEof();
  }

  // Codec negotiation: binary clients lead with "RPMB"; anything else
  // (including a newline before 4 bytes arrive) is the text protocol.
  void Ingest(std::string_view data) {
    switch (codec) {
      case Codec::kSniff: {
        sniff.append(data);
        const bool line_first =
            sniff.find('\n') != std::string::npos && sniff.size() < 4;
        if (sniff[0] != kBinaryMagic[0] || line_first) {
          codec = Codec::kText;
          lines.Append(sniff);
          sniff.clear();
          sniff.shrink_to_fit();
          return;
        }
        if (sniff.size() < sizeof(kBinaryMagic)) return;  // wait for magic
        if (std::memcmp(sniff.data(), kBinaryMagic, sizeof(kBinaryMagic)) ==
            0) {
          codec = Codec::kBinary;
          frames.Append(
              std::string_view(sniff).substr(sizeof(kBinaryMagic)));
        } else {
          codec = Codec::kText;
          lines.Append(sniff);
        }
        sniff.clear();
        sniff.shrink_to_fit();
        return;
      }
      case Codec::kText:
        lines.Append(data);
        return;
      case Codec::kBinary:
        frames.Append(data);
        return;
    }
  }

  void Pump() {
    pumping = true;
    if (codec == Codec::kText) {
      std::string line;
      while (open && !closing) {
        const auto status = lines.NextLine(&line);
        if (status == LineAssembler::LineStatus::kNone) break;
        const std::uint64_t seq = next_req++;
        if (status == LineAssembler::LineStatus::kOversized) {
          shard->protocol_errors->Increment();
          Deliver(seq,
                  Response{"ERR BAD_REQUEST line exceeds " +
                               std::to_string(lines.max_line()) + " bytes",
                           false});
          continue;
        }
        shard->text_requests->Increment();
        fe->handler_->OnTextLine(shard->index, line, MakeRespond(seq));
      }
    } else if (codec == Codec::kBinary) {
      Frame frame;
      while (open && !closing) {
        const auto status = frames.Next(&frame);
        if (status == FrameAssembler::FrameStatus::kNone) break;
        const std::uint64_t seq = next_req++;
        if (status == FrameAssembler::FrameStatus::kOversized) {
          shard->protocol_errors->Increment();
          Deliver(seq, Response{EncodeFrame(
                                    0, std::uint8_t(WireStatus::kBadRequest),
                                    "frame exceeds " +
                                        std::to_string(frames.max_payload()) +
                                        " payload bytes"),
                                false});
          continue;
        }
        if (status == FrameAssembler::FrameStatus::kCorrupt) {
          shard->protocol_errors->Increment();
          Deliver(seq, Response{EncodeFrame(
                                    0, std::uint8_t(WireStatus::kBadRequest),
                                    "corrupt frame: cannot resynchronize"),
                                true});
          break;
        }
        if (frame.status != 0) {
          shard->protocol_errors->Increment();
          Deliver(seq,
                  Response{EncodeFrame(frame.verb,
                                       std::uint8_t(WireStatus::kBadRequest),
                                       "nonzero status in request"),
                           true});
          break;
        }
        shard->binary_requests->Increment();
        fe->handler_->OnFrame(shard->index, frame, MakeRespond(seq));
      }
    }
    // Sniff state: nothing to pump until the codec is decided.
    pumping = false;
  }

  RequestHandler::Respond MakeRespond(std::uint64_t seq) {
    // `self` keeps the Conn alive and, through Conn::shard, the shard's
    // EventLoop: a response arriving after FrontEnd destruction posts
    // onto a stopped-but-live loop (where it is destroyed unrun) rather
    // than dereferencing freed memory.
    auto self = shared_from_this();
    return [self, seq](Response r) {
      self->shard->loop.PostOrRun([self, seq, r = std::move(r)]() mutable {
        self->Deliver(seq, std::move(r));
      });
    };
  }

  // Responses can finish out of order (async CLASSIFY vs. sync verbs);
  // hold them until every earlier sequence has been written so the wire
  // order always matches the request order.
  void Deliver(std::uint64_t seq, Response r) {
    if (!open) return;
    held.emplace(seq, std::move(r));
    while (!held.empty() && held.begin()->first == next_resp) {
      Response resp = std::move(held.begin()->second);
      held.erase(held.begin());
      ++next_resp;
      out += resp.bytes;
      if (codec != Codec::kBinary) out += '\n';
      if (resp.close) closing = true;
    }
    Flush();
    if (!open) return;
    MaybeCloseAfterEof();
    if (!open) return;
    if (!paused_read && out.size() > fe->options_.max_out_buffer) {
      paused_read = true;
      UpdateInterest();
    }
  }

  // After read-EOF nothing further can arrive: once every parsed
  // request has been answered (next_resp caught up with next_req),
  // flush and close. Requests still in flight (batched CLASSIFY) keep
  // the connection open until their Deliver lands. Never fires from an
  // inline Deliver inside Pump(): mid-drain, next_resp can equal
  // next_req while later requests still sit unassigned in the
  // assembler — DoRead re-checks once Pump() has drained everything.
  void MaybeCloseAfterEof() {
    if (!open || !read_eof || closing || pumping) return;
    if (next_resp != next_req) return;
    closing = true;
    Flush();
  }

  void Flush() {
    while (!out.empty()) {
      // MSG_NOSIGNAL: a peer that disconnects with responses still
      // pending must surface as EPIPE here, not kill the process with
      // SIGPIPE (found by the fuzz harness's abrupt-disconnect fault).
      const ssize_t n = ::send(fd, out.data(), out.size(), MSG_NOSIGNAL);
      if (n > 0) {
        out.erase(0, std::size_t(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      CloseNow();
      return;
    }
    if (out.empty()) {
      if (closing) {
        CloseNow();
        return;
      }
      if (want_write) {
        want_write = false;
        UpdateInterest();
      }
    } else if (!want_write) {
      want_write = true;
      UpdateInterest();
    }
    // Backpressure hysteresis: reads resume once the buffer has drained
    // below half of max_out_buffer, not only once it is empty.
    if (paused_read && !read_eof &&
        out.size() < fe->options_.max_out_buffer / 2) {
      paused_read = false;
      UpdateInterest();
      // Edge-triggered: bytes may have queued in the kernel while
      // reads were paused; poke the read path explicitly.
      auto self = shared_from_this();
      shard->loop.Post([self] { self->DoRead(); });
    }
  }

  void UpdateInterest() {
    std::uint32_t events = EPOLLET | EPOLLRDHUP;
    if (!paused_read) events |= EPOLLIN;
    if (want_write) events |= EPOLLOUT;
    shard->loop.Modify(fd, events);
  }

  void CloseNow() {
    if (!open) return;
    auto self = shared_from_this();  // outlive conns.erase below
    open = false;
    shard->loop.Remove(fd);
    ::close(fd);
    shard->connections->Add(-1);
    fe->connections_.fetch_sub(1, std::memory_order_relaxed);
    shard->conns.erase(fd);
  }
};

// ---- front end -------------------------------------------------------

namespace {

int ListenTcp(int port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, backlog) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int ListenUnix(const std::string& path, int backlog) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  ::unlink(path.c_str());
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, backlog) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

bool FrontEnd::SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

FrontEnd::FrontEnd(RequestHandler* handler, FrontEndOptions options)
    : handler_(handler),
      options_(std::move(options)),
      ring_(options_.num_shards == 0 ? 1 : options_.num_shards) {}

FrontEnd::~FrontEnd() { Stop(); }

bool FrontEnd::Start() {
  if (started_) return true;
  const std::size_t num_shards =
      options_.num_shards == 0 ? 1 : options_.num_shards;

  static obs::MetricRegistry fallback_registry;
  obs::MetricRegistry* reg =
      options_.metrics != nullptr ? options_.metrics : &fallback_registry;

  for (std::size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_shared<Shard>();
    shard->index = i;
    if (!shard->loop.ok()) {
      std::fprintf(stderr, "[net] cannot create event loop (shard %zu)\n", i);
      shards_.clear();
      return false;
    }
    const obs::Labels labels{{"shard", std::to_string(i)}};
    shard->connections = reg->GetGauge(
        "rpm_net_connections", "Open connections pinned to this shard",
        labels);
    shard->accepted = reg->GetCounter(
        "rpm_net_accepted_total", "Connections accepted onto this shard",
        labels);
    shard->text_requests =
        reg->GetCounter("rpm_net_requests_total", "Requests parsed",
                        {{"shard", std::to_string(i)}, {"codec", "text"}});
    shard->binary_requests =
        reg->GetCounter("rpm_net_requests_total", "Requests parsed",
                        {{"shard", std::to_string(i)}, {"codec", "binary"}});
    shard->protocol_errors = reg->GetCounter(
        "rpm_net_protocol_errors_total",
        "Oversized/corrupt/malformed requests answered with an error",
        labels);
    EventLoop::LoopMetrics lm;
    lm.wakeups = reg->GetCounter("rpm_net_loop_wakeups_total",
                                 "Event-loop wakeups", labels);
    lm.events_per_wake = reg->GetHistogram(
        "rpm_net_loop_events_per_wake", "Fd events dispatched per wakeup",
        obs::Histogram::LinearBounds(1.0, 64), labels);
    lm.iteration_us = reg->GetHistogram(
        "rpm_net_loop_iteration_microseconds",
        "Time handling one event-loop iteration (wait excluded)",
        obs::Histogram::GeometricBounds(1.0, 1.6, 40), labels);
    shard->loop.set_metrics(lm);
    shards_.push_back(std::move(shard));
  }

  listen_fd_ = options_.unix_path.empty()
                   ? ListenTcp(options_.tcp_port, options_.listen_backlog)
                   : ListenUnix(options_.unix_path, options_.listen_backlog);
  if (listen_fd_ < 0 || !SetNonBlocking(listen_fd_)) {
    std::fprintf(stderr, "[net] cannot listen on %s\n",
                 options_.unix_path.empty()
                     ? std::to_string(options_.tcp_port).c_str()
                     : options_.unix_path.c_str());
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    shards_.clear();
    return false;
  }
  if (options_.unix_path.empty()) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &len) == 0) {
      port_ = ntohs(addr.sin_port);
    }
  }

  // Registered before the shard threads start, so no cross-thread Add.
  shards_[0]->loop.Add(listen_fd_, EPOLLIN | EPOLLET,
                       [this](std::uint32_t) { AcceptReady(); });

  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->thread = std::thread([s] { s->loop.Run(); });
  }
  started_ = true;
  return true;
}

void FrontEnd::AcceptReady() {
  for (;;) {
    sockaddr_storage ss{};
    socklen_t slen = sizeof(ss);
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&ss), &slen);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained
    }
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    std::uint64_t key;
    if (ss.ss_family == AF_INET) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      // Peer ip:port is a stable connection identity for the ring.
      const auto* in = reinterpret_cast<const sockaddr_in*>(&ss);
      char peer[32];
      std::snprintf(peer, sizeof(peer), "%08x:%04x",
                    ntohl(in->sin_addr.s_addr), ntohs(in->sin_port));
      key = Fnv1a(peer);
    } else {
      // Unix sockets carry no peer address: spread by arrival order.
      key = next_conn_key_.fetch_add(1, std::memory_order_relaxed);
    }
    AdoptConnection(fd, key);
  }
}

void FrontEnd::AdoptConnection(int fd, std::uint64_t key) {
  const std::shared_ptr<Shard>& shard_ptr = shards_[ring_.PickHash(key)];
  Shard* shard = shard_ptr.get();
  shard->loop.PostOrRun([this, shard_ptr, shard, fd] {
    auto conn = std::make_shared<Conn>(this, shard_ptr, fd);
    const bool added =
        shard->loop.Add(fd, EPOLLIN | EPOLLET | EPOLLRDHUP,
                        [conn](std::uint32_t events) {
                          conn->HandleEvents(events);
                        });
    if (!added) {
      ::close(fd);
      conn->open = false;
      return;
    }
    shard->conns[fd] = conn;
    shard->accepted->Increment();
    shard->connections->Add(1);
    connections_.fetch_add(1, std::memory_order_relaxed);
    // The client may have sent bytes before registration (ET would not
    // signal them); drain once explicitly.
    conn->DoRead();
  });
}

void FrontEnd::Stop() {
  if (!started_ || stopped_.exchange(true)) return;
  for (auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    shard->loop.Post([this, shard] {
      if (shard->index == 0 && listen_fd_ >= 0) {
        shard->loop.Remove(listen_fd_);
        ::close(listen_fd_);
        listen_fd_ = -1;
        if (!options_.unix_path.empty()) {
          ::unlink(options_.unix_path.c_str());
        }
      }
      // Flush what can be flushed without blocking, then close; the
      // snapshot avoids iterating `conns` while CloseNow erases.
      std::vector<std::shared_ptr<Conn>> snapshot;
      snapshot.reserve(shard->conns.size());
      for (auto& [fd, conn] : shard->conns) snapshot.push_back(conn);
      for (auto& conn : snapshot) {
        if (conn->open) conn->Flush();
        if (conn->open) conn->CloseNow();
      }
    });
    shard->loop.Stop();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

}  // namespace rpm::net
