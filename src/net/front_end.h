// Sharded event-driven network front end.
//
// N worker shards, each one EventLoop on its own thread. A nonblocking
// listener (loopback TCP or Unix socket) lives on shard 0's loop;
// accepted connections are pinned to a shard by consistent hash of
// their peer identity (hash_ring.h) and handed to that shard's loop,
// where ALL of the connection's I/O and request dispatch happen — a
// connection never migrates, so everything reachable from it (notably
// the stream sessions it opens) stays shard-local.
//
// Each connection speaks either the newline text protocol or the
// length-prefixed binary framing (net/frame.h), chosen once by the
// first bytes it sends ("RPMB" magic selects binary). Requests are
// passed to a RequestHandler; responses may be produced synchronously
// or asynchronously (the micro-batched CLASSIFY path answers from the
// dispatcher thread) and are re-sequenced per connection so the wire
// order always matches the request order.
//
// Write path: responses append to a per-connection buffer flushed
// opportunistically; EPOLLOUT interest is enabled only while the buffer
// is non-empty. Backpressure: past max_out_buffer the connection stops
// reading (EPOLLIN dropped) until the buffer drains below half — a slow
// reader throttles itself, never the shard.
//
// The front end is protocol-policy-free: serve::NetHandler supplies the
// actual verb semantics, keeping net below serve in the layering.

#ifndef RPM_NET_FRONT_END_H_
#define RPM_NET_FRONT_END_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.h"
#include "net/frame.h"
#include "net/hash_ring.h"
#include "obs/metrics.h"

namespace rpm::net {

/// One response's wire bytes. For text connections `bytes` is the bare
/// response line (the connection appends '\n'); for binary connections
/// it is a fully encoded frame. `close` closes the connection after the
/// response has been flushed (QUIT / unrecoverable protocol errors).
struct Response {
  std::string bytes;
  bool close = false;
};

/// Protocol semantics, supplied by the serving layer. Both hooks run on
/// the connection's shard loop thread; `respond` must be called exactly
/// once per request and is safe to call from any thread (late responses
/// are posted back to the loop and re-sequenced).
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;
  using Respond = std::function<void(Response)>;
  virtual void OnTextLine(std::size_t shard, const std::string& line,
                          Respond respond) = 0;
  virtual void OnFrame(std::size_t shard, const Frame& frame,
                       Respond respond) = 0;
};

struct FrontEndOptions {
  /// >= 0 listens on loopback TCP (0 picks an ephemeral port, see
  /// FrontEnd::port()); takes effect only when unix_path is empty.
  int tcp_port = 7070;
  std::string unix_path;
  std::size_t num_shards = 1;
  /// Pending response bytes beyond which a connection stops reading.
  std::size_t max_out_buffer = std::size_t{4} << 20;
  std::size_t max_line = LineAssembler::kDefaultMaxLine;
  std::size_t max_frame_payload = FrameAssembler::kDefaultMaxPayload;
  int listen_backlog = 128;
  /// When set, per-shard net metrics are registered here (connection
  /// gauges, request/error counters, loop histograms).
  obs::MetricRegistry* metrics = nullptr;
};

class FrontEnd {
 public:
  FrontEnd(RequestHandler* handler, FrontEndOptions options);
  ~FrontEnd();

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  /// Binds the listener and starts the shard threads. False on bind or
  /// loop-creation failure (errno-style detail on stderr).
  bool Start();

  /// Graceful stop, idempotent: closes the listener, flushes and closes
  /// every connection on its own shard loop, joins the shard threads.
  /// The handler (and its server) outlive this call; drain the server
  /// afterwards. Responses the server delivers after Stop() — or even
  /// after the FrontEnd is destroyed — are discarded safely: each
  /// Respond closure co-owns its shard's event loop.
  void Stop();

  /// Actual listening port (resolves tcp_port == 0); -1 for Unix.
  int port() const { return port_; }
  std::size_t num_shards() const { return shards_.size(); }
  /// Currently open connections across all shards.
  std::size_t connections() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard;
  struct Conn;

  void AcceptReady();
  void AdoptConnection(int fd, std::uint64_t key);
  static bool SetNonBlocking(int fd);

  RequestHandler* const handler_;
  const FrontEndOptions options_;
  ConsistentHashRing ring_;
  // shared_ptr: every Conn co-owns its shard, so Respond closures still
  // held by the server after Stop() keep the shard's EventLoop alive
  // (late responses are then destroyed unrun, never a use-after-free).
  std::vector<std::shared_ptr<Shard>> shards_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<std::uint64_t> next_conn_key_{1};
  std::atomic<std::size_t> connections_{0};
  bool started_ = false;
  std::atomic<bool> stopped_{false};
};

}  // namespace rpm::net

#endif  // RPM_NET_FRONT_END_H_
