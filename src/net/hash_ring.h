// Consistent-hash ring for pinning connections to worker shards.
//
// Each shard contributes `kVirtualNodes` points on a 64-bit ring
// (FNV-1a of "shard/replica"); a key maps to the first point clockwise
// from its own hash. The consistency property is what matters for
// session pinning across resizes: going from N to N±1 shards remaps
// only ~1/N of the keyspace, so a deployment that scales its shard
// count relocates few pinned connections (plain modulo would reshuffle
// almost everything).
//
// Header-only and allocation-free after construction; Pick is a binary
// search over the sorted point table.

#ifndef RPM_NET_HASH_RING_H_
#define RPM_NET_HASH_RING_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rpm::net {

/// FNV-1a, the same cheap stable hash everywhere a ring point or a
/// connection key is hashed (stability across runs is part of the
/// pinning contract).
inline std::uint64_t Fnv1a(std::string_view data) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// 64-bit finalizer (splitmix64). FNV-1a of short strings (and raw
/// sequential connection counters) leaves the high bits barely mixed,
/// but ring placement partitions the full 64-bit space by those high
/// bits — without a finalizer the vnode points cluster and most keys
/// land on a couple of shards. Applied to both point and key hashes.
inline std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

class ConsistentHashRing {
 public:
  static constexpr std::size_t kVirtualNodes = 64;

  explicit ConsistentHashRing(std::size_t num_shards) {
    if (num_shards == 0) num_shards = 1;
    points_.reserve(num_shards * kVirtualNodes);
    for (std::size_t s = 0; s < num_shards; ++s) {
      for (std::size_t r = 0; r < kVirtualNodes; ++r) {
        const std::string label =
            std::to_string(s) + '/' + std::to_string(r);
        points_.push_back({Mix64(Fnv1a(label)), s});
      }
    }
    std::sort(points_.begin(), points_.end());
  }

  /// Shard owning `key` (first ring point at or after the key's hash,
  /// wrapping at the top).
  std::size_t Pick(std::string_view key) const { return PickHash(Fnv1a(key)); }
  std::size_t PickHash(std::uint64_t hash) const {
    auto it = std::lower_bound(points_.begin(), points_.end(),
                               Point{Mix64(hash), 0});
    if (it == points_.end()) it = points_.begin();
    return it->shard;
  }

  std::size_t num_points() const { return points_.size(); }

 private:
  struct Point {
    std::uint64_t hash;
    std::size_t shard;
    bool operator<(const Point& o) const { return hash < o.hash; }
  };
  std::vector<Point> points_;
};

}  // namespace rpm::net

#endif  // RPM_NET_HASH_RING_H_
