#include "net/frame.h"

#include <bit>
#include <cstring>

namespace rpm::net {

namespace {

// Verb byte -> protocol spelling. scripts/docs_lint.sh extracts this
// table and requires every name to appear in docs/SERVING.md.
struct VerbInfo {
  BinaryVerb verb;
  std::string_view name;
};
constexpr VerbInfo kVerbTable[] = {
    {BinaryVerb::kLoad, "LOAD"},
    {BinaryVerb::kUnload, "UNLOAD"},
    {BinaryVerb::kModels, "MODELS"},
    {BinaryVerb::kClassify, "CLASSIFY"},
    {BinaryVerb::kStats, "STATS"},
    {BinaryVerb::kMetrics, "METRICS"},
    {BinaryVerb::kTrace, "TRACE"},
    {BinaryVerb::kStreamOpen, "STREAM_OPEN"},
    {BinaryVerb::kStreamFeed, "STREAM_FEED"},
    {BinaryVerb::kStreamClose, "STREAM_CLOSE"},
    {BinaryVerb::kStreams, "STREAMS"},
    {BinaryVerb::kQuit, "QUIT"},
};

void AppendLe(std::string* out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint64_t ReadLe(const char* p, std::size_t bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    v |= std::uint64_t(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

std::string_view VerbName(std::uint8_t verb) {
  for (const VerbInfo& info : kVerbTable) {
    if (static_cast<std::uint8_t>(info.verb) == verb) return info.name;
  }
  return {};
}

bool IsKnownVerb(std::uint8_t verb) { return !VerbName(verb).empty(); }

std::string EncodeFrame(std::uint8_t verb, std::uint8_t status,
                        std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  AppendLe(&out, payload.size(), 4);
  out.push_back(static_cast<char>(verb));
  out.push_back(static_cast<char>(status));
  AppendLe(&out, 0, 2);  // reserved
  out.append(payload);
  return out;
}

// ---- PayloadWriter ---------------------------------------------------

void PayloadWriter::U8(std::uint8_t v) { AppendLe(out_, v, 1); }
void PayloadWriter::U16(std::uint16_t v) { AppendLe(out_, v, 2); }
void PayloadWriter::U32(std::uint32_t v) { AppendLe(out_, v, 4); }
void PayloadWriter::U64(std::uint64_t v) { AppendLe(out_, v, 8); }
void PayloadWriter::I32(std::int32_t v) {
  AppendLe(out_, static_cast<std::uint32_t>(v), 4);
}
void PayloadWriter::F64(double v) {
  AppendLe(out_, std::bit_cast<std::uint64_t>(v), 8);
}

void PayloadWriter::Str(std::string_view s) {
  const std::size_t n = s.size() > 0xFFFF ? 0xFFFF : s.size();
  U16(static_cast<std::uint16_t>(n));
  out_->append(s.data(), n);
}

void PayloadWriter::Blob(std::string_view s) {
  U32(static_cast<std::uint32_t>(s.size()));
  out_->append(s.data(), s.size());
}

void PayloadWriter::F64Array(const double* values, std::size_t n) {
  U32(static_cast<std::uint32_t>(n));
  for (std::size_t i = 0; i < n; ++i) F64(values[i]);
}

// ---- PayloadReader ---------------------------------------------------

bool PayloadReader::Take(std::size_t n, const char** p) {
  if (data_.size() - pos_ < n) return false;
  *p = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool PayloadReader::U8(std::uint8_t* v) {
  const char* p;
  if (!Take(1, &p)) return false;
  *v = static_cast<std::uint8_t>(ReadLe(p, 1));
  return true;
}
bool PayloadReader::U16(std::uint16_t* v) {
  const char* p;
  if (!Take(2, &p)) return false;
  *v = static_cast<std::uint16_t>(ReadLe(p, 2));
  return true;
}
bool PayloadReader::U32(std::uint32_t* v) {
  const char* p;
  if (!Take(4, &p)) return false;
  *v = static_cast<std::uint32_t>(ReadLe(p, 4));
  return true;
}
bool PayloadReader::U64(std::uint64_t* v) {
  const char* p;
  if (!Take(8, &p)) return false;
  *v = ReadLe(p, 8);
  return true;
}
bool PayloadReader::I32(std::int32_t* v) {
  std::uint32_t u;
  if (!U32(&u)) return false;
  *v = static_cast<std::int32_t>(u);
  return true;
}
bool PayloadReader::F64(double* v) {
  std::uint64_t u;
  if (!U64(&u)) return false;
  *v = std::bit_cast<double>(u);
  return true;
}

bool PayloadReader::Str(std::string* s) {
  std::uint16_t n;
  if (!U16(&n)) {
    return false;
  }
  const char* p;
  if (!Take(n, &p)) {
    pos_ -= 2;  // undo the length read so the reader stays consistent
    return false;
  }
  s->assign(p, n);
  return true;
}

bool PayloadReader::Blob(std::string* s) {
  std::uint32_t n;
  if (!U32(&n)) return false;
  const char* p;
  if (!Take(n, &p)) {
    pos_ -= 4;  // undo the length read so the reader stays consistent
    return false;
  }
  s->assign(p, n);
  return true;
}

bool PayloadReader::F64Array(std::vector<double>* values) {
  std::uint32_t n;
  if (!U32(&n)) return false;
  if (std::size_t(n) * 8 > data_.size() - pos_) {
    pos_ -= 4;
    return false;
  }
  values->resize(n);
  for (std::uint32_t i = 0; i < n; ++i) F64(&(*values)[i]);
  return true;
}

// ---- FrameAssembler --------------------------------------------------

void FrameAssembler::Append(std::string_view data) {
  // After corruption the byte stream has no trustworthy frame boundary
  // left; everything further is discarded (the connection is closing).
  if (corrupt_) return;
  while (!data.empty()) {
    if (skip_left_ > 0) {
      const std::size_t n = std::min(skip_left_, data.size());
      skip_left_ -= n;
      data.remove_prefix(n);
      if (skip_left_ == 0) ready_.push_back({FrameStatus::kOversized, {}});
      continue;
    }
    if (buffer_.size() < kFrameHeaderSize) {
      const std::size_t need = kFrameHeaderSize - buffer_.size();
      const std::size_t n = std::min(need, data.size());
      buffer_.append(data.data(), n);
      data.remove_prefix(n);
      if (buffer_.size() < kFrameHeaderSize) return;  // header incomplete
      const std::uint64_t reserved = ReadLe(buffer_.data() + 6, 2);
      if (reserved != 0) {
        ready_.push_back({FrameStatus::kCorrupt, {}});
        corrupt_ = true;
        buffer_.clear();
        return;
      }
      const std::uint64_t len = ReadLe(buffer_.data(), 4);
      if (len > max_payload_) {
        // Recoverable: the length is trusted (reserved checked), so the
        // payload can be skipped and the next frame parsed normally.
        skip_left_ = len;
        buffer_.clear();
        if (skip_left_ == 0) ready_.push_back({FrameStatus::kOversized, {}});
        continue;
      }
    }
    const std::uint64_t len = ReadLe(buffer_.data(), 4);
    const std::size_t want = kFrameHeaderSize + std::size_t(len);
    const std::size_t n = std::min(want - buffer_.size(), data.size());
    buffer_.append(data.data(), n);
    data.remove_prefix(n);
    if (buffer_.size() < want) return;  // payload incomplete
    Item item{FrameStatus::kFrame, {}};
    item.frame.verb = static_cast<std::uint8_t>(buffer_[4]);
    item.frame.status = static_cast<std::uint8_t>(buffer_[5]);
    item.frame.payload.assign(buffer_, kFrameHeaderSize, std::size_t(len));
    ready_.push_back(std::move(item));
    buffer_.clear();
  }
}

FrameAssembler::FrameStatus FrameAssembler::Next(Frame* frame) {
  if (ready_.empty()) return FrameStatus::kNone;
  Item item = std::move(ready_.front());
  ready_.pop_front();
  if (item.status == FrameStatus::kFrame) *frame = std::move(item.frame);
  return item.status;
}

// ---- LineAssembler ---------------------------------------------------

void LineAssembler::Append(std::string_view data) {
  while (!data.empty()) {
    const std::size_t nl = data.find('\n');
    const std::string_view segment = data.substr(0, nl);
    if (!discarding_) {
      if (partial_.size() + segment.size() > max_line_) {
        partial_.clear();
        partial_.shrink_to_fit();
        discarding_ = true;
      } else {
        partial_.append(segment);
      }
    }
    if (nl == std::string_view::npos) return;  // rest arrives later
    if (discarding_) {
      ready_.push_back(Item{true, std::string()});
      discarding_ = false;
    } else {
      if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
      ready_.push_back(Item{false, std::move(partial_)});
      partial_.clear();
    }
    data.remove_prefix(nl + 1);
  }
}

LineAssembler::LineStatus LineAssembler::NextLine(std::string* line) {
  if (ready_.empty()) return LineStatus::kNone;
  Item item = std::move(ready_.front());
  ready_.pop_front();
  if (item.oversized) return LineStatus::kOversized;
  *line = std::move(item.line);
  return LineStatus::kLine;
}

}  // namespace rpm::net
