#include "baselines/shapelet_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "distance/euclidean.h"
#include "ts/znorm.h"

namespace rpm::baselines {
namespace {

double Entropy(const std::map<int, std::size_t>& hist, std::size_t total) {
  double h = 0.0;
  for (const auto& [label, count] : hist) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

struct Split {
  double gain = -1.0;
  /// Margin between the split halves, the original paper's tie-breaker
  /// ("maximum separation gap").
  double gap = 0.0;
  double threshold = 0.0;
};

// Best information-gain split of sorted (distance, label) pairs.
Split BestSplit(std::vector<std::pair<double, int>>& dist,
                const std::map<int, std::size_t>& hist) {
  std::sort(dist.begin(), dist.end());
  const double h_node = Entropy(hist, dist.size());
  Split best;
  std::map<int, std::size_t> left;
  for (std::size_t split = 1; split < dist.size(); ++split) {
    ++left[dist[split - 1].second];
    if (dist[split].first == dist[split - 1].first) continue;
    std::map<int, std::size_t> right;
    for (const auto& [label, count] : hist) {
      const auto it = left.find(label);
      right[label] = count - (it == left.end() ? 0 : it->second);
    }
    const double nl = static_cast<double>(split);
    const double nr = static_cast<double>(dist.size() - split);
    const double n = nl + nr;
    const double gain =
        h_node - (nl / n * Entropy(left, split) +
                  nr / n * Entropy(right, dist.size() - split));
    const double gap = dist[split].first - dist[split - 1].first;
    if (gain > best.gain || (gain == best.gain && gap > best.gap)) {
      best.gain = gain;
      best.gap = gap;
      best.threshold = 0.5 * (dist[split - 1].first + dist[split].first);
    }
  }
  return best;
}

}  // namespace

void ShapeletTree::Train(const ts::Dataset& train) {
  if (train.empty()) {
    throw std::invalid_argument("ShapeletTree::Train: empty training set");
  }

  auto build = [&](auto&& self, std::vector<std::size_t> idx,
                   std::size_t depth) -> std::unique_ptr<Node> {
    auto node = std::make_unique<Node>();
    std::map<int, std::size_t> hist;
    for (std::size_t i : idx) ++hist[train[i].label];
    node->label = hist.begin()->first;
    for (const auto& [label, count] : hist) {
      if (count > hist[node->label]) node->label = label;
    }
    if (hist.size() == 1 || depth >= options_.max_depth ||
        idx.size() < 2 * options_.min_node_size) {
      return node;
    }

    std::size_t min_len = train[idx[0]].values.size();
    for (std::size_t i : idx) {
      min_len = std::min(min_len, train[i].values.size());
    }

    double best_gain = 0.0;
    double best_gap = 0.0;
    ts::Series best_shapelet;
    double best_threshold = 0.0;
    // Direct information-gain scoring of every (stride-bounded)
    // candidate — the Ye & Keogh search shape.
    for (double frac : options_.length_fractions) {
      const auto len = static_cast<std::size_t>(
          std::lround(frac * static_cast<double>(min_len)));
      if (len < 4) continue;
      for (std::size_t s : idx) {
        const auto& values = train[s].values;
        if (values.size() < len) continue;
        const std::size_t span = values.size() - len;
        const std::size_t stride =
            std::max<std::size_t>(1, span / options_.starts_per_series);
        for (std::size_t p = 0; p <= span; p += stride) {
          ts::Series cand(
              values.begin() + static_cast<std::ptrdiff_t>(p),
              values.begin() + static_cast<std::ptrdiff_t>(p + len));
          ts::ZNormalizeInPlace(cand);
          std::vector<std::pair<double, int>> dist;
          dist.reserve(idx.size());
          for (std::size_t i : idx) {
            dist.emplace_back(
                distance::FindBestMatch(cand, train[i].values).distance,
                train[i].label);
          }
          const Split split = BestSplit(dist, hist);
          if (split.gain > best_gain ||
              (split.gain == best_gain && split.gap > best_gap)) {
            best_gain = split.gain;
            best_gap = split.gap;
            best_threshold = split.threshold;
            best_shapelet = std::move(cand);
          }
        }
      }
    }
    if (best_gain <= 1e-9 || best_shapelet.empty()) return node;

    std::vector<std::size_t> left_idx;
    std::vector<std::size_t> right_idx;
    for (std::size_t i : idx) {
      const double d =
          distance::FindBestMatch(best_shapelet, train[i].values).distance;
      (d <= best_threshold ? left_idx : right_idx).push_back(i);
    }
    if (left_idx.empty() || right_idx.empty()) return node;
    node->leaf = false;
    node->shapelet = std::move(best_shapelet);
    node->threshold = best_threshold;
    node->left = self(self, std::move(left_idx), depth + 1);
    node->right = self(self, std::move(right_idx), depth + 1);
    return node;
  };

  std::vector<std::size_t> all(train.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  root_ = build(build, std::move(all), 0);
}

int ShapeletTree::Classify(ts::SeriesView series) const {
  if (root_ == nullptr) {
    throw std::logic_error("ShapeletTree::Classify before Train");
  }
  const Node* node = root_.get();
  while (!node->leaf) {
    const double d =
        distance::FindBestMatch(node->shapelet, series).distance;
    node = (d <= node->threshold) ? node->left.get() : node->right.get();
  }
  return node->label;
}

std::size_t ShapeletTree::num_shapelet_nodes() const {
  std::size_t count = 0;
  std::vector<const Node*> stack;
  if (root_ != nullptr) stack.push_back(root_.get());
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->leaf) continue;
    ++count;
    stack.push_back(n->left.get());
    stack.push_back(n->right.get());
  }
  return count;
}

}  // namespace rpm::baselines
