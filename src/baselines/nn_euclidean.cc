#include "baselines/nn_euclidean.h"

#include <cstddef>
#include <limits>
#include <map>
#include <stdexcept>

#include "distance/euclidean.h"
#include "ts/resample.h"

namespace rpm::baselines {

int NnEuclidean::Classify(ts::SeriesView series) const {
  if (train_.empty()) {
    throw std::logic_error("NnEuclidean::Classify before Train");
  }
  double best = std::numeric_limits<double>::infinity();
  int label = train_[0].label;
  // One resampled copy of the query per distinct training length, instead
  // of re-interpolating for every length-mismatched instance.
  std::map<std::size_t, ts::Series> resampled;
  for (const auto& inst : train_) {
    ts::SeriesView query = series;
    if (inst.values.size() != series.size()) {
      auto [it, inserted] = resampled.try_emplace(inst.values.size());
      if (inserted) it->second = ts::ResampleLinear(series, inst.values.size());
      query = it->second;
    }
    const double d =
        distance::SquaredEuclideanEarlyAbandon(query, inst.values, best);
    if (d < best) {
      best = d;
      label = inst.label;
    }
  }
  return label;
}

}  // namespace rpm::baselines
