#include "baselines/learning_shapelets.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <stdexcept>

#include "ts/rng.h"
#include "ts/znorm.h"

namespace rpm::baselines {
namespace {

// Per-window mean squared distance between shapelet `s` and the window of
// `t` starting at j.
double WindowDistance(const ts::Series& s, ts::SeriesView t, std::size_t j) {
  double acc = 0.0;
  for (std::size_t l = 0; l < s.size(); ++l) {
    const double d = s[l] - t[j + l];
    acc += d * d;
  }
  return acc / static_cast<double>(s.size());
}

struct SoftMin {
  double value = 0.0;
  std::vector<double> weight;  // d M / d D_j per window
};

// Soft minimum M = sum_j D_j e^{a D_j} / sum_j e^{a D_j} with its
// derivative wrt each window distance.
SoftMin ComputeSoftMin(const std::vector<double>& d, double alpha) {
  SoftMin out;
  out.weight.resize(d.size());
  // Stabilize: alpha < 0, so shift by min.
  const double dmin = *std::min_element(d.begin(), d.end());
  double denom = 0.0;
  double numer = 0.0;
  std::vector<double> e(d.size());
  for (std::size_t j = 0; j < d.size(); ++j) {
    e[j] = std::exp(alpha * (d[j] - dmin));
    denom += e[j];
    numer += d[j] * e[j];
  }
  out.value = numer / denom;
  for (std::size_t j = 0; j < d.size(); ++j) {
    out.weight[j] = e[j] * (1.0 + alpha * (d[j] - out.value)) / denom;
  }
  return out;
}

}  // namespace

void LearningShapelets::Train(const ts::Dataset& train) {
  if (train.empty()) {
    throw std::invalid_argument(
        "LearningShapelets::Train: empty training set");
  }
  ts::Rng rng(options_.seed);

  // Label bookkeeping.
  labels_ = train.ClassLabels();
  std::map<int, std::size_t> label_to_id;
  for (std::size_t c = 0; c < labels_.size(); ++c) {
    label_to_id[labels_[c]] = c;
  }
  const std::size_t num_classes = labels_.size();

  // --- Initialize shapelets from random training segments per scale. ---
  shapelets_.clear();
  const std::size_t min_len = train.MinLength();
  const std::size_t per_scale =
      options_.shapelets_per_scale > 0
          ? options_.shapelets_per_scale
          : std::max<std::size_t>(4, 2 * num_classes);
  for (double frac : options_.length_fractions) {
    const auto len = static_cast<std::size_t>(
        std::lround(frac * static_cast<double>(min_len)));
    if (len < 3) continue;
    for (std::size_t k = 0; k < per_scale; ++k) {
      const auto si = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(train.size()) - 1));
      const auto& v = train[si].values;
      if (v.size() < len) {
        --k;  // resample; all series are >= min_len so this terminates
        continue;
      }
      const auto p = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(v.size() - len)));
      ts::Series s(v.begin() + static_cast<std::ptrdiff_t>(p),
                   v.begin() + static_cast<std::ptrdiff_t>(p + len));
      ts::ZNormalizeInPlace(s);
      shapelets_.push_back(std::move(s));
    }
  }
  if (shapelets_.empty()) {
    // Series too short for every scale: use halves.
    ts::Series s(train[0].values.begin(),
                 train[0].values.begin() +
                     static_cast<std::ptrdiff_t>(
                         std::max<std::size_t>(2, min_len / 2)));
    ts::ZNormalizeInPlace(s);
    shapelets_.push_back(std::move(s));
  }
  const std::size_t k_total = shapelets_.size();

  weights_.assign(num_classes, std::vector<double>(k_total + 1, 0.0));
  for (auto& row : weights_) {
    for (double& w : row) w = rng.Gaussian(0.0, 0.01);
  }

  // --- Joint SGD over instances. ---
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t epoch = 0; epoch < options_.max_epochs; ++epoch) {
    rng.Shuffle(order);
    const double lr = options_.learning_rate /
                      (1.0 + 0.01 * static_cast<double>(epoch));
    for (std::size_t i : order) {
      const auto& t = train[i].values;
      const std::size_t yc = label_to_id[train[i].label];

      // Forward: window distances, soft-min features, softmax.
      std::vector<std::vector<double>> window_d(k_total);
      std::vector<SoftMin> sm(k_total);
      std::vector<double> m(k_total + 1);
      m[k_total] = 1.0;  // bias
      for (std::size_t k = 0; k < k_total; ++k) {
        const std::size_t len = shapelets_[k].size();
        const std::size_t nwin = t.size() >= len ? t.size() - len + 1 : 1;
        window_d[k].resize(nwin);
        for (std::size_t j = 0; j < nwin && t.size() >= len; ++j) {
          window_d[k][j] = WindowDistance(shapelets_[k], t, j);
        }
        if (t.size() < len) window_d[k][0] = 0.0;
        sm[k] = ComputeSoftMin(window_d[k], options_.softmin_alpha);
        m[k] = sm[k].value;
      }
      std::vector<double> logits(num_classes, 0.0);
      for (std::size_t c = 0; c < num_classes; ++c) {
        for (std::size_t k = 0; k <= k_total; ++k) {
          logits[c] += weights_[c][k] * m[k];
        }
      }
      const double mx = *std::max_element(logits.begin(), logits.end());
      double z = 0.0;
      std::vector<double> prob(num_classes);
      for (std::size_t c = 0; c < num_classes; ++c) {
        prob[c] = std::exp(logits[c] - mx);
        z += prob[c];
      }
      for (double& p : prob) p /= z;

      // Backward: error per class drives both weight and shapelet grads.
      std::vector<double> err(num_classes);
      for (std::size_t c = 0; c < num_classes; ++c) {
        err[c] = prob[c] - (c == yc ? 1.0 : 0.0);
      }
      // Shapelet gradients first (they need the pre-update weights).
      for (std::size_t k = 0; k < k_total; ++k) {
        if (t.size() < shapelets_[k].size()) continue;
        double gm = 0.0;  // dL/dM_k
        for (std::size_t c = 0; c < num_classes; ++c) {
          gm += err[c] * weights_[c][k];
        }
        if (std::abs(gm) < 1e-12) continue;
        auto& s = shapelets_[k];
        const double inv_len = 1.0 / static_cast<double>(s.size());
        for (std::size_t j = 0; j < window_d[k].size(); ++j) {
          const double g = gm * sm[k].weight[j];
          if (std::abs(g) < 1e-12) continue;
          for (std::size_t l = 0; l < s.size(); ++l) {
            s[l] -= lr * g * 2.0 * (s[l] - t[j + l]) * inv_len;
          }
        }
      }
      // Weight updates with L2.
      for (std::size_t c = 0; c < num_classes; ++c) {
        for (std::size_t k = 0; k <= k_total; ++k) {
          weights_[c][k] -=
              lr * (err[c] * m[k] + options_.lambda * weights_[c][k]);
        }
      }
    }
  }
}

std::vector<double> LearningShapelets::Features(ts::SeriesView series) const {
  std::vector<double> m(shapelets_.size() + 1);
  m.back() = 1.0;
  for (std::size_t k = 0; k < shapelets_.size(); ++k) {
    const std::size_t len = shapelets_[k].size();
    if (series.size() < len) {
      // Degenerate: compare over the overlapping prefix only.
      double acc = 0.0;
      for (std::size_t l = 0; l < series.size(); ++l) {
        const double d = shapelets_[k][l] - series[l];
        acc += d * d;
      }
      m[k] = acc / static_cast<double>(std::max<std::size_t>(1, series.size()));
      continue;
    }
    std::vector<double> d(series.size() - len + 1);
    for (std::size_t j = 0; j < d.size(); ++j) {
      d[j] = WindowDistance(shapelets_[k], series, j);
    }
    m[k] = ComputeSoftMin(d, options_.softmin_alpha).value;
  }
  return m;
}

int LearningShapelets::Classify(ts::SeriesView series) const {
  if (weights_.empty()) {
    throw std::logic_error("LearningShapelets::Classify before Train");
  }
  const std::vector<double> m = Features(series);
  std::size_t best = 0;
  double best_logit = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < weights_.size(); ++c) {
    double logit = 0.0;
    for (std::size_t k = 0; k < m.size(); ++k) {
      logit += weights_[c][k] * m[k];
    }
    if (logit > best_logit) {
      best_logit = logit;
      best = c;
    }
  }
  return labels_[best];
}

}  // namespace rpm::baselines
