// SAX-VSM (Senin & Malinchik 2013, Table 1 comparator): each class is a
// tf*idf-weighted bag of SAX words collected from sliding windows over all
// of the class's training series; a test series is classified by cosine
// similarity of its word bag against the class weight vectors. An optional
// small grid search picks the SAX parameters by cross-validation on the
// training data (the original uses DIRECT; the grid here mirrors that at
// this repository's dataset scale).

#ifndef RPM_BASELINES_SAX_VSM_H_
#define RPM_BASELINES_SAX_VSM_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/classifier.h"
#include "sax/sax.h"

namespace rpm::baselines {

struct SaxVsmOptions {
  sax::SaxOptions sax;   ///< used when optimize == false
  bool optimize = true;  ///< search (window, paa, alphabet) by CV
  /// true = DIRECT-driven search (as in the original SAX-VSM paper);
  /// false = the small grid.
  bool use_direct = false;
  std::size_t direct_max_evaluations = 20;
  std::size_t cv_folds = 3;
  std::uint64_t seed = 99;
};

class SaxVsm : public Classifier {
 public:
  explicit SaxVsm(SaxVsmOptions options = {}) : options_(options) {}

  void Train(const ts::Dataset& train) override;
  int Classify(ts::SeriesView series) const override;
  std::string Name() const override { return "SAX-VSM"; }

  const sax::SaxOptions& chosen_sax() const { return chosen_sax_; }

  /// The k highest-tf*idf words of a class (weight descending) — the
  /// "class-characteristic patterns" view of the SAX-VSM paper, used by
  /// the Figure 1 reproduction. Empty for unknown labels.
  std::vector<std::pair<std::string, double>> TopWords(
      int label, std::size_t k) const;

 private:
  using Bag = std::unordered_map<std::string, double>;

  static Bag BagOfWords(ts::SeriesView series, const sax::SaxOptions& sax);
  void Fit(const ts::Dataset& train, const sax::SaxOptions& sax);
  double CvAccuracy(const ts::Dataset& train, const sax::SaxOptions& sax);

  SaxVsmOptions options_;
  sax::SaxOptions chosen_sax_;
  std::map<int, Bag> class_weights_;  // label -> tf*idf vector
};

}  // namespace rpm::baselines

#endif  // RPM_BASELINES_SAX_VSM_H_
