// 1-NN DTW with the best warping window (NN-DTWB, Table 1): the window
// half-width is chosen by leave-one-out cross-validation on the training
// set over a fraction grid, the standard UCR protocol. Every DTW call —
// including the LOOCV sweep itself — goes through the lower-bound
// cascade (endpoint bound, LB_Keogh both directions, early-abandoning
// banded DTW): envelopes are built once per candidate window in O(n)
// and shared by all left-out queries at that window.

#ifndef RPM_BASELINES_NN_DTW_H_
#define RPM_BASELINES_NN_DTW_H_

#include <vector>

#include "baselines/classifier.h"
#include "distance/dtw.h"

namespace rpm::baselines {

struct NnDtwOptions {
  /// Candidate warping-window sizes as fractions of the series length;
  /// LOOCV picks the best (ties -> smaller window).
  std::vector<double> window_fractions = {0.0,  0.01, 0.02, 0.04,
                                          0.06, 0.1,  0.2};
  /// Threads for the LOOCV sweep in Train. Each left-out instance is an
  /// independent classification, so the chosen window is identical for
  /// any thread count.
  std::size_t num_threads = 1;
};

class NnDtwBestWindow : public Classifier {
 public:
  explicit NnDtwBestWindow(NnDtwOptions options = {}) : options_(options) {}

  void Train(const ts::Dataset& train) override;
  int Classify(ts::SeriesView series) const override;
  std::string Name() const override { return "NN-DTWB"; }

  /// The LOOCV-selected window half-width in points.
  std::size_t best_window() const { return best_window_; }

 private:
  /// 1NN over the training set at the given band. `envelopes` holds one
  /// envelope per training instance built at `window` (used for LB_Keogh
  /// against the candidates); `series_envelope` is the query's own
  /// envelope at the same window, or null to skip the reversed bound.
  int ClassifyWithWindow(ts::SeriesView series,
                         const distance::Envelope* series_envelope,
                         std::size_t window,
                         const std::vector<distance::Envelope>& envelopes,
                         std::size_t exclude) const;

  NnDtwOptions options_;
  ts::Dataset train_;
  std::vector<distance::Envelope> envelopes_;
  std::size_t best_window_ = 0;
};

}  // namespace rpm::baselines

#endif  // RPM_BASELINES_NN_DTW_H_
