// Common interface of the comparison classifiers from the paper's
// evaluation (Section 5.1): NN-ED, NN-DTWB, SAX-VSM, Fast Shapelets and
// Learning Shapelets all implement this, as does the RpmAdapter, so the
// benchmark harness can sweep them uniformly.

#ifndef RPM_BASELINES_CLASSIFIER_H_
#define RPM_BASELINES_CLASSIFIER_H_

#include <string>
#include <vector>

#include "ts/series.h"

namespace rpm::baselines {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Fits the model; may be called again to retrain from scratch.
  virtual void Train(const ts::Dataset& train) = 0;

  /// Predicts the label of one series. Precondition: Train was called.
  virtual int Classify(ts::SeriesView series) const = 0;

  /// Display name used in benchmark tables.
  virtual std::string Name() const = 0;

  /// Predicts every instance of `test`. The default loops Classify;
  /// subclasses with batch-amortizable state (e.g. RpmAdapter's pattern
  /// contexts) override it.
  virtual std::vector<int> ClassifyAll(const ts::Dataset& test) const;

  /// Batch classification on the persistent thread pool. Classify is
  /// const and stateless across calls for every implementation here, so
  /// predictions are identical to ClassifyAll for any thread count.
  std::vector<int> ClassifyAllParallel(const ts::Dataset& test,
                                       std::size_t num_threads) const;

  /// Error rate on a labeled test set.
  double Evaluate(const ts::Dataset& test) const;
};

}  // namespace rpm::baselines

#endif  // RPM_BASELINES_CLASSIFIER_H_
