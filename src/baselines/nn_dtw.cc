#include "baselines/nn_dtw.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "ts/parallel.h"

namespace rpm::baselines {

void NnDtwBestWindow::Train(const ts::Dataset& train) {
  train_ = train;
  envelopes_.clear();
  if (train_.empty()) return;

  // Candidate windows in points, deduplicated.
  const double len = static_cast<double>(train_.MaxLength());
  std::vector<std::size_t> windows;
  for (double f : options_.window_fractions) {
    windows.push_back(static_cast<std::size_t>(std::lround(f * len)));
  }
  std::sort(windows.begin(), windows.end());
  windows.erase(std::unique(windows.begin(), windows.end()), windows.end());

  // LOOCV over the training set (smaller window wins ties). Envelopes are
  // built once per candidate window — O(n) each via the Lemire deques —
  // and shared across the whole sweep at that window, so every left-out
  // query runs the full cascade: a left-out instance's own envelope is
  // already in the set and serves as the query envelope.
  best_window_ = windows.front();
  std::size_t best_hits = 0;
  std::vector<std::uint8_t> hit(train_.size());
  std::vector<distance::Envelope> envelopes(train_.size());
  for (std::size_t w : windows) {
    ts::ParallelFor(train_.size(), options_.num_threads, [&](std::size_t i) {
      envelopes[i] = distance::MakeEnvelope(train_[i].values, w);
    });
    // Each left-out instance writes only its own slot; the ordered sum
    // below keeps the hit count independent of the thread count.
    ts::ParallelFor(train_.size(), options_.num_threads, [&](std::size_t i) {
      hit[i] = ClassifyWithWindow(train_[i].values, &envelopes[i], w,
                                  envelopes, i) == train_[i].label
                   ? 1
                   : 0;
    });
    const std::size_t hits =
        std::accumulate(hit.begin(), hit.end(), std::size_t{0});
    if (hits > best_hits) {
      best_hits = hits;
      best_window_ = w;
    }
  }

  // Keep the envelope set at the chosen window for classification.
  envelopes_.resize(train_.size());
  ts::ParallelFor(train_.size(), options_.num_threads, [&](std::size_t i) {
    envelopes_[i] = distance::MakeEnvelope(train_[i].values, best_window_);
  });
}

int NnDtwBestWindow::ClassifyWithWindow(
    ts::SeriesView series, const distance::Envelope* series_envelope,
    std::size_t window, const std::vector<distance::Envelope>& envelopes,
    std::size_t exclude) const {
  double best = std::numeric_limits<double>::infinity();
  int label = train_[0].label;
  for (std::size_t i = 0; i < train_.size(); ++i) {
    if (i == exclude) continue;
    const auto& inst = train_[i];
    const distance::Envelope* cand_env =
        i < envelopes.size() ? &envelopes[i] : nullptr;
    // The cascade skips a candidate only when a bound proves its DTW
    // cannot beat `best`, so the selected neighbor (first index reaching
    // the minimum) is identical to an exhaustive full-DTW scan.
    const double d = distance::DtwCascade(series, inst.values,
                                          series_envelope, cand_env, window,
                                          best);
    if (d < best) {
      best = d;
      label = inst.label;
    }
  }
  return label;
}

int NnDtwBestWindow::Classify(ts::SeriesView series) const {
  if (train_.empty()) {
    throw std::logic_error("NnDtwBestWindow::Classify before Train");
  }
  const distance::Envelope query_env =
      distance::MakeEnvelope(series, best_window_);
  return ClassifyWithWindow(series, &query_env, best_window_, envelopes_,
                            train_.size());
}

}  // namespace rpm::baselines
