#include "baselines/nn_dtw.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "ts/parallel.h"

namespace rpm::baselines {

void NnDtwBestWindow::Train(const ts::Dataset& train) {
  train_ = train;
  envelopes_.clear();
  if (train_.empty()) return;

  // Candidate windows in points, deduplicated.
  const double len = static_cast<double>(train_.MaxLength());
  std::vector<std::size_t> windows;
  for (double f : options_.window_fractions) {
    windows.push_back(static_cast<std::size_t>(std::lround(f * len)));
  }
  std::sort(windows.begin(), windows.end());
  windows.erase(std::unique(windows.begin(), windows.end()), windows.end());

  // LOOCV over the training set (smaller window wins ties).
  best_window_ = windows.front();
  std::size_t best_hits = 0;
  std::vector<std::uint8_t> hit(train_.size());
  for (std::size_t w : windows) {
    // Each left-out instance writes only its own slot; the ordered sum
    // below keeps the hit count independent of the thread count.
    ts::ParallelFor(train_.size(), options_.num_threads, [&](std::size_t i) {
      hit[i] =
          ClassifyWithWindow(train_[i].values, w, i) == train_[i].label ? 1 : 0;
    });
    const std::size_t hits =
        std::accumulate(hit.begin(), hit.end(), std::size_t{0});
    if (hits > best_hits) {
      best_hits = hits;
      best_window_ = w;
    }
  }

  // Precompute envelopes at the chosen window for LB_Keogh pruning.
  envelopes_.reserve(train_.size());
  for (const auto& inst : train_) {
    envelopes_.push_back(distance::MakeEnvelope(inst.values, best_window_));
  }
}

int NnDtwBestWindow::ClassifyWithWindow(ts::SeriesView series,
                                        std::size_t window,
                                        std::size_t exclude) const {
  double best = std::numeric_limits<double>::infinity();
  int label = train_[0].label;
  for (std::size_t i = 0; i < train_.size(); ++i) {
    if (i == exclude) continue;
    const auto& inst = train_[i];
    // LB_Keogh prune only when an envelope set matching this window is
    // available (the post-training fast path).
    if (!envelopes_.empty() && window == best_window_ &&
        series.size() == inst.values.size()) {
      if (distance::LbKeogh(series, envelopes_[i]) >= best) continue;
    }
    const double d = distance::Dtw(series, inst.values, window, best);
    if (d < best) {
      best = d;
      label = inst.label;
    }
  }
  return label;
}

int NnDtwBestWindow::Classify(ts::SeriesView series) const {
  if (train_.empty()) {
    throw std::logic_error("NnDtwBestWindow::Classify before Train");
  }
  return ClassifyWithWindow(series, best_window_, train_.size());
}

}  // namespace rpm::baselines
