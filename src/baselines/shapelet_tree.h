// The original shapelet decision tree (Ye & Keogh 2009), the foundational
// method the paper's related work builds on (Section 2.2: "the original
// shapelet technique ... constructs a decision tree-based classifier
// which uses the shapelet similarity as the splitting criterion").
//
// Unlike Fast Shapelets (random-projection filtering), this classifier
// scores candidates *directly* by information gain, with two of the
// original paper's accelerations: entropy-based candidate ordering is
// replaced by a stride-bounded candidate enumeration (the exhaustive
// O(n^2 m^3) search is intractable by design), and distance computation
// early-abandons against the best-so-far gain's split band.

#ifndef RPM_BASELINES_SHAPELET_TREE_H_
#define RPM_BASELINES_SHAPELET_TREE_H_

#include <memory>
#include <vector>

#include "baselines/classifier.h"

namespace rpm::baselines {

struct ShapeletTreeOptions {
  /// Candidate lengths as fractions of the shortest series.
  std::vector<double> length_fractions = {0.15, 0.25, 0.35, 0.5};
  /// Start positions sampled per series per length (stride bound).
  std::size_t starts_per_series = 10;
  std::size_t max_depth = 8;
  std::size_t min_node_size = 2;
};

class ShapeletTree : public Classifier {
 public:
  explicit ShapeletTree(ShapeletTreeOptions options = {})
      : options_(options) {}

  void Train(const ts::Dataset& train) override;
  int Classify(ts::SeriesView series) const override;
  std::string Name() const override { return "YK-Tree"; }

  std::size_t num_shapelet_nodes() const;

 private:
  struct Node {
    bool leaf = true;
    int label = 0;
    ts::Series shapelet;
    double threshold = 0.0;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };

  ShapeletTreeOptions options_;
  std::unique_ptr<Node> root_;
};

}  // namespace rpm::baselines

#endif  // RPM_BASELINES_SHAPELET_TREE_H_
