#include "baselines/bag_of_patterns.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rpm::baselines {

BagOfPatterns::Bag BagOfPatterns::MakeBag(ts::SeriesView series) const {
  Bag bag;
  for (const auto& rec :
       sax::DiscretizeSlidingWindow(series, options_.sax)) {
    bag[rec.word] += 1.0;
  }
  return bag;
}

double BagOfPatterns::BagDistance(const Bag& a, const Bag& b) const {
  if (options_.cosine) {
    double dot = 0.0;
    double na = 0.0;
    double nb = 0.0;
    for (const auto& [word, count] : a) {
      na += count * count;
      const auto it = b.find(word);
      if (it != b.end()) dot += count * it->second;
    }
    for (const auto& [word, count] : b) nb += count * count;
    const double denom = std::sqrt(std::max(na * nb, 1e-24));
    return 1.0 - dot / denom;
  }
  double acc = 0.0;
  for (const auto& [word, count] : a) {
    const auto it = b.find(word);
    const double d = count - (it == b.end() ? 0.0 : it->second);
    acc += d * d;
  }
  for (const auto& [word, count] : b) {
    if (a.find(word) == a.end()) acc += count * count;
  }
  return std::sqrt(acc);
}

void BagOfPatterns::Train(const ts::Dataset& train) {
  if (train.empty()) {
    throw std::invalid_argument("BagOfPatterns::Train: empty training set");
  }
  bags_.clear();
  labels_.clear();
  for (const auto& inst : train) {
    bags_.push_back(MakeBag(inst.values));
    labels_.push_back(inst.label);
  }
}

int BagOfPatterns::Classify(ts::SeriesView series) const {
  if (bags_.empty()) {
    throw std::logic_error("BagOfPatterns::Classify before Train");
  }
  const Bag query = MakeBag(series);
  double best = std::numeric_limits<double>::infinity();
  int label = labels_.front();
  for (std::size_t i = 0; i < bags_.size(); ++i) {
    const double d = BagDistance(query, bags_[i]);
    if (d < best) {
      best = d;
      label = labels_[i];
    }
  }
  return label;
}

}  // namespace rpm::baselines
