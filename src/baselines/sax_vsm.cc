#include "baselines/sax_vsm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ml/cross_validation.h"
#include "opt/direct.h"
#include "ts/rng.h"

namespace rpm::baselines {

SaxVsm::Bag SaxVsm::BagOfWords(ts::SeriesView series,
                               const sax::SaxOptions& sax) {
  Bag bag;
  for (const auto& rec : sax::DiscretizeSlidingWindow(series, sax)) {
    bag[rec.word] += 1.0;
  }
  return bag;
}

void SaxVsm::Fit(const ts::Dataset& train, const sax::SaxOptions& sax) {
  chosen_sax_ = sax;
  class_weights_.clear();

  // Term frequencies per class corpus.
  std::map<int, Bag> tf;
  for (const auto& inst : train) {
    Bag bag = BagOfWords(inst.values, sax);
    Bag& class_bag = tf[inst.label];
    for (const auto& [word, count] : bag) class_bag[word] += count;
  }
  const double num_classes = static_cast<double>(tf.size());

  // Document frequency: number of class corpora containing the word.
  std::unordered_map<std::string, double> df;
  for (const auto& [label, bag] : tf) {
    for (const auto& [word, count] : bag) df[word] += 1.0;
  }

  // tf*idf per the SAX-VSM paper: (1 + log tf) * log(N / df), zero when
  // the word appears in every class (log 1 = 0 removes non-discriminative
  // words automatically).
  for (auto& [label, bag] : tf) {
    Bag weights;
    for (const auto& [word, count] : bag) {
      const double w =
          (1.0 + std::log(count)) * std::log(num_classes / df[word]);
      if (w > 0.0) weights[word] = w;
    }
    class_weights_[label] = std::move(weights);
  }
}

double SaxVsm::CvAccuracy(const ts::Dataset& train,
                          const sax::SaxOptions& sax) {
  std::vector<int> labels;
  for (const auto& inst : train) labels.push_back(inst.label);
  ts::Rng rng(options_.seed);
  const std::size_t k =
      std::min<std::size_t>(std::max<std::size_t>(2, options_.cv_folds),
                            train.size());
  const std::vector<int> folds = ml::StratifiedFolds(labels, k, rng);

  std::size_t hits = 0;
  for (std::size_t fold = 0; fold < k; ++fold) {
    ts::Dataset sub;
    std::vector<std::size_t> held;
    for (std::size_t i = 0; i < train.size(); ++i) {
      if (folds[i] == static_cast<int>(fold)) {
        held.push_back(i);
      } else {
        sub.Add(train[i]);
      }
    }
    if (sub.empty() || held.empty()) continue;
    SaxVsmOptions sub_options = options_;
    sub_options.sax = sax;
    sub_options.optimize = false;
    SaxVsm model(sub_options);
    model.Train(sub);
    for (std::size_t i : held) {
      if (model.Classify(train[i].values) == train[i].label) ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(train.size());
}

void SaxVsm::Train(const ts::Dataset& train) {
  if (train.empty()) {
    throw std::invalid_argument("SaxVsm::Train: empty training set");
  }
  if (!options_.optimize) {
    Fit(train, options_.sax);
    return;
  }
  const auto len = static_cast<int>(train.MinLength());
  if (options_.use_direct) {
    // DIRECT over the 3-D integer box, as in the original SAX-VSM paper.
    opt::Bounds bounds;
    bounds.lower = {std::max(6.0, len / 6.0), 3.0, 3.0};
    bounds.upper = {std::max(8.0, len / 2.0), 9.0, 7.0};
    opt::DirectOptions direct;
    direct.max_evaluations = options_.direct_max_evaluations;
    double best_acc = -1.0;
    sax::SaxOptions best_sax = options_.sax;
    opt::Minimize(
        [&](std::span<const double> x) {
          sax::SaxOptions sax;
          sax.window = static_cast<std::size_t>(std::lround(x[0]));
          sax.paa_size = std::min<std::size_t>(
              static_cast<std::size_t>(std::lround(x[1])), sax.window);
          sax.alphabet = static_cast<int>(std::lround(x[2]));
          const double acc = CvAccuracy(train, sax);
          if (acc > best_acc) {
            best_acc = acc;
            best_sax = sax;
          }
          return 1.0 - acc;
        },
        bounds, direct);
    Fit(train, best_sax);
    return;
  }
  const std::vector<int> windows = {std::max(6, len / 6), std::max(8, len / 3),
                                    std::max(10, len / 2)};
  const std::vector<std::size_t> paas = {4, 6, 8};
  const std::vector<int> alphabets = {3, 4, 6};

  double best_acc = -1.0;
  sax::SaxOptions best = options_.sax;
  for (int w : windows) {
    for (std::size_t p : paas) {
      for (int a : alphabets) {
        sax::SaxOptions sax;
        sax.window = static_cast<std::size_t>(w);
        sax.paa_size = std::min<std::size_t>(p, sax.window);
        sax.alphabet = a;
        const double acc = CvAccuracy(train, sax);
        if (acc > best_acc) {
          best_acc = acc;
          best = sax;
        }
      }
    }
  }
  Fit(train, best);
}

std::vector<std::pair<std::string, double>> SaxVsm::TopWords(
    int label, std::size_t k) const {
  std::vector<std::pair<std::string, double>> out;
  const auto it = class_weights_.find(label);
  if (it == class_weights_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

int SaxVsm::Classify(ts::SeriesView series) const {
  if (class_weights_.empty()) {
    throw std::logic_error("SaxVsm::Classify before Train");
  }
  const Bag bag = BagOfWords(series, chosen_sax_);
  double bag_norm = 0.0;
  for (const auto& [word, count] : bag) bag_norm += count * count;
  bag_norm = std::sqrt(std::max(bag_norm, 1e-12));

  int best_label = class_weights_.begin()->first;
  double best_sim = -1.0;
  for (const auto& [label, weights] : class_weights_) {
    double dot = 0.0;
    double norm = 0.0;
    for (const auto& [word, w] : weights) norm += w * w;
    norm = std::sqrt(std::max(norm, 1e-12));
    for (const auto& [word, count] : bag) {
      const auto it = weights.find(word);
      if (it != weights.end()) dot += count * it->second;
    }
    const double sim = dot / (bag_norm * norm);
    if (sim > best_sim) {
      best_sim = sim;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace rpm::baselines
