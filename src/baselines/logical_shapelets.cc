#include "baselines/logical_shapelets.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "distance/euclidean.h"
#include "ts/znorm.h"

namespace rpm::baselines {
namespace {

double Entropy(const std::map<int, std::size_t>& hist, std::size_t total) {
  double h = 0.0;
  for (const auto& [label, count] : hist) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

// Gain of a boolean partition given per-side label histograms.
double PartitionGain(const std::map<int, std::size_t>& hist,
                     const std::map<int, std::size_t>& true_side,
                     std::size_t n_true, std::size_t n_total) {
  if (n_true == 0 || n_true == n_total) return 0.0;
  std::map<int, std::size_t> false_side;
  for (const auto& [label, count] : hist) {
    const auto it = true_side.find(label);
    false_side[label] = count - (it == true_side.end() ? 0 : it->second);
  }
  const double h = Entropy(hist, n_total);
  const double nt = static_cast<double>(n_true);
  const double nf = static_cast<double>(n_total - n_true);
  const double n = nt + nf;
  return h - (nt / n * Entropy(true_side, n_true) +
              nf / n * Entropy(false_side, n_total - n_true));
}

struct SingleCandidate {
  double gain = -1.0;
  double threshold = 0.0;
  std::size_t candidate_index = 0;
  std::vector<double> distances;  // to every node instance
};

}  // namespace

void LogicalShapelets::Train(const ts::Dataset& train) {
  if (train.empty()) {
    throw std::invalid_argument(
        "LogicalShapelets::Train: empty training set");
  }

  auto build = [&](auto&& self, std::vector<std::size_t> idx,
                   std::size_t depth) -> std::unique_ptr<Node> {
    auto node = std::make_unique<Node>();
    std::map<int, std::size_t> hist;
    for (std::size_t i : idx) ++hist[train[i].label];
    node->label = hist.begin()->first;
    for (const auto& [label, count] : hist) {
      if (count > hist[node->label]) node->label = label;
    }
    if (hist.size() == 1 || depth >= options_.max_depth ||
        idx.size() < 2 * options_.min_node_size) {
      return node;
    }

    std::size_t min_len = train[idx[0]].values.size();
    for (std::size_t i : idx) {
      min_len = std::min(min_len, train[i].values.size());
    }

    // Enumerate candidates, evaluate single-shapelet gains.
    std::vector<ts::Series> candidates;
    for (double frac : options_.length_fractions) {
      const auto len = static_cast<std::size_t>(
          std::lround(frac * static_cast<double>(min_len)));
      if (len < 4) continue;
      for (std::size_t s : idx) {
        const auto& values = train[s].values;
        if (values.size() < len) continue;
        const std::size_t span = values.size() - len;
        const std::size_t stride =
            std::max<std::size_t>(1, span / options_.starts_per_series);
        for (std::size_t p = 0; p <= span; p += stride) {
          ts::Series cand(
              values.begin() + static_cast<std::ptrdiff_t>(p),
              values.begin() + static_cast<std::ptrdiff_t>(p + len));
          ts::ZNormalizeInPlace(cand);
          candidates.push_back(std::move(cand));
        }
      }
    }
    if (candidates.empty()) return node;

    std::vector<SingleCandidate> scored;
    scored.reserve(candidates.size());
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      SingleCandidate sc;
      sc.candidate_index = c;
      sc.distances.reserve(idx.size());
      for (std::size_t i : idx) {
        sc.distances.push_back(
            distance::FindBestMatch(candidates[c], train[i].values)
                .distance);
      }
      // Best threshold by information gain.
      std::vector<std::pair<double, int>> dist;
      dist.reserve(idx.size());
      for (std::size_t k = 0; k < idx.size(); ++k) {
        dist.emplace_back(sc.distances[k], train[idx[k]].label);
      }
      std::sort(dist.begin(), dist.end());
      std::map<int, std::size_t> left;
      for (std::size_t split = 1; split < dist.size(); ++split) {
        ++left[dist[split - 1].second];
        if (dist[split].first == dist[split - 1].first) continue;
        const double gain = PartitionGain(hist, left, split, dist.size());
        if (gain > sc.gain) {
          sc.gain = gain;
          sc.threshold =
              0.5 * (dist[split - 1].first + dist[split].first);
        }
      }
      scored.push_back(std::move(sc));
    }
    std::sort(scored.begin(), scored.end(),
              [](const SingleCandidate& a, const SingleCandidate& b) {
                return a.gain > b.gain;
              });
    const SingleCandidate& best1 = scored.front();
    if (best1.gain <= 1e-9) return node;

    // Try to extend the best single shapelet with a second one under AND
    // and OR, over the top-k runners-up.
    double best_gain = best1.gain;
    Connective best_conn = Connective::kSingle;
    std::size_t best_partner = 0;
    double best_t2 = 0.0;
    const std::size_t k2 = std::min(options_.combine_top_k + 1,
                                    scored.size());
    for (std::size_t r = 1; r < k2; ++r) {
      const SingleCandidate& cand2 = scored[r];
      // Sweep cand2's threshold over its distinct distances.
      std::vector<double> t2s = cand2.distances;
      std::sort(t2s.begin(), t2s.end());
      t2s.erase(std::unique(t2s.begin(), t2s.end()), t2s.end());
      for (double t2 : t2s) {
        std::map<int, std::size_t> and_true;
        std::map<int, std::size_t> or_true;
        std::size_t n_and = 0;
        std::size_t n_or = 0;
        for (std::size_t k = 0; k < idx.size(); ++k) {
          const bool p1 = best1.distances[k] <= best1.threshold;
          const bool p2 = cand2.distances[k] <= t2;
          if (p1 && p2) {
            ++and_true[train[idx[k]].label];
            ++n_and;
          }
          if (p1 || p2) {
            ++or_true[train[idx[k]].label];
            ++n_or;
          }
        }
        const double g_and =
            PartitionGain(hist, and_true, n_and, idx.size());
        const double g_or = PartitionGain(hist, or_true, n_or, idx.size());
        if (g_and > best_gain + 1e-9) {
          best_gain = g_and;
          best_conn = Connective::kAnd;
          best_partner = r;
          best_t2 = t2;
        }
        if (g_or > best_gain + 1e-9) {
          best_gain = g_or;
          best_conn = Connective::kOr;
          best_partner = r;
          best_t2 = t2;
        }
      }
    }

    node->shapelet1 = candidates[best1.candidate_index];
    node->threshold1 = best1.threshold;
    node->connective = best_conn;
    if (best_conn != Connective::kSingle) {
      node->shapelet2 = candidates[scored[best_partner].candidate_index];
      node->threshold2 = best_t2;
    }

    std::vector<std::size_t> true_idx;
    std::vector<std::size_t> false_idx;
    for (std::size_t k = 0; k < idx.size(); ++k) {
      const bool p1 = best1.distances[k] <= best1.threshold;
      bool pred = p1;
      if (best_conn != Connective::kSingle) {
        const bool p2 =
            scored[best_partner].distances[k] <= best_t2;
        pred = (best_conn == Connective::kAnd) ? (p1 && p2) : (p1 || p2);
      }
      (pred ? true_idx : false_idx).push_back(idx[k]);
    }
    if (true_idx.empty() || false_idx.empty()) {
      node->shapelet1.clear();
      node->shapelet2.clear();
      return node;
    }
    node->leaf = false;
    node->left = self(self, std::move(true_idx), depth + 1);
    node->right = self(self, std::move(false_idx), depth + 1);
    return node;
  };

  std::vector<std::size_t> all(train.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  root_ = build(build, std::move(all), 0);
}

bool LogicalShapelets::Predicate(const Node& node,
                                 ts::SeriesView series) const {
  const bool p1 =
      distance::FindBestMatch(node.shapelet1, series).distance <=
      node.threshold1;
  if (node.connective == Connective::kSingle) return p1;
  const bool p2 =
      distance::FindBestMatch(node.shapelet2, series).distance <=
      node.threshold2;
  return node.connective == Connective::kAnd ? (p1 && p2) : (p1 || p2);
}

int LogicalShapelets::Classify(ts::SeriesView series) const {
  if (root_ == nullptr) {
    throw std::logic_error("LogicalShapelets::Classify before Train");
  }
  const Node* node = root_.get();
  while (!node->leaf) {
    node = Predicate(*node, series) ? node->left.get() : node->right.get();
  }
  return node->label;
}

std::size_t LogicalShapelets::num_logical_nodes() const {
  std::size_t count = 0;
  std::vector<const Node*> stack;
  if (root_ != nullptr) stack.push_back(root_.get());
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->leaf) continue;
    if (n->connective != Connective::kSingle) ++count;
    stack.push_back(n->left.get());
    stack.push_back(n->right.get());
  }
  return count;
}

std::size_t LogicalShapelets::num_shapelet_nodes() const {
  std::size_t count = 0;
  std::vector<const Node*> stack;
  if (root_ != nullptr) stack.push_back(root_.get());
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->leaf) continue;
    ++count;
    stack.push_back(n->left.get());
    stack.push_back(n->right.get());
  }
  return count;
}

}  // namespace rpm::baselines
