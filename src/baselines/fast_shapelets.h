// Fast Shapelets (Rakthanmanon & Keogh 2013, Table 1/2 comparator): a
// shapelet decision tree where each node's shapelet is found by SAX
// random projection — subsequences are discretized, random positions are
// masked over several rounds, and collision statistics identify the most
// class-distinguishing words; only the top-k survivors are scored exactly
// by information gain.

#ifndef RPM_BASELINES_FAST_SHAPELETS_H_
#define RPM_BASELINES_FAST_SHAPELETS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/classifier.h"
#include "distance/matcher.h"

namespace rpm::baselines {

struct FastShapeletsOptions {
  /// Candidate shapelet lengths as fractions of the shortest series.
  std::vector<double> length_fractions = {0.1, 0.2, 0.3, 0.45};
  std::size_t sax_word_length = 16;  ///< PAA segments per word
  int alphabet = 4;                  ///< SAX cardinality
  std::size_t projection_rounds = 10;
  std::size_t mask_size = 3;         ///< masked positions per round
  std::size_t top_k = 10;            ///< candidates scored exactly
  std::size_t starts_per_series = 20;  ///< sampling stride control
  std::size_t max_depth = 8;
  std::size_t min_node_size = 2;
  std::uint64_t seed = 42;
};

class FastShapelets : public Classifier {
 public:
  explicit FastShapelets(FastShapeletsOptions options = {})
      : options_(options) {}

  void Train(const ts::Dataset& train) override;
  int Classify(ts::SeriesView series) const override;
  std::string Name() const override { return "FS"; }

  /// Number of internal (shapelet) nodes in the learned tree.
  std::size_t num_shapelet_nodes() const;

  /// The shapelet at the tree root (empty before Train or for pure data).
  const ts::Series& root_shapelet() const;

 private:
  struct Node {
    bool leaf = true;
    int label = 0;
    ts::Series shapelet;  // z-normalized
    /// This node's pattern slot in `classify_matcher_`.
    std::size_t slot = 0;
    double threshold = 0.0;
    std::unique_ptr<Node> left;   // distance <= threshold
    std::unique_ptr<Node> right;  // distance > threshold
  };

  FastShapeletsOptions options_;
  std::unique_ptr<Node> root_;
  /// Every internal node's shapelet, flattened into one SoA store:
  /// Classify runs a single batched seeded sweep instead of one scan per
  /// node on the root-to-leaf path, and the tree walk reads per-node
  /// found-ness. Seeds are nextafter(threshold, +inf) — `distance <=
  /// threshold` is exactly `distance < nextafter(threshold, +inf)`, so
  /// the seeded scan's found-ness answers each node's routing test.
  distance::BatchMatcher classify_matcher_;
  std::vector<double> classify_seeds_;
};

}  // namespace rpm::baselines

#endif  // RPM_BASELINES_FAST_SHAPELETS_H_
