// Bag-of-Patterns (Lin & Li 2009), the direct predecessor of SAX-VSM and
// the natural ablation anchor for it: each series becomes a histogram of
// its SAX words (same discretization substrate, no tf*idf class
// aggregation), classified by 1-NN over histogram distance. Comparing BOP
// and SAX-VSM isolates the contribution of the tf*idf class weighting.

#ifndef RPM_BASELINES_BAG_OF_PATTERNS_H_
#define RPM_BASELINES_BAG_OF_PATTERNS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/classifier.h"
#include "sax/sax.h"

namespace rpm::baselines {

struct BagOfPatternsOptions {
  sax::SaxOptions sax;
  /// Histogram distance: true = cosine dissimilarity, false = Euclidean.
  bool cosine = true;
};

class BagOfPatterns : public Classifier {
 public:
  explicit BagOfPatterns(BagOfPatternsOptions options = {})
      : options_(options) {}

  void Train(const ts::Dataset& train) override;
  int Classify(ts::SeriesView series) const override;
  std::string Name() const override { return "BOP"; }

 private:
  using Bag = std::unordered_map<std::string, double>;

  Bag MakeBag(ts::SeriesView series) const;
  double BagDistance(const Bag& a, const Bag& b) const;

  BagOfPatternsOptions options_;
  std::vector<Bag> bags_;
  std::vector<int> labels_;
};

}  // namespace rpm::baselines

#endif  // RPM_BASELINES_BAG_OF_PATTERNS_H_
