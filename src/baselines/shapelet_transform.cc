#include "baselines/shapelet_transform.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "core/phase_profile.h"
#include "distance/matcher.h"
#include "ts/parallel.h"
#include "ts/znorm.h"

namespace rpm::baselines {
namespace {

double Entropy(const std::map<int, std::size_t>& hist, std::size_t total) {
  double h = 0.0;
  for (const auto& [label, count] : hist) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

// Best information gain over all split points of (distance, label) pairs.
double BestInfoGain(std::vector<std::pair<double, int>> dist,
                    const std::map<int, std::size_t>& hist) {
  std::sort(dist.begin(), dist.end());
  const double h_node = Entropy(hist, dist.size());
  double best = 0.0;
  std::map<int, std::size_t> left;
  for (std::size_t split = 1; split < dist.size(); ++split) {
    ++left[dist[split - 1].second];
    if (dist[split].first == dist[split - 1].first) continue;
    std::map<int, std::size_t> right;
    for (const auto& [label, count] : hist) {
      const auto it = left.find(label);
      right[label] = count - (it == left.end() ? 0 : it->second);
    }
    const double nl = static_cast<double>(split);
    const double nr = static_cast<double>(dist.size() - split);
    const double n = nl + nr;
    const double gain =
        h_node - (nl / n * Entropy(left, split) +
                  nr / n * Entropy(right, dist.size() - split));
    best = std::max(best, gain);
  }
  return best;
}

struct ScoredCandidate {
  double gain = 0.0;
  std::size_t series = 0;
  std::size_t pos = 0;
  std::size_t length = 0;
};

}  // namespace

void ShapeletTransform::Train(const ts::Dataset& train) {
  if (train.empty()) {
    throw std::invalid_argument(
        "ShapeletTransform::Train: empty training set");
  }
  shapelets_.clear();
  matcher_ = distance::BatchMatcher{};

  std::map<int, std::size_t> hist;
  for (const auto& inst : train) ++hist[inst.label];
  // Majority label doubles as the degenerate fallback.
  lone_label_ = hist.begin()->first;
  for (const auto& [label, count] : hist) {
    if (count > hist.at(lone_label_)) lone_label_ = label;
  }
  trained_ = true;
  if (hist.size() == 1) return;

  // Score sampled candidates by whole-train information gain. Every
  // candidate scans every training series, so the candidates are
  // gathered into one SoA pattern store and each series is swept ONCE
  // for all of them (window moments shared bucket-wide) instead of
  // running K x N individual scans; the distances are bit-identical to
  // the per-pattern path, so the gains — and the selected shapelets —
  // are unchanged.
  std::vector<distance::SeriesContext> train_ctx;
  train_ctx.reserve(train.size());
  for (const auto& inst : train) train_ctx.emplace_back(inst.values);

  const std::size_t min_len = train.MinLength();
  std::vector<ScoredCandidate> scored;
  {
    core::ScopedPhaseTimer scan_timer(core::PhaseProfile::kShapelets);
    std::vector<ScoredCandidate> sampled;  // gain filled after the sweep
    distance::BatchMatcher cand_matcher;
    for (double frac : options_.length_fractions) {
      const auto len = static_cast<std::size_t>(
          std::lround(frac * static_cast<double>(min_len)));
      if (len < 4) continue;
      for (std::size_t s = 0; s < train.size(); ++s) {
        const auto& values = train[s].values;
        if (values.size() < len) continue;
        const std::size_t span = values.size() - len;
        const std::size_t stride =
            std::max<std::size_t>(1, span / options_.starts_per_series);
        for (std::size_t p = 0; p <= span; p += stride) {
          ts::Series cand(
              values.begin() + static_cast<std::ptrdiff_t>(p),
              values.begin() + static_cast<std::ptrdiff_t>(p + len));
          ts::ZNormalizeInPlace(cand);
          cand_matcher.Add(cand);
          sampled.push_back({0.0, s, p, len});
        }
      }
    }

    // Candidate x series distance matrix: one batched MatchAll per
    // training series (series sharded across the thread pool — each
    // worker writes its own column).
    const std::size_t num_cands = cand_matcher.size();
    std::vector<double> dist_matrix(num_cands * train.size());
    ts::ParallelFor(train.size(), ts::DefaultThreads(), [&](std::size_t i) {
      static thread_local distance::MatchScratch scratch;
      static thread_local std::vector<distance::BestMatch> matches;
      cand_matcher.MatchAll(train_ctx[i], &scratch, &matches);
      for (std::size_t c = 0; c < num_cands; ++c) {
        dist_matrix[c * train.size() + i] = matches[c].distance;
      }
    });

    scored.reserve(num_cands);
    for (std::size_t c = 0; c < num_cands; ++c) {
      std::vector<std::pair<double, int>> dist;
      dist.reserve(train.size());
      for (std::size_t i = 0; i < train.size(); ++i) {
        dist.emplace_back(dist_matrix[c * train.size() + i],
                          train[i].label);
      }
      ScoredCandidate sc = sampled[c];
      sc.gain = BestInfoGain(std::move(dist), hist);
      scored.push_back(sc);
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              return a.gain > b.gain;
            });

  // Greedy selection with self-similarity pruning.
  struct Claimed {
    std::size_t series;
    std::size_t lo;
    std::size_t hi;
  };
  std::vector<Claimed> claimed;
  for (const auto& c : scored) {
    if (shapelets_.size() >= options_.num_shapelets) break;
    if (c.gain <= 0.0) break;
    if (options_.prune_self_similar) {
      bool overlaps = false;
      for (const auto& cl : claimed) {
        if (cl.series == c.series && c.pos < cl.hi &&
            cl.lo < c.pos + c.length) {
          overlaps = true;
          break;
        }
      }
      if (overlaps) continue;
    }
    const auto& values = train[c.series].values;
    ts::Series shapelet(
        values.begin() + static_cast<std::ptrdiff_t>(c.pos),
        values.begin() + static_cast<std::ptrdiff_t>(c.pos + c.length));
    ts::ZNormalizeInPlace(shapelet);
    matcher_.Add(shapelet);
    shapelets_.push_back(std::move(shapelet));
    claimed.push_back({c.series, c.pos, c.pos + c.length});
  }
  if (shapelets_.empty()) return;  // Majority fallback stays in force.

  // Transform and fit the downstream classifier.
  ml::FeatureDataset features;
  for (const auto& inst : train) {
    features.Add(Transform(inst.values), inst.label);
  }
  svm_ = ml::SvmClassifier(options_.svm);
  svm_.Train(features);
}

std::vector<double> ShapeletTransform::Transform(
    ts::SeriesView series) const {
  std::vector<double> row;
  row.reserve(shapelets_.size());
  const distance::SeriesContext ctx(series);
  for (const auto& m : matcher_.MatchAll(ctx)) {
    row.push_back(m.found() ? m.distance : 1e6);
  }
  return row;
}

int ShapeletTransform::Classify(ts::SeriesView series) const {
  if (!trained_) {
    throw std::logic_error("ShapeletTransform::Classify before Train");
  }
  if (shapelets_.empty()) return lone_label_;
  return svm_.Predict(Transform(series));
}

}  // namespace rpm::baselines
