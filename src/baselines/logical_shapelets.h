// Logical Shapelets (Mueen, Keogh & Young 2011), cited in the paper's
// related work (Section 2.2: "an augmented, more expressive shapelet
// representation based on conjunctions or disjunctions of shapelets").
//
// This implementation keeps the decision-tree skeleton of the original
// shapelet classifier but lets every internal node test a *logical*
// predicate over up to two shapelets:
//     d(s1, T) <= t1  AND  d(s2, T) <= t2
//     d(s1, T) <= t1  OR   d(s2, T) <= t2
// A node first finds the best single shapelet by information gain, then
// tries to extend it with a second shapelet under both connectives and
// keeps whichever split gains the most.

#ifndef RPM_BASELINES_LOGICAL_SHAPELETS_H_
#define RPM_BASELINES_LOGICAL_SHAPELETS_H_

#include <memory>
#include <vector>

#include "baselines/classifier.h"

namespace rpm::baselines {

struct LogicalShapeletsOptions {
  std::vector<double> length_fractions = {0.15, 0.3, 0.45};
  std::size_t starts_per_series = 8;
  /// Second-shapelet candidates tried when extending a node (the top-k by
  /// single-shapelet gain).
  std::size_t combine_top_k = 6;
  std::size_t max_depth = 6;
  std::size_t min_node_size = 2;
};

class LogicalShapelets : public Classifier {
 public:
  explicit LogicalShapelets(LogicalShapeletsOptions options = {})
      : options_(options) {}

  void Train(const ts::Dataset& train) override;
  int Classify(ts::SeriesView series) const override;
  std::string Name() const override { return "Logical"; }

  /// Internal nodes that use a two-shapelet (AND/OR) predicate.
  std::size_t num_logical_nodes() const;
  std::size_t num_shapelet_nodes() const;

 private:
  enum class Connective { kSingle, kAnd, kOr };
  struct Node {
    bool leaf = true;
    int label = 0;
    Connective connective = Connective::kSingle;
    ts::Series shapelet1;
    double threshold1 = 0.0;
    ts::Series shapelet2;  // empty for kSingle
    double threshold2 = 0.0;
    std::unique_ptr<Node> left;   // predicate true
    std::unique_ptr<Node> right;  // predicate false
  };

  bool Predicate(const Node& node, ts::SeriesView series) const;

  LogicalShapeletsOptions options_;
  std::unique_ptr<Node> root_;
};

}  // namespace rpm::baselines

#endif  // RPM_BASELINES_LOGICAL_SHAPELETS_H_
