// 1-NN with Euclidean distance (NN-ED, Table 1): the simplest credible
// time-series classifier and the standard strawman. Early abandoning
// against the best-so-far keeps the scan cheap.

#ifndef RPM_BASELINES_NN_EUCLIDEAN_H_
#define RPM_BASELINES_NN_EUCLIDEAN_H_

#include "baselines/classifier.h"

namespace rpm::baselines {

class NnEuclidean : public Classifier {
 public:
  void Train(const ts::Dataset& train) override { train_ = train; }
  int Classify(ts::SeriesView series) const override;
  std::string Name() const override { return "NN-ED"; }

 private:
  ts::Dataset train_;
};

}  // namespace rpm::baselines

#endif  // RPM_BASELINES_NN_EUCLIDEAN_H_
