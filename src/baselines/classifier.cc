#include "baselines/classifier.h"

#include "ml/metrics.h"

namespace rpm::baselines {

std::vector<int> Classifier::ClassifyAll(const ts::Dataset& test) const {
  std::vector<int> out;
  out.reserve(test.size());
  for (const auto& inst : test) out.push_back(Classify(inst.values));
  return out;
}

double Classifier::Evaluate(const ts::Dataset& test) const {
  std::vector<int> truth;
  truth.reserve(test.size());
  for (const auto& inst : test) truth.push_back(inst.label);
  return ml::ErrorRate(ClassifyAll(test), truth);
}

}  // namespace rpm::baselines
