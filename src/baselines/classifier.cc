#include "baselines/classifier.h"

#include "ml/metrics.h"
#include "ts/parallel.h"

namespace rpm::baselines {

std::vector<int> Classifier::ClassifyAll(const ts::Dataset& test) const {
  std::vector<int> out;
  out.reserve(test.size());
  for (const auto& inst : test) out.push_back(Classify(inst.values));
  return out;
}

std::vector<int> Classifier::ClassifyAllParallel(
    const ts::Dataset& test, std::size_t num_threads) const {
  std::vector<int> out(test.size(), 0);
  ts::ParallelFor(test.size(), num_threads, [&](std::size_t i) {
    out[i] = Classify(test[i].values);
  });
  return out;
}

double Classifier::Evaluate(const ts::Dataset& test) const {
  std::vector<int> truth;
  truth.reserve(test.size());
  for (const auto& inst : test) truth.push_back(inst.label);
  return ml::ErrorRate(ClassifyAll(test), truth);
}

}  // namespace rpm::baselines
