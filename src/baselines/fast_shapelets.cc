#include "baselines/fast_shapelets.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "core/phase_profile.h"
#include "distance/matcher.h"
#include "sax/sax.h"
#include "ts/parallel.h"
#include "ts/rng.h"
#include "ts/znorm.h"

namespace rpm::baselines {
namespace {

// One sampled subsequence candidate.
struct Candidate {
  std::size_t series = 0;  // index into the node's instance list
  std::size_t pos = 0;
  std::size_t length = 0;
  std::string word;
  double score = 0.0;
};

double Entropy(const std::map<int, std::size_t>& hist, std::size_t total) {
  double h = 0.0;
  for (const auto& [label, count] : hist) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

void FastShapelets::Train(const ts::Dataset& train) {
  if (train.empty()) {
    throw std::invalid_argument("FastShapelets::Train: empty training set");
  }
  ts::Rng rng(options_.seed);

  // Prefix-sum contexts of every training series, shared by all shapelet
  // evaluations across the whole tree build.
  std::vector<distance::SeriesContext> train_ctx;
  train_ctx.reserve(train.size());
  for (const auto& inst : train) train_ctx.emplace_back(inst.values);

  // Recursive node builder over index subsets.
  auto build = [&](auto&& self, std::vector<std::size_t> idx,
                   std::size_t depth) -> std::unique_ptr<Node> {
    auto node = std::make_unique<Node>();
    std::map<int, std::size_t> hist;
    for (std::size_t i : idx) ++hist[train[i].label];
    // Majority label.
    node->label = hist.begin()->first;
    for (const auto& [label, count] : hist) {
      if (count > hist[node->label]) node->label = label;
    }
    if (hist.size() == 1 || depth >= options_.max_depth ||
        idx.size() < 2 * options_.min_node_size) {
      return node;
    }

    // --- Candidate sampling + SAX words. ---
    const std::size_t min_len = [&] {
      std::size_t m = train[idx[0]].values.size();
      for (std::size_t i : idx) m = std::min(m, train[i].values.size());
      return m;
    }();
    std::vector<Candidate> cands;
    for (double frac : options_.length_fractions) {
      const auto len = static_cast<std::size_t>(
          std::lround(frac * static_cast<double>(min_len)));
      if (len < 4) continue;
      for (std::size_t s = 0; s < idx.size(); ++s) {
        const auto& values = train[idx[s]].values;
        if (values.size() < len) continue;
        const std::size_t span = values.size() - len;
        const std::size_t stride =
            std::max<std::size_t>(1, span / options_.starts_per_series);
        for (std::size_t p = 0; p <= span; p += stride) {
          Candidate c;
          c.series = s;
          c.pos = p;
          c.length = len;
          ts::Series z(values.begin() + static_cast<std::ptrdiff_t>(p),
                       values.begin() + static_cast<std::ptrdiff_t>(p + len));
          ts::ZNormalizeInPlace(z);
          c.word = sax::SaxWord(
              z, std::min(options_.sax_word_length, len), options_.alphabet);
          cands.push_back(std::move(c));
        }
      }
    }
    if (cands.empty()) return node;

    // --- Random projection rounds: collision counting per class. ---
    const std::vector<int> class_labels = [&] {
      std::vector<int> out;
      for (const auto& [label, count] : hist) out.push_back(label);
      return out;
    }();
    std::map<int, std::size_t> class_index;
    for (std::size_t c = 0; c < class_labels.size(); ++c) {
      class_index[class_labels[c]] = c;
    }
    std::map<int, std::size_t> class_sizes = hist;

    for (std::size_t round = 0; round < options_.projection_rounds; ++round) {
      // Random mask positions.
      std::vector<std::size_t> mask;
      const std::size_t word_len = cands.front().word.size();
      for (std::size_t m = 0; m < options_.mask_size; ++m) {
        mask.push_back(static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(word_len) - 1)));
      }
      struct WordStats {
        std::vector<std::size_t> per_class;
        std::size_t last_series = static_cast<std::size_t>(-1);
      };
      std::unordered_map<std::string, WordStats> table;
      std::vector<std::string> masked(cands.size());
      for (std::size_t ci = 0; ci < cands.size(); ++ci) {
        std::string w = cands[ci].word;
        for (std::size_t m : mask) {
          if (m < w.size()) w[m] = '*';
        }
        masked[ci] = w;
        WordStats& st = table[w];
        if (st.per_class.empty()) st.per_class.resize(class_labels.size(), 0);
        // Count distinct series per word (candidates arrive grouped by
        // series because of the sampling order).
        if (st.last_series != cands[ci].series) {
          st.last_series = cands[ci].series;
          ++st.per_class[class_index[train[idx[cands[ci].series]].label]];
        }
      }
      // Distinguishing power: spread of per-class presence fractions.
      for (std::size_t ci = 0; ci < cands.size(); ++ci) {
        const WordStats& st = table[masked[ci]];
        double lo = 1.0;
        double hi = 0.0;
        for (std::size_t c = 0; c < class_labels.size(); ++c) {
          const double frac =
              static_cast<double>(st.per_class[c]) /
              static_cast<double>(class_sizes[class_labels[c]]);
          lo = std::min(lo, frac);
          hi = std::max(hi, frac);
        }
        cands[ci].score += hi - lo;
      }
    }

    // --- Exact evaluation of the top-k candidates. ---
    std::vector<std::size_t> order(cands.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    const std::size_t k = std::min(options_.top_k, order.size());
    std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                      order.end(), [&](std::size_t a, std::size_t b) {
                        return cands[a].score > cands[b].score;
                      });

    const double h_node = Entropy(hist, idx.size());
    double best_gain = -1.0;
    ts::Series best_shapelet;
    double best_threshold = 0.0;
    std::size_t best_oi = 0;
    // Candidate x series distance matrix; the winner's row also routes
    // the split below without re-scanning the node series.
    std::vector<double> dist_matrix;
    // Scoped per node, closed before the recursion below — nested nodes
    // charge their own scans, so the phase counter never double-counts.
    {
      core::ScopedPhaseTimer scan_timer(core::PhaseProfile::kShapelets);
      // One SoA store over the top-k survivors: each node series is
      // swept once for all of them (window moments shared bucket-wide)
      // instead of k individual scans. Distances are bit-identical to
      // the per-pattern path, so gains and splits are unchanged.
      distance::BatchMatcher eval_matcher;
      std::vector<ts::Series> top_shapelets(k);
      for (std::size_t oi = 0; oi < k; ++oi) {
        const Candidate& c = cands[order[oi]];
        const auto& src = train[idx[c.series]].values;
        ts::Series shapelet(
            src.begin() + static_cast<std::ptrdiff_t>(c.pos),
            src.begin() + static_cast<std::ptrdiff_t>(c.pos + c.length));
        ts::ZNormalizeInPlace(shapelet);
        eval_matcher.Add(shapelet);
        top_shapelets[oi] = std::move(shapelet);
      }
      dist_matrix.resize(k * idx.size());
      ts::ParallelFor(idx.size(), ts::DefaultThreads(), [&](std::size_t t) {
        static thread_local distance::MatchScratch scratch;
        static thread_local std::vector<distance::BestMatch> matches;
        eval_matcher.MatchAll(train_ctx[idx[t]], &scratch, &matches);
        for (std::size_t oi = 0; oi < k; ++oi) {
          dist_matrix[oi * idx.size() + t] = matches[oi].distance;
        }
      });

      for (std::size_t oi = 0; oi < k; ++oi) {
        // Distances from every node series to the candidate.
        std::vector<std::pair<double, int>> dist;  // (distance, label)
        dist.reserve(idx.size());
        for (std::size_t t = 0; t < idx.size(); ++t) {
          dist.emplace_back(dist_matrix[oi * idx.size() + t],
                            train[idx[t]].label);
        }
        std::sort(dist.begin(), dist.end());
        // Scan split points.
        std::map<int, std::size_t> left_hist;
        for (std::size_t split = 1; split < dist.size(); ++split) {
          ++left_hist[dist[split - 1].second];
          if (dist[split].first == dist[split - 1].first) continue;
          std::map<int, std::size_t> right_hist;
          for (const auto& [label, count] : hist) {
            const auto it = left_hist.find(label);
            const std::size_t l = it == left_hist.end() ? 0 : it->second;
            right_hist[label] = count - l;
          }
          const double hl = Entropy(left_hist, split);
          const double hr = Entropy(right_hist, dist.size() - split);
          const double nl = static_cast<double>(split);
          const double nr = static_cast<double>(dist.size() - split);
          const double n = nl + nr;
          const double gain = h_node - (nl / n * hl + nr / n * hr);
          if (gain > best_gain) {
            best_gain = gain;
            best_shapelet = top_shapelets[oi];
            best_oi = oi;
            best_threshold =
                0.5 * (dist[split - 1].first + dist[split].first);
          }
        }
      }
    }
    if (best_gain <= 1e-9 || best_shapelet.empty()) return node;

    // Split and recurse, routing on the winner's matrix row — those are
    // the exact distances the threshold was chosen from.
    std::vector<std::size_t> left_idx;
    std::vector<std::size_t> right_idx;
    for (std::size_t t = 0; t < idx.size(); ++t) {
      const double d = dist_matrix[best_oi * idx.size() + t];
      (d <= best_threshold ? left_idx : right_idx).push_back(idx[t]);
    }
    if (left_idx.empty() || right_idx.empty()) return node;
    node->leaf = false;
    node->shapelet = std::move(best_shapelet);
    node->threshold = best_threshold;
    node->left = self(self, std::move(left_idx), depth + 1);
    node->right = self(self, std::move(right_idx), depth + 1);
    return node;
  };

  std::vector<std::size_t> all(train.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  root_ = build(build, std::move(all), 0);

  // Flatten the tree's shapelets into one SoA store. Every node's
  // routing test `d <= threshold` is exactly `d < nextafter(threshold,
  // +inf)`, so a single cutoff-seeded sweep decides all of them at once
  // — Classify reads found-ness per node instead of scanning per level.
  classify_matcher_ = distance::BatchMatcher{};
  classify_seeds_.clear();
  std::vector<Node*> stack;
  if (root_ != nullptr) stack.push_back(root_.get());
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (n->leaf) continue;
    n->slot = classify_matcher_.size();
    classify_matcher_.Add(n->shapelet);
    classify_seeds_.push_back(std::nextafter(
        n->threshold, std::numeric_limits<double>::infinity()));
    stack.push_back(n->left.get());
    stack.push_back(n->right.get());
  }
}

int FastShapelets::Classify(ts::SeriesView series) const {
  if (root_ == nullptr) {
    throw std::logic_error("FastShapelets::Classify before Train");
  }
  const Node* node = root_.get();
  if (node->leaf) return node->label;
  // One batched seeded sweep over every tree shapelet (shared window
  // moments, first-improvement abandon against each node's threshold
  // seed); the walk below then just reads each visited node's
  // found-ness: found <=> best distance < nextafter(threshold, +inf)
  // <=> distance <= threshold, the pre-batched routing test.
  const distance::SeriesContext ctx(series);
  distance::MatchScratch scratch;
  std::vector<distance::BestMatch> matches;
  classify_matcher_.MatchAllSeeded(ctx, &scratch, classify_seeds_,
                                   &matches);
  while (!node->leaf) {
    node = matches[node->slot].found() ? node->left.get()
                                       : node->right.get();
  }
  return node->label;
}

std::size_t FastShapelets::num_shapelet_nodes() const {
  std::size_t count = 0;
  std::vector<const Node*> stack;
  if (root_ != nullptr) stack.push_back(root_.get());
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->leaf) continue;
    ++count;
    stack.push_back(n->left.get());
    stack.push_back(n->right.get());
  }
  return count;
}

const ts::Series& FastShapelets::root_shapelet() const {
  static const ts::Series kEmpty;
  return root_ != nullptr ? root_->shapelet : kEmpty;
}

}  // namespace rpm::baselines
