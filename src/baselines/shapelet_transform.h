// Shapelet Transform (Lines, Davis, Hills & Bagnall 2012), discussed in
// the paper's related work (Section 2.2): find the K best shapelets
// globally by information gain, transform every series into the K-vector
// of best-match distances, and hand the result to a conventional
// classifier (the SVM substrate here). RPM's transform step is the
// class-specific, grammar-driven analogue of this method, which makes ST
// the natural extra comparator.

#ifndef RPM_BASELINES_SHAPELET_TRANSFORM_H_
#define RPM_BASELINES_SHAPELET_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "baselines/classifier.h"
#include "distance/matcher.h"
#include "ml/svm.h"

namespace rpm::baselines {

struct ShapeletTransformOptions {
  /// Number of shapelets kept (the K features of the transform).
  std::size_t num_shapelets = 10;
  /// Candidate lengths as fractions of the shortest series.
  std::vector<double> length_fractions = {0.15, 0.3, 0.45};
  /// Sampled start positions per series per length.
  std::size_t starts_per_series = 12;
  /// Self-similarity pruning: candidates from the same series whose
  /// positions overlap an already-accepted shapelet are skipped.
  bool prune_self_similar = true;
  ml::SvmOptions svm;
  std::uint64_t seed = 5;
};

class ShapeletTransform : public Classifier {
 public:
  explicit ShapeletTransform(ShapeletTransformOptions options = {})
      : options_(options) {}

  void Train(const ts::Dataset& train) override;
  int Classify(ts::SeriesView series) const override;
  std::string Name() const override { return "ST"; }

  /// The selected shapelets (z-normalized), best first.
  const std::vector<ts::Series>& shapelets() const { return shapelets_; }

 private:
  std::vector<double> Transform(ts::SeriesView series) const;

  ShapeletTransformOptions options_;
  bool trained_ = false;
  std::vector<ts::Series> shapelets_;
  /// Matching contexts of the selected shapelets, built once after
  /// selection and reused by every Transform call.
  distance::BatchMatcher matcher_;
  ml::SvmClassifier svm_{};
  int lone_label_ = 0;  // majority / degenerate fallback
};

}  // namespace rpm::baselines

#endif  // RPM_BASELINES_SHAPELET_TRANSFORM_H_
