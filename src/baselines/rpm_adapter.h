// Adapter exposing the RPM classifier through the common baseline
// interface so the benchmark harness can sweep all six methods uniformly.

#ifndef RPM_BASELINES_RPM_ADAPTER_H_
#define RPM_BASELINES_RPM_ADAPTER_H_

#include "baselines/classifier.h"
#include "core/classifier.h"

namespace rpm::baselines {

class RpmAdapter : public Classifier {
 public:
  explicit RpmAdapter(core::RpmOptions options = {}) : clf_(options) {}

  void Train(const ts::Dataset& train) override { clf_.Train(train); }
  int Classify(ts::SeriesView series) const override {
    return clf_.Classify(series);
  }
  std::vector<int> ClassifyAll(const ts::Dataset& test) const override {
    // Delegate so the pattern contexts are built once per batch instead
    // of once per series.
    return clf_.ClassifyAll(test);
  }
  std::string Name() const override { return "RPM"; }

  const core::RpmClassifier& classifier() const { return clf_; }
  core::RpmClassifier& classifier() { return clf_; }

 private:
  core::RpmClassifier clf_;
};

}  // namespace rpm::baselines

#endif  // RPM_BASELINES_RPM_ADAPTER_H_
