// Learning Shapelets (Grabocka et al. 2014, Table 1/2 comparator — "the
// best accuracy so far" per Section 5.1): K shapelets per length scale
// are optimized jointly with a multinomial logistic model by gradient
// descent; a series is embedded as the vector of *soft*-minimum distances
// to the shapelets, which makes the whole objective differentiable. It is
// the slow-but-accurate pole of Table 2.

#ifndef RPM_BASELINES_LEARNING_SHAPELETS_H_
#define RPM_BASELINES_LEARNING_SHAPELETS_H_

#include <cstdint>
#include <vector>

#include "baselines/classifier.h"

namespace rpm::baselines {

struct LearningShapeletsOptions {
  /// Shapelets per length scale; 0 = auto (2 per class, min 4).
  std::size_t shapelets_per_scale = 0;
  /// Shapelet lengths as fractions of series length.
  std::vector<double> length_fractions = {0.125, 0.25};
  double learning_rate = 0.1;
  double lambda = 0.01;            ///< L2 on the logistic weights
  std::size_t max_epochs = 300;
  double softmin_alpha = -30.0;    ///< sharpness of the soft minimum
  std::uint64_t seed = 17;
};

class LearningShapelets : public Classifier {
 public:
  explicit LearningShapelets(LearningShapeletsOptions options = {})
      : options_(options) {}

  void Train(const ts::Dataset& train) override;
  int Classify(ts::SeriesView series) const override;
  std::string Name() const override { return "LS"; }

  const std::vector<ts::Series>& shapelets() const { return shapelets_; }

 private:
  /// Soft-min distance features of one series against all shapelets.
  std::vector<double> Features(ts::SeriesView series) const;

  LearningShapeletsOptions options_;
  std::vector<ts::Series> shapelets_;
  std::vector<int> labels_;                     // class id -> label
  std::vector<std::vector<double>> weights_;    // [class][feature+bias]
};

}  // namespace rpm::baselines

#endif  // RPM_BASELINES_LEARNING_SHAPELETS_H_
