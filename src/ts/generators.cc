#include "ts/generators.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "ts/dataset_io.h"
#include "ts/rng.h"
#include "ts/znorm.h"

namespace rpm::ts {
namespace {

constexpr double kPi = std::numbers::pi;

// Builds a split by drawing `train_per_class` + `test_per_class` instances
// per label from `draw(label, rng)` and z-normalizing each instance.
DatasetSplit BuildSplit(const std::string& name,
                        const std::vector<int>& labels,
                        std::size_t train_per_class,
                        std::size_t test_per_class, std::uint64_t seed,
                        const std::function<Series(int, Rng&)>& draw) {
  DatasetSplit split;
  split.name = name;
  Rng rng(seed);
  for (int label : labels) {
    for (std::size_t i = 0; i < train_per_class; ++i) {
      Series s = draw(label, rng);
      ZNormalizeInPlace(s);
      split.train.Add(label, std::move(s));
    }
  }
  for (int label : labels) {
    for (std::size_t i = 0; i < test_per_class; ++i) {
      Series s = draw(label, rng);
      ZNormalizeInPlace(s);
      split.test.Add(label, std::move(s));
    }
  }
  return split;
}

// Adds a Gaussian bump of the given center/width/amplitude to `s`.
void AddGaussianBump(Series& s, double center, double width, double amp) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double d = (static_cast<double>(i) - center) / width;
    s[i] += amp * std::exp(-0.5 * d * d);
  }
}

// Smooths `s` with a centered moving average of half-width `hw`.
Series Smooth(const Series& s, std::size_t hw) {
  if (hw == 0 || s.empty()) return s;
  Series out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const std::size_t lo = i >= hw ? i - hw : 0;
    const std::size_t hi = std::min(s.size() - 1, i + hw);
    double acc = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) acc += s[j];
    out[i] = acc / static_cast<double>(hi - lo + 1);
  }
  return out;
}

}  // namespace

DatasetSplit MakeCbf(std::size_t train_per_class, std::size_t test_per_class,
                     std::size_t length, std::uint64_t seed) {
  auto draw = [length](int label, Rng& rng) {
    Series s(length);
    const double m = static_cast<double>(length);
    // Saito's recipe scaled to the requested length (original a in [16,32],
    // b-a in [32,96] for length 128).
    const double a = rng.Uniform(m * 0.125, m * 0.25);
    const double b = a + rng.Uniform(m * 0.25, m * 0.75);
    const double eta = rng.Gaussian(0.0, 1.0);
    for (std::size_t t = 0; t < length; ++t) {
      const double x = static_cast<double>(t);
      const double chi = (x >= a && x <= b) ? 1.0 : 0.0;
      double shape = 0.0;
      switch (label) {
        case 1:  // Cylinder: plateau.
          shape = (6.0 + eta) * chi;
          break;
        case 2:  // Bell: increasing ramp then drop.
          shape = (6.0 + eta) * chi * (x - a) / (b - a);
          break;
        default:  // Funnel: sudden rise then decreasing ramp.
          shape = (6.0 + eta) * chi * (b - x) / (b - a);
          break;
      }
      s[t] = shape + rng.Gaussian(0.0, 1.0);
    }
    return s;
  };
  return BuildSplit("CBF", {1, 2, 3}, train_per_class, test_per_class, seed,
                    draw);
}

DatasetSplit MakeTwoPatterns(std::size_t train_per_class,
                             std::size_t test_per_class, std::size_t length,
                             std::uint64_t seed) {
  // Each instance embeds two step events; the class is the ordered pair of
  // event types: 1=(UD,UD) 2=(UD,DU) 3=(DU,UD) 4=(DU,DU).
  auto draw = [length](int label, Rng& rng) {
    Series s(length);
    for (auto& v : s) v = rng.Gaussian(0.0, 0.35);
    const bool first_ud = (label == 1 || label == 2);
    const bool second_ud = (label == 1 || label == 3);
    const std::size_t ev_len = std::max<std::size_t>(8, length / 8);
    const auto max1 = static_cast<std::int64_t>(length / 2 - ev_len - 1);
    const auto pos1 = static_cast<std::size_t>(rng.UniformInt(0, max1));
    const auto lo2 = static_cast<std::int64_t>(length / 2);
    const auto hi2 = static_cast<std::int64_t>(length - ev_len - 1);
    const auto pos2 = static_cast<std::size_t>(rng.UniformInt(lo2, hi2));
    auto stamp = [&](std::size_t pos, bool up_down) {
      const std::size_t half = ev_len / 2;
      for (std::size_t i = 0; i < ev_len; ++i) {
        const double level = (i < half) == up_down ? 5.0 : -5.0;
        s[pos + i] += level;
      }
    };
    stamp(pos1, first_ud);
    stamp(pos2, second_ud);
    return s;
  };
  return BuildSplit("TwoPatterns", {1, 2, 3, 4}, train_per_class,
                    test_per_class, seed, draw);
}

DatasetSplit MakeSyntheticControl(std::size_t train_per_class,
                                  std::size_t test_per_class,
                                  std::size_t length, std::uint64_t seed) {
  auto draw = [length](int label, Rng& rng) {
    Series s(length);
    const double m = static_cast<double>(length);
    const double shift_point = rng.Uniform(m / 3.0, 2.0 * m / 3.0);
    const double amp = rng.Uniform(10.0, 15.0);
    const double period = rng.Uniform(10.0, 15.0);
    const double grad = rng.Uniform(0.2, 0.5);
    const double shift = rng.Uniform(7.5, 20.0);
    for (std::size_t t = 0; t < length; ++t) {
      const double x = static_cast<double>(t);
      double v = 30.0 + rng.Gaussian(0.0, 2.0);
      switch (label) {
        case 1:  // Normal.
          break;
        case 2:  // Cyclic.
          v += amp * std::sin(2.0 * kPi * x / period);
          break;
        case 3:  // Increasing trend.
          v += grad * x;
          break;
        case 4:  // Decreasing trend.
          v -= grad * x;
          break;
        case 5:  // Upward shift.
          v += (x >= shift_point) ? shift : 0.0;
          break;
        default:  // Downward shift.
          v -= (x >= shift_point) ? shift : 0.0;
          break;
      }
      s[t] = v;
    }
    return s;
  };
  return BuildSplit("SyntheticControl", {1, 2, 3, 4, 5, 6}, train_per_class,
                    test_per_class, seed, draw);
}

DatasetSplit MakeGunPoint(std::size_t train_per_class,
                          std::size_t test_per_class, std::size_t length,
                          std::uint64_t seed) {
  auto draw = [length](int label, Rng& rng) {
    Series s(length, 0.0);
    const double m = static_cast<double>(length);
    const double rise_start = m * rng.Uniform(0.15, 0.25);
    const double rise_end = rise_start + m * rng.Uniform(0.08, 0.14);
    const double fall_start = m * rng.Uniform(0.65, 0.75);
    const double fall_end = fall_start + m * rng.Uniform(0.08, 0.14);
    const double plateau = rng.Uniform(1.8, 2.2);
    for (std::size_t t = 0; t < length; ++t) {
      const double x = static_cast<double>(t);
      double v;
      if (x < rise_start) {
        v = 0.0;
      } else if (x < rise_end) {
        v = plateau * (x - rise_start) / (rise_end - rise_start);
      } else if (x < fall_start) {
        v = plateau;
      } else if (x < fall_end) {
        v = plateau * (fall_end - x) / (fall_end - fall_start);
      } else {
        v = 0.0;
      }
      s[t] = v;
    }
    if (label == 1) {
      // Gun class: holster-lift overshoot before the rise and dip after
      // the return — the discriminative local event.
      AddGaussianBump(s, rise_start - m * 0.05, m * 0.02,
                      rng.Uniform(0.5, 0.8));
      AddGaussianBump(s, fall_end + m * 0.05, m * 0.02,
                      -rng.Uniform(0.35, 0.6));
    }
    for (auto& v : s) v += rng.Gaussian(0.0, 0.05);
    return Smooth(s, 1);
  };
  return BuildSplit("GunPoint", {1, 2}, train_per_class, test_per_class,
                    seed, draw);
}

DatasetSplit MakeCoffee(std::size_t train_per_class,
                        std::size_t test_per_class, std::size_t length,
                        std::uint64_t seed) {
  auto draw = [length](int label, Rng& rng) {
    Series s(length, 0.0);
    const double m = static_cast<double>(length);
    // Common constituent bands (carbohydrates, lipids, ...).
    const double common_centers[] = {0.12, 0.30, 0.52, 0.80, 0.92};
    const double common_amps[] = {1.0, 1.6, 1.2, 0.9, 0.7};
    for (int b = 0; b < 5; ++b) {
      AddGaussianBump(s, common_centers[b] * m, m * 0.035,
                      common_amps[b] * rng.Uniform(0.9, 1.1));
    }
    // Discriminative caffeine / chlorogenic-acid stand-in bands: Robusta
    // (label 1) carries visibly stronger amplitudes than Arabica (label 2).
    const double caffeine = (label == 1) ? 1.5 : 0.7;
    const double chlorogenic = (label == 1) ? 1.2 : 0.5;
    AddGaussianBump(s, 0.42 * m, m * 0.02, caffeine * rng.Uniform(0.9, 1.1));
    AddGaussianBump(s, 0.66 * m, m * 0.025,
                    chlorogenic * rng.Uniform(0.9, 1.1));
    for (auto& v : s) v += rng.Gaussian(0.0, 0.02);
    return s;
  };
  return BuildSplit("Coffee", {1, 2}, train_per_class, test_per_class, seed,
                    draw);
}

DatasetSplit MakeEcg(std::size_t train_per_class, std::size_t test_per_class,
                     std::size_t length, std::uint64_t seed) {
  auto draw = [length](int label, Rng& rng) {
    Series s(length, 0.0);
    const double m = static_cast<double>(length);
    const double jitter = rng.Uniform(-0.03, 0.03) * m;
    // P wave, QRS complex (Q dip, R spike, S dip), T wave.
    AddGaussianBump(s, 0.22 * m + jitter, m * 0.035, 0.25);
    AddGaussianBump(s, 0.38 * m + jitter, m * 0.012, -0.35);
    AddGaussianBump(s, 0.42 * m + jitter, m * 0.010, 3.0);
    AddGaussianBump(s, 0.46 * m + jitter, m * 0.012, -0.8);
    const double t_amp = (label == 1) ? 0.8 : 0.35;
    const double st_level = (label == 1) ? 0.0 : 0.25;
    AddGaussianBump(s, 0.68 * m + jitter, m * 0.05, t_amp);
    // ST-segment elevation for class 2.
    for (std::size_t t = 0; t < length; ++t) {
      const double x = static_cast<double>(t);
      if (x > 0.48 * m + jitter && x < 0.62 * m + jitter) s[t] += st_level;
    }
    for (auto& v : s) v += rng.Gaussian(0.0, 0.05);
    return s;
  };
  return BuildSplit("ECGFiveDays", {1, 2}, train_per_class, test_per_class,
                    seed, draw);
}

DatasetSplit MakeTrace(std::size_t train_per_class,
                       std::size_t test_per_class, std::size_t length,
                       std::uint64_t seed) {
  // 4 classes from {step, none} x {burst, none}:
  // 1 = step only, 2 = burst only, 3 = both, 4 = neither.
  auto draw = [length](int label, Rng& rng) {
    Series s(length);
    for (auto& v : s) v = rng.Gaussian(0.0, 0.1);
    const double m = static_cast<double>(length);
    const bool has_step = (label == 1 || label == 3);
    const bool has_burst = (label == 2 || label == 3);
    if (has_step) {
      const double at = m * rng.Uniform(0.3, 0.6);
      const double width = m * 0.04;
      for (std::size_t t = 0; t < length; ++t) {
        const double x = static_cast<double>(t);
        s[t] += 2.0 / (1.0 + std::exp(-(x - at) / width));
      }
    }
    if (has_burst) {
      const double at = m * rng.Uniform(0.15, 0.7);
      const double span = m * 0.15;
      for (std::size_t t = 0; t < length; ++t) {
        const double x = static_cast<double>(t);
        if (x >= at && x < at + span) {
          s[t] += 0.8 * std::sin(2.0 * kPi * (x - at) / (span / 4.0));
        }
      }
    }
    return s;
  };
  return BuildSplit("Trace", {1, 2, 3, 4}, train_per_class, test_per_class,
                    seed, draw);
}

DatasetSplit MakeShapeOutlines(std::size_t train_per_class,
                               std::size_t test_per_class,
                               std::size_t length, std::uint64_t seed) {
  // Radial scan of a noisy regular k-gon; class c uses k = c + 2 vertices
  // (triangle, square, pentagon, hexagon). The radius profile of a regular
  // polygon as a function of angle is r(theta) = cos(pi/k) /
  // cos((theta mod 2pi/k) - pi/k).
  auto draw = [length](int label, Rng& rng) {
    const int k = label + 2;
    const double sector = 2.0 * kPi / k;
    const double scale = rng.Uniform(0.9, 1.1);
    Series s(length);
    for (std::size_t t = 0; t < length; ++t) {
      const double theta = 2.0 * kPi * static_cast<double>(t) /
                           static_cast<double>(length);
      const double local = std::fmod(theta, sector) - sector / 2.0;
      const double r = std::cos(kPi / k) / std::cos(local);
      s[t] = scale * r + rng.Gaussian(0.0, 0.01);
    }
    return Smooth(s, 1);
  };
  return BuildSplit("ShapeOutlines", {1, 2, 3, 4}, train_per_class,
                    test_per_class, seed, draw);
}

DatasetSplit MakeItalyPower(std::size_t train_per_class,
                            std::size_t test_per_class, std::size_t length,
                            std::uint64_t seed) {
  auto draw = [length](int label, Rng& rng) {
    Series s(length, 0.0);
    const double m = static_cast<double>(length);
    // Winter (1): pronounced morning + evening peaks; summer (2): flatter
    // midday-shifted profile.
    if (label == 1) {
      AddGaussianBump(s, 0.33 * m, m * 0.07, rng.Uniform(1.6, 2.0));
      AddGaussianBump(s, 0.80 * m, m * 0.08, rng.Uniform(1.8, 2.2));
    } else {
      AddGaussianBump(s, 0.45 * m, m * 0.14, rng.Uniform(1.1, 1.4));
      AddGaussianBump(s, 0.70 * m, m * 0.10, rng.Uniform(0.8, 1.1));
    }
    for (auto& v : s) v += rng.Gaussian(0.0, 0.12);
    return s;
  };
  return BuildSplit("ItalyPower", {1, 2}, train_per_class, test_per_class,
                    seed, draw);
}

DatasetSplit MakeWafer(std::size_t train_per_class,
                       std::size_t test_per_class, std::size_t length,
                       std::uint64_t seed) {
  auto draw = [length](int label, Rng& rng) {
    Series s(length, 0.0);
    const double m = static_cast<double>(length);
    // Process trace: ramp up, plateau with process wiggle, ramp down.
    const double up = m * rng.Uniform(0.1, 0.15);
    const double down = m * rng.Uniform(0.82, 0.9);
    for (std::size_t t = 0; t < length; ++t) {
      const double x = static_cast<double>(t);
      double v;
      if (x < up) {
        v = 2.0 * x / up;
      } else if (x < down) {
        v = 2.0 + 0.15 * std::sin(2.0 * kPi * (x - up) / (m * 0.2));
      } else {
        v = 2.0 * (m - x) / (m - down);
      }
      s[t] = v + rng.Gaussian(0.0, 0.06);
    }
    if (label == 2) {
      // Fault: a localized excursion somewhere in the plateau.
      const double at = rng.Uniform(up + m * 0.05, down - m * 0.05);
      const double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
      AddGaussianBump(s, at, m * 0.02, sign * rng.Uniform(1.0, 1.6));
    }
    return s;
  };
  return BuildSplit("Wafer", {1, 2}, train_per_class, test_per_class, seed,
                    draw);
}

namespace {

// One ABP strip; alarm_kind: -1 = normal, 0 = hypotension ramp,
// 1 = flatline artifact, 2 = pulse-pressure narrowing.
Series DrawAbpStrip(std::size_t length, int alarm_kind, Rng& rng) {
  Series s(length, 0.0);
  const double beat_len = rng.Uniform(28.0, 34.0);
  const double base_sys = rng.Uniform(1.8, 2.2);  // systolic amplitude
  const double base_dia = rng.Uniform(0.4, 0.6);  // diastolic level
  const double m = static_cast<double>(length);
  const double flat_start = rng.Uniform(0.35, 0.55) * m;
  const double flat_len = rng.Uniform(0.15, 0.3) * m;
  for (std::size_t t = 0; t < length; ++t) {
    const double x = static_cast<double>(t);
    const double phase = std::fmod(x, beat_len) / beat_len;
    double sys = base_sys;
    double dia = base_dia;
    switch (alarm_kind) {
      case 0:  // Hypotension: amplitude decays along the strip.
        sys *= std::max(0.25, 1.0 - 0.8 * x / m);
        break;
      case 1:  // Flatline artifact: a damped segment.
        if (x >= flat_start && x < flat_start + flat_len) {
          sys *= 0.05;
          dia *= 0.3;
        }
        break;
      case 2:  // Pulse-pressure narrowing: diastolic rises.
        dia = base_dia + 0.5 * sys * std::min(1.0, 2.0 * x / m);
        break;
      default:  // Normal strip.
        break;
    }
    // Beat morphology: fast systolic upstroke, exponential decay,
    // dicrotic notch bump.
    double v = dia;
    if (phase < 0.15) {
      v += sys * (phase / 0.15);
    } else {
      v += sys * std::exp(-(phase - 0.15) * 4.0);
      const double notch = (phase - 0.45) / 0.05;
      v += 0.15 * sys * std::exp(-0.5 * notch * notch);
    }
    s[t] = v + rng.Gaussian(0.0, 0.02);
  }
  return s;
}

}  // namespace

DatasetSplit MakeAbpAlarm(std::size_t train_per_class,
                          std::size_t test_per_class, std::size_t length,
                          std::uint64_t seed) {
  auto draw = [length](int label, Rng& rng) {
    const int alarm_kind =
        label == 2 ? static_cast<int>(rng.UniformInt(0, 2)) : -1;
    return DrawAbpStrip(length, alarm_kind, rng);
  };
  return BuildSplit("AbpAlarm", {1, 2}, train_per_class, test_per_class,
                    seed, draw);
}

DatasetSplit MakeAbpAlarmTypes(std::size_t train_per_class,
                               std::size_t test_per_class,
                               std::size_t length, std::uint64_t seed) {
  auto draw = [length](int label, Rng& rng) {
    return DrawAbpStrip(length, label - 2, rng);  // 1 -> -1 (normal)
  };
  return BuildSplit("AbpAlarmTypes", {1, 2, 3, 4}, train_per_class,
                    test_per_class, seed, draw);
}

DatasetSplit MakeSymbols(std::size_t train_per_class,
                         std::size_t test_per_class, std::size_t length,
                         std::uint64_t seed) {
  // Per-class smooth prototypes, fixed by the seed, drawn with amplitude
  // jitter, small time warping and additive noise.
  constexpr int kClasses = 3;
  Rng proto_rng(seed ^ 0xABCDEF);
  std::vector<Series> prototypes;
  for (int c = 0; c < kClasses; ++c) {
    Series p(length);
    double v = 0.0;
    for (auto& x : p) {
      v += proto_rng.Gaussian();
      x = v;
    }
    p = Smooth(Smooth(p, length / 16), length / 16);
    prototypes.push_back(std::move(p));
  }
  auto draw = [length, prototypes](int label, Rng& rng) {
    const Series& proto = prototypes[static_cast<std::size_t>(label - 1)];
    const double amp = rng.Uniform(0.8, 1.2);
    const double warp = rng.Uniform(-0.03, 0.03);
    Series s(length);
    for (std::size_t t = 0; t < length; ++t) {
      // Mild linear time warp: read the prototype at a stretched index.
      const double src = std::clamp(
          static_cast<double>(t) * (1.0 + warp), 0.0,
          static_cast<double>(length - 1));
      const auto lo = static_cast<std::size_t>(src);
      const std::size_t hi = std::min(lo + 1, length - 1);
      const double frac = src - static_cast<double>(lo);
      s[t] = amp * (proto[lo] * (1.0 - frac) + proto[hi] * frac) +
             rng.Gaussian(0.0, 0.05);
    }
    return s;
  };
  return BuildSplit("Symbols", {1, 2, 3}, train_per_class, test_per_class,
                    seed, draw);
}

DatasetSplit MakeFaceFour(std::size_t train_per_class,
                          std::size_t test_per_class, std::size_t length,
                          std::uint64_t seed) {
  // Base head outline (radial profile) plus class-specific feature bumps.
  auto draw = [length](int label, Rng& rng) {
    Series s(length, 0.0);
    const double m = static_cast<double>(length);
    for (std::size_t t = 0; t < length; ++t) {
      s[t] = 1.0 + 0.15 * std::sin(2.0 * kPi * static_cast<double>(t) / m);
    }
    // Feature constellation per class: positions/signs of three bumps.
    const double layouts[4][3] = {{0.15, 0.45, 0.75},
                                  {0.2, 0.5, 0.8},
                                  {0.1, 0.4, 0.65},
                                  {0.25, 0.55, 0.85}};
    const double signs[4][3] = {{1, -1, 1},
                                {-1, 1, 1},
                                {1, 1, -1},
                                {-1, -1, 1}};
    const auto c = static_cast<std::size_t>(label - 1);
    for (int b = 0; b < 3; ++b) {
      AddGaussianBump(s, layouts[c][b] * m, m * 0.03,
                      signs[c][b] * rng.Uniform(0.35, 0.5));
    }
    for (auto& v : s) v += rng.Gaussian(0.0, 0.04);
    return s;
  };
  return BuildSplit("FaceFour", {1, 2, 3, 4}, train_per_class,
                    test_per_class, seed, draw);
}

DatasetSplit MakeLightning(std::size_t train_per_class,
                           std::size_t test_per_class, std::size_t length,
                           std::uint64_t seed) {
  // Class 1: one long-decay burst; class 2: a train of short bursts.
  auto draw = [length](int label, Rng& rng) {
    Series s(length);
    for (auto& v : s) v = rng.Gaussian(0.0, 0.1);
    const double m = static_cast<double>(length);
    if (label == 1) {
      const double at = rng.Uniform(0.1, 0.4) * m;
      const double decay = rng.Uniform(0.08, 0.15) * m;
      for (std::size_t t = 0; t < length; ++t) {
        const double x = static_cast<double>(t);
        if (x >= at) s[t] += 3.0 * std::exp(-(x - at) / decay);
      }
    } else {
      const int bursts = static_cast<int>(rng.UniformInt(3, 5));
      for (int b = 0; b < bursts; ++b) {
        const double at = rng.Uniform(0.1, 0.85) * m;
        const double decay = rng.Uniform(0.01, 0.03) * m;
        for (std::size_t t = 0; t < length; ++t) {
          const double x = static_cast<double>(t);
          if (x >= at) s[t] += 2.2 * std::exp(-(x - at) / decay);
        }
      }
    }
    return s;
  };
  return BuildSplit("Lightning", {1, 2}, train_per_class, test_per_class,
                    seed, draw);
}

DatasetSplit MakeMoteStrain(std::size_t train_per_class,
                            std::size_t test_per_class, std::size_t length,
                            std::uint64_t seed) {
  // Slow drift + class-specific step pattern, heavy sensor noise.
  auto draw = [length](int label, Rng& rng) {
    Series s(length);
    const double m = static_cast<double>(length);
    const double drift = rng.Uniform(-0.5, 0.5);
    const double step_at = rng.Uniform(0.3, 0.7) * m;
    const double step_w = m * 0.02;
    for (std::size_t t = 0; t < length; ++t) {
      const double x = static_cast<double>(t);
      double v = drift * x / m + rng.Gaussian(0.0, 0.25);
      const double sigmoid = 1.0 / (1.0 + std::exp(-(x - step_at) / step_w));
      if (label == 1) {
        v += 1.5 * sigmoid;  // single upward shift
      } else {
        // Up then back down (pulse-like strain event).
        const double back_at = std::min(m - 1.0, step_at + 0.15 * m);
        const double back =
            1.0 / (1.0 + std::exp(-(x - back_at) / step_w));
        v += 1.5 * (sigmoid - back);
      }
      s[t] = v;
    }
    return s;
  };
  return BuildSplit("MoteStrain", {1, 2}, train_per_class, test_per_class,
                    seed, draw);
}

DatasetSplit MakeCricket(std::size_t train_per_class,
                         std::size_t test_per_class, std::size_t length,
                         std::uint64_t seed) {
  // Umpire gesture: both classes share a "raise" envelope; the signature
  // event is a double bump whose asymmetry is mirrored between classes
  // (left- vs right-hand movement, the Figure 1 framing).
  auto draw = [length](int label, Rng& rng) {
    Series s(length, 0.0);
    const double m = static_cast<double>(length);
    const double onset = rng.Uniform(0.25, 0.5) * m;
    // Shared raise/lower envelope.
    AddGaussianBump(s, onset, m * 0.12, 1.0);
    // Mirrored double-bump signature: leading spike then trailing dip for
    // class 1, the reverse for class 2.
    const double sign = (label == 1) ? 1.0 : -1.0;
    AddGaussianBump(s, onset - m * 0.06, m * 0.02,
                    sign * rng.Uniform(1.2, 1.6));
    AddGaussianBump(s, onset + m * 0.06, m * 0.02,
                    -sign * rng.Uniform(1.2, 1.6));
    for (auto& v : s) v += rng.Gaussian(0.0, 0.12);
    return s;
  };
  return BuildSplit("Cricket", {1, 2}, train_per_class, test_per_class,
                    seed, draw);
}

namespace {

std::size_t Scaled(std::size_t base, double scale) {
  return std::max<std::size_t>(2, static_cast<std::size_t>(
                                      std::lround(base * scale)));
}

}  // namespace

std::vector<DatasetSplit> BenchmarkSuite(const SuiteOptions& options) {
  const double k = options.size_scale;
  const std::uint64_t s = options.seed;
  std::vector<DatasetSplit> suite;
  suite.push_back(MakeCbf(Scaled(10, k), Scaled(30, k), 128, s + 1));
  suite.push_back(MakeTwoPatterns(Scaled(8, k), Scaled(25, k), 128, s + 2));
  suite.push_back(
      MakeSyntheticControl(Scaled(10, k), Scaled(20, k), 60, s + 3));
  suite.push_back(MakeGunPoint(Scaled(12, k), Scaled(40, k), 150, s + 4));
  suite.push_back(MakeCoffee(Scaled(14, k), Scaled(14, k), 200, s + 5));
  suite.push_back(MakeEcg(Scaled(12, k), Scaled(40, k), 136, s + 6));
  suite.push_back(MakeTrace(Scaled(12, k), Scaled(25, k), 200, s + 7));
  suite.push_back(MakeShapeOutlines(Scaled(10, k), Scaled(25, k), 128, s + 8));
  suite.push_back(MakeItalyPower(Scaled(16, k), Scaled(50, k), 24, s + 9));
  suite.push_back(MakeWafer(Scaled(12, k), Scaled(40, k), 120, s + 10));
  suite.push_back(MakeSymbols(Scaled(10, k), Scaled(30, k), 128, s + 16));
  suite.push_back(MakeFaceFour(Scaled(9, k), Scaled(22, k), 140, s + 17));
  suite.push_back(MakeLightning(Scaled(12, k), Scaled(30, k), 160, s + 18));
  suite.push_back(MakeMoteStrain(Scaled(12, k), Scaled(40, k), 96, s + 19));
  return suite;
}

std::vector<DatasetSplit> RotationSuite(const SuiteOptions& options) {
  const double k = options.size_scale;
  const std::uint64_t s = options.seed;
  std::vector<DatasetSplit> suite;
  suite.push_back(MakeCoffee(Scaled(14, k), Scaled(14, k), 200, s + 11));
  suite.push_back(MakeGunPoint(Scaled(12, k), Scaled(40, k), 150, s + 12));
  suite.push_back(MakeShapeOutlines(Scaled(10, k), Scaled(25, k), 128, s + 13));
  suite.push_back(MakeTrace(Scaled(12, k), Scaled(25, k), 200, s + 14));
  suite.push_back(
      MakeSyntheticControl(Scaled(10, k), Scaled(20, k), 60, s + 15));
  return suite;
}

namespace {

using FamilyFn = DatasetSplit (*)(std::size_t, std::size_t, std::size_t,
                                  std::uint64_t);

// Name -> generator, in the order GeneratorFamilies() reports.
const std::vector<std::pair<std::string, FamilyFn>>& FamilyTable() {
  static const std::vector<std::pair<std::string, FamilyFn>> table = {
      {"CBF", &MakeCbf},
      {"TwoPatterns", &MakeTwoPatterns},
      {"SyntheticControl", &MakeSyntheticControl},
      {"GunPoint", &MakeGunPoint},
      {"Coffee", &MakeCoffee},
      {"ECG", &MakeEcg},
      {"Trace", &MakeTrace},
      {"ShapeOutlines", &MakeShapeOutlines},
      {"ItalyPower", &MakeItalyPower},
      {"Wafer", &MakeWafer},
      {"AbpAlarm", &MakeAbpAlarm},
      {"AbpAlarmTypes", &MakeAbpAlarmTypes},
      {"Symbols", &MakeSymbols},
      {"FaceFour", &MakeFaceFour},
      {"Lightning", &MakeLightning},
      {"MoteStrain", &MakeMoteStrain},
      {"Cricket", &MakeCricket},
  };
  return table;
}

}  // namespace

std::vector<std::string> GeneratorFamilies() {
  std::vector<std::string> names;
  names.reserve(FamilyTable().size());
  for (const auto& [name, fn] : FamilyTable()) names.push_back(name);
  return names;
}

std::size_t GenerateToWriter(const std::string& family,
                             const ArchiveOptions& options,
                             DatasetWriter& writer) {
  FamilyFn make = nullptr;
  for (const auto& [name, fn] : FamilyTable()) {
    if (name == family) make = fn;
  }
  if (make == nullptr) {
    throw std::invalid_argument("GenerateToWriter: unknown family '" +
                                family + "'");
  }
  // Each round draws one bounded batch per class through the family's
  // ordinary split generator (test side empty) with a round-derived
  // seed, streams its instances out, and drops it. The per-round seed
  // schedule — not a shared RNG — is what keeps the emission independent
  // of batch_per_class-boundary placement issues and byte-reproducible.
  std::size_t emitted = 0;
  std::uint64_t round = 0;
  while (emitted < options.num_series) {
    const std::uint64_t round_seed =
        options.seed ^ ((round + 1) * 0x9E3779B97F4A7C15ull);
    const std::size_t per_class =
        std::max<std::size_t>(1, options.batch_per_class);
    DatasetSplit batch = make(per_class, 0, options.length, round_seed);
    // The split generators group their output by class; interleave the
    // classes (label order) so truncating the final round at num_series
    // still leaves every prefix of the file class-balanced.
    std::map<int, std::vector<std::size_t>> by_label;
    for (std::size_t i = 0; i < batch.train.size(); ++i) {
      by_label[batch.train[i].label].push_back(i);
    }
    for (std::size_t k = 0; emitted < options.num_series; ++k) {
      bool any = false;
      for (const auto& [label, members] : by_label) {
        if (k >= members.size()) continue;
        any = true;
        writer.Append(batch.train[members[k]]);
        if (++emitted >= options.num_series) break;
      }
      if (!any) break;
    }
    ++round;
  }
  return emitted;
}

std::size_t GenerateToFile(const std::string& family,
                           const ArchiveOptions& options,
                           const std::string& path) {
  DatasetWriterOptions write_options;
  write_options.fixed_length = options.length;
  DatasetWriter writer(path, write_options);
  const std::size_t emitted = GenerateToWriter(family, options, writer);
  writer.Finish();
  return emitted;
}

}  // namespace rpm::ts
