#include "ts/znorm.h"

#include <cmath>

namespace rpm::ts {

double Mean(SeriesView values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(SeriesView values) {
  if (values.empty()) return 0.0;
  const double mu = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mu) * (v - mu);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

Series ZNormalize(SeriesView values) {
  Series out(values.begin(), values.end());
  ZNormalizeInPlace(out);
  return out;
}

void ZNormalizeInPlace(Series& values) {
  if (values.empty()) return;
  const double mu = Mean(values);
  const double sigma = StdDev(values);
  if (sigma < kFlatThreshold) {
    for (double& v : values) v -= mu;
    return;
  }
  for (double& v : values) v = (v - mu) / sigma;
}

void ZNormalizeDataset(Dataset& data) {
  for (auto& inst : data) ZNormalizeInPlace(inst.values);
}

}  // namespace rpm::ts
