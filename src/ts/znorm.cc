#include "ts/znorm.h"

#include <cmath>

namespace rpm::ts {

double Mean(SeriesView values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(SeriesView values) {
  return StdDev(values, Mean(values));
}

double StdDev(SeriesView values, double mean) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

Series ZNormalize(SeriesView values) {
  Series out(values.begin(), values.end());
  ZNormalizeInPlace(out);
  return out;
}

void ZNormalizeInPlace(Series& values) {
  if (values.empty()) return;
  const double mu = Mean(values);
  const double sigma = StdDev(values, mu);
  if (sigma < kFlatThreshold) {
    for (double& v : values) v -= mu;
    return;
  }
  for (double& v : values) v = (v - mu) / sigma;
}

void ZNormalizeDataset(Dataset& data) {
  for (auto& inst : data) ZNormalizeInPlace(inst.values);
}

}  // namespace rpm::ts
