#include "ts/thread_pool.h"

#include <algorithm>

namespace rpm::ts {

namespace {

// Set while a thread (worker or submitter) is executing job chunks.
// Nested ParallelFor calls from such a thread run inline: the pool admits
// one job at a time, so waiting on it from inside a job would deadlock.
thread_local bool tls_inside_job = false;

}  // namespace

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::EnsureWorkers(std::size_t count) {
  count = std::min(count, kMaxWorkers);
  std::lock_guard<std::mutex> lock(mutex_);
  while (workers_.size() < count) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::RunChunks() {
  const bool was_inside = tls_inside_job;
  tls_inside_job = true;
  // Job geometry is immutable while the job is open, and this thread
  // observed the open job under mutex_, so unlocked reads are safe.
  const std::function<void(std::size_t)>& fn = *fn_;
  const std::size_t n = n_;
  const std::size_t chunk = chunk_;
  const std::size_t num_chunks = num_chunks_;
  for (std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
       c < num_chunks;
       c = next_chunk_.fetch_add(1, std::memory_order_relaxed)) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  }
  tls_inside_job = was_inside;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen = 0;
  while (true) {
    job_cv_.wait(lock, [&] {
      return shutdown_ || (open_ && job_id_ != seen && joined_ < max_workers_);
    });
    if (shutdown_) return;
    seen = job_id_;
    ++joined_;
    lock.unlock();
    RunChunks();
    lock.lock();
    ++finished_;
    if (finished_ == joined_) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(std::size_t n, std::size_t max_threads,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  max_threads = std::min(max_threads, n);
  if (max_threads <= 1 || tls_inside_job) {
    // Sequential — or nested inside an active job, which must run inline.
    const bool was_inside = tls_inside_job;
    tls_inside_job = true;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    tls_inside_job = was_inside;
    return;
  }
  EnsureWorkers(max_threads - 1);

  std::unique_lock<std::mutex> submit(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    n_ = n;
    // Chunked scheduling: enough chunks for balance (8 per thread), big
    // enough that tiny items don't serialize on the shared counter.
    chunk_ = std::max<std::size_t>(1, n / (max_threads * 8));
    num_chunks_ = (n + chunk_ - 1) / chunk_;
    max_workers_ = max_threads - 1;
    joined_ = 0;
    finished_ = 0;
    next_chunk_.store(0, std::memory_order_relaxed);
    open_ = true;
    ++job_id_;
  }
  job_cv_.notify_all();

  // The submitting thread is a full participant.
  RunChunks();

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return finished_ == joined_ &&
           next_chunk_.load(std::memory_order_relaxed) >= num_chunks_;
  });
  // Close the job under the same lock hold so no late worker can join
  // after `fn` (a reference into this frame) dies.
  open_ = false;
  fn_ = nullptr;
}

}  // namespace rpm::ts
