// Minimal deterministic data-parallel helper. Work items are independent
// and write to distinct output slots, so results are identical for any
// thread count — parallelism only changes wall-clock time.

#ifndef RPM_TS_PARALLEL_H_
#define RPM_TS_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace rpm::ts {

/// Invokes fn(i) for every i in [0, n), using up to `num_threads` worker
/// threads (<= 1 runs inline). Exceptions from fn terminate the process
/// (workers don't marshal them); keep fn noexcept in practice.
inline void ParallelFor(std::size_t n, std::size_t num_threads,
                        const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < n;
           i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (auto& w : workers) w.join();
}

/// Hardware concurrency with a sane floor.
inline std::size_t DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace rpm::ts

#endif  // RPM_TS_PARALLEL_H_
