// Minimal deterministic data-parallel helper. Work items are independent
// and write to distinct output slots, so results are identical for any
// thread count — parallelism only changes wall-clock time.
//
// ParallelFor is a shim over the process-wide persistent ThreadPool
// (ts/thread_pool.h): regions no longer spawn-join threads, and indices
// are handed out in chunks instead of one per atomic fetch_add, so tiny
// work items don't serialize on the counter.

#ifndef RPM_TS_PARALLEL_H_
#define RPM_TS_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <thread>

#include "ts/thread_pool.h"

namespace rpm::ts {

/// Invokes fn(i) for every i in [0, n), using the calling thread plus up
/// to `num_threads - 1` persistent pool workers (<= 1 runs inline).
/// Exceptions from fn terminate the process (workers don't marshal
/// them); keep fn noexcept in practice.
inline void ParallelFor(std::size_t n, std::size_t num_threads,
                        const std::function<void(std::size_t)>& fn) {
  ThreadPool::Global().ParallelFor(n, num_threads, fn);
}

/// Hardware concurrency with a sane floor.
inline std::size_t DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace rpm::ts

#endif  // RPM_TS_PARALLEL_H_
