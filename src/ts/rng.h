// Seeded random-number facade used by every stochastic component
// (dataset generators, train/validation splits, SGD shuffling, rotation).
// Centralizing on one engine keeps experiments reproducible end to end.

#ifndef RPM_TS_RNG_H_
#define RPM_TS_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace rpm::ts {

/// Thin deterministic wrapper over std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Derives an independent child generator (for per-dataset seeding).
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rpm::ts

#endif  // RPM_TS_RNG_H_
