#include "ts/resample.h"

#include <cmath>

namespace rpm::ts {

Series ResampleLinear(SeriesView values, std::size_t target_length) {
  Series out(target_length, 0.0);
  if (target_length == 0) return out;
  if (values.empty()) return out;
  if (values.size() == 1) {
    for (auto& v : out) v = values[0];
    return out;
  }
  if (target_length == 1) {
    out[0] = values[0];
    return out;
  }
  const double scale = static_cast<double>(values.size() - 1) /
                       static_cast<double>(target_length - 1);
  for (std::size_t i = 0; i < target_length; ++i) {
    const double x = static_cast<double>(i) * scale;
    const auto lo = static_cast<std::size_t>(std::floor(x));
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = x - static_cast<double>(lo);
    out[i] = values[lo] * (1.0 - frac) + values[hi] * frac;
  }
  return out;
}

}  // namespace rpm::ts
