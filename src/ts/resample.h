// Linear-interpolation resampling. Grammar-rule occurrences map back to raw
// subsequences of *different* lengths (Section 3.2.2, Fig. 4); before
// clustering and centroid computation they are brought to a common length.

#ifndef RPM_TS_RESAMPLE_H_
#define RPM_TS_RESAMPLE_H_

#include <cstddef>

#include "ts/series.h"

namespace rpm::ts {

/// Resamples `values` to `target_length` points by linear interpolation.
/// A single-point input is replicated; an empty input yields zeros.
Series ResampleLinear(SeriesView values, std::size_t target_length);

}  // namespace rpm::ts

#endif  // RPM_TS_RESAMPLE_H_
