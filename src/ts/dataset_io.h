// Chunked binary dataset format ("RPMD") for archive-scale training:
// millions of labeled series written once and streamed back through an
// mmap-backed reader without ever materializing a std::vector<Series>.
// The full on-disk layout, CRC policy, and reader lifetime rules are
// specified in docs/DATASETS.md; ucr_convert (examples/ucr_convert.cc)
// converts between this format and the UCR text format of ts/ucr_io.h.
//
// Layout summary (all integers little-endian, offsets 8-byte aligned):
//   header    "RPMD" magic, format version, series/chunk counts,
//             directory offset, optional fixed length, header CRC
//   chunks    per-chunk label table (+ length table unless fixed-length)
//             followed by the raw float64 values, zero-padded to 8 bytes
//   directory per-chunk {offset, bytes, first_series, count, meta CRC,
//             data CRC} entries plus a directory CRC
//
// Values are stored 8-byte aligned so DatasetReader::values() returns a
// zero-copy SeriesView straight into the mapping. Table/structure
// integrity (meta CRC) is verified at open; value integrity (data CRC)
// is verified lazily, once per chunk, on first value access.

#ifndef RPM_TS_DATASET_IO_H_
#define RPM_TS_DATASET_IO_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "ts/series.h"

namespace rpm::ts {

/// Error raised on malformed, truncated, or corrupt binary dataset files
/// (and on writer IO failures).
class DatasetFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`;
/// `seed` chains partial computations (pass a previous result to extend).
std::uint32_t Crc32(const void* data, std::size_t bytes,
                    std::uint32_t seed = 0);

struct DatasetWriterOptions {
  /// A chunk is flushed once it holds this many series...
  std::size_t chunk_series = 4096;
  /// ...or once its buffered value payload reaches this many bytes,
  /// whichever comes first. Both bound the writer's resident memory.
  std::size_t chunk_bytes = std::size_t{4} << 20;
  /// Nonzero pins every series to this length (Append throws on any
  /// other) and drops the per-chunk length tables from the file.
  std::size_t fixed_length = 0;
};

/// Streaming writer: Append series one at a time, Finish() seals the
/// file (writes the directory and patches the header). Only a Finished
/// file is readable; an abandoned writer leaves a file DatasetReader
/// rejects. Not thread-safe; one writer per file.
class DatasetWriter {
 public:
  explicit DatasetWriter(const std::string& path,
                         DatasetWriterOptions options = {});
  ~DatasetWriter();

  DatasetWriter(const DatasetWriter&) = delete;
  DatasetWriter& operator=(const DatasetWriter&) = delete;

  /// Appends one labeled series. Throws DatasetFormatError on IO error,
  /// an empty series, a fixed-length mismatch, or after Finish().
  void Append(int label, SeriesView values);
  void Append(const LabeledSeries& instance);

  /// Flushes the tail chunk, writes the directory, and patches the
  /// header so the file becomes readable. Idempotent.
  void Finish();

  std::size_t series_written() const { return series_written_; }
  std::size_t chunks_written() const { return chunks_written_; }
  bool finished() const { return finished_; }

 private:
  struct DirEntry {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint64_t first_series = 0;
    std::uint32_t count = 0;
    std::uint32_t meta_crc = 0;
    std::uint32_t data_crc = 0;
    std::uint32_t reserved = 0;
  };

  void FlushChunk();

  DatasetWriterOptions options_;
  std::string path_;
  std::ofstream out_;
  std::vector<std::int32_t> labels_;
  std::vector<std::uint64_t> lengths_;
  std::vector<double> values_;
  std::vector<DirEntry> directory_;
  std::size_t series_written_ = 0;
  std::size_t chunks_written_ = 0;
  bool finished_ = false;
};

struct DatasetReaderOptions {
  /// Verify every chunk's value (data) CRC eagerly at open instead of
  /// lazily on first access. Structural metadata (header, directory,
  /// label/length tables) is always verified at open.
  bool eager_verify = false;
  /// Disable the lazy per-chunk data-CRC check entirely (the scaling
  /// bench's repeat runs use this; corruption then goes undetected).
  bool verify_data_crc = true;
};

/// mmap-backed reader over a Finished RPMD file. Label and length
/// columns are decoded at open (they drive sampling without touching
/// value pages); values(i) returns a zero-copy SeriesView into the
/// mapping. Views are valid only while the reader is alive — see
/// docs/DATASETS.md for the lifetime rules. All accessors are const and
/// safe to call from multiple threads concurrently.
class DatasetReader {
 public:
  explicit DatasetReader(const std::string& path,
                         DatasetReaderOptions options = {});
  ~DatasetReader();

  DatasetReader(const DatasetReader&) = delete;
  DatasetReader& operator=(const DatasetReader&) = delete;

  /// Number of series in the file.
  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  std::size_t num_chunks() const { return chunks_.size(); }

  /// Nonzero when the file was written fixed-length.
  std::size_t fixed_length() const { return fixed_length_; }

  /// Total bytes of the underlying file (mapping size).
  std::size_t file_bytes() const { return map_bytes_; }

  int label(std::size_t i) const { return labels_[i]; }
  std::size_t length(std::size_t i) const;

  /// Zero-copy view of series i's values. The first access to a chunk
  /// verifies its data CRC (unless disabled) and throws
  /// DatasetFormatError on mismatch.
  SeriesView values(std::size_t i) const;

  /// Copying convenience accessor.
  LabeledSeries Get(std::size_t i) const;

  /// The whole label column, in series order (what the sampling layer
  /// scans; reading it touches no value pages).
  const std::vector<int>& labels() const { return labels_; }

  /// Label -> count histogram over the label column.
  std::map<int, std::size_t> ClassHistogram() const;

  /// Materializes the entire file as an in-memory Dataset.
  Dataset ReadAll() const;

  /// Materializes the given series indices, in the given order.
  Dataset ReadSubset(std::span<const std::size_t> indices) const;

 private:
  void VerifyChunkData(std::size_t chunk) const;

  struct ChunkRef {
    std::uint64_t offset = 0;       ///< file offset of the chunk start
    std::uint64_t bytes = 0;        ///< total chunk bytes incl. padding
    std::uint64_t values_offset = 0;///< file offset of the f64 payload
    std::uint64_t first_series = 0;
    std::uint32_t count = 0;
    std::uint32_t data_crc = 0;
  };

  DatasetReaderOptions options_;
  std::string path_;
  const unsigned char* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  int fd_ = -1;
  std::size_t fixed_length_ = 0;
  std::vector<int> labels_;
  std::vector<std::uint64_t> value_offsets_;  ///< per-series file offset
  std::vector<std::uint64_t> lengths_;        ///< empty when fixed-length
  std::vector<std::uint64_t> chunk_of_;       ///< first series per chunk
  std::vector<ChunkRef> chunks_;
  /// 0 = unverified, 1 = verified OK; set once under relaxed atomics
  /// (double verification is benign: both computations agree).
  mutable std::unique_ptr<std::atomic<std::uint8_t>[]> chunk_verified_;
};

/// Writes `data` to `path` in RPMD format. Throws DatasetFormatError on
/// IO failure.
void WriteDatasetFile(const Dataset& data, const std::string& path,
                      const DatasetWriterOptions& options = {});

/// Reads an entire RPMD file into memory (opens, verifies, copies).
Dataset ReadDatasetFile(const std::string& path);

}  // namespace rpm::ts

#endif  // RPM_TS_DATASET_IO_H_
