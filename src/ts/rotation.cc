#include "ts/rotation.h"

namespace rpm::ts {

Series RotateAt(SeriesView values, std::size_t cut) {
  Series out;
  out.reserve(values.size());
  if (values.empty()) return out;
  cut %= values.size();
  out.insert(out.end(), values.begin() + static_cast<std::ptrdiff_t>(cut),
             values.end());
  out.insert(out.end(), values.begin(),
             values.begin() + static_cast<std::ptrdiff_t>(cut));
  return out;
}

Series RotateAtMidpoint(SeriesView values) {
  return RotateAt(values, values.size() / 2);
}

Dataset RandomlyRotate(const Dataset& data, Rng& rng) {
  Dataset out;
  for (const auto& inst : data) {
    const std::size_t cut = inst.values.empty()
                                ? 0
                                : static_cast<std::size_t>(rng.UniformInt(
                                      0, static_cast<std::int64_t>(
                                             inst.values.size() - 1)));
    out.Add(inst.label, RotateAt(inst.values, cut));
  }
  return out;
}

}  // namespace rpm::ts
