// Z-normalization utilities (Section 3.2.1: SAX operates on z-normalized
// subsequences). A subsequence whose standard deviation falls below
// `kFlatThreshold` is treated as flat and only mean-centered, following the
// standard SAX practice of avoiding noise amplification on constant segments.

#ifndef RPM_TS_ZNORM_H_
#define RPM_TS_ZNORM_H_

#include "ts/series.h"

namespace rpm::ts {

/// Standard deviation below which a window is considered flat.
inline constexpr double kFlatThreshold = 1e-8;

/// Arithmetic mean of `values`; 0.0 for an empty span.
double Mean(SeriesView values);

/// Population standard deviation of `values`; 0.0 for an empty span.
double StdDev(SeriesView values);

/// StdDev with the mean already known. The accumulation is identical to
/// the one-argument form, so passing `Mean(values)` gives a bit-identical
/// result while skipping the redundant mean pass — the form the
/// sliding-window discretization hot loop uses.
double StdDev(SeriesView values, double mean);

/// Returns a z-normalized copy: (x - mean) / stddev.
/// Flat inputs (stddev < kFlatThreshold) are mean-centered only.
Series ZNormalize(SeriesView values);

/// In-place z-normalization with the same flat-input rule.
void ZNormalizeInPlace(Series& values);

/// Z-normalizes every instance of `data` in place.
void ZNormalizeDataset(Dataset& data);

}  // namespace rpm::ts

#endif  // RPM_TS_ZNORM_H_
