// Z-normalization utilities (Section 3.2.1: SAX operates on z-normalized
// subsequences). A subsequence whose standard deviation falls below
// `kFlatThreshold` is treated as flat and only mean-centered, following the
// standard SAX practice of avoiding noise amplification on constant segments.

#ifndef RPM_TS_ZNORM_H_
#define RPM_TS_ZNORM_H_

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "ts/series.h"

namespace rpm::ts {

/// Standard deviation below which a window is considered flat.
inline constexpr double kFlatThreshold = 1e-8;

/// Mean and (flat-rule) standard deviation of a window from its value sum
/// and squared-value sum. This is the single definition of the
/// sum-to-moments recurrence: the batched matcher's prefix-sum lookups
/// (distance/matcher.cc) and the streaming RollingStats below both derive
/// their window moments here, so the flat-window convention
/// (sigma < kFlatThreshold -> sigma = 1.0, i.e. mean-center only) cannot
/// drift between the batch and streaming paths. `inv_len` is 1/len,
/// passed in so hot loops can hoist the division out of the window scan.
inline void WindowMomentsFromSums(double sum, double sum_sq, double inv_len,
                                  double* mu, double* sigma) {
  *mu = sum * inv_len;
  const double var = std::max(0.0, sum_sq * inv_len - *mu * *mu);
  double s = std::sqrt(var);
  if (s < kFlatThreshold) s = 1.0;
  *sigma = s;
}

/// Incremental first and second moments of a sliding window over an
/// unbounded sample stream. Each arriving sample updates the running
/// sum / sum-of-squares in O(1) (`Add` while the window is filling,
/// `Slide` once it is full); every `refresh_interval` slides the caller
/// is asked (NeedsRefresh) to hand back the materialized window so the
/// accumulators are recomputed exactly, bounding floating-point drift to
/// what at most `refresh_interval` catastrophic-cancellation-free
/// add/subtract pairs can accumulate (~1e-11 over 1e6 samples of O(1)
/// magnitude; see StreamDrift tests).
class RollingStats {
 public:
  RollingStats() = default;
  /// `window` > 0; `refresh_interval` == 0 disables exact refreshes.
  RollingStats(std::size_t window, std::size_t refresh_interval)
      : window_(window),
        inv_window_(window == 0 ? 0.0 : 1.0 / static_cast<double>(window)),
        refresh_interval_(refresh_interval) {}

  /// Accumulates one sample while the window is still filling
  /// (count() < window()).
  void Add(double v) {
    sum_ += v;
    sum_sq_ += v * v;
    ++count_;
  }

  /// Steady state: `in` enters the window, `out` (the sample that left,
  /// i.e. the one `window` positions back) is retired.
  void Slide(double in, double out) {
    sum_ += in - out;
    sum_sq_ += in * in - out * out;
    ++slides_;
  }

  /// True when `refresh_interval` slides have passed since the last exact
  /// recompute — call Refresh with the current window contents.
  bool NeedsRefresh() const {
    return refresh_interval_ != 0 && slides_ >= refresh_interval_;
  }

  /// Exact recompute from the materialized current window (direct
  /// summation), resetting the drift clock.
  void Refresh(SeriesView window) {
    sum_ = 0.0;
    sum_sq_ = 0.0;
    for (const double v : window) {
      sum_ += v;
      sum_sq_ += v * v;
    }
    slides_ = 0;
  }

  /// Moments of the current (full) window via WindowMomentsFromSums.
  /// Precondition: count() >= window().
  void Moments(double* mu, double* sigma) const {
    WindowMomentsFromSums(sum_, sum_sq_, inv_window_, mu, sigma);
  }

  std::size_t window() const { return window_; }
  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double sum_sq() const { return sum_sq_; }

 private:
  std::size_t window_ = 0;
  double inv_window_ = 0.0;
  std::size_t refresh_interval_ = 0;
  std::size_t count_ = 0;   // samples absorbed during the filling phase
  std::size_t slides_ = 0;  // slides since the last exact refresh
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// Arithmetic mean of `values`; 0.0 for an empty span.
double Mean(SeriesView values);

/// Population standard deviation of `values`; 0.0 for an empty span.
double StdDev(SeriesView values);

/// StdDev with the mean already known. The accumulation is identical to
/// the one-argument form, so passing `Mean(values)` gives a bit-identical
/// result while skipping the redundant mean pass — the form the
/// sliding-window discretization hot loop uses.
double StdDev(SeriesView values, double mean);

/// Returns a z-normalized copy: (x - mean) / stddev.
/// Flat inputs (stddev < kFlatThreshold) are mean-centered only.
Series ZNormalize(SeriesView values);

/// In-place z-normalization with the same flat-input rule.
void ZNormalizeInPlace(Series& values);

/// Z-normalizes every instance of `data` in place.
void ZNormalizeDataset(Dataset& data);

}  // namespace rpm::ts

#endif  // RPM_TS_ZNORM_H_
