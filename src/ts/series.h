// Core time-series value types shared by every module in this repository.
//
// A time series is stored as a plain `std::vector<double>`; labeled
// instances and datasets add the minimal classification metadata the paper
// needs (integer class labels, per-class views). The paper's notation
// (Section 2.1): a time series T = t_1..t_m, a subsequence S = t_p..t_{p+n-1}.

#ifndef RPM_TS_SERIES_H_
#define RPM_TS_SERIES_H_

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace rpm::ts {

/// A univariate real-valued time series ordered by time.
using Series = std::vector<double>;

/// Read-only view over a contiguous slice of a series.
using SeriesView = std::span<const double>;

/// A time series together with its integer class label.
struct LabeledSeries {
  int label = 0;
  Series values;

  std::size_t length() const { return values.size(); }
};

/// An ordered collection of labeled time series (one UCR split).
///
/// Instances keep their insertion order; helper accessors provide the
/// per-class groupings RPM trains on (Algorithm 1 iterates classes).
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<LabeledSeries> instances)
      : instances_(std::move(instances)) {}

  /// Appends one labeled instance.
  void Add(int label, Series values) {
    instances_.push_back(LabeledSeries{label, std::move(values)});
  }
  void Add(LabeledSeries instance) { instances_.push_back(std::move(instance)); }

  std::size_t size() const { return instances_.size(); }
  bool empty() const { return instances_.empty(); }

  const LabeledSeries& operator[](std::size_t i) const { return instances_[i]; }
  LabeledSeries& operator[](std::size_t i) { return instances_[i]; }

  auto begin() const { return instances_.begin(); }
  auto end() const { return instances_.end(); }
  auto begin() { return instances_.begin(); }
  auto end() { return instances_.end(); }

  /// Distinct class labels in ascending order.
  std::vector<int> ClassLabels() const;

  /// Number of distinct class labels.
  std::size_t NumClasses() const { return ClassLabels().size(); }

  /// Indices (into this dataset) of all instances carrying `label`.
  std::vector<std::size_t> IndicesOfClass(int label) const;

  /// Copies of all instances carrying `label`, preserving order.
  std::vector<LabeledSeries> InstancesOfClass(int label) const;

  /// Number of instances carrying `label`.
  std::size_t CountOfClass(int label) const;

  /// Label -> count histogram.
  std::map<int, std::size_t> ClassHistogram() const;

  /// Length of the longest instance (0 when empty).
  std::size_t MaxLength() const;

  /// Length of the shortest instance (0 when empty).
  std::size_t MinLength() const;

  const std::vector<LabeledSeries>& instances() const { return instances_; }

 private:
  std::vector<LabeledSeries> instances_;
};

/// A named train/test dataset pair, mirroring one UCR archive entry.
struct DatasetSplit {
  std::string name;
  Dataset train;
  Dataset test;
};

}  // namespace rpm::ts

#endif  // RPM_TS_SERIES_H_
