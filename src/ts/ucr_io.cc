#include "ts/ucr_io.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace rpm::ts {
namespace {

// Splits a line on commas and/or whitespace into numeric fields.
std::vector<double> ParseFields(const std::string& line, std::size_t line_no) {
  std::vector<double> fields;
  const char* p = line.c_str();
  const char* end = p + line.size();
  while (p < end) {
    while (p < end && (*p == ' ' || *p == '\t' || *p == ',' || *p == '\r')) ++p;
    if (p >= end) break;
    char* after = nullptr;
    const double v = std::strtod(p, &after);
    if (after == p) {
      throw UcrFormatError("line " + std::to_string(line_no) +
                           ": non-numeric field near '" +
                           std::string(p, std::min<std::size_t>(8, end - p)) + "'");
    }
    fields.push_back(v);
    p = after;
  }
  return fields;
}

}  // namespace

Dataset ParseUcr(const std::string& text) {
  Dataset data;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r\n,") == std::string::npos) continue;
    std::vector<double> fields = ParseFields(line, line_no);
    if (fields.size() < 2) {
      throw UcrFormatError("line " + std::to_string(line_no) +
                           ": expected a label plus at least one value");
    }
    LabeledSeries inst;
    inst.label = static_cast<int>(std::llround(fields.front()));
    inst.values.assign(fields.begin() + 1, fields.end());
    data.Add(std::move(inst));
  }
  return data;
}

Dataset LoadUcrFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw UcrFormatError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseUcr(buf.str());
}

std::string FormatUcr(const Dataset& data) {
  std::ostringstream out;
  out.precision(10);
  for (const auto& inst : data) {
    out << inst.label;
    for (double v : inst.values) out << ',' << v;
    out << '\n';
  }
  return out.str();
}

void SaveUcrFile(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw UcrFormatError("cannot open '" + path + "' for writing");
  out << FormatUcr(data);
  if (!out) throw UcrFormatError("write failed for '" + path + "'");
}

}  // namespace rpm::ts
