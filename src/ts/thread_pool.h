// Persistent worker pool with chunked work-stealing-free scheduling.
//
// The pipeline used to spawn and join fresh std::threads for every
// parallel region (see ts/parallel.h); parameter selection alone creates
// thousands of regions per run, so thread creation cost and the per-item
// atomic fetch_add dominated small workloads. This pool keeps workers
// alive across regions and hands out *chunks* of indices so tiny work
// items do not serialize on the shared counter.
//
// Determinism contract: fn(i) is invoked exactly once for every i, work
// items are independent and write to distinct slots, so results are
// bit-identical for any thread count — parallelism only changes
// wall-clock time. Nested ParallelFor calls (from inside a worker or a
// caller already inside a region) run inline on the calling thread, so
// nesting can never deadlock the pool.

#ifndef RPM_TS_THREAD_POOL_H_
#define RPM_TS_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rpm::ts {

class ThreadPool {
 public:
  ThreadPool() = default;
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Invokes fn(i) for every i in [0, n), using the calling thread plus up
  /// to `max_threads - 1` pool workers (<= 1 runs inline). Blocks until
  /// every item completed. Exceptions from fn terminate the process
  /// (workers don't marshal them); keep fn noexcept in practice.
  void ParallelFor(std::size_t n, std::size_t max_threads,
                   const std::function<void(std::size_t)>& fn);

  /// Workers currently alive (grows on demand, never shrinks).
  std::size_t num_workers() const;

  /// Process-wide pool shared by the whole pipeline (transform, candidate
  /// mining, parameter selection, baselines, benches).
  static ThreadPool& Global();

 private:
  void WorkerLoop();
  void EnsureWorkers(std::size_t count);
  void RunChunks();

  // Workers beyond this are pointless for the data-parallel loops here
  // and would only burn kernel resources.
  static constexpr std::size_t kMaxWorkers = 256;

  mutable std::mutex mutex_;            // guards all job + worker state
  std::condition_variable job_cv_;      // workers wait for a job here
  std::condition_variable done_cv_;     // submitter waits for completion
  std::vector<std::thread> workers_;
  bool shutdown_ = false;

  // One job at a time; concurrent top-level submitters serialize here.
  std::mutex submit_mutex_;

  // Active job (valid while open_ is true). Chunk geometry is immutable
  // for the job's lifetime; next_chunk_ is the only contended word.
  std::uint64_t job_id_ = 0;
  bool open_ = false;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::size_t chunk_ = 1;
  std::size_t num_chunks_ = 0;
  std::size_t max_workers_ = 0;  // workers allowed to join this job
  std::size_t joined_ = 0;       // workers that picked the job up
  std::size_t finished_ = 0;     // workers that drained their chunks
  std::atomic<std::size_t> next_chunk_{0};
};

}  // namespace rpm::ts

#endif  // RPM_TS_THREAD_POOL_H_
