#include "ts/dataset_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

namespace rpm::ts {

// The format stores integers and doubles in their native little-endian
// representation and the reader hands out zero-copy views into the
// mapping, so a big-endian host could neither write nor read portably.
static_assert(std::endian::native == std::endian::little,
              "RPMD dataset files are little-endian");

namespace {

constexpr char kMagic[4] = {'R', 'P', 'M', 'D'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 40;
constexpr std::size_t kDirEntryBytes = 40;

// Caps applied while parsing: a corrupt header must produce a
// descriptive error, not a multi-gigabyte resize (same policy as the
// model loaders hardened in the fuzzing PR). Both are far above any
// real archive and still bounded by the file size checks below.
constexpr std::uint64_t kMaxChunks = std::uint64_t{1} << 24;
constexpr std::uint64_t kMaxSeriesPerChunk = std::uint64_t{1} << 28;

std::uint32_t* Crc32Table() {
  static std::uint32_t table[256] = {0};
  if (table[1] == 0) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
  }
  return table;
}

template <typename T>
void PutLe(std::vector<unsigned char>& buf, T value) {
  const std::size_t at = buf.size();
  buf.resize(at + sizeof(T));
  std::memcpy(buf.data() + at, &value, sizeof(T));
}

template <typename T>
T GetLe(const unsigned char* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

[[noreturn]] void Fail(const std::string& path, const std::string& what) {
  throw DatasetFormatError("dataset file '" + path + "': " + what);
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t bytes, std::uint32_t seed) {
  const std::uint32_t* table = Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < bytes; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

DatasetWriter::DatasetWriter(const std::string& path,
                             DatasetWriterOptions options)
    : options_(options), path_(path) {
  if (options_.chunk_series == 0) options_.chunk_series = 1;
  if (options_.chunk_bytes == 0) options_.chunk_bytes = 1;
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) Fail(path_, "cannot open for writing");
  // Placeholder header; Finish() rewrites it with the real counts,
  // directory offset, and CRC. An abandoned (never-Finished) file keeps
  // the all-zero header and is rejected by the reader.
  const std::vector<unsigned char> zero(kHeaderBytes, 0);
  out_.write(reinterpret_cast<const char*>(zero.data()),
             static_cast<std::streamsize>(zero.size()));
  if (!out_) Fail(path_, "header write failed");
}

DatasetWriter::~DatasetWriter() {
  // Best-effort seal so `DatasetWriter w(path); ...; }` scopes produce a
  // readable file; errors surface on the explicit Finish() path only.
  if (!finished_) {
    try {
      Finish();
    } catch (const DatasetFormatError&) {
    }
  }
}

void DatasetWriter::Append(int label, SeriesView values) {
  if (finished_) Fail(path_, "Append after Finish");
  if (values.empty()) Fail(path_, "cannot append an empty series");
  if (options_.fixed_length != 0 && values.size() != options_.fixed_length) {
    Fail(path_, "fixed-length file (" + std::to_string(options_.fixed_length) +
                    ") rejects series of length " +
                    std::to_string(values.size()));
  }
  labels_.push_back(static_cast<std::int32_t>(label));
  lengths_.push_back(values.size());
  values_.insert(values_.end(), values.begin(), values.end());
  ++series_written_;
  if (labels_.size() >= options_.chunk_series ||
      values_.size() * sizeof(double) >= options_.chunk_bytes) {
    FlushChunk();
  }
}

void DatasetWriter::Append(const LabeledSeries& instance) {
  Append(instance.label, instance.values);
}

void DatasetWriter::FlushChunk() {
  if (labels_.empty()) return;
  DirEntry entry;
  entry.first_series = series_written_ - labels_.size();
  entry.count = static_cast<std::uint32_t>(labels_.size());

  // Metadata block: count, labels, lengths (variable-length files only),
  // zero padding up to the 8-byte boundary the values start on.
  std::vector<unsigned char> meta;
  PutLe<std::uint32_t>(meta, entry.count);
  PutLe<std::uint32_t>(meta, 0);  // reserved
  for (std::int32_t label : labels_) PutLe<std::int32_t>(meta, label);
  if (options_.fixed_length == 0) {
    for (std::uint64_t len : lengths_) PutLe<std::uint64_t>(meta, len);
  }
  while (meta.size() % 8 != 0) meta.push_back(0);

  const std::uint64_t offset = static_cast<std::uint64_t>(out_.tellp());
  entry.offset = offset;
  entry.bytes = meta.size() + values_.size() * sizeof(double);
  entry.meta_crc = Crc32(meta.data(), meta.size());
  entry.data_crc = Crc32(values_.data(), values_.size() * sizeof(double));

  out_.write(reinterpret_cast<const char*>(meta.data()),
             static_cast<std::streamsize>(meta.size()));
  out_.write(reinterpret_cast<const char*>(values_.data()),
             static_cast<std::streamsize>(values_.size() * sizeof(double)));
  if (!out_) Fail(path_, "chunk write failed");

  directory_.push_back(entry);
  ++chunks_written_;
  labels_.clear();
  lengths_.clear();
  values_.clear();
}

void DatasetWriter::Finish() {
  if (finished_) return;
  FlushChunk();

  const std::uint64_t dir_offset = static_cast<std::uint64_t>(out_.tellp());
  std::vector<unsigned char> dir;
  dir.reserve(directory_.size() * kDirEntryBytes + sizeof(std::uint32_t));
  for (const DirEntry& e : directory_) {
    PutLe<std::uint64_t>(dir, e.offset);
    PutLe<std::uint64_t>(dir, e.bytes);
    PutLe<std::uint64_t>(dir, e.first_series);
    PutLe<std::uint32_t>(dir, e.count);
    PutLe<std::uint32_t>(dir, e.meta_crc);
    PutLe<std::uint32_t>(dir, e.data_crc);
    PutLe<std::uint32_t>(dir, e.reserved);
  }
  const std::uint32_t dir_crc = Crc32(dir.data(), dir.size());
  PutLe<std::uint32_t>(dir, dir_crc);
  out_.write(reinterpret_cast<const char*>(dir.data()),
             static_cast<std::streamsize>(dir.size()));

  std::vector<unsigned char> header;
  header.reserve(kHeaderBytes);
  header.insert(header.end(), kMagic, kMagic + 4);
  PutLe<std::uint32_t>(header, kVersion);
  PutLe<std::uint64_t>(header, series_written_);
  PutLe<std::uint64_t>(header, directory_.size());
  PutLe<std::uint64_t>(header, dir_offset);
  PutLe<std::uint32_t>(header,
                       static_cast<std::uint32_t>(options_.fixed_length));
  const std::uint32_t header_crc = Crc32(header.data(), header.size());
  PutLe<std::uint32_t>(header, header_crc);
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
  out_.flush();
  if (!out_) Fail(path_, "finalize failed");
  out_.close();
  finished_ = true;
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

DatasetReader::DatasetReader(const std::string& path,
                             DatasetReaderOptions options)
    : options_(options), path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) Fail(path_, "cannot open");
  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    Fail(path_, "fstat failed");
  }
  map_bytes_ = static_cast<std::size_t>(st.st_size);
  // Hold the fd until destruction alongside the mapping; mapping an
  // empty file is invalid, so reject short files before mmap.
  if (map_bytes_ < kHeaderBytes) {
    ::close(fd_);
    fd_ = -1;
    Fail(path_, "truncated: " + std::to_string(map_bytes_) +
                    " bytes is smaller than the header");
  }
  void* map = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_PRIVATE, fd_, 0);
  if (map == MAP_FAILED) {
    ::close(fd_);
    fd_ = -1;
    Fail(path_, "mmap failed");
  }
  map_ = static_cast<const unsigned char*>(map);

  try {
    // --- header ---
    if (std::memcmp(map_, kMagic, 4) != 0) {
      Fail(path_, "bad magic (not an RPMD dataset file)");
    }
    const auto version = GetLe<std::uint32_t>(map_ + 4);
    if (version != kVersion) {
      Fail(path_, "unsupported format version " + std::to_string(version) +
                      " (this build reads v" + std::to_string(kVersion) + ")");
    }
    const auto num_series = GetLe<std::uint64_t>(map_ + 8);
    const auto num_chunks = GetLe<std::uint64_t>(map_ + 16);
    const auto dir_offset = GetLe<std::uint64_t>(map_ + 24);
    fixed_length_ = GetLe<std::uint32_t>(map_ + 32);
    const auto header_crc = GetLe<std::uint32_t>(map_ + 36);
    if (Crc32(map_, kHeaderBytes - 4) != header_crc) {
      Fail(path_, "header CRC mismatch");
    }
    if (num_chunks > kMaxChunks) {
      Fail(path_, "corrupt chunk count " + std::to_string(num_chunks));
    }
    // Every series costs at least one value plus its label entry, so a
    // declared count beyond the file size is a count bomb, not data.
    if (num_series > map_bytes_) {
      Fail(path_, "corrupt series count " + std::to_string(num_series));
    }
    const std::uint64_t dir_bytes =
        num_chunks * kDirEntryBytes + sizeof(std::uint32_t);
    if (dir_offset < kHeaderBytes || dir_offset % 8 != 0 ||
        dir_offset > map_bytes_ || map_bytes_ - dir_offset < dir_bytes) {
      Fail(path_, "directory out of bounds");
    }

    // --- directory ---
    const unsigned char* dir = map_ + dir_offset;
    const auto dir_crc =
        GetLe<std::uint32_t>(dir + num_chunks * kDirEntryBytes);
    if (Crc32(dir, num_chunks * kDirEntryBytes) != dir_crc) {
      Fail(path_, "directory CRC mismatch");
    }
    if (num_series > 0 && num_chunks == 0) {
      Fail(path_, "series without chunks");
    }

    labels_.reserve(num_series);
    value_offsets_.reserve(num_series);
    if (fixed_length_ == 0) lengths_.reserve(num_series);
    chunks_.reserve(num_chunks);
    chunk_of_.reserve(num_chunks);

    std::uint64_t expected_first = 0;
    for (std::uint64_t c = 0; c < num_chunks; ++c) {
      const unsigned char* e = dir + c * kDirEntryBytes;
      ChunkRef ref;
      ref.offset = GetLe<std::uint64_t>(e);
      ref.bytes = GetLe<std::uint64_t>(e + 8);
      ref.first_series = GetLe<std::uint64_t>(e + 16);
      ref.count = GetLe<std::uint32_t>(e + 24);
      const auto meta_crc = GetLe<std::uint32_t>(e + 28);
      ref.data_crc = GetLe<std::uint32_t>(e + 32);
      const std::string at = "chunk " + std::to_string(c);
      if (ref.count == 0 || ref.count > kMaxSeriesPerChunk) {
        Fail(path_, at + ": corrupt series count " +
                        std::to_string(ref.count));
      }
      if (ref.first_series != expected_first) {
        Fail(path_, at + ": directory series index mismatch");
      }
      if (ref.offset < kHeaderBytes || ref.offset % 8 != 0 ||
          ref.offset > dir_offset || dir_offset - ref.offset < ref.bytes) {
        Fail(path_, at + ": chunk bounds out of range");
      }

      // Metadata block: count/reserved, label table, length table
      // (variable-length files), zero pad. Verified by CRC here at open
      // — sampling reads labels without ever touching value pages, so
      // table corruption must not wait for a value access to surface.
      std::uint64_t meta_bytes =
          8 + std::uint64_t{ref.count} * 4 +
          (fixed_length_ == 0 ? std::uint64_t{ref.count} * 8 : 0);
      meta_bytes += (8 - meta_bytes % 8) % 8;
      if (ref.bytes < meta_bytes) Fail(path_, at + ": truncated tables");
      const unsigned char* chunk = map_ + ref.offset;
      if (Crc32(chunk, meta_bytes) != meta_crc) {
        Fail(path_, at + ": table CRC mismatch");
      }
      if (GetLe<std::uint32_t>(chunk) != ref.count) {
        Fail(path_, at + ": chunk/directory series count mismatch");
      }

      ref.values_offset = ref.offset + meta_bytes;
      const std::uint64_t value_capacity = (ref.bytes - meta_bytes) / 8;
      std::uint64_t value_cursor = 0;
      const unsigned char* label_table = chunk + 8;
      const unsigned char* length_table = label_table + ref.count * 4;
      for (std::uint32_t i = 0; i < ref.count; ++i) {
        const std::uint64_t len =
            fixed_length_ != 0 ? fixed_length_
                               : GetLe<std::uint64_t>(length_table + i * 8);
        if (len == 0 || len > value_capacity - value_cursor) {
          Fail(path_, at + ": series length " + std::to_string(len) +
                          " overruns the chunk");
        }
        labels_.push_back(GetLe<std::int32_t>(label_table + i * 4));
        value_offsets_.push_back(ref.values_offset + value_cursor * 8);
        if (fixed_length_ == 0) lengths_.push_back(len);
        value_cursor += len;
      }
      if (value_cursor * 8 != ref.bytes - meta_bytes) {
        Fail(path_, at + ": value payload size mismatch");
      }
      chunk_of_.push_back(ref.first_series);
      chunks_.push_back(ref);
      expected_first += ref.count;
    }
    if (expected_first != num_series) {
      Fail(path_, "directory covers " + std::to_string(expected_first) +
                      " series, header declares " +
                      std::to_string(num_series));
    }

    chunk_verified_ =
        std::make_unique<std::atomic<std::uint8_t>[]>(chunks_.size());
    for (std::size_t c = 0; c < chunks_.size(); ++c) {
      chunk_verified_[c].store(0, std::memory_order_relaxed);
    }
    if (options_.eager_verify) {
      for (std::size_t c = 0; c < chunks_.size(); ++c) VerifyChunkData(c);
    }
  } catch (...) {
    ::munmap(const_cast<unsigned char*>(map_), map_bytes_);
    ::close(fd_);
    map_ = nullptr;
    fd_ = -1;
    throw;
  }
}

DatasetReader::~DatasetReader() {
  if (map_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(map_), map_bytes_);
  }
  if (fd_ >= 0) ::close(fd_);
}

std::size_t DatasetReader::length(std::size_t i) const {
  return fixed_length_ != 0 ? fixed_length_ : lengths_[i];
}

void DatasetReader::VerifyChunkData(std::size_t chunk) const {
  if (!options_.verify_data_crc) return;
  if (chunk_verified_[chunk].load(std::memory_order_acquire) != 0) return;
  const ChunkRef& ref = chunks_[chunk];
  const std::uint64_t value_bytes = ref.bytes - (ref.values_offset - ref.offset);
  const std::uint32_t crc = Crc32(map_ + ref.values_offset, value_bytes);
  if (crc != ref.data_crc) {
    Fail(path_, "chunk " + std::to_string(chunk) + ": value CRC mismatch");
  }
  chunk_verified_[chunk].store(1, std::memory_order_release);
}

SeriesView DatasetReader::values(std::size_t i) const {
  const auto it =
      std::upper_bound(chunk_of_.begin(), chunk_of_.end(), i);
  const auto chunk = static_cast<std::size_t>(it - chunk_of_.begin()) - 1;
  VerifyChunkData(chunk);
  return SeriesView(
      reinterpret_cast<const double*>(map_ + value_offsets_[i]), length(i));
}

LabeledSeries DatasetReader::Get(std::size_t i) const {
  LabeledSeries out;
  out.label = labels_[i];
  const SeriesView view = values(i);
  out.values.assign(view.begin(), view.end());
  return out;
}

std::map<int, std::size_t> DatasetReader::ClassHistogram() const {
  std::map<int, std::size_t> hist;
  for (int label : labels_) ++hist[label];
  return hist;
}

Dataset DatasetReader::ReadAll() const {
  Dataset out;
  for (std::size_t i = 0; i < size(); ++i) out.Add(Get(i));
  return out;
}

Dataset DatasetReader::ReadSubset(
    std::span<const std::size_t> indices) const {
  Dataset out;
  for (std::size_t i : indices) out.Add(Get(i));
  return out;
}

// ---------------------------------------------------------------------------
// Convenience round trips
// ---------------------------------------------------------------------------

void WriteDatasetFile(const Dataset& data, const std::string& path,
                      const DatasetWriterOptions& options) {
  DatasetWriter writer(path, options);
  for (const auto& inst : data) writer.Append(inst);
  writer.Finish();
}

Dataset ReadDatasetFile(const std::string& path) {
  DatasetReader reader(path);
  return reader.ReadAll();
}

}  // namespace rpm::ts
