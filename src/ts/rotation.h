// Circular rotation (shift) of time series, used by the Section 6.1
// rotation-invariance case study: a series is cut at a point and the two
// halves are swapped, emulating radial shape scans started elsewhere on
// the contour.

#ifndef RPM_TS_ROTATION_H_
#define RPM_TS_ROTATION_H_

#include <cstddef>

#include "ts/rng.h"
#include "ts/series.h"

namespace rpm::ts {

/// Returns `values` rotated at `cut`: [cut..end) followed by [0..cut).
/// `cut` is taken modulo the series length.
Series RotateAt(SeriesView values, std::size_t cut);

/// Rotates a series at its midpoint (the RPM rotation-invariant
/// classification trick from Section 6.1 builds this second view).
Series RotateAtMidpoint(SeriesView values);

/// Returns a copy of `data` with every instance rotated at an independent
/// uniformly random cut point. Training data is left untouched by the
/// paper's protocol; apply this to the test split only.
Dataset RandomlyRotate(const Dataset& data, Rng& rng);

}  // namespace rpm::ts

#endif  // RPM_TS_ROTATION_H_
