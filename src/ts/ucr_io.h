// Reader/writer for the UCR time-series archive text format: one
// instance per line, the first field is the class label, remaining
// fields are the observations. Fields may be separated by commas,
// spaces, or tabs — mixed freely within a line — and CRLF line endings
// are accepted, so real UCR files (including Windows-edited copies)
// drop into this reproduction unchanged. Labels written as floats
// (e.g. "1.0000000e+00", as in several archive files) are rounded to
// the nearest integer (llround); that rounding is the label contract
// the binary RPMD format (ts/dataset_io.h) inherits when text files
// are packed with ucr_convert — RPMD itself stores labels as int32
// exactly. For archive-scale data prefer the binary format: parsing
// decimal text is the slow path, docs/DATASETS.md has the comparison.

#ifndef RPM_TS_UCR_IO_H_
#define RPM_TS_UCR_IO_H_

#include <stdexcept>
#include <string>

#include "ts/series.h"

namespace rpm::ts {

/// Error raised on malformed UCR input.
class UcrFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses UCR-format text (label + values per line). Blank lines are
/// skipped. Labels may be written as floats (e.g. "1.0000000e+00") as in
/// several archive files; they are rounded to the nearest integer.
/// Throws UcrFormatError on non-numeric fields or label-only lines.
Dataset ParseUcr(const std::string& text);

/// Loads a UCR-format file from disk. Throws UcrFormatError if the file
/// cannot be opened or parsed.
Dataset LoadUcrFile(const std::string& path);

/// Serializes `data` in UCR format (comma-separated, label first).
std::string FormatUcr(const Dataset& data);

/// Writes `data` to `path` in UCR format. Throws UcrFormatError on IO error.
void SaveUcrFile(const Dataset& data, const std::string& path);

}  // namespace rpm::ts

#endif  // RPM_TS_UCR_IO_H_
