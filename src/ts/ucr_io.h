// Reader/writer for the UCR time-series archive text format:
// one instance per line, the first field is the class label, remaining
// fields are the observations; fields are separated by commas or
// whitespace. Real UCR files drop into this reproduction unchanged.

#ifndef RPM_TS_UCR_IO_H_
#define RPM_TS_UCR_IO_H_

#include <stdexcept>
#include <string>

#include "ts/series.h"

namespace rpm::ts {

/// Error raised on malformed UCR input.
class UcrFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses UCR-format text (label + values per line). Blank lines are
/// skipped. Labels may be written as floats (e.g. "1.0000000e+00") as in
/// several archive files; they are rounded to the nearest integer.
/// Throws UcrFormatError on non-numeric fields or label-only lines.
Dataset ParseUcr(const std::string& text);

/// Loads a UCR-format file from disk. Throws UcrFormatError if the file
/// cannot be opened or parsed.
Dataset LoadUcrFile(const std::string& path);

/// Serializes `data` in UCR format (comma-separated, label first).
std::string FormatUcr(const Dataset& data);

/// Writes `data` to `path` in UCR format. Throws UcrFormatError on IO error.
void SaveUcrFile(const Dataset& data, const std::string& path);

}  // namespace rpm::ts

#endif  // RPM_TS_UCR_IO_H_
