// Seeded synthetic generators producing UCR-archive-style dataset splits.
//
// The UCR archive itself is distributed under click-through terms and is
// not bundled here; these generators cover the archive's structural
// families instead (see DESIGN.md §3). Each generator embeds local
// class-discriminative subsequences at varying offsets under noise — the
// property RPM and the shapelet baselines exploit — and z-normalizes every
// instance, matching UCR convention. All generators are deterministic
// given (sizes, seed).

#ifndef RPM_TS_GENERATORS_H_
#define RPM_TS_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "ts/series.h"

namespace rpm::ts {

/// Cylinder-Bell-Funnel (Saito 1994): 3 classes; plateau / rising ramp /
/// falling ramp events of random onset and duration in unit noise.
DatasetSplit MakeCbf(std::size_t train_per_class, std::size_t test_per_class,
                     std::size_t length, std::uint64_t seed);

/// Two Patterns (Geurts 2001): 4 classes defined by the order of two
/// up-down / down-up step events placed at random positions.
DatasetSplit MakeTwoPatterns(std::size_t train_per_class,
                             std::size_t test_per_class, std::size_t length,
                             std::uint64_t seed);

/// Synthetic Control (Alcock & Manolopoulos 1999): 6 classes — normal,
/// cyclic, increasing/decreasing trend, upward/downward shift.
DatasetSplit MakeSyntheticControl(std::size_t train_per_class,
                                  std::size_t test_per_class,
                                  std::size_t length, std::uint64_t seed);

/// Gun/Point-style motion profile: both classes share a rise-hold-return
/// arm trajectory; the "gun" class adds holster-lift overshoot bumps.
DatasetSplit MakeGunPoint(std::size_t train_per_class,
                          std::size_t test_per_class, std::size_t length,
                          std::uint64_t seed);

/// Coffee-style spectra: mixtures of Gaussian absorption bands at fixed
/// wavenumbers; the two classes (Arabica/Robusta stand-ins) differ in the
/// amplitudes of two discriminative bands.
DatasetSplit MakeCoffee(std::size_t train_per_class,
                        std::size_t test_per_class, std::size_t length,
                        std::uint64_t seed);

/// ECGFiveDays-style heartbeats: P-QRS-T morphology from Gaussian bumps;
/// classes differ in T-wave amplitude and ST-segment level.
DatasetSplit MakeEcg(std::size_t train_per_class, std::size_t test_per_class,
                     std::size_t length, std::uint64_t seed);

/// Trace-style transients: 4 classes from the cross product of
/// {step event, none} x {oscillatory burst, none}.
DatasetSplit MakeTrace(std::size_t train_per_class,
                       std::size_t test_per_class, std::size_t length,
                       std::uint64_t seed);

/// Leaf/shape-outline-style series: radial scans of noisy regular polygons
/// (one vertex count per class). The family most sensitive to rotation,
/// used by the Section 6.1 case study.
DatasetSplit MakeShapeOutlines(std::size_t train_per_class,
                               std::size_t test_per_class,
                               std::size_t length, std::uint64_t seed);

/// ItalyPowerDemand-style short daily load profiles (length ~24): classes
/// differ in the position/level of morning and evening peaks.
DatasetSplit MakeItalyPower(std::size_t train_per_class,
                            std::size_t test_per_class, std::size_t length,
                            std::uint64_t seed);

/// Wafer-style process traces: plateaus with ramps; the anomalous class
/// carries a localized excursion.
DatasetSplit MakeWafer(std::size_t train_per_class,
                       std::size_t test_per_class, std::size_t length,
                       std::uint64_t seed);

/// Medical-alarm case study (Section 6.2 stand-in for MIMIC-II ABP):
/// arterial-blood-pressure beat trains. Class 1 = normal; class 2 = alarm,
/// drawn from three alarm morphologies (hypotension ramp, flatline
/// artifact, pulse-pressure narrowing).
DatasetSplit MakeAbpAlarm(std::size_t train_per_class,
                          std::size_t test_per_class, std::size_t length,
                          std::uint64_t seed);

/// Four-class variant of the medical-alarm task: 1 = normal, 2 =
/// hypotension ramp, 3 = flatline artifact, 4 = pulse-pressure narrowing.
/// Exercises alarm-*type* classification rather than binary detection.
DatasetSplit MakeAbpAlarmTypes(std::size_t train_per_class,
                               std::size_t test_per_class,
                               std::size_t length, std::uint64_t seed);

/// Symbols-style smooth curves: each class is a fixed smooth prototype
/// (random-walk smoothed) drawn with amplitude jitter and warping noise.
DatasetSplit MakeSymbols(std::size_t train_per_class,
                         std::size_t test_per_class, std::size_t length,
                         std::uint64_t seed);

/// FaceFour-style head-profile radial scans: a base periodic profile with
/// class-specific bump constellations (brow/nose/chin analogues).
DatasetSplit MakeFaceFour(std::size_t train_per_class,
                          std::size_t test_per_class, std::size_t length,
                          std::uint64_t seed);

/// Lightning-style transient bursts: classes differ in burst count and
/// decay profile over a noisy baseline.
DatasetSplit MakeLightning(std::size_t train_per_class,
                           std::size_t test_per_class, std::size_t length,
                           std::uint64_t seed);

/// MoteStrain-style sensor traces: slow drift plus class-specific level
/// shift patterns with heavy sensor noise.
DatasetSplit MakeMoteStrain(std::size_t train_per_class,
                            std::size_t test_per_class, std::size_t length,
                            std::uint64_t seed);

/// Cricket-style umpire-gesture accelerometer traces (the paper's
/// Figure 1 dataset): two classes with characteristic left- vs right-hand
/// movement events — mirrored double-bump gestures at jittered onsets.
DatasetSplit MakeCricket(std::size_t train_per_class,
                         std::size_t test_per_class, std::size_t length,
                         std::uint64_t seed);

/// Scale factor applied to the default suite sizes (1.0 = defaults used by
/// the bench harness; smaller for quick tests).
struct SuiteOptions {
  double size_scale = 1.0;
  std::uint64_t seed = 20160315;  // EDBT'16 opening day.
};

/// The ten-dataset evaluation suite used by the Table 1/2 benchmarks.
std::vector<DatasetSplit> BenchmarkSuite(const SuiteOptions& options = {});

/// The rotation-sensitive subset used by the Table 4 benchmark
/// (counterparts of Coffee, GunPoint, ShapeOutlines, Trace, SyntheticControl).
std::vector<DatasetSplit> RotationSuite(const SuiteOptions& options = {});

class DatasetWriter;  // ts/dataset_io.h

/// Archive-scale streaming emission (docs/DATASETS.md). Instead of
/// materializing a million-series DatasetSplit, GenerateToWriter draws
/// the requested family in bounded batches (one `batch_per_class` round
/// of every class at a time, labels interleaved in generator order) and
/// appends each instance to a binary DatasetWriter as it is produced.
/// Resident memory is O(batch_per_class * classes * length) regardless
/// of `num_series`. Deterministic given (family, options): the emitted
/// file is byte-identical across runs with the same options.
struct ArchiveOptions {
  std::size_t num_series = 0;       ///< total instances to emit
  std::size_t length = 128;
  std::uint64_t seed = 20160315;
  /// Instances drawn per class per batch round (the resident bound).
  std::size_t batch_per_class = 512;
};

/// Family names accepted by GenerateToWriter / GenerateToFile
/// ("CBF", "TwoPatterns", "GunPoint", ...; the Make* generators above).
std::vector<std::string> GeneratorFamilies();

/// Streams `options.num_series` instances of `family` into `writer`
/// (caller Finishes it). Throws std::invalid_argument on an unknown
/// family. Returns the number of series emitted.
std::size_t GenerateToWriter(const std::string& family,
                             const ArchiveOptions& options,
                             DatasetWriter& writer);

/// GenerateToWriter into a fresh fixed-length RPMD file at `path`
/// (created, written, and Finished inside the call).
std::size_t GenerateToFile(const std::string& family,
                           const ArchiveOptions& options,
                           const std::string& path);

}  // namespace rpm::ts

#endif  // RPM_TS_GENERATORS_H_
