#include "ts/series.h"

#include <algorithm>
#include <set>

namespace rpm::ts {

std::vector<int> Dataset::ClassLabels() const {
  std::set<int> labels;
  for (const auto& inst : instances_) labels.insert(inst.label);
  return {labels.begin(), labels.end()};
}

std::vector<std::size_t> Dataset::IndicesOfClass(int label) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i].label == label) out.push_back(i);
  }
  return out;
}

std::vector<LabeledSeries> Dataset::InstancesOfClass(int label) const {
  std::vector<LabeledSeries> out;
  for (const auto& inst : instances_) {
    if (inst.label == label) out.push_back(inst);
  }
  return out;
}

std::size_t Dataset::CountOfClass(int label) const {
  return static_cast<std::size_t>(
      std::count_if(instances_.begin(), instances_.end(),
                    [label](const LabeledSeries& s) { return s.label == label; }));
}

std::map<int, std::size_t> Dataset::ClassHistogram() const {
  std::map<int, std::size_t> hist;
  for (const auto& inst : instances_) ++hist[inst.label];
  return hist;
}

std::size_t Dataset::MaxLength() const {
  std::size_t m = 0;
  for (const auto& inst : instances_) m = std::max(m, inst.values.size());
  return m;
}

std::size_t Dataset::MinLength() const {
  if (instances_.empty()) return 0;
  std::size_t m = instances_.front().values.size();
  for (const auto& inst : instances_) m = std::min(m, inst.values.size());
  return m;
}

}  // namespace rpm::ts
