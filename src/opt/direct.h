// DIviding RECTangles (DIRECT, Jones/Perttunen/Stuckman 1993), the
// derivative-free global optimizer the paper uses to pick SAX parameters
// (Section 4.2): the unit hypercube is recursively trisected, and each
// iteration samples the centers of the potentially-optimal rectangles
// (lower-right convex hull of the (size, value) cloud).

#ifndef RPM_OPT_DIRECT_H_
#define RPM_OPT_DIRECT_H_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace rpm::opt {

/// Box constraints; lower.size() == upper.size() == dimension.
struct Bounds {
  std::vector<double> lower;
  std::vector<double> upper;

  std::size_t dimension() const { return lower.size(); }
};

/// Objective: minimized; receives a point in the original (unscaled) domain.
using Objective = std::function<double(std::span<const double>)>;

struct DirectOptions {
  std::size_t max_evaluations = 120;  ///< budget on objective calls
  std::size_t max_iterations = 40;    ///< budget on divide rounds
  /// Jones' epsilon: a rectangle must promise at least this relative
  /// improvement over the best value to be potentially optimal.
  double epsilon = 1e-4;
};

struct DirectResult {
  std::vector<double> best_point;
  double best_value = 0.0;
  std::size_t evaluations = 0;
  std::size_t iterations = 0;
};

/// Minimizes `f` over `bounds` with DIRECT. Throws std::invalid_argument
/// on empty or inconsistent bounds. Deterministic.
DirectResult Minimize(const Objective& f, const Bounds& bounds,
                      const DirectOptions& options = {});

}  // namespace rpm::opt

#endif  // RPM_OPT_DIRECT_H_
