#include "opt/direct.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rpm::opt {
namespace {

struct Rect {
  std::vector<double> center;  // in [0,1]^d
  std::vector<int> level;      // per-dim trisection count; side = 3^-level
  double value = 0.0;
  double size = 0.0;           // half-diagonal

  void ComputeSize() {
    double acc = 0.0;
    for (int l : level) {
      const double side = std::pow(3.0, -l);
      acc += side * side;
    }
    size = 0.5 * std::sqrt(acc);
  }
};

}  // namespace

DirectResult Minimize(const Objective& f, const Bounds& bounds,
                      const DirectOptions& options) {
  const std::size_t d = bounds.dimension();
  if (d == 0 || bounds.upper.size() != d) {
    throw std::invalid_argument("Direct: empty or inconsistent bounds");
  }
  for (std::size_t i = 0; i < d; ++i) {
    if (!(bounds.lower[i] <= bounds.upper[i])) {
      throw std::invalid_argument("Direct: lower > upper");
    }
  }

  DirectResult result;
  auto unscale = [&](const std::vector<double>& u) {
    std::vector<double> x(d);
    for (std::size_t i = 0; i < d; ++i) {
      x[i] = bounds.lower[i] + u[i] * (bounds.upper[i] - bounds.lower[i]);
    }
    return x;
  };
  auto eval = [&](const std::vector<double>& u) {
    ++result.evaluations;
    return f(unscale(u));
  };

  std::vector<Rect> rects;
  {
    Rect r;
    r.center.assign(d, 0.5);
    r.level.assign(d, 0);
    r.value = eval(r.center);
    r.ComputeSize();
    rects.push_back(std::move(r));
  }
  result.best_point = unscale(rects[0].center);
  result.best_value = rects[0].value;

  while (result.iterations < options.max_iterations &&
         result.evaluations < options.max_evaluations) {
    ++result.iterations;

    // Potentially-optimal rectangles: for each distinct size, the best
    // value; then keep those on the lower-right convex hull satisfying
    // Jones' epsilon test.
    std::vector<std::size_t> by_size(rects.size());
    for (std::size_t i = 0; i < by_size.size(); ++i) by_size[i] = i;
    std::sort(by_size.begin(), by_size.end(), [&](std::size_t a,
                                                  std::size_t b) {
      if (rects[a].size != rects[b].size) {
        return rects[a].size < rects[b].size;
      }
      return rects[a].value < rects[b].value;
    });
    // Best rect per size class.
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < by_size.size(); ++i) {
      if (i == 0 || rects[by_size[i]].size != rects[by_size[i - 1]].size) {
        candidates.push_back(by_size[i]);
      }
    }
    // Lower-right hull via monotone scan (sizes ascending).
    std::vector<std::size_t> hull;
    for (std::size_t c : candidates) {
      while (hull.size() >= 2) {
        const Rect& a = rects[hull[hull.size() - 2]];
        const Rect& b = rects[hull.back()];
        const Rect& p = rects[c];
        // Drop b if it lies above segment a-p.
        const double cross = (b.size - a.size) * (p.value - a.value) -
                             (p.size - a.size) * (b.value - a.value);
        if (cross >= 0.0) {
          hull.pop_back();
        } else {
          break;
        }
      }
      while (!hull.empty() &&
             rects[hull.back()].value >= rects[c].value &&
             rects[hull.back()].size <= rects[c].size) {
        hull.pop_back();
      }
      hull.push_back(c);
    }
    // Epsilon filter: rect must be able to beat fmin by epsilon*|fmin|.
    std::vector<std::size_t> selected;
    const double fmin = result.best_value;
    const double thresh = fmin - options.epsilon * std::max(1e-12,
                                                            std::abs(fmin));
    for (std::size_t idx = 0; idx < hull.size(); ++idx) {
      const Rect& r = rects[hull[idx]];
      // Slope to the next hull point bounds the achievable value.
      double slope = 0.0;
      if (idx + 1 < hull.size()) {
        const Rect& nx = rects[hull[idx + 1]];
        slope = (nx.value - r.value) / std::max(1e-300, nx.size - r.size);
      }
      const double potential = r.value - slope * r.size;
      if (idx + 1 == hull.size() || potential <= thresh ||
          r.value <= fmin + 1e-12) {
        selected.push_back(hull[idx]);
      }
    }
    if (selected.empty()) selected = hull;

    // Divide each selected rectangle along its longest dimensions.
    bool any_divided = false;
    for (std::size_t ri : selected) {
      if (result.evaluations >= options.max_evaluations) break;
      // Copy: rects re-allocates as we push.
      Rect base = rects[ri];
      const int min_level = *std::min_element(base.level.begin(),
                                              base.level.end());
      std::vector<std::size_t> long_dims;
      for (std::size_t i = 0; i < d; ++i) {
        if (base.level[i] == min_level) long_dims.push_back(i);
      }
      const double delta = std::pow(3.0, -(min_level + 1));

      struct Probe {
        std::size_t dim;
        double lo_val;
        double hi_val;
        std::vector<double> lo_c;
        std::vector<double> hi_c;
        double best() const { return std::min(lo_val, hi_val); }
      };
      std::vector<Probe> probes;
      for (std::size_t dim : long_dims) {
        if (result.evaluations + 2 > options.max_evaluations) break;
        Probe p;
        p.dim = dim;
        p.lo_c = base.center;
        p.hi_c = base.center;
        p.lo_c[dim] -= delta;
        p.hi_c[dim] += delta;
        p.lo_val = eval(p.lo_c);
        p.hi_val = eval(p.hi_c);
        probes.push_back(std::move(p));
      }
      if (probes.empty()) continue;
      any_divided = true;
      // Divide dims in order of their best sample (Jones' rule).
      std::sort(probes.begin(), probes.end(),
                [](const Probe& a, const Probe& b) {
                  return a.best() < b.best();
                });
      for (const Probe& p : probes) {
        base.level[p.dim] += 1;
        Rect lo;
        lo.center = p.lo_c;
        lo.level = base.level;
        lo.value = p.lo_val;
        lo.ComputeSize();
        Rect hi;
        hi.center = p.hi_c;
        hi.level = base.level;
        hi.value = p.hi_val;
        hi.ComputeSize();
        if (lo.value < result.best_value) {
          result.best_value = lo.value;
          result.best_point = unscale(lo.center);
        }
        if (hi.value < result.best_value) {
          result.best_value = hi.value;
          result.best_point = unscale(hi.center);
        }
        rects.push_back(std::move(lo));
        rects.push_back(std::move(hi));
      }
      base.ComputeSize();
      rects[ri] = std::move(base);
    }
    if (!any_divided) break;
  }
  return result;
}

}  // namespace rpm::opt
