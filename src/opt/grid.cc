#include "opt/grid.h"

#include <limits>
#include <stdexcept>

namespace rpm::opt {

GridResult GridSearchMin(
    const std::function<double(std::span<const int>)>& f,
    const std::vector<IntRange>& ranges) {
  if (ranges.empty()) {
    throw std::invalid_argument("GridSearchMin: no ranges");
  }
  for (const auto& r : ranges) {
    if (r.count() == 0) {
      throw std::invalid_argument("GridSearchMin: empty range");
    }
  }
  GridResult result;
  result.best_value = std::numeric_limits<double>::infinity();

  std::vector<int> point(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) point[i] = ranges[i].lo;

  while (true) {
    const double v = f(point);
    ++result.evaluations;
    if (v < result.best_value) {
      result.best_value = v;
      result.best_point = point;
    }
    // Odometer increment.
    std::size_t dim = 0;
    while (dim < ranges.size()) {
      point[dim] += ranges[dim].step;
      if (point[dim] <= ranges[dim].hi) break;
      point[dim] = ranges[dim].lo;
      ++dim;
    }
    if (dim == ranges.size()) break;
  }
  return result;
}

}  // namespace rpm::opt
