// Exhaustive integer grid search, the brute-force alternative to DIRECT
// for SAX parameter selection (Section 4.1, Algorithm 3).

#ifndef RPM_OPT_GRID_H_
#define RPM_OPT_GRID_H_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace rpm::opt {

/// Inclusive integer range with stride.
struct IntRange {
  int lo = 0;
  int hi = 0;
  int step = 1;

  std::size_t count() const {
    if (hi < lo || step <= 0) return 0;
    return static_cast<std::size_t>((hi - lo) / step) + 1;
  }
};

/// Minimization result over the grid.
struct GridResult {
  std::vector<int> best_point;
  double best_value = 0.0;
  std::size_t evaluations = 0;
};

/// Evaluates `f` at every point of the Cartesian product of `ranges` and
/// returns the minimizer. `f` may return +inf to reject a combination
/// (the paper's candidate-pool-empty pruning). Throws on empty ranges.
GridResult GridSearchMin(
    const std::function<double(std::span<const int>)>& f,
    const std::vector<IntRange>& ranges);

}  // namespace rpm::opt

#endif  // RPM_OPT_GRID_H_
