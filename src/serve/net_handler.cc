#include "serve/net_handler.h"

#include <algorithm>
#include <exception>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/exposition.h"
#include "obs/trace.h"

namespace rpm::serve {

namespace {

using net::BinaryVerb;
using net::EncodeFrame;
using net::PayloadReader;
using net::PayloadWriter;
using net::WireStatus;

net::Response ErrFrame(std::uint8_t verb, WireStatus status,
                       const std::string& message, bool close = false) {
  std::string payload;
  PayloadWriter writer(&payload);
  writer.Str(message);
  return {EncodeFrame(verb, static_cast<std::uint8_t>(status), payload),
          close};
}

net::Response OkFrame(std::uint8_t verb, const std::string& payload,
                      bool close = false) {
  return {EncodeFrame(verb, static_cast<std::uint8_t>(WireStatus::kOk),
                      payload),
          close};
}

WireStatus StatusToWire(StatusCode status) {
  switch (status) {
    case StatusCode::kOk:
      return WireStatus::kOk;
    case StatusCode::kTimeout:
      return WireStatus::kTimeout;
    case StatusCode::kOverloaded:
      return WireStatus::kOverloaded;
    case StatusCode::kNotFound:
      return WireStatus::kNotFound;
    case StatusCode::kShutdown:
      return WireStatus::kShutdown;
  }
  return WireStatus::kBadRequest;
}

/// Stream-open error strings -> wire status, same mapping the text
/// protocol applies in HandleLineAsync.
WireStatus OpenErrorToWire(const std::string& error) {
  if (error.rfind("no model", 0) == 0) return WireStatus::kNotFound;
  if (error == "too many open streams") return WireStatus::kOverloaded;
  if (error == "shutting down") return WireStatus::kShutdown;
  return WireStatus::kBadRequest;
}

}  // namespace

void NetHandler::OnTextLine(std::size_t shard, const std::string& line,
                            Respond respond) {
  // QUIT is connection-scoped, not server-scoped: answer and close here
  // rather than teaching the server about connections.
  std::istringstream in(line);
  std::string cmd;
  if (in >> cmd && cmd == "QUIT") {
    respond({"OK bye", true});
    return;
  }
  server_->HandleLineAsync(line, shard,
                           [respond = std::move(respond)](std::string text) {
                             respond({std::move(text), false});
                           });
}

void NetHandler::OnFrame(std::size_t shard, const net::Frame& frame,
                         Respond respond) {
  const std::uint8_t verb = frame.verb;
  PayloadReader reader(frame.payload);
  if (!net::IsKnownVerb(verb)) {
    respond(ErrFrame(verb, WireStatus::kBadRequest,
                     "unknown verb " + std::to_string(int(verb)),
                     /*close=*/false));
    return;
  }

  switch (static_cast<BinaryVerb>(verb)) {
    case BinaryVerb::kQuit: {
      respond(OkFrame(verb, "", /*close=*/true));
      return;
    }
    case BinaryVerb::kStats: {
      // Bulk bodies ride as blobs (u32 length): multi-shard exposition
      // and span dumps routinely exceed the u16 `str` bound, which
      // would silently truncate them.
      std::string payload;
      PayloadWriter writer(&payload);
      writer.Blob(server_->Stats().ToJson());
      respond(OkFrame(verb, payload));
      return;
    }
    case BinaryVerb::kMetrics: {
      std::string payload;
      PayloadWriter writer(&payload);
      writer.Blob(server_->MetricsText());
      respond(OkFrame(verb, payload));
      return;
    }
    case BinaryVerb::kTrace: {
      std::uint32_t n = 0;
      if (!reader.U32(&n)) {
        respond(ErrFrame(verb, WireStatus::kBadRequest,
                         "TRACE payload: u32 span count"));
        return;
      }
      if (n == 0) n = 32;
      n = std::min<std::uint32_t>(n, 1024);
      const auto spans = obs::Tracer::Default().Recent(n);
      std::string payload;
      PayloadWriter writer(&payload);
      writer.Blob(obs::RenderSpansJson(spans));
      respond(OkFrame(verb, payload));
      return;
    }
    case BinaryVerb::kModels: {
      const std::vector<std::string> names = server_->registry().Names();
      std::string payload;
      PayloadWriter writer(&payload);
      writer.U32(std::uint32_t(names.size()));
      for (const auto& name : names) writer.Str(name);
      respond(OkFrame(verb, payload));
      return;
    }
    case BinaryVerb::kLoad: {
      std::string name;
      std::string path;
      if (!reader.Str(&name) || !reader.Str(&path)) {
        respond(ErrFrame(verb, WireStatus::kBadRequest,
                         "LOAD payload: str name, str path"));
        return;
      }
      try {
        const std::size_t patterns = server_->LoadModel(name, path);
        std::string payload;
        PayloadWriter writer(&payload);
        writer.Str(name);
        writer.U64(patterns);
        respond(OkFrame(verb, payload));
      } catch (const std::exception& e) {
        respond(ErrFrame(verb, WireStatus::kBadRequest, e.what()));
      }
      return;
    }
    case BinaryVerb::kUnload: {
      std::string name;
      if (!reader.Str(&name)) {
        respond(ErrFrame(verb, WireStatus::kBadRequest,
                         "UNLOAD payload: str name"));
        return;
      }
      if (!server_->UnloadModel(name)) {
        respond(ErrFrame(verb, WireStatus::kNotFound,
                         "no model named '" + name + "'"));
        return;
      }
      std::string payload;
      PayloadWriter writer(&payload);
      writer.Str(name);
      respond(OkFrame(verb, payload));
      return;
    }
    case BinaryVerb::kClassify: {
      std::string model;
      std::uint32_t timeout_ms = 0;
      std::vector<double> values;
      if (!reader.Str(&model) || !reader.U32(&timeout_ms) ||
          !reader.F64Array(&values) || values.empty()) {
        respond(ErrFrame(
            verb, WireStatus::kBadRequest,
            "CLASSIFY payload: str model, u32 timeout_ms, f64[] values"));
        return;
      }
      const std::chrono::microseconds timeout =
          timeout_ms == 0 ? std::chrono::microseconds(
                                server_->default_timeout())
                          : std::chrono::microseconds(
                                std::chrono::milliseconds(timeout_ms));
      server_->ClassifyWithCallback(
          model, ts::Series(values.begin(), values.end()), timeout, shard,
          [respond = std::move(respond), verb,
           model](ClassifyResult result) {
            if (result.status != StatusCode::kOk) {
              const std::string detail =
                  result.status == StatusCode::kNotFound
                      ? "no model named '" + model + "'"
                      : std::string(StatusName(result.status));
              respond(ErrFrame(verb, StatusToWire(result.status), detail));
              return;
            }
            std::string payload;
            PayloadWriter writer(&payload);
            writer.I32(result.label);
            respond(OkFrame(verb, payload));
          });
      return;
    }
    case BinaryVerb::kStreamOpen: {
      std::string model;
      std::uint32_t window = 0;
      std::uint32_t hop = 0;
      double early_fraction = 0.0;
      double early_margin = 0.0;
      if (!reader.Str(&model) || !reader.U32(&window) || !reader.U32(&hop) ||
          !reader.F64(&early_fraction) || !reader.F64(&early_margin) ||
          window == 0) {
        respond(ErrFrame(verb, WireStatus::kBadRequest,
                         "STREAM_OPEN payload: str model, u32 window, u32 "
                         "hop, f64 early_fraction, f64 early_margin"));
        return;
      }
      stream::StreamOptions opts;
      opts.window = window;
      opts.hop = hop;
      opts.early_fraction = early_fraction;
      opts.early_margin = early_margin;
      const auto result = server_->OpenStream(model, opts, shard);
      if (!result.ok) {
        respond(ErrFrame(verb, OpenErrorToWire(result.error), result.error));
        return;
      }
      std::string payload;
      PayloadWriter writer(&payload);
      writer.Str(result.id);
      writer.U32(window);
      writer.U32(hop == 0 ? window : hop);
      respond(OkFrame(verb, payload));
      return;
    }
    case BinaryVerb::kStreamFeed: {
      std::string id;
      std::vector<double> values;
      if (!reader.Str(&id) || !reader.F64Array(&values) || values.empty()) {
        respond(ErrFrame(verb, WireStatus::kBadRequest,
                         "STREAM_FEED payload: str id, f64[] values"));
        return;
      }
      const auto result = server_->FeedStream(
          id, ts::SeriesView(values.data(), values.size()));
      using FeedStatus = stream::StreamSessionManager::FeedStatus;
      if (result.status == FeedStatus::kNotFound) {
        respond(ErrFrame(verb, WireStatus::kNotFound,
                         "no stream named '" + id + "'"));
        return;
      }
      if (result.status == FeedStatus::kShutdown) {
        respond(ErrFrame(verb, WireStatus::kShutdown, "shutting down"));
        return;
      }
      std::string payload;
      PayloadWriter writer(&payload);
      writer.U32(std::uint32_t(result.accepted));
      writer.U32(std::uint32_t(result.decisions.size()));
      for (const auto& d : result.decisions) {
        writer.U64(d.window_index);
        writer.I32(d.label);
        writer.F64(d.margin);
        writer.U8(d.early ? 1 : 0);
      }
      respond(OkFrame(verb, payload));
      return;
    }
    case BinaryVerb::kStreamClose: {
      std::string id;
      if (!reader.Str(&id)) {
        respond(ErrFrame(verb, WireStatus::kBadRequest,
                         "STREAM_CLOSE payload: str id"));
        return;
      }
      const auto result = server_->CloseStream(id);
      if (!result.found) {
        respond(ErrFrame(verb, WireStatus::kNotFound,
                         "no stream named '" + id + "'"));
        return;
      }
      std::string payload;
      PayloadWriter writer(&payload);
      writer.U64(result.summary.samples);
      writer.U64(result.summary.windows_scored);
      writer.U64(result.summary.decisions);
      writer.U64(result.summary.early_decisions);
      respond(OkFrame(verb, payload));
      return;
    }
    case BinaryVerb::kStreams: {
      const std::vector<std::string> ids = server_->StreamIds();
      std::string payload;
      PayloadWriter writer(&payload);
      writer.U32(std::uint32_t(ids.size()));
      for (const auto& id : ids) writer.Str(id);
      respond(OkFrame(verb, payload));
      return;
    }
  }
  respond(ErrFrame(verb, WireStatus::kBadRequest, "unhandled verb"));
}

}  // namespace rpm::serve
