#include "serve/model_registry.h"

#include <mutex>
#include <stdexcept>
#include <utility>

namespace rpm::serve {

std::size_t ModelRegistry::Load(const std::string& name,
                                const std::string& path) {
  // Parse and build contexts before touching the map: a bad file must not
  // disturb the currently served model, and a good one must not hold the
  // exclusive lock while its contexts warm up.
  auto model = std::make_shared<const LoadedModel>(
      core::RpmClassifier::LoadFromFile(path));
  const std::size_t patterns = model->classifier.patterns().size();
  {
    std::unique_lock lock(mutex_);
    models_[name] = std::move(model);
  }
  return patterns;
}

void ModelRegistry::Put(const std::string& name, core::RpmClassifier clf) {
  if (!clf.trained()) {
    throw std::logic_error("ModelRegistry::Put: classifier not trained");
  }
  auto model = std::make_shared<const LoadedModel>(std::move(clf));
  std::unique_lock lock(mutex_);
  models_[name] = std::move(model);
}

bool ModelRegistry::Unload(const std::string& name) {
  // The erased handle is destroyed after the lock is released (it was
  // moved out first) — or later still, by the last in-flight request.
  ModelHandle retired;
  std::unique_lock lock(mutex_);
  auto it = models_.find(name);
  if (it == models_.end()) return false;
  retired = std::move(it->second);
  models_.erase(it);
  return true;
}

ModelHandle ModelRegistry::Get(const std::string& name) const {
  std::shared_lock lock(mutex_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, model] : models_) names.push_back(name);
  return names;
}

std::size_t ModelRegistry::size() const {
  std::shared_lock lock(mutex_);
  return models_.size();
}

}  // namespace rpm::serve
