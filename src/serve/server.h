// The inference server: registry + batching queue + stats behind one
// facade, with both an in-process C++ API (tests, benches, embedding)
// and a line-oriented text protocol (the socket front end in
// examples/rpm_serve.cc). One request line maps to one response line:
//
//   LOAD <name> <path>                  -> OK loaded <name> patterns=<K>
//   UNLOAD <name>                       -> OK unloaded <name>
//   MODELS                              -> OK <n> <name...>
//   CLASSIFY <name> <v1,v2,...> [T_MS]  -> OK <label>
//   STATS                               -> OK <one-line JSON>
//   QUIT                                -> OK bye
//
// Failures answer "ERR <CODE> <detail>", where CODE is one of TIMEOUT,
// OVERLOADED, NOT_FOUND, SHUTDOWN, BAD_REQUEST. The protocol carries no
// connection state, so HandleLine is safe to call from any number of
// connection threads concurrently.

#ifndef RPM_SERVE_SERVER_H_
#define RPM_SERVE_SERVER_H_

#include <chrono>
#include <future>
#include <string>

#include "serve/batching_queue.h"
#include "serve/model_registry.h"
#include "serve/server_stats.h"

namespace rpm::serve {

struct ServerOptions {
  BatchingOptions batching;
  /// Deadline applied to CLASSIFY requests that don't carry their own.
  std::chrono::milliseconds default_timeout{1000};
};

class InferenceServer {
 public:
  explicit InferenceServer(ServerOptions options = {});
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // ---- In-process API ----

  /// Loads (or hot-reloads) a persisted model; returns its pattern count.
  std::size_t LoadModel(const std::string& name, const std::string& path);

  /// Registers an already-trained classifier under `name`.
  void AddModel(const std::string& name, core::RpmClassifier clf);

  /// Removes `name`; in-flight requests on it complete normally.
  bool UnloadModel(const std::string& name);

  /// Enqueues one request; the future resolves when its micro-batch is
  /// dispatched (or it is rejected/timed out).
  std::future<ClassifyResult> ClassifyAsync(
      const std::string& model, ts::Series values,
      std::chrono::microseconds timeout);

  /// Blocking convenience wrapper around ClassifyAsync.
  ClassifyResult Classify(const std::string& model, ts::Series values,
                          std::chrono::microseconds timeout);
  ClassifyResult Classify(const std::string& model, ts::Series values);

  StatsSnapshot Stats() const { return stats_.Snapshot(); }
  ModelRegistry& registry() { return registry_; }

  /// Stops admissions, drains admitted requests. Idempotent.
  void Shutdown();

  // ---- Text protocol ----

  /// Handles one protocol line (no trailing newline) and returns the
  /// response line. Thread-safe; CLASSIFY blocks the calling connection
  /// thread until its batch completes, which is what lets concurrent
  /// connections form batches.
  std::string HandleLine(const std::string& line);

 private:
  ServerOptions options_;
  ModelRegistry registry_;
  ServerStats stats_;
  BatchingQueue queue_;
};

}  // namespace rpm::serve

#endif  // RPM_SERVE_SERVER_H_
