// The inference server: registry + batching queue + stats behind one
// facade, with both an in-process C++ API (tests, benches, embedding)
// and a line-oriented text protocol (the socket front end in
// examples/rpm_serve.cc). One request line maps to one response line:
//
//   LOAD <name> <path>                  -> OK loaded <name> patterns=<K>
//   UNLOAD <name>                       -> OK unloaded <name>
//   MODELS                              -> OK <n> <name...>
//   CLASSIFY <name> <v1,v2,...> [T_MS]  -> OK <label>
//   STATS                               -> OK <one-line JSON>
//   METRICS                             -> OK metrics\n<Prometheus text>
//                                          ...terminated by a "# EOF" line
//   TRACE [n]                           -> OK <spans JSON array>
//   QUIT                                -> OK bye
//
// METRICS is the one multi-line response in the protocol: the first
// line is "OK metrics", then the Prometheus exposition of the server's
// metric registry plus the process-default registry (matcher counters),
// ending with "# EOF". STATS and METRICS are views of the same
// obs::MetricRegistry, so their request counts agree once traffic has
// drained. TRACE returns the most recent n (default 32, max 1024)
// finished trace spans as one JSON line; tracing must be enabled on the
// process tracer (rpm_serve --trace-sample) for spans to accumulate.
//
// Streaming verbs (src/stream) ride the same line protocol; session ids
// name server-side per-stream state, so these lines ARE stateful across
// a connection's lifetime (any connection may drive any session):
//
//   STREAM_OPEN <model> <window> [hop] [early_frac] [early_margin]
//                                       -> OK stream <id> window=W hop=H
//   STREAM_FEED <id> <v1,v2,...>        -> OK fed <n> decisions=<d>
//                                            [<k>:<label>:<margin>[:early]...]
//   STREAM_CLOSE <id>                   -> OK closed <id> samples=...
//                                            windows=... decisions=... early=...
//   STREAMS                             -> OK <n> <id...>
//
// STREAM_FEED may accept fewer samples than offered (backpressure: the
// session ring is full); the producer re-offers the remainder.
//
// The same verbs are also reachable over the length-prefixed binary
// framing (net/frame.h); serve/net_handler.h is the bridge that decodes
// binary requests into the calls below and encodes the replies.
//
// Failures answer "ERR <CODE> <detail>", where CODE is one of TIMEOUT,
// OVERLOADED, NOT_FOUND, SHUTDOWN, BAD_REQUEST. Apart from stream
// sessions the protocol carries no connection state, so HandleLine is
// safe to call from any number of connection threads concurrently.
//
// Sharding: with ServerOptions::num_shards = S > 1 the server holds S
// independent (BatchingQueue, StreamSessionManager) pairs. A shard is a
// lock domain: feeds into a session on shard i touch only shard i's
// session map, so S reactor threads feeding their own shards never
// contend. Session ids interleave (shard i mints s<i+1>, s<i+1+S>, ...)
// and encode their home shard — FeedStream/CloseStream route by id, so
// the id-only API stays shard-oblivious. The model registry and the
// stats facade remain global: LOAD/UNLOAD are control-plane rare, and
// STATS must aggregate. Defaults (S = 1) behave exactly like the
// pre-sharding server.

#ifndef RPM_SERVE_SERVER_H_
#define RPM_SERVE_SERVER_H_

#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/frame.h"
#include "serve/batching_queue.h"
#include "serve/model_registry.h"
#include "serve/server_stats.h"
#include "stream/session_manager.h"
#include "stream/stream_scorer.h"

namespace rpm::serve {

struct ServerOptions {
  BatchingOptions batching;
  /// Deadline applied to CLASSIFY requests that don't carry their own.
  std::chrono::milliseconds default_timeout{1000};
  /// Stream session limits (max sessions, idle eviction, reaper cadence).
  /// max_sessions is enforced per shard; id_start/id_stride are
  /// overwritten by the server's shard numbering.
  stream::StreamManagerOptions streaming;
  /// Independent queue+session lock domains; see the file comment.
  std::size_t num_shards = 1;
};

/// The line reassembler moved to src/net with the rest of the wire
/// framing; the alias keeps the historical serve:: name working.
using LineAssembler = net::LineAssembler;

class InferenceServer {
 public:
  explicit InferenceServer(ServerOptions options = {});
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // ---- In-process API ----

  /// Loads (or hot-reloads) a persisted model; returns its pattern count.
  std::size_t LoadModel(const std::string& name, const std::string& path);

  /// Registers an already-trained classifier under `name`.
  void AddModel(const std::string& name, core::RpmClassifier clf);

  /// Removes `name`; in-flight requests on it complete normally.
  bool UnloadModel(const std::string& name);

  /// Enqueues one request; the future resolves when its micro-batch is
  /// dispatched (or it is rejected/timed out).
  std::future<ClassifyResult> ClassifyAsync(
      const std::string& model, ts::Series values,
      std::chrono::microseconds timeout, std::size_t shard = 0);

  /// Callback form for event-driven callers: `done` runs exactly once,
  /// inline for rejections (not-found, overload, shutdown) or on the
  /// shard's dispatcher thread after batch dispatch. Must not block.
  void ClassifyWithCallback(const std::string& model, ts::Series values,
                            std::chrono::microseconds timeout,
                            std::size_t shard, BatchingQueue::Callback done);

  /// Blocking convenience wrapper around ClassifyAsync.
  ClassifyResult Classify(const std::string& model, ts::Series values,
                          std::chrono::microseconds timeout);
  ClassifyResult Classify(const std::string& model, ts::Series values);

  StatsSnapshot Stats() const { return stats_.Snapshot(); }
  ModelRegistry& registry() { return registry_; }
  std::chrono::milliseconds default_timeout() const {
    return options_.default_timeout;
  }

  /// Prometheus text exposition of this server's metric registry plus
  /// the process-default registry (the METRICS response body). Ends
  /// with "# EOF\n".
  std::string MetricsText() const;
  obs::MetricRegistry& metrics() { return stats_.registry(); }

  // ---- Streaming API (protocol-independent) ----

  /// Opens a stream session on `model` pinned to `shard`, holding the
  /// currently loaded version for the session's lifetime (hot reloads
  /// don't affect it). The returned id encodes the shard, so the
  /// id-keyed calls below need no shard argument.
  stream::StreamSessionManager::OpenResult OpenStream(
      const std::string& model, stream::StreamOptions options,
      std::size_t shard = 0);
  /// Routed to the session's home shard by id.
  stream::StreamSessionManager::FeedResult FeedStream(
      const std::string& id, ts::SeriesView values);
  stream::StreamSessionManager::CloseResult CloseStream(
      const std::string& id);

  /// Shard `shard`'s session manager (shard 0 by default, which IS the
  /// whole streaming state on an unsharded server).
  stream::StreamSessionManager& streams(std::size_t shard = 0);
  /// Home shard of a session id ("s<N>" -> (N-1) % num_shards; 0 for
  /// anything unparseable — the lookup there reports NOT_FOUND).
  std::size_t ShardOfStreamId(std::string_view id) const;
  /// Open session ids across every shard, numerically sorted.
  std::vector<std::string> StreamIds() const;
  std::size_t num_shards() const { return shards_.size(); }

  /// Stops admissions, closes stream sessions, drains admitted requests.
  /// Each shard drains its own queue and closes its own sessions, so
  /// every admitted request completes and every session closes exactly
  /// once (STATS: opened == closed + evicted). Idempotent.
  void Shutdown();

  // ---- Text protocol ----

  /// Handles one protocol line (no trailing newline) and returns the
  /// response line. Thread-safe; CLASSIFY blocks the calling connection
  /// thread until its batch completes, which is what lets concurrent
  /// connections form batches.
  std::string HandleLine(const std::string& line);

  /// Non-blocking form for the event-driven front end: `respond` is
  /// called exactly once with the response line — inline for every verb
  /// except CLASSIFY, which answers from shard `shard`'s dispatcher
  /// thread when its micro-batch completes. Stream verbs run on the
  /// calling thread against the session's home shard.
  void HandleLineAsync(const std::string& line, std::size_t shard,
                       std::function<void(std::string)> respond);

 private:
  struct Shard;

  ServerOptions options_;
  ModelRegistry registry_;
  ServerStats stats_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rpm::serve

#endif  // RPM_SERVE_SERVER_H_
