// The inference server: registry + batching queue + stats behind one
// facade, with both an in-process C++ API (tests, benches, embedding)
// and a line-oriented text protocol (the socket front end in
// examples/rpm_serve.cc). One request line maps to one response line:
//
//   LOAD <name> <path>                  -> OK loaded <name> patterns=<K>
//   UNLOAD <name>                       -> OK unloaded <name>
//   MODELS                              -> OK <n> <name...>
//   CLASSIFY <name> <v1,v2,...> [T_MS]  -> OK <label>
//   STATS                               -> OK <one-line JSON>
//   METRICS                             -> OK metrics\n<Prometheus text>
//                                          ...terminated by a "# EOF" line
//   TRACE [n]                           -> OK <spans JSON array>
//   QUIT                                -> OK bye
//
// METRICS is the one multi-line response in the protocol: the first
// line is "OK metrics", then the Prometheus exposition of the server's
// metric registry plus the process-default registry (matcher counters),
// ending with "# EOF". STATS and METRICS are views of the same
// obs::MetricRegistry, so their request counts agree once traffic has
// drained. TRACE returns the most recent n (default 32, max 1024)
// finished trace spans as one JSON line; tracing must be enabled on the
// process tracer (rpm_serve --trace-sample) for spans to accumulate.
//
// Streaming verbs (src/stream) ride the same line protocol; session ids
// name server-side per-stream state, so these lines ARE stateful across
// a connection's lifetime (any connection may drive any session):
//
//   STREAM_OPEN <model> <window> [hop] [early_frac] [early_margin]
//                                       -> OK stream <id> window=W hop=H
//   STREAM_FEED <id> <v1,v2,...>        -> OK fed <n> decisions=<d>
//                                            [<k>:<label>:<margin>[:early]...]
//   STREAM_CLOSE <id>                   -> OK closed <id> samples=...
//                                            windows=... decisions=... early=...
//   STREAMS                             -> OK <n> <id...>
//
// STREAM_FEED may accept fewer samples than offered (backpressure: the
// session ring is full); the producer re-offers the remainder.
//
// Failures answer "ERR <CODE> <detail>", where CODE is one of TIMEOUT,
// OVERLOADED, NOT_FOUND, SHUTDOWN, BAD_REQUEST. Apart from stream
// sessions the protocol carries no connection state, so HandleLine is
// safe to call from any number of connection threads concurrently.

#ifndef RPM_SERVE_SERVER_H_
#define RPM_SERVE_SERVER_H_

#include <chrono>
#include <deque>
#include <future>
#include <string>
#include <string_view>

#include "serve/batching_queue.h"
#include "serve/model_registry.h"
#include "serve/server_stats.h"
#include "stream/session_manager.h"
#include "stream/stream_scorer.h"

namespace rpm::serve {

struct ServerOptions {
  BatchingOptions batching;
  /// Deadline applied to CLASSIFY requests that don't carry their own.
  std::chrono::milliseconds default_timeout{1000};
  /// Stream session limits (max sessions, idle eviction, reaper cadence).
  stream::StreamManagerOptions streaming;
};

/// Reassembles protocol lines from arbitrary read() chunks, with a hard
/// bound on line length so a client that never sends '\n' (or sends one
/// gigantic line) cannot grow server memory without limit. Oversized
/// lines are discarded as they arrive and surface as kOversized exactly
/// once — at the point where the line would have completed — so the
/// connection can answer with an explicit error and keep going.
class LineAssembler {
 public:
  static constexpr std::size_t kDefaultMaxLine = std::size_t{1} << 20;

  explicit LineAssembler(std::size_t max_line = kDefaultMaxLine)
      : max_line_(max_line) {}

  /// Buffers one received chunk (any framing: partial lines, many lines,
  /// split anywhere — including mid-CRLF).
  void Append(std::string_view data);

  enum class LineStatus {
    kNone,       ///< no complete line buffered yet
    kLine,       ///< *line holds the next line (no '\n', '\r' stripped)
    kOversized,  ///< a line exceeded max_line and was dropped
  };
  /// Pops the next complete line in arrival order.
  LineStatus NextLine(std::string* line);

  std::size_t max_line() const { return max_line_; }

 private:
  struct Item {
    bool oversized;
    std::string line;
  };
  std::size_t max_line_;
  std::deque<Item> ready_;
  std::string partial_;
  bool discarding_ = false;
};

class InferenceServer {
 public:
  explicit InferenceServer(ServerOptions options = {});
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // ---- In-process API ----

  /// Loads (or hot-reloads) a persisted model; returns its pattern count.
  std::size_t LoadModel(const std::string& name, const std::string& path);

  /// Registers an already-trained classifier under `name`.
  void AddModel(const std::string& name, core::RpmClassifier clf);

  /// Removes `name`; in-flight requests on it complete normally.
  bool UnloadModel(const std::string& name);

  /// Enqueues one request; the future resolves when its micro-batch is
  /// dispatched (or it is rejected/timed out).
  std::future<ClassifyResult> ClassifyAsync(
      const std::string& model, ts::Series values,
      std::chrono::microseconds timeout);

  /// Blocking convenience wrapper around ClassifyAsync.
  ClassifyResult Classify(const std::string& model, ts::Series values,
                          std::chrono::microseconds timeout);
  ClassifyResult Classify(const std::string& model, ts::Series values);

  StatsSnapshot Stats() const { return stats_.Snapshot(); }
  ModelRegistry& registry() { return registry_; }

  /// Prometheus text exposition of this server's metric registry plus
  /// the process-default registry (the METRICS response body). Ends
  /// with "# EOF\n".
  std::string MetricsText() const;
  obs::MetricRegistry& metrics() { return stats_.registry(); }

  // ---- Streaming API (protocol-independent) ----

  /// Opens a stream session on `model`, pinning the currently loaded
  /// version for the session's lifetime (hot reloads don't affect it).
  stream::StreamSessionManager::OpenResult OpenStream(
      const std::string& model, stream::StreamOptions options);
  stream::StreamSessionManager::FeedResult FeedStream(
      const std::string& id, ts::SeriesView values);
  stream::StreamSessionManager::CloseResult CloseStream(
      const std::string& id);
  stream::StreamSessionManager& streams() { return streams_; }

  /// Stops admissions, closes stream sessions, drains admitted requests.
  /// Idempotent.
  void Shutdown();

  // ---- Text protocol ----

  /// Handles one protocol line (no trailing newline) and returns the
  /// response line. Thread-safe; CLASSIFY blocks the calling connection
  /// thread until its batch completes, which is what lets concurrent
  /// connections form batches.
  std::string HandleLine(const std::string& line);

 private:
  /// Forwards stream lifecycle/throughput events into ServerStats.
  class StreamSink : public stream::StreamStatsSink {
   public:
    explicit StreamSink(ServerStats* stats) : stats_(stats) {}
    void OnOpen() override { stats_->RecordStreamOpen(); }
    void OnClose() override { stats_->RecordStreamClose(); }
    void OnEvict() override { stats_->RecordStreamEvict(); }
    void OnFeed(std::size_t accepted, bool truncated) override {
      stats_->RecordStreamFeed(accepted, truncated);
    }
    void OnDecision(double score_us, bool early) override {
      stats_->RecordStreamDecision(score_us, early);
    }

   private:
    ServerStats* stats_;
  };

  ServerOptions options_;
  ModelRegistry registry_;
  ServerStats stats_;
  BatchingQueue queue_;
  StreamSink stream_sink_{&stats_};
  stream::StreamSessionManager streams_;
};

}  // namespace rpm::serve

#endif  // RPM_SERVE_SERVER_H_
