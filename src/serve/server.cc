#include "serve/server.h"

#include <cstdlib>
#include <exception>
#include <sstream>
#include <utility>

namespace rpm::serve {

InferenceServer::InferenceServer(ServerOptions options)
    : options_(options), queue_(options.batching, &stats_) {}

InferenceServer::~InferenceServer() { Shutdown(); }

std::size_t InferenceServer::LoadModel(const std::string& name,
                                       const std::string& path) {
  return registry_.Load(name, path);
}

void InferenceServer::AddModel(const std::string& name,
                               core::RpmClassifier clf) {
  registry_.Put(name, std::move(clf));
}

bool InferenceServer::UnloadModel(const std::string& name) {
  return registry_.Unload(name);
}

std::future<ClassifyResult> InferenceServer::ClassifyAsync(
    const std::string& model, ts::Series values,
    std::chrono::microseconds timeout) {
  ModelHandle handle = registry_.Get(model);
  if (handle == nullptr) {
    stats_.RecordNotFound();
    std::promise<ClassifyResult> promise;
    promise.set_value({StatusCode::kNotFound, 0, 0.0});
    return promise.get_future();
  }
  return queue_.Submit(std::move(handle), std::move(values),
                       BatchingQueue::Clock::now() + timeout);
}

ClassifyResult InferenceServer::Classify(const std::string& model,
                                         ts::Series values,
                                         std::chrono::microseconds timeout) {
  return ClassifyAsync(model, std::move(values), timeout).get();
}

ClassifyResult InferenceServer::Classify(const std::string& model,
                                         ts::Series values) {
  return Classify(model, std::move(values), options_.default_timeout);
}

void InferenceServer::Shutdown() { queue_.Shutdown(); }

namespace {

// "1.5,2,-0.25" (or space-separated) -> Series; false on any non-number.
bool ParseValues(const std::string& text, ts::Series* out) {
  out->clear();
  std::string token;
  std::string normalized = text;
  for (char& c : normalized) {
    if (c == ',') c = ' ';
  }
  std::istringstream fields(normalized);
  while (fields >> token) {
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    out->push_back(v);
  }
  return !out->empty();
}

std::string Err(std::string_view code, const std::string& detail) {
  std::string out = "ERR ";
  out += code;
  if (!detail.empty()) {
    out += ' ';
    out += detail;
  }
  return out;
}

}  // namespace

std::string InferenceServer::HandleLine(const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  if (!(in >> cmd)) return Err("BAD_REQUEST", "empty line");

  if (cmd == "QUIT") return "OK bye";
  if (cmd == "STATS") return "OK " + stats_.Snapshot().ToJson();
  if (cmd == "MODELS") {
    const std::vector<std::string> names = registry_.Names();
    std::string out = "OK " + std::to_string(names.size());
    for (const auto& n : names) out += ' ' + n;
    return out;
  }
  if (cmd == "LOAD") {
    std::string name;
    std::string path;
    if (!(in >> name >> path)) {
      return Err("BAD_REQUEST", "usage: LOAD <name> <path>");
    }
    try {
      const std::size_t patterns = LoadModel(name, path);
      return "OK loaded " + name + " patterns=" + std::to_string(patterns);
    } catch (const std::exception& e) {
      return Err("BAD_REQUEST", e.what());
    }
  }
  if (cmd == "UNLOAD") {
    std::string name;
    if (!(in >> name)) return Err("BAD_REQUEST", "usage: UNLOAD <name>");
    if (!UnloadModel(name)) {
      return Err("NOT_FOUND", "no model named '" + name + "'");
    }
    return "OK unloaded " + name;
  }
  if (cmd == "CLASSIFY") {
    std::string name;
    std::string csv;
    if (!(in >> name >> csv)) {
      return Err("BAD_REQUEST", "usage: CLASSIFY <name> <v1,v2,...> [ms]");
    }
    std::chrono::microseconds timeout = options_.default_timeout;
    long timeout_ms = 0;
    if (in >> timeout_ms) {
      if (timeout_ms <= 0) {
        return Err("BAD_REQUEST", "timeout must be positive");
      }
      timeout = std::chrono::milliseconds(timeout_ms);
    }
    ts::Series values;
    if (!ParseValues(csv, &values)) {
      return Err("BAD_REQUEST", "malformed values '" + csv + "'");
    }
    const ClassifyResult result =
        Classify(name, std::move(values), timeout);
    if (result.status == StatusCode::kOk) {
      return "OK " + std::to_string(result.label);
    }
    if (result.status == StatusCode::kNotFound) {
      return Err("NOT_FOUND", "no model named '" + name + "'");
    }
    return Err(StatusName(result.status), "");
  }
  return Err("BAD_REQUEST", "unknown command '" + cmd + "'");
}

}  // namespace rpm::serve
