#include "serve/server.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <utility>

#include "obs/exposition.h"
#include "obs/trace.h"

namespace rpm::serve {

// One lock domain: a batching queue and a session manager that only
// this shard's traffic touches, plus the shard-labeled metric cells.
struct InferenceServer::Shard {
  /// Forwards stream events to the global ServerStats facade and the
  /// shard-labeled cells in the same registry, so STATS aggregates and
  /// METRICS still breaks the numbers down per shard.
  class Sink : public stream::StreamStatsSink {
   public:
    ServerStats* stats = nullptr;
    obs::Gauge* sessions = nullptr;
    obs::Counter* feeds = nullptr;
    obs::Counter* samples = nullptr;
    obs::Counter* decisions = nullptr;

    void OnOpen() override {
      stats->RecordStreamOpen();
      sessions->Add(1);
    }
    void OnClose() override {
      stats->RecordStreamClose();
      sessions->Add(-1);
    }
    void OnEvict() override {
      stats->RecordStreamEvict();
      sessions->Add(-1);
    }
    void OnFeed(std::size_t accepted, bool truncated) override {
      stats->RecordStreamFeed(accepted, truncated);
      feeds->Increment();
      samples->Increment(accepted);
    }
    void OnDecision(double score_us, bool early) override {
      stats->RecordStreamDecision(score_us, early);
      decisions->Increment();
    }
  };

  Sink sink;
  obs::Counter* requests = nullptr;
  std::unique_ptr<BatchingQueue> queue;
  std::unique_ptr<stream::StreamSessionManager> streams;
};

InferenceServer::InferenceServer(ServerOptions options)
    : options_(std::move(options)) {
  const std::size_t num_shards =
      options_.num_shards == 0 ? 1 : options_.num_shards;
  options_.num_shards = num_shards;
  obs::MetricRegistry& reg = stats_.registry();
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    const obs::Labels labels{{"shard", std::to_string(i)}};
    shard->sink.stats = &stats_;
    shard->sink.sessions = reg.GetGauge(
        "rpm_stream_shard_sessions",
        "Open stream sessions homed on this shard", labels);
    shard->sink.feeds = reg.GetCounter(
        "rpm_stream_shard_feeds_total",
        "STREAM_FEED calls handled by this shard", labels);
    shard->sink.samples = reg.GetCounter(
        "rpm_stream_shard_samples_total",
        "Samples accepted into this shard's sessions", labels);
    shard->sink.decisions = reg.GetCounter(
        "rpm_stream_shard_decisions_total",
        "Window decisions emitted by this shard's sessions", labels);
    shard->requests = reg.GetCounter(
        "rpm_serve_shard_requests_total",
        "CLASSIFY requests submitted through this shard", labels);
    shard->queue = std::make_unique<BatchingQueue>(options_.batching, &stats_);
    stream::StreamManagerOptions stream_opts = options_.streaming;
    stream_opts.id_start = i + 1;
    stream_opts.id_stride = num_shards;
    shard->streams = std::make_unique<stream::StreamSessionManager>(
        stream_opts, &shard->sink);
    shards_.push_back(std::move(shard));
  }
}

InferenceServer::~InferenceServer() { Shutdown(); }

std::size_t InferenceServer::LoadModel(const std::string& name,
                                       const std::string& path) {
  return registry_.Load(name, path);
}

void InferenceServer::AddModel(const std::string& name,
                               core::RpmClassifier clf) {
  registry_.Put(name, std::move(clf));
}

bool InferenceServer::UnloadModel(const std::string& name) {
  return registry_.Unload(name);
}

void InferenceServer::ClassifyWithCallback(const std::string& model,
                                           ts::Series values,
                                           std::chrono::microseconds timeout,
                                           std::size_t shard,
                                           BatchingQueue::Callback done) {
  Shard& s = *shards_[shard % shards_.size()];
  s.requests->Increment();
  ModelHandle handle = registry_.Get(model);
  if (handle == nullptr) {
    stats_.RecordNotFound();
    done({StatusCode::kNotFound, 0, 0.0});
    return;
  }
  s.queue->SubmitWithCallback(std::move(handle), std::move(values),
                              BatchingQueue::Clock::now() + timeout,
                              std::move(done));
}

std::future<ClassifyResult> InferenceServer::ClassifyAsync(
    const std::string& model, ts::Series values,
    std::chrono::microseconds timeout, std::size_t shard) {
  auto promise = std::make_shared<std::promise<ClassifyResult>>();
  std::future<ClassifyResult> future = promise->get_future();
  ClassifyWithCallback(model, std::move(values), timeout, shard,
                       [promise](ClassifyResult result) {
                         promise->set_value(result);
                       });
  return future;
}

ClassifyResult InferenceServer::Classify(const std::string& model,
                                         ts::Series values,
                                         std::chrono::microseconds timeout) {
  return ClassifyAsync(model, std::move(values), timeout).get();
}

ClassifyResult InferenceServer::Classify(const std::string& model,
                                         ts::Series values) {
  return Classify(model, std::move(values), options_.default_timeout);
}

stream::StreamSessionManager::OpenResult InferenceServer::OpenStream(
    const std::string& model, stream::StreamOptions options,
    std::size_t shard) {
  ModelHandle handle = registry_.Get(model);
  if (handle == nullptr) {
    stats_.RecordNotFound();
    stream::StreamSessionManager::OpenResult result;
    result.error = "no model named '" + model + "'";
    return result;
  }
  stream::StreamModel pinned;
  pinned.engine = &handle->engine;
  pinned.owner = std::move(handle);
  return shards_[shard % shards_.size()]->streams->Open(std::move(pinned),
                                                        options);
}

std::size_t InferenceServer::ShardOfStreamId(std::string_view id) const {
  if (id.size() < 2 || id[0] != 's') return 0;
  std::uint64_t n = 0;
  for (const char c : id.substr(1)) {
    if (c < '0' || c > '9') return 0;
    n = n * 10 + std::uint64_t(c - '0');
  }
  if (n == 0) return 0;
  // Shard i mints ids i+1, i+1+S, i+1+2S, ... so the inverse is direct.
  return std::size_t((n - 1) % shards_.size());
}

stream::StreamSessionManager::FeedResult InferenceServer::FeedStream(
    const std::string& id, ts::SeriesView values) {
  return shards_[ShardOfStreamId(id)]->streams->Feed(id, values);
}

stream::StreamSessionManager::CloseResult InferenceServer::CloseStream(
    const std::string& id) {
  return shards_[ShardOfStreamId(id)]->streams->Close(id);
}

stream::StreamSessionManager& InferenceServer::streams(std::size_t shard) {
  return *shards_[shard % shards_.size()]->streams;
}

std::vector<std::string> InferenceServer::StreamIds() const {
  std::vector<std::string> ids;
  for (const auto& shard : shards_) {
    const std::vector<std::string> shard_ids = shard->streams->Ids();
    ids.insert(ids.end(), shard_ids.begin(), shard_ids.end());
  }
  std::sort(ids.begin(), ids.end(),
            [](const std::string& a, const std::string& b) {
              // "s<N>" ids: numeric order, not lexicographic.
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  return ids;
}

void InferenceServer::Shutdown() {
  // Sessions first (stops decisions flowing into stats mid-drain), then
  // queues; each shard's own pair, so nothing cross-shard is held.
  for (auto& shard : shards_) shard->streams->Shutdown();
  for (auto& shard : shards_) shard->queue->Shutdown();
}

std::string InferenceServer::MetricsText() const {
  // One snapshot per registry; the server registry also backs STATS, so
  // both views of a drained server render identical counts.
  const obs::RegistrySnapshot server_snap = stats_.registry().Snapshot();
  const obs::RegistrySnapshot process_snap = obs::DefaultRegistry().Snapshot();
  return obs::RenderPrometheus({&server_snap, &process_snap});
}

namespace {

// "1.5,2,-0.25" (or space-separated) -> Series; false on any non-number.
bool ParseValues(const std::string& text, ts::Series* out) {
  out->clear();
  std::string token;
  std::string normalized = text;
  for (char& c : normalized) {
    if (c == ',') c = ' ';
  }
  std::istringstream fields(normalized);
  while (fields >> token) {
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    out->push_back(v);
  }
  return !out->empty();
}

std::string Err(std::string_view code, const std::string& detail) {
  std::string out = "ERR ";
  out += code;
  if (!detail.empty()) {
    out += ' ';
    out += detail;
  }
  return out;
}

}  // namespace

std::string InferenceServer::HandleLine(const std::string& line) {
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = promise->get_future();
  HandleLineAsync(line, 0, [promise](std::string response) {
    promise->set_value(std::move(response));
  });
  return future.get();
}

void InferenceServer::HandleLineAsync(
    const std::string& line, std::size_t shard,
    std::function<void(std::string)> respond) {
  std::istringstream in(line);
  std::string cmd;
  if (!(in >> cmd)) return respond(Err("BAD_REQUEST", "empty line"));

  if (cmd == "QUIT") return respond("OK bye");
  if (cmd == "STATS") return respond("OK " + stats_.Snapshot().ToJson());
  if (cmd == "METRICS") {
    // HandleLine responses carry no trailing newline (the socket loop
    // appends one), so strip the expositor's final '\n'.
    std::string text = "OK metrics\n" + MetricsText();
    if (!text.empty() && text.back() == '\n') text.pop_back();
    return respond(std::move(text));
  }
  if (cmd == "TRACE") {
    long n = 32;
    if (in >> n) {
      if (n <= 0) {
        return respond(Err("BAD_REQUEST", "span count must be positive"));
      }
      n = std::min(n, 1024L);
    }
    const auto spans = obs::Tracer::Default().Recent(std::size_t(n));
    return respond("OK " + obs::RenderSpansJson(spans));
  }
  if (cmd == "MODELS") {
    const std::vector<std::string> names = registry_.Names();
    std::string out = "OK " + std::to_string(names.size());
    for (const auto& n : names) out += ' ' + n;
    return respond(std::move(out));
  }
  if (cmd == "LOAD") {
    std::string name;
    std::string path;
    if (!(in >> name >> path)) {
      return respond(Err("BAD_REQUEST", "usage: LOAD <name> <path>"));
    }
    try {
      const std::size_t patterns = LoadModel(name, path);
      return respond("OK loaded " + name +
                     " patterns=" + std::to_string(patterns));
    } catch (const std::exception& e) {
      return respond(Err("BAD_REQUEST", e.what()));
    }
  }
  if (cmd == "UNLOAD") {
    std::string name;
    if (!(in >> name)) {
      return respond(Err("BAD_REQUEST", "usage: UNLOAD <name>"));
    }
    if (!UnloadModel(name)) {
      return respond(Err("NOT_FOUND", "no model named '" + name + "'"));
    }
    return respond("OK unloaded " + name);
  }
  if (cmd == "CLASSIFY") {
    std::string name;
    std::string csv;
    if (!(in >> name >> csv)) {
      return respond(
          Err("BAD_REQUEST", "usage: CLASSIFY <name> <v1,v2,...> [ms]"));
    }
    std::chrono::microseconds timeout = options_.default_timeout;
    long timeout_ms = 0;
    if (in >> timeout_ms) {
      if (timeout_ms <= 0) {
        return respond(Err("BAD_REQUEST", "timeout must be positive"));
      }
      timeout = std::chrono::milliseconds(timeout_ms);
    }
    ts::Series values;
    if (!ParseValues(csv, &values)) {
      return respond(Err("BAD_REQUEST", "malformed values '" + csv + "'"));
    }
    // The one asynchronous verb: the response is produced when the
    // micro-batch dispatches, on the shard's dispatcher thread.
    ClassifyWithCallback(
        name, std::move(values), timeout, shard,
        [respond = std::move(respond), name](ClassifyResult result) {
          if (result.status == StatusCode::kOk) {
            return respond("OK " + std::to_string(result.label));
          }
          if (result.status == StatusCode::kNotFound) {
            return respond(
                Err("NOT_FOUND", "no model named '" + name + "'"));
          }
          respond(Err(StatusName(result.status), ""));
        });
    return;
  }
  if (cmd == "STREAM_OPEN") {
    std::string name;
    long window = 0;
    if (!(in >> name >> window) || window <= 0) {
      return respond(Err(
          "BAD_REQUEST",
          "usage: STREAM_OPEN <model> <window> [hop] [early_frac] "
          "[early_margin]"));
    }
    stream::StreamOptions opts;
    opts.window = static_cast<std::size_t>(window);
    long hop = 0;
    if (in >> hop) {
      if (hop < 0) {
        return respond(Err("BAD_REQUEST", "hop must be non-negative"));
      }
      opts.hop = static_cast<std::size_t>(hop);
    }
    double early_fraction = 0.0;
    if (in >> early_fraction) opts.early_fraction = early_fraction;
    double early_margin = 0.0;
    if (in >> early_margin) opts.early_margin = early_margin;
    const auto result = OpenStream(name, opts, shard);
    if (!result.ok) {
      if (result.error.rfind("no model", 0) == 0) {
        return respond(Err("NOT_FOUND", result.error));
      }
      if (result.error == "too many open streams") {
        return respond(Err("OVERLOADED", result.error));
      }
      if (result.error == "shutting down") {
        return respond(Err("SHUTDOWN", result.error));
      }
      return respond(Err("BAD_REQUEST", result.error));
    }
    // Echo the normalized geometry (hop defaulting happened in Open).
    return respond(
        "OK stream " + result.id + " window=" + std::to_string(window) +
        " hop=" + std::to_string(opts.hop == 0 ? opts.window : opts.hop));
  }
  if (cmd == "STREAM_FEED") {
    std::string id;
    std::string csv;
    if (!(in >> id >> csv)) {
      return respond(
          Err("BAD_REQUEST", "usage: STREAM_FEED <id> <v1,v2,...>"));
    }
    ts::Series values;
    if (!ParseValues(csv, &values)) {
      return respond(Err("BAD_REQUEST", "malformed values '" + csv + "'"));
    }
    const auto result =
        FeedStream(id, ts::SeriesView(values.data(), values.size()));
    if (result.status == stream::StreamSessionManager::FeedStatus::kNotFound) {
      return respond(Err("NOT_FOUND", "no stream named '" + id + "'"));
    }
    if (result.status == stream::StreamSessionManager::FeedStatus::kShutdown) {
      return respond(Err("SHUTDOWN", ""));
    }
    std::string out = "OK fed " + std::to_string(result.accepted) +
                      " decisions=" + std::to_string(result.decisions.size());
    char item[96];
    for (const auto& d : result.decisions) {
      std::snprintf(item, sizeof(item), " %llu:%d:%.3f",
                    static_cast<unsigned long long>(d.window_index), d.label,
                    d.margin);
      out += item;
      if (d.early) out += ":early";
    }
    return respond(std::move(out));
  }
  if (cmd == "STREAM_CLOSE") {
    std::string id;
    if (!(in >> id)) {
      return respond(Err("BAD_REQUEST", "usage: STREAM_CLOSE <id>"));
    }
    const auto result = CloseStream(id);
    if (!result.found) {
      return respond(Err("NOT_FOUND", "no stream named '" + id + "'"));
    }
    const stream::StreamSummary& s = result.summary;
    return respond("OK closed " + id + " samples=" +
                   std::to_string(s.samples) +
                   " windows=" + std::to_string(s.windows_scored) +
                   " decisions=" + std::to_string(s.decisions) +
                   " early=" + std::to_string(s.early_decisions));
  }
  if (cmd == "STREAMS") {
    const std::vector<std::string> ids = StreamIds();
    std::string out = "OK " + std::to_string(ids.size());
    for (const auto& id : ids) out += ' ' + id;
    return respond(std::move(out));
  }
  respond(Err("BAD_REQUEST", "unknown command '" + cmd + "'"));
}

}  // namespace rpm::serve
