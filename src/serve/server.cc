#include "serve/server.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <utility>

#include "obs/exposition.h"
#include "obs/trace.h"

namespace rpm::serve {

void LineAssembler::Append(std::string_view data) {
  while (!data.empty()) {
    const std::size_t nl = data.find('\n');
    const std::string_view segment = data.substr(0, nl);
    if (!discarding_) {
      if (partial_.size() + segment.size() > max_line_) {
        partial_.clear();
        partial_.shrink_to_fit();
        discarding_ = true;
      } else {
        partial_.append(segment);
      }
    }
    if (nl == std::string_view::npos) return;  // rest arrives later
    if (discarding_) {
      ready_.push_back(Item{true, std::string()});
      discarding_ = false;
    } else {
      if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
      ready_.push_back(Item{false, std::move(partial_)});
      partial_.clear();
    }
    data.remove_prefix(nl + 1);
  }
}

LineAssembler::LineStatus LineAssembler::NextLine(std::string* line) {
  if (ready_.empty()) return LineStatus::kNone;
  Item item = std::move(ready_.front());
  ready_.pop_front();
  if (item.oversized) return LineStatus::kOversized;
  *line = std::move(item.line);
  return LineStatus::kLine;
}

InferenceServer::InferenceServer(ServerOptions options)
    : options_(options),
      queue_(options.batching, &stats_),
      streams_(options.streaming, &stream_sink_) {}

InferenceServer::~InferenceServer() { Shutdown(); }

std::size_t InferenceServer::LoadModel(const std::string& name,
                                       const std::string& path) {
  return registry_.Load(name, path);
}

void InferenceServer::AddModel(const std::string& name,
                               core::RpmClassifier clf) {
  registry_.Put(name, std::move(clf));
}

bool InferenceServer::UnloadModel(const std::string& name) {
  return registry_.Unload(name);
}

std::future<ClassifyResult> InferenceServer::ClassifyAsync(
    const std::string& model, ts::Series values,
    std::chrono::microseconds timeout) {
  ModelHandle handle = registry_.Get(model);
  if (handle == nullptr) {
    stats_.RecordNotFound();
    std::promise<ClassifyResult> promise;
    promise.set_value({StatusCode::kNotFound, 0, 0.0});
    return promise.get_future();
  }
  return queue_.Submit(std::move(handle), std::move(values),
                       BatchingQueue::Clock::now() + timeout);
}

ClassifyResult InferenceServer::Classify(const std::string& model,
                                         ts::Series values,
                                         std::chrono::microseconds timeout) {
  return ClassifyAsync(model, std::move(values), timeout).get();
}

ClassifyResult InferenceServer::Classify(const std::string& model,
                                         ts::Series values) {
  return Classify(model, std::move(values), options_.default_timeout);
}

stream::StreamSessionManager::OpenResult InferenceServer::OpenStream(
    const std::string& model, stream::StreamOptions options) {
  ModelHandle handle = registry_.Get(model);
  if (handle == nullptr) {
    stats_.RecordNotFound();
    stream::StreamSessionManager::OpenResult result;
    result.error = "no model named '" + model + "'";
    return result;
  }
  stream::StreamModel pinned;
  pinned.engine = &handle->engine;
  pinned.owner = std::move(handle);
  return streams_.Open(std::move(pinned), options);
}

stream::StreamSessionManager::FeedResult InferenceServer::FeedStream(
    const std::string& id, ts::SeriesView values) {
  return streams_.Feed(id, values);
}

stream::StreamSessionManager::CloseResult InferenceServer::CloseStream(
    const std::string& id) {
  return streams_.Close(id);
}

void InferenceServer::Shutdown() {
  streams_.Shutdown();
  queue_.Shutdown();
}

std::string InferenceServer::MetricsText() const {
  // One snapshot per registry; the server registry also backs STATS, so
  // both views of a drained server render identical counts.
  const obs::RegistrySnapshot server_snap = stats_.registry().Snapshot();
  const obs::RegistrySnapshot process_snap = obs::DefaultRegistry().Snapshot();
  return obs::RenderPrometheus({&server_snap, &process_snap});
}

namespace {

// "1.5,2,-0.25" (or space-separated) -> Series; false on any non-number.
bool ParseValues(const std::string& text, ts::Series* out) {
  out->clear();
  std::string token;
  std::string normalized = text;
  for (char& c : normalized) {
    if (c == ',') c = ' ';
  }
  std::istringstream fields(normalized);
  while (fields >> token) {
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    out->push_back(v);
  }
  return !out->empty();
}

std::string Err(std::string_view code, const std::string& detail) {
  std::string out = "ERR ";
  out += code;
  if (!detail.empty()) {
    out += ' ';
    out += detail;
  }
  return out;
}

}  // namespace

std::string InferenceServer::HandleLine(const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  if (!(in >> cmd)) return Err("BAD_REQUEST", "empty line");

  if (cmd == "QUIT") return "OK bye";
  if (cmd == "STATS") return "OK " + stats_.Snapshot().ToJson();
  if (cmd == "METRICS") {
    // HandleLine responses carry no trailing newline (the socket loop
    // appends one), so strip the expositor's final '\n'.
    std::string text = "OK metrics\n" + MetricsText();
    if (!text.empty() && text.back() == '\n') text.pop_back();
    return text;
  }
  if (cmd == "TRACE") {
    long n = 32;
    if (in >> n) {
      if (n <= 0) return Err("BAD_REQUEST", "span count must be positive");
      n = std::min(n, 1024L);
    }
    const auto spans = obs::Tracer::Default().Recent(std::size_t(n));
    return "OK " + obs::RenderSpansJson(spans);
  }
  if (cmd == "MODELS") {
    const std::vector<std::string> names = registry_.Names();
    std::string out = "OK " + std::to_string(names.size());
    for (const auto& n : names) out += ' ' + n;
    return out;
  }
  if (cmd == "LOAD") {
    std::string name;
    std::string path;
    if (!(in >> name >> path)) {
      return Err("BAD_REQUEST", "usage: LOAD <name> <path>");
    }
    try {
      const std::size_t patterns = LoadModel(name, path);
      return "OK loaded " + name + " patterns=" + std::to_string(patterns);
    } catch (const std::exception& e) {
      return Err("BAD_REQUEST", e.what());
    }
  }
  if (cmd == "UNLOAD") {
    std::string name;
    if (!(in >> name)) return Err("BAD_REQUEST", "usage: UNLOAD <name>");
    if (!UnloadModel(name)) {
      return Err("NOT_FOUND", "no model named '" + name + "'");
    }
    return "OK unloaded " + name;
  }
  if (cmd == "CLASSIFY") {
    std::string name;
    std::string csv;
    if (!(in >> name >> csv)) {
      return Err("BAD_REQUEST", "usage: CLASSIFY <name> <v1,v2,...> [ms]");
    }
    std::chrono::microseconds timeout = options_.default_timeout;
    long timeout_ms = 0;
    if (in >> timeout_ms) {
      if (timeout_ms <= 0) {
        return Err("BAD_REQUEST", "timeout must be positive");
      }
      timeout = std::chrono::milliseconds(timeout_ms);
    }
    ts::Series values;
    if (!ParseValues(csv, &values)) {
      return Err("BAD_REQUEST", "malformed values '" + csv + "'");
    }
    const ClassifyResult result =
        Classify(name, std::move(values), timeout);
    if (result.status == StatusCode::kOk) {
      return "OK " + std::to_string(result.label);
    }
    if (result.status == StatusCode::kNotFound) {
      return Err("NOT_FOUND", "no model named '" + name + "'");
    }
    return Err(StatusName(result.status), "");
  }
  if (cmd == "STREAM_OPEN") {
    std::string name;
    long window = 0;
    if (!(in >> name >> window) || window <= 0) {
      return Err("BAD_REQUEST",
                 "usage: STREAM_OPEN <model> <window> [hop] [early_frac] "
                 "[early_margin]");
    }
    stream::StreamOptions opts;
    opts.window = static_cast<std::size_t>(window);
    long hop = 0;
    if (in >> hop) {
      if (hop < 0) return Err("BAD_REQUEST", "hop must be non-negative");
      opts.hop = static_cast<std::size_t>(hop);
    }
    double early_fraction = 0.0;
    if (in >> early_fraction) opts.early_fraction = early_fraction;
    double early_margin = 0.0;
    if (in >> early_margin) opts.early_margin = early_margin;
    const auto result = OpenStream(name, opts);
    if (!result.ok) {
      if (result.error.rfind("no model", 0) == 0) {
        return Err("NOT_FOUND", result.error);
      }
      if (result.error == "too many open streams") {
        return Err("OVERLOADED", result.error);
      }
      if (result.error == "shutting down") {
        return Err("SHUTDOWN", result.error);
      }
      return Err("BAD_REQUEST", result.error);
    }
    // Echo the normalized geometry (hop defaulting happened in Open).
    return "OK stream " + result.id + " window=" + std::to_string(window) +
           " hop=" + std::to_string(opts.hop == 0 ? opts.window : opts.hop);
  }
  if (cmd == "STREAM_FEED") {
    std::string id;
    std::string csv;
    if (!(in >> id >> csv)) {
      return Err("BAD_REQUEST", "usage: STREAM_FEED <id> <v1,v2,...>");
    }
    ts::Series values;
    if (!ParseValues(csv, &values)) {
      return Err("BAD_REQUEST", "malformed values '" + csv + "'");
    }
    const auto result =
        FeedStream(id, ts::SeriesView(values.data(), values.size()));
    if (result.status == stream::StreamSessionManager::FeedStatus::kNotFound) {
      return Err("NOT_FOUND", "no stream named '" + id + "'");
    }
    if (result.status == stream::StreamSessionManager::FeedStatus::kShutdown) {
      return Err("SHUTDOWN", "");
    }
    std::string out = "OK fed " + std::to_string(result.accepted) +
                      " decisions=" + std::to_string(result.decisions.size());
    char item[96];
    for (const auto& d : result.decisions) {
      std::snprintf(item, sizeof(item), " %llu:%d:%.3f",
                    static_cast<unsigned long long>(d.window_index), d.label,
                    d.margin);
      out += item;
      if (d.early) out += ":early";
    }
    return out;
  }
  if (cmd == "STREAM_CLOSE") {
    std::string id;
    if (!(in >> id)) return Err("BAD_REQUEST", "usage: STREAM_CLOSE <id>");
    const auto result = CloseStream(id);
    if (!result.found) {
      return Err("NOT_FOUND", "no stream named '" + id + "'");
    }
    const stream::StreamSummary& s = result.summary;
    return "OK closed " + id + " samples=" + std::to_string(s.samples) +
           " windows=" + std::to_string(s.windows_scored) +
           " decisions=" + std::to_string(s.decisions) +
           " early=" + std::to_string(s.early_decisions);
  }
  if (cmd == "STREAMS") {
    const std::vector<std::string> ids = streams_.Ids();
    std::string out = "OK " + std::to_string(ids.size());
    for (const auto& id : ids) out += ' ' + id;
    return out;
  }
  return Err("BAD_REQUEST", "unknown command '" + cmd + "'");
}

}  // namespace rpm::serve
