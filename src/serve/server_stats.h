// Serving metrics facade over the unified observability registry
// (obs/metrics.h).
//
// ServerStats used to own its own bespoke atomics and histograms; it is
// now a thin facade that resolves named cells out of an
// obs::MetricRegistry once at construction and forwards every Record*
// call to them — still lock-free, no allocation on the hot path. The
// payoff is a single source of truth: the STATS JSON snapshot and the
// METRICS Prometheus exposition are both derived from the *same*
// registry (one Snapshot() can feed both), so request counts can never
// disagree between the two views.
//
// Latency percentiles come from a geometric fixed-bucket histogram
// (64 buckets, ~26% resolution per bucket over ~1us..~3e8us), batch
// occupancy from a linear one; percentile values are bucket upper
// bounds, so they are exact to bucket resolution.
//
// Metric names and units are documented in docs/OBSERVABILITY.md.

#ifndef RPM_SERVE_SERVER_STATS_H_
#define RPM_SERVE_SERVER_STATS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace rpm::serve {

/// Kept as the historical name; the layout (counts, upper_bounds,
/// total, sum, Percentile, Mean) is unchanged apart from the explicit
/// overflow bucket at the end of `counts`.
using HistogramSnapshot = obs::HistogramSnapshot;

/// Point-in-time copy of every serving metric, shaped for the STATS
/// JSON response. Derived from an obs::RegistrySnapshot — see
/// ServerStats::FromMetrics.
struct StatsSnapshot {
  std::uint64_t admitted = 0;   ///< requests accepted into the queue
  std::uint64_t ok = 0;         ///< completed with a label
  std::uint64_t timeout = 0;    ///< expired before dispatch
  std::uint64_t shed = 0;       ///< rejected by admission control
  std::uint64_t not_found = 0;  ///< unknown model name
  std::uint64_t rejected_shutdown = 0;  ///< submitted after Shutdown
  std::uint64_t batches = 0;    ///< micro-batches dispatched
  std::uint64_t streams_opened = 0;
  std::uint64_t streams_closed = 0;
  std::uint64_t streams_evicted = 0;       ///< idle-reaped sessions
  std::uint64_t stream_samples = 0;        ///< samples accepted across feeds
  std::uint64_t stream_decisions = 0;      ///< decisions emitted
  std::uint64_t stream_early = 0;          ///< of which early
  std::uint64_t stream_truncated_feeds = 0;  ///< feeds hit backpressure
  HistogramSnapshot latency_us;       ///< submit -> completion, microseconds
  HistogramSnapshot batch_occupancy;  ///< live requests per dispatched batch
  HistogramSnapshot stream_score_us;  ///< per-window scoring time

  /// One-line JSON rendering (the STATS protocol response body).
  std::string ToJson() const;
};

/// The metric set of one server instance, registered in a per-server
/// obs::MetricRegistry. All recorders are lock-free and safe to call
/// from any thread.
class ServerStats {
 public:
  ServerStats();

  void RecordAdmitted() { admitted_->Increment(); }
  void RecordOk(double latency_us);
  void RecordTimeout(double latency_us);
  void RecordShed() { shed_->Increment(); }
  void RecordNotFound() { not_found_->Increment(); }
  void RecordRejectedShutdown() { rejected_shutdown_->Increment(); }
  void RecordBatch(std::size_t occupancy);
  void RecordQueueDepth(std::size_t depth) {
    queue_depth_->Set(std::int64_t(depth));
  }

  void RecordStreamOpen() {
    streams_opened_->Increment();
    open_sessions_->Add(1);
  }
  void RecordStreamClose() {
    streams_closed_->Increment();
    open_sessions_->Add(-1);
  }
  void RecordStreamEvict() {
    streams_evicted_->Increment();
    open_sessions_->Add(-1);
  }
  void RecordStreamFeed(std::size_t accepted, bool truncated) {
    stream_samples_->Increment(accepted);
    if (truncated) stream_truncated_feeds_->Increment();
  }
  void RecordStreamDecision(double score_us, bool early);

  StatsSnapshot Snapshot() const;

  /// Shapes a registry snapshot into the STATS struct. Taking one
  /// registry snapshot and feeding it to both FromMetrics and the
  /// Prometheus expositor guarantees STATS and METRICS agree.
  static StatsSnapshot FromMetrics(const obs::RegistrySnapshot& metrics);

  /// The registry all of this server's cells live in (the METRICS verb
  /// renders it, together with obs::DefaultRegistry()).
  obs::MetricRegistry& registry() { return registry_; }
  const obs::MetricRegistry& registry() const { return registry_; }

 private:
  obs::MetricRegistry registry_;
  obs::Counter* admitted_;
  obs::Counter* ok_;
  obs::Counter* timeout_;
  obs::Counter* shed_;
  obs::Counter* not_found_;
  obs::Counter* rejected_shutdown_;
  obs::Counter* batches_;
  obs::Gauge* queue_depth_;
  obs::Counter* streams_opened_;
  obs::Counter* streams_closed_;
  obs::Counter* streams_evicted_;
  obs::Gauge* open_sessions_;
  obs::Counter* stream_samples_;
  obs::Counter* stream_decisions_;
  obs::Counter* stream_early_;
  obs::Counter* stream_truncated_feeds_;
  obs::Histogram* latency_us_;
  obs::Histogram* batch_occupancy_;
  obs::Histogram* stream_score_us_;
};

}  // namespace rpm::serve

#endif  // RPM_SERVE_SERVER_STATS_H_
