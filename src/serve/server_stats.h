// Serving metrics: lock-free counters and fixed-bucket histograms.
//
// Request threads and the batch dispatcher record events with relaxed
// atomic increments — no locks, no allocation on the hot path — and
// readers take a point-in-time Snapshot on demand (STATS requests, bench
// reports). Counters are monotonically increasing; a snapshot taken
// while writers are active is internally consistent per counter but not
// across counters, which is the usual contract for serving metrics.
//
// Latency percentiles come from a geometric fixed-bucket histogram
// (64 buckets, ~26% resolution per bucket over ~1us..~3e8us), batch
// occupancy from a linear one; percentile values are bucket upper bounds,
// so they are exact to bucket resolution.

#ifndef RPM_SERVE_SERVER_STATS_H_
#define RPM_SERVE_SERVER_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace rpm::serve {

/// Plain-value copy of one histogram, taken by Snapshot().
struct HistogramSnapshot {
  std::vector<std::uint64_t> counts;  ///< per-bucket event counts
  std::vector<double> upper_bounds;   ///< bucket upper edges (inclusive)
  std::uint64_t total = 0;            ///< sum of counts
  double sum = 0.0;                   ///< sum of recorded values

  /// Upper bound of the bucket holding the p-th percentile (p in
  /// [0, 100]); 0 when empty.
  double Percentile(double p) const;
  double Mean() const { return total == 0 ? 0.0 : sum / double(total); }
};

/// Fixed-bucket histogram with relaxed atomic increments. Bucket bounds
/// are immutable after construction, so Record is wait-free.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  /// Buckets [0, first], (first, first*growth], ... (geometric).
  static Histogram Geometric(double first, double growth);
  /// Buckets [0, step], (step, 2*step], ... (linear).
  static Histogram Linear(double step);

  void Record(double value);
  HistogramSnapshot Snapshot() const;

 private:
  explicit Histogram(std::array<double, kBuckets> bounds) : bounds_(bounds) {}

  std::array<double, kBuckets> bounds_;  // ascending; last bucket catches all
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> total_{0};
  // Value sum accumulated in integer nanounits to keep the add atomic.
  std::atomic<std::uint64_t> sum_milli_{0};
};

/// Point-in-time copy of every serving metric.
struct StatsSnapshot {
  std::uint64_t admitted = 0;   ///< requests accepted into the queue
  std::uint64_t ok = 0;         ///< completed with a label
  std::uint64_t timeout = 0;    ///< expired before dispatch
  std::uint64_t shed = 0;       ///< rejected by admission control
  std::uint64_t not_found = 0;  ///< unknown model name
  std::uint64_t rejected_shutdown = 0;  ///< submitted after Shutdown
  std::uint64_t batches = 0;    ///< micro-batches dispatched
  std::uint64_t streams_opened = 0;
  std::uint64_t streams_closed = 0;
  std::uint64_t streams_evicted = 0;       ///< idle-reaped sessions
  std::uint64_t stream_samples = 0;        ///< samples accepted across feeds
  std::uint64_t stream_decisions = 0;      ///< decisions emitted
  std::uint64_t stream_early = 0;          ///< of which early
  std::uint64_t stream_truncated_feeds = 0;  ///< feeds hit backpressure
  HistogramSnapshot latency_us;       ///< submit -> completion, microseconds
  HistogramSnapshot batch_occupancy;  ///< live requests per dispatched batch
  HistogramSnapshot stream_score_us;  ///< per-window scoring time

  /// One-line JSON rendering (the STATS protocol response body).
  std::string ToJson() const;
};

/// The process-wide metric set of one server instance. All recorders are
/// lock-free and safe to call from any thread.
class ServerStats {
 public:
  ServerStats();

  void RecordAdmitted() { admitted_.fetch_add(1, std::memory_order_relaxed); }
  void RecordOk(double latency_us);
  void RecordTimeout(double latency_us);
  void RecordShed() { shed_.fetch_add(1, std::memory_order_relaxed); }
  void RecordNotFound() {
    not_found_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordRejectedShutdown() {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordBatch(std::size_t occupancy);

  void RecordStreamOpen() {
    streams_opened_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordStreamClose() {
    streams_closed_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordStreamEvict() {
    streams_evicted_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordStreamFeed(std::size_t accepted, bool truncated) {
    stream_samples_.fetch_add(accepted, std::memory_order_relaxed);
    if (truncated) {
      stream_truncated_feeds_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void RecordStreamDecision(double score_us, bool early);

  StatsSnapshot Snapshot() const;

 private:
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> timeout_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> not_found_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> streams_opened_{0};
  std::atomic<std::uint64_t> streams_closed_{0};
  std::atomic<std::uint64_t> streams_evicted_{0};
  std::atomic<std::uint64_t> stream_samples_{0};
  std::atomic<std::uint64_t> stream_decisions_{0};
  std::atomic<std::uint64_t> stream_early_{0};
  std::atomic<std::uint64_t> stream_truncated_feeds_{0};
  Histogram latency_us_;
  Histogram batch_occupancy_;
  Histogram stream_score_us_;
};

}  // namespace rpm::serve

#endif  // RPM_SERVE_SERVER_STATS_H_
