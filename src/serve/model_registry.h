// Named registry of loaded models with warm pattern contexts.
//
// Every model lives behind a shared_ptr<const LoadedModel>: readers take
// a handle under a shared lock and keep classifying through it for as
// long as they need, while Load/Unload swap the map entry under an
// exclusive lock. Refcounting — not the lock — is what makes hot reload
// safe: a swap only retires the old model once the last in-flight request
// drops its handle, so requests never observe a torn or destroyed model.
//
// Model files are parsed *outside* the lock; a multi-megabyte LOAD never
// stalls concurrent CLASSIFY traffic for more than the map swap.

#ifndef RPM_SERVE_MODEL_REGISTRY_H_
#define RPM_SERVE_MODEL_REGISTRY_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/classifier.h"

namespace rpm::serve {

/// A trained classifier plus its warm ClassificationEngine. The engine
/// points into the classifier, so the pair is immovable and always heap-
/// allocated behind the registry's shared_ptr.
struct LoadedModel {
  explicit LoadedModel(core::RpmClassifier clf)
      : classifier(std::move(clf)), engine(classifier) {}
  LoadedModel(const LoadedModel&) = delete;
  LoadedModel& operator=(const LoadedModel&) = delete;

  core::RpmClassifier classifier;
  core::ClassificationEngine engine;
};

/// Shared read-only handle to a loaded model; keeps the model alive
/// across hot reloads for as long as any request holds it.
using ModelHandle = std::shared_ptr<const LoadedModel>;

class ModelRegistry {
 public:
  /// Loads (or hot-reloads) the model at `path` under `name`. Parsing
  /// happens outside the lock; throws std::runtime_error on malformed
  /// files and leaves any previous model for `name` untouched. Returns
  /// the number of representative patterns in the loaded model.
  std::size_t Load(const std::string& name, const std::string& path);

  /// Registers an already-trained classifier (in-process path used by
  /// tests and benches; also the hot-swap entry point). Requires
  /// clf.trained().
  void Put(const std::string& name, core::RpmClassifier clf);

  /// Removes `name`; in-flight handles stay valid. Returns false when no
  /// such model exists.
  bool Unload(const std::string& name);

  /// The current handle for `name`, or nullptr when absent.
  ModelHandle Get(const std::string& name) const;

  /// Registered names, ascending.
  std::vector<std::string> Names() const;

  std::size_t size() const;

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, ModelHandle> models_;
};

}  // namespace rpm::serve

#endif  // RPM_SERVE_MODEL_REGISTRY_H_
