// Bridge between the sharded network front end (src/net) and the
// inference server: implements net::RequestHandler for both codecs.
//
// Text lines go straight to InferenceServer::HandleLineAsync on the
// connection's shard. Binary frames are decoded here — this file is the
// authoritative implementation of the per-verb payload layouts specced
// in docs/SERVING.md ("Binary protocol") — dispatched to the same
// server calls, and the results re-encoded as response frames. Both
// paths answer CLASSIFY asynchronously (from the shard's batching
// dispatcher), which is why `respond` is a callback.
//
// The handler is stateless per request apart from the server pointer,
// so one instance serves every shard concurrently.

#ifndef RPM_SERVE_NET_HANDLER_H_
#define RPM_SERVE_NET_HANDLER_H_

#include <string>

#include "net/front_end.h"
#include "serve/server.h"

namespace rpm::serve {

class NetHandler : public net::RequestHandler {
 public:
  /// `server` must outlive the handler (and the front end using it).
  explicit NetHandler(InferenceServer* server) : server_(server) {}

  void OnTextLine(std::size_t shard, const std::string& line,
                  Respond respond) override;
  void OnFrame(std::size_t shard, const net::Frame& frame,
               Respond respond) override;

 private:
  InferenceServer* const server_;
};

}  // namespace rpm::serve

#endif  // RPM_SERVE_NET_HANDLER_H_
