// Micro-batching request queue with admission control and graceful drain.
//
// Concurrent single-instance CLASSIFY requests are collected into
// per-model micro-batches so the warm ClassificationEngine and the PR-1
// thread pool amortize their work across co-travelling requests:
//
//  * Batch formation: the dispatcher takes the oldest queued request and
//    lingers up to `max_linger` (or until `max_batch_size` requests for
//    the same model are queued) before dispatching, so bursts ride in one
//    batch. Under sustained load the linger never triggers — batches fill
//    from backpressure while the previous batch computes.
//  * Admission control: a request arriving while the queue already holds
//    `max_queue_depth` entries is shed immediately with kOverloaded —
//    bounded queues and an explicit error beat unbounded latency.
//  * Deadlines: each request carries an absolute deadline, checked at
//    dispatch time; expired requests complete with kTimeout without
//    being classified (their slot is not wasted on a stale answer).
//  * Drain: Shutdown() rejects new work with kShutdown but completes
//    every admitted request (lingering is skipped while draining), then
//    joins the dispatcher.
//
// The queue never touches model lifetime: each request pins its model via
// a ModelHandle, so hot reload/unload during a batch is safe.

#ifndef RPM_SERVE_BATCHING_QUEUE_H_
#define RPM_SERVE_BATCHING_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/model_registry.h"
#include "serve/server_stats.h"
#include "ts/series.h"

namespace rpm::serve {

/// Terminal status of one request.
enum class StatusCode {
  kOk,          ///< classified; `label` is valid
  kTimeout,     ///< deadline expired before dispatch
  kOverloaded,  ///< shed by admission control (queue full)
  kNotFound,    ///< no model registered under the requested name
  kShutdown,    ///< submitted after Shutdown began
};

/// Protocol-stable name of a status ("OK", "TIMEOUT", ...).
std::string_view StatusName(StatusCode status);

struct ClassifyResult {
  StatusCode status = StatusCode::kOk;
  int label = 0;
  /// Submit -> completion wall time (0 for requests rejected on submit).
  double latency_us = 0.0;
};

struct BatchingOptions {
  /// Requests per dispatched micro-batch, upper bound.
  std::size_t max_batch_size = 32;
  /// How long the oldest queued request may wait for co-travellers.
  std::chrono::microseconds max_linger{2000};
  /// Queued requests beyond which submissions are shed (kOverloaded).
  std::size_t max_queue_depth = 1024;
  /// Pool workers per batch dispatch (0 = hardware concurrency).
  std::size_t num_threads = 0;
};

class BatchingQueue {
 public:
  using Clock = std::chrono::steady_clock;

  /// `stats` must outlive the queue.
  BatchingQueue(BatchingOptions options, ServerStats* stats);
  ~BatchingQueue();

  BatchingQueue(const BatchingQueue&) = delete;
  BatchingQueue& operator=(const BatchingQueue&) = delete;

  /// Enqueues one request. Rejections (overload, shutdown) resolve the
  /// future immediately; admitted requests resolve when their batch is
  /// dispatched or their deadline lapses. Never blocks on classification.
  std::future<ClassifyResult> Submit(ModelHandle model, ts::Series values,
                                     Clock::time_point deadline);

  /// Completion delivered by callback instead of future — the form the
  /// event-driven front end needs (no thread parked on a future). `done`
  /// is invoked exactly once, outside the queue lock: on the submitting
  /// thread for rejections, on the dispatcher thread otherwise. It must
  /// not block (it runs inline in the dispatch path).
  using Callback = std::function<void(ClassifyResult)>;
  void SubmitWithCallback(ModelHandle model, ts::Series values,
                          Clock::time_point deadline, Callback done);

  /// Stops admissions, drains every admitted request, joins the
  /// dispatcher. Idempotent; also run by the destructor.
  void Shutdown();

  /// Queued (not yet dispatched) requests right now.
  std::size_t depth() const;

 private:
  struct Request {
    ModelHandle model;
    ts::Series values;
    Clock::time_point deadline;
    Clock::time_point enqueue_time;
    Callback done;
  };

  void DispatcherLoop();
  /// Queued requests for `model`, front-of-queue model only (locked).
  std::size_t CountFor(const LoadedModel* model) const;
  /// Removes up to max_batch_size requests for `model` (locked).
  std::vector<Request> ExtractBatch(const LoadedModel* model);
  /// Classifies a formed batch and resolves its promises (unlocked).
  void RunBatch(std::vector<Request> batch);

  const BatchingOptions options_;
  ServerStats* const stats_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool shutdown_ = false;
  std::mutex join_mutex_;  // serializes concurrent Shutdown joins
  std::thread dispatcher_;
};

}  // namespace rpm::serve

#endif  // RPM_SERVE_BATCHING_QUEUE_H_
