#include "serve/batching_queue.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "ts/parallel.h"

namespace rpm::serve {

std::string_view StatusName(StatusCode status) {
  switch (status) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kShutdown:
      return "SHUTDOWN";
  }
  return "UNKNOWN";
}

namespace {

double MicrosSince(BatchingQueue::Clock::time_point t0,
                   BatchingQueue::Clock::time_point t1) {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

}  // namespace

BatchingQueue::BatchingQueue(BatchingOptions options, ServerStats* stats)
    : options_([&] {
        BatchingOptions o = options;
        if (o.max_batch_size == 0) o.max_batch_size = 1;
        if (o.num_threads == 0) o.num_threads = ts::DefaultThreads();
        return o;
      }()),
      stats_(stats),
      dispatcher_([this] { DispatcherLoop(); }) {}

BatchingQueue::~BatchingQueue() { Shutdown(); }

std::future<ClassifyResult> BatchingQueue::Submit(
    ModelHandle model, ts::Series values, Clock::time_point deadline) {
  auto promise = std::make_shared<std::promise<ClassifyResult>>();
  std::future<ClassifyResult> future = promise->get_future();
  SubmitWithCallback(std::move(model), std::move(values), deadline,
                     [promise](ClassifyResult result) {
                       promise->set_value(result);
                     });
  return future;
}

void BatchingQueue::SubmitWithCallback(ModelHandle model, ts::Series values,
                                       Clock::time_point deadline,
                                       Callback done) {
  ClassifyResult rejection;
  bool rejected = false;
  {
    std::unique_lock lock(mutex_);
    if (shutdown_) {
      stats_->RecordRejectedShutdown();
      rejection = {StatusCode::kShutdown, 0, 0.0};
      rejected = true;
    } else if (queue_.size() >= options_.max_queue_depth) {
      stats_->RecordShed();
      rejection = {StatusCode::kOverloaded, 0, 0.0};
      rejected = true;
    } else {
      Request req;
      req.model = std::move(model);
      req.values = std::move(values);
      req.deadline = deadline;
      req.enqueue_time = Clock::now();
      req.done = std::move(done);
      queue_.push_back(std::move(req));
      stats_->RecordAdmitted();
      stats_->RecordQueueDepth(queue_.size());
    }
  }
  if (rejected) {
    done(rejection);  // outside the lock: callbacks may re-enter
    return;
  }
  cv_.notify_all();
}

void BatchingQueue::Shutdown() {
  {
    std::unique_lock lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  // Serialized so concurrent Shutdown calls don't race on join.
  std::lock_guard join_guard(join_mutex_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::size_t BatchingQueue::depth() const {
  std::unique_lock lock(mutex_);
  return queue_.size();
}

std::size_t BatchingQueue::CountFor(const LoadedModel* model) const {
  std::size_t n = 0;
  for (const Request& r : queue_) {
    if (r.model.get() == model) ++n;
  }
  return n;
}

std::vector<BatchingQueue::Request> BatchingQueue::ExtractBatch(
    const LoadedModel* model) {
  std::vector<Request> batch;
  batch.reserve(std::min(queue_.size(), options_.max_batch_size));
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < options_.max_batch_size;) {
    if (it->model.get() == model) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  stats_->RecordQueueDepth(queue_.size());
  return batch;
}

void BatchingQueue::DispatcherLoop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;  // drained
      continue;
    }
    // Micro-batch formation: linger on the oldest request until its batch
    // fills, its linger window closes, or its own deadline passes
    // (whichever is first). Draining skips the linger entirely.
    const LoadedModel* key = queue_.front().model.get();
    const auto wait_until = std::min(
        queue_.front().enqueue_time + options_.max_linger,
        queue_.front().deadline);
    // Only this thread removes queue entries, so the front request (and
    // `key`) is stable across the waits.
    while (!shutdown_ && CountFor(key) < options_.max_batch_size &&
           Clock::now() < wait_until) {
      cv_.wait_until(lock, wait_until);
    }
    std::vector<Request> batch = ExtractBatch(key);
    lock.unlock();
    RunBatch(std::move(batch));
    lock.lock();
  }
}

void BatchingQueue::RunBatch(std::vector<Request> batch) {
  const auto dispatch_time = Clock::now();
  // Split expired requests out; they complete with kTimeout and never
  // reach the engine.
  std::vector<Request> live;
  live.reserve(batch.size());
  for (Request& req : batch) {
    if (dispatch_time >= req.deadline) {
      const double lat = MicrosSince(req.enqueue_time, dispatch_time);
      stats_->RecordTimeout(lat);
      req.done({StatusCode::kTimeout, 0, lat});
    } else {
      live.push_back(std::move(req));
    }
  }
  if (live.empty()) return;

  const LoadedModel& model = *live.front().model;
  std::vector<ts::Series> values;
  values.reserve(live.size());
  for (Request& req : live) values.push_back(std::move(req.values));
  const std::vector<int> labels =
      model.engine.ClassifyBatch(values, options_.num_threads);

  const auto done_time = Clock::now();
  // Span over batch classification, reusing the timestamps measured for
  // latency accounting (no extra clock reads; sampled inside).
  obs::Tracer::Default().MaybeRecord("serve.batch", dispatch_time,
                                     done_time);
  stats_->RecordBatch(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    const double lat = MicrosSince(live[i].enqueue_time, done_time);
    stats_->RecordOk(lat);
    live[i].done({StatusCode::kOk, labels[i], lat});
  }
}

}  // namespace rpm::serve
