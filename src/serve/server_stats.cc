#include "serve/server_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rpm::serve {

double HistogramSnapshot::Percentile(double p) const {
  if (total == 0) return 0.0;
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 * double(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (double(cumulative) >= rank && counts[i] > 0) {
      return upper_bounds[i];
    }
  }
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

Histogram Histogram::Geometric(double first, double growth) {
  std::array<double, kBuckets> bounds{};
  double b = first;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    bounds[i] = b;
    b *= growth;
  }
  return Histogram(bounds);
}

Histogram Histogram::Linear(double step) {
  std::array<double, kBuckets> bounds{};
  for (std::size_t i = 0; i < kBuckets; ++i) {
    bounds[i] = step * double(i + 1);
  }
  return Histogram(bounds);
}

void Histogram::Record(double value) {
  const auto it =
      std::lower_bound(bounds_.begin(), bounds_.end() - 1, value);
  const auto idx = std::size_t(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  const double milli = std::max(0.0, value) * 1000.0;
  sum_milli_.fetch_add(std::uint64_t(milli), std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.counts.resize(kBuckets);
  snap.upper_bounds.assign(bounds_.begin(), bounds_.end());
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    snap.total += snap.counts[i];
  }
  snap.sum = double(sum_milli_.load(std::memory_order_relaxed)) / 1000.0;
  return snap;
}

ServerStats::ServerStats()
    : latency_us_(Histogram::Geometric(1.0, 1.35)),
      batch_occupancy_(Histogram::Linear(1.0)),
      stream_score_us_(Histogram::Geometric(1.0, 1.35)) {}

void ServerStats::RecordOk(double latency_us) {
  ok_.fetch_add(1, std::memory_order_relaxed);
  latency_us_.Record(latency_us);
}

void ServerStats::RecordTimeout(double latency_us) {
  timeout_.fetch_add(1, std::memory_order_relaxed);
  latency_us_.Record(latency_us);
}

void ServerStats::RecordBatch(std::size_t occupancy) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_occupancy_.Record(double(occupancy));
}

void ServerStats::RecordStreamDecision(double score_us, bool early) {
  stream_decisions_.fetch_add(1, std::memory_order_relaxed);
  if (early) stream_early_.fetch_add(1, std::memory_order_relaxed);
  stream_score_us_.Record(score_us);
}

StatsSnapshot ServerStats::Snapshot() const {
  StatsSnapshot snap;
  snap.admitted = admitted_.load(std::memory_order_relaxed);
  snap.ok = ok_.load(std::memory_order_relaxed);
  snap.timeout = timeout_.load(std::memory_order_relaxed);
  snap.shed = shed_.load(std::memory_order_relaxed);
  snap.not_found = not_found_.load(std::memory_order_relaxed);
  snap.rejected_shutdown =
      rejected_shutdown_.load(std::memory_order_relaxed);
  snap.batches = batches_.load(std::memory_order_relaxed);
  snap.streams_opened = streams_opened_.load(std::memory_order_relaxed);
  snap.streams_closed = streams_closed_.load(std::memory_order_relaxed);
  snap.streams_evicted = streams_evicted_.load(std::memory_order_relaxed);
  snap.stream_samples = stream_samples_.load(std::memory_order_relaxed);
  snap.stream_decisions = stream_decisions_.load(std::memory_order_relaxed);
  snap.stream_early = stream_early_.load(std::memory_order_relaxed);
  snap.stream_truncated_feeds =
      stream_truncated_feeds_.load(std::memory_order_relaxed);
  snap.latency_us = latency_us_.Snapshot();
  snap.batch_occupancy = batch_occupancy_.Snapshot();
  snap.stream_score_us = stream_score_us_.Snapshot();
  return snap;
}

std::string StatsSnapshot::ToJson() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"admitted\":%llu,\"ok\":%llu,\"timeout\":%llu,\"shed\":%llu,"
      "\"not_found\":%llu,\"rejected_shutdown\":%llu,\"batches\":%llu,"
      "\"mean_batch_occupancy\":%.2f,\"latency_us\":{\"p50\":%.1f,"
      "\"p95\":%.1f,\"p99\":%.1f,\"mean\":%.1f},"
      "\"streams\":{\"opened\":%llu,\"closed\":%llu,\"evicted\":%llu,"
      "\"samples\":%llu,\"decisions\":%llu,\"early\":%llu,"
      "\"truncated_feeds\":%llu,\"score_us\":{\"p50\":%.1f,\"p95\":%.1f,"
      "\"p99\":%.1f,\"mean\":%.1f}}}",
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(timeout),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(not_found),
      static_cast<unsigned long long>(rejected_shutdown),
      static_cast<unsigned long long>(batches), batch_occupancy.Mean(),
      latency_us.Percentile(50.0), latency_us.Percentile(95.0),
      latency_us.Percentile(99.0), latency_us.Mean(),
      static_cast<unsigned long long>(streams_opened),
      static_cast<unsigned long long>(streams_closed),
      static_cast<unsigned long long>(streams_evicted),
      static_cast<unsigned long long>(stream_samples),
      static_cast<unsigned long long>(stream_decisions),
      static_cast<unsigned long long>(stream_early),
      static_cast<unsigned long long>(stream_truncated_feeds),
      stream_score_us.Percentile(50.0), stream_score_us.Percentile(95.0),
      stream_score_us.Percentile(99.0), stream_score_us.Mean());
  return std::string(buf);
}

}  // namespace rpm::serve
