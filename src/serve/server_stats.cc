#include "serve/server_stats.h"

#include <cstdio>

namespace rpm::serve {

namespace {

// Shared metric names (also referenced by ServerStats::FromMetrics and
// documented in docs/OBSERVABILITY.md).
constexpr char kAdmitted[] = "rpm_serve_requests_admitted_total";
constexpr char kRequests[] = "rpm_serve_requests_total";
constexpr char kBatches[] = "rpm_serve_batches_total";
constexpr char kQueueDepth[] = "rpm_serve_queue_depth";
constexpr char kLatency[] = "rpm_serve_request_latency_microseconds";
constexpr char kOccupancy[] = "rpm_serve_batch_occupancy";
constexpr char kStreamsOpened[] = "rpm_stream_sessions_opened_total";
constexpr char kStreamsClosed[] = "rpm_stream_sessions_closed_total";
constexpr char kStreamsEvicted[] = "rpm_stream_sessions_evicted_total";
constexpr char kOpenSessions[] = "rpm_stream_open_sessions";
constexpr char kStreamSamples[] = "rpm_stream_samples_total";
constexpr char kStreamDecisions[] = "rpm_stream_decisions_total";
constexpr char kStreamEarly[] = "rpm_stream_early_decisions_total";
constexpr char kStreamTruncated[] = "rpm_stream_truncated_feeds_total";
constexpr char kStreamScore[] = "rpm_stream_score_microseconds";

obs::Labels Status(const char* value) { return {{"status", value}}; }

}  // namespace

ServerStats::ServerStats() {
  admitted_ = registry_.GetCounter(kAdmitted,
                                   "Requests accepted into the queue.");
  const char* help = "Requests finished, by terminal status.";
  ok_ = registry_.GetCounter(kRequests, help, Status("ok"));
  timeout_ = registry_.GetCounter(kRequests, help, Status("timeout"));
  shed_ = registry_.GetCounter(kRequests, help, Status("shed"));
  not_found_ = registry_.GetCounter(kRequests, help, Status("not_found"));
  rejected_shutdown_ =
      registry_.GetCounter(kRequests, help, Status("rejected_shutdown"));
  batches_ =
      registry_.GetCounter(kBatches, "Micro-batches dispatched.");
  queue_depth_ = registry_.GetGauge(
      kQueueDepth, "Requests queued, not yet dispatched.");
  latency_us_ = registry_.GetHistogram(
      kLatency, "Submit-to-completion request latency in microseconds.",
      obs::Histogram::GeometricBounds(1.0, 1.35));
  batch_occupancy_ = registry_.GetHistogram(
      kOccupancy, "Live requests per dispatched micro-batch.",
      obs::Histogram::LinearBounds(1.0));
  streams_opened_ =
      registry_.GetCounter(kStreamsOpened, "Stream sessions opened.");
  streams_closed_ = registry_.GetCounter(
      kStreamsClosed, "Stream sessions closed by the client.");
  streams_evicted_ = registry_.GetCounter(
      kStreamsEvicted, "Stream sessions reaped after idle timeout.");
  open_sessions_ =
      registry_.GetGauge(kOpenSessions, "Stream sessions currently open.");
  stream_samples_ = registry_.GetCounter(
      kStreamSamples, "Samples accepted across all stream feeds.");
  stream_decisions_ = registry_.GetCounter(
      kStreamDecisions, "Stream window decisions emitted.");
  stream_early_ = registry_.GetCounter(
      kStreamEarly, "Stream decisions emitted before the window filled.");
  stream_truncated_feeds_ = registry_.GetCounter(
      kStreamTruncated, "Stream feeds truncated by ring backpressure.");
  stream_score_us_ = registry_.GetHistogram(
      kStreamScore, "Per-window stream scoring time in microseconds.",
      obs::Histogram::GeometricBounds(1.0, 1.35));
}

void ServerStats::RecordOk(double latency_us) {
  ok_->Increment();
  latency_us_->Record(latency_us);
}

void ServerStats::RecordTimeout(double latency_us) {
  timeout_->Increment();
  latency_us_->Record(latency_us);
}

void ServerStats::RecordBatch(std::size_t occupancy) {
  batches_->Increment();
  batch_occupancy_->Record(double(occupancy));
}

void ServerStats::RecordStreamDecision(double score_us, bool early) {
  stream_decisions_->Increment();
  if (early) stream_early_->Increment();
  stream_score_us_->Record(score_us);
}

StatsSnapshot ServerStats::FromMetrics(
    const obs::RegistrySnapshot& metrics) {
  StatsSnapshot snap;
  snap.admitted = metrics.Count(kAdmitted);
  snap.ok = metrics.Count(kRequests, Status("ok"));
  snap.timeout = metrics.Count(kRequests, Status("timeout"));
  snap.shed = metrics.Count(kRequests, Status("shed"));
  snap.not_found = metrics.Count(kRequests, Status("not_found"));
  snap.rejected_shutdown =
      metrics.Count(kRequests, Status("rejected_shutdown"));
  snap.batches = metrics.Count(kBatches);
  snap.streams_opened = metrics.Count(kStreamsOpened);
  snap.streams_closed = metrics.Count(kStreamsClosed);
  snap.streams_evicted = metrics.Count(kStreamsEvicted);
  snap.stream_samples = metrics.Count(kStreamSamples);
  snap.stream_decisions = metrics.Count(kStreamDecisions);
  snap.stream_early = metrics.Count(kStreamEarly);
  snap.stream_truncated_feeds = metrics.Count(kStreamTruncated);
  if (const auto* h = metrics.FindHistogram(kLatency)) {
    snap.latency_us = h->snapshot;
  }
  if (const auto* h = metrics.FindHistogram(kOccupancy)) {
    snap.batch_occupancy = h->snapshot;
  }
  if (const auto* h = metrics.FindHistogram(kStreamScore)) {
    snap.stream_score_us = h->snapshot;
  }
  return snap;
}

StatsSnapshot ServerStats::Snapshot() const {
  return FromMetrics(registry_.Snapshot());
}

std::string StatsSnapshot::ToJson() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"admitted\":%llu,\"ok\":%llu,\"timeout\":%llu,\"shed\":%llu,"
      "\"not_found\":%llu,\"rejected_shutdown\":%llu,\"batches\":%llu,"
      "\"mean_batch_occupancy\":%.2f,\"latency_us\":{\"p50\":%.1f,"
      "\"p95\":%.1f,\"p99\":%.1f,\"mean\":%.1f},"
      "\"streams\":{\"opened\":%llu,\"closed\":%llu,\"evicted\":%llu,"
      "\"samples\":%llu,\"decisions\":%llu,\"early\":%llu,"
      "\"truncated_feeds\":%llu,\"score_us\":{\"p50\":%.1f,\"p95\":%.1f,"
      "\"p99\":%.1f,\"mean\":%.1f}}}",
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(timeout),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(not_found),
      static_cast<unsigned long long>(rejected_shutdown),
      static_cast<unsigned long long>(batches), batch_occupancy.Mean(),
      latency_us.Percentile(50.0), latency_us.Percentile(95.0),
      latency_us.Percentile(99.0), latency_us.Mean(),
      static_cast<unsigned long long>(streams_opened),
      static_cast<unsigned long long>(streams_closed),
      static_cast<unsigned long long>(streams_evicted),
      static_cast<unsigned long long>(stream_samples),
      static_cast<unsigned long long>(stream_decisions),
      static_cast<unsigned long long>(stream_early),
      static_cast<unsigned long long>(stream_truncated_feeds),
      stream_score_us.Percentile(50.0), stream_score_us.Percentile(95.0),
      stream_score_us.Percentile(99.0), stream_score_us.Mean());
  return std::string(buf);
}

}  // namespace rpm::serve
