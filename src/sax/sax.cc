#include "sax/sax.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>

#include "ts/znorm.h"

namespace rpm::sax {
namespace {

// Acklam's rational approximation to the inverse normal CDF; relative
// error < 1.15e-9, far below what symbol binning needs.
double InverseNormalCdf(double p) {
  static constexpr std::array<double, 6> a = {
      -3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
      1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr std::array<double, 5> b = {
      -5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
      6.680131188771972e+01, -1.328068155288572e+01};
  static constexpr std::array<double, 6> c = {
      -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
      -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00};
  static constexpr std::array<double, 4> d = {
      7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
      3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("InverseNormalCdf: p must be in (0,1)");
  }
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

const std::vector<double>& GaussianBreakpoints(int alphabet) {
  if (alphabet < kMinAlphabet || alphabet > kMaxAlphabet) {
    throw std::invalid_argument("SAX alphabet size must be in [2, 26], got " +
                                std::to_string(alphabet));
  }
  static std::map<int, std::vector<double>> cache;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(alphabet);
  if (it != cache.end()) return it->second;
  std::vector<double> bps(static_cast<std::size_t>(alphabet) - 1);
  for (int i = 1; i < alphabet; ++i) {
    bps[static_cast<std::size_t>(i) - 1] =
        InverseNormalCdf(static_cast<double>(i) / alphabet);
  }
  return cache.emplace(alphabet, std::move(bps)).first->second;
}

ts::Series Paa(ts::SeriesView values, std::size_t segments) {
  ts::Series out(segments, 0.0);
  const std::size_t n = values.size();
  if (n == 0 || segments == 0) return out;
  if (segments >= n) {
    // Upsample: each output point takes the covering input point.
    for (std::size_t i = 0; i < segments; ++i) {
      out[i] = values[i * n / segments];
    }
    return out;
  }
  // Fractional boundaries: input point j contributes to output segment(s)
  // proportionally to overlap, so sums are exact for any n/segments.
  std::vector<double> weight(segments, 0.0);
  const double seg_width = static_cast<double>(n) / segments;
  for (std::size_t j = 0; j < n; ++j) {
    const double lo = static_cast<double>(j);
    const double hi = lo + 1.0;
    auto first = static_cast<std::size_t>(lo / seg_width);
    first = std::min(first, segments - 1);
    for (std::size_t s = first; s < segments; ++s) {
      const double seg_lo = s * seg_width;
      const double seg_hi = seg_lo + seg_width;
      const double overlap =
          std::min(hi, seg_hi) - std::max(lo, seg_lo);
      if (overlap <= 0.0) break;
      out[s] += values[j] * overlap;
      weight[s] += overlap;
    }
  }
  for (std::size_t s = 0; s < segments; ++s) {
    if (weight[s] > 0.0) out[s] /= weight[s];
  }
  return out;
}

char Symbol(double value, int alphabet) {
  const auto& bps = GaussianBreakpoints(alphabet);
  const auto it = std::upper_bound(bps.begin(), bps.end(), value);
  return static_cast<char>('a' + (it - bps.begin()));
}

std::string SaxWord(ts::SeriesView znormed, std::size_t paa_size,
                    int alphabet) {
  const ts::Series paa = Paa(znormed, paa_size);
  std::string word(paa_size, 'a');
  for (std::size_t i = 0; i < paa_size; ++i) {
    word[i] = Symbol(paa[i], alphabet);
  }
  return word;
}

std::vector<SaxRecord> DiscretizeSlidingWindow(ts::SeriesView series,
                                               const SaxOptions& options) {
  std::vector<SaxRecord> out;
  if (options.window == 0 || series.size() < options.window) return out;
  const std::size_t count = series.size() - options.window + 1;
  out.reserve(count);
  ts::Series buf;
  for (std::size_t pos = 0; pos < count; ++pos) {
    ts::SeriesView window = series.subspan(pos, options.window);
    std::string word;
    if (options.znormalize) {
      buf.assign(window.begin(), window.end());
      ts::ZNormalizeInPlace(buf);
      word = SaxWord(buf, options.paa_size, options.alphabet);
    } else {
      word = SaxWord(window, options.paa_size, options.alphabet);
    }
    if (options.numerosity_reduction && !out.empty() &&
        out.back().word == word) {
      continue;  // Record only the first of a run of identical words.
    }
    out.push_back(SaxRecord{std::move(word), pos});
  }
  return out;
}

double MinDist(const std::string& a, const std::string& b, int alphabet,
               std::size_t n) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("MinDist: words must have equal length");
  }
  if (a.empty()) return 0.0;
  const auto& bps = GaussianBreakpoints(alphabet);
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int ia = a[i] - 'a';
    const int ib = b[i] - 'a';
    const int lo = std::min(ia, ib);
    const int hi = std::max(ia, ib);
    if (hi - lo <= 1) continue;  // Adjacent or equal symbols: cell dist 0.
    const double d = bps[static_cast<std::size_t>(hi) - 1] -
                     bps[static_cast<std::size_t>(lo)];
    acc += d * d;
  }
  const double w = static_cast<double>(a.size());
  return std::sqrt(static_cast<double>(n) / w) * std::sqrt(acc);
}

}  // namespace rpm::sax
